package sflow

import (
	"fmt"
	"strings"

	"sflow/internal/cluster"
	"sflow/internal/session"
)

// SessionOptions tunes a federation Session. The zero value is ready to use.
type SessionOptions = session.Options

// SessionStats accumulates what a Session did over its lifetime: accepted
// mutation events, incremental flushes, and how many per-source routing runs
// the flushes performed versus how many a from-scratch rebuild would have.
type SessionStats = session.Stats

// Session is a long-lived federation session over a mutable overlay — the
// library's answer to the paper's "agile" claim. Where Solve rebuilds the
// all-pairs shortest-widest table and the abstract service graph on every
// call, a Session owns a private copy of the overlay, keeps those products
// incrementally maintained under mutation events (AddLink, RemoveLink,
// GrowLinkBandwidth, ReduceLinkBandwidth, AddInstance, RemoveInstance), and
// serves every solve from the maintained caches: after k changed links only
// the sources whose routes could be affected are recomputed, not all of them.
//
// The maintained caches are byte-identical to from-scratch rebuilds —
// selected paths included — so Session.Solve returns exactly what the
// stateless Solve would on the same overlay state (the equivalence-oracle
// tests assert this after every event of long random mutation traces).
//
// A Session is not safe for concurrent use; the recompute fan-out bounded by
// SessionOptions.Workers is its only parallelism.
type Session struct {
	*session.Session
}

// NewSession starts a federation session over a private clone of ov: later
// mutations of the caller's overlay do not affect the session, and the
// session's events do not affect the caller's overlay.
func NewSession(ov *Overlay, opts SessionOptions) *Session {
	return &Session{Session: session.New(ov, opts)}
}

// Solve runs the named centralised federation algorithm (the same registry as
// the package-level Solve; see Algorithms) against the session's maintained
// caches instead of rebuilding the abstract graph. SolveOptions.Workers is
// ignored here — the session's own worker bound governs its flushes.
//
// "hierarchical" is the one algorithm that cannot be served from the caches:
// the cluster hierarchy summarises the raw overlay itself, so it runs
// directly over the session's current overlay.
func (s *Session) Solve(name string, req *Requirement, src int, opts SolveOptions) (*Solution, error) {
	if name == "hierarchical" {
		k := opts.ClusterK
		if k == 0 {
			k = 4
		}
		ov := s.Session.Overlay()
		if n := ov.NumInstances(); k > n {
			k = n
		}
		var r *cluster.Result
		var err error
		if opts.Contracted {
			r, err = cluster.FederateContracted(ov, req, src, k, opts.Workers)
		} else {
			r, err = cluster.FederateWith(ov, req, src, k, cluster.Options{Lazy: s.Session.Lazy(), Workers: opts.Workers})
		}
		if err != nil {
			return nil, err
		}
		return &Solution{Flow: r.Flow, Metric: r.Metric}, nil
	}
	fn, ok := abstractSolvers[name]
	if !ok {
		return nil, fmt.Errorf("%w %q (have %s)", ErrUnknownAlgorithm,
			name, strings.Join(Algorithms(), ", "))
	}
	ag, err := s.Session.Abstract(req)
	if err != nil {
		return nil, err
	}
	return fn(ag, src, opts)
}
