// Benchmarks of the demand-driven routing path in the large-overlay regime
// the lazy table exists for. BenchmarkLazyFederate is the gated record
// (results/BENCH_lazy.json): one full federation — lazy table, abstract
// graph, reduction — against directly generated 10k- and 50k-node overlays,
// where an eager all-pairs build would run N Dijkstras to serve the ~10 rows
// the requirement reads. BenchmarkLazyCalibration is the same solve at an
// evaluation-adjacent size, used by `make lazy-check` to normalize away
// runner speed.
package sflow_test

import (
	"fmt"
	"testing"

	"sflow"
)

func benchLazyFederate(b *testing.B, nodes int) {
	sc, err := sflow.GenerateLargeScenario(sflow.LargeScenarioConfig{Seed: 1, Nodes: nodes})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := sflow.Solve("heuristic", sc.Overlay, sc.Req, sc.SourceNID,
			sflow.SolveOptions{Lazy: true})
		if err != nil {
			b.Fatal(err)
		}
		if sol.Metric.Bandwidth <= 0 {
			b.Fatal("no usable flow")
		}
	}
}

// BenchmarkLazyFederate measures one lazy federation per iteration; a fresh
// table every time, so the cost is the demand-driven worst case (every slot
// row computed, nothing memoized from earlier solves).
func BenchmarkLazyFederate(b *testing.B) {
	for _, n := range []int{10_000, 50_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { benchLazyFederate(b, n) })
	}
}

// BenchmarkLazyCalibration is the normalization leg: the identical solve at
// a size small enough to be cheap everywhere. Regressions specific to the
// large-overlay path show up in the gated ratio; uniform runner slowness
// cancels out.
func BenchmarkLazyCalibration(b *testing.B) {
	benchLazyFederate(b, 2000)
}
