module sflow

go 1.24
