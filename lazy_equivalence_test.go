package sflow

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"
	"time"

	"sflow/internal/abstract"
	"sflow/internal/session"
)

// TestLazySolveByteIdentical is the scale-equivalence battery's facade half:
// for every algorithm of the Solve registry, on scenarios of every
// requirement shape, the demand-driven lazy routing path returns
// byte-identical output (JSON-encoded flow graph and metric) to the eager
// all-pairs path — both through the stateless Solve and through sessions.
func TestLazySolveByteIdentical(t *testing.T) {
	kinds := []ScenarioKind{KindPath, KindGeneral, KindDisjoint, KindSplitMerge}
	algorithms := append(Algorithms(), "hierarchical")
	for seed := int64(0); seed < 4; seed++ {
		sc, err := GenerateScenario(ScenarioConfig{
			Seed: seed + 200, NetworkSize: 25, Services: 5,
			InstancesPerService: 3, Kind: kinds[int(seed)%len(kinds)],
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range algorithms {
			// The "random" algorithm draws from SolveOptions.Rng: seed both
			// paths identically so any divergence is the lazy table's.
			got, gerr := Solve(name, sc.Overlay, sc.Req, sc.SourceNID,
				SolveOptions{Lazy: true, Rng: rand.New(rand.NewSource(seed))})
			want, werr := Solve(name, sc.Overlay, sc.Req, sc.SourceNID,
				SolveOptions{Rng: rand.New(rand.NewSource(seed))})
			if (gerr == nil) != (werr == nil) {
				t.Fatalf("seed %d %s: error mismatch: lazy %v, eager %v", seed, name, gerr, werr)
			}
			if gerr != nil {
				if gerr.Error() != werr.Error() {
					t.Fatalf("seed %d %s: error text diverged:\nlazy:  %v\neager: %v", seed, name, gerr, werr)
				}
				continue
			}
			if got.Metric != want.Metric {
				t.Fatalf("seed %d %s: metric %v != %v", seed, name, got.Metric, want.Metric)
			}
			gj, err := json.Marshal(got.Flow)
			if err != nil {
				t.Fatal(err)
			}
			wj, err := json.Marshal(want.Flow)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gj, wj) {
				t.Fatalf("seed %d %s: flow graphs diverged:\nlazy:  %s\neager: %s", seed, name, gj, wj)
			}
		}
	}
}

// TestLazySessionSolveByteIdentical churns a lazy session and an eager
// session through the same mutation trace and demands byte-identical answers
// from every registry algorithm at every checkpoint — the session half of
// the scale-equivalence battery.
func TestLazySessionSolveByteIdentical(t *testing.T) {
	events := 300
	if testing.Short() {
		events = 100
	}
	algorithms := append(Algorithms(), "hierarchical")
	for seed := int64(0); seed < 2; seed++ {
		sc, err := GenerateScenario(ScenarioConfig{
			Seed: seed + 300, NetworkSize: 20, Services: 5, InstancesPerService: 3,
			Kind: KindGeneral,
		})
		if err != nil {
			t.Fatal(err)
		}
		lazy := NewSession(sc.Overlay, SessionOptions{Lazy: true})
		eager := NewSession(sc.Overlay, SessionOptions{Workers: 1})
		// Identical churn traces: same seed, same overlay, same guards.
		lc := session.NewChurn(lazy.Session, seed*11+1, []int{sc.SourceNID}, sc.Req.Services())
		ec := session.NewChurn(eager.Session, seed*11+1, []int{sc.SourceNID}, sc.Req.Services())
		for e := 1; e <= events; e++ {
			if _, err := lc.Step(); err != nil {
				t.Fatalf("seed %d event %d (lazy): %v", seed, e, err)
			}
			if _, err := ec.Step(); err != nil {
				t.Fatalf("seed %d event %d (eager): %v", seed, e, err)
			}
			if e%20 != 0 {
				continue
			}
			for _, name := range algorithms {
				got, gerr := lazy.Solve(name, sc.Req, sc.SourceNID,
					SolveOptions{Rng: rand.New(rand.NewSource(int64(e)))})
				want, werr := eager.Solve(name, sc.Req, sc.SourceNID,
					SolveOptions{Rng: rand.New(rand.NewSource(int64(e)))})
				if (gerr == nil) != (werr == nil) {
					t.Fatalf("seed %d event %d %s: error mismatch: lazy %v, eager %v", seed, e, name, gerr, werr)
				}
				if gerr != nil {
					continue
				}
				if got.Metric != want.Metric {
					t.Fatalf("seed %d event %d %s: metric %v != %v", seed, e, name, got.Metric, want.Metric)
				}
				gj, _ := json.Marshal(got.Flow)
				wj, _ := json.Marshal(want.Flow)
				if !bytes.Equal(gj, wj) {
					t.Fatalf("seed %d event %d %s: flow graphs diverged:\nlazy:  %s\neager: %s", seed, e, name, gj, wj)
				}
			}
		}
		if st := lazy.Stats(); st.EvictedRows == 0 {
			t.Fatalf("seed %d: lazy session evicted nothing over %d events", seed, events)
		}
	}
}

// TestContractedHierarchicalSolves covers the contracted fast path of the
// hierarchical algorithm: it must solve the evaluation scenarios the classic
// hierarchical algorithm solves, deterministically (same answer twice), with
// a feasible metric.
func TestContractedHierarchicalSolves(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		sc, err := GenerateScenario(ScenarioConfig{
			Seed: seed + 400, NetworkSize: 30, Services: 5, InstancesPerService: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		got, err := Solve("hierarchical", sc.Overlay, sc.Req, sc.SourceNID,
			SolveOptions{Contracted: true})
		if err != nil {
			t.Fatalf("seed %d: contracted solve: %v", seed, err)
		}
		if got.Flow == nil || got.Metric.Bandwidth <= 0 {
			t.Fatalf("seed %d: contracted solve returned no usable flow (metric %v)", seed, got.Metric)
		}
		again, err := Solve("hierarchical", sc.Overlay, sc.Req, sc.SourceNID,
			SolveOptions{Contracted: true})
		if err != nil {
			t.Fatalf("seed %d: contracted re-solve: %v", seed, err)
		}
		gj, _ := json.Marshal(got.Flow)
		aj, _ := json.Marshal(again.Flow)
		if got.Metric != again.Metric || !bytes.Equal(gj, aj) {
			t.Fatalf("seed %d: contracted solve is nondeterministic", seed)
		}
	}
}

// TestLazyLargeOverlayInteractive is the scale acceptance test: a single
// demand-driven federation against a 50k-node generated overlay completes
// interactively, and the rows it computes are exactly the requirement's slot
// sources — overlay size buys no extra routing work. The wall-clock bound
// gets one retry (CI boxes stall); the row-count and solution assertions are
// exact. Skipped under the race detector (instrumentation dwarfs the budget)
// and in -short runs.
func TestLazyLargeOverlayInteractive(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock budget does not apply under the race detector")
	}
	if testing.Short() {
		t.Skip("50k-node solve skipped in -short")
	}
	const budget = 5 * time.Second
	cfg := LargeScenarioConfig{Seed: 1, Nodes: 50_000, InstancesPerService: 2}
	sc, err := GenerateLargeScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(abstract.SlotSources(sc.Overlay, sc.Req))

	var wall time.Duration
	for attempt := 1; ; attempt++ {
		reg := NewMetrics()
		start := time.Now()
		sol, err := Solve("heuristic", sc.Overlay, sc.Req, sc.SourceNID,
			SolveOptions{Lazy: true, Metrics: reg})
		wall = time.Since(start)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Metric.Bandwidth <= 0 || !sol.Flow.Complete(sc.Req) {
			t.Fatalf("50k-node solve returned no usable flow (metric %v)", sol.Metric)
		}
		var rows int64
		for _, c := range reg.Snapshot().Counters {
			if c.Key == "qos_lazy_rows_computed_total" {
				rows = c.Value
			}
		}
		if rows != int64(wantRows) {
			t.Fatalf("lazy solve computed %d rows, want exactly the %d slot sources", rows, wantRows)
		}
		if wall <= budget {
			break
		}
		if attempt == 2 {
			t.Fatalf("50k-node lazy solve took %v twice, want < %v", wall, budget)
		}
		t.Logf("attempt %d took %v (> %v), retrying once", attempt, wall, budget)
	}
	t.Logf("50k-node lazy federation in %v", wall)
}
