package sflow_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"

	sflow "sflow"
	"sflow/internal/daemon"
	"sflow/internal/scenario"
	"sflow/internal/session"
)

// The serving equivalence battery: under seeded churn and concurrent
// clients, every RPC Solve answer must be byte-identical to the stateless
// sflow.Solve run over the frozen overlay of the epoch the answer names, and
// every named epoch must have been fully published (recorded by the publish
// hook before any reader can observe it) — no request sees a half-published
// epoch.

// epochOracle records every published snapshot, keyed by epoch id.
type epochOracle struct {
	mu   sync.Mutex
	byID map[uint64]*session.Snapshot
}

func (o *epochOracle) record(sn *session.Snapshot) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.byID[sn.Epoch] = sn
}

func (o *epochOracle) lookup(id uint64) *session.Snapshot {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.byID[id]
}

// checkEquivalent asserts one served response equals the stateless solve on
// the recorded epoch state.
func checkEquivalent(oracle *epochOracle, alg string, req *sflow.Requirement, src int, resp *daemon.Response) error {
	rec := oracle.lookup(resp.Epoch)
	if rec == nil {
		return fmt.Errorf("response names epoch %d that was never fully published", resp.Epoch)
	}
	sol, err := sflow.Solve(alg, rec.Overlay, req, src, sflow.SolveOptions{Workers: 1})
	switch {
	case resp.Err == "":
		if err != nil {
			return fmt.Errorf("epoch %d %s: daemon succeeded, stateless solve failed: %v", resp.Epoch, alg, err)
		}
		wantFlow, merr := json.Marshal(sol.Flow)
		if merr != nil {
			return merr
		}
		if !bytes.Equal(resp.Flow, wantFlow) {
			return fmt.Errorf("epoch %d %s: served flow diverged\n  got  %s\n  want %s", resp.Epoch, alg, resp.Flow, wantFlow)
		}
		if resp.Metric == nil || *resp.Metric != sol.Metric {
			return fmt.Errorf("epoch %d %s: served metric %+v, want %+v", resp.Epoch, alg, resp.Metric, sol.Metric)
		}
	case resp.Partial:
		var partial *sflow.PartialFederationError
		if !errors.As(err, &partial) {
			return fmt.Errorf("epoch %d %s: daemon reported partial, stateless solve gave %v", resp.Epoch, alg, err)
		}
		wantFlow, merr := json.Marshal(partial.Flow)
		if merr != nil {
			return merr
		}
		if !bytes.Equal(resp.Flow, wantFlow) {
			return fmt.Errorf("epoch %d %s: partial flow diverged", resp.Epoch, alg)
		}
	default:
		if err == nil {
			return fmt.Errorf("epoch %d %s: daemon failed (%s), stateless solve succeeded", resp.Epoch, alg, resp.Err)
		}
	}
	return nil
}

func TestDaemonServingEquivalenceBattery(t *testing.T) {
	for _, kind := range []scenario.Kind{scenario.KindGeneral, scenario.KindSplitMerge} {
		t.Run(kind.String(), func(t *testing.T) {
			sc, err := scenario.Generate(scenario.Config{
				Seed: 11, NetworkSize: 20, Services: 5,
				InstancesPerService: 3, Kind: kind,
			})
			if err != nil {
				t.Fatal(err)
			}

			oracle := &epochOracle{byID: make(map[uint64]*session.Snapshot)}
			srv := daemon.New(sc.Overlay, daemon.Options{Workers: 1, PublishHook: oracle.record})
			if err := srv.Serve("127.0.0.1:0"); err != nil {
				t.Fatal(err)
			}
			defer srv.Close()

			algorithms := []string{"heuristic", "fixed", "random", "optimal", "servicepath"}
			links := sc.Overlay.Links()

			const readers, calls, mutations = 6, 20, 60
			var wg sync.WaitGroup
			errs := make(chan error, readers+1)

			wg.Add(1)
			go func() { // churn client: alternating bandwidth growth and decay
				defer wg.Done()
				c, err := daemon.Dial(srv.Addr())
				if err != nil {
					errs <- err
					return
				}
				defer c.Close()
				for i := 0; i < mutations; i++ {
					l := links[i%len(links)]
					kind := daemon.MutGrowBandwidth
					if i%2 == 1 {
						kind = daemon.MutReduceBandwidth
					}
					resp, err := c.Mutate(daemon.Mutation{Kind: kind, From: l.From, To: l.To, Delta: int64(1 + i%7)})
					if err != nil {
						errs <- err
						return
					}
					// A reduce may legally fail after the link decayed
					// away; only transport errors are fatal here.
					_ = resp
				}
			}()

			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					c, err := daemon.Dial(srv.Addr())
					if err != nil {
						errs <- err
						return
					}
					defer c.Close()
					for i := 0; i < calls; i++ {
						alg := algorithms[(id+i)%len(algorithms)]
						resp, err := c.Solve(alg, sc.Req, sc.SourceNID)
						if err != nil {
							errs <- err
							return
						}
						if err := checkEquivalent(oracle, alg, sc.Req, sc.SourceNID, resp); err != nil {
							errs <- err
							return
						}
					}
				}(r)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
		})
	}
}

// TestDaemonRepairEquivalence drives the repair RPC and asserts the daemon's
// post-repair state answers exactly like a stateless solve over the repaired
// overlay.
func TestDaemonRepairEquivalence(t *testing.T) {
	sc, err := scenario.Generate(scenario.Config{
		Seed: 12, NetworkSize: 20, Services: 5,
		InstancesPerService: 3, Kind: scenario.KindGeneral,
	})
	if err != nil {
		t.Fatal(err)
	}
	oracle := &epochOracle{byID: make(map[uint64]*session.Snapshot)}
	srv := daemon.New(sc.Overlay, daemon.Options{Workers: 1, PublishHook: oracle.record})
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := daemon.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	victim := -1
	for _, sid := range sc.Req.Services() {
		if sid == sc.Req.Source() {
			continue
		}
		if insts := sc.Overlay.InstancesOf(sid); len(insts) > 1 {
			victim = insts[0]
			break
		}
	}
	if victim < 0 {
		t.Skip("no spare instance to fail")
	}
	if _, err := c.Repair(sc.Req, sc.SourceNID, []int{victim}); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Solve("heuristic", sc.Req, sc.SourceNID)
	if err != nil {
		t.Fatal(err)
	}
	if err := checkEquivalent(oracle, "heuristic", sc.Req, sc.SourceNID, resp); err != nil {
		t.Fatal(err)
	}
}
