package sflow_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"

	sflow "sflow"
	"sflow/internal/daemon"
	"sflow/internal/metrics"
	"sflow/internal/qos"
	"sflow/internal/session"
)

// The -max-rows acceptance battery: a lazy daemon over a GenerateLarge
// overlay with a bounded row cache, driven by a read set that drifts across
// requirement shapes inside every epoch, must (a) keep each published
// table's resident rows at or below the bound while the bound demonstrably
// fires, and (b) serve every answer byte-identical to a stateless
// sflow.Solve over the frozen overlay of the epoch the answer names —
// eviction is a memory decision, never a correctness one.

// checkEquivalentLazy is checkEquivalent for the large-overlay regime: the
// stateless oracle itself solves demand-driven (byte-identical to eager by
// the lazy equivalence battery), so the comparison stays feasible at 20k
// nodes.
func checkEquivalentLazy(oracle *epochOracle, alg string, req *sflow.Requirement, src int, resp *daemon.Response) error {
	rec := oracle.lookup(resp.Epoch)
	if rec == nil {
		return fmt.Errorf("response names epoch %d that was never fully published", resp.Epoch)
	}
	sol, err := sflow.Solve(alg, rec.Overlay, req, src, sflow.SolveOptions{Lazy: true, Workers: 1})
	switch {
	case resp.Err == "":
		if err != nil {
			return fmt.Errorf("epoch %d %s: daemon succeeded, stateless solve failed: %v", resp.Epoch, alg, err)
		}
		wantFlow, merr := json.Marshal(sol.Flow)
		if merr != nil {
			return merr
		}
		if !bytes.Equal(resp.Flow, wantFlow) {
			return fmt.Errorf("epoch %d %s: served flow diverged\n  got  %s\n  want %s", resp.Epoch, alg, resp.Flow, wantFlow)
		}
		if resp.Metric == nil || *resp.Metric != sol.Metric {
			return fmt.Errorf("epoch %d %s: served metric %+v, want %+v", resp.Epoch, alg, resp.Metric, sol.Metric)
		}
	case resp.Partial:
		var partial *sflow.PartialFederationError
		if !errors.As(err, &partial) {
			return fmt.Errorf("epoch %d %s: daemon reported partial, stateless solve gave %v", resp.Epoch, alg, err)
		}
		wantFlow, merr := json.Marshal(partial.Flow)
		if merr != nil {
			return merr
		}
		if !bytes.Equal(resp.Flow, wantFlow) {
			return fmt.Errorf("epoch %d %s: partial flow diverged", resp.Epoch, alg)
		}
	default:
		if err == nil {
			return fmt.Errorf("epoch %d %s: daemon failed (%s), stateless solve succeeded", resp.Epoch, alg, resp.Err)
		}
	}
	return nil
}

func TestDaemonLazyMaxRowsDriftingReadSet(t *testing.T) {
	// 20000 nodes is the sflowd -large regime the flag exists for; maxRows 8
	// is deliberately below the widest requirement's ~13-row read set, so
	// the bound fires both across requirement drift and inside single
	// solves.
	const nodes, maxRows = 20000, 8
	sc, err := sflow.GenerateLargeScenario(sflow.LargeScenarioConfig{Seed: 7, Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}

	oracle := &epochOracle{byID: make(map[uint64]*session.Snapshot)}
	var mu sync.Mutex
	var published []*session.Snapshot
	reg := metrics.New()
	srv := daemon.New(sc.Overlay, daemon.Options{
		Workers: 1, Lazy: true, MaxRows: maxRows, Metrics: reg,
		PublishHook: func(sn *session.Snapshot) {
			oracle.record(sn)
			mu.Lock()
			published = append(published, sn)
			mu.Unlock()
		},
	})
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := daemon.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// The drifting read set: each requirement reads the rows of its own
	// slot instances, so cycling shapes keeps forcing the cache to turn
	// over. GenerateLarge places services 1..6 with 1 as the source.
	shapes := [][]int{
		{1, 2}, {1, 3, 4}, {1, 5, 6}, {1, 2, 3, 4, 5, 6}, {1, 6}, {1, 4, 2},
	}
	reqs := make([]*sflow.Requirement, len(shapes))
	for i, sids := range shapes {
		if reqs[i], err = sflow.PathRequirement(sids...); err != nil {
			t.Fatal(err)
		}
	}

	links := sc.Overlay.Links()
	const epochs = 4
	for e := 0; e < epochs; e++ {
		for i, req := range reqs {
			resp, err := c.Solve("heuristic", req, sc.SourceNID)
			if err != nil {
				t.Fatal(err)
			}
			if err := checkEquivalentLazy(oracle, "heuristic", req, sc.SourceNID, resp); err != nil {
				t.Fatalf("epoch round %d shape %v: %v", e, shapes[i], err)
			}
		}
		// Churn a link to publish the next epoch (and dirty its readers).
		l := links[(e*7919)%len(links)]
		if _, err := c.Mutate(daemon.Mutation{
			Kind: daemon.MutGrowBandwidth, From: l.From, To: l.To, Delta: int64(1 + e),
		}); err != nil {
			t.Fatal(err)
		}
	}

	// Every published epoch table must be a bounded lazy table holding at
	// most maxRows resident rows after serving the drifting load.
	mu.Lock()
	defer mu.Unlock()
	if len(published) == 0 {
		t.Fatal("publish hook never ran")
	}
	for _, sn := range published {
		lt, ok := sn.AllPairs.(*qos.LazyAllPairs)
		if !ok {
			t.Fatalf("epoch %d table is %T, want *qos.LazyAllPairs", sn.Epoch, sn.AllPairs)
		}
		if lt.MaxRows() != maxRows {
			t.Fatalf("epoch %d MaxRows = %d, want %d", sn.Epoch, lt.MaxRows(), maxRows)
		}
		if rows := lt.ComputedRows(); len(rows) > maxRows {
			t.Fatalf("epoch %d holds %d resident rows %v, over the -max-rows bound %d",
				sn.Epoch, len(rows), rows, maxRows)
		}
	}
	if evicted := reg.Counter("qos_lazy_lru_evicted_rows_total").Value(); evicted == 0 {
		t.Fatal("the bound never fired: qos_lazy_lru_evicted_rows_total = 0 under a read set wider than MaxRows")
	}
}
