//go:build race

package sflow

// raceEnabled reports whether this test binary runs under the race detector;
// wall-clock-bounded tests skip themselves when it is on.
const raceEnabled = true
