// Command sflowbench reproduces the paper's evaluation (Figure 10 panels and
// the extra ablations) and prints the series as text tables, optionally
// writing CSV files.
//
// Usage:
//
//	sflowbench -fig all
//	sflowbench -fig 10a -sizes 10,20,30,40,50 -trials 20 -csv out/
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"sflow"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sflowbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sflowbench", flag.ContinueOnError)
	var (
		fig       = fs.String("fig", "all", "figure to reproduce: 10a, 10b, 10c, 10d, lookahead, reduction, admission, tenants, overhead, repair, blocking, hierarchy, faults, dynamics, reopt, scale or all")
		sizes     = fs.String("sizes", "10,20,30,40,50", "comma-separated network sizes")
		trials    = fs.Int("trials", 10, "trials per network size")
		seed      = fs.Int64("seed", 1, "base random seed")
		services  = fs.Int("services", 6, "required services per scenario")
		instances = fs.Int("instances", 0, "instances per non-source service (0 scales with network size)")
		csvDir    = fs.String("csv", "", "directory to write CSV files into (optional)")
		svgDir    = fs.String("svg", "", "directory to write SVG charts into (optional)")
		mdPath    = fs.String("md", "", "write a full markdown report of ALL experiments to this file (ignores -fig)")
		jsonDir   = fs.String("json", "", "directory to write series JSON files into (optional)")
		workers   = fs.Int("workers", runtime.GOMAXPROCS(0),
			"number of (size, trial) cells evaluated concurrently; 1 runs the historical sequential sweep (output is byte-identical either way)")
		metricsPath = fs.String("metrics", "",
			"write the run's metrics snapshot to this file ('-' for stdout); deterministic metrics only, so the file is byte-identical at any -workers")
		pprofAddr = fs.String("pprof", "",
			"serve net/http/pprof on this address (e.g. localhost:6060) for the duration of the run")
		lazy = fs.Bool("lazy", false,
			"demand-driven single-solve mode: for each -sizes entry, generate a large overlay directly (ring backbone + random links, path requirement) and federate it once with lazy routing, printing rows computed and wall time; ignores -fig")
		maxRows = fs.Int("max-rows", 0,
			"with -lazy: solve through a session whose resident row cache is bounded to this many rows (LRU eviction; 0 = unbounded stateless solve)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sz, err := parseSizes(*sizes)
	if err != nil {
		return err
	}
	switch {
	case *trials < 1:
		return fmt.Errorf("-trials %d out of range (must be >= 1)", *trials)
	case *services < 2:
		return fmt.Errorf("-services %d out of range (a requirement needs a source and a sink, so >= 2)", *services)
	case *instances < 0:
		return fmt.Errorf("-instances %d out of range (must be >= 0; 0 scales with network size)", *instances)
	case *workers < 1:
		return fmt.Errorf("-workers %d out of range (must be >= 1)", *workers)
	}
	if *pprofAddr != "" {
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("-pprof: %w", err)
		}
		defer ln.Close()
		// The blank net/http/pprof import registered the profiling
		// handlers on the default mux.
		go func() { _ = http.Serve(ln, nil) }()
		fmt.Fprintf(out, "pprof: serving on http://%s/debug/pprof/\n", ln.Addr())
	}
	var reg *sflow.Metrics
	if *metricsPath != "" {
		reg = sflow.NewMetrics()
	}
	cfg := sflow.ExperimentConfig{
		Sizes: sz, Trials: *trials, Seed: *seed,
		Services: *services, Instances: *instances,
		Workers: *workers, Metrics: reg,
	}
	writeMetrics := func() error {
		if reg == nil {
			return nil
		}
		text := reg.Snapshot().StableText()
		if *metricsPath == "-" {
			fmt.Fprint(out, text)
			return nil
		}
		if err := os.WriteFile(*metricsPath, []byte(text), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", *metricsPath)
		return nil
	}
	if *mdPath != "" {
		report, err := sflow.ExperimentReport(cfg)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*mdPath, []byte(report), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", *mdPath)
		return writeMetrics()
	}

	if *lazy {
		return runLazy(out, sz, *seed, *services, *workers, *maxRows)
	}
	if *maxRows > 0 {
		return fmt.Errorf("-max-rows bounds the lazy row cache and requires -lazy")
	}

	var series []*sflow.Series
	switch *fig {
	case "all":
		series, err = sflow.AllExperiments(cfg)
		if err != nil {
			return err
		}
	case "10a", "10b", "10c", "10d", "lookahead", "reduction", "admission", "tenants", "overhead", "repair", "blocking", "hierarchy", "faults", "dynamics", "reopt", "scale":
		fns := map[string]func(sflow.ExperimentConfig) (*sflow.Series, error){
			"10a": sflow.Fig10a, "10b": sflow.Fig10b,
			"10c": sflow.Fig10c, "10d": sflow.Fig10d,
			"lookahead": sflow.AblationLookahead, "reduction": sflow.AblationReduction,
			"admission": sflow.AdmissionCapacity, "tenants": sflow.TenantSweep,
			"overhead": sflow.ProtocolOverhead,
			"repair":   sflow.RepairChurn, "blocking": sflow.BlockingUnderLoad,
			"hierarchy": sflow.HierarchyCompare, "faults": sflow.FaultSweep,
			"dynamics": sflow.DynamicsSweep, "reopt": sflow.ReoptSweep,
			"scale": sflow.ScaleSweep,
		}
		if *fig == "scale" && !sizesFlagSet(fs) {
			// The evaluation default 10..50 is below the regime the scale
			// sweep exists for; let the experiment pick its own sizes.
			cfg.Sizes = nil
		}
		s, err := fns[*fig](cfg)
		if err != nil {
			return err
		}
		series = []*sflow.Series{s}
	default:
		return fmt.Errorf("unknown figure %q", *fig)
	}

	for _, s := range series {
		fmt.Fprintln(out, s.Table())
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				return err
			}
			path := filepath.Join(*csvDir, s.ID+".csv")
			if err := os.WriteFile(path, []byte(s.CSV()), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %s\n\n", path)
		}
		if *svgDir != "" {
			if err := os.MkdirAll(*svgDir, 0o755); err != nil {
				return err
			}
			path := filepath.Join(*svgDir, s.ID+".svg")
			if err := os.WriteFile(path, []byte(sflow.RenderSVG(s)), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %s\n\n", path)
		}
		if *jsonDir != "" {
			if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
				return err
			}
			data, err := json.MarshalIndent(s, "", "  ")
			if err != nil {
				return err
			}
			path := filepath.Join(*jsonDir, s.ID+".json")
			if err := os.WriteFile(path, data, 0o644); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %s\n\n", path)
		}
	}
	return writeMetrics()
}

// sizesFlagSet reports whether -sizes was passed explicitly.
func sizesFlagSet(fs *flag.FlagSet) bool {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "sizes" {
			set = true
		}
	})
	return set
}

// runLazy is the -lazy single-solve mode: one demand-driven federation per
// overlay size, demonstrating interactive solves in the 10k–100k-node regime
// (cost scales with the rows read — slot instances — not overlay size). With
// maxRows > 0 the solve runs through a session whose row cache is bounded,
// and the table gains an lru_evicted column showing what the bound dropped.
func runLazy(out io.Writer, sizes []int, seed int64, services, workers, maxRows int) error {
	if maxRows > 0 {
		fmt.Fprintf(out, "%-12s %12s %12s %12s %12s %14s %12s\n",
			"nodes", "links", "rows", "lru_evicted", "bandwidth", "latency", "wall")
	} else {
		fmt.Fprintf(out, "%-12s %12s %12s %12s %14s %12s\n",
			"nodes", "links", "rows", "bandwidth", "latency", "wall")
	}
	for _, n := range sizes {
		sc, err := sflow.GenerateLargeScenario(sflow.LargeScenarioConfig{
			Seed: seed, Nodes: n, Services: services,
		})
		if err != nil {
			return err
		}
		reg := sflow.NewMetrics()
		start := time.Now()
		var sol *sflow.Solution
		if maxRows > 0 {
			sess := sflow.NewSession(sc.Overlay, sflow.SessionOptions{
				Lazy: true, MaxRows: maxRows, Workers: workers, Metrics: reg,
			})
			sol, err = sess.Solve("heuristic", sc.Req, sc.SourceNID,
				sflow.SolveOptions{Workers: workers})
		} else {
			sol, err = sflow.Solve("heuristic", sc.Overlay, sc.Req, sc.SourceNID,
				sflow.SolveOptions{Lazy: true, Workers: workers, Metrics: reg})
		}
		wall := time.Since(start)
		if err != nil {
			return fmt.Errorf("n=%d: %w", n, err)
		}
		var rows, lruEvicted int64
		for _, c := range reg.Snapshot().Counters {
			switch c.Key {
			case "qos_lazy_rows_computed_total":
				rows = c.Value
			case "qos_lazy_lru_evicted_rows_total":
				lruEvicted = c.Value
			}
		}
		if maxRows > 0 {
			fmt.Fprintf(out, "%-12d %12d %12d %12d %12d %14d %12s\n",
				n, sc.Overlay.NumLinks(), rows, lruEvicted, sol.Metric.Bandwidth, sol.Metric.Latency, wall.Round(time.Millisecond))
		} else {
			fmt.Fprintf(out, "%-12d %12d %12d %12d %14d %12s\n",
				n, sc.Overlay.NumLinks(), rows, sol.Metric.Bandwidth, sol.Metric.Latency, wall.Round(time.Millisecond))
		}
	}
	return nil
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 2 {
			return nil, fmt.Errorf("bad network size %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no network sizes given")
	}
	return out, nil
}
