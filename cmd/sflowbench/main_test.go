package main

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func runBench(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	err := run(args, &buf)
	return buf.String(), err
}

func TestParseSizes(t *testing.T) {
	got, err := parseSizes("10, 20,30")
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{10, 20, 30}; !reflect.DeepEqual(got, want) {
		t.Fatalf("parseSizes = %v", got)
	}
	for _, bad := range []string{"", "abc", "10,1", "0"} {
		if _, err := parseSizes(bad); err == nil {
			t.Errorf("parseSizes(%q) accepted", bad)
		}
	}
}

func TestRunSingleFigure(t *testing.T) {
	out, err := runBench(t, "-fig", "10a", "-sizes", "10", "-trials", "2", "-services", "4", "-instances", "2")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig10a", "sflow", "servicepath", "NetworkSize"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRunCSVOutput(t *testing.T) {
	dir := t.TempDir()
	_, err := runBench(t, "-fig", "10d", "-sizes", "10", "-trials", "2",
		"-services", "4", "-instances", "2", "-csv", dir)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig10d.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "networksize,optimal,sflow,") {
		t.Fatalf("csv header wrong: %q", string(data)[:40])
	}
}

func TestRunRejections(t *testing.T) {
	if _, err := runBench(t, "-fig", "nope"); err == nil {
		t.Fatal("unknown figure accepted")
	}
	if _, err := runBench(t, "-sizes", "x"); err == nil {
		t.Fatal("bad sizes accepted")
	}
	if _, err := runBench(t, "-notaflag"); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

// Nonsense flag values must be rejected with a descriptive error instead of
// silently producing all-zero series.
func TestRejectsNonsenseFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the error
	}{
		{"negative trials", []string{"-fig", "10a", "-trials", "-5"}, "-trials"},
		{"zero trials", []string{"-fig", "10a", "-trials", "0"}, "-trials"},
		{"empty sizes", []string{"-fig", "10a", "-sizes", ""}, "no network sizes"},
		{"undersized network", []string{"-fig", "10a", "-sizes", "10,1"}, "bad network size"},
		{"single service", []string{"-fig", "10a", "-services", "1"}, "-services"},
		{"negative instances", []string{"-fig", "10a", "-instances", "-3"}, "-instances"},
		{"zero workers", []string{"-fig", "10a", "-workers", "0"}, "-workers"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := runBench(t, tc.args...)
			if err == nil {
				t.Fatalf("args %v accepted:\n%s", tc.args, out)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("args %v: error %q does not mention %q", tc.args, err, tc.want)
			}
		})
	}
}

// The determinism guarantee at the CLI surface: the same seed writes
// byte-identical CSV whether the sweep runs on one worker or eight.
func TestCSVDeterministicAcrossWorkerCounts(t *testing.T) {
	readCSV := func(t *testing.T, fig, workersFlag string) []byte {
		t.Helper()
		dir := t.TempDir()
		_, err := runBench(t, "-fig", fig, "-sizes", "10,20", "-trials", "3",
			"-seed", "11", "-services", "5", "-instances", "2",
			"-csv", dir, "-workers", workersFlag)
		if err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(filepath.Join(dir, "fig"+fig+".csv"))
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	seq := readCSV(t, "10a", "1")
	par := readCSV(t, "10a", "8")
	if !bytes.Equal(seq, par) {
		t.Fatalf("fig10a.csv differs between -workers 1 and -workers 8:\n%s\nvs\n%s", seq, par)
	}
}

func TestRunSVGOutput(t *testing.T) {
	dir := t.TempDir()
	_, err := runBench(t, "-fig", "10a", "-sizes", "10", "-trials", "2",
		"-services", "4", "-instances", "2", "-svg", dir)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig10a.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Fatalf("not svg: %q", string(data)[:20])
	}
}

func TestRunMarkdownReport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "report.md")
	_, err := runBench(t, "-sizes", "10", "-trials", "1", "-services", "4",
		"-instances", "2", "-md", path)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# sFlow reproduction", "### fig10a", "### blocking"} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("report missing %q", want)
		}
	}
}

func TestRunJSONOutput(t *testing.T) {
	dir := t.TempDir()
	_, err := runBench(t, "-fig", "10c", "-sizes", "10", "-trials", "2",
		"-services", "4", "-instances", "2", "-json", dir)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig10c.csv")[:len(filepath.Join(dir, "fig10c.csv"))-4] + ".json")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"id": "fig10c"`) {
		t.Fatalf("json wrong: %s", data[:60])
	}
}

// The reopt figure runs the congestion-driven re-optimization sweep: every
// row must show relieved hotspots (postmax <= premax) and zero new ones.
func TestRunReoptFigure(t *testing.T) {
	out, err := runBench(t, "-fig", "reopt", "-trials", "2")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"reopt", "ParallelPaths", "premax", "postmax", "migrations", "newhot"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) != 5 || !strings.HasPrefix(fields[0], "2") && !strings.HasPrefix(fields[0], "3") &&
			!strings.HasPrefix(fields[0], "4") && !strings.HasPrefix(fields[0], "5") && !strings.HasPrefix(fields[0], "6") {
			continue
		}
		if fields[4] != "0.0000" {
			t.Fatalf("new hotspots in row %q", line)
		}
	}
}

// -lazy is the interactive large-overlay mode: one demand-driven federation
// per size, reporting the rows the lazy table actually computed.
func TestRunLazyMode(t *testing.T) {
	out, err := runBench(t, "-lazy", "-sizes", "200,400", "-services", "4")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"nodes", "links", "rows", "bandwidth", "wall", "200", "400"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRunLazyModePropagatesFailure(t *testing.T) {
	// 3 nodes is below GenerateLarge's floor; the error must surface.
	if _, err := runBench(t, "-lazy", "-sizes", "3", "-services", "4"); err == nil {
		t.Fatal("-lazy accepted an ungeneratable size")
	}
}

// The scale figure honours explicit -sizes, so it stays unit-test sized.
func TestRunScaleFigure(t *testing.T) {
	out, err := runBench(t, "-fig", "scale", "-sizes", "60", "-trials", "1", "-services", "4", "-instances", "2")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"scale", "rows_frac", "contracted_solved", "OverlayNodes"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
