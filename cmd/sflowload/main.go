// Command sflowload is a closed-loop load generator for sflowd: it opens a
// configurable number of client connections, each looping one outstanding
// call at a time until the duration elapses, and reports latency quantiles
// and throughput. -mode solve loops Solve calls; -mode admit loops
// admit+release pairs against the daemon's multi-tenant capacity allocator
// (emitted as BenchmarkServeAdmit/... lines).
//
// Results are printed to stdout as `go test -bench`-style lines so the
// existing benchjson tool can serialize and regression-gate them:
//
//	BenchmarkServeSolve/alg=heuristic/clients=1000/p50  <solves> <ns> ns/op
//	BenchmarkServeSolve/alg=heuristic/clients=1000/p99  <solves> <ns> ns/op
//	BenchmarkServeSolve/alg=heuristic/clients=1000/persolve <solves> <ns> ns/op
//	BenchmarkServeCalibration/alg=heuristic <iters> <ns> ns/op
//
// p50/p99 are client-observed solve latencies; persolve is wall-clock
// nanoseconds per completed solve across the whole run (the inverse of
// solves/sec). The calibration line times the same solve stateless and
// in-process, so CI can normalize served latencies across machines exactly
// as the hot-path gate does. A human-readable summary goes to stderr.
//
// The scenario flags must match the sflowd instance under test: both sides
// regenerate the same reproducible workload from them.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sflow"
	"sflow/internal/daemon"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sflowload:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sflowload", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "", "sflowd address to load")
		addrfile = fs.String("addrfile", "", "read the sflowd address from this file")
		clients  = fs.Int("clients", 100, "concurrent closed-loop client connections")
		duration = fs.Duration("duration", 5*time.Second, "measurement window")
		alg      = fs.String("alg", "heuristic", "federation algorithm to request")
		mode     = fs.String("mode", "solve", "operation to loop: solve, or admit (admit+release pairs against the capacity allocator)")
		demand   = fs.Int64("demand", 50, "bandwidth demand per admission (admit mode)")
		classes  = fs.Int("classes", 1, "spread admissions across this many priority classes (admit mode; must not exceed sflowd -classes)")

		seed      = fs.Int64("seed", 1, "scenario seed (must match sflowd)")
		size      = fs.Int("size", 20, "underlay network size (must match sflowd)")
		services  = fs.Int("services", 5, "required services (must match sflowd)")
		instances = fs.Int("instances", 3, "instances per non-source service (must match sflowd)")
		kind      = fs.String("kind", "general", "requirement shape (must match sflowd)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addrfile != "" {
		data, err := os.ReadFile(*addrfile)
		if err != nil {
			return err
		}
		*addr = strings.TrimSpace(string(data))
	}
	if *addr == "" {
		return fmt.Errorf("need -addr or -addrfile")
	}
	if *clients < 1 {
		return fmt.Errorf("need at least one client")
	}
	if *mode != "solve" && *mode != "admit" {
		return fmt.Errorf("unknown -mode %q (want solve or admit)", *mode)
	}
	if *classes < 1 {
		return fmt.Errorf("need at least one class")
	}

	k, err := sflow.ParseScenarioKind(*kind)
	if err != nil {
		return err
	}
	sc, err := sflow.GenerateScenario(sflow.ScenarioConfig{
		Seed: *seed, NetworkSize: *size, Services: *services,
		InstancesPerService: *instances, Kind: k,
	})
	if err != nil {
		return err
	}

	// Closed loop: every client keeps exactly one call outstanding.
	var (
		wg       sync.WaitGroup
		failures atomic.Int64
		perNS    = make([][]int64, *clients)
	)
	deadline := time.Now().Add(*duration)
	start := time.Now()
	for i := 0; i < *clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := daemon.Dial(*addr)
			if err != nil {
				failures.Add(1)
				return
			}
			defer c.Close()
			var lats []int64
			for time.Now().Before(deadline) {
				t0 := time.Now()
				if *mode == "admit" {
					// One op = admit + release: the allocator is exercised
					// end to end and the run leaves no residue. An in-band
					// rejection still completes the op (the decision was
					// served); only transport failures abort.
					resp, err := c.Admit(*alg, sc.Req, sc.SourceNID, *demand, id%*classes, 0)
					if err != nil {
						failures.Add(1)
						return
					}
					if resp.Err == "" {
						if _, err := c.Release(resp.Ticket); err != nil {
							failures.Add(1)
							return
						}
					}
				} else {
					resp, err := c.Solve(*alg, sc.Req, sc.SourceNID)
					if err != nil || resp.Err != "" {
						failures.Add(1)
						return
					}
				}
				lats = append(lats, time.Since(t0).Nanoseconds())
			}
			perNS[id] = lats
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []int64
	for _, l := range perNS {
		all = append(all, l...)
	}
	if len(all) == 0 {
		return fmt.Errorf("no solve completed (%d clients failed)", failures.Load())
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	quantile := func(q float64) int64 {
		i := int(q * float64(len(all)-1))
		return all[i]
	}
	p50, p99 := quantile(0.50), quantile(0.99)
	solves := len(all)
	perSolve := elapsed.Nanoseconds() / int64(solves)
	rate := float64(solves) / elapsed.Seconds()

	// Calibration: the same solve, stateless and in-process. Minimum of a
	// small sample — the same noise floor benchjson keeps.
	calN := 20
	calNS := int64(1<<63 - 1)
	for i := 0; i < calN; i++ {
		t0 := time.Now()
		if _, err := sflow.Solve(*alg, sc.Overlay, sc.Req, sc.SourceNID, sflow.SolveOptions{Workers: 1}); err != nil {
			return fmt.Errorf("calibration solve: %w", err)
		}
		if ns := time.Since(t0).Nanoseconds(); ns < calNS {
			calNS = ns
		}
	}

	bench := "ServeSolve"
	if *mode == "admit" {
		bench = "ServeAdmit"
	}
	tag := fmt.Sprintf("alg=%s/clients=%d", *alg, *clients)
	fmt.Printf("Benchmark%s/%s/p50 \t%d\t%d ns/op\n", bench, tag, solves, p50)
	fmt.Printf("Benchmark%s/%s/p99 \t%d\t%d ns/op\n", bench, tag, solves, p99)
	fmt.Printf("Benchmark%s/%s/persolve \t%d\t%d ns/op\n", bench, tag, solves, perSolve)
	fmt.Printf("BenchmarkServeCalibration/alg=%s \t%d\t%d ns/op\n", *alg, calN, calNS)

	fmt.Fprintf(os.Stderr,
		"sflowload: %d clients for %s against %s: %d %s ops (%.0f ops/sec), p50 %s, p99 %s, %d client failures\n",
		*clients, elapsed.Round(time.Millisecond), *addr, solves, *mode, rate,
		time.Duration(p50), time.Duration(p99), failures.Load())
	if failed := failures.Load(); failed > int64(*clients/2) {
		return fmt.Errorf("%d of %d clients failed", failed, *clients)
	}
	return nil
}
