package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sflow"
)

func runCmd(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	err := run(args, &buf)
	return buf.String(), err
}

func TestRunAlgorithms(t *testing.T) {
	for _, alg := range []string{"sflow", "heuristic", "hierarchical", "optimal", "fixed", "random"} {
		out, err := runCmd(t, "-seed", "3", "-size", "12", "-services", "4", "-alg", alg)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		for _, want := range []string{"algorithm:   " + alg, "flow graph:", "quality:", "stream"} {
			if !strings.Contains(out, want) {
				t.Fatalf("%s: missing %q in:\n%s", alg, want, out)
			}
		}
	}
}

func TestRunBaselineNeedsPath(t *testing.T) {
	if _, err := runCmd(t, "-seed", "3", "-size", "12", "-services", "4", "-alg", "baseline"); err == nil {
		t.Fatal("baseline on a DAG accepted")
	}
	out, err := runCmd(t, "-seed", "3", "-size", "12", "-services", "4", "-kind", "path", "-alg", "baseline")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "shape path") {
		t.Fatalf("missing shape in:\n%s", out)
	}
}

func TestRunStatsAndTrace(t *testing.T) {
	out, err := runCmd(t, "-seed", "3", "-size", "12", "-services", "4", "-stats", "-trace")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "stats:") || !strings.Contains(out, "messages") {
		t.Fatalf("missing stats in:\n%s", out)
	}
	if !strings.Contains(out, "sfederate") || !strings.Contains(out, "report") {
		t.Fatalf("missing trace in:\n%s", out)
	}
}

func TestRunDOTTargets(t *testing.T) {
	for target, header := range map[string]string{
		"requirement": "digraph requirement",
		"overlay":     "digraph overlay",
		"abstract":    "digraph abstract",
		"flow":        "digraph flowgraph",
	} {
		out, err := runCmd(t, "-seed", "3", "-size", "12", "-services", "4", "-dot", target)
		if err != nil {
			t.Fatalf("%s: %v", target, err)
		}
		if !strings.HasPrefix(out, header) {
			t.Fatalf("%s: output starts with %q", target, out[:min(40, len(out))])
		}
	}
	if _, err := runCmd(t, "-dot", "bogus"); err == nil {
		t.Fatal("bogus dot target accepted")
	}
}

func TestRunScenarioFile(t *testing.T) {
	// Generate a bundle with the sibling generator logic via the public
	// API and feed it back through -scenario.
	dir := t.TempDir()
	path := filepath.Join(dir, "bundle.json")
	out, err := runCmd(t, "-seed", "7", "-size", "10", "-services", "4", "-dot", "requirement")
	if err != nil {
		t.Fatal(err)
	}
	_ = out
	// Use sflowgen's output format: write the scenario through the JSON
	// encoder by regenerating it here.
	if err := writeScenario(path, 7, 10, 4); err != nil {
		t.Fatal(err)
	}
	got, err := runCmd(t, "-scenario", path, "-alg", "optimal")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, "flow graph:") {
		t.Fatalf("scenario run output:\n%s", got)
	}
	if _, err := runCmd(t, "-scenario", filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing scenario file accepted")
	}
	if err := os.WriteFile(path, []byte("{garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := runCmd(t, "-scenario", path); err == nil {
		t.Fatal("garbage scenario accepted")
	}
}

func TestRunRejections(t *testing.T) {
	if _, err := runCmd(t, "-alg", "bogus", "-seed", "1", "-size", "10", "-services", "4"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := runCmd(t, "-kind", "bogus"); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := runCmd(t, "-badflag"); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// writeScenario saves a generated scenario bundle as JSON, as sflowgen does.
func writeScenario(path string, seed int64, size, services int) error {
	sc, err := sflow.GenerateScenario(sflow.ScenarioConfig{
		Seed: seed, NetworkSize: size, Services: services,
	})
	if err != nil {
		return err
	}
	data, err := json.Marshal(sc)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func TestRunMermaidTrace(t *testing.T) {
	out, err := runCmd(t, "-seed", "3", "-size", "12", "-services", "4", "-mermaid")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "sequenceDiagram") || !strings.Contains(out, "consumer->>") {
		t.Fatalf("mermaid output wrong:\n%s", out)
	}
}
