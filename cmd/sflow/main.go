// Command sflow runs one service federation over a scenario — either loaded
// from a JSON bundle produced by sflowgen, or generated on the fly — and
// prints the resulting service flow graph, its quality, and optionally the
// protocol statistics or a Graphviz rendering.
//
// Usage:
//
//	sflow -seed 42 -size 30 -services 6 -alg sflow -stats
//	sflow -scenario bundle.json -alg optimal
//	sflow -seed 1 -size 20 -alg sflow -dot flow > flow.dot
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"sflow"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sflow:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sflow", flag.ContinueOnError)
	var (
		scenarioPath = fs.String("scenario", "", "path to a scenario JSON bundle (overrides generation flags)")
		seed         = fs.Int64("seed", 1, "random seed for scenario generation")
		size         = fs.Int("size", 30, "underlay network size")
		services     = fs.Int("services", 6, "number of required services")
		instances    = fs.Int("instances", 3, "instances per non-source service")
		kind         = fs.String("kind", "general", "requirement shape: path, disjoint, split-merge or general")
		alg          = fs.String("alg", "sflow", "algorithm: sflow, baseline, heuristic, hierarchical, optimal, fixed, random or servicepath")
		hops         = fs.Int("hops", 2, "local view radius for the sflow algorithm")
		concurrent   = fs.Bool("concurrent", false, "run sflow on the goroutine transport instead of the DES")
		loopback     = fs.Bool("loopback", false, "run sflow over real loopback TCP sockets")
		linkstate    = fs.Bool("linkstate", false, "build local views from a link-state exchange instead of the oracle")
		noReduce     = fs.Bool("no-reductions", false, "sflow ablation: disable the reduction heuristics")
		showStats    = fs.Bool("stats", false, "print protocol statistics (sflow only)")
		showTrace    = fs.Bool("trace", false, "print the protocol event timeline (sflow only)")
		mermaid      = fs.Bool("mermaid", false, "print the timeline as a Mermaid sequence diagram (implies -trace)")
		dotOut       = fs.String("dot", "", "emit Graphviz DOT instead of text: requirement, overlay, abstract or flow")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	sc, err := loadScenario(*scenarioPath, *seed, *size, *services, *instances, *kind)
	if err != nil {
		return err
	}

	switch *dotOut {
	case "requirement":
		fmt.Fprint(out, sflow.RequirementDOT(sc.Req))
		return nil
	case "overlay":
		fmt.Fprint(out, sflow.OverlayDOT(sc.Overlay))
		return nil
	case "abstract":
		d, err := sflow.AbstractDOT(sc.Overlay, sc.Req)
		if err != nil {
			return err
		}
		fmt.Fprint(out, d)
		return nil
	case "", "flow":
		// handled after federation
	default:
		return fmt.Errorf("unknown -dot target %q", *dotOut)
	}

	var rec *sflow.TraceRecorder
	if *showTrace || *mermaid {
		rec = sflow.NewTrace()
	}
	opts := sflow.Options{
		Hops: *hops, Concurrent: *concurrent, Loopback: *loopback,
		LinkState: *linkstate, DisableReductions: *noReduce, Trace: rec,
	}
	fg, metric, stats, err := federate(sc, *alg, opts, *seed)
	if err != nil {
		return err
	}
	if *dotOut == "flow" {
		fmt.Fprint(out, sflow.FlowDOT(sc.Overlay, fg))
		return nil
	}

	fmt.Fprintf(out, "requirement: %d services, %d streams, shape %s\n",
		sc.Req.NumServices(), sc.Req.NumDependencies(), sc.Req.Shape())
	fmt.Fprintf(out, "overlay:     %d instances, %d service links\n",
		sc.Overlay.NumInstances(), sc.Overlay.NumLinks())
	fmt.Fprintf(out, "algorithm:   %s\n", *alg)
	fmt.Fprintf(out, "flow graph:  %v\n", fg)
	if metric.Reachable() {
		fmt.Fprintf(out, "quality:     bandwidth %d Kbit/s, latency %d us\n", metric.Bandwidth, metric.Latency)
	} else {
		fmt.Fprintf(out, "quality:     incomplete (the %s algorithm could not satisfy the full requirement)\n", *alg)
	}
	for _, e := range fg.Edges() {
		fmt.Fprintf(out, "  stream %d->%d via %v (bw %d, lat %d)\n",
			e.FromSID, e.ToSID, e.Path, e.Metric.Bandwidth, e.Metric.Latency)
	}
	if rec != nil {
		if *mermaid {
			fmt.Fprint(out, rec.Mermaid())
		} else {
			fmt.Fprint(out, rec)
		}
	}
	if *showStats && stats != nil {
		fmt.Fprintf(out, "stats:       %d messages, %d local computations (%d re-computations), %d nodes, virtual time %d us, compute time %v\n",
			stats.Messages, stats.LocalComputations, stats.Recomputations,
			stats.NodesInvolved, stats.VirtualTime, stats.ComputeTime)
	}
	return nil
}

func loadScenario(path string, seed int64, size, services, instances int, kind string) (*sflow.Scenario, error) {
	if path != "" {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var sc sflow.Scenario
		if err := json.Unmarshal(data, &sc); err != nil {
			return nil, err
		}
		return &sc, nil
	}
	k, err := sflow.ParseScenarioKind(kind)
	if err != nil {
		return nil, err
	}
	return sflow.GenerateScenario(sflow.ScenarioConfig{
		Seed: seed, NetworkSize: size, Services: services,
		InstancesPerService: instances, Kind: k,
	})
}

func federate(sc *sflow.Scenario, alg string, opts sflow.Options, seed int64) (*sflow.FlowGraph, sflow.Metric, *sflow.Stats, error) {
	if alg == "sflow" {
		res, err := sflow.Federate(sc.Overlay, sc.Req, sc.SourceNID, opts)
		if err != nil {
			return nil, sflow.Metric{}, nil, err
		}
		return res.Flow, res.Metric, &res.Stats, nil
	}
	sol, err := sflow.Solve(alg, sc.Overlay, sc.Req, sc.SourceNID, sflow.SolveOptions{
		Rng:     rand.New(rand.NewSource(seed)),
		Metrics: opts.Metrics,
	})
	if err != nil {
		// A partial federation still has a flow graph worth printing; the
		// unreachable metric makes the output say so.
		var partial *sflow.PartialFederationError
		if errors.As(err, &partial) {
			return partial.Flow, sflow.Unreachable, nil, nil
		}
		return nil, sflow.Metric{}, nil, err
	}
	return sol.Flow, sol.Metric, nil, nil
}
