package main

import (
	"regexp"
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
BenchmarkWidestKernel/n=120-8         	    1000	    50000 ns/op	    1024 B/op	      12 allocs/op
BenchmarkWidestKernel/n=120-8         	    1000	    48000 ns/op	    1024 B/op	      12 allocs/op
BenchmarkWidestKernel/n=120-8         	    1000	    52000 ns/op	    1024 B/op	      12 allocs/op
BenchmarkCalibration-8                	    2000	    10000 ns/op
BenchmarkNoMetric-8                   	    2000	  garbage
PASS
`

func parsed(t *testing.T, text string) *Record {
	t.Helper()
	rec, err := parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

// parse keeps the minimum ns/op per benchmark, strips the GOMAXPROCS
// suffix, and skips lines without a ns/op figure.
func TestParseKeepsMinimumAndStripsSuffix(t *testing.T) {
	rec := parsed(t, benchOutput)
	if len(rec.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %+v", len(rec.Benchmarks), rec.Benchmarks)
	}
	by := rec.byName()
	kernel, ok := by["BenchmarkWidestKernel/n=120"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %+v", rec.Benchmarks)
	}
	if kernel.NsPerOp != 48000 {
		t.Fatalf("ns/op = %v, want the minimum 48000", kernel.NsPerOp)
	}
	if kernel.BytesPerOp != 1024 || kernel.AllocsPerOp != 12 {
		t.Fatalf("memory columns = %+v", kernel)
	}
	if _, ok := by["BenchmarkNoMetric"]; ok {
		t.Fatal("line without ns/op parsed as a benchmark")
	}
}

func TestCalibration(t *testing.T) {
	rec := parsed(t, benchOutput)
	ns, name, err := rec.calibration(regexp.MustCompile("BenchmarkCalibration"))
	if err != nil || ns != 10000 || name != "BenchmarkCalibration" {
		t.Fatalf("calibration = %v %q %v", ns, name, err)
	}
	if _, _, err := rec.calibration(regexp.MustCompile("NoSuchBenchmark")); err == nil {
		t.Fatal("calibration matched nothing but did not fail")
	}
}

func TestCompareGate(t *testing.T) {
	baseline := parsed(t, benchOutput)
	match := regexp.MustCompile("BenchmarkWidestKernel")
	norm := regexp.MustCompile("BenchmarkCalibration")

	// Identical run: passes, with or without normalization.
	if err := compare(baseline, parsed(t, benchOutput), match, norm, 1.25); err != nil {
		t.Fatalf("identical run failed the gate: %v", err)
	}
	if err := compare(baseline, parsed(t, benchOutput), match, nil, 1.25); err != nil {
		t.Fatalf("identical run failed the unnormalized gate: %v", err)
	}

	// A 2x slowdown of the gated kernel fails at 1.25x.
	slow := parsed(t, strings.ReplaceAll(strings.ReplaceAll(strings.ReplaceAll(
		benchOutput, "48000", "96000"), "50000", "100000"), "52000", "104000"))
	if err := compare(baseline, slow, match, norm, 1.25); err == nil {
		t.Fatal("2x regression passed the gate")
	}

	// The same slowdown passes when the calibration leg slowed down equally:
	// the machine is slower, not the code.
	slower := parsed(t, strings.ReplaceAll(strings.ReplaceAll(strings.ReplaceAll(strings.ReplaceAll(
		benchOutput, "48000", "96000"), "50000", "100000"), "52000", "104000"), "10000 ns/op", "20000 ns/op"))
	if err := compare(baseline, slower, match, norm, 1.25); err != nil {
		t.Fatalf("uniformly slower machine failed the normalized gate: %v", err)
	}

	// A benchmark present in the baseline but missing from the run fails
	// loudly instead of silently shrinking the gate.
	missing := parsed(t, "BenchmarkCalibration-8 100 10000 ns/op\n")
	if err := compare(baseline, missing, match, norm, 1.25); err == nil {
		t.Fatal("missing gated benchmark passed")
	}

	// A match regexp that covers nothing makes the gate vacuous: error.
	if err := compare(baseline, parsed(t, benchOutput), regexp.MustCompile("NoSuch"), nil, 1.25); err == nil {
		t.Fatal("vacuous gate passed")
	}

	// Baseline and current disagreeing on the calibration benchmark is a
	// configuration error, not a pass.
	otherCal := parsed(t, benchOutput+"BenchmarkAaaCalibration-8 100 9000 ns/op\n")
	if err := compare(otherCal, parsed(t, benchOutput), match, regexp.MustCompile("Calibration"), 1.25); err == nil {
		t.Fatal("differing calibration benchmarks passed")
	}
}
