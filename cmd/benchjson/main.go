// Command benchjson turns `go test -bench` output into a machine-readable
// JSON perf record and gates benchmark regressions against a committed
// baseline.
//
// Emit mode (default): read benchmark output on stdin (or -in), write a JSON
// record of ns/op, B/op and allocs/op per benchmark to stdout (or -out).
// When -count ran a benchmark several times, the minimum ns/op is kept — the
// benchstat-style noise floor.
//
// Compare mode (-compare baseline.json): additionally match each benchmark
// of the new run whose name matches -match against the baseline and fail
// (exit 1) when ns/op regressed by more than -threshold (a ratio; 1.25
// means +25%).
//
// Committed baselines were captured on one machine and CI runs on another,
// so raw ns/op comparisons would gate machine speed, not code. -normalize
// names a calibration benchmark present in both records (the map-based
// oracle kernel, which this PR's hot path does not touch): every ns/op is
// divided by the calibration ns/op of its own record first, cancelling the
// machine out of the ratio.
//
// GOMAXPROCS name suffixes ("-8") are stripped so records compare across
// hosts with different core counts.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Bench is one benchmark's recorded cost.
type Bench struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Record is the BENCH_hotpath.json schema.
type Record struct {
	Benchmarks []Bench `json:"benchmarks"`
}

var procSuffix = regexp.MustCompile(`-\d+$`)

// parse reads `go test -bench` output, keeping per name the line with the
// minimum ns/op.
func parse(r io.Reader) (*Record, error) {
	best := make(map[string]Bench)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := procSuffix.ReplaceAllString(fields[0], "")
		b := Bench{Name: name}
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp, seen = v, true
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			}
		}
		if !seen {
			continue
		}
		if prev, ok := best[name]; !ok || b.NsPerOp < prev.NsPerOp {
			best[name] = b
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	rec := &Record{Benchmarks: make([]Bench, 0, len(best))}
	for _, b := range best {
		rec.Benchmarks = append(rec.Benchmarks, b)
	}
	sort.Slice(rec.Benchmarks, func(i, j int) bool {
		return rec.Benchmarks[i].Name < rec.Benchmarks[j].Name
	})
	return rec, nil
}

func (r *Record) byName() map[string]Bench {
	m := make(map[string]Bench, len(r.Benchmarks))
	for _, b := range r.Benchmarks {
		m[b.Name] = b
	}
	return m
}

// calibration returns the ns/op of the first (sorted) benchmark matching re.
func (r *Record) calibration(re *regexp.Regexp) (float64, string, error) {
	for _, b := range r.Benchmarks {
		if re.MatchString(b.Name) && b.NsPerOp > 0 {
			return b.NsPerOp, b.Name, nil
		}
	}
	return 0, "", fmt.Errorf("no benchmark matches normalization pattern %q", re)
}

func compare(baseline, current *Record, match *regexp.Regexp, normalize *regexp.Regexp, threshold float64) error {
	baseScale, curScale := 1.0, 1.0
	if normalize != nil {
		var bName, cName string
		var err error
		baseScale, bName, err = baseline.calibration(normalize)
		if err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		curScale, cName, err = current.calibration(normalize)
		if err != nil {
			return fmt.Errorf("current run: %w", err)
		}
		if bName != cName {
			return fmt.Errorf("normalization benchmarks differ: baseline %q vs current %q", bName, cName)
		}
		fmt.Printf("normalizing by %s (baseline %.0f ns/op, current %.0f ns/op)\n", bName, baseScale, curScale)
	}
	cur := current.byName()
	var failures []string
	compared := 0
	for _, base := range baseline.Benchmarks {
		if !match.MatchString(base.Name) {
			continue
		}
		now, ok := cur[base.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: present in baseline but missing from this run (renamed without regenerating the baseline?)", base.Name))
			continue
		}
		compared++
		ratio := (now.NsPerOp / curScale) / (base.NsPerOp / baseScale)
		status := "ok"
		if ratio > threshold {
			status = "REGRESSION"
			failures = append(failures, fmt.Sprintf("%s: %.2fx the baseline (threshold %.2fx)", base.Name, ratio, threshold))
		}
		fmt.Printf("%-60s %10.0f -> %10.0f ns/op  ratio %.2fx  %s\n",
			base.Name, base.NsPerOp, now.NsPerOp, ratio, status)
	}
	if compared == 0 {
		return fmt.Errorf("no baseline benchmark matches %q — gate would be vacuous", match)
	}
	if len(failures) > 0 {
		return fmt.Errorf("benchmark regression gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	fmt.Printf("gate passed: %d benchmarks within %.2fx of baseline\n", compared, threshold)
	return nil
}

func main() {
	var (
		in        = flag.String("in", "", "benchmark output file (default stdin)")
		out       = flag.String("out", "", "JSON output file (default stdout; emit mode only)")
		baseline  = flag.String("compare", "", "baseline JSON to compare against (compare mode)")
		match     = flag.String("match", ".*", "regexp of benchmark names the gate covers")
		normalize = flag.String("normalize", "", "regexp of the calibration benchmark for cross-machine normalization")
		threshold = flag.Float64("threshold", 1.25, "maximum allowed ns/op ratio vs baseline")
	)
	flag.Parse()

	var src io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = f
	}
	rec, err := parse(src)
	if err != nil {
		fatal(err)
	}
	if len(rec.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}

	if *baseline != "" {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			fatal(err)
		}
		var base Record
		if err := json.Unmarshal(data, &base); err != nil {
			fatal(fmt.Errorf("parsing %s: %w", *baseline, err))
		}
		matchRE, err := regexp.Compile(*match)
		if err != nil {
			fatal(err)
		}
		var normRE *regexp.Regexp
		if *normalize != "" {
			if normRE, err = regexp.Compile(*normalize); err != nil {
				fatal(err)
			}
		}
		if err := compare(&base, rec, matchRE, normRE, *threshold); err != nil {
			fatal(err)
		}
		return
	}

	enc, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
