// Command sflowgen generates reproducible scenario bundles — an underlying
// network, a service requirement and the derived service overlay — and
// writes them as JSON for later runs with the sflow command.
//
// Usage:
//
//	sflowgen -seed 42 -size 30 -services 6 -kind general -o bundle.json
//	sflowgen -seed 1 -size 10 | sflow -scenario /dev/stdin
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"sflow"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sflowgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sflowgen", flag.ContinueOnError)
	var (
		seed      = fs.Int64("seed", 1, "random seed")
		size      = fs.Int("size", 30, "underlay network size")
		services  = fs.Int("services", 6, "number of required services")
		instances = fs.Int("instances", 3, "instances per non-source service")
		kind      = fs.String("kind", "general", "requirement shape: path, disjoint, split-merge or general")
		waxman    = fs.Bool("waxman", false, "use the Waxman underlay model instead of uniform")
		outPath   = fs.String("o", "", "output file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	k, err := sflow.ParseScenarioKind(*kind)
	if err != nil {
		return err
	}
	sc, err := sflow.GenerateScenario(sflow.ScenarioConfig{
		Seed: *seed, NetworkSize: *size, Services: *services,
		InstancesPerService: *instances, Kind: k, Waxman: *waxman,
	})
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(sc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *outPath == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(*outPath, data, 0o644)
}
