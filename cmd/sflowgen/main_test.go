package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"sflow"
)

func TestGenerateBundle(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bundle.json")
	if err := run([]string{"-seed", "9", "-size", "12", "-services", "4", "-o", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var sc sflow.Scenario
	if err := json.Unmarshal(data, &sc); err != nil {
		t.Fatalf("bundle does not decode: %v", err)
	}
	if sc.Req.NumServices() != 4 {
		t.Fatalf("bundle has %d services", sc.Req.NumServices())
	}
	// The bundle must federate successfully.
	if _, err := sflow.Federate(sc.Overlay, sc.Req, sc.SourceNID, sflow.Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterministicBundles(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")
	for _, p := range []string{a, b} {
		if err := run([]string{"-seed", "5", "-size", "10", "-services", "4", "-kind", "tree", "-o", p}); err != nil {
			t.Fatal(err)
		}
	}
	da, _ := os.ReadFile(a)
	db, _ := os.ReadFile(b)
	if string(da) != string(db) {
		t.Fatal("same seed produced different bundles")
	}
}

func TestGenerateRejections(t *testing.T) {
	if err := run([]string{"-kind", "bogus"}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if err := run([]string{"-size", "1"}); err == nil {
		t.Fatal("degenerate size accepted")
	}
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
