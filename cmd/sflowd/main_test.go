package main

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestParseQuotas(t *testing.T) {
	got, err := parseQuotas("100, 50,0")
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{100, 50, 0}; !reflect.DeepEqual(got, want) {
		t.Fatalf("parseQuotas = %v", got)
	}
	if got, err := parseQuotas(""); err != nil || got != nil {
		t.Fatalf("empty quota = %v, %v", got, err)
	}
	for _, bad := range []string{"abc", "-1", "1,,2"} {
		if _, err := parseQuotas(bad); err == nil {
			t.Errorf("parseQuotas(%q) accepted", bad)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-nonsense"},
		{"-kind", "bogus"},
		{"-quota", "x"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}

// Full daemon lifecycle: serve with the reoptimizer enabled, write the
// address file, then shut down cleanly on SIGTERM.
func TestRunServesAndShutsDown(t *testing.T) {
	dir := t.TempDir()
	addrfile := filepath.Join(dir, "addr")
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0", "-addrfile", addrfile,
			"-size", "10", "-services", "3", "-instances", "2",
			"-reopt", "-hot-threshold", "0.9", "-reopt-interval", "10ms",
		})
	}()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if data, err := os.ReadFile(addrfile); err == nil && strings.Contains(string(data), ":") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("address file never appeared")
		}
		time.Sleep(10 * time.Millisecond)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down on SIGTERM")
	}
}

// -large -lazy serves a directly generated overlay with demand-driven
// routing: the daemon must come up (no all-pairs at boot) and shut down
// cleanly.
func TestRunServesLargeLazyOverlay(t *testing.T) {
	dir := t.TempDir()
	addrfile := filepath.Join(dir, "addr")
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0", "-addrfile", addrfile,
			"-large", "300", "-lazy", "-services", "4", "-instances", "2",
		})
	}()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if data, err := os.ReadFile(addrfile); err == nil && strings.Contains(string(data), ":") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("address file never appeared")
		}
		time.Sleep(10 * time.Millisecond)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down on SIGTERM")
	}
}
