// Command sflowd is the long-lived serving daemon: it owns one service
// overlay and answers Solve, Repair, mutation and multi-tenant admission
// RPCs from many concurrent clients. Reads are lock-free (handlers route
// against an immutable epoch fetched with one atomic load); writes are
// serialized through a single writer goroutine that batches mutations and
// publishes fresh epochs — see DESIGN.md, "Serving architecture". Admission
// (admit/release/tenants ops) runs through a capacity allocator configured
// by -classes/-quota/-preempt/-instance-capacity; see DESIGN.md,
// "Multi-tenant allocator". With -reopt the daemon also runs the
// congestion-driven reoptimizer: every -reopt-interval it inspects per-link
// admitted load (served by the `links` op), flags links sustained above
// -hot-threshold, and live-migrates the cheapest tenants off them under a
// no-regression gate — see DESIGN.md, "Re-optimization loop".
//
// The overlay is generated reproducibly from the scenario flags, so a load
// generator started with the same flags (see sflowload) targets the same
// requirement without any side channel.
//
// Usage:
//
//	sflowd -addr 127.0.0.1:0 -addrfile /tmp/sflowd.addr -seed 1 -size 20
//
// The served address is printed to stdout (and written to -addrfile when
// given) once the listener is up. SIGINT or SIGTERM shuts down cleanly and
// prints the stable metrics snapshot to stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"sflow"
	"sflow/internal/daemon"
	"sflow/internal/provision"
)

// parseQuotas turns "100,50,0" into per-class admission quotas.
func parseQuotas(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	quotas := make([]int, len(parts))
	for i, p := range parts {
		q, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || q < 0 {
			return nil, fmt.Errorf("bad -quota entry %q (want non-negative integers)", p)
		}
		quotas[i] = q
	}
	return quotas, nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sflowd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sflowd", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:0", "address to serve on (:0 picks a free port)")
		addrfile = fs.String("addrfile", "", "write the served address to this file once listening")

		seed      = fs.Int64("seed", 1, "scenario seed")
		size      = fs.Int("size", 20, "underlay network size")
		services  = fs.Int("services", 5, "number of required services")
		instances = fs.Int("instances", 3, "instances per non-source service")
		kind      = fs.String("kind", "general", "requirement shape: path, disjoint, split-merge or general")
		workers   = fs.Int("workers", 0, "recompute fan-out (0 = GOMAXPROCS)")
		lazy      = fs.Bool("lazy", false, "demand-driven routing: no all-pairs computation at boot, rows materialize on first read, churn evicts instead of recomputing (for -large overlays)")
		large     = fs.Int("large", 0, "serve a directly generated large overlay with this many nodes instead of the underlay scenario (path requirement; pair with -lazy)")
		maxRows   = fs.Int("max-rows", 0, "bound the lazy row cache: keep at most this many materialized routing rows, LRU-evicting beyond it (0 = unbounded; requires -lazy)")

		classes = fs.Int("classes", 1, "number of admission priority classes")
		quota   = fs.String("quota", "", "per-class admission quotas, comma-separated (0 = unlimited), e.g. 100,50")
		preempt = fs.Bool("preempt", false, "let higher classes preempt strictly lower ones when capacity runs out")
		percap  = fs.Int("instance-capacity", 0, "concurrent admissions per service instance (0 = unlimited)")

		reoptOn  = fs.Bool("reopt", false, "run the congestion-driven reoptimizer loop (live migration off hot links)")
		hotTh    = fs.Float64("hot-threshold", 0.9, "link utilization at which the reoptimizer considers a link hot")
		reoptIvl = fs.Duration("reopt-interval", time.Second, "reoptimizer step period")
		sustain  = fs.Int("reopt-sustain", 2, "consecutive hot observations before a link is declared congested")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	quotas, err := parseQuotas(*quota)
	if err != nil {
		return err
	}
	if *maxRows > 0 && !*lazy {
		return fmt.Errorf("-max-rows bounds the lazy row cache and requires -lazy")
	}

	k, err := sflow.ParseScenarioKind(*kind)
	if err != nil {
		return err
	}
	var sc *sflow.Scenario
	if *large > 0 {
		sc, err = sflow.GenerateLargeScenario(sflow.LargeScenarioConfig{
			Seed: *seed, Nodes: *large, Services: *services,
			InstancesPerService: *instances,
		})
		k = sflow.KindPath
	} else {
		sc, err = sflow.GenerateScenario(sflow.ScenarioConfig{
			Seed: *seed, NetworkSize: *size, Services: *services,
			InstancesPerService: *instances, Kind: k,
		})
	}
	if err != nil {
		return err
	}

	reg := sflow.NewMetrics()
	srv := daemon.New(sc.Overlay, daemon.Options{
		Workers: *workers,
		Lazy:    *lazy,
		MaxRows: *maxRows,
		Metrics: reg,
		Admission: provision.AllocatorOptions{
			Classes:          *classes,
			Quotas:           quotas,
			Preempt:          *preempt,
			InstanceCapacity: *percap,
		},
		Reopt: daemon.ReoptOptions{
			Enabled:      *reoptOn,
			HotThreshold: *hotTh,
			Sustain:      *sustain,
			Interval:     *reoptIvl,
		},
	})
	if err := srv.Serve(*addr); err != nil {
		srv.Close()
		return err
	}
	scale := *size
	if *large > 0 {
		scale = *large
	}
	fmt.Printf("sflowd: serving seed=%d size=%d services=%d kind=%s on %s\n",
		*seed, scale, *services, k, srv.Addr())
	if *addrfile != "" {
		if err := os.WriteFile(*addrfile, []byte(srv.Addr()+"\n"), 0o644); err != nil {
			srv.Close()
			return err
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "sflowd: shutting down")
	srv.Close()
	fmt.Fprint(os.Stderr, reg.Snapshot().StableText())
	return nil
}
