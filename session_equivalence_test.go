package sflow

import (
	"bytes"
	"encoding/json"
	"errors"
	"math/rand"
	"testing"

	"sflow/internal/session"
)

// TestSessionSolveByteIdentical is the facade half of the equivalence
// oracle: along seeded random mutation traces, every algorithm of the Solve
// registry returns byte-identical output (JSON-encoded flow graph and
// metric) whether it runs through the session's maintained caches or through
// the stateless rebuild path on the same overlay state.
func TestSessionSolveByteIdentical(t *testing.T) {
	seeds, events := 5, 1000
	if testing.Short() {
		seeds, events = 2, 250
	}
	kinds := []ScenarioKind{KindGeneral, KindDisjoint, KindSplitMerge}
	algorithms := []string{"heuristic", "fixed", "random", "servicepath"}
	for seed := int64(0); seed < int64(seeds); seed++ {
		sc, err := GenerateScenario(ScenarioConfig{
			Seed: seed + 100, NetworkSize: 20, Services: 5,
			InstancesPerService: 3, Kind: kinds[int(seed)%len(kinds)],
		})
		if err != nil {
			t.Fatal(err)
		}
		s := NewSession(sc.Overlay, SessionOptions{Workers: int(seed % 3)})
		churn := session.NewChurn(s.Session, seed*7+1, []int{sc.SourceNID}, sc.Req.Services())
		for e := 1; e <= events; e++ {
			if _, err := churn.Step(); err != nil {
				t.Fatalf("seed %d event %d: %v", seed, e, err)
			}
			if e%20 != 0 {
				continue
			}
			for _, name := range algorithms {
				// The "random" algorithm draws from SolveOptions.Rng: seed
				// both paths identically so any divergence is the cache's.
				got, gerr := s.Solve(name, sc.Req, sc.SourceNID,
					SolveOptions{Rng: rand.New(rand.NewSource(int64(e)))})
				want, werr := Solve(name, s.Overlay(), sc.Req, sc.SourceNID,
					SolveOptions{Rng: rand.New(rand.NewSource(int64(e))), Workers: 1})
				if (gerr == nil) != (werr == nil) {
					t.Fatalf("seed %d event %d %s: error mismatch: session %v, stateless %v",
						seed, e, name, gerr, werr)
				}
				if gerr != nil {
					if gerr.Error() != werr.Error() {
						t.Fatalf("seed %d event %d %s: error text diverged:\nsession:   %v\nstateless: %v",
							seed, e, name, gerr, werr)
					}
					continue
				}
				if got.Metric != want.Metric {
					t.Fatalf("seed %d event %d %s: metric %v != %v", seed, e, name, got.Metric, want.Metric)
				}
				gj, err := json.Marshal(got.Flow)
				if err != nil {
					t.Fatal(err)
				}
				wj, err := json.Marshal(want.Flow)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(gj, wj) {
					t.Fatalf("seed %d event %d %s: flow graphs diverged:\nsession:   %s\nstateless: %s",
						seed, e, name, gj, wj)
				}
			}
		}
	}
}

// TestSessionSolveUnknownAlgorithm pins the registry error on the session
// path.
func TestSessionSolveUnknownAlgorithm(t *testing.T) {
	sc, err := GenerateScenario(ScenarioConfig{Seed: 5, NetworkSize: 12, Services: 4})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(sc.Overlay, SessionOptions{})
	if _, err := s.Solve("nope", sc.Req, sc.SourceNID, SolveOptions{}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

// TestSessionSolveHierarchical covers the one registry entry that bypasses
// the caches: it must still agree with the stateless dispatch.
func TestSessionSolveHierarchical(t *testing.T) {
	sc, err := GenerateScenario(ScenarioConfig{Seed: 6, NetworkSize: 20, Services: 5, InstancesPerService: 3})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(sc.Overlay, SessionOptions{})
	churn := session.NewChurn(s.Session, 9, []int{sc.SourceNID}, sc.Req.Services())
	for e := 0; e < 50; e++ {
		if _, err := churn.Step(); err != nil {
			t.Fatal(err)
		}
	}
	got, gerr := s.Solve("hierarchical", sc.Req, sc.SourceNID, SolveOptions{})
	want, werr := Solve("hierarchical", s.Overlay(), sc.Req, sc.SourceNID, SolveOptions{})
	if (gerr == nil) != (werr == nil) {
		t.Fatalf("error mismatch: session %v, stateless %v", gerr, werr)
	}
	if gerr == nil && got.Metric != want.Metric {
		t.Fatalf("metric %v != %v", got.Metric, want.Metric)
	}
}

// TestSessionRepairPartialReusesCaches drives the repair path through the
// session: after a federation gives up partial, RepairPartial removes the
// unresponsive instances through session events, the repair's outcome equals
// the stateless core repair on an equivalent overlay, and the maintained
// caches survive exact.
func TestSessionRepairPartialReusesCaches(t *testing.T) {
	sc, err := GenerateScenario(ScenarioConfig{Seed: 7, NetworkSize: 30, Services: 5, InstancesPerService: 3})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(sc.Overlay, SessionOptions{})

	// Crash one non-source instance deterministically mid-federation.
	var victim int
	for _, inst := range s.Overlay().Instances() {
		if inst.NID != sc.SourceNID && inst.SID != s.Overlay().SIDOf(sc.SourceNID) {
			if len(s.Overlay().InstancesOf(inst.SID)) > 1 {
				victim = inst.NID
				break
			}
		}
	}
	if victim == 0 {
		t.Skip("no suitable victim in this scenario")
	}
	opts := Options{Faults: &Faults{Seed: 42, Crashes: []Crash{{Node: victim, After: 1, Down: -1}}}}
	_, err = s.Federate(sc.Req, sc.SourceNID, opts)
	if err == nil {
		t.Skip("crash did not interrupt this federation")
	}
	var perr *PartialFederationError
	if !errors.As(err, &perr) {
		t.Fatalf("federation under crash failed non-partially: %v", err)
	}

	before := s.Overlay().Clone()
	got, gerr := s.RepairPartial(sc.Req, sc.SourceNID, perr, Options{})
	want, werr := RepairPartial(before, sc.Req, sc.SourceNID, perr, Options{})
	if (gerr == nil) != (werr == nil) {
		t.Fatalf("repair error mismatch: session %v, stateless %v", gerr, werr)
	}
	if gerr == nil {
		if got.Metric != want.Metric {
			t.Fatalf("repair metric %v != %v", got.Metric, want.Metric)
		}
		gj, _ := json.Marshal(got.Flow)
		wj, _ := json.Marshal(want.Flow)
		if !bytes.Equal(gj, wj) {
			t.Fatalf("repair flows diverged:\nsession:   %s\nstateless: %s", gj, wj)
		}
	}
	// The unresponsive instances must be gone from the session overlay, and
	// the caches must still match a scratch rebuild (oracle at the facade).
	for _, nid := range perr.Unresponsive {
		if _, ok := before.Instance(nid); !ok {
			continue
		}
		if _, ok := s.Overlay().Instance(nid); ok {
			t.Fatalf("unresponsive instance %d still in the session overlay", nid)
		}
	}
	if _, err := s.Solve("heuristic", sc.Req, sc.SourceNID, SolveOptions{}); err != nil {
		// The repair already proved the requirement still fits; a solve
		// over the maintained caches must agree.
		t.Fatalf("post-repair solve over maintained caches: %v", err)
	}
}
