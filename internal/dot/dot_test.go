package dot

import (
	"strings"
	"testing"

	"sflow/internal/abstract"
	"sflow/internal/flow"
	"sflow/internal/overlay"
	"sflow/internal/qos"
	"sflow/internal/require"
)

func fixtures(t *testing.T) (*overlay.Overlay, *require.Requirement, *flow.Graph) {
	t.Helper()
	o := overlay.New()
	for _, in := range [][2]int{{10, 1}, {20, 2}, {21, 2}} {
		if err := o.AddInstance(in[0], in[1], -1); err != nil {
			t.Fatal(err)
		}
	}
	if err := o.AddLink(10, 20, 100, 5); err != nil {
		t.Fatal(err)
	}
	if err := o.AddLink(10, 21, 50, 2); err != nil {
		t.Fatal(err)
	}
	req, err := require.NewPath(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	fg := flow.New()
	if err := fg.AddEdge(flow.Edge{
		FromSID: 1, ToSID: 2, FromNID: 10, ToNID: 20,
		Path: []int{10, 20}, Metric: qos.Metric{Bandwidth: 100, Latency: 5},
	}); err != nil {
		t.Fatal(err)
	}
	return o, req, fg
}

func TestRequirementDOT(t *testing.T) {
	_, req, _ := fixtures(t)
	out := Requirement(req)
	for _, want := range []string{"digraph requirement", "s1 -> s2", "doublecircle", "doubleoctagon"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestOverlayDOT(t *testing.T) {
	o, _, _ := fixtures(t)
	out := Overlay(o)
	for _, want := range []string{"digraph overlay", `label="1/10"`, `label="(100,5)"`, "n10 -> n20"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "filled") {
		t.Fatal("plain overlay should not highlight")
	}
}

func TestFlowDOT(t *testing.T) {
	o, _, fg := fixtures(t)
	out := Flow(o, fg)
	if !strings.Contains(out, "fillcolor=gray85") {
		t.Fatalf("chosen instances not highlighted:\n%s", out)
	}
	if !strings.Contains(out, "penwidth=2.5") {
		t.Fatalf("streams not bold:\n%s", out)
	}
	// The unused link 10->21 must be dimmed.
	if !strings.Contains(out, "color=gray70") {
		t.Fatalf("unused links not dimmed:\n%s", out)
	}
}

func TestAbstractDOT(t *testing.T) {
	o, req, _ := fixtures(t)
	ag, err := abstract.Build(o, req)
	if err != nil {
		t.Fatal(err)
	}
	out := Abstract(ag)
	for _, want := range []string{"digraph abstract", "cluster_s1", "cluster_s2", `label="2/20"`, "n10 -> n20"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
