// Package dot renders requirements, overlays and service flow graphs in
// Graphviz DOT format, mirroring the paper's figures: service nodes labelled
// SID/NID, service links labelled (bandwidth, latency), and the selected
// flow graph highlighted inside the overlay.
package dot

import (
	"fmt"
	"strings"

	"sflow/internal/abstract"
	"sflow/internal/flow"
	"sflow/internal/overlay"
	"sflow/internal/require"
)

// Requirement renders a service requirement DAG.
func Requirement(req *require.Requirement) string {
	var b strings.Builder
	b.WriteString("digraph requirement {\n  rankdir=LR;\n  node [shape=circle];\n")
	for _, sid := range req.Services() {
		shape := "circle"
		switch {
		case sid == req.Source():
			shape = "doublecircle"
		case req.OutDegree(sid) == 0:
			shape = "doubleoctagon"
		}
		fmt.Fprintf(&b, "  s%d [label=\"%d\" shape=%s];\n", sid, sid, shape)
	}
	for _, e := range req.Edges() {
		fmt.Fprintf(&b, "  s%d -> s%d;\n", e[0], e[1])
	}
	b.WriteString("}\n")
	return b.String()
}

// Overlay renders a service overlay graph with SID/NID node labels and
// (bandwidth, latency) edge labels, as in Fig 4 of the paper.
func Overlay(ov *overlay.Overlay) string {
	var b strings.Builder
	b.WriteString("digraph overlay {\n  rankdir=LR;\n  node [shape=ellipse];\n")
	writeOverlayBody(&b, ov, nil)
	b.WriteString("}\n")
	return b.String()
}

// Flow renders the overlay with the selected service flow graph highlighted:
// chosen instances are filled, streams are drawn bold.
func Flow(ov *overlay.Overlay, fg *flow.Graph) string {
	var b strings.Builder
	b.WriteString("digraph flowgraph {\n  rankdir=LR;\n  node [shape=ellipse];\n")
	writeOverlayBody(&b, ov, fg)
	b.WriteString("}\n")
	return b.String()
}

// Abstract renders a service abstract graph in the style of Fig 6: one
// cluster per required service populated with its instances, and edges
// between instances of adjacent required services labelled with the
// shortest-widest metric between them.
func Abstract(ag *abstract.Graph) string {
	req := ag.Requirement()
	var b strings.Builder
	b.WriteString("digraph abstract {\n  rankdir=LR;\n  node [shape=ellipse];\n")
	for _, sid := range req.Services() {
		fmt.Fprintf(&b, "  subgraph cluster_s%d {\n    label=\"service %d\";\n", sid, sid)
		for _, nid := range ag.Slots(sid) {
			fmt.Fprintf(&b, "    n%d [label=\"%d/%d\"];\n", nid, sid, nid)
		}
		b.WriteString("  }\n")
	}
	for _, e := range req.Edges() {
		for _, from := range ag.Slots(e[0]) {
			for _, to := range ag.Slots(e[1]) {
				m := ag.EdgeMetric(from, to)
				if !m.Reachable() {
					continue
				}
				fmt.Fprintf(&b, "  n%d -> n%d [label=\"(%d,%d)\"];\n",
					from, to, m.Bandwidth, m.Latency)
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func writeOverlayBody(b *strings.Builder, ov *overlay.Overlay, fg *flow.Graph) {
	chosen := make(map[int]bool)
	onStream := make(map[[2]int]bool)
	if fg != nil {
		for _, nid := range fg.Assignment() {
			chosen[nid] = true
		}
		for _, e := range fg.Edges() {
			for i := 0; i+1 < len(e.Path); i++ {
				onStream[[2]int{e.Path[i], e.Path[i+1]}] = true
			}
		}
	}
	for _, inst := range ov.Instances() {
		attrs := ""
		if chosen[inst.NID] {
			attrs = " style=filled fillcolor=gray85 penwidth=2"
		}
		fmt.Fprintf(b, "  n%d [label=\"%d/%d\"%s];\n", inst.NID, inst.SID, inst.NID, attrs)
	}
	for _, l := range ov.Links() {
		attrs := ""
		if onStream[[2]int{l.From, l.To}] {
			attrs = " penwidth=2.5 color=black"
		} else if fg != nil {
			attrs = " color=gray70"
		}
		fmt.Fprintf(b, "  n%d -> n%d [label=\"(%d,%d)\"%s];\n", l.From, l.To, l.Bandwidth, l.Latency, attrs)
	}
}
