package scenario

import (
	"reflect"
	"testing"
)

func TestGenerateLargeDeterministic(t *testing.T) {
	cfg := LargeConfig{Seed: 7, Nodes: 80, Services: 4, InstancesPerService: 2}
	a, err := GenerateLarge(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateLarge(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Overlay.Links(), b.Overlay.Links()) {
		t.Fatal("same config produced different link sets")
	}
	if !reflect.DeepEqual(a.Overlay.Instances(), b.Overlay.Instances()) {
		t.Fatal("same config produced different instances")
	}
	c, err := GenerateLarge(LargeConfig{Seed: 8, Nodes: 80, Services: 4, InstancesPerService: 2})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Overlay.Links(), c.Overlay.Links()) {
		t.Fatal("different seeds produced identical link sets")
	}
}

func TestGenerateLargeInvariants(t *testing.T) {
	cfg := LargeConfig{Seed: 3, Nodes: 90, Services: 5, InstancesPerService: 3, Degree: 2, BandwidthTiers: 4}
	s, err := GenerateLarge(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Under != nil {
		t.Fatal("large scenario should have no underlay")
	}
	if s.SourceNID != 0 {
		t.Fatalf("source NID = %d, want 0", s.SourceNID)
	}
	if got := s.Overlay.NumInstances(); got != cfg.Nodes {
		t.Fatalf("instances = %d, want %d", got, cfg.Nodes)
	}
	if got := len(s.Req.Services()); got != cfg.Services {
		t.Fatalf("requirement has %d services, want %d", got, cfg.Services)
	}
	// Slot placement: one source instance, InstancesPerService per other
	// required service, everything else on the relay service.
	slots := 1
	for _, sid := range s.Req.Services() {
		want := cfg.InstancesPerService
		if sid == s.Req.Source() {
			want = 1
		} else {
			slots += cfg.InstancesPerService
		}
		if got := len(s.Overlay.InstancesOf(sid)); got != want {
			t.Fatalf("service %d has %d instances, want %d", sid, got, want)
		}
	}
	if got := len(s.Overlay.InstancesOf(cfg.Services + 1)); got != cfg.Nodes-slots {
		t.Fatalf("relay service has %d instances, want %d", got, cfg.Nodes-slots)
	}
	if s.Overlay.SIDOf(0) != s.Req.Source() {
		t.Fatal("NID 0 does not provide the source service")
	}
	// Ring backbone keeps the overlay strongly connected.
	for nid := 0; nid < cfg.Nodes; nid++ {
		if !s.Overlay.HasLink(nid, (nid+1)%cfg.Nodes) {
			t.Fatalf("missing ring link %d -> %d", nid, (nid+1)%cfg.Nodes)
		}
	}
	// Link metrics come from the tier palette and the [1,100] latency range.
	tiers := map[int64]bool{}
	for i := 0; i < cfg.BandwidthTiers; i++ {
		tiers[100+int64(i)*(9900/int64(cfg.BandwidthTiers-1))] = true
	}
	for _, l := range s.Overlay.Links() {
		if !tiers[l.Bandwidth] {
			t.Fatalf("link %d->%d bandwidth %d outside the %d-tier palette", l.From, l.To, l.Bandwidth, cfg.BandwidthTiers)
		}
		if l.Latency < 1 || l.Latency > 100 {
			t.Fatalf("link %d->%d latency %d outside [1,100]", l.From, l.To, l.Latency)
		}
		if l.From == l.To {
			t.Fatalf("self-link at %d", l.From)
		}
	}
}

func TestGenerateLargeDefaults(t *testing.T) {
	s, err := GenerateLarge(LargeConfig{Seed: 1, Nodes: 50})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.Req.Services()); got != 6 {
		t.Fatalf("default requirement length = %d, want 6", got)
	}
	// Default InstancesPerService is 3: slots = 5*3+1 = 16; the relay
	// service is 7, one past the requirement's services 1..6.
	if got := len(s.Overlay.InstancesOf(7)); got != 50-16 {
		t.Fatalf("relay instances = %d, want %d", got, 50-16)
	}
	if s.Config.Kind != KindPath {
		t.Fatalf("kind = %v, want path", s.Config.Kind)
	}
}

func TestGenerateLargeSingleTier(t *testing.T) {
	s, err := GenerateLarge(LargeConfig{Seed: 2, Nodes: 30, Services: 3, InstancesPerService: 2, BandwidthTiers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range s.Overlay.Links() {
		if l.Bandwidth != 10000 {
			t.Fatalf("single-tier palette produced bandwidth %d", l.Bandwidth)
		}
	}
}

func TestGenerateLargeRejections(t *testing.T) {
	for name, cfg := range map[string]LargeConfig{
		"too few nodes":      {Seed: 1, Nodes: 3},
		"one service":        {Seed: 1, Nodes: 20, Services: 1},
		"zero instances":     {Seed: 1, Nodes: 20, InstancesPerService: -1},
		"slots beyond nodes": {Seed: 1, Nodes: 10, Services: 6, InstancesPerService: 3},
	} {
		if _, err := GenerateLarge(cfg); err == nil {
			t.Errorf("%s: config accepted", name)
		}
	}
}
