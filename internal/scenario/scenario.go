// Package scenario assembles complete, reproducible federation workloads:
// a random underlying network, a service requirement of a chosen shape,
// a placement of service instances onto the network, and the derived service
// overlay. Every experiment in the evaluation harness and most integration
// tests start from a Scenario.
package scenario

import (
	"encoding/json"
	"fmt"
	"math/rand"

	"sflow/internal/overlay"
	"sflow/internal/require"
	"sflow/internal/topology"
)

// Kind selects the requirement shape of a generated scenario.
type Kind int

const (
	// KindPath generates a single service chain (the "simple" requirements
	// the paper uses for the Fig 10(b) time comparison).
	KindPath Kind = iota + 1
	// KindDisjoint generates parallel disjoint chains (Fig 3).
	KindDisjoint
	// KindSplitMerge generates a split-and-merge diamond (Fig 8).
	KindSplitMerge
	// KindGeneral generates a general DAG requirement (Fig 5).
	KindGeneral
	// KindTree generates a service multicast tree with several sinks.
	KindTree
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindPath:
		return "path"
	case KindDisjoint:
		return "disjoint"
	case KindSplitMerge:
		return "split-merge"
	case KindGeneral:
		return "general"
	case KindTree:
		return "tree"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind converts a name produced by Kind.String back to a Kind.
func ParseKind(s string) (Kind, error) {
	for _, k := range []Kind{KindPath, KindDisjoint, KindSplitMerge, KindGeneral, KindTree} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("scenario: unknown kind %q", s)
}

// Config controls scenario generation.
type Config struct {
	// Seed makes the scenario fully reproducible.
	Seed int64
	// NetworkSize is the number of underlying network nodes (>= 2).
	NetworkSize int
	// Services is the number of required services (>= 2; >= 3 for
	// KindGeneral, >= 4 for the other non-path kinds).
	Services int
	// InstancesPerService is how many instances each non-source service
	// has (>= 1). The source service always has exactly one instance:
	// the consumer's entry point.
	InstancesPerService int
	// Kind is the requirement shape (default KindGeneral).
	Kind Kind
	// EdgeProb densifies general DAG requirements (default 0.25).
	EdgeProb float64
	// Waxman selects the Waxman underlay generator instead of uniform.
	Waxman bool
}

func (c Config) withDefaults() Config {
	if c.Kind == 0 {
		c.Kind = KindGeneral
	}
	if c.EdgeProb == 0 {
		c.EdgeProb = 0.25
	}
	if c.InstancesPerService == 0 {
		c.InstancesPerService = 3
	}
	return c
}

// Scenario is a complete federation workload.
type Scenario struct {
	Config  Config
	Under   *topology.Network
	Overlay *overlay.Overlay
	Req     *require.Requirement
	// SourceNID is the designated instance of the source service where
	// federation starts.
	SourceNID int
}

// Generate builds a scenario from a config. The same config always yields
// the same scenario.
func Generate(cfg Config) (*Scenario, error) {
	cfg = cfg.withDefaults()
	if cfg.NetworkSize < 2 {
		return nil, fmt.Errorf("scenario: network size %d < 2", cfg.NetworkSize)
	}
	if cfg.InstancesPerService < 1 {
		return nil, fmt.Errorf("scenario: instances per service %d < 1", cfg.InstancesPerService)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	under, err := generateUnderlay(rng, cfg)
	if err != nil {
		return nil, err
	}
	req, err := generateRequirement(rng, cfg)
	if err != nil {
		return nil, err
	}

	compat := overlay.NewCompatibility()
	for _, e := range req.Edges() {
		compat.Allow(e[0], e[1])
	}

	var placements []overlay.Placement
	nid := 0
	sourceNID := -1
	for _, sid := range req.Services() {
		n := cfg.InstancesPerService
		if sid == req.Source() {
			n = 1
		}
		for k := 0; k < n; k++ {
			p := overlay.Placement{NID: nid, SID: sid, Host: rng.Intn(cfg.NetworkSize)}
			if sid == req.Source() {
				sourceNID = nid
			}
			placements = append(placements, p)
			nid++
		}
	}
	ov, err := overlay.Build(under, placements, compat)
	if err != nil {
		return nil, err
	}
	return &Scenario{
		Config:    cfg,
		Under:     under,
		Overlay:   ov,
		Req:       req,
		SourceNID: sourceNID,
	}, nil
}

func generateUnderlay(rng *rand.Rand, cfg Config) (*topology.Network, error) {
	// Sparse links and a wide bandwidth spread make the instance choice
	// actually matter: with a dense homogeneous underlay the widest-path
	// bandwidth between any two hosts concentrates on one backbone value
	// and every federation algorithm trivially reaches the optimum.
	base := topology.Config{
		Nodes:        cfg.NetworkSize,
		ExtraLinks:   cfg.NetworkSize / 2,
		MinBandwidth: 100,
		MaxBandwidth: 10000,
	}
	if cfg.Waxman {
		return topology.GenerateWaxman(rng, topology.WaxmanConfig{Config: base})
	}
	return topology.GenerateUniform(rng, base)
}

func generateRequirement(rng *rand.Rand, cfg Config) (*require.Requirement, error) {
	switch cfg.Kind {
	case KindPath:
		return require.GeneratePath(cfg.Services)
	case KindDisjoint:
		branches := 2
		if cfg.Services >= 6 {
			branches = 3
		}
		per := (cfg.Services - 2) / branches
		if per < 1 {
			return nil, fmt.Errorf("scenario: %d services too few for %d disjoint branches", cfg.Services, branches)
		}
		return require.GenerateDisjoint(rng, branches, per, per)
	case KindSplitMerge:
		branches := cfg.Services - 3 // lead 1 + merge 1 + tail 1
		if branches < 2 {
			return nil, fmt.Errorf("scenario: %d services too few for a split-merge", cfg.Services)
		}
		return require.GenerateSplitMerge(1, branches, 1)
	case KindGeneral:
		return require.GenerateDAG(rng, require.DAGConfig{
			Services: cfg.Services,
			EdgeProb: cfg.EdgeProb,
			MaxFan:   3,
		})
	case KindTree:
		return require.GenerateTree(rng, cfg.Services, 3)
	default:
		return nil, fmt.Errorf("scenario: unknown kind %v", cfg.Kind)
	}
}

// scenarioJSON is the wire form of a Scenario.
type scenarioJSON struct {
	Config    Config               `json:"config"`
	Under     *topology.Network    `json:"underlay"`
	Overlay   *overlay.Overlay     `json:"overlay"`
	Req       *require.Requirement `json:"requirement"`
	SourceNID int                  `json:"sourceNID"`
}

// MarshalJSON encodes the full scenario bundle.
func (s *Scenario) MarshalJSON() ([]byte, error) {
	return json.Marshal(scenarioJSON{
		Config: s.Config, Under: s.Under, Overlay: s.Overlay,
		Req: s.Req, SourceNID: s.SourceNID,
	})
}

// UnmarshalJSON decodes and sanity-checks a scenario bundle.
func (s *Scenario) UnmarshalJSON(data []byte) error {
	var w scenarioJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("scenario: decode: %w", err)
	}
	if w.Overlay == nil || w.Req == nil {
		return fmt.Errorf("scenario: bundle missing overlay or requirement")
	}
	if got := w.Overlay.SIDOf(w.SourceNID); got != w.Req.Source() {
		return fmt.Errorf("scenario: source NID %d provides service %d, requirement starts at %d",
			w.SourceNID, got, w.Req.Source())
	}
	*s = Scenario{
		Config: w.Config, Under: w.Under, Overlay: w.Overlay,
		Req: w.Req, SourceNID: w.SourceNID,
	}
	return nil
}
