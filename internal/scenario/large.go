package scenario

import (
	"fmt"
	"math/rand"

	"sflow/internal/overlay"
	"sflow/internal/require"
)

// LargeConfig controls direct large-overlay generation. Generate's
// underlay-plus-placement pipeline pairs instances O(instances²), which is
// fine at evaluation sizes and hopeless at 50k nodes; GenerateLarge builds
// the service overlay itself — no underlay — in O(nodes · degree).
type LargeConfig struct {
	// Seed makes the scenario fully reproducible.
	Seed int64
	// Nodes is the overlay's instance count (>= 4).
	Nodes int
	// Services is the length of the path requirement (default 6; the
	// required services are 1..Services). Only
	// (Services-1) * InstancesPerService + 1 of the nodes populate slots of
	// the requirement; every other node provides the relay service
	// Services+1, which can appear inside routes but never in a slot — the
	// shape that makes lazy routing pay, since only slot rows are ever read.
	Services int
	// InstancesPerService is the slot width of each non-source required
	// service (default 3). The source service has one instance, NID 0.
	InstancesPerService int
	// Degree is how many random out-links each node gets on top of the ring
	// backbone (default 3).
	Degree int
	// BandwidthTiers is the size of the discrete bandwidth palette links
	// draw from (default 6). Shortest-widest phase 2 runs one Dijkstra per
	// distinct width class a row reaches, so a small palette keeps per-row
	// cost flat while still giving the algorithms real choices.
	BandwidthTiers int
}

func (c LargeConfig) withDefaults() LargeConfig {
	if c.Services == 0 {
		c.Services = 6
	}
	if c.InstancesPerService == 0 {
		c.InstancesPerService = 3
	}
	if c.Degree == 0 {
		c.Degree = 3
	}
	if c.BandwidthTiers == 0 {
		c.BandwidthTiers = 6
	}
	return c
}

// GenerateLarge builds a large-overlay scenario directly: Nodes service
// instances wired by a deterministic ring backbone (0 → 1 → … → n-1 → 0, so
// the overlay is strongly connected and every slot pair is reachable) plus
// Degree random out-links per node, with bandwidths drawn from a small tier
// palette and latencies in [1, 100]. The requirement is a Services-long path;
// its slot instances are spread evenly across the id space, and every
// remaining node provides the relay service Services+1 (outside the
// requirement, whose services are numbered 1..Services). Scenario.Under is
// nil — there is no underlay. The same config always yields the same
// scenario.
func GenerateLarge(cfg LargeConfig) (*Scenario, error) {
	cfg = cfg.withDefaults()
	if cfg.Nodes < 4 {
		return nil, fmt.Errorf("scenario: large overlay needs >= 4 nodes, got %d", cfg.Nodes)
	}
	if cfg.Services < 2 {
		return nil, fmt.Errorf("scenario: services %d < 2", cfg.Services)
	}
	if cfg.InstancesPerService < 1 {
		return nil, fmt.Errorf("scenario: instances per service %d < 1", cfg.InstancesPerService)
	}
	slots := (cfg.Services-1)*cfg.InstancesPerService + 1
	if slots >= cfg.Nodes {
		return nil, fmt.Errorf("scenario: %d slot instances need more than %d nodes", slots, cfg.Nodes)
	}
	req, err := require.GeneratePath(cfg.Services)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Slot placement: NID 0 is the source instance; the other required
	// services get InstancesPerService instances each, spread evenly across
	// the id space so routes between consecutive slots are real multi-hop
	// paths, not neighbors.
	sidOf := make([]int, cfg.Nodes)
	relaySID := cfg.Services + 1 // GeneratePath uses 1..Services; this is outside
	for i := range sidOf {
		sidOf[i] = relaySID
	}
	sidOf[0] = req.Source()
	stride := cfg.Nodes / slots
	pos := stride
	for _, sid := range req.Services() {
		if sid == req.Source() {
			continue
		}
		for k := 0; k < cfg.InstancesPerService; k++ {
			for sidOf[pos%cfg.Nodes] != relaySID {
				pos++ // skip already-assigned ids (only near the wrap)
			}
			sidOf[pos%cfg.Nodes] = sid
			pos += stride
		}
	}

	ov := overlay.New()
	for nid := 0; nid < cfg.Nodes; nid++ {
		if err := ov.AddInstance(nid, sidOf[nid], nid); err != nil {
			return nil, err
		}
	}

	// Bandwidth palette: BandwidthTiers values evenly spaced in [100, 10000],
	// the range the evaluation underlays use.
	tiers := make([]int64, cfg.BandwidthTiers)
	for i := range tiers {
		if cfg.BandwidthTiers == 1 {
			tiers[i] = 10000
			break
		}
		tiers[i] = 100 + int64(i)*(9900/int64(cfg.BandwidthTiers-1))
	}
	link := func(from, to int) error {
		if from == to || ov.HasLink(from, to) {
			return nil
		}
		return ov.AddLink(from, to, tiers[rng.Intn(len(tiers))], 1+int64(rng.Intn(100)))
	}
	for nid := 0; nid < cfg.Nodes; nid++ {
		if err := link(nid, (nid+1)%cfg.Nodes); err != nil {
			return nil, err
		}
	}
	for nid := 0; nid < cfg.Nodes; nid++ {
		for d := 0; d < cfg.Degree; d++ {
			if err := link(nid, rng.Intn(cfg.Nodes)); err != nil {
				return nil, err
			}
		}
	}

	return &Scenario{
		Config: Config{
			Seed:                cfg.Seed,
			NetworkSize:         cfg.Nodes,
			Services:            cfg.Services,
			InstancesPerService: cfg.InstancesPerService,
			Kind:                KindPath,
		},
		Overlay:   ov,
		Req:       req,
		SourceNID: 0,
	}, nil
}
