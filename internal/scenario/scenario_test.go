package scenario

import (
	"encoding/json"
	"reflect"
	"testing"

	"sflow/internal/abstract"
	"sflow/internal/require"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Seed: 4, NetworkSize: 20, Services: 6, InstancesPerService: 3}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Overlay.Links(), b.Overlay.Links()) {
		t.Fatal("same seed produced different overlays")
	}
	if !a.Req.Equal(b.Req) {
		t.Fatal("same seed produced different requirements")
	}
	if a.SourceNID != b.SourceNID {
		t.Fatal("same seed produced different sources")
	}
	c, err := Generate(Config{Seed: 5, NetworkSize: 20, Services: 6, InstancesPerService: 3})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Overlay.Links(), c.Overlay.Links()) {
		t.Fatal("different seeds produced identical overlays")
	}
}

func TestGenerateKinds(t *testing.T) {
	tests := []struct {
		kind Kind
		want require.Shape
	}{
		{KindPath, require.ShapePath},
		{KindDisjoint, require.ShapeDisjointPaths},
		{KindSplitMerge, require.ShapeGeneral}, // 1-lead diamonds are general DAGs
	}
	for _, tt := range tests {
		s, err := Generate(Config{Seed: 1, NetworkSize: 15, Services: 6, Kind: tt.kind})
		if err != nil {
			t.Fatalf("%v: %v", tt.kind, err)
		}
		if got := s.Req.Shape(); got != tt.want {
			t.Errorf("%v: shape = %v, want %v", tt.kind, got, tt.want)
		}
	}
	s, err := Generate(Config{Seed: 1, NetworkSize: 15, Services: 7, Kind: KindGeneral})
	if err != nil {
		t.Fatal(err)
	}
	if s.Req.NumServices() != 7 {
		t.Fatalf("general: %d services", s.Req.NumServices())
	}
}

func TestGenerateInvariants(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		s, err := Generate(Config{Seed: seed, NetworkSize: 25, Services: 6, InstancesPerService: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !s.Under.Connected() {
			t.Fatal("underlay not connected")
		}
		if err := s.Req.Validate(); err != nil {
			t.Fatal(err)
		}
		// Source service has exactly one instance: the designated one.
		srcInstances := s.Overlay.InstancesOf(s.Req.Source())
		if len(srcInstances) != 1 || srcInstances[0] != s.SourceNID {
			t.Fatalf("source instances = %v, designated %d", srcInstances, s.SourceNID)
		}
		// Every other required service has the configured multiplicity.
		for _, sid := range s.Req.Services() {
			if sid == s.Req.Source() {
				continue
			}
			if got := len(s.Overlay.InstancesOf(sid)); got != 2 {
				t.Fatalf("service %d has %d instances, want 2", sid, got)
			}
		}
		// The abstract graph must be constructible (all slots populated).
		if _, err := abstract.Build(s.Overlay, s.Req); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGenerateRejections(t *testing.T) {
	cases := []Config{
		{Seed: 1, NetworkSize: 1, Services: 5},
		{Seed: 1, NetworkSize: 10, Services: 5, InstancesPerService: -1},
		{Seed: 1, NetworkSize: 10, Services: 1, Kind: KindPath},
		{Seed: 1, NetworkSize: 10, Services: 3, Kind: KindDisjoint},
		{Seed: 1, NetworkSize: 10, Services: 4, Kind: KindSplitMerge},
		{Seed: 1, NetworkSize: 10, Services: 5, Kind: Kind(42)},
	}
	for i, cfg := range cases {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
}

func TestWaxmanUnderlay(t *testing.T) {
	s, err := Generate(Config{Seed: 8, NetworkSize: 20, Services: 5, Waxman: true})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Under.Connected() {
		t.Fatal("waxman underlay not connected")
	}
}

func TestKindStringAndParse(t *testing.T) {
	for _, k := range []Kind{KindPath, KindDisjoint, KindSplitMerge, KindGeneral} {
		back, err := ParseKind(k.String())
		if err != nil || back != k {
			t.Fatalf("round trip of %v failed: %v %v", k, back, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Fatal("bogus kind parsed")
	}
	if Kind(42).String() == "" {
		t.Fatal("unknown kind has empty string")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s, err := Generate(Config{Seed: 3, NetworkSize: 12, Services: 5})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Scenario
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.SourceNID != s.SourceNID || !back.Req.Equal(s.Req) {
		t.Fatal("round trip changed scenario")
	}
	if !reflect.DeepEqual(back.Overlay.Links(), s.Overlay.Links()) {
		t.Fatal("round trip changed overlay")
	}
}

func TestJSONRejectsMismatchedSource(t *testing.T) {
	s, err := Generate(Config{Seed: 3, NetworkSize: 12, Services: 5})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	raw["sourceNID"] = json.RawMessage("99999")
	bad, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	var back Scenario
	if err := json.Unmarshal(bad, &back); err == nil {
		t.Fatal("mismatched source accepted")
	}
}
