package augment

import (
	"errors"
	"math/rand"
	"testing"

	"sflow/internal/abstract"
	"sflow/internal/control"
	"sflow/internal/core"
	"sflow/internal/overlay"
	"sflow/internal/qos"
	"sflow/internal/require"
	"sflow/internal/scenario"
)

func TestSparsify(t *testing.T) {
	s, err := scenario.Generate(scenario.Config{
		Seed: 4, NetworkSize: 15, Services: 5, InstancesPerService: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	thin, err := Sparsify(s.Overlay, rng, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if thin.NumInstances() != s.Overlay.NumInstances() {
		t.Fatal("sparsify changed instances")
	}
	if thin.NumLinks() >= s.Overlay.NumLinks() {
		t.Fatalf("sparsify kept %d of %d links", thin.NumLinks(), s.Overlay.NumLinks())
	}
	// Every surviving link exists in the original with the same metric.
	for _, l := range thin.Links() {
		m, ok := s.Overlay.LinkMetric(l.From, l.To)
		if !ok || m.Bandwidth != l.Bandwidth || m.Latency != l.Latency {
			t.Fatalf("link %d->%d not from original", l.From, l.To)
		}
	}
	// keep=1 preserves everything.
	full, err := Sparsify(s.Overlay, rng, 1)
	if err != nil {
		t.Fatal(err)
	}
	if full.NumLinks() != s.Overlay.NumLinks() {
		t.Fatal("keep=1 lost links")
	}
	if _, err := Sparsify(s.Overlay, rng, 0); err == nil {
		t.Fatal("keep=0 accepted")
	}
	if _, err := Sparsify(s.Overlay, rng, 1.5); err == nil {
		t.Fatal("keep>1 accepted")
	}
}

// brokenChain builds 1 -> 2 -> 3 where 1 and 3 are compatible but the direct
// link is missing; the only 1->3 connectivity runs through 2.
func brokenChain(t *testing.T) (*overlay.Overlay, *overlay.Compatibility) {
	t.Helper()
	o := overlay.New()
	for _, in := range [][2]int{{1, 1}, {2, 2}, {3, 3}} {
		if err := o.AddInstance(in[0], in[1], -1); err != nil {
			t.Fatal(err)
		}
	}
	if err := o.AddLink(1, 2, 80, 5); err != nil {
		t.Fatal(err)
	}
	if err := o.AddLink(2, 3, 60, 7); err != nil {
		t.Fatal(err)
	}
	compat := overlay.NewCompatibility()
	compat.Allow(1, 2)
	compat.Allow(2, 3)
	compat.Allow(1, 3)
	return o, compat
}

func TestCandidatesAndShortcut(t *testing.T) {
	o, compat := brokenChain(t)
	cands := Candidates(o, compat)
	if len(cands) != 1 {
		t.Fatalf("candidates = %+v", cands)
	}
	c := cands[0]
	if c.From != 1 || c.To != 3 {
		t.Fatalf("candidate = %+v", c)
	}
	if c.Metric != (qos.Metric{Bandwidth: 60, Latency: 12}) {
		t.Fatalf("candidate metric = %+v", c.Metric)
	}
	added, err := Shortcut(o, compat, 0)
	if err != nil {
		t.Fatal(err)
	}
	if added != 1 || !o.HasLink(1, 3) {
		t.Fatalf("added %d, link present %v", added, o.HasLink(1, 3))
	}
	// Idempotent: the link now exists, no more candidates.
	if again, err := Shortcut(o, compat, 0); err != nil || again != 0 {
		t.Fatalf("second shortcut added %d (%v)", again, err)
	}
}

func TestShortcutBudget(t *testing.T) {
	// A star: hub 0 (service 9) connects 4 sources to 4 sinks; all
	// source-sink pairs are compatible candidates (16 total).
	o := overlay.New()
	if err := o.AddInstance(0, 9, -1); err != nil {
		t.Fatal(err)
	}
	compat := overlay.NewCompatibility()
	for i := 1; i <= 4; i++ {
		if err := o.AddInstance(i, 1, -1); err != nil {
			t.Fatal(err)
		}
		if err := o.AddInstance(10+i, 2, -1); err != nil {
			t.Fatal(err)
		}
	}
	compat.Allow(1, 2)
	for i := 1; i <= 4; i++ {
		if err := o.AddLink(i, 0, int64(10*i), 1); err != nil {
			t.Fatal(err)
		}
		if err := o.AddLink(0, 10+i, 100, 1); err != nil {
			t.Fatal(err)
		}
	}
	cands := Candidates(o, compat)
	if len(cands) != 16 {
		t.Fatalf("candidates = %d, want 16", len(cands))
	}
	// Widest first: the first candidates stem from source 4 (width 40).
	if cands[0].Metric.Bandwidth != 40 {
		t.Fatalf("first candidate %+v not widest", cands[0])
	}
	added, err := Shortcut(o, compat, 5)
	if err != nil {
		t.Fatal(err)
	}
	if added != 5 {
		t.Fatalf("added %d, want budget 5", added)
	}
}

func TestShortcutMakesDirectOnlyAlgorithmsFeasible(t *testing.T) {
	// Requirement 1 -> 3 over the broken chain: the fixed algorithm uses
	// only direct links, so it is infeasible until the shortcut exists.
	o, compat := brokenChain(t)
	req, err := require.NewPath(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	ag, err := abstract.Build(o, req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := control.Fixed(ag, 1); err == nil {
		t.Fatal("fixed should be infeasible without the direct link")
	}
	if _, err := Shortcut(o, compat, 0); err != nil {
		t.Fatal(err)
	}
	ag, err = abstract.Build(o, req)
	if err != nil {
		t.Fatal(err)
	}
	res, err := control.Fixed(ag, 1)
	if err != nil {
		t.Fatalf("fixed still infeasible after augmentation: %v", err)
	}
	if res.Metric.Bandwidth != 60 {
		t.Fatalf("fixed metric = %+v", res.Metric)
	}
}

func TestDensifyExtendsSFlowLocalViews(t *testing.T) {
	// Requirement 1 -> 2: the only instance of service 2 sits three relay
	// hops from the source, beyond its two-hop view, so the distributed
	// federation is stuck. Densifying the mesh with shortcuts pulls the
	// instance into view and the federation succeeds.
	o := overlay.New()
	for _, in := range [][2]int{{10, 1}, {77, 7}, {88, 8}, {20, 2}} {
		if err := o.AddInstance(in[0], in[1], -1); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range [][4]int64{
		{10, 77, 90, 5}, {77, 88, 80, 5}, {88, 20, 70, 5},
	} {
		if err := o.AddLink(int(l[0]), int(l[1]), l[2], l[3]); err != nil {
			t.Fatal(err)
		}
	}
	req, err := require.NewPath(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Federate(o, req, 10, core.Options{}); !errors.Is(err, core.ErrStuck) {
		t.Fatalf("err = %v, want ErrStuck before augmentation", err)
	}
	// The mesh compatibility allows the helper hand-offs to be shortcut.
	compat := overlay.NewCompatibility()
	compat.Allow(1, 7)
	compat.Allow(7, 8)
	compat.Allow(8, 2)
	compat.Allow(1, 8)
	compat.Allow(7, 2)
	compat.Allow(1, 2)
	added, err := Densify(o, compat)
	if err != nil {
		t.Fatal(err)
	}
	if added == 0 {
		t.Fatal("densify added nothing")
	}
	res, err := core.Federate(o, req, 10, core.Options{})
	if err != nil {
		t.Fatalf("still stuck after densify: %v", err)
	}
	if err := res.Flow.Validate(req, o); err != nil {
		t.Fatal(err)
	}
	// The densified mesh carries the composed end-to-end link.
	if m, ok := o.LinkMetric(10, 20); !ok || m.Bandwidth != 70 || m.Latency != 15 {
		t.Fatalf("composed shortcut = %+v, %v", m, ok)
	}
}
