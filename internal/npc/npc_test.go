package npc

import (
	"math/rand"
	"testing"

	"sflow/internal/sat"
)

func formula(t *testing.T, numVars int, clauses ...[]sat.Literal) *sat.Formula {
	t.Helper()
	f := sat.New(numVars)
	for _, cl := range clauses {
		if err := f.AddClause(cl...); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func TestReduceGadgetShape(t *testing.T) {
	// (x | y) & (!x | y): 2 clauses, 4 literal instances.
	f := formula(t, 2, []sat.Literal{1, 2}, []sat.Literal{-1, 2})
	in, err := Reduce(f)
	if err != nil {
		t.Fatal(err)
	}
	if in.Overlay.NumInstances() != 4 {
		t.Fatalf("instances = %d, want 4", in.Overlay.NumInstances())
	}
	// 2x2 inter-clause edges.
	if in.Overlay.NumLinks() != 4 {
		t.Fatalf("links = %d, want 4", in.Overlay.NumLinks())
	}
	// x (NID 0) vs !x (NID 2): complementary, weight 1.
	if m, ok := in.Overlay.LinkMetric(0, 2); !ok || m.Bandwidth != 1 {
		t.Fatalf("complementary edge = %+v, %v", m, ok)
	}
	// x (NID 0) vs y (NID 3): compatible, weight K.
	if m, ok := in.Overlay.LinkMetric(0, 3); !ok || m.Bandwidth != K {
		t.Fatalf("compatible edge = %+v, %v", m, ok)
	}
	// Requirement is the complete DAG on 2 clause services.
	if in.Req.NumServices() != 2 || in.Req.NumDependencies() != 1 {
		t.Fatalf("requirement = %v", in.Req)
	}
}

func TestReduceRejections(t *testing.T) {
	if _, err := Reduce(formula(t, 1, []sat.Literal{1})); err == nil {
		t.Fatal("single-clause formula accepted")
	}
	f := sat.New(1)
	if err := f.AddClause(); err != nil { // empty clause
		t.Fatal(err)
	}
	if err := f.AddClause(1); err != nil {
		t.Fatal(err)
	}
	if _, err := Reduce(f); err == nil {
		t.Fatal("empty clause accepted")
	}
}

func TestDecideSatisfiable(t *testing.T) {
	f := formula(t, 2, []sat.Literal{1, 2}, []sat.Literal{-1, 2})
	in, err := Reduce(f)
	if err != nil {
		t.Fatal(err)
	}
	ok, chosen, assign := in.Decide()
	if !ok {
		t.Fatal("satisfiable gadget reported infeasible")
	}
	if len(chosen) != 2 {
		t.Fatalf("chose %d instances", len(chosen))
	}
	if !f.Satisfies(assign) {
		t.Fatalf("extracted assignment %v does not satisfy %v", assign, f)
	}
}

func TestDecideUnsatisfiable(t *testing.T) {
	// (x) & (!x): any selection picks complementary literals.
	f := formula(t, 1, []sat.Literal{1}, []sat.Literal{-1})
	in, err := Reduce(f)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _, _ := in.Decide(); ok {
		t.Fatal("UNSAT gadget reported feasible")
	}
}

func TestPaperTransformationExample(t *testing.T) {
	// Fig 7: U = {x, y, z, w},
	// C = {{x,y,z,w}, {!x,y,!z}, {x,!y,w}, {!y,z}}.
	f := formula(t, 4,
		[]sat.Literal{1, 2, 3, 4},
		[]sat.Literal{-1, 2, -3},
		[]sat.Literal{1, -2, 4},
		[]sat.Literal{-2, 3},
	)
	in, err := Reduce(f)
	if err != nil {
		t.Fatal(err)
	}
	// 4+3+3+2 = 12 literal instances.
	if in.Overlay.NumInstances() != 12 {
		t.Fatalf("instances = %d, want 12", in.Overlay.NumInstances())
	}
	ok, _, assign := in.Decide()
	if !ok {
		t.Fatal("paper example gadget infeasible")
	}
	if !f.Satisfies(assign) {
		t.Fatalf("assignment %v does not satisfy paper formula", assign)
	}
	// Cross-check with the DPLL solver.
	if _, sat := f.Solve(); !sat {
		t.Fatal("DPLL disagrees: formula should be satisfiable")
	}
}

func TestTheoremBothDirectionsOnRandomFormulas(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 120; trial++ {
		n := 2 + rng.Intn(5)
		m := 2 + rng.Intn(5)
		f := sat.New(n)
		for c := 0; c < m; c++ {
			k := 1 + rng.Intn(3)
			lits := make([]sat.Literal, 0, k)
			for j := 0; j < k; j++ {
				l := sat.Literal(1 + rng.Intn(n))
				if rng.Intn(2) == 0 {
					l = -l
				}
				lits = append(lits, l)
			}
			if err := f.AddClause(lits...); err != nil {
				t.Fatal(err)
			}
		}
		in, err := Reduce(f)
		if err != nil {
			t.Fatal(err)
		}
		gadgetSAT, _, assign := in.Decide()
		_, dpllSAT := f.Solve()
		if gadgetSAT != dpllSAT {
			t.Fatalf("trial %d: gadget says %v, DPLL says %v for %v",
				trial, gadgetSAT, dpllSAT, f)
		}
		if gadgetSAT && !f.Satisfies(assign) {
			t.Fatalf("trial %d: gadget witness does not satisfy %v", trial, f)
		}
	}
}
