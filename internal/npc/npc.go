// Package npc machine-checks Theorem 1 of the paper: the polynomial
// reduction from SAT to the Maximum Service Flow Graph Problem (MSFG).
//
// Given a CNF formula with clauses c_1..c_n, the reduction builds a directed
// acyclic "gadget" graph: clause c_i becomes an abstract service i populated
// with one instance per literal of the clause; every pair of instances from
// different clauses is connected (directed from the lower clause index to the
// higher); an edge weighs 1 when its endpoints are complementary literals
// (p and !p) and 2 otherwise. With the threshold K = 2, a service flow graph
// that picks one instance per clause and only uses edges of weight >= K
// exists if and only if the formula is satisfiable.
//
// Decide solves the MSFG decision problem by branch-and-bound over the
// direct gadget edges — necessarily exponential in the worst case, which is
// the theorem's point.
package npc

import (
	"fmt"

	"sflow/internal/overlay"
	"sflow/internal/require"
	"sflow/internal/sat"
)

// K is the bottleneck threshold of the reduction: weight-1 edges (between
// complementary literals) fall below it, weight-2 edges meet it.
const K int64 = 2

// Instance is a Maximum Service Flow Graph instance produced by the
// reduction.
type Instance struct {
	// Overlay is the gadget graph: one service per clause, one instance
	// per literal occurrence, weight-1/weight-2 links between clauses.
	Overlay *overlay.Overlay
	// Req is the complete DAG over the clause services (edge i -> j for
	// every i < j), so a service flow graph must select one literal per
	// clause and respect every pairwise edge.
	Req *require.Requirement
	// LitOf maps each instance NID back to the literal it encodes.
	LitOf map[int]sat.Literal
	// Formula is the reduced formula.
	Formula *sat.Formula
}

// Reduce builds the MSFG instance for a formula. The formula must have at
// least two clauses (a one-clause requirement is degenerate) and no empty
// clause.
func Reduce(f *sat.Formula) (*Instance, error) {
	clauses := f.Clauses()
	if len(clauses) < 2 {
		return nil, fmt.Errorf("npc: need at least 2 clauses, got %d", len(clauses))
	}
	ov := overlay.New()
	litOf := make(map[int]sat.Literal)
	nid := 0
	byClause := make([][]int, len(clauses))
	for i, cl := range clauses {
		if len(cl) == 0 {
			return nil, fmt.Errorf("npc: clause %d is empty", i+1)
		}
		for _, lit := range cl {
			if err := ov.AddInstance(nid, i+1, -1); err != nil {
				return nil, err
			}
			litOf[nid] = lit
			byClause[i] = append(byClause[i], nid)
			nid++
		}
	}
	// Directed edges from every instance of clause i to every instance of
	// clause j > i; weight 1 between complementary literals, 2 otherwise.
	for i := 0; i < len(clauses); i++ {
		for j := i + 1; j < len(clauses); j++ {
			for _, a := range byClause[i] {
				for _, b := range byClause[j] {
					w := K
					if litOf[a] == litOf[b].Negate() {
						w = 1
					}
					if err := ov.AddLink(a, b, w, 1); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	req := require.New()
	for i := 1; i <= len(clauses); i++ {
		for j := i + 1; j <= len(clauses); j++ {
			req.AddDependency(i, j)
		}
	}
	if err := req.Validate(); err != nil {
		return nil, fmt.Errorf("npc: gadget requirement: %w", err)
	}
	return &Instance{Overlay: ov, Req: req, LitOf: litOf, Formula: f}, nil
}

// Decide solves the MSFG decision problem on the gadget: is there a
// selection of one instance per clause whose pairwise direct edges all weigh
// at least K? On success it also returns the selection (SID -> NID) and the
// truth assignment it encodes (chosen literals true, everything else false —
// complementary choices are excluded by construction).
func (in *Instance) Decide() (bool, map[int]int, sat.Assignment) {
	services := in.Req.Services()
	chosen := make(map[int]int, len(services))
	var walk func(i int) bool
	walk = func(i int) bool {
		if i == len(services) {
			return true
		}
		sid := services[i]
		for _, nid := range in.Overlay.InstancesOf(sid) {
			ok := true
			for j := 0; j < i; j++ {
				prev := chosen[services[j]]
				m, direct := in.Overlay.LinkMetric(prev, nid)
				if !direct || m.Bandwidth < K {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			chosen[sid] = nid
			if walk(i + 1) {
				return true
			}
			delete(chosen, sid)
		}
		return false
	}
	if !walk(0) {
		return false, nil, nil
	}
	assign := make(sat.Assignment, in.Formula.NumVars())
	for v := 1; v <= in.Formula.NumVars(); v++ {
		assign[v] = false
	}
	for _, nid := range chosen {
		lit := in.LitOf[nid]
		assign[lit.Var()] = lit.Positive()
	}
	return true, chosen, assign
}
