// Package choice models the paper's enhanced form of service requirements
// with *optional services* (Sec 2.1, Fig 2): a requirement slot may name
// several alternative services — "the Map or the Translator service" — and
// the federation is free to pick whichever alternative yields the better
// service flow graph.
//
// A Spec is a DAG over *terms*; each term carries one or more alternative
// services. Expand produces every concrete Requirement obtainable by fixing
// one alternative per term; Best runs a federation algorithm over each
// expansion and keeps the highest-quality result — "the topology of services
// that leads to better performance is preferably selected", as the paper
// puts it.
package choice

import (
	"errors"
	"fmt"
	"sort"

	"sflow/internal/flow"
	"sflow/internal/graph"
	"sflow/internal/overlay"
	"sflow/internal/qos"
	"sflow/internal/require"
)

// ErrInfeasible is returned when no expansion can be federated.
var ErrInfeasible = errors.New("choice: no expansion is feasible")

// maxExpansions bounds the cartesian product of alternatives.
const maxExpansions = 10_000

// Spec is a service requirement with optional alternatives.
type Spec struct {
	alts map[int][]int // term id -> alternative services
	dag  *graph.Digraph
}

// NewSpec returns an empty spec.
func NewSpec() *Spec {
	return &Spec{alts: make(map[int][]int), dag: graph.New()}
}

// AddTerm declares a term with one or more alternative services. A term
// whose id equals its single alternative is a plain required service.
func (s *Spec) AddTerm(term int, alternatives ...int) error {
	if len(alternatives) == 0 {
		return fmt.Errorf("choice: term %d has no alternatives", term)
	}
	if _, dup := s.alts[term]; dup {
		return fmt.Errorf("choice: duplicate term %d", term)
	}
	seen := make(map[int]bool, len(alternatives))
	for _, a := range alternatives {
		if seen[a] {
			return fmt.Errorf("choice: term %d repeats alternative %d", term, a)
		}
		seen[a] = true
	}
	s.alts[term] = append([]int(nil), alternatives...)
	s.dag.AddNode(term)
	return nil
}

// Connect records that the output of one term feeds another.
func (s *Spec) Connect(fromTerm, toTerm int) error {
	if _, ok := s.alts[fromTerm]; !ok {
		return fmt.Errorf("choice: unknown term %d", fromTerm)
	}
	if _, ok := s.alts[toTerm]; !ok {
		return fmt.Errorf("choice: unknown term %d", toTerm)
	}
	s.dag.AddEdge(fromTerm, toTerm)
	return nil
}

// NumExpansions returns the size of the cartesian product of alternatives.
func (s *Spec) NumExpansions() int {
	n := 1
	for _, alts := range s.alts {
		n *= len(alts)
		if n > maxExpansions {
			return maxExpansions + 1
		}
	}
	return n
}

// Expand returns every concrete requirement obtained by selecting one
// alternative per term. Selections that repeat a service across terms are
// skipped (a service cannot fill two slots); so are selections whose
// requirement fails validation. The result is deterministic.
func (s *Spec) Expand() ([]*require.Requirement, error) {
	if len(s.alts) == 0 {
		return nil, fmt.Errorf("choice: empty spec")
	}
	if s.NumExpansions() > maxExpansions {
		return nil, fmt.Errorf("choice: more than %d expansions", maxExpansions)
	}
	terms := s.dag.Nodes()
	var (
		out    []*require.Requirement
		pick   = make(map[int]int, len(terms))
		inUse  = make(map[int]bool)
		assign func(i int)
	)
	assign = func(i int) {
		if i == len(terms) {
			req := require.New()
			for _, t := range terms {
				req.AddService(pick[t])
			}
			for _, e := range s.dag.Edges() {
				req.AddDependency(pick[e[0]], pick[e[1]])
			}
			if req.Validate() == nil {
				out = append(out, req)
			}
			return
		}
		t := terms[i]
		for _, alt := range s.alts[t] {
			if inUse[alt] {
				continue
			}
			pick[t] = alt
			inUse[alt] = true
			assign(i + 1)
			delete(pick, t)
			delete(inUse, alt)
		}
	}
	assign(0)
	if len(out) == 0 {
		return nil, fmt.Errorf("choice: no valid expansion")
	}
	return out, nil
}

// Solver federates one concrete requirement (the facade algorithms have this
// shape).
type Solver func(ov *overlay.Overlay, req *require.Requirement, src int) (*flow.Graph, qos.Metric, error)

// Result is the best federation across expansions.
type Result struct {
	// Req is the selected expansion.
	Req *require.Requirement
	// Flow is its federated service flow graph.
	Flow *flow.Graph
	// Metric is the end-to-end quality achieved.
	Metric qos.Metric
	// Considered counts the expansions tried; Feasible those that
	// federated successfully.
	Considered, Feasible int
}

// Best expands the spec and federates every expansion with the given solver
// from the source instance, returning the best result in the
// widest-then-shortest order. Expansions whose source service does not match
// the src instance are skipped.
func Best(ov *overlay.Overlay, spec *Spec, src int, solve Solver) (*Result, error) {
	reqs, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	// Deterministic order: sort by the expansion's service list.
	sort.Slice(reqs, func(i, j int) bool {
		return fmt.Sprint(reqs[i].Services()) < fmt.Sprint(reqs[j].Services())
	})
	var best *Result
	considered := 0
	feasible := 0
	for _, req := range reqs {
		if ov.SIDOf(src) != req.Source() {
			continue
		}
		considered++
		fg, m, err := solve(ov, req, src)
		if err != nil || !m.Reachable() {
			continue
		}
		feasible++
		if best == nil || m.Better(best.Metric) {
			best = &Result{Req: req, Flow: fg, Metric: m}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("%w (%d expansions considered)", ErrInfeasible, considered)
	}
	best.Considered = considered
	best.Feasible = feasible
	return best, nil
}
