package choice

import (
	"errors"
	"testing"

	"sflow/internal/abstract"
	"sflow/internal/exact"
	"sflow/internal/flow"
	"sflow/internal/overlay"
	"sflow/internal/qos"
	"sflow/internal/require"
)

// fig2Spec is the paper's Fig 2: Travel Engine (1) -> Attraction (2) ->
// (Map (3) OR Translator (4)) -> Agency (5). Term 99 is the choice slot.
func fig2Spec(t *testing.T) *Spec {
	t.Helper()
	s := NewSpec()
	for _, term := range [][]int{{1, 1}, {2, 2}, {5, 5}} {
		if err := s.AddTerm(term[0], term[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.AddTerm(99, 3, 4); err != nil {
		t.Fatal(err)
	}
	for _, e := range [][2]int{{1, 2}, {2, 99}, {99, 5}} {
		if err := s.Connect(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestSpecValidation(t *testing.T) {
	s := NewSpec()
	if err := s.AddTerm(1); err == nil {
		t.Fatal("empty alternatives accepted")
	}
	if err := s.AddTerm(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.AddTerm(1, 2); err == nil {
		t.Fatal("duplicate term accepted")
	}
	if err := s.AddTerm(2, 3, 3); err == nil {
		t.Fatal("repeated alternative accepted")
	}
	if err := s.Connect(1, 7); err == nil {
		t.Fatal("unknown term accepted")
	}
	if _, err := NewSpec().Expand(); err == nil {
		t.Fatal("empty spec expanded")
	}
}

func TestExpandFig2(t *testing.T) {
	s := fig2Spec(t)
	if got := s.NumExpansions(); got != 2 {
		t.Fatalf("NumExpansions = %d", got)
	}
	reqs, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 2 {
		t.Fatalf("expanded to %d requirements", len(reqs))
	}
	sawMap, sawTranslator := false, false
	for _, r := range reqs {
		if r.Has(3) {
			sawMap = true
		}
		if r.Has(4) {
			sawTranslator = true
		}
		if r.Has(3) && r.Has(4) {
			t.Fatal("expansion contains both alternatives")
		}
		if r.Shape() != require.ShapePath {
			t.Fatalf("expansion shape = %v", r.Shape())
		}
	}
	if !sawMap || !sawTranslator {
		t.Fatal("missing an alternative expansion")
	}
}

func TestExpandSkipsDuplicateSelections(t *testing.T) {
	// Two choice terms sharing alternative 3: selections picking 3 twice
	// must be skipped, leaving 9-... combos minus invalid.
	s := NewSpec()
	if err := s.AddTerm(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.AddTerm(10, 3, 4); err != nil {
		t.Fatal(err)
	}
	if err := s.AddTerm(11, 3, 5); err != nil {
		t.Fatal(err)
	}
	for _, e := range [][2]int{{1, 10}, {1, 11}} {
		if err := s.Connect(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	reqs, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// 2x2 = 4 combos, minus the (3,3) double-booking = 3.
	if len(reqs) != 3 {
		t.Fatalf("expanded to %d, want 3", len(reqs))
	}
}

// choiceOverlay gives the Map route high bandwidth and the Translator route
// low, so Best must select the Map expansion.
func choiceOverlay(t *testing.T) *overlay.Overlay {
	t.Helper()
	o := overlay.New()
	for _, in := range [][2]int{{1, 1}, {2, 2}, {3, 3}, {4, 4}, {5, 5}} {
		if err := o.AddInstance(in[0], in[1], -1); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range [][4]int64{
		{1, 2, 100, 1},
		{2, 3, 90, 1}, {3, 5, 90, 1}, // via Map: width 90
		{2, 4, 30, 1}, {4, 5, 30, 1}, // via Translator: width 30
	} {
		if err := o.AddLink(int(l[0]), int(l[1]), l[2], l[3]); err != nil {
			t.Fatal(err)
		}
	}
	return o
}

func optimalSolver(ov *overlay.Overlay, req *require.Requirement, src int) (*flow.Graph, qos.Metric, error) {
	ag, err := abstract.Build(ov, req)
	if err != nil {
		return nil, qos.Unreachable, err
	}
	r, err := exact.Solve(ag, src, exact.Options{})
	if err != nil {
		return nil, qos.Unreachable, err
	}
	return r.Flow, r.Metric, nil
}

func TestBestPicksBetterAlternative(t *testing.T) {
	o := choiceOverlay(t)
	res, err := Best(o, fig2Spec(t), 1, optimalSolver)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Req.Has(3) || res.Req.Has(4) {
		t.Fatalf("selected expansion %v, want the Map alternative", res.Req)
	}
	if res.Metric.Bandwidth != 90 {
		t.Fatalf("metric = %+v", res.Metric)
	}
	if res.Considered != 2 || res.Feasible < 1 {
		t.Fatalf("considered=%d feasible=%d", res.Considered, res.Feasible)
	}
	if err := res.Flow.Validate(res.Req, o); err != nil {
		t.Fatal(err)
	}
}

func TestBestInfeasible(t *testing.T) {
	// No Translator instance and no Map links: nothing federates.
	o := overlay.New()
	for _, in := range [][2]int{{1, 1}, {2, 2}, {5, 5}} {
		if err := o.AddInstance(in[0], in[1], -1); err != nil {
			t.Fatal(err)
		}
	}
	// Only alternative services 3/4 are missing entirely.
	if _, err := Best(o, fig2Spec(t), 1, optimalSolver); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestBestSkipsWrongSource(t *testing.T) {
	o := choiceOverlay(t)
	// Source instance of the wrong service: nothing considered.
	if _, err := Best(o, fig2Spec(t), 2, optimalSolver); err == nil {
		t.Fatal("wrong source accepted")
	}
}

func TestNumExpansionsCap(t *testing.T) {
	// 10 terms x 4 alternatives each = ~1M expansions: Expand must refuse.
	s := NewSpec()
	if err := s.AddTerm(0, 1000); err != nil {
		t.Fatal(err)
	}
	prev := 0
	for term := 1; term <= 10; term++ {
		alts := []int{term * 10, term*10 + 1, term*10 + 2, term*10 + 3}
		if err := s.AddTerm(term, alts...); err != nil {
			t.Fatal(err)
		}
		if err := s.Connect(prev, term); err != nil {
			t.Fatal(err)
		}
		prev = term
	}
	if s.NumExpansions() <= maxExpansions {
		t.Fatalf("NumExpansions = %d, expected above cap", s.NumExpansions())
	}
	if _, err := s.Expand(); err == nil {
		t.Fatal("oversized expansion accepted")
	}
}
