package flow

import (
	"encoding/json"
	"fmt"
	"sort"
)

type assignJSON struct {
	SID, NID int
}

type flowJSON struct {
	Assign []assignJSON `json:"assign"`
	Edges  []Edge       `json:"edges"`
}

// MarshalJSON encodes the flow graph as a sorted assignment plus edge list.
func (g *Graph) MarshalJSON() ([]byte, error) {
	as := make([]assignJSON, 0, len(g.assign))
	for sid, nid := range g.assign {
		as = append(as, assignJSON{SID: sid, NID: nid})
	}
	sort.Slice(as, func(i, j int) bool { return as[i].SID < as[j].SID })
	return json.Marshal(flowJSON{Assign: as, Edges: g.Edges()})
}

// UnmarshalJSON decodes a flow graph, re-validating internal consistency.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var w flowJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("flow: decode: %w", err)
	}
	dec := New()
	for _, a := range w.Assign {
		if err := dec.Assign(a.SID, a.NID); err != nil {
			return err
		}
	}
	for _, e := range w.Edges {
		if err := dec.AddEdge(e); err != nil {
			return err
		}
	}
	*g = *dec
	return nil
}
