// Package flow defines the service flow graph (Sec 3.1): the outcome of a
// federation. A flow graph selects exactly one overlay instance per required
// service and records, for every requirement edge, the concrete overlay route
// carrying that service stream.
//
// The package also defines the quality order used throughout the paper
// (bottleneck bandwidth first, critical-path latency second) and the
// correctness coefficient of Sec 5.
package flow

import (
	"fmt"
	"sort"

	"sflow/internal/graph"
	"sflow/internal/overlay"
	"sflow/internal/qos"
	"sflow/internal/require"
)

// Edge is one service stream of the flow graph: the requirement edge
// FromSID -> ToSID realised by the overlay route Path between the chosen
// instances.
type Edge struct {
	FromSID, ToSID int
	FromNID, ToNID int
	// Path is the overlay route, FromNID first and ToNID last. It may pass
	// through bridging instances that are not part of the requirement.
	Path []int
	// Metric is the quality of Path.
	Metric qos.Metric
}

// Graph is a service flow graph under construction or completed.
type Graph struct {
	assign map[int]int      // SID -> chosen NID
	edges  map[[2]int]*Edge // keyed by (FromSID, ToSID)
}

// New returns an empty flow graph.
func New() *Graph {
	return &Graph{assign: make(map[int]int), edges: make(map[[2]int]*Edge)}
}

// Assign records that service sid is performed by instance nid. Assigning a
// service twice to different instances is an error (the conflict the sFlow
// protocol must resolve by re-computation).
func (g *Graph) Assign(sid, nid int) error {
	if cur, ok := g.assign[sid]; ok && cur != nid {
		return fmt.Errorf("flow: service %d already assigned to instance %d (got %d)", sid, cur, nid)
	}
	g.assign[sid] = nid
	return nil
}

// Assigned returns the instance chosen for sid.
func (g *Graph) Assigned(sid int) (int, bool) {
	nid, ok := g.assign[sid]
	return nid, ok
}

// Assignment returns a copy of the full SID -> NID assignment.
func (g *Graph) Assignment() map[int]int {
	out := make(map[int]int, len(g.assign))
	for k, v := range g.assign {
		out[k] = v
	}
	return out
}

// NumAssigned returns how many services have an instance chosen.
func (g *Graph) NumAssigned() int { return len(g.assign) }

// AddEdge records the realisation of one requirement edge. It implies the
// corresponding assignments and fails on any conflict.
func (g *Graph) AddEdge(e Edge) error {
	if len(e.Path) == 0 || e.Path[0] != e.FromNID || e.Path[len(e.Path)-1] != e.ToNID {
		return fmt.Errorf("flow: edge %d->%d path %v does not connect instances %d->%d",
			e.FromSID, e.ToSID, e.Path, e.FromNID, e.ToNID)
	}
	if err := g.Assign(e.FromSID, e.FromNID); err != nil {
		return err
	}
	if err := g.Assign(e.ToSID, e.ToNID); err != nil {
		return err
	}
	key := [2]int{e.FromSID, e.ToSID}
	if old, ok := g.edges[key]; ok && !sameEdge(old, &e) {
		return fmt.Errorf("flow: requirement edge %d->%d realised twice differently", e.FromSID, e.ToSID)
	}
	cp := e
	cp.Path = append([]int(nil), e.Path...)
	g.edges[key] = &cp
	return nil
}

// Edge returns the realisation of the requirement edge fromSID -> toSID.
// The returned Edge owns its Path: callers may modify it freely without
// affecting later queries.
func (g *Graph) Edge(fromSID, toSID int) (Edge, bool) {
	e, ok := g.edges[[2]int{fromSID, toSID}]
	if !ok {
		return Edge{}, false
	}
	cp := *e
	cp.Path = append([]int(nil), e.Path...)
	return cp, true
}

// Edges returns all realised edges sorted by (FromSID, ToSID). Every
// returned Edge owns its Path: callers may modify the slices freely without
// affecting later queries.
func (g *Graph) Edges() []Edge {
	keys := make([][2]int, 0, len(g.edges))
	for k := range g.edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	out := make([]Edge, 0, len(keys))
	for _, k := range keys {
		e := *g.edges[k]
		e.Path = append([]int(nil), e.Path...)
		out = append(out, e)
	}
	return out
}

// Merge folds another partial flow graph into g, failing on any assignment or
// edge conflict. Used when parallel sFlow branches converge.
func (g *Graph) Merge(o *Graph) error {
	for sid, nid := range o.assign {
		if err := g.Assign(sid, nid); err != nil {
			return err
		}
	}
	for _, e := range o.Edges() {
		if err := g.AddEdge(e); err != nil {
			return err
		}
	}
	return nil
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New()
	for sid, nid := range g.assign {
		c.assign[sid] = nid
	}
	for k, e := range g.edges {
		cp := *e
		cp.Path = append([]int(nil), e.Path...)
		c.edges[k] = &cp
	}
	return c
}

// Complete reports whether g realises every service and edge of req.
func (g *Graph) Complete(req *require.Requirement) bool {
	for _, sid := range req.Services() {
		if _, ok := g.assign[sid]; !ok {
			return false
		}
	}
	for _, e := range req.Edges() {
		if _, ok := g.edges[[2]int{e[0], e[1]}]; !ok {
			return false
		}
	}
	return true
}

// Validate checks g against the requirement and overlay it claims to
// federate: every required service is assigned to an instance that provides
// it; every requirement edge is realised by a route that exists in the
// overlay, connects the chosen instances, and carries a metric consistent
// with its links.
func (g *Graph) Validate(req *require.Requirement, ov *overlay.Overlay) error {
	for _, sid := range req.Services() {
		nid, ok := g.assign[sid]
		if !ok {
			return fmt.Errorf("flow: service %d unassigned", sid)
		}
		if got := ov.SIDOf(nid); got != sid {
			return fmt.Errorf("flow: service %d assigned to instance %d which provides %d", sid, nid, got)
		}
	}
	for _, re := range req.Edges() {
		e, ok := g.edges[[2]int{re[0], re[1]}]
		if !ok {
			return fmt.Errorf("flow: requirement edge %d->%d not realised", re[0], re[1])
		}
		if e.FromNID != g.assign[re[0]] || e.ToNID != g.assign[re[1]] {
			return fmt.Errorf("flow: edge %d->%d endpoints (%d,%d) disagree with assignment (%d,%d)",
				re[0], re[1], e.FromNID, e.ToNID, g.assign[re[0]], g.assign[re[1]])
		}
		m, err := PathMetric(ov, e.Path)
		if err != nil {
			return fmt.Errorf("flow: edge %d->%d: %w", re[0], re[1], err)
		}
		if m != e.Metric {
			return fmt.Errorf("flow: edge %d->%d metric %+v does not match path %+v", re[0], re[1], e.Metric, m)
		}
	}
	return nil
}

// PathMetric recomputes the metric of a concrete overlay route.
func PathMetric(ov *overlay.Overlay, path []int) (qos.Metric, error) {
	if len(path) == 0 {
		return qos.Unreachable, fmt.Errorf("empty path")
	}
	m := qos.Empty
	for i := 0; i+1 < len(path); i++ {
		lm, ok := ov.LinkMetric(path[i], path[i+1])
		if !ok {
			return qos.Unreachable, fmt.Errorf("no overlay link %d->%d", path[i], path[i+1])
		}
		m = m.Concat(lm)
	}
	return m, nil
}

// Quality returns the end-to-end quality of the flow graph for req: the
// bottleneck bandwidth over all service streams and the latency of the
// critical source-to-sink chain. Incomplete graphs are qos.Unreachable.
func (g *Graph) Quality(req *require.Requirement) qos.Metric {
	if !g.Complete(req) {
		return qos.Unreachable
	}
	width := qos.InfBandwidth
	for _, e := range g.edges {
		if !e.Metric.Reachable() {
			return qos.Unreachable
		}
		if e.Metric.Bandwidth < width {
			width = e.Metric.Bandwidth
		}
	}
	dag := graph.New()
	for _, re := range req.Edges() {
		dag.AddEdge(re[0], re[1])
	}
	lat, err := dag.LongestPathFrom(req.Source(), func(u, v int) int64 {
		return g.edges[[2]int{u, v}].Metric.Latency
	})
	if err != nil {
		return qos.Unreachable
	}
	var worst int64
	for _, sink := range req.Sinks() {
		if lat[sink] > worst {
			worst = lat[sink]
		}
	}
	return qos.Metric{Bandwidth: width, Latency: worst}
}

// CorrectnessCoefficient returns the fraction of services for which g chose
// the same instance as the reference (globally optimal) flow graph — the
// metric of Fig 10(a). The result is in (0, 1] when the reference is
// non-empty; it is 0 only for an empty intersection.
func (g *Graph) CorrectnessCoefficient(optimal *Graph) float64 {
	if len(optimal.assign) == 0 {
		return 0
	}
	match := 0
	for sid, nid := range optimal.assign {
		if got, ok := g.assign[sid]; ok && got == nid {
			match++
		}
	}
	return float64(match) / float64(len(optimal.assign))
}

// String renders the assignment compactly.
func (g *Graph) String() string {
	sids := make([]int, 0, len(g.assign))
	for sid := range g.assign {
		sids = append(sids, sid)
	}
	sort.Ints(sids)
	s := "flow{"
	for i, sid := range sids {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%d/%d", sid, g.assign[sid])
	}
	return s + "}"
}

func sameEdge(a, b *Edge) bool {
	if a.FromSID != b.FromSID || a.ToSID != b.ToSID || a.FromNID != b.FromNID ||
		a.ToNID != b.ToNID || a.Metric != b.Metric || len(a.Path) != len(b.Path) {
		return false
	}
	for i := range a.Path {
		if a.Path[i] != b.Path[i] {
			return false
		}
	}
	return true
}
