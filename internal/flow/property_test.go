package flow

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"sflow/internal/qos"
)

// randomFlow builds a structurally consistent random flow graph over a chain
// requirement of n services.
func randomFlow(rng *rand.Rand, n int) *Graph {
	g := New()
	for sid := 1; sid < n; sid++ {
		from := sid * 10
		to := (sid + 1) * 10
		path := []int{from}
		for hops := rng.Intn(3); hops > 0; hops-- {
			path = append(path, 1000+rng.Intn(100))
		}
		path = append(path, to)
		_ = g.AddEdge(Edge{
			FromSID: sid, ToSID: sid + 1,
			FromNID: from, ToNID: to,
			Path: path,
			Metric: qos.Metric{
				Bandwidth: int64(1 + rng.Intn(1000)),
				Latency:   int64(rng.Intn(5000)),
			},
		})
	}
	return g
}

func TestPropertyJSONRoundTripPreservesGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		g := randomFlow(rng, 2+rng.Intn(8))
		data, err := json.Marshal(g)
		if err != nil {
			t.Fatal(err)
		}
		var back Graph
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !reflect.DeepEqual(g.Edges(), back.Edges()) {
			t.Fatalf("trial %d: edges changed", trial)
		}
		if !reflect.DeepEqual(g.Assignment(), back.Assignment()) {
			t.Fatalf("trial %d: assignment changed", trial)
		}
		// Double round trip is stable.
		data2, err := json.Marshal(&back)
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != string(data2) {
			t.Fatalf("trial %d: marshalling not canonical", trial)
		}
	}
}

func TestPropertyMergeIsIdempotentAndCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		g := randomFlow(rng, 3+rng.Intn(6))
		// Split edges into two overlapping halves.
		a, b := New(), New()
		for i, e := range g.Edges() {
			if i%2 == 0 || rng.Intn(2) == 0 {
				if err := a.AddEdge(e); err != nil {
					t.Fatal(err)
				}
			}
			if i%2 == 1 || rng.Intn(2) == 0 {
				if err := b.AddEdge(e); err != nil {
					t.Fatal(err)
				}
			}
		}
		ab := a.Clone()
		if err := ab.Merge(b); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ba := b.Clone()
		if err := ba.Merge(a); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !reflect.DeepEqual(ab.Edges(), ba.Edges()) {
			t.Fatalf("trial %d: merge not commutative", trial)
		}
		// Merging again changes nothing.
		again := ab.Clone()
		if err := again.Merge(b); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(again.Edges(), ab.Edges()) {
			t.Fatalf("trial %d: merge not idempotent", trial)
		}
	}
}

func TestPropertyCorrectnessCoefficientBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 50; trial++ {
		opt := randomFlow(rng, 3+rng.Intn(6))
		probe := New()
		for sid, nid := range opt.Assignment() {
			if rng.Intn(2) == 0 {
				_ = probe.Assign(sid, nid)
			} else {
				_ = probe.Assign(sid, nid+1) // wrong instance
			}
		}
		cc := probe.CorrectnessCoefficient(opt)
		if cc < 0 || cc > 1 {
			t.Fatalf("trial %d: coefficient %v out of [0,1]", trial, cc)
		}
		if got := opt.CorrectnessCoefficient(opt); got != 1 {
			t.Fatalf("trial %d: self coefficient %v", trial, got)
		}
	}
}
