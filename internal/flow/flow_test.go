package flow

import (
	"encoding/json"
	"reflect"
	"testing"

	"sflow/internal/overlay"
	"sflow/internal/qos"
	"sflow/internal/require"
)

// diamondFixture: requirement 1 -> {2,3} -> 4 on an overlay with one
// instance per service (NID = SID*10) and a relay instance 99.
func diamondFixture(t *testing.T) (*overlay.Overlay, *require.Requirement) {
	t.Helper()
	o := overlay.New()
	for _, in := range [][2]int{{10, 1}, {20, 2}, {30, 3}, {40, 4}, {99, 9}} {
		if err := o.AddInstance(in[0], in[1], -1); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range [][4]int64{
		{10, 20, 100, 1}, {10, 30, 80, 2},
		{20, 40, 60, 3}, {30, 99, 70, 1}, {99, 40, 90, 1},
	} {
		if err := o.AddLink(int(l[0]), int(l[1]), l[2], l[3]); err != nil {
			t.Fatal(err)
		}
	}
	req, err := require.FromEdges([][2]int{{1, 2}, {1, 3}, {2, 4}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	return o, req
}

// completeDiamond builds the full flow graph for the diamond fixture.
func completeDiamond(t *testing.T) *Graph {
	t.Helper()
	g := New()
	edges := []Edge{
		{FromSID: 1, ToSID: 2, FromNID: 10, ToNID: 20, Path: []int{10, 20}, Metric: qos.Metric{Bandwidth: 100, Latency: 1}},
		{FromSID: 1, ToSID: 3, FromNID: 10, ToNID: 30, Path: []int{10, 30}, Metric: qos.Metric{Bandwidth: 80, Latency: 2}},
		{FromSID: 2, ToSID: 4, FromNID: 20, ToNID: 40, Path: []int{20, 40}, Metric: qos.Metric{Bandwidth: 60, Latency: 3}},
		{FromSID: 3, ToSID: 4, FromNID: 30, ToNID: 40, Path: []int{30, 99, 40}, Metric: qos.Metric{Bandwidth: 70, Latency: 2}},
	}
	for _, e := range edges {
		if err := g.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestAssignConflict(t *testing.T) {
	g := New()
	if err := g.Assign(1, 10); err != nil {
		t.Fatal(err)
	}
	if err := g.Assign(1, 10); err != nil {
		t.Fatal("re-assigning same instance must be fine")
	}
	if err := g.Assign(1, 11); err == nil {
		t.Fatal("conflicting assignment accepted")
	}
	if nid, ok := g.Assigned(1); !ok || nid != 10 {
		t.Fatalf("Assigned(1) = %d, %v", nid, ok)
	}
	if _, ok := g.Assigned(2); ok {
		t.Fatal("unassigned service reported assigned")
	}
	a := g.Assignment()
	a[1] = 99
	if got, _ := g.Assigned(1); got != 10 {
		t.Fatal("Assignment leaked internal map")
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := New()
	bad := Edge{FromSID: 1, ToSID: 2, FromNID: 10, ToNID: 20, Path: []int{10, 30}}
	if err := g.AddEdge(bad); err == nil {
		t.Fatal("path not ending at ToNID accepted")
	}
	if err := g.AddEdge(Edge{FromSID: 1, ToSID: 2, FromNID: 10, ToNID: 20, Path: nil}); err == nil {
		t.Fatal("empty path accepted")
	}
	good := Edge{FromSID: 1, ToSID: 2, FromNID: 10, ToNID: 20, Path: []int{10, 20}, Metric: qos.Metric{Bandwidth: 5, Latency: 1}}
	if err := g.AddEdge(good); err != nil {
		t.Fatal(err)
	}
	// Same edge again: idempotent.
	if err := g.AddEdge(good); err != nil {
		t.Fatalf("idempotent re-add rejected: %v", err)
	}
	// Same requirement edge, different realisation: conflict.
	other := good
	other.Path = []int{10, 99, 20}
	if err := g.AddEdge(other); err == nil {
		t.Fatal("conflicting realisation accepted")
	}
	// Edge implying a conflicting assignment.
	if err := g.AddEdge(Edge{FromSID: 1, ToSID: 3, FromNID: 11, ToNID: 30, Path: []int{11, 30}}); err == nil {
		t.Fatal("edge with conflicting FromNID accepted")
	}
}

func TestCompleteAndValidate(t *testing.T) {
	o, req := diamondFixture(t)
	g := completeDiamond(t)
	if !g.Complete(req) {
		t.Fatal("complete graph reported incomplete")
	}
	if err := g.Validate(req, o); err != nil {
		t.Fatalf("valid flow graph rejected: %v", err)
	}
	// Removing one edge makes it incomplete.
	partial := New()
	e, _ := g.Edge(1, 2)
	if err := partial.AddEdge(e); err != nil {
		t.Fatal(err)
	}
	if partial.Complete(req) {
		t.Fatal("partial graph reported complete")
	}
	if err := partial.Validate(req, o); err == nil {
		t.Fatal("partial graph validated")
	}
}

func TestValidateCatchesLies(t *testing.T) {
	o, req := diamondFixture(t)

	// Wrong metric.
	g := completeDiamond(t)
	e, _ := g.Edge(1, 2)
	bad := New()
	e.Metric = qos.Metric{Bandwidth: 999, Latency: 1}
	if err := bad.AddEdge(e); err != nil {
		t.Fatal(err)
	}
	for _, rest := range []([2]int){{1, 3}, {2, 4}, {3, 4}} {
		re, _ := g.Edge(rest[0], rest[1])
		if err := bad.AddEdge(re); err != nil {
			t.Fatal(err)
		}
	}
	if err := bad.Validate(req, o); err == nil {
		t.Fatal("lying metric validated")
	}

	// Nonexistent overlay link in path.
	g2 := New()
	if err := g2.AddEdge(Edge{FromSID: 1, ToSID: 2, FromNID: 10, ToNID: 20, Path: []int{10, 99, 20}}); err != nil {
		t.Fatal(err)
	}
	if err := g2.Validate(req, o); err == nil {
		t.Fatal("phantom path validated")
	}

	// Instance providing the wrong service.
	g3 := completeDiamond(t)
	g3.assign[1] = 99 // direct poke: service 1 "assigned" to a svc-9 instance
	if err := g3.Validate(req, o); err == nil {
		t.Fatal("wrong-service assignment validated")
	}
}

func TestPathMetric(t *testing.T) {
	o, _ := diamondFixture(t)
	m, err := PathMetric(o, []int{10, 30, 99, 40})
	if err != nil {
		t.Fatal(err)
	}
	if m != (qos.Metric{Bandwidth: 70, Latency: 4}) {
		t.Fatalf("PathMetric = %+v", m)
	}
	if _, err := PathMetric(o, []int{10, 40}); err == nil {
		t.Fatal("missing link accepted")
	}
	if _, err := PathMetric(o, nil); err == nil {
		t.Fatal("empty path accepted")
	}
	// Single node path: the empty metric.
	m, err = PathMetric(o, []int{10})
	if err != nil || m != qos.Empty {
		t.Fatalf("single-node PathMetric = %+v, %v", m, err)
	}
}

func TestQuality(t *testing.T) {
	_, req := diamondFixture(t)
	g := completeDiamond(t)
	// Bottleneck = min(100,80,60,70) = 60; critical path latency =
	// max(1+3, 2+2) = 4.
	if got := g.Quality(req); got != (qos.Metric{Bandwidth: 60, Latency: 4}) {
		t.Fatalf("Quality = %+v", got)
	}
	if New().Quality(req).Reachable() {
		t.Fatal("empty graph quality should be unreachable")
	}
}

func TestMerge(t *testing.T) {
	g := completeDiamond(t)
	half1, half2 := New(), New()
	for i, e := range g.Edges() {
		dst := half1
		if i%2 == 1 {
			dst = half2
		}
		if err := dst.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	merged := New()
	if err := merged.Merge(half1); err != nil {
		t.Fatal(err)
	}
	if err := merged.Merge(half2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged.Edges(), g.Edges()) {
		t.Fatal("merge lost edges")
	}
	// Conflicting merge.
	conflict := New()
	if err := conflict.Assign(1, 777); err != nil {
		t.Fatal(err)
	}
	if err := conflict.Merge(g); err == nil {
		t.Fatal("conflicting merge accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := completeDiamond(t)
	c := g.Clone()
	if !reflect.DeepEqual(g.Edges(), c.Edges()) {
		t.Fatal("clone differs")
	}
	if err := c.Assign(9, 99); err != nil {
		t.Fatal(err)
	}
	if _, ok := g.Assigned(9); ok {
		t.Fatal("clone aliases original")
	}
}

// Paths handed out by Edge/Edges are defensive copies: mutating them must
// not corrupt the graph's stored routes or later queries.
func TestReturnedPathsAreDefensiveCopies(t *testing.T) {
	g := completeDiamond(t)
	want := []int{30, 99, 40}

	edges := g.Edges()
	for _, e := range edges {
		for i := range e.Path {
			e.Path[i] = -1
		}
	}
	e, ok := g.Edge(3, 4)
	if !ok {
		t.Fatal("edge 3->4 missing")
	}
	if !reflect.DeepEqual(e.Path, want) {
		t.Fatalf("Edges() mutation leaked into stored path: %v", e.Path)
	}

	for i := range e.Path {
		e.Path[i] = -2
	}
	again, _ := g.Edge(3, 4)
	if !reflect.DeepEqual(again.Path, want) {
		t.Fatalf("Edge() mutation leaked into stored path: %v", again.Path)
	}

	// The graph must still validate against its overlay after both
	// mutation attempts.
	ov, req := diamondFixture(t)
	if err := g.Validate(req, ov); err != nil {
		t.Fatalf("graph corrupted by caller-side mutation: %v", err)
	}
}

func TestCorrectnessCoefficient(t *testing.T) {
	opt := New()
	for sid, nid := range map[int]int{1: 10, 2: 20, 3: 30, 4: 40} {
		if err := opt.Assign(sid, nid); err != nil {
			t.Fatal(err)
		}
	}
	same := opt.Clone()
	if got := same.CorrectnessCoefficient(opt); got != 1.0 {
		t.Fatalf("identical = %v, want 1", got)
	}
	half := New()
	half.Assign(1, 10)
	half.Assign(2, 21) // wrong instance
	half.Assign(3, 30)
	if got := half.CorrectnessCoefficient(opt); got != 0.5 {
		t.Fatalf("half = %v, want 0.5", got)
	}
	if got := New().CorrectnessCoefficient(opt); got != 0 {
		t.Fatalf("empty = %v, want 0", got)
	}
	if got := opt.CorrectnessCoefficient(New()); got != 0 {
		t.Fatalf("empty reference = %v, want 0", got)
	}
}

func TestNumAssignedAndString(t *testing.T) {
	g := completeDiamond(t)
	if g.NumAssigned() != 4 {
		t.Fatalf("NumAssigned = %d", g.NumAssigned())
	}
	if s := g.String(); s == "" || s == "flow{}" {
		t.Fatalf("String = %q", s)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := completeDiamond(t)
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g.Edges(), back.Edges()) {
		t.Fatal("edges differ after round trip")
	}
	if !reflect.DeepEqual(g.Assignment(), back.Assignment()) {
		t.Fatal("assignment differs after round trip")
	}
}

func TestJSONRejectsInconsistent(t *testing.T) {
	var g Graph
	bad := `{"assign":[{"SID":1,"NID":10},{"SID":1,"NID":11}],"edges":[]}`
	// Duplicate SID with different NID: second Assign must fail.
	if err := json.Unmarshal([]byte(bad), &g); err == nil {
		t.Fatal("conflicting assignment accepted")
	}
}
