package des

import "testing"

func BenchmarkScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New()
		for j := 0; j < 1000; j++ {
			d := int64((j * 37) % 500)
			if err := s.Schedule(d, func() {}); err != nil {
				b.Fatal(err)
			}
		}
		if got := s.Run(); got != 1000 {
			b.Fatalf("ran %d events", got)
		}
	}
}

func BenchmarkCascade(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New()
		var hop func(depth int)
		hop = func(depth int) {
			if depth < 1000 {
				_ = s.Schedule(1, func() { hop(depth + 1) })
			}
		}
		_ = s.Schedule(0, func() { hop(0) })
		s.Run()
	}
}
