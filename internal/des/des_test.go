package des

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func TestScheduleAndRunOrder(t *testing.T) {
	s := New()
	var order []int
	s.Schedule(30, func() { order = append(order, 3) })
	s.Schedule(10, func() { order = append(order, 1) })
	s.Schedule(20, func() { order = append(order, 2) })
	if n := s.Run(); n != 3 {
		t.Fatalf("Run executed %d events", n)
	}
	if want := []int{1, 2, 3}; !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 30 {
		t.Fatalf("Now = %d, want 30", s.Now())
	}
}

func TestFIFOAtEqualTime(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(5, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
}

func TestCascadingEvents(t *testing.T) {
	s := New()
	var times []int64
	var chain func(depth int)
	chain = func(depth int) {
		times = append(times, s.Now())
		if depth < 3 {
			s.Schedule(7, func() { chain(depth + 1) })
		}
	}
	s.Schedule(1, func() { chain(0) })
	s.Run()
	if want := []int64{1, 8, 15, 22}; !reflect.DeepEqual(times, want) {
		t.Fatalf("times = %v", times)
	}
}

func TestScheduleValidation(t *testing.T) {
	s := New()
	if err := s.Schedule(-1, func() {}); err == nil {
		t.Fatal("negative delay accepted")
	}
	if err := s.Schedule(1, nil); err == nil {
		t.Fatal("nil fn accepted")
	}
	s.Schedule(10, func() {})
	s.Run()
	if err := s.ScheduleAt(5, func() {}); err == nil {
		t.Fatal("past schedule accepted")
	}
}

func TestStepAndPending(t *testing.T) {
	s := New()
	if s.Step() {
		t.Fatal("Step on empty queue")
	}
	ran := false
	s.Schedule(3, func() { ran = true })
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d", s.Pending())
	}
	if !s.Step() || !ran {
		t.Fatal("Step did not run event")
	}
	if s.Pending() != 0 {
		t.Fatal("Pending after run")
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var got []int64
	for _, d := range []int64{5, 10, 15, 20} {
		d := d
		s.Schedule(d, func() { got = append(got, d) })
	}
	if n := s.RunUntil(12); n != 2 {
		t.Fatalf("RunUntil executed %d", n)
	}
	if s.Now() != 12 {
		t.Fatalf("Now = %d, want 12", s.Now())
	}
	if want := []int64{5, 10}; !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
	s.Run()
	if want := []int64{5, 10, 15, 20}; !reflect.DeepEqual(got, want) {
		t.Fatalf("final %v", got)
	}
}

func TestRandomisedOrderingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		s := New()
		n := 50
		delays := make([]int64, n)
		var fired []int64
		for i := range delays {
			d := int64(rng.Intn(1000))
			delays[i] = d
			s.Schedule(d, func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			t.Fatalf("trial %d: events fired out of order: %v", trial, fired)
		}
		sort.Slice(delays, func(i, j int) bool { return delays[i] < delays[j] })
		if !reflect.DeepEqual(fired, delays) {
			t.Fatalf("trial %d: fired times %v != scheduled %v", trial, fired, delays)
		}
	}
}

func TestStepRunUntilInterleave(t *testing.T) {
	s := New()
	var got []int64
	for _, d := range []int64{3, 6, 9} {
		d := d
		if err := s.Schedule(d, func() { got = append(got, d) }); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Step() {
		t.Fatal("step failed")
	}
	if n := s.RunUntil(6); n != 1 {
		t.Fatalf("RunUntil ran %d", n)
	}
	// Scheduling relative to the advanced clock lands after existing work.
	if err := s.Schedule(1, func() { got = append(got, 7) }); err != nil {
		t.Fatal(err)
	}
	s.Run()
	want := []int64{3, 6, 7, 9}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
}
