// Package des is a deterministic discrete-event simulator: a virtual clock
// in microseconds and an event queue ordered by (time, insertion sequence).
// The paper's evaluation simulates all network communication with
// event-driven simulation; this engine is the Go equivalent.
package des

import "fmt"

// Simulator is a single-threaded discrete-event simulator. The zero value is
// not usable; use New. Simulators are not safe for concurrent use: events
// run on the goroutine that calls Run.
type Simulator struct {
	now  int64
	seq  uint64
	heap []event
}

type event struct {
	time int64
	seq  uint64
	fn   func()
}

// New returns a simulator at virtual time zero.
func New() *Simulator { return &Simulator{} }

// Now returns the current virtual time in microseconds.
func (s *Simulator) Now() int64 { return s.now }

// Pending returns the number of scheduled events not yet executed.
func (s *Simulator) Pending() int { return len(s.heap) }

// Schedule runs fn after the given virtual delay (microseconds). Events with
// equal firing time run in scheduling order (FIFO), which makes runs
// deterministic.
func (s *Simulator) Schedule(delay int64, fn func()) error {
	if delay < 0 {
		return fmt.Errorf("des: negative delay %d", delay)
	}
	return s.ScheduleAt(s.now+delay, fn)
}

// ScheduleAt runs fn at the given absolute virtual time.
func (s *Simulator) ScheduleAt(t int64, fn func()) error {
	if t < s.now {
		return fmt.Errorf("des: schedule at %d is in the past (now %d)", t, s.now)
	}
	if fn == nil {
		return fmt.Errorf("des: nil event function")
	}
	s.push(event{time: t, seq: s.seq, fn: fn})
	s.seq++
	return nil
}

// Step executes the single earliest event. It reports whether an event ran.
func (s *Simulator) Step() bool {
	if len(s.heap) == 0 {
		return false
	}
	e := s.pop()
	s.now = e.time
	e.fn()
	return true
}

// Run executes events until the queue is empty and returns the number of
// events executed. Event functions may schedule further events.
func (s *Simulator) Run() int {
	n := 0
	for s.Step() {
		n++
	}
	return n
}

// RunUntil executes events with firing time <= t, then advances the clock to
// t. It returns the number of events executed.
func (s *Simulator) RunUntil(t int64) int {
	n := 0
	for len(s.heap) > 0 && s.heap[0].time <= t {
		s.Step()
		n++
	}
	if t > s.now {
		s.now = t
	}
	return n
}

func (s *Simulator) less(i, j int) bool {
	if s.heap[i].time != s.heap[j].time {
		return s.heap[i].time < s.heap[j].time
	}
	return s.heap[i].seq < s.heap[j].seq
}

func (s *Simulator) push(e event) {
	s.heap = append(s.heap, e)
	i := len(s.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !s.less(i, p) {
			break
		}
		s.heap[p], s.heap[i] = s.heap[i], s.heap[p]
		i = p
	}
}

func (s *Simulator) pop() event {
	top := s.heap[0]
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.heap = s.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(s.heap) && s.less(l, best) {
			best = l
		}
		if r < len(s.heap) && s.less(r, best) {
			best = r
		}
		if best == i {
			break
		}
		s.heap[i], s.heap[best] = s.heap[best], s.heap[i]
		i = best
	}
	return top
}
