// Package reduce implements the reduction heuristics of Sec 3.4 that extend
// the polynomial baseline algorithm from single service paths to general DAG
// requirements:
//
//   - Path reduction decomposes the requirement into maximal single-path
//     fragments (chains) between junction services — the services where
//     streams split or merge, plus the source and the sinks.
//   - Split-and-merge reduction isolates the parallel branches between a
//     splitting and a merging junction; once each branch is solved (by the
//     baseline algorithm with the junction instances pinned), the whole block
//     behaves like one edge between the junctions.
//
// Solve combines the two: the requirement collapses to its junction
// skeleton, junction instances are chosen by bounded exhaustive search over
// the skeleton (greedy topological scoring beyond the bound), and with all
// junctions fixed every fragment is solved optimally by the baseline and the
// pieces merged into the final service flow graph. As the paper notes, the
// reductions are best-effort heuristics — the underlying problem is
// NP-complete (Theorem 1) — but each fragment is individually optimal.
package reduce

import (
	"errors"
	"fmt"
	"sort"

	"sflow/internal/abstract"
	"sflow/internal/baseline"
	"sflow/internal/flow"
	"sflow/internal/graph"
	"sflow/internal/qos"
	"sflow/internal/require"
)

// ErrInfeasible is returned when no instance assignment connects the
// requirement under the heuristic's choices.
var ErrInfeasible = errors.New("reduce: no feasible service flow graph")

// Chain is one single-path fragment of a requirement produced by path
// reduction: From and To are junction services, Via the intermediate
// (non-junction) services in order.
type Chain struct {
	From, To int
	Via      []int
}

// Services returns the full service chain including both junctions.
func (c Chain) Services() []int {
	out := make([]int, 0, len(c.Via)+2)
	out = append(out, c.From)
	out = append(out, c.Via...)
	out = append(out, c.To)
	return out
}

// PathReduction decomposes a validated requirement into its chain fragments
// between junctions. Every requirement edge belongs to exactly one chain;
// every non-junction service appears in exactly one chain's Via list. The
// result is sorted by (From, To, first Via).
func PathReduction(req *require.Requirement) []Chain {
	junction := make(map[int]bool)
	for _, j := range req.Junctions() {
		junction[j] = true
	}
	var chains []Chain
	for _, j := range req.Junctions() {
		for _, next := range req.Downstream(j) {
			c := Chain{From: j}
			cur := next
			for !junction[cur] {
				c.Via = append(c.Via, cur)
				cur = req.Downstream(cur)[0] // non-junction: out-degree exactly 1
			}
			c.To = cur
			chains = append(chains, c)
		}
	}
	sort.Slice(chains, func(i, k int) bool {
		a, b := chains[i], chains[k]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return firstVia(a) < firstVia(b)
	})
	return chains
}

// Block is a split-and-merge block: >= 2 parallel chains from the same
// splitting junction to the same merging junction.
type Block struct {
	Split, Merge int
	Branches     []Chain
}

// SplitMergeBlocks identifies the split-and-merge blocks of a requirement:
// junction pairs connected by two or more parallel chain fragments. These
// are the regions the split-and-merge reduction isolates and replaces by a
// single edge.
func SplitMergeBlocks(req *require.Requirement) []Block {
	group := make(map[[2]int][]Chain)
	for _, c := range PathReduction(req) {
		key := [2]int{c.From, c.To}
		group[key] = append(group[key], c)
	}
	keys := make([][2]int, 0, len(group))
	for k, cs := range group {
		if len(cs) >= 2 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	out := make([]Block, 0, len(keys))
	for _, k := range keys {
		out = append(out, Block{Split: k[0], Merge: k[1], Branches: group[k]})
	}
	return out
}

// Result is the outcome of the reduction-based heuristic.
type Result struct {
	// Flow is the computed service flow graph.
	Flow *flow.Graph
	// Metric is its end-to-end quality.
	Metric qos.Metric
	// Junctions records the instances chosen for the junction services.
	Junctions map[int]int
}

// maxJunctionCombos bounds the exhaustive search over junction instance
// combinations; above this the solver falls back to the greedy scorer.
// Chain interiors are never enumerated — each fragment is solved by the
// polynomial baseline — so the bound only concerns the junction skeleton.
const maxJunctionCombos = 50_000

// Solve computes a service flow graph for an arbitrary requirement using the
// reduction heuristics. src is the designated instance of the source
// service; pins (optional) force instances for specific services and take
// precedence over the heuristic's own junction choices.
//
// Junction services are assigned first: when the combination space is small
// (the common case — requirements have few junctions), every combination is
// scored with memoized optimal chain solves under branch-and-bound, which
// makes the result bandwidth-optimal given that each fragment is realised by
// its own shortest-widest solution. Large skeletons fall back to a greedy
// topological scorer. Either way the interiors of the chain fragments are
// then solved exactly by the baseline algorithm with the junctions pinned.
func Solve(ag *abstract.Graph, src int, pins map[int]int) (*Result, error) {
	req := ag.Requirement()
	if got := ag.Overlay().SIDOf(src); got != req.Source() {
		return nil, fmt.Errorf("reduce: source instance %d provides service %d, requirement starts at %d",
			src, got, req.Source())
	}
	chains := PathReduction(req)

	s := &solver{
		ag:     ag,
		req:    req,
		chains: chains,
		pins:   pins,
		memo:   make(map[chainKey]qos.Metric),
	}
	chosen, err := s.chooseJunctions(src)
	if err != nil {
		return nil, err
	}

	// Assembly: with all junction instances fixed, solve every chain
	// fragment optimally and merge.
	fg := flow.New()
	for _, c := range chains {
		r, err := solveChainPinned(ag, c, chosen[c.From], chosen[c.To], pins)
		if err != nil {
			return nil, fmt.Errorf("%w: fragment %d->%d: %v", ErrInfeasible, c.From, c.To, err)
		}
		if err := fg.Merge(r.Flow); err != nil {
			return nil, fmt.Errorf("reduce: merge fragment %d->%d: %w", c.From, c.To, err)
		}
	}
	m := fg.Quality(req)
	if !m.Reachable() {
		return nil, ErrInfeasible
	}
	return &Result{Flow: fg, Metric: m, Junctions: chosen}, nil
}

// solver carries the state of one reduction solve.
type solver struct {
	ag     *abstract.Graph
	req    *require.Requirement
	chains []Chain
	pins   map[int]int
	memo   map[chainKey]qos.Metric
}

type chainKey struct {
	idx      int // index into chains
	from, to int // junction instances
}

// chainMetric returns the optimal metric of chain fragment idx with both
// junction endpoints fixed (memoized; Unreachable when infeasible).
func (s *solver) chainMetric(idx, fromNID, toNID int) qos.Metric {
	key := chainKey{idx: idx, from: fromNID, to: toNID}
	if m, ok := s.memo[key]; ok {
		return m
	}
	m := qos.Unreachable
	if r, err := solveChainPinned(s.ag, s.chains[idx], fromNID, toNID, s.pins); err == nil {
		m = r.Metric
	}
	s.memo[key] = m
	return m
}

// chooseJunctions assigns an instance to every junction service.
func (s *solver) chooseJunctions(src int) (map[int]int, error) {
	junctions := s.req.Junctions()
	order := make([]int, 0, len(junctions))
	isJunction := make(map[int]bool, len(junctions))
	for _, j := range junctions {
		isJunction[j] = true
	}
	for _, sid := range s.req.TopoOrder() {
		if isJunction[sid] {
			order = append(order, sid)
		}
	}

	cands := make(map[int][]int, len(order))
	combos := 1
	for _, sid := range order {
		switch {
		case sid == s.req.Source():
			cands[sid] = []int{src}
		default:
			if nid, ok := s.pins[sid]; ok {
				cands[sid] = []int{nid}
			} else {
				cands[sid] = s.ag.Slots(sid)
			}
		}
		if len(cands[sid]) == 0 {
			return nil, fmt.Errorf("%w: no instance of junction service %d", ErrInfeasible, sid)
		}
		if combos <= maxJunctionCombos {
			combos *= len(cands[sid])
		}
	}
	if combos <= maxJunctionCombos {
		return s.exhaustiveJunctions(order, cands)
	}
	return s.greedyJunctions(order, cands)
}

// exhaustiveJunctions enumerates every junction combination in topological
// order with branch-and-bound on the running bottleneck width. For each
// complete combination the quality is the bottleneck over all chain
// fragments plus the critical-path latency over the junction skeleton.
func (s *solver) exhaustiveJunctions(order []int, cands map[int][]int) (map[int]int, error) {
	// Chains whose head is a given junction (the tail junction comes
	// earlier in topological order, so both ends are fixed when the head
	// is assigned).
	inChains := make(map[int][]int, len(order))
	for i, c := range s.chains {
		inChains[c.To] = append(inChains[c.To], i)
	}

	var (
		assign     = make(map[int]int, len(order))
		best       map[int]int
		bestMetric = qos.Unreachable
	)
	var walk func(i int, width int64)
	walk = func(i int, width int64) {
		if i == len(order) {
			m := s.comboMetric(assign, width)
			if m.Reachable() && (best == nil || m.Better(bestMetric)) {
				bestMetric = m
				best = make(map[int]int, len(assign))
				for k, v := range assign {
					best[k] = v
				}
			}
			return
		}
		sid := order[i]
		for _, nid := range cands[sid] {
			w := width
			feasible := true
			for _, ci := range inChains[sid] {
				tail, ok := assign[s.chains[ci].From]
				if !ok {
					continue
				}
				m := s.chainMetric(ci, tail, nid)
				if !m.Reachable() {
					feasible = false
					break
				}
				if m.Bandwidth < w {
					w = m.Bandwidth
				}
			}
			if !feasible {
				continue
			}
			if best != nil && w < bestMetric.Bandwidth {
				continue
			}
			assign[sid] = nid
			walk(i+1, w)
			delete(assign, sid)
		}
	}
	walk(0, qos.InfBandwidth)
	if best == nil {
		return nil, fmt.Errorf("%w: no junction combination connects the requirement", ErrInfeasible)
	}
	return best, nil
}

// comboMetric evaluates a complete junction assignment: width is the already
// accumulated bottleneck over all chains; the latency is the critical path
// over the junction skeleton with each skeleton edge weighing the maximum
// latency among its parallel chain fragments.
func (s *solver) comboMetric(assign map[int]int, width int64) qos.Metric {
	skel := graph.New()
	lat := make(map[[2]int]int64)
	for i, c := range s.chains {
		m := s.chainMetric(i, assign[c.From], assign[c.To])
		if !m.Reachable() {
			return qos.Unreachable
		}
		skel.AddEdge(c.From, c.To)
		key := [2]int{c.From, c.To}
		if m.Latency > lat[key] {
			lat[key] = m.Latency
		}
	}
	dist, err := skel.LongestPathFrom(s.req.Source(), func(u, v int) int64 {
		return lat[[2]int{u, v}]
	})
	if err != nil {
		return qos.Unreachable
	}
	var worst int64
	for _, sink := range s.req.Sinks() {
		if d, ok := dist[sink]; ok && d > worst {
			worst = d
		}
	}
	return qos.Metric{Bandwidth: width, Latency: worst}
}

// greedyJunctions is the fallback for huge junction skeletons: junctions are
// assigned in topological order, each scored by exactly solving its incoming
// chain fragments.
func (s *solver) greedyJunctions(order []int, cands map[int][]int) (map[int]int, error) {
	inChains := make(map[int][]int, len(order))
	for i, c := range s.chains {
		inChains[c.To] = append(inChains[c.To], i)
	}
	chosen := make(map[int]int, len(order))
	for i, sid := range order {
		if i == 0 {
			chosen[sid] = cands[sid][0]
			continue
		}
		bestNID, bestScore := -1, qos.Unreachable
		for _, nid := range cands[sid] {
			width := qos.InfBandwidth
			var latency int64
			ok := true
			for _, ci := range inChains[sid] {
				tail, have := chosen[s.chains[ci].From]
				if !have {
					continue
				}
				m := s.chainMetric(ci, tail, nid)
				if !m.Reachable() {
					ok = false
					break
				}
				if m.Bandwidth < width {
					width = m.Bandwidth
				}
				if m.Latency > latency {
					latency = m.Latency
				}
			}
			if !ok {
				continue
			}
			score := qos.Metric{Bandwidth: width, Latency: latency}
			if bestNID == -1 || score.Better(bestScore) {
				bestNID, bestScore = nid, score
			}
		}
		if bestNID == -1 {
			return nil, fmt.Errorf("%w: no instance of junction service %d is reachable", ErrInfeasible, sid)
		}
		chosen[sid] = bestNID
	}
	return chosen, nil
}

// solveChainPinned solves one chain fragment with both junction endpoints
// pinned, honouring any extra pins that fall inside the fragment.
func solveChainPinned(ag *abstract.Graph, c Chain, fromNID, toNID int, pins map[int]int) (*baseline.Result, error) {
	p := map[int]int{c.To: toNID}
	for _, sid := range c.Via {
		if nid, ok := pins[sid]; ok {
			p[sid] = nid
		}
	}
	return baseline.SolveChain(ag, c.Services(), fromNID, p)
}

func firstVia(c Chain) int {
	if len(c.Via) == 0 {
		return -1
	}
	return c.Via[0]
}
