package reduce

import (
	"reflect"
	"testing"

	"sflow/internal/abstract"
	"sflow/internal/exact"
	"sflow/internal/overlay"
	"sflow/internal/require"
	"sflow/internal/scenario"
)

// paperDAG is the Fig 5-style requirement used across the tests:
// 1 -> {2,3}; 2 -> 4; 3 -> {4,5}; 4 -> 6; 5 -> 6.
func paperDAG(t *testing.T) *require.Requirement {
	t.Helper()
	r, err := require.FromEdges([][2]int{{1, 2}, {1, 3}, {2, 4}, {3, 4}, {3, 5}, {4, 6}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestPathReduction(t *testing.T) {
	req := paperDAG(t)
	chains := PathReduction(req)
	want := []Chain{
		{From: 1, To: 3},
		{From: 1, To: 4, Via: []int{2}},
		{From: 3, To: 4},
		{From: 3, To: 6, Via: []int{5}},
		{From: 4, To: 6},
	}
	if !reflect.DeepEqual(chains, want) {
		t.Fatalf("chains = %+v, want %+v", chains, want)
	}
	// Coverage invariant: every requirement edge in exactly one chain.
	covered := make(map[[2]int]int)
	for _, c := range chains {
		svcs := c.Services()
		for i := 0; i+1 < len(svcs); i++ {
			covered[[2]int{svcs[i], svcs[i+1]}]++
		}
	}
	for _, e := range req.Edges() {
		if covered[e] != 1 {
			t.Fatalf("edge %v covered %d times", e, covered[e])
		}
	}
	if total := len(covered); total != req.NumDependencies() {
		t.Fatalf("covered %d edges, requirement has %d", total, req.NumDependencies())
	}
}

func TestPathReductionOnPath(t *testing.T) {
	req, err := require.NewPath(1, 2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	chains := PathReduction(req)
	want := []Chain{{From: 1, To: 4, Via: []int{2, 3}}}
	if !reflect.DeepEqual(chains, want) {
		t.Fatalf("chains = %+v, want %+v", chains, want)
	}
}

func TestSplitMergeBlocks(t *testing.T) {
	// Diamond: 1 -> 2 -> 4, 1 -> 3 -> 4.
	req, err := require.FromEdges([][2]int{{1, 2}, {2, 4}, {1, 3}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	blocks := SplitMergeBlocks(req)
	if len(blocks) != 1 {
		t.Fatalf("blocks = %+v", blocks)
	}
	b := blocks[0]
	if b.Split != 1 || b.Merge != 4 || len(b.Branches) != 2 {
		t.Fatalf("block = %+v", b)
	}
	// A pure path has no blocks.
	p, _ := require.NewPath(1, 2, 3)
	if got := SplitMergeBlocks(p); len(got) != 0 {
		t.Fatalf("path blocks = %+v", got)
	}
	// paperDAG has no 2-parallel-chain pair (1->4 via 2 and 3->4 direct
	// have different tails), so no blocks either.
	if got := SplitMergeBlocks(paperDAG(t)); len(got) != 0 {
		t.Fatalf("paperDAG blocks = %+v", got)
	}
}

// diamondOverlay builds an overlay for requirement 1 -> {2,3} -> 4 where the
// merge instance choice matters: instance 40 is good for branch 2 but bad
// for branch 3, instance 41 is balanced and globally best.
func diamondOverlay(t *testing.T) (*abstract.Graph, *require.Requirement) {
	t.Helper()
	o := overlay.New()
	for _, in := range [][2]int{{10, 1}, {20, 2}, {30, 3}, {40, 4}, {41, 4}} {
		if err := o.AddInstance(in[0], in[1], -1); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range [][4]int64{
		{10, 20, 100, 1}, {10, 30, 100, 1},
		{20, 40, 100, 1}, {30, 40, 10, 1}, // 40: great for 2, terrible for 3
		{20, 41, 80, 1}, {30, 41, 80, 1}, // 41: balanced
	} {
		if err := o.AddLink(int(l[0]), int(l[1]), l[2], l[3]); err != nil {
			t.Fatal(err)
		}
	}
	req, err := require.FromEdges([][2]int{{1, 2}, {1, 3}, {2, 4}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	ag, err := abstract.Build(o, req)
	if err != nil {
		t.Fatal(err)
	}
	return ag, req
}

func TestSolveConsidersAllBranchesAtMerge(t *testing.T) {
	ag, req := diamondOverlay(t)
	res, err := Solve(ag, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if nid := res.Junctions[4]; nid != 41 {
		t.Fatalf("merge placed on %d, want the balanced instance 41", nid)
	}
	if res.Metric.Bandwidth != 80 {
		t.Fatalf("metric = %+v, want width 80", res.Metric)
	}
	if err := res.Flow.Validate(req, ag.Overlay()); err != nil {
		t.Fatalf("flow invalid: %v", err)
	}
	// On this instance the heuristic finds the global optimum.
	opt, err := exact.Solve(ag, 10, exact.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metric != opt.Metric {
		t.Fatalf("reduce %+v != optimal %+v", res.Metric, opt.Metric)
	}
}

func TestSolveRespectsPins(t *testing.T) {
	ag, req := diamondOverlay(t)
	res, err := Solve(ag, 10, map[int]int{4: 40})
	if err != nil {
		t.Fatal(err)
	}
	if nid := res.Junctions[4]; nid != 40 {
		t.Fatalf("pin ignored: merge on %d", nid)
	}
	if res.Metric.Bandwidth != 10 {
		t.Fatalf("pinned metric = %+v", res.Metric)
	}
	if err := res.Flow.Validate(req, ag.Overlay()); err != nil {
		t.Fatal(err)
	}
}

func TestSolveRejectsWrongSource(t *testing.T) {
	ag, _ := diamondOverlay(t)
	if _, err := Solve(ag, 20, nil); err == nil {
		t.Fatal("wrong-service source accepted")
	}
}

func TestSolveOnPathEqualsBaseline(t *testing.T) {
	s, err := scenario.Generate(scenario.Config{
		Seed: 11, NetworkSize: 15, Services: 5,
		InstancesPerService: 3, Kind: scenario.KindPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	ag, err := abstract.Build(s.Overlay, s.Req)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(ag, s.SourceNID, nil)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := exact.Solve(ag, s.SourceNID, exact.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// On a single path the reduction degenerates to the baseline, which is
	// exact.
	if res.Metric != opt.Metric {
		t.Fatalf("path reduce %+v != optimal %+v", res.Metric, opt.Metric)
	}
}

func TestSolveNeverBeatsExactAndAlwaysValidates(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		for _, kind := range []scenario.Kind{scenario.KindGeneral, scenario.KindDisjoint, scenario.KindSplitMerge} {
			services := 6
			s, err := scenario.Generate(scenario.Config{
				Seed: seed, NetworkSize: 20, Services: services,
				InstancesPerService: 2, Kind: kind,
			})
			if err != nil {
				t.Fatal(err)
			}
			ag, err := abstract.Build(s.Overlay, s.Req)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Solve(ag, s.SourceNID, nil)
			if err != nil {
				t.Fatalf("seed %d %v: %v", seed, kind, err)
			}
			if err := res.Flow.Validate(s.Req, s.Overlay); err != nil {
				t.Fatalf("seed %d %v: invalid flow: %v", seed, kind, err)
			}
			if got := res.Flow.Quality(s.Req); got != res.Metric {
				t.Fatalf("seed %d %v: quality %+v != metric %+v", seed, kind, got, res.Metric)
			}
			opt, err := exact.Solve(ag, s.SourceNID, exact.Options{})
			if err != nil {
				t.Fatalf("seed %d %v: exact: %v", seed, kind, err)
			}
			if res.Metric.Better(opt.Metric) {
				t.Fatalf("seed %d %v: heuristic %+v beats optimal %+v",
					seed, kind, res.Metric, opt.Metric)
			}
		}
	}
}

func TestChainServices(t *testing.T) {
	c := Chain{From: 1, To: 4, Via: []int{2, 3}}
	if want := []int{1, 2, 3, 4}; !reflect.DeepEqual(c.Services(), want) {
		t.Fatalf("Services = %v", c.Services())
	}
}

func TestSolveGreedyFallbackOnHugeSkeletons(t *testing.T) {
	// A requirement with many junctions and many instances per service
	// exceeds the exhaustive-combination budget; the greedy fallback must
	// still produce a valid flow graph.
	s, err := scenario.Generate(scenario.Config{
		Seed: 77, NetworkSize: 30, Services: 16,
		InstancesPerService: 5, Kind: scenario.KindGeneral, EdgeProb: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	junctions := s.Req.Junctions()
	combos := 1
	for _, j := range junctions {
		if j == s.Req.Source() {
			continue
		}
		combos *= len(s.Overlay.InstancesOf(j))
		if combos > maxJunctionCombos {
			break
		}
	}
	if combos <= maxJunctionCombos {
		t.Fatalf("scenario too small to trigger the fallback: %d combos", combos)
	}
	ag, err := abstract.Build(s.Overlay, s.Req)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(ag, s.SourceNID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Flow.Validate(s.Req, s.Overlay); err != nil {
		t.Fatalf("greedy-fallback flow invalid: %v", err)
	}
}
