// Package stats provides the summary statistics used by the evaluation
// harness: mean, standard deviation, extremes and percentiles over float64
// samples.
package stats

import (
	"math"
	"sort"
)

// Summary describes a sample set.
type Summary struct {
	N           int
	Mean        float64
	Std         float64 // sample standard deviation (n-1)
	Min, Max    float64
	Median, P95 float64
}

// Summarize computes a Summary. An empty input yields the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs)}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	s.Median = Percentile(sorted, 50)
	s.P95 = Percentile(sorted, 95)

	var sum float64
	for _, x := range xs {
		sum += x
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}

// Percentile returns the p-th percentile (0..100) of an already sorted
// sample using linear interpolation. It returns 0 for an empty sample.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean (0 for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
