package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarizeKnownSample(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || !almost(s.Mean, 5) {
		t.Fatalf("N/Mean wrong: %+v", s)
	}
	// Sample std of this classic set: sqrt(32/7).
	if !almost(s.Std, math.Sqrt(32.0/7.0)) {
		t.Fatalf("Std = %v", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("extremes wrong: %+v", s)
	}
	if !almost(s.Median, 4.5) {
		t.Fatalf("Median = %v", s.Median)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	s := Summarize([]float64{42})
	if s.N != 1 || s.Mean != 42 || s.Std != 0 || s.Median != 42 || s.P95 != 42 {
		t.Fatalf("singleton summary = %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {75, 4}, {-5, 1}, {110, 5},
	}
	for _, tt := range tests {
		if got := Percentile(sorted, tt.p); !almost(got, tt.want) {
			t.Errorf("P%v = %v, want %v", tt.p, got, tt.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile not 0")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean not 0")
	}
	if !almost(Mean([]float64{1, 2, 3}), 2) {
		t.Fatal("mean wrong")
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("input mutated: %v", in)
	}
}

func TestQuickSummaryInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(n uint8) bool {
		k := int(n%50) + 1
		xs := make([]float64, k)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		s := Summarize(xs)
		return s.Min <= s.Median && s.Median <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max &&
			s.Median <= s.P95 && s.P95 <= s.Max && s.Std >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
