package linkstate

import (
	"reflect"
	"testing"

	"sflow/internal/overlay"
	"sflow/internal/scenario"
)

func TestExchangeMatchesOracleLocalView(t *testing.T) {
	// The reconstructed views must equal the oracle overlay.LocalView for
	// every node, every radius, on random scenarios.
	for seed := int64(0); seed < 6; seed++ {
		s, err := scenario.Generate(scenario.Config{
			Seed: seed, NetworkSize: 15, Services: 5,
			InstancesPerService: 3, Kind: scenario.KindGeneral,
		})
		if err != nil {
			t.Fatal(err)
		}
		for hops := 1; hops <= 3; hops++ {
			dbs, err := Exchange(s.Overlay, hops)
			if err != nil {
				t.Fatal(err)
			}
			for _, nid := range s.Overlay.Nodes() {
				oracle := s.Overlay.LocalView(nid, hops)
				view, err := dbs[nid].View()
				if err != nil {
					t.Fatalf("seed %d hops %d node %d: %v", seed, hops, nid, err)
				}
				if !reflect.DeepEqual(view.Nodes(), oracle.Nodes()) {
					t.Fatalf("seed %d hops %d node %d: nodes %v != oracle %v",
						seed, hops, nid, view.Nodes(), oracle.Nodes())
				}
				if !reflect.DeepEqual(view.Links(), oracle.Links()) {
					t.Fatalf("seed %d hops %d node %d: links differ from oracle",
						seed, hops, nid)
				}
			}
		}
	}
}

func TestExchangeSmallChain(t *testing.T) {
	// 1 -> 2 -> 3: with one hop, node 1 knows {1,2}, node 2 knows {2,3}.
	o := overlay.New()
	for _, in := range [][2]int{{1, 1}, {2, 2}, {3, 3}} {
		if err := o.AddInstance(in[0], in[1], -1); err != nil {
			t.Fatal(err)
		}
	}
	if err := o.AddLink(1, 2, 10, 5); err != nil {
		t.Fatal(err)
	}
	if err := o.AddLink(2, 3, 10, 5); err != nil {
		t.Fatal(err)
	}
	dbs, err := Exchange(o, 1)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{1, 2}; !reflect.DeepEqual(dbs[1].Known(), want) {
		t.Fatalf("node 1 knows %v", dbs[1].Known())
	}
	if want := []int{2, 3}; !reflect.DeepEqual(dbs[2].Known(), want) {
		t.Fatalf("node 2 knows %v", dbs[2].Known())
	}
	if want := []int{3}; !reflect.DeepEqual(dbs[3].Known(), want) {
		t.Fatalf("node 3 knows %v", dbs[3].Known())
	}
	// Node 1's one-hop view contains the 1->2 link but not 2->3 (endpoint
	// 3 unknown).
	view, err := dbs[1].View()
	if err != nil {
		t.Fatal(err)
	}
	if !view.HasLink(1, 2) || view.HasLink(2, 3) {
		t.Fatalf("node 1 view links wrong: %v", view.Links())
	}
	if dbs[1].Node() != 1 {
		t.Fatal("Node accessor wrong")
	}
}

func TestExchangeValidation(t *testing.T) {
	o := overlay.New()
	if err := o.AddInstance(1, 1, -1); err != nil {
		t.Fatal(err)
	}
	if _, err := Exchange(o, 0); err == nil {
		t.Fatal("zero hop radius accepted")
	}
	// A single isolated node still learns about itself.
	dbs, err := Exchange(o, 2)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{1}; !reflect.DeepEqual(dbs[1].Known(), want) {
		t.Fatalf("isolated node knows %v", dbs[1].Known())
	}
}

func TestAdvertisementContents(t *testing.T) {
	o := overlay.New()
	for _, in := range [][2]int{{1, 7}, {2, 8}, {3, 9}} {
		if err := o.AddInstance(in[0], in[1], 42); err != nil {
			t.Fatal(err)
		}
	}
	if err := o.AddLink(1, 3, 10, 5); err != nil {
		t.Fatal(err)
	}
	if err := o.AddLink(1, 2, 20, 6); err != nil {
		t.Fatal(err)
	}
	ad := advertise(o, 1)
	if ad.Origin.SID != 7 || ad.Origin.Host != 42 {
		t.Fatalf("origin = %+v", ad.Origin)
	}
	// Links sorted by destination.
	if len(ad.Links) != 2 || ad.Links[0].To != 2 || ad.Links[1].To != 3 {
		t.Fatalf("links = %+v", ad.Links)
	}
}

func TestExchangeLargeRadiusCoversReachableSet(t *testing.T) {
	s, err := scenario.Generate(scenario.Config{
		Seed: 9, NetworkSize: 12, Services: 4, InstancesPerService: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A radius beyond any path length yields the full forward-reachable set.
	dbs, err := Exchange(s.Overlay, s.Overlay.NumInstances()+5)
	if err != nil {
		t.Fatal(err)
	}
	for _, nid := range s.Overlay.Nodes() {
		oracle := s.Overlay.LocalView(nid, s.Overlay.NumInstances()+5)
		view, err := dbs[nid].View()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(view.Nodes(), oracle.Nodes()) {
			t.Fatalf("node %d: full-radius view differs", nid)
		}
	}
}
