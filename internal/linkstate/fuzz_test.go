package linkstate

import (
	"reflect"
	"testing"

	"sflow/internal/overlay"
)

// fuzzBase builds the small ground-truth overlay the fuzz mutations churn:
// six instances in a ring with two chords.
func fuzzBase(t testing.TB) *overlay.Overlay {
	ov := overlay.New()
	for nid := 1; nid <= 6; nid++ {
		if err := ov.AddInstance(nid, nid%3+1, -1); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range [][2]int{{1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 1}, {1, 4}, {2, 5}} {
		if err := ov.AddLink(l[0], l[1], 100, 10); err != nil {
			t.Fatal(err)
		}
	}
	return ov
}

// applyFuzzOp decodes one mutation from three fuzz bytes and applies it to
// the ground truth. Inapplicable ops (duplicate link, missing endpoint, ...)
// are simply skipped — the fuzzer explores the op space, the overlay's own
// validation keeps the state legal.
func applyFuzzOp(ov *overlay.Overlay, op, x, y byte, next *int) {
	nodes := ov.Nodes()
	if len(nodes) == 0 {
		return
	}
	pick := func(b byte) int { return nodes[int(b)%len(nodes)] }
	switch op % 6 {
	case 0: // add a link
		_ = ov.AddLink(pick(x), pick(y), int64(x%32)+1, int64(y%16))
	case 1: // remove a link
		_ = ov.RemoveLink(pick(x), pick(y))
	case 2: // grow bandwidth
		_ = ov.GrowLinkBandwidth(pick(x), pick(y), int64(y%64))
	case 3: // reduce bandwidth, possibly saturating the link away
		_ = ov.ReduceLinkBandwidth(pick(x), pick(y), int64(y%48)+1)
	case 4: // a fresh instance joins with one link each way
		nid := *next
		*next++
		if err := ov.AddInstance(nid, int(x%4)+1, -1); err != nil {
			return
		}
		_ = ov.AddLink(nid, pick(x), int64(y%32)+1, int64(x%16))
		_ = ov.AddLink(pick(y), nid, int64(x%32)+1, int64(y%16))
	case 5: // an instance leaves (keep a couple so views stay interesting)
		if len(nodes) > 2 {
			_ = ov.RemoveInstance(pick(x))
		}
	}
}

// assertViewsMatchOracle re-runs the advertisement exchange on the current
// ground truth and checks every node reconstructs exactly the oracle
// overlay.LocalView at the same radius.
func assertViewsMatchOracle(t *testing.T, ov *overlay.Overlay, hops int) {
	t.Helper()
	dbs, err := Exchange(ov, hops)
	if err != nil {
		t.Fatalf("hops %d: %v", hops, err)
	}
	for _, nid := range ov.Nodes() {
		oracle := ov.LocalView(nid, hops)
		view, err := dbs[nid].View()
		if err != nil {
			t.Fatalf("hops %d node %d: reconstruct: %v", hops, nid, err)
		}
		if !reflect.DeepEqual(view.Nodes(), oracle.Nodes()) {
			t.Fatalf("hops %d node %d: nodes %v != oracle %v",
				hops, nid, view.Nodes(), oracle.Nodes())
		}
		if !reflect.DeepEqual(view.Links(), oracle.Links()) {
			t.Fatalf("hops %d node %d: links %v != oracle %v",
				hops, nid, view.Links(), oracle.Links())
		}
	}
}

// FuzzLinkstateIncremental drives random mutation sequences against a small
// overlay and, after every mutation, floods fresh advertisements (the
// protocol's answer to topology change is re-advertisement) and asserts each
// node's reconstructed view equals the overlay.LocalView oracle. Any byte
// string is a valid trace: three bytes per mutation, first byte selects the
// op, the radius cycles through 1..3 so scoping is exercised at every depth.
func FuzzLinkstateIncremental(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2})
	f.Add([]byte{1, 0, 3, 3, 2, 5})                   // remove then reduce
	f.Add([]byte{4, 9, 1, 5, 0, 0, 4, 2, 7})          // join, leave, join
	f.Add([]byte{3, 0, 47, 3, 0, 47, 0, 0, 1})        // saturate twice, re-add
	f.Add([]byte{5, 1, 1, 5, 2, 2, 5, 3, 3, 5, 4, 4}) // drain the overlay
	f.Fuzz(func(t *testing.T, trace []byte) {
		if len(trace) > 60 { // 20 mutations x full re-exchange is plenty
			trace = trace[:60]
		}
		ov := fuzzBase(t)
		next := 100
		assertViewsMatchOracle(t, ov, 2)
		for i := 0; i+2 < len(trace); i += 3 {
			applyFuzzOp(ov, trace[i], trace[i+1], trace[i+2], &next)
			assertViewsMatchOracle(t, ov, (i/3)%3+1)
		}
	})
}
