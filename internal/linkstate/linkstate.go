// Package linkstate implements the scoped link-state dissemination that
// underpins sFlow's local-knowledge assumption: the paper adopts the
// link-state approach of Wang and Crowcroft and assumes "all service nodes
// are aware of the portion of the overall overlay graph within a two-hop
// vicinity". This package makes that assumption operational instead of
// axiomatic: every node starts knowing only its own identity and out-links,
// floods that advertisement with a hop-scoped TTL on the discrete-event
// simulator, and reconstructs its local view from the advertisements it
// receives.
//
// The reconstruction is proven (by tests) equivalent to the oracle
// overlay.LocalView used by the protocol engine.
package linkstate

import (
	"fmt"
	"sort"

	"sflow/internal/des"
	"sflow/internal/overlay"
)

// Advertisement is one node's link-state announcement.
type Advertisement struct {
	// Origin identifies the advertising instance.
	Origin overlay.Instance
	// Links are the origin's outgoing service links.
	Links []overlay.Link
}

// advertise builds a node's own announcement from the ground-truth overlay.
func advertise(ov *overlay.Overlay, nid int) Advertisement {
	inst, _ := ov.Instance(nid)
	ad := Advertisement{Origin: inst}
	for _, a := range ov.Out(nid) {
		ad.Links = append(ad.Links, overlay.Link{
			From: nid, To: a.To, Bandwidth: a.Bandwidth, Latency: a.Latency,
		})
	}
	sort.Slice(ad.Links, func(i, j int) bool { return ad.Links[i].To < ad.Links[j].To })
	return ad
}

// Database is the per-node collection of received advertisements.
type Database struct {
	node int
	ads  map[int]Advertisement
}

// Node returns the owning instance.
func (db *Database) Node() int { return db.node }

// Known returns the NIDs the database has advertisements for, ascending.
func (db *Database) Known() []int {
	out := make([]int, 0, len(db.ads))
	for nid := range db.ads {
		out = append(out, nid)
	}
	sort.Ints(out)
	return out
}

// View reconstructs the node's local overlay from its database: all
// advertised instances, plus the links among them. Links pointing at
// instances outside the database are dropped — the node cannot reason about
// endpoints it has not heard of.
func (db *Database) View() (*overlay.Overlay, error) {
	view := overlay.New()
	for _, nid := range db.Known() {
		inst := db.ads[nid].Origin
		if err := view.AddInstance(inst.NID, inst.SID, inst.Host); err != nil {
			return nil, err
		}
	}
	for _, nid := range db.Known() {
		for _, l := range db.ads[nid].Links {
			if _, known := db.ads[l.To]; !known {
				continue
			}
			if err := view.AddLink(l.From, l.To, l.Bandwidth, l.Latency); err != nil {
				return nil, err
			}
		}
	}
	return view, nil
}

// flooded is the wire form of an advertisement in flight.
type flooded struct {
	ad  Advertisement
	ttl int
}

// Exchange floods every node's advertisement over the overlay's links on a
// discrete-event simulation and returns each node's database. An
// advertisement travels *against* link direction with the link's latency —
// a node must learn about its downstream neighbourhood, so announcements
// propagate from instances back to the nodes that can reach them — and dies
// when its TTL (the hop radius) is exhausted. Duplicate arrivals are
// absorbed; higher-TTL copies are re-flooded so shortest-hop scoping is
// exact. The returned map is keyed by NID.
func Exchange(ov *overlay.Overlay, hops int) (map[int]*Database, error) {
	if hops < 1 {
		return nil, fmt.Errorf("linkstate: hop radius %d < 1", hops)
	}
	sim := des.New()
	dbs := make(map[int]*Database, ov.NumInstances())
	bestTTL := make(map[int]map[int]int) // node -> origin -> best ttl seen

	var deliver func(nid int, msg flooded)
	forward := func(nid int, msg flooded) {
		if msg.ttl == 0 {
			return
		}
		// Flood backwards: to every node with a link INTO nid.
		for _, in := range ov.In(nid) {
			up := in.To
			lat := in.Latency
			next := flooded{ad: msg.ad, ttl: msg.ttl - 1}
			if err := sim.Schedule(lat, func() { deliver(up, next) }); err != nil {
				panic(err) // non-negative latency is validated by overlay
			}
		}
	}
	deliver = func(nid int, msg flooded) {
		origin := msg.ad.Origin.NID
		if prev, seen := bestTTL[nid][origin]; seen && prev >= msg.ttl {
			return
		}
		bestTTL[nid][origin] = msg.ttl
		dbs[nid].ads[origin] = msg.ad
		forward(nid, msg)
	}

	for _, nid := range ov.Nodes() {
		dbs[nid] = &Database{node: nid, ads: make(map[int]Advertisement)}
		bestTTL[nid] = make(map[int]int)
	}
	// Every node seeds its own advertisement with the full TTL.
	for _, nid := range ov.Nodes() {
		msg := flooded{ad: advertise(ov, nid), ttl: hops}
		nid := nid
		if err := sim.Schedule(0, func() { deliver(nid, msg) }); err != nil {
			return nil, err
		}
	}
	sim.Run()
	return dbs, nil
}
