package abstract

import (
	"reflect"
	"testing"

	"sflow/internal/metrics"
	"sflow/internal/overlay"
	"sflow/internal/qos"
	"sflow/internal/require"
)

// fixture: services 1 -> 2 -> 3; instance 10 (svc 1), 20/21 (svc 2),
// 30 (svc 3); plus a relay instance 99 of service 9 bridging 21 -> 30.
func fixture(t *testing.T) (*overlay.Overlay, *require.Requirement) {
	t.Helper()
	o := overlay.New()
	for _, in := range [][3]int{{10, 1, -1}, {20, 2, -1}, {21, 2, -1}, {30, 3, -1}, {99, 9, -1}} {
		if err := o.AddInstance(in[0], in[1], in[2]); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range [][4]int64{
		{10, 20, 50, 5},
		{10, 21, 100, 2},
		{20, 30, 50, 5},
		{21, 99, 100, 1}, // 21 reaches 30 only via relay 99
		{99, 30, 100, 1},
	} {
		if err := o.AddLink(int(l[0]), int(l[1]), l[2], l[3]); err != nil {
			t.Fatal(err)
		}
	}
	req, err := require.NewPath(1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	return o, req
}

func TestBuildRejectsMissingService(t *testing.T) {
	o, _ := fixture(t)
	req, err := require.NewPath(1, 2, 77)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(o, req); err == nil {
		t.Fatal("requirement with uninstantiated service accepted")
	}
}

func TestSlotsAndAccessors(t *testing.T) {
	o, req := fixture(t)
	g, err := Build(o, req)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{20, 21}; !reflect.DeepEqual(g.Slots(2), want) {
		t.Fatalf("Slots(2) = %v", g.Slots(2))
	}
	if g.Requirement() != req || g.Overlay() != o {
		t.Fatal("accessors do not return originals")
	}
	if g.AllPairs() == nil {
		t.Fatal("AllPairs nil")
	}
}

func TestEdgeMetricAndBridging(t *testing.T) {
	o, req := fixture(t)
	g, err := Build(o, req)
	if err != nil {
		t.Fatal(err)
	}
	// Direct link 10 -> 20.
	if m := g.EdgeMetric(10, 20); m != (qos.Metric{Bandwidth: 50, Latency: 5}) {
		t.Fatalf("EdgeMetric(10,20) = %+v", m)
	}
	// 21 -> 30 must route via the bridging instance 99.
	if m := g.EdgeMetric(21, 30); m != (qos.Metric{Bandwidth: 100, Latency: 2}) {
		t.Fatalf("EdgeMetric(21,30) = %+v", m)
	}
	if want := []int{21, 99, 30}; !reflect.DeepEqual(g.EdgePath(21, 30), want) {
		t.Fatalf("EdgePath(21,30) = %v", g.EdgePath(21, 30))
	}
	// Self edge.
	if m := g.EdgeMetric(10, 10); m != qos.Empty {
		t.Fatalf("self metric = %+v", m)
	}
	if want := []int{10}; !reflect.DeepEqual(g.EdgePath(10, 10), want) {
		t.Fatalf("self path = %v", g.EdgePath(10, 10))
	}
	// Unreachable pair (no reverse links).
	if g.EdgeMetric(30, 10).Reachable() {
		t.Fatal("reverse direction should be unreachable")
	}
	if g.EdgePath(30, 10) != nil {
		t.Fatal("reverse path should be nil")
	}
}

func TestAssignmentMetric(t *testing.T) {
	o, req := fixture(t)
	g, err := Build(o, req)
	if err != nil {
		t.Fatal(err)
	}
	// Via 20: min(50,50)=50 bw, 10 latency.
	if m := g.AssignmentMetric(map[int]int{1: 10, 2: 20, 3: 30}); m != (qos.Metric{Bandwidth: 50, Latency: 10}) {
		t.Fatalf("via 20: %+v", m)
	}
	// Via 21: min(100,100)=100 bw, 2+2=4 latency.
	if m := g.AssignmentMetric(map[int]int{1: 10, 2: 21, 3: 30}); m != (qos.Metric{Bandwidth: 100, Latency: 4}) {
		t.Fatalf("via 21: %+v", m)
	}
	// Incomplete assignment.
	if g.AssignmentMetric(map[int]int{1: 10, 2: 21}).Reachable() {
		t.Fatal("incomplete assignment should be unreachable")
	}
	// Assignment with unreachable edge.
	if g.AssignmentMetric(map[int]int{1: 30, 2: 20, 3: 10}).Reachable() {
		t.Fatal("unroutable assignment should be unreachable")
	}
}

func TestRealize(t *testing.T) {
	o, req := fixture(t)
	g, err := Build(o, req)
	if err != nil {
		t.Fatal(err)
	}
	assign := map[int]int{1: 10, 2: 21, 3: 30}
	fg, err := g.Realize(assign)
	if err != nil {
		t.Fatal(err)
	}
	if err := fg.Validate(req, o); err != nil {
		t.Fatalf("realized flow invalid: %v", err)
	}
	if got := fg.Quality(req); got != g.AssignmentMetric(assign) {
		t.Fatalf("quality %+v != assignment metric %+v", got, g.AssignmentMetric(assign))
	}
	// The 2->3 stream must be expanded through the bridging instance.
	e, ok := fg.Edge(2, 3)
	if !ok || len(e.Path) != 3 || e.Path[1] != 99 {
		t.Fatalf("edge 2->3 = %+v", e)
	}
	if _, err := g.Realize(map[int]int{1: 10, 2: 21}); err == nil {
		t.Fatal("incomplete assignment realized")
	}
	if _, err := g.Realize(map[int]int{1: 10, 2: 99, 3: 30}); err == nil {
		t.Fatal("wrong-service assignment realized")
	}
	if _, err := g.Realize(map[int]int{1: 30, 2: 20, 3: 10}); err == nil {
		t.Fatal("unroutable assignment realized")
	}
}

func TestAssignmentMetricCriticalPath(t *testing.T) {
	// Diamond requirement 1 -> {2,3} -> 4 with asymmetric branch latency:
	// quality latency must be the max branch, not the sum of all edges.
	o := overlay.New()
	for _, in := range [][2]int{{1, 1}, {2, 2}, {3, 3}, {4, 4}} {
		if err := o.AddInstance(in[0], in[1], -1); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range [][4]int64{{1, 2, 10, 1}, {1, 3, 10, 5}, {2, 4, 10, 1}, {3, 4, 10, 5}} {
		if err := o.AddLink(int(l[0]), int(l[1]), l[2], l[3]); err != nil {
			t.Fatal(err)
		}
	}
	req, err := require.FromEdges([][2]int{{1, 2}, {1, 3}, {2, 4}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(o, req)
	if err != nil {
		t.Fatal(err)
	}
	m := g.AssignmentMetric(map[int]int{1: 1, 2: 2, 3: 3, 4: 4})
	if m != (qos.Metric{Bandwidth: 10, Latency: 10}) {
		t.Fatalf("diamond metric = %+v, want {10 10}", m)
	}
}

// Every Build variant — worker-pooled, instrumented, and the FromAllPairs
// wrapper over an externally computed table — must label edges identically
// to the plain sequential Build.
func TestBuildVariantsEquivalent(t *testing.T) {
	o, req := fixture(t)
	base, err := Build(o, req)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.New()
	variants := map[string]*Graph{}
	if g, err := BuildWorkers(o, req, 1); err != nil {
		t.Fatal(err)
	} else {
		variants["workers=1"] = g
	}
	if g, err := BuildWorkers(o, req, 4); err != nil {
		t.Fatal(err)
	} else {
		variants["workers=4"] = g
	}
	if g, err := BuildMetrics(o, req, reg); err != nil {
		t.Fatal(err)
	} else {
		variants["metrics"] = g
	}
	if g, err := BuildWorkersMetrics(o, req, 2, reg); err != nil {
		t.Fatal(err)
	} else {
		variants["workers+metrics"] = g
	}
	if g, err := FromAllPairs(o, req, base.AllPairs()); err != nil {
		t.Fatal(err)
	} else {
		variants["from-all-pairs"] = g
	}
	for name, g := range variants {
		for _, e := range req.Edges() {
			for _, u := range g.Slots(e[0]) {
				for _, v := range g.Slots(e[1]) {
					if got, want := g.EdgeMetric(u, v), base.EdgeMetric(u, v); got != want {
						t.Fatalf("%s: edge %d->%d = %+v, want %+v", name, u, v, got, want)
					}
				}
			}
		}
	}
	var builds int64 = -1
	for _, c := range reg.Snapshot().Counters {
		if c.Key == "abstract_builds_total" {
			builds = c.Value
		}
	}
	if builds != 2 {
		t.Fatalf("instrumented builds counted %d, want 2", builds)
	}
	// FromAllPairs still validates required services against the overlay.
	badReq, err := require.NewPath(1, 2, 77)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromAllPairs(o, badReq, base.AllPairs()); err == nil {
		t.Fatal("FromAllPairs accepted a requirement with an uninstantiated service")
	}
}
