package abstract

import (
	"reflect"
	"testing"

	"sflow/internal/metrics"
	"sflow/internal/qos"
	"sflow/internal/require"
)

func TestSlotSources(t *testing.T) {
	o, req := fixture(t)
	// Edge tails are services 1 and 2; sink service 3 and relay 9 need no
	// rows.
	if got, want := SlotSources(o, req), []int{10, 20, 21}; !reflect.DeepEqual(got, want) {
		t.Fatalf("SlotSources = %v, want %v", got, want)
	}
	// A diamond requirement shares tails across branches without duplicates.
	diamond, err := require.FromEdges([][2]int{{1, 2}, {1, 3}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := SlotSources(o, diamond), []int{10, 20, 21}; !reflect.DeepEqual(got, want) {
		t.Fatalf("diamond SlotSources = %v, want %v", got, want)
	}
}

func TestBuildLazyMatchesBuild(t *testing.T) {
	o, req := fixture(t)
	reg := metrics.New()
	lg, err := BuildLazy(o, req, 2, reg)
	if err != nil {
		t.Fatal(err)
	}
	eg, err := Build(o, req)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range req.Edges() {
		for _, from := range o.InstancesOf(e[0]) {
			for _, to := range o.InstancesOf(e[1]) {
				if lm, em := lg.EdgeMetric(from, to), eg.EdgeMetric(from, to); lm != em {
					t.Fatalf("edge %d->%d: lazy %v, eager %v", from, to, lm, em)
				}
				if lp, ep := lg.EdgePath(from, to), eg.EdgePath(from, to); !reflect.DeepEqual(lp, ep) {
					t.Fatalf("edge %d->%d: lazy path %v, eager path %v", from, to, lp, ep)
				}
			}
		}
	}
	// BuildLazy prefetches exactly the slot rows, no more.
	lt, ok := lg.AllPairs().(*qos.LazyAllPairs)
	if !ok {
		t.Fatalf("BuildLazy table is %T", lg.AllPairs())
	}
	if got, want := lt.Stats().Computed, int64(len(SlotSources(o, req))); got != want {
		t.Fatalf("prefetched %d rows, want %d", got, want)
	}
	var builds int64
	for _, c := range reg.Snapshot().Counters {
		if c.Key == "abstract_lazy_builds_total" {
			builds = c.Value
		}
	}
	if builds != 1 {
		t.Fatalf("abstract_lazy_builds_total = %d", builds)
	}
}

func TestBuildLazyRejectsMissingService(t *testing.T) {
	o, _ := fixture(t)
	req, err := require.NewPath(1, 2, 77)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildLazy(o, req, 0, nil); err == nil {
		t.Fatal("requirement with uninstantiated service accepted")
	}
}
