// Package abstract builds the service abstract graph of Sec 2.2 / Fig 6:
// each required service of a requirement is populated with its overlay
// instances, and instances of adjacent required services are fully connected
// with edges labelled by the shortest-widest path metric between them in the
// overlay graph.
//
// The abstract graph is the bridge between a service requirement and the
// overlay: federation algorithms pick one instance per service slot, and the
// abstract edges tell them what that choice costs. The all-pairs table the
// edges are read from is computed by qos's dense CSR engine (the map-based
// oracle is retained for equivalence testing; see DESIGN.md, "Hot-path
// engine").
package abstract

import (
	"fmt"
	"sort"
	"time"

	"sflow/internal/flow"
	"sflow/internal/metrics"
	"sflow/internal/overlay"
	"sflow/internal/qos"
	"sflow/internal/require"
)

// Graph is a service abstract graph. It references (does not copy) the
// overlay and requirement it was built from.
type Graph struct {
	req *require.Requirement
	ov  *overlay.Overlay
	ap  qos.Table
}

// Build constructs the abstract graph for a requirement over an overlay. It
// fails if some required service has no instance in the overlay. The
// all-pairs shortest-widest computation behind the edge labels fans out over
// runtime.GOMAXPROCS(0) workers on large overlays; the result is identical
// to the sequential computation at any worker count.
func Build(ov *overlay.Overlay, req *require.Requirement) (*Graph, error) {
	return build(ov, req, nil, qos.ComputeAllPairs)
}

// BuildWorkers is Build with an explicit worker count for the all-pairs
// computation: workers <= 0 means runtime.GOMAXPROCS(0), 1 forces the
// sequential computation.
func BuildWorkers(ov *overlay.Overlay, req *require.Requirement, workers int) (*Graph, error) {
	return BuildWorkersMetrics(ov, req, workers, nil)
}

// BuildMetrics is Build with instrumentation into reg (nil reg disables it):
// build counts, abstract-graph sizes and the qos routing counters behind the
// edge labels, plus a volatile build-time histogram.
func BuildMetrics(ov *overlay.Overlay, req *require.Requirement, reg *metrics.Registry) (*Graph, error) {
	return build(ov, req, reg, func(g qos.Graph) *qos.AllPairs {
		return qos.ComputeAllPairsMetrics(g, reg)
	})
}

// BuildWorkersMetrics is BuildWorkers with instrumentation into reg (nil reg
// disables it).
func BuildWorkersMetrics(ov *overlay.Overlay, req *require.Requirement, workers int, reg *metrics.Registry) (*Graph, error) {
	return build(ov, req, reg, func(g qos.Graph) *qos.AllPairs {
		return qos.ComputeAllPairsWorkersMetrics(g, workers, reg)
	})
}

// FromAllPairs wraps an externally maintained shortest-widest table — eager
// *qos.AllPairs or demand-driven *qos.LazyAllPairs — into an abstract graph,
// skipping the rebuild Build would do. The caller guarantees ap is current
// for ov (an incremental session's flushed table); the required-service
// validation still runs, since instances may have left since the table was
// first built.
func FromAllPairs(ov *overlay.Overlay, req *require.Requirement, ap qos.Table) (*Graph, error) {
	for _, sid := range req.Services() {
		if len(ov.InstancesOf(sid)) == 0 {
			return nil, fmt.Errorf("abstract: required service %d has no instance in the overlay", sid)
		}
	}
	return &Graph{req: req, ov: ov, ap: ap}, nil
}

// BuildLazy constructs the abstract graph over a demand-driven table: no
// all-pairs computation runs up front, and only the rows the federation
// algorithms read — the rows of instances populating service slots with
// outgoing requirement edges — are ever computed. Those slot rows are
// prefetched here in a workers-wide fan-out (<= 0 means GOMAXPROCS), so a
// following solve reads them warm; answers are byte-identical to Build's at
// any worker count. This is what makes federating against 10k–100k-node
// overlays interactive: cost scales with slot instances, not overlay size.
func BuildLazy(ov *overlay.Overlay, req *require.Requirement, workers int, reg *metrics.Registry) (*Graph, error) {
	for _, sid := range req.Services() {
		if len(ov.InstancesOf(sid)) == 0 {
			return nil, fmt.Errorf("abstract: required service %d has no instance in the overlay", sid)
		}
	}
	start := time.Now()
	lt := qos.NewLazyAllPairs(ov, reg)
	lt.Prefetch(SlotSources(ov, req), workers)
	g := &Graph{req: req, ov: ov, ap: lt}
	if reg != nil {
		reg.Counter("abstract_lazy_builds_total").Inc()
		reg.Histogram("abstract_build_us", metrics.ExponentialBounds(10, 10, 6), metrics.Volatile()).
			Observe(time.Since(start).Microseconds())
	}
	return g, nil
}

// SlotSources returns the sources a federation solve over the abstract graph
// reads rows from: the instances of every required service with at least one
// outgoing requirement edge, ascending and deduplicated. Edge metrics and
// paths are always read from the edge's tail, so sink-only services need no
// rows.
func SlotSources(ov *overlay.Overlay, req *require.Requirement) []int {
	tails := make(map[int]struct{})
	for _, e := range req.Edges() {
		tails[e[0]] = struct{}{}
	}
	var srcs []int
	seen := make(map[int]struct{})
	for sid := range tails {
		for _, nid := range ov.InstancesOf(sid) {
			if _, ok := seen[nid]; !ok {
				seen[nid] = struct{}{}
				srcs = append(srcs, nid)
			}
		}
	}
	sort.Ints(srcs)
	return srcs
}

func build(ov *overlay.Overlay, req *require.Requirement, reg *metrics.Registry, allPairs func(qos.Graph) *qos.AllPairs) (*Graph, error) {
	for _, sid := range req.Services() {
		if len(ov.InstancesOf(sid)) == 0 {
			return nil, fmt.Errorf("abstract: required service %d has no instance in the overlay", sid)
		}
	}
	start := time.Now()
	g := &Graph{req: req, ov: ov, ap: allPairs(ov)}
	if reg != nil {
		reg.Counter("abstract_builds_total").Inc()
		reg.Counter("abstract_services_total").Add(int64(req.NumServices()))
		reg.Counter("abstract_edges_total").Add(int64(len(req.Edges())))
		var slots int64
		for _, sid := range req.Services() {
			slots += int64(len(ov.InstancesOf(sid)))
		}
		reg.Counter("abstract_slots_total").Add(slots)
		reg.Histogram("abstract_build_us", metrics.ExponentialBounds(10, 10, 6), metrics.Volatile()).
			Observe(time.Since(start).Microseconds())
	}
	return g, nil
}

// Requirement returns the requirement the graph was built from.
func (g *Graph) Requirement() *require.Requirement { return g.req }

// Overlay returns the overlay the graph was built from.
func (g *Graph) Overlay() *overlay.Overlay { return g.ov }

// Slots returns the instances (NIDs) populating the abstract node of the
// given required service, ascending.
func (g *Graph) Slots(sid int) []int { return g.ov.InstancesOf(sid) }

// EdgeMetric returns the shortest-widest metric of the abstract edge from
// instance `from` to instance `to`. It is qos.Unreachable when the overlay
// offers no route.
func (g *Graph) EdgeMetric(from, to int) qos.Metric {
	if from == to {
		return qos.Empty
	}
	return g.ap.Metric(from, to)
}

// EdgePath returns the concrete overlay route realising the abstract edge
// from `from` to `to` (both inclusive), nil if unreachable. The route may
// pass through instances of services that are not in the requirement — the
// "bridging" instances of Sec 3.1.
func (g *Graph) EdgePath(from, to int) []int {
	if from == to {
		return []int{from}
	}
	return g.ap.Path(from, to)
}

// AllPairs exposes the underlying shortest-widest table (eager or lazy).
func (g *Graph) AllPairs() qos.Table { return g.ap }

// Realize materialises a complete instance assignment (SID -> NID) as a
// service flow graph: every requirement edge becomes a flow edge carrying the
// concrete shortest-widest overlay route between the chosen instances. It
// fails if the assignment is incomplete, names a wrong-service instance, or
// induces an unroutable edge.
func (g *Graph) Realize(assign map[int]int) (*flow.Graph, error) {
	fg := flow.New()
	for _, sid := range g.req.Services() {
		nid, ok := assign[sid]
		if !ok {
			return nil, fmt.Errorf("abstract: service %d unassigned", sid)
		}
		if got := g.ov.SIDOf(nid); got != sid {
			return nil, fmt.Errorf("abstract: instance %d provides service %d, not %d", nid, got, sid)
		}
		if err := fg.Assign(sid, nid); err != nil {
			return nil, err
		}
	}
	for _, e := range g.req.Edges() {
		from, to := assign[e[0]], assign[e[1]]
		m := g.EdgeMetric(from, to)
		if !m.Reachable() {
			return nil, fmt.Errorf("abstract: no route from instance %d to %d for edge %d->%d", from, to, e[0], e[1])
		}
		if err := fg.AddEdge(flow.Edge{
			FromSID: e[0], ToSID: e[1],
			FromNID: from, ToNID: to,
			Path:   g.EdgePath(from, to),
			Metric: m,
		}); err != nil {
			return nil, err
		}
	}
	return fg, nil
}

// AssignmentMetric evaluates a complete instance assignment (SID -> NID): the
// bottleneck bandwidth over all abstract edges induced by the requirement and
// the latency of the critical source-to-sink chain. It returns
// qos.Unreachable if any induced edge has no route.
func (g *Graph) AssignmentMetric(assign map[int]int) qos.Metric {
	width := qos.InfBandwidth
	for _, e := range g.req.Edges() {
		from, ok1 := assign[e[0]]
		to, ok2 := assign[e[1]]
		if !ok1 || !ok2 {
			return qos.Unreachable
		}
		m := g.EdgeMetric(from, to)
		if !m.Reachable() {
			return qos.Unreachable
		}
		if m.Bandwidth < width {
			width = m.Bandwidth
		}
	}
	// Critical-path latency over the requirement DAG with the assignment's
	// edge latencies.
	lat, err := g.req.DAG().LongestPathFrom(g.req.Source(), func(u, v int) int64 {
		return g.EdgeMetric(assign[u], assign[v]).Latency
	})
	if err != nil {
		return qos.Unreachable
	}
	var worst int64
	for _, sink := range g.req.Sinks() {
		if lat[sink] > worst {
			worst = lat[sink]
		}
	}
	return qos.Metric{Bandwidth: width, Latency: worst}
}
