// Package service models typed service descriptions. The paper defines
// compatibility semantically — "two services are compatible if the output
// produced by one service matches the input requirements of the other" —
// and this package makes that operational: each service declares the data
// types it consumes and produces, and the compatibility relation the overlay
// needs is *derived* from type matching instead of being hand-enumerated.
package service

import (
	"encoding/json"
	"fmt"
	"sort"

	"sflow/internal/overlay"
)

// Type names a data format flowing between services ("video/h264",
// "price-list", ...).
type Type string

// Description declares one service's interface.
type Description struct {
	// SID is the service identifier instances of this service carry.
	SID int `json:"sid"`
	// Name is a human-readable label.
	Name string `json:"name"`
	// Inputs are the types the service consumes; a source service has
	// none.
	Inputs []Type `json:"inputs,omitempty"`
	// Outputs are the types the service produces; a sink service may have
	// none.
	Outputs []Type `json:"outputs,omitempty"`
}

// Registry holds the service descriptions of a deployment.
type Registry struct {
	byID map[int]Description
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: make(map[int]Description)}
}

// Register adds a description; duplicate SIDs are rejected.
func (r *Registry) Register(d Description) error {
	if d.SID == 0 {
		return fmt.Errorf("service: description %q has no SID", d.Name)
	}
	if _, dup := r.byID[d.SID]; dup {
		return fmt.Errorf("service: duplicate SID %d", d.SID)
	}
	seen := make(map[Type]bool)
	for _, t := range append(append([]Type{}, d.Inputs...), d.Outputs...) {
		if t == "" {
			return fmt.Errorf("service: %q declares an empty type", d.Name)
		}
		_ = seen // duplicates within a list are harmless; no check needed
	}
	r.byID[d.SID] = d
	return nil
}

// Lookup returns the description of a service.
func (r *Registry) Lookup(sid int) (Description, bool) {
	d, ok := r.byID[sid]
	return d, ok
}

// SIDs returns the registered service identifiers, ascending.
func (r *Registry) SIDs() []int {
	out := make([]int, 0, len(r.byID))
	for sid := range r.byID {
		out = append(out, sid)
	}
	sort.Ints(out)
	return out
}

// CanFeed reports whether service a produces at least one type service b
// consumes.
func (r *Registry) CanFeed(a, b int) bool {
	da, ok1 := r.byID[a]
	db, ok2 := r.byID[b]
	if !ok1 || !ok2 {
		return false
	}
	for _, out := range da.Outputs {
		for _, in := range db.Inputs {
			if out == in {
				return true
			}
		}
	}
	return false
}

// Compatibility derives the overlay compatibility relation from the
// registered types: a -> b whenever a's outputs intersect b's inputs.
func (r *Registry) Compatibility() *overlay.Compatibility {
	c := overlay.NewCompatibility()
	for _, a := range r.SIDs() {
		for _, b := range r.SIDs() {
			if a != b && r.CanFeed(a, b) {
				c.Allow(a, b)
			}
		}
	}
	return c
}

// Validate checks a set of requirement edges against the types: every
// dependency must connect a producer to a matching consumer.
func (r *Registry) Validate(edges [][2]int) error {
	for _, e := range edges {
		if _, ok := r.byID[e[0]]; !ok {
			return fmt.Errorf("service: edge %v references unknown service %d", e, e[0])
		}
		if _, ok := r.byID[e[1]]; !ok {
			return fmt.Errorf("service: edge %v references unknown service %d", e, e[1])
		}
		if !r.CanFeed(e[0], e[1]) {
			return fmt.Errorf("service: %s cannot feed %s (no matching types)",
				r.byID[e[0]].Name, r.byID[e[1]].Name)
		}
	}
	return nil
}

// MarshalJSON encodes the registry as a sorted description list.
func (r *Registry) MarshalJSON() ([]byte, error) {
	out := make([]Description, 0, len(r.byID))
	for _, sid := range r.SIDs() {
		out = append(out, r.byID[sid])
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes and re-validates a description list.
func (r *Registry) UnmarshalJSON(data []byte) error {
	var ds []Description
	if err := json.Unmarshal(data, &ds); err != nil {
		return fmt.Errorf("service: decode: %w", err)
	}
	dec := NewRegistry()
	for _, d := range ds {
		if err := dec.Register(d); err != nil {
			return err
		}
	}
	*r = *dec
	return nil
}
