package service

import (
	"encoding/json"
	"reflect"
	"testing"
)

// travelRegistry types the paper's travel scenario: the travel engine emits
// queries; airline/hotel produce price lists; the currency converter
// consumes price lists and produces converted prices the agency displays.
func travelRegistry(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry()
	for _, d := range []Description{
		{SID: 1, Name: "TravelEngine", Outputs: []Type{"query"}},
		{SID: 2, Name: "Airline", Inputs: []Type{"query"}, Outputs: []Type{"prices"}},
		{SID: 3, Name: "Hotel", Inputs: []Type{"query"}, Outputs: []Type{"prices", "location"}},
		{SID: 4, Name: "Currency", Inputs: []Type{"prices"}, Outputs: []Type{"local-prices"}},
		{SID: 5, Name: "Map", Inputs: []Type{"location"}, Outputs: []Type{"map"}},
		{SID: 6, Name: "Agency", Inputs: []Type{"local-prices", "map"}},
	} {
		if err := r.Register(d); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestRegisterValidation(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(Description{Name: "no sid"}); err == nil {
		t.Fatal("zero SID accepted")
	}
	if err := r.Register(Description{SID: 1, Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(Description{SID: 1, Name: "b"}); err == nil {
		t.Fatal("duplicate SID accepted")
	}
	if err := r.Register(Description{SID: 2, Name: "empty type", Inputs: []Type{""}}); err == nil {
		t.Fatal("empty type accepted")
	}
}

func TestCanFeedAndCompatibility(t *testing.T) {
	r := travelRegistry(t)
	cases := []struct {
		a, b int
		want bool
	}{
		{1, 2, true},  // query -> airline
		{1, 3, true},  // query -> hotel
		{2, 4, true},  // prices -> currency
		{3, 4, true},  // hotel also emits prices
		{3, 5, true},  // location -> map
		{2, 5, false}, // airline emits no location
		{4, 6, true},  // local-prices -> agency
		{5, 6, true},  // map -> agency
		{6, 1, false}, // agency produces nothing
		{1, 4, false}, // query is not prices
		{9, 1, false}, // unknown service
	}
	for _, tt := range cases {
		if got := r.CanFeed(tt.a, tt.b); got != tt.want {
			t.Errorf("CanFeed(%d,%d) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
	compat := r.Compatibility()
	for _, tt := range cases {
		if tt.a > 6 || tt.b > 6 {
			continue
		}
		if got := compat.Compatible(tt.a, tt.b); got != tt.want {
			t.Errorf("derived Compatible(%d,%d) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestValidateEdges(t *testing.T) {
	r := travelRegistry(t)
	good := [][2]int{{1, 2}, {2, 4}, {4, 6}, {3, 5}, {5, 6}}
	if err := r.Validate(good); err != nil {
		t.Fatalf("typed requirement rejected: %v", err)
	}
	if err := r.Validate([][2]int{{2, 5}}); err == nil {
		t.Fatal("type mismatch accepted")
	}
	if err := r.Validate([][2]int{{1, 99}}); err == nil {
		t.Fatal("unknown consumer accepted")
	}
	if err := r.Validate([][2]int{{99, 1}}); err == nil {
		t.Fatal("unknown producer accepted")
	}
}

func TestAccessors(t *testing.T) {
	r := travelRegistry(t)
	if want := []int{1, 2, 3, 4, 5, 6}; !reflect.DeepEqual(r.SIDs(), want) {
		t.Fatalf("SIDs = %v", r.SIDs())
	}
	d, ok := r.Lookup(4)
	if !ok || d.Name != "Currency" {
		t.Fatalf("Lookup(4) = %+v, %v", d, ok)
	}
	if _, ok := r.Lookup(42); ok {
		t.Fatal("phantom lookup")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := travelRegistry(t)
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Registry
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.SIDs(), back.SIDs()) {
		t.Fatal("SIDs differ after round trip")
	}
	for _, sid := range r.SIDs() {
		a, _ := r.Lookup(sid)
		b, _ := back.Lookup(sid)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("description %d differs", sid)
		}
	}
	var bad Registry
	if err := json.Unmarshal([]byte(`[{"sid":1},{"sid":1}]`), &bad); err == nil {
		t.Fatal("duplicate SIDs accepted")
	}
}
