// Package metrics is a lightweight, allocation-conscious instrumentation
// registry for the federation engine: named counters, gauges and fixed-bucket
// histograms with atomic updates and a deterministic snapshot.
//
// Design constraints, in order:
//
//  1. Near-zero cost when disabled. Every lookup on a nil *Registry returns a
//     nil handle, and every update on a nil handle is a no-op — so
//     instrumented code unconditionally calls Counter(...).Add(...) without
//     guards, and an un-instrumented run pays one nil check per update site.
//     Hot loops accumulate into a local int64 and publish once per call.
//  2. Deterministic output. Snapshot sorts every section by metric key, so
//     two runs that perform the same logical work render byte-identical
//     snapshots regardless of goroutine scheduling or worker counts.
//     Wall-clock and scheduling-dependent metrics are registered as volatile
//     and excluded from the stable rendering (Snapshot.StableText).
//  3. Concurrency-safe. Handles update via sync/atomic; the registry maps are
//     guarded by a mutex only on the (rare) handle-resolution path.
//
// Metric keys are "name" or "name{k1=\"v1\",k2=\"v2\"}" with label names
// sorted, the conventional exposition-format key.
package metrics

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value dimension of a metric key.
type Label struct {
	Name  string
	Value string
}

// Option configures a metric at resolution time.
type Option func(*metricOpts)

type metricOpts struct {
	labels   []Label
	volatile bool
}

// WithLabels attaches name=value dimensions to the metric key. Label names
// are sorted into the key, so the same set in any order resolves the same
// metric.
func WithLabels(labels ...Label) Option {
	return func(o *metricOpts) { o.labels = append(o.labels, labels...) }
}

// Volatile marks the metric as scheduling- or wall-clock-dependent (timings,
// pool occupancy). Volatile metrics appear in Snapshot.Text but are excluded
// from Snapshot.StableText, the rendering the determinism guarantees cover.
func Volatile() Option {
	return func(o *metricOpts) { o.volatile = true }
}

// Key renders the canonical metric key for a name and label set.
func Key(name string, labels ...Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Name, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Registry holds the metrics of one run (or one process). The zero value is
// not usable; construct with New. A nil *Registry is the no-op default: every
// method on it is safe and free.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

func resolveOpts(opts []Option) metricOpts {
	var mo metricOpts
	for _, o := range opts {
		o(&mo)
	}
	return mo
}

// Counter resolves (creating on first use) the monotonically increasing
// counter with the given name and options. Returns nil on a nil registry.
func (r *Registry) Counter(name string, opts ...Option) *Counter {
	if r == nil {
		return nil
	}
	mo := resolveOpts(opts)
	key := Key(name, mo.labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[key]
	if !ok {
		c = &Counter{key: key, volatile: mo.volatile}
		r.counters[key] = c
	}
	return c
}

// Gauge resolves the gauge (a settable level) with the given name and
// options. Returns nil on a nil registry.
func (r *Registry) Gauge(name string, opts ...Option) *Gauge {
	if r == nil {
		return nil
	}
	mo := resolveOpts(opts)
	key := Key(name, mo.labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[key]
	if !ok {
		g = &Gauge{key: key, volatile: mo.volatile}
		r.gauges[key] = g
	}
	return g
}

// Histogram resolves the fixed-bucket histogram with the given name, bucket
// upper bounds (ascending; an implicit +Inf bucket is appended) and options.
// The bounds of the first resolution win; later resolutions under the same
// key reuse the existing buckets. Returns nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []int64, opts ...Option) *Histogram {
	if r == nil {
		return nil
	}
	mo := resolveOpts(opts)
	key := Key(name, mo.labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[key]
	if !ok {
		bs := append([]int64(nil), bounds...)
		sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
		h = &Histogram{key: key, volatile: mo.volatile, bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
		r.histograms[key] = h
	}
	return h
}

// Counter is a monotonically increasing count. Updates are atomic; a nil
// *Counter ignores them.
type Counter struct {
	key      string
	volatile bool
	v        atomic.Int64
}

// Add increases the counter by n (negative n is ignored: counters only go
// up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable level. Updates are atomic; a nil *Gauge ignores them.
type Gauge struct {
	key      string
	volatile bool
	v        atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta (either sign).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current level (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets (upper-bound inclusive)
// plus an overflow bucket, and tracks sum and count. Updates are atomic; a
// nil *Histogram ignores them.
type Histogram struct {
	key      string
	volatile bool
	bounds   []int64
	counts   []atomic.Int64
	sum      atomic.Int64
	count    atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the observed values from
// the bucket counts: the rank is located in the cumulative distribution and
// interpolated linearly inside its bucket. The estimate is bounded by the
// bucket layout — it cannot be more precise than the bounds are dense — and
// observations in the overflow bucket clamp to the last finite bound. Returns
// 0 on a nil or empty histogram. Quantile reads the same atomics Observe
// writes, so it is safe to call while observations continue; a concurrent
// snapshot is approximate, as any live quantile is.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(total-1))
	var seen int64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		if rank < seen+c {
			// Overflow bucket: no finite upper bound to interpolate
			// toward; report the last finite bound (or the sum/count mean
			// when there are no finite buckets at all).
			if i >= len(h.bounds) {
				if len(h.bounds) == 0 {
					return h.sum.Load() / total
				}
				return h.bounds[len(h.bounds)-1]
			}
			lo := int64(0)
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			// Linear interpolation of the rank's position inside the
			// bucket.
			frac := float64(rank-seen) / float64(c)
			return lo + int64(frac*float64(hi-lo))
		}
		seen += c
	}
	return h.bounds[len(h.bounds)-1]
}

// Sum returns the sum of all observed values (0 on nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// LinearBounds returns n bucket upper bounds start, start+width, ... — a
// convenience for percent-style histograms.
func LinearBounds(start, width int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = start + int64(i)*width
	}
	return out
}

// ExponentialBounds returns n bucket upper bounds start, start*factor, ... —
// a convenience for duration-style histograms.
func ExponentialBounds(start, factor int64, n int) []int64 {
	out := make([]int64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// CounterValue is one counter in a snapshot.
type CounterValue struct {
	Key      string `json:"key"`
	Value    int64  `json:"value"`
	Volatile bool   `json:"volatile,omitempty"`
}

// GaugeValue is one gauge in a snapshot.
type GaugeValue struct {
	Key      string `json:"key"`
	Value    int64  `json:"value"`
	Volatile bool   `json:"volatile,omitempty"`
}

// BucketValue is one histogram bucket in a snapshot. UpperBound is
// math.MaxInt64 for the overflow bucket (rendered "+Inf").
type BucketValue struct {
	UpperBound int64 `json:"le"`
	Count      int64 `json:"count"`
}

// HistogramValue is one histogram in a snapshot.
type HistogramValue struct {
	Key      string        `json:"key"`
	Count    int64         `json:"count"`
	Sum      int64         `json:"sum"`
	Buckets  []BucketValue `json:"buckets"`
	Volatile bool          `json:"volatile,omitempty"`
}

// Snapshot is a point-in-time copy of a registry, each section sorted by
// metric key. It is safe to render and marshal after the registry moves on.
type Snapshot struct {
	Counters   []CounterValue   `json:"counters"`
	Gauges     []GaugeValue     `json:"gauges"`
	Histograms []HistogramValue `json:"histograms"`
}

// Snapshot captures the current values. On a nil registry it returns an
// empty (but usable) snapshot.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	histograms := make([]*Histogram, 0, len(r.histograms))
	for _, h := range r.histograms {
		histograms = append(histograms, h)
	}
	r.mu.Unlock()

	for _, c := range counters {
		s.Counters = append(s.Counters, CounterValue{Key: c.key, Value: c.v.Load(), Volatile: c.volatile})
	}
	for _, g := range gauges {
		s.Gauges = append(s.Gauges, GaugeValue{Key: g.key, Value: g.v.Load(), Volatile: g.volatile})
	}
	for _, h := range histograms {
		hv := HistogramValue{Key: h.key, Count: h.count.Load(), Sum: h.sum.Load(), Volatile: h.volatile}
		for i := range h.counts {
			ub := int64(math.MaxInt64)
			if i < len(h.bounds) {
				ub = h.bounds[i]
			}
			hv.Buckets = append(hv.Buckets, BucketValue{UpperBound: ub, Count: h.counts[i].Load()})
		}
		s.Histograms = append(s.Histograms, hv)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Key < s.Counters[j].Key })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Key < s.Gauges[j].Key })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Key < s.Histograms[j].Key })
	return s
}

// Text renders every metric, one per line, sections sorted by key.
func (s *Snapshot) Text() string { return s.render(true) }

// StableText renders only the non-volatile metrics — the subset guaranteed
// byte-identical across runs doing the same logical work at any worker
// count. It returns "" when nothing non-volatile was recorded.
func (s *Snapshot) StableText() string { return s.render(false) }

func (s *Snapshot) render(includeVolatile bool) string {
	var b strings.Builder
	for _, c := range s.Counters {
		if c.Volatile && !includeVolatile {
			continue
		}
		fmt.Fprintf(&b, "counter %s %d%s\n", c.Key, c.Value, volatileTag(c.Volatile))
	}
	for _, g := range s.Gauges {
		if g.Volatile && !includeVolatile {
			continue
		}
		fmt.Fprintf(&b, "gauge %s %d%s\n", g.Key, g.Value, volatileTag(g.Volatile))
	}
	for _, h := range s.Histograms {
		if h.Volatile && !includeVolatile {
			continue
		}
		fmt.Fprintf(&b, "histogram %s count=%d sum=%d", h.Key, h.Count, h.Sum)
		for _, bk := range h.Buckets {
			if bk.UpperBound == math.MaxInt64 {
				fmt.Fprintf(&b, " le=+Inf:%d", bk.Count)
			} else {
				fmt.Fprintf(&b, " le=%d:%d", bk.UpperBound, bk.Count)
			}
		}
		b.WriteString(volatileTag(h.Volatile))
		b.WriteByte('\n')
	}
	return b.String()
}

func volatileTag(v bool) string {
	if v {
		return " (volatile)"
	}
	return ""
}

// JSON renders the snapshot as indented JSON with deterministic ordering
// (sections are pre-sorted slices).
func (s *Snapshot) JSON() ([]byte, error) { return json.MarshalIndent(s, "", "  ") }
