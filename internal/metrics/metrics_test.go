package metrics

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// A nil registry and the nil handles it returns must absorb every operation.
func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", []int64{1, 2})
	c.Add(5)
	c.Inc()
	g.Set(3)
	g.Add(-1)
	h.Observe(7)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles accumulated values")
	}
	snap := r.Snapshot()
	if snap.Text() != "" || snap.StableText() != "" {
		t.Fatalf("nil registry snapshot not empty: %q", snap.Text())
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := New()
	c := r.Counter("reqs")
	c.Add(2)
	c.Inc()
	c.Add(-7) // counters only go up
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	g := r.Gauge("level")
	g.Set(10)
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Fatalf("gauge = %d, want 6", got)
	}
	h := r.Histogram("lat", []int64{10, 100})
	for _, v := range []int64{1, 10, 11, 1000} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 1022 {
		t.Fatalf("histogram count=%d sum=%d", h.Count(), h.Sum())
	}
	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("histograms = %d", len(snap.Histograms))
	}
	buckets := snap.Histograms[0].Buckets
	// Bounds are upper-inclusive: 1 and 10 land in le=10; 11 in le=100;
	// 1000 overflows.
	want := []int64{2, 1, 1}
	for i, w := range want {
		if buckets[i].Count != w {
			t.Fatalf("bucket %d = %d, want %d (%+v)", i, buckets[i].Count, w, buckets)
		}
	}
}

// The same (name, labels) set resolves the same metric regardless of label
// order, and keys render with sorted label names.
func TestLabelKeyCanonicalisation(t *testing.T) {
	r := New()
	a := r.Counter("m", WithLabels(Label{"b", "2"}, Label{"a", "1"}))
	b := r.Counter("m", WithLabels(Label{"a", "1"}, Label{"b", "2"}))
	if a != b {
		t.Fatal("label order produced distinct metrics")
	}
	a.Inc()
	snap := r.Snapshot()
	if len(snap.Counters) != 1 || snap.Counters[0].Key != `m{a="1",b="2"}` {
		t.Fatalf("key = %+v", snap.Counters)
	}
}

// Snapshots sort by key and render byte-identically for identical logical
// content, regardless of resolution order.
func TestSnapshotDeterministicOrdering(t *testing.T) {
	build := func(order []string) string {
		r := New()
		for _, name := range order {
			r.Counter(name).Add(int64(len(name)))
		}
		r.Gauge("z_gauge").Set(1)
		r.Gauge("a_gauge").Set(2)
		r.Histogram("hist", []int64{5}).Observe(3)
		return r.Snapshot().Text()
	}
	t1 := build([]string{"b", "a", "c"})
	t2 := build([]string{"c", "b", "a"})
	if t1 != t2 {
		t.Fatalf("snapshot order depends on resolution order:\n%s\nvs\n%s", t1, t2)
	}
	if !strings.Contains(t1, "counter a 1\n") {
		t.Fatalf("unexpected rendering:\n%s", t1)
	}
}

// Volatile metrics show in Text but not in StableText.
func TestVolatileExcludedFromStableText(t *testing.T) {
	r := New()
	r.Counter("stable_total").Inc()
	r.Counter("wall_us_total", Volatile()).Add(123)
	r.Gauge("occupancy", Volatile()).Set(4)
	r.Histogram("cell_us", []int64{10}, Volatile()).Observe(7)
	full, stable := r.Snapshot().Text(), r.Snapshot().StableText()
	for _, key := range []string{"wall_us_total", "occupancy", "cell_us"} {
		if !strings.Contains(full, key) {
			t.Fatalf("Text missing %q:\n%s", key, full)
		}
		if strings.Contains(stable, key) {
			t.Fatalf("StableText leaks volatile %q:\n%s", key, stable)
		}
	}
	if !strings.Contains(stable, "stable_total") {
		t.Fatalf("StableText missing stable metric:\n%s", stable)
	}
	if !strings.Contains(full, "(volatile)") {
		t.Fatalf("Text does not tag volatile metrics:\n%s", full)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := New()
	r.Counter("c", WithLabels(Label{"k", "v"})).Add(9)
	r.Histogram("h", []int64{1}).Observe(2)
	data, err := r.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Counters) != 1 || back.Counters[0].Value != 9 {
		t.Fatalf("round trip lost counters: %+v", back)
	}
	if len(back.Histograms) != 1 || back.Histograms[0].Sum != 2 {
		t.Fatalf("round trip lost histograms: %+v", back)
	}
}

// Concurrent updates through shared and per-goroutine handles must be safe
// and lose nothing (run under -race in the race-hot target).
func TestConcurrentUpdates(t *testing.T) {
	r := New()
	const goroutines, perG = 8, 1000
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func() {
			defer wg.Done()
			c := r.Counter("shared_total")
			h := r.Histogram("obs", []int64{500})
			for j := 0; j < perG; j++ {
				c.Inc()
				h.Observe(int64(j))
				r.Gauge("g").Set(int64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared_total").Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := r.Histogram("obs", nil).Count(); got != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*perG)
	}
}

func TestBoundHelpers(t *testing.T) {
	lin := LinearBounds(10, 10, 3)
	if lin[0] != 10 || lin[1] != 20 || lin[2] != 30 {
		t.Fatalf("linear = %v", lin)
	}
	exp := ExponentialBounds(1, 10, 4)
	if exp[3] != 1000 {
		t.Fatalf("exponential = %v", exp)
	}
}
