package metrics

import "testing"

func TestHistogramQuantile(t *testing.T) {
	r := New()
	h := r.Histogram("latency_us", []int64{10, 100, 1000})

	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %d, want 0", got)
	}

	// 90 observations land in (0,10], 9 in (10,100], 1 in (100,1000].
	for i := 0; i < 90; i++ {
		h.Observe(5)
	}
	for i := 0; i < 9; i++ {
		h.Observe(50)
	}
	h.Observe(500)

	p50 := h.Quantile(0.5)
	if p50 <= 0 || p50 > 10 {
		t.Fatalf("p50 = %d, want within the first bucket (0, 10]", p50)
	}
	p95 := h.Quantile(0.95)
	if p95 <= 10 || p95 > 100 {
		t.Fatalf("p95 = %d, want within the second bucket (10, 100]", p95)
	}
	// The single largest observation (rank 99 of 100) lives in the third
	// bucket; interpolation at its start reports the bucket's lower bound.
	p100 := h.Quantile(1)
	if p100 < 100 || p100 > 1000 {
		t.Fatalf("p100 = %d, want within the third bucket [100, 1000]", p100)
	}

	// Quantiles are monotone in q.
	prev := int64(-1)
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile not monotone: q=%v gave %d after %d", q, v, prev)
		}
		prev = v
	}
}

func TestHistogramQuantileOverflowAndClamping(t *testing.T) {
	r := New()
	h := r.Histogram("big_us", []int64{10})
	h.Observe(5)
	h.Observe(1 << 40) // overflow bucket

	// The overflow bucket has no finite bound: clamp to the last one.
	if got := h.Quantile(1); got != 10 {
		t.Fatalf("overflow quantile = %d, want clamp to last bound 10", got)
	}
	// Out-of-range q clamps instead of panicking.
	if got := h.Quantile(-3); got != h.Quantile(0) {
		t.Fatalf("q<0 = %d, want same as q=0 (%d)", got, h.Quantile(0))
	}
	if got := h.Quantile(42); got != h.Quantile(1) {
		t.Fatalf("q>1 = %d, want same as q=1 (%d)", got, h.Quantile(1))
	}

	// Nil receiver is a free no-op like every other handle method.
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Fatalf("nil histogram quantile = %d, want 0", got)
	}
}
