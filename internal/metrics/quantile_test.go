package metrics

import "testing"

func TestHistogramQuantile(t *testing.T) {
	r := New()
	h := r.Histogram("latency_us", []int64{10, 100, 1000})

	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %d, want 0", got)
	}

	// 90 observations land in (0,10], 9 in (10,100], 1 in (100,1000].
	for i := 0; i < 90; i++ {
		h.Observe(5)
	}
	for i := 0; i < 9; i++ {
		h.Observe(50)
	}
	h.Observe(500)

	p50 := h.Quantile(0.5)
	if p50 <= 0 || p50 > 10 {
		t.Fatalf("p50 = %d, want within the first bucket (0, 10]", p50)
	}
	p95 := h.Quantile(0.95)
	if p95 <= 10 || p95 > 100 {
		t.Fatalf("p95 = %d, want within the second bucket (10, 100]", p95)
	}
	// The single largest observation (rank 99 of 100) lives in the third
	// bucket; interpolation at its start reports the bucket's lower bound.
	p100 := h.Quantile(1)
	if p100 < 100 || p100 > 1000 {
		t.Fatalf("p100 = %d, want within the third bucket [100, 1000]", p100)
	}

	// Quantiles are monotone in q.
	prev := int64(-1)
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile not monotone: q=%v gave %d after %d", q, v, prev)
		}
		prev = v
	}
}

func TestHistogramQuantileOverflowAndClamping(t *testing.T) {
	r := New()
	h := r.Histogram("big_us", []int64{10})
	h.Observe(5)
	h.Observe(1 << 40) // overflow bucket

	// The overflow bucket has no finite bound: clamp to the last one.
	if got := h.Quantile(1); got != 10 {
		t.Fatalf("overflow quantile = %d, want clamp to last bound 10", got)
	}
	// Out-of-range q clamps instead of panicking.
	if got := h.Quantile(-3); got != h.Quantile(0) {
		t.Fatalf("q<0 = %d, want same as q=0 (%d)", got, h.Quantile(0))
	}
	if got := h.Quantile(42); got != h.Quantile(1) {
		t.Fatalf("q>1 = %d, want same as q=1 (%d)", got, h.Quantile(1))
	}

	// Nil receiver is a free no-op like every other handle method.
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Fatalf("nil histogram quantile = %d, want 0", got)
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	r := New()

	// A single finite bucket: every quantile of in-range data interpolates
	// inside (0, 10] and p0/p100 hit the bucket edges.
	single := r.Histogram("single_us", []int64{10})
	for i := 0; i < 4; i++ {
		single.Observe(int64(i + 1))
	}
	if got := single.Quantile(0); got != 0 {
		t.Fatalf("single-bucket p0 = %d, want lower bound 0", got)
	}
	for _, q := range []float64{0.25, 0.5, 0.75} {
		if got := single.Quantile(q); got < 0 || got > 10 {
			t.Fatalf("single-bucket q=%v = %d, want within (0, 10]", q, got)
		}
	}
	if got := single.Quantile(1); got < 0 || got > 10 {
		t.Fatalf("single-bucket p100 = %d, want within (0, 10]", got)
	}

	// One observation: every quantile collapses to the same bucket estimate.
	solo := r.Histogram("solo_us", []int64{10, 100})
	solo.Observe(42)
	p0, p50, p100 := solo.Quantile(0), solo.Quantile(0.5), solo.Quantile(1)
	if p0 != p50 || p50 != p100 {
		t.Fatalf("single observation quantiles differ: p0=%d p50=%d p100=%d", p0, p50, p100)
	}
	// Interpolation at the first rank of a bucket reports the bucket's
	// lower edge, so the estimate may sit exactly on the open bound.
	if p0 < 10 || p0 > 100 {
		t.Fatalf("single observation quantile = %d, want within its bucket [10, 100]", p0)
	}

	// No finite bounds at all: everything lands in the overflow bucket and
	// Quantile falls back to the running mean.
	unbounded := r.Histogram("unbounded_us", nil)
	unbounded.Observe(10)
	unbounded.Observe(30)
	if got := unbounded.Quantile(0.5); got != 20 {
		t.Fatalf("boundless histogram quantile = %d, want mean 20", got)
	}

	// p0 and p100 on an empty histogram are 0, like any other quantile.
	empty := r.Histogram("empty_us", []int64{10})
	if got := empty.Quantile(0); got != 0 {
		t.Fatalf("empty p0 = %d, want 0", got)
	}
	if got := empty.Quantile(1); got != 0 {
		t.Fatalf("empty p100 = %d, want 0", got)
	}
}
