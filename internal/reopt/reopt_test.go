package reopt

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"sflow/internal/abstract"
	"sflow/internal/flow"
	"sflow/internal/metrics"
	"sflow/internal/overlay"
	"sflow/internal/provision"
	"sflow/internal/qos"
	"sflow/internal/reduce"
	"sflow/internal/require"
)

// concentrateOverlay is the scenario topology: one fat two-hop path through
// hub A that the widest-first heuristic concentrates every admission onto,
// plus alts parallel thin paths the planner can migrate tenants to.
//
//	src 0 ──1000──▶ A=1 ──1000──▶ sink
//	src 0 ──130───▶ alt_i ──130──▶ sink   (i = 1..alts)
func concentrateOverlay(t testing.TB, alts int) (*overlay.Overlay, *require.Requirement, int) {
	t.Helper()
	ov := overlay.New()
	sink := alts + 2
	check := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	check(ov.AddInstance(0, 0, -1))
	check(ov.AddInstance(1, 1, -1))
	for i := 0; i < alts; i++ {
		check(ov.AddInstance(2+i, 1, -1))
	}
	check(ov.AddInstance(sink, 2, -1))
	check(ov.AddLink(0, 1, 1000, 10))
	check(ov.AddLink(1, sink, 1000, 10))
	for i := 0; i < alts; i++ {
		check(ov.AddLink(0, 2+i, 130, 20))
		check(ov.AddLink(2+i, sink, 130, 20))
	}
	req, err := require.NewPath(0, 1, 2)
	check(err)
	return ov, req, sink
}

// heuristicAlg is the deterministic widest-then-shortest federation the tests
// admit with: it concentrates on the fat path until it thins out.
func heuristicAlg(ov *overlay.Overlay, req *require.Requirement, src int) (*flow.Graph, qos.Metric, error) {
	ag, err := abstract.Build(ov, req)
	if err != nil {
		return nil, qos.Unreachable, err
	}
	r, err := reduce.Solve(ag, src, nil)
	if err != nil {
		return nil, qos.Unreachable, err
	}
	return r.Flow, r.Metric, nil
}

// maskedAlg is heuristicAlg with one link removed from a cloned view — the
// stateless equivalent of the planner's session-masked solve, used by the
// replay oracle to rebuild "reopt:u-v"-tagged migrations.
func maskedAlg(u, v int) provision.Algorithm {
	return func(ov *overlay.Overlay, req *require.Requirement, src int) (*flow.Graph, qos.Metric, error) {
		view := ov.Clone()
		if view.HasLink(u, v) {
			if err := view.RemoveLink(u, v); err != nil {
				return nil, qos.Unreachable, err
			}
		}
		return heuristicAlg(view, req, src)
	}
}

// replayAlgFor rebuilds algorithms from event tags: "reopt:u-v" migrations
// re-solve with the hot link masked, everything else uses the plain
// heuristic.
func replayAlgFor(ev provision.Event) provision.Algorithm {
	if rest, ok := strings.CutPrefix(ev.Tag, "reopt:"); ok {
		var u, v int
		if _, err := fmt.Sscanf(rest, "%d-%d", &u, &v); err == nil {
			return maskedAlg(u, v)
		}
	}
	return heuristicAlg
}

// recount rebuilds per-link loads from scratch out of the allocator's active
// reservations: the ground truth the ledger must always agree with.
func recount(alloc *provision.Allocator) map[Link]int64 {
	out := make(map[Link]int64)
	for _, res := range alloc.Reservations() {
		for link, r := range res {
			out[link] += r.Amount
		}
	}
	return out
}

func sortedLinks(ov *overlay.Overlay) []overlay.Link {
	ls := ov.Links()
	sort.Slice(ls, func(i, j int) bool {
		if ls[i].From != ls[j].From {
			return ls[i].From < ls[j].From
		}
		return ls[i].To < ls[j].To
	})
	return ls
}

// --- detector ---------------------------------------------------------------

func loadsOf(util ...float64) []LinkLoad {
	out := make([]LinkLoad, len(util))
	for i, u := range util {
		out[i] = LinkLoad{From: i, To: i + 100, Capacity: 1000, Load: int64(u * 1000)}
	}
	return out
}

// The detector must wait out the sustain guard, hold a hot link hot inside
// the hysteresis band, and release it only below the clear threshold.
func TestDetectorHysteresis(t *testing.T) {
	d := NewDetector(DetectorConfig{HotThreshold: 0.9, ClearThreshold: 0.7, Sustain: 2})

	if hot := d.Observe(loadsOf(0.95)); len(hot) != 0 {
		t.Fatalf("hot after one observation = %v, want none (sustain 2)", hot)
	}
	if hot := d.Observe(loadsOf(0.95)); len(hot) != 1 {
		t.Fatalf("hot after two observations = %v, want one", hot)
	}
	// Inside the band [0.7, 0.9): stays hot.
	if hot := d.Observe(loadsOf(0.8)); len(hot) != 1 {
		t.Fatalf("hot inside hysteresis band = %v, want still hot", hot)
	}
	// A dip into the band also resets the sustain streak: after clearing,
	// one spike must not re-arm instantly.
	if hot := d.Observe(loadsOf(0.6)); len(hot) != 0 {
		t.Fatalf("hot below clear threshold = %v, want none", hot)
	}
	if hot := d.Observe(loadsOf(0.95)); len(hot) != 0 {
		t.Fatalf("hot after single re-spike = %v, want none (streak was reset)", hot)
	}

	// A spike interrupted below sustain never fires.
	d2 := NewDetector(DetectorConfig{HotThreshold: 0.9, ClearThreshold: 0.7, Sustain: 3})
	d2.Observe(loadsOf(0.95))
	d2.Observe(loadsOf(0.95))
	d2.Observe(loadsOf(0.5))
	if hot := d2.Observe(loadsOf(0.95)); len(hot) != 0 {
		t.Fatalf("interrupted spike fired: %v", hot)
	}
}

// The hot set must come out utilization-descending with a deterministic tie
// order, and links that vanish from the observation must be forgotten.
func TestDetectorOrderingAndForgetting(t *testing.T) {
	d := NewDetector(DetectorConfig{HotThreshold: 0.5, Sustain: 1})
	links := []LinkLoad{
		{From: 3, To: 4, Capacity: 100, Load: 80},
		{From: 1, To: 2, Capacity: 100, Load: 95},
		{From: 2, To: 3, Capacity: 100, Load: 80},
	}
	hot := d.Observe(links)
	got := make([][2]int, len(hot))
	for i, h := range hot {
		got[i] = [2]int{h.From, h.To}
	}
	want := [][2]int{{1, 2}, {2, 3}, {3, 4}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("hot order = %v, want %v", got, want)
	}
	if hot := d.Observe(nil); len(hot) != 0 {
		t.Fatalf("hot after empty observation = %v, want none", hot)
	}
	if d.Hot(Link{1, 2}) {
		t.Fatal("vanished link still marked hot")
	}
}

// --- ledger recount property ------------------------------------------------

// After any seeded interleaving of admits, releases, preemptions and
// migrations, the ledger must deep-equal a from-scratch recount of the
// allocator's active reservations.
func TestLedgerRecountSeeded(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			ov, req, _ := concentrateOverlay(t, 4)
			ledger := NewLedger(ov, metrics.New())
			alloc := provision.NewAllocator(ov, provision.AllocatorOptions{
				Classes: 2, Preempt: true, Observer: ledger,
			})
			defer alloc.Close()

			rng := rand.New(rand.NewSource(seed))
			var live []uint64
			for op := 0; op < 300; op++ {
				switch k := rng.Intn(100); {
				case k < 55: // admit
					tkt, err := alloc.Admit(provision.AdmitRequest{
						Req: req, Src: 0, Demand: int64(5 + rng.Intn(60)),
						Class: rng.Intn(2), Tag: fmt.Sprintf("t%d", op),
						Alg: heuristicAlg,
					})
					if err == nil {
						live = append(live, tkt.ID)
					}
				case k < 80: // release (possibly of a preempted ticket: ErrNoTicket is fine)
					if len(live) == 0 {
						continue
					}
					i := rng.Intn(len(live))
					err := alloc.Release(live[i])
					if err != nil && !errors.Is(err, provision.ErrNoTicket) {
						t.Fatalf("release: %v", err)
					}
					live = append(live[:i], live[i+1:]...)
				default: // migrate in place (no gate)
					if len(live) == 0 {
						continue
					}
					id := live[rng.Intn(len(live))]
					_, err := alloc.Migrate(id, heuristicAlg, nil, "reopt:0-1")
					if err != nil && !errors.Is(err, provision.ErrNoTicket) &&
						!errors.Is(err, provision.ErrRejected) {
						t.Fatalf("migrate: %v", err)
					}
				}
				if op%50 == 0 {
					if got, want := ledger.Loads(), recount(alloc); !reflect.DeepEqual(got, want) {
						t.Fatalf("op %d: ledger %v != recount %v", op, got, want)
					}
				}
			}
			got, want := ledger.Loads(), recount(alloc)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("final ledger %v != recount %v", got, want)
			}
			// Tenant counts agree too.
			if got, want := len(alloc.Tenants()), lenTenants(ledger); got != want {
				t.Fatalf("allocator tenants %d, ledger tenants %d", got, want)
			}
		})
	}
}

// lenTenants counts the distinct tenants the ledger is carrying.
func lenTenants(l *Ledger) int {
	seen := map[uint64]bool{}
	for _, ll := range l.Links() {
		for _, ts := range l.TenantsOn(Link{ll.From, ll.To}) {
			seen[ts.Ticket] = true
		}
	}
	return len(seen)
}

// The same property under real concurrency: many goroutines admitting,
// releasing and migrating at once (run with -race). The ledger folds
// observer callbacks in writer-loop order, so after quiescing it must equal
// the recount exactly.
func TestLedgerRecountConcurrent(t *testing.T) {
	ov, req, _ := concentrateOverlay(t, 4)
	ledger := NewLedger(ov, nil)
	alloc := provision.NewAllocator(ov, provision.AllocatorOptions{
		Classes: 2, Preempt: true, Observer: ledger,
	})
	defer alloc.Close()

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w + 1)))
			var mine []uint64
			for op := 0; op < 40; op++ {
				switch k := rng.Intn(100); {
				case k < 55:
					tkt, err := alloc.Admit(provision.AdmitRequest{
						Req: req, Src: 0, Demand: int64(5 + rng.Intn(40)),
						Class: rng.Intn(2), Tag: fmt.Sprintf("w%d-%d", w, op),
						Alg: heuristicAlg,
					})
					if err == nil {
						mine = append(mine, tkt.ID)
					}
				case k < 80:
					if len(mine) == 0 {
						continue
					}
					i := rng.Intn(len(mine))
					_ = alloc.Release(mine[i])
					mine = append(mine[:i], mine[i+1:]...)
				default:
					if len(mine) == 0 {
						continue
					}
					_, _ = alloc.Migrate(mine[rng.Intn(len(mine))], heuristicAlg, nil, "mig")
				}
			}
		}(w)
	}
	wg.Wait()
	if got, want := ledger.Loads(), recount(alloc); !reflect.DeepEqual(got, want) {
		t.Fatalf("ledger %v != recount %v", got, want)
	}
}

// TTL expiries flow through the same observer hook: once every lease lapses,
// the ledger must drain to empty.
func TestLedgerDrainsOnExpiry(t *testing.T) {
	ov, req, _ := concentrateOverlay(t, 2)
	ledger := NewLedger(ov, nil)
	alloc := provision.NewAllocator(ov, provision.AllocatorOptions{Observer: ledger})
	defer alloc.Close()

	for i := 0; i < 5; i++ {
		if _, err := alloc.Admit(provision.AdmitRequest{
			Req: req, Src: 0, Demand: 10, TTL: 10 * time.Millisecond,
			Tag: fmt.Sprintf("lease%d", i), Alg: heuristicAlg,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if len(ledger.Loads()) == 0 {
		t.Fatal("ledger empty while leases active")
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(alloc.Tenants()) == 0 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if n := len(alloc.Tenants()); n != 0 {
		t.Fatalf("%d tenants still active after TTL deadline", n)
	}
	if got := ledger.Loads(); len(got) != 0 {
		t.Fatalf("ledger after all leases expired = %v, want empty", got)
	}
}

// --- planner ----------------------------------------------------------------

// admitConcentrated drives the concentrate scenario: smalls then bigs, all
// landing on the fat path (the heuristic picks the widest path and the fat
// path stays widest throughout — asserted, not assumed).
func admitConcentrated(t *testing.T, alloc *provision.Allocator, req *require.Requirement, alts int) (smalls []uint64) {
	t.Helper()
	for i := 0; i < alts; i++ {
		tkt, err := alloc.Admit(provision.AdmitRequest{
			Req: req, Src: 0, Demand: int64(16 + i%8), Tag: fmt.Sprintf("small%d", i),
			Alg: heuristicAlg,
		})
		if err != nil {
			t.Fatalf("small %d: %v", i, err)
		}
		smalls = append(smalls, tkt.ID)
	}
	for i := 0; i < 7; i++ {
		tkt, err := alloc.Admit(provision.AdmitRequest{
			Req: req, Src: 0, Demand: 120, Tag: fmt.Sprintf("big%d", i),
			Alg: heuristicAlg,
		})
		if err != nil {
			t.Fatalf("big %d: %v", i, err)
		}
		if _, hasHub := tkt.Reservations()[Link{0, 1}]; !hasHub {
			t.Fatalf("big %d avoided the fat path: %v", i, tkt.Reservations())
		}
	}
	return smalls
}

// The tentpole end-to-end property: traffic concentrates on the fat path,
// the detector flags it after the sustain guard, the planner migrates the
// cheapest tenants onto the parallel alts, the hot link drops below the
// threshold, no link ever exceeds the pre-migration maximum, and the whole
// recorded log replays to a byte-identical residual.
func TestPlannerRelievesHotspot(t *testing.T) {
	const alts = 4
	ov, req, _ := concentrateOverlay(t, alts)
	ledger := NewLedger(ov, nil)
	alloc := provision.NewAllocator(ov, provision.AllocatorOptions{Observer: ledger})
	defer alloc.Close()
	admitConcentrated(t, alloc, req, alts)

	hub := Link{0, 1}
	preUtil := ledger.Utilization(hub)
	if preUtil < 0.85 {
		t.Fatalf("scenario did not concentrate: hub at %.2f, want >= 0.85", preUtil)
	}

	p := NewPlanner(alloc, ledger, ov, PlannerConfig{
		Detector: DetectorConfig{HotThreshold: 0.85, Sustain: 2},
	})
	var migrations int
	var lastPre, lastPost float64
	for step := 0; step < 10; step++ {
		rep := p.Step()
		if rep.PostMax > rep.PreMax+1e-9 {
			t.Fatalf("step %d regressed the objective: pre %.4f post %.4f", step, rep.PreMax, rep.PostMax)
		}
		migrations += rep.Migrations
		lastPre, lastPost = rep.PreMax, rep.PostMax
		if step >= 1 && rep.Migrations == 0 {
			break
		}
	}
	_ = lastPre
	if migrations == 0 {
		t.Fatal("planner committed no migrations off the hot link")
	}
	if got := ledger.Utilization(hub); got >= 0.85 {
		t.Fatalf("hub still hot after planning: %.4f", got)
	}
	if lastPost > preUtil+1e-9 {
		t.Fatalf("final max utilization %.4f above original %.4f", lastPost, preUtil)
	}
	// No new hotspots: every link ends below the hot threshold and below the
	// original maximum.
	for _, ll := range ledger.Links() {
		if u := ll.Utilization(); u >= 0.85 || u > preUtil+1e-9 {
			t.Fatalf("hotspot on %d->%d after planning: %.4f (pre max %.4f)", ll.From, ll.To, u, preUtil)
		}
	}
	// Ledger still agrees with the ground truth after all the churn.
	if got, want := ledger.Loads(), recount(alloc); !reflect.DeepEqual(got, want) {
		t.Fatalf("ledger %v != recount %v", got, want)
	}
	// Class counters recorded the migrations.
	if cc := alloc.ClassCounters(); cc[0].Migrated != int64(migrations) {
		t.Fatalf("Migrated counter = %d, want %d", cc[0].Migrated, migrations)
	}

	// The serialization log — admissions plus session-solved migrations —
	// must replay against a pristine overlay to the exact same residual,
	// with migrations rebuilt by the stateless masked algorithm.
	replayed, err := provision.Replay(ov, provision.AllocatorOptions{}, alloc.Log(), replayAlgFor)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if got, want := sortedLinks(replayed.Residual()), sortedLinks(alloc.Residual()); !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed residual diverged:\n got %v\nwant %v", got, want)
	}
	if got, want := replayed.Tenants(), alloc.Tenants(); !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed tenants diverged:\n got %v\nwant %v", got, want)
	}
}

// A gate that always vetoes must leave the residual, the ledger and the log
// untouched — the exact-rollback path.
func TestMigrateVetoRollsBackExactly(t *testing.T) {
	ov, req, _ := concentrateOverlay(t, 2)
	ledger := NewLedger(ov, nil)
	alloc := provision.NewAllocator(ov, provision.AllocatorOptions{Observer: ledger})
	defer alloc.Close()

	tkt, err := alloc.Admit(provision.AdmitRequest{Req: req, Src: 0, Demand: 40, Tag: "t", Alg: heuristicAlg})
	if err != nil {
		t.Fatal(err)
	}
	before := sortedLinks(alloc.Residual())
	loadsBefore := ledger.Loads()
	logBefore := len(alloc.Log())

	veto := func(old, next map[Link]provision.Reservation) error {
		return errors.New("never")
	}
	_, err = alloc.Migrate(tkt.ID, maskedAlg(0, 1), veto, "reopt:0-1")
	if !errors.Is(err, provision.ErrVetoed) {
		t.Fatalf("err = %v, want ErrVetoed", err)
	}
	if got := sortedLinks(alloc.Residual()); !reflect.DeepEqual(got, before) {
		t.Fatalf("vetoed migration mutated residual:\n got %v\nwant %v", got, before)
	}
	if got := ledger.Loads(); !reflect.DeepEqual(got, loadsBefore) {
		t.Fatalf("vetoed migration reached the ledger: %v != %v", got, loadsBefore)
	}
	if got := len(alloc.Log()); got != logBefore {
		t.Fatalf("vetoed migration was logged (%d events, want %d)", got, logBefore)
	}
	// The ticket is still releasable — the original placement survived.
	if err := alloc.Release(tkt.ID); err != nil {
		t.Fatal(err)
	}
	if got := ledger.Loads(); len(got) != 0 {
		t.Fatalf("ledger after release = %v, want empty", got)
	}
}

// Migrating an unknown or departed ticket must fail with ErrNoTicket.
func TestMigrateNoTicket(t *testing.T) {
	ov, req, _ := concentrateOverlay(t, 2)
	alloc := provision.NewAllocator(ov, provision.AllocatorOptions{})
	defer alloc.Close()
	if _, err := alloc.Migrate(99, heuristicAlg, nil, "x"); !errors.Is(err, provision.ErrNoTicket) {
		t.Fatalf("err = %v, want ErrNoTicket", err)
	}
	tkt, err := alloc.Admit(provision.AdmitRequest{Req: req, Src: 0, Demand: 10, Alg: heuristicAlg})
	if err != nil {
		t.Fatal(err)
	}
	if err := alloc.Release(tkt.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := alloc.Migrate(tkt.ID, heuristicAlg, nil, "x"); !errors.Is(err, provision.ErrNoTicket) {
		t.Fatalf("err after release = %v, want ErrNoTicket", err)
	}
}
