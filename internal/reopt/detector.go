package reopt

import (
	"sort"
	"sync"
)

// DetectorConfig tunes congestion detection. The zero value is usable:
// threshold 0.9, clear threshold 0.72 (0.8×hot), sustain 2.
type DetectorConfig struct {
	// HotThreshold is the utilization (Load/Capacity) at or above which a
	// link counts toward congestion. <=0 defaults to 0.9.
	HotThreshold float64
	// ClearThreshold is the utilization strictly below which a hot link is
	// declared cold again. <=0 defaults to 0.8×HotThreshold. The gap between
	// the two thresholds is the hysteresis band: a link inside it keeps its
	// previous state instead of flapping.
	ClearThreshold float64
	// Sustain is how many consecutive Observe calls a link must spend at or
	// above HotThreshold before it is declared hot — a guard against
	// transient spikes. <=0 defaults to 2 (1 means immediate).
	Sustain int
}

// withDefaults resolves zero fields to their documented defaults.
func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.HotThreshold <= 0 {
		c.HotThreshold = 0.9
	}
	if c.ClearThreshold <= 0 {
		c.ClearThreshold = 0.8 * c.HotThreshold
	}
	if c.ClearThreshold > c.HotThreshold {
		c.ClearThreshold = c.HotThreshold
	}
	if c.Sustain <= 0 {
		c.Sustain = 2
	}
	return c
}

// Detector is the hysteresis congestion detector. It is deterministic: the
// same sequence of Observe inputs yields the same sequence of hot sets. One
// goroutine at a time drives Observe (the planner's step loop); Hot may be
// read concurrently (the daemon's links RPC does).
type Detector struct {
	mu     sync.Mutex
	cfg    DetectorConfig
	streak map[Link]int
	hot    map[Link]bool
}

// NewDetector builds a detector with cfg's (defaulted) thresholds.
func NewDetector(cfg DetectorConfig) *Detector {
	return &Detector{
		cfg:    cfg.withDefaults(),
		streak: make(map[Link]int),
		hot:    make(map[Link]bool),
	}
}

// Config returns the resolved (defaulted) configuration.
func (d *Detector) Config() DetectorConfig { return d.cfg }

// Observe feeds one epoch of link accounts and returns the links considered
// hot after this observation, sorted by utilization descending (ties by
// (From, To) ascending). A link at or above HotThreshold for Sustain
// consecutive observations turns hot; it stays hot until an observation
// strictly below ClearThreshold; in between it holds its previous state.
func (d *Detector) Observe(links []LinkLoad) []LinkLoad {
	d.mu.Lock()
	defer d.mu.Unlock()
	seen := make(map[Link]LinkLoad, len(links))
	for _, ll := range links {
		link := Link{ll.From, ll.To}
		seen[link] = ll
		u := ll.Utilization()
		switch {
		case u >= d.cfg.HotThreshold:
			d.streak[link]++
			if d.streak[link] >= d.cfg.Sustain {
				d.hot[link] = true
			}
		case u < d.cfg.ClearThreshold:
			delete(d.streak, link)
			delete(d.hot, link)
		default:
			// Hysteresis band: reset the sustain streak (the link is no
			// longer at the hot threshold) but keep an already-hot link hot.
			delete(d.streak, link)
		}
	}
	// A link absent from this observation carries no traffic anymore; forget
	// its state so the maps do not grow with churned links.
	for link := range d.hot {
		if _, ok := seen[link]; !ok {
			delete(d.hot, link)
		}
	}
	for link := range d.streak {
		if _, ok := seen[link]; !ok {
			delete(d.streak, link)
		}
	}
	out := make([]LinkLoad, 0, len(d.hot))
	for link := range d.hot {
		out = append(out, seen[link])
	}
	sort.Slice(out, func(i, j int) bool {
		ui, uj := out[i].Utilization(), out[j].Utilization()
		if ui != uj {
			return ui > uj
		}
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// Hot reports whether link is currently considered hot. Safe to call
// concurrently with Observe.
func (d *Detector) Hot(link Link) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.hot[link]
}
