// Package reopt closes the loop the paper calls agile federation: admitted
// service flows generate per-link traffic, traffic concentrates into hot
// links, and a planner live-migrates the cheapest tenants off each hot link
// onto residual parallel capacity — with a before/after global-objective
// check so a migration can never trade one hotspot for a new one.
//
// The package is three pieces wired in sequence:
//
//   - Ledger: per-link traffic accounting, folded from the allocator's
//     committed admissions via the provision.Observer hooks. After any
//     interleaving of admits, releases, preemptions, expiries and migrations
//     it deep-equals a from-scratch recount of the active reservations (the
//     property tests pin exactly that).
//   - Detector: utilization-threshold congestion detection with hysteresis —
//     a link must stay at or above the hot threshold for Sustain consecutive
//     observations to be declared hot, and must drop below a lower clear
//     threshold to be declared cold again, so a link oscillating around the
//     boundary does not flap the planner.
//   - Planner: per hot link, re-federates the cheapest tenants crossing it
//     with the hot link masked out of a private session.Session view
//     (qos.Incremental recomputes only the rows the mask dirties), and
//     commits each migration only if the gate proves no link ends above the
//     pre-migration maximum utilization. A vetoed or infeasible trial rolls
//     back through the allocator's exact-restore path.
package reopt

import (
	"sort"
	"sync"

	"sflow/internal/metrics"
	"sflow/internal/overlay"
	"sflow/internal/provision"
)

// Link identifies one directed overlay link by its endpoints.
type Link = [2]int

// LinkLoad is the point-in-time traffic account of one overlay link.
type LinkLoad struct {
	From, To int
	// Capacity is the link's pristine bandwidth; Load the bandwidth admitted
	// tenants currently hold on it; Latency the link's propagation latency.
	Capacity, Load, Latency int64
	// Tenants counts the admitted tenants with a reservation on this link.
	Tenants int
}

// Utilization is Load/Capacity (0 for a link without capacity).
func (l LinkLoad) Utilization() float64 {
	if l.Capacity <= 0 {
		return 0
	}
	return float64(l.Load) / float64(l.Capacity)
}

// TenantShare is one tenant's bandwidth hold on one link.
type TenantShare struct {
	Ticket uint64
	Amount int64
}

// capInfo is a boot link's immutable capacity and latency.
type capInfo struct {
	capacity, latency int64
}

// Ledger is the per-link traffic account over one boot overlay. Install it as
// the allocator's Observer and it folds every committed admission, departure
// and migration into per-link loads, in the exact serialization order of the
// writer loop. All methods are safe for concurrent use.
type Ledger struct {
	mu      sync.Mutex
	caps    map[Link]capInfo
	order   []Link // boot links sorted (From, To) — the Links() iteration order
	load    map[Link]int64
	tenants map[uint64]map[Link]int64

	updates *metrics.Counter
	maxUtil *metrics.Gauge
}

// NewLedger builds a ledger over the boot overlay's links. reg may be nil.
// Links admitted flows cross must exist in boot — the allocator reserves
// against a residual clone of the same overlay, so they always do.
func NewLedger(boot *overlay.Overlay, reg *metrics.Registry) *Ledger {
	links := boot.Links()
	l := &Ledger{
		caps:    make(map[Link]capInfo, len(links)),
		order:   make([]Link, 0, len(links)),
		load:    make(map[Link]int64, len(links)),
		tenants: make(map[uint64]map[Link]int64),
		updates: reg.Counter("reopt_ledger_updates_total"),
	}
	for _, lk := range links {
		key := Link{lk.From, lk.To}
		l.caps[key] = capInfo{capacity: lk.Bandwidth, latency: lk.Latency}
		l.order = append(l.order, key)
	}
	sort.Slice(l.order, func(i, j int) bool {
		if l.order[i][0] != l.order[j][0] {
			return l.order[i][0] < l.order[j][0]
		}
		return l.order[i][1] < l.order[j][1]
	})
	if reg != nil {
		// Max utilization is a point-in-time reading; keep it out of the
		// stable snapshot like every other gauge.
		l.maxUtil = reg.Gauge("reopt_max_utilization_pct", metrics.Volatile())
	}
	return l
}

// TenantAdmitted implements provision.Observer.
func (l *Ledger) TenantAdmitted(t *provision.Ticket) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.apply(t.ID, t.Reservations())
}

// TenantDeparted implements provision.Observer.
func (l *Ledger) TenantDeparted(t *provision.Ticket, _ provision.EventKind) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.remove(t.ID)
}

// TenantMigrated implements provision.Observer.
func (l *Ledger) TenantMigrated(old, fresh *provision.Ticket) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.remove(old.ID)
	l.apply(fresh.ID, fresh.Reservations())
}

// apply books one tenant's reservations (caller holds mu).
func (l *Ledger) apply(id uint64, res map[Link]provision.Reservation) {
	amounts := make(map[Link]int64, len(res))
	for link, r := range res {
		amounts[link] = r.Amount
		l.load[link] += r.Amount
	}
	l.tenants[id] = amounts
	l.updates.Inc()
	l.observeLocked()
}

// remove unbooks one tenant (caller holds mu). Unknown IDs are a no-op so a
// ledger installed after some admissions already committed stays consistent
// for the tenants it did see.
func (l *Ledger) remove(id uint64) {
	amounts, ok := l.tenants[id]
	if !ok {
		return
	}
	for link, amt := range amounts {
		l.load[link] -= amt
		if l.load[link] == 0 {
			delete(l.load, link)
		}
	}
	delete(l.tenants, id)
	l.updates.Inc()
	l.observeLocked()
}

// observeLocked refreshes the max-utilization gauge (caller holds mu).
func (l *Ledger) observeLocked() {
	if l.maxUtil == nil {
		return
	}
	var max float64
	for link, load := range l.load {
		if c := l.caps[link]; c.capacity > 0 {
			if u := float64(load) / float64(c.capacity); u > max {
				max = u
			}
		}
	}
	l.maxUtil.Set(int64(max * 100))
}

// Loads returns a copy of the current per-link loads (zero-load links are
// absent).
func (l *Ledger) Loads() map[Link]int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[Link]int64, len(l.load))
	for link, load := range l.load {
		out[link] = load
	}
	return out
}

// Links returns every boot link's current account, sorted by (From, To).
func (l *Ledger) Links() []LinkLoad {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]LinkLoad, 0, len(l.order))
	for _, link := range l.order {
		c := l.caps[link]
		ll := LinkLoad{From: link[0], To: link[1],
			Capacity: c.capacity, Latency: c.latency, Load: l.load[link]}
		for _, amounts := range l.tenants {
			if _, ok := amounts[link]; ok {
				ll.Tenants++
			}
		}
		out = append(out, ll)
	}
	return out
}

// Capacity returns a boot link's pristine bandwidth and latency; ok is false
// for a link the boot overlay never had.
func (l *Ledger) Capacity(link Link) (capacity, latency int64, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	c, ok := l.caps[link]
	return c.capacity, c.latency, ok
}

// Utilization returns one link's current Load/Capacity.
func (l *Ledger) Utilization(link Link) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	c := l.caps[link]
	if c.capacity <= 0 {
		return 0
	}
	return float64(l.load[link]) / float64(c.capacity)
}

// TenantLoads returns a copy of one tenant's per-link holds (nil if the
// ledger does not know the ticket).
func (l *Ledger) TenantLoads(id uint64) map[Link]int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	amounts, ok := l.tenants[id]
	if !ok {
		return nil
	}
	out := make(map[Link]int64, len(amounts))
	for link, amt := range amounts {
		out[link] = amt
	}
	return out
}

// TenantsOn lists the tenants holding bandwidth on link, cheapest first
// (ascending amount, ascending ticket ID within equal amounts) — the order
// the planner tries migration candidates in.
func (l *Ledger) TenantsOn(link Link) []TenantShare {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []TenantShare
	for id, amounts := range l.tenants {
		if amt, ok := amounts[link]; ok {
			out = append(out, TenantShare{Ticket: id, Amount: amt})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Amount != out[j].Amount {
			return out[i].Amount < out[j].Amount
		}
		return out[i].Ticket < out[j].Ticket
	})
	return out
}
