package reopt

import (
	"fmt"
	"testing"

	"sflow/internal/abstract"
	"sflow/internal/provision"
	"sflow/internal/reduce"
)

// BenchmarkPlannerMigration prices one committed live migration end to end:
// the session-masked re-solve (ledger diff → incremental flush → abstract →
// reduce) plus the allocator's release/re-admit swap on the writer loop. The
// tenant ping-pongs between the fat path and an alt by masking whichever
// first-hop link it currently uses, so every iteration commits exactly one
// migration against steady background load. Gated by results/BENCH_reopt.json
// (make reopt-check).
func BenchmarkPlannerMigration(b *testing.B) {
	const alts = 4
	ov, req, _ := concentrateOverlay(b, alts)
	ledger := NewLedger(ov, nil)
	alloc := provision.NewAllocator(ov, provision.AllocatorOptions{Observer: ledger})
	defer alloc.Close()

	// Background tenants so the ledger diffs are non-trivial.
	for i := 0; i < 5; i++ {
		if _, err := alloc.Admit(provision.AdmitRequest{
			Req: req, Src: 0, Demand: 60, Tag: fmt.Sprintf("bg%d", i), Alg: heuristicAlg,
		}); err != nil {
			b.Fatal(err)
		}
	}
	mover, err := alloc.Admit(provision.AdmitRequest{Req: req, Src: 0, Demand: 40, Tag: "mover", Alg: heuristicAlg})
	if err != nil {
		b.Fatal(err)
	}
	p := NewPlanner(alloc, ledger, ov, PlannerConfig{Workers: 1})

	// firstHop finds the link the mover currently leaves the source on — the
	// link to mask so the next solve must re-place it elsewhere.
	firstHop := func(t *provision.Ticket) Link {
		for link := range t.Reservations() {
			if link[0] == 0 {
				return link
			}
		}
		b.Fatal("mover has no first-hop reservation")
		return Link{}
	}

	cur := mover
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hot := firstHop(cur)
		fresh, err := alloc.Migrate(cur.ID, p.algorithm(hot, cur.ID), nil,
			fmt.Sprintf("reopt:%d-%d", hot[0], hot[1]))
		if err != nil {
			b.Fatal(err)
		}
		cur = fresh
	}
}

// BenchmarkReoptCalibration is the machine-speed proxy the regression gate
// normalizes BenchmarkPlannerMigration against (benchjson -normalize): one
// stateless abstract build + reduce solve on the same topology, no planner
// machinery involved.
func BenchmarkReoptCalibration(b *testing.B) {
	ov, req, _ := concentrateOverlay(b, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ag, err := abstract.Build(ov, req)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := reduce.Solve(ag, 0, nil); err != nil {
			b.Fatal(err)
		}
	}
}
