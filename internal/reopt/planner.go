package reopt

import (
	"errors"
	"fmt"

	"sflow/internal/metrics"
	"sflow/internal/overlay"
	"sflow/internal/provision"
	"sflow/internal/qos"
	"sflow/internal/reduce"
	"sflow/internal/require"
	"sflow/internal/session"

	"sflow/internal/flow"
)

// PlannerConfig tunes a re-federation planner. The zero value is usable.
type PlannerConfig struct {
	// Detector configures the hysteresis congestion detector.
	Detector DetectorConfig
	// MaxMovesPerLink caps how many migrations one Step may commit off one
	// hot link. <=0 defaults to 8.
	MaxMovesPerLink int
	// Workers bounds the private session's incremental-recompute fan-out
	// (see session.Options.Workers).
	Workers int
	// Lazy runs the mirror session demand-driven (session.Options.Lazy): no
	// all-pairs computation when the planner is built, and link mutations
	// between candidates evict rows instead of recomputing them. Candidate
	// re-federations read the same answers either way; this exists so a
	// planner over a 10k–100k-node overlay costs nothing until a hotspot
	// actually fires.
	Lazy bool
	// MaxRows bounds the mirror session's resident row cache in Lazy mode
	// (see session.Options.MaxRows). <= 0 means unbounded.
	MaxRows int
	// Metrics, when non-nil, receives planner counters
	// (reopt_migrations_total, reopt_vetoes_total, reopt_failures_total,
	// reopt_steps_total).
	Metrics *metrics.Registry
}

// withDefaults resolves zero fields to their documented defaults.
func (c PlannerConfig) withDefaults() PlannerConfig {
	if c.MaxMovesPerLink <= 0 {
		c.MaxMovesPerLink = 8
	}
	return c
}

// StepReport is the outcome of one planner step.
type StepReport struct {
	// Hot is the detector's hot set at the start of the step (utilization
	// descending).
	Hot []LinkLoad
	// Migrations counts committed re-placements; Vetoes gate rejections
	// (rolled back); Failures infeasible re-federations (rolled back).
	Migrations, Vetoes, Failures int
	// PreMax and PostMax are the maximum link utilization before and after
	// the step. The gate guarantees PostMax <= PreMax (up to float noise).
	PreMax, PostMax float64
}

// Planner is the re-federation planner: it watches the ledger through a
// hysteresis detector and, per hot link, live-migrates the cheapest admitted
// tenants crossing it onto residual parallel capacity.
//
// Re-placement candidates are solved against a private session.Session that
// mirrors "pristine capacity minus everyone else's load, hot link masked
// out": between candidates only the links whose load actually changed are
// mutated, so qos.Incremental recomputes exactly the dirtied rows instead of
// rebuilding the table. The allocator's Manager re-validates every proposed
// flow against the true residual before it commits, so a stale mirror can
// only cost a failed (exactly rolled back) migration, never a broken
// reservation.
//
// A Planner is not safe for concurrent use: Step must be called from one
// goroutine at a time, and the allocator's writer loop must not be the
// caller (Step calls Allocator.Migrate, which would deadlock from an
// Observer). All session access happens inside the algorithm and gate
// closures, which the allocator serializes on its writer loop while Step
// blocks — one goroutine at a time, never two.
type Planner struct {
	alloc  *provision.Allocator
	ledger *Ledger
	det    *Detector
	cfg    PlannerConfig

	// sess mirrors the residual view used for candidate re-federation;
	// applied is the per-link load currently subtracted from it. Both are
	// touched only inside Migrate closures (see above).
	sess    *session.Session
	applied map[Link]int64

	steps, migrations, vetoes, failures *metrics.Counter
}

// NewPlanner builds a planner over the allocator's boot overlay. ledger must
// be installed as the allocator's Observer (and must have seen every
// admission) for candidate selection and the no-regression gate to be exact.
func NewPlanner(alloc *provision.Allocator, ledger *Ledger, boot *overlay.Overlay, cfg PlannerConfig) *Planner {
	cfg = cfg.withDefaults()
	reg := cfg.Metrics
	return &Planner{
		alloc:  alloc,
		ledger: ledger,
		det:    NewDetector(cfg.Detector),
		cfg:    cfg,
		sess: session.New(boot, session.Options{
			Workers: cfg.Workers, Lazy: cfg.Lazy,
			MaxRows: cfg.MaxRows, Metrics: cfg.Metrics,
		}),
		applied:    make(map[Link]int64),
		steps:      reg.Counter("reopt_steps_total"),
		migrations: reg.Counter("reopt_migrations_total"),
		vetoes:     reg.Counter("reopt_vetoes_total"),
		failures:   reg.Counter("reopt_failures_total"),
	}
}

// Detector exposes the planner's detector (for status RPCs).
func (p *Planner) Detector() *Detector { return p.det }

// maxUtil is the global objective: the maximum link utilization.
func maxUtil(links []LinkLoad) float64 {
	var max float64
	for _, ll := range links {
		if u := ll.Utilization(); u > max {
			max = u
		}
	}
	return max
}

// Step runs one observe→detect→migrate pass: feed the ledger to the
// detector, then for each hot link (hottest first) migrate the cheapest
// tenants crossing it — each attempt gated by the no-regression check —
// until the link drops below the hot threshold, candidates run out, or
// MaxMovesPerLink is reached. Deterministic for a deterministic ledger
// state.
func (p *Planner) Step() StepReport {
	p.steps.Inc()
	links := p.ledger.Links()
	rep := StepReport{Hot: p.det.Observe(links), PreMax: maxUtil(links)}
	for _, h := range rep.Hot {
		link := Link{h.From, h.To}
		tried := make(map[uint64]bool)
		moves := 0
		for moves < p.cfg.MaxMovesPerLink &&
			p.ledger.Utilization(link) >= p.det.cfg.HotThreshold {
			var cand *TenantShare
			for _, c := range p.ledger.TenantsOn(link) {
				if !tried[c.Ticket] {
					cand = &c
					break
				}
			}
			if cand == nil {
				break // every tenant on the link was tried and stuck
			}
			tried[cand.Ticket] = true
			tag := fmt.Sprintf("reopt:%d-%d", link[0], link[1])
			_, err := p.alloc.Migrate(cand.Ticket,
				p.algorithm(link, cand.Ticket), p.gate(link), tag)
			switch {
			case err == nil:
				rep.Migrations++
				moves++
				p.migrations.Inc()
			case errors.Is(err, provision.ErrVetoed):
				rep.Vetoes++
				p.vetoes.Inc()
			default:
				rep.Failures++
				p.failures.Inc()
			}
		}
	}
	rep.PostMax = maxUtil(p.ledger.Links())
	return rep
}

// algorithm builds the provision.Algorithm for re-placing candidate cand off
// hot. It runs on the allocator's writer loop, after the candidate's old
// reservations were released from the residual but before the ledger heard
// about it — so "ledger loads minus the candidate's own" is exactly the load
// the residual carries at that instant. The closure syncs the private
// session to that view, masks the hot link out, and solves with the
// reduction solver (widest-then-shortest), so the chosen placement avoids
// the hot link by construction.
func (p *Planner) algorithm(hot Link, cand uint64) provision.Algorithm {
	return func(_ *overlay.Overlay, req *require.Requirement, src int) (*flow.Graph, qos.Metric, error) {
		target := p.ledger.Loads()
		for link, amt := range p.ledger.TenantLoads(cand) {
			if target[link] -= amt; target[link] == 0 {
				delete(target, link)
			}
		}
		if err := p.syncSession(target); err != nil {
			return nil, qos.Metric{}, err
		}
		// Mask the hot link for this one solve.
		capBW, lat, ok := p.ledger.Capacity(hot)
		hotRes := capBW - target[hot]
		masked := ok && hotRes > 0
		if masked {
			if err := p.sess.RemoveLink(hot[0], hot[1]); err != nil {
				return nil, qos.Metric{}, err
			}
		}
		unmask := func() error {
			if !masked {
				return nil
			}
			return p.sess.AddLink(hot[0], hot[1], hotRes, lat)
		}
		ag, err := p.sess.Abstract(req)
		if err != nil {
			if uerr := unmask(); uerr != nil {
				return nil, qos.Metric{}, uerr
			}
			return nil, qos.Metric{}, err
		}
		r, err := reduce.Solve(ag, src, nil)
		if uerr := unmask(); uerr != nil {
			return nil, qos.Metric{}, uerr
		}
		if err != nil {
			return nil, qos.Metric{}, err
		}
		return r.Flow, r.Metric, nil
	}
}

// syncSession mutates the private session from its currently-applied load
// view to target: for each link whose load changed, the session's residual
// bandwidth (pristine capacity minus load) is grown, reduced, removed or
// re-added. Only changed links emit events, so the incremental table
// recomputes only their dirty rows.
func (p *Planner) syncSession(target map[Link]int64) error {
	for link, old := range p.applied {
		if _, ok := target[link]; !ok && old != 0 {
			if err := p.syncLink(link, old, 0); err != nil {
				return err
			}
		}
	}
	for link, want := range target {
		if old := p.applied[link]; old != want {
			if err := p.syncLink(link, old, want); err != nil {
				return err
			}
		}
	}
	p.applied = target
	return nil
}

// syncLink moves one link's subtracted load from old to want.
func (p *Planner) syncLink(link Link, old, want int64) error {
	capBW, lat, ok := p.ledger.Capacity(link)
	if !ok {
		return fmt.Errorf("reopt: load on unknown link %d->%d", link[0], link[1])
	}
	oldRes, newRes := capBW-old, capBW-want
	switch {
	case oldRes > 0 && newRes > 0:
		if newRes > oldRes {
			return p.sess.GrowLinkBandwidth(link[0], link[1], newRes-oldRes)
		}
		return p.sess.ReduceLinkBandwidth(link[0], link[1], oldRes-newRes)
	case oldRes > 0: // saturated away: reduce to zero removes the link
		return p.sess.ReduceLinkBandwidth(link[0], link[1], oldRes)
	case newRes > 0: // was saturated, load shrank: re-create the link
		return p.sess.AddLink(link[0], link[1], newRes, lat)
	default:
		return nil // saturated before and after
	}
}

// gate builds the no-regression MigrateGate for a migration off hot. It runs
// on the writer loop with the candidate's departing reservations (old) and
// the trial placement's (next), and simulates the ledger after the swap:
// commit only if no link ends above the pre-migration maximum utilization,
// no previously-cold link crosses the hot threshold, and the hot link itself
// strictly sheds load.
func (p *Planner) gate(hot Link) provision.MigrateGate {
	const eps = 1e-9
	return func(old, next map[Link]provision.Reservation) error {
		pre := p.ledger.Loads() // still includes the candidate's old holds
		post := make(map[Link]int64, len(pre)+len(next))
		for link, load := range pre {
			post[link] = load
		}
		for link, r := range old {
			post[link] -= r.Amount
		}
		for link, r := range next {
			post[link] += r.Amount
		}
		preMax := 0.0
		for link, load := range pre {
			if u := p.utilOf(link, load); u > preMax {
				preMax = u
			}
		}
		hotTh := p.det.cfg.HotThreshold
		for link, load := range post {
			u := p.utilOf(link, load)
			if u > preMax+eps {
				return fmt.Errorf("link %d->%d would reach %.1f%% > pre-migration max %.1f%%",
					link[0], link[1], 100*u, 100*preMax)
			}
			if preU := p.utilOf(link, pre[link]); u >= hotTh && preU < hotTh {
				return fmt.Errorf("link %d->%d would become a new hotspot (%.1f%%)",
					link[0], link[1], 100*u)
			}
		}
		if post[hot] >= pre[hot] {
			return fmt.Errorf("hot link %d->%d not relieved (%d -> %d)",
				hot[0], hot[1], pre[hot], post[hot])
		}
		return nil
	}
}

// utilOf computes load/capacity for one link (0 for unknown links).
func (p *Planner) utilOf(link Link, load int64) float64 {
	capBW, _, ok := p.ledger.Capacity(link)
	if !ok || capBW <= 0 {
		return 0
	}
	return float64(load) / float64(capBW)
}
