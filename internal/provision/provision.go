// Package provision admits successive federation requests over one shared
// service overlay, maintaining residual link bandwidth — the
// "resource-efficient" half of the paper's title taken to its operational
// conclusion. Every admitted flow graph reserves its demanded bandwidth on
// each overlay link its streams cross; saturated links disappear from the
// residual overlay, so later requests see only what is left. Comparing how
// many requests each federation algorithm can admit measures how frugally it
// spends the network.
package provision

import (
	"errors"
	"fmt"

	"sflow/internal/flow"
	"sflow/internal/metrics"
	"sflow/internal/overlay"
	"sflow/internal/qos"
	"sflow/internal/require"
)

// ErrRejected is returned when a request cannot be admitted with its
// demanded bandwidth.
var ErrRejected = errors.New("provision: request rejected")

// RejectReason is the machine-readable cause carried by an AdmissionError.
type RejectReason string

// The rejection reasons an admission can fail with.
const (
	// ReasonQuota: the request's priority class is at its concurrent-
	// admission quota (Allocator only).
	ReasonQuota RejectReason = "quota"
	// ReasonCompute: the source instance is at its compute capacity.
	ReasonCompute RejectReason = "compute"
	// ReasonNoFlow: the federation algorithm found no feasible flow graph
	// on the residual overlay.
	ReasonNoFlow RejectReason = "no-flow"
	// ReasonBandwidth: a flow graph exists but cannot sustain the demanded
	// bandwidth (bottleneck too narrow, or the request's own streams
	// jointly oversubscribe a link).
	ReasonBandwidth RejectReason = "bandwidth"
)

// AdmissionError is the typed rejection every admission failure returns: it
// wraps ErrRejected (errors.Is keeps working) and adds a machine-readable
// Reason plus the rejected request's priority class, so callers and wire
// protocols can react to *why* a request bounced without parsing text.
type AdmissionError struct {
	Reason RejectReason
	// Class is the rejected request's priority class (0 outside an
	// Allocator, which stamps it).
	Class int
	// Detail is the human-readable specifics.
	Detail string
}

func (e *AdmissionError) Error() string {
	return fmt.Sprintf("%v (%s): %s", ErrRejected, e.Reason, e.Detail)
}

// Unwrap makes errors.Is(err, ErrRejected) hold for every AdmissionError.
func (e *AdmissionError) Unwrap() error { return ErrRejected }

// Algorithm federates a requirement over (the residual) overlay from a
// source instance. The facade's Heuristic/Fixed/... functions have this
// shape; the distributed Federate is adapted trivially.
type Algorithm func(ov *overlay.Overlay, req *require.Requirement, src int) (*flow.Graph, qos.Metric, error)

// Admission records one accepted request.
type Admission struct {
	Req    *require.Requirement
	Flow   *flow.Graph
	Metric qos.Metric
	Demand int64

	// reserved maps each (from, to) link to the bandwidth this admission
	// holds on it and the link's latency (needed to re-create a link that
	// saturated away when the admission is released).
	reserved map[[2]int]Reservation
	released bool
}

// Reservation is one admission's hold on one link: the bandwidth amount it
// reserves and the link's latency (kept so a link that saturated away can be
// re-created exactly on release).
type Reservation struct {
	Amount  int64
	Latency int64
}

// Reservations returns a copy of the admission's per-link holds, keyed by
// (from, to). The copy stays valid after the admission is released — it is
// the raw material for link-load accounting (see internal/reopt).
func (a *Admission) Reservations() map[[2]int]Reservation {
	out := make(map[[2]int]Reservation, len(a.reserved))
	for link, r := range a.reserved {
		out[link] = r
	}
	return out
}

// Manager tracks the residual overlay across admissions.
type Manager struct {
	residual *overlay.Overlay
	admitted []*Admission
	// capacity bounds how many concurrent admissions an instance may serve
	// (0 = unlimited); inUse counts the active admissions per instance.
	capacity int
	inUse    map[int]int
	// totalBW is the aggregate link bandwidth of the pristine overlay and
	// reservedBW the bandwidth currently held by admissions — together the
	// residual-utilization ratio behind the metrics histogram.
	totalBW    int64
	reservedBW int64
	metrics    *metrics.Registry
}

// NewManager starts provisioning on a copy of the given overlay; the
// original is never modified.
func NewManager(ov *overlay.Overlay) *Manager {
	return NewManagerMetrics(ov, nil)
}

// NewManagerMetrics is NewManager with instrumentation into reg (nil reg
// disables it): admissions, rejections, releases and a residual-bandwidth
// utilization histogram observed after every admission.
func NewManagerMetrics(ov *overlay.Overlay, reg *metrics.Registry) *Manager {
	m := &Manager{residual: ov.Clone(), inUse: make(map[int]int), metrics: reg}
	for _, l := range m.residual.Links() {
		m.totalBW += l.Bandwidth
	}
	return m
}

// SetInstanceCapacity bounds the number of concurrent admissions each
// service instance may serve — the computing-resource half of the paper's
// resource model (0 restores unlimited). Instances at capacity are hidden
// from the federation algorithm for subsequent admissions.
func (m *Manager) SetInstanceCapacity(capacity int) { m.capacity = capacity }

// InstanceLoad returns how many active admissions instance nid serves.
func (m *Manager) InstanceLoad(nid int) int { return m.inUse[nid] }

// Residual returns the live residual overlay (shared, do not modify).
func (m *Manager) Residual() *overlay.Overlay { return m.residual }

// Admitted returns snapshots of the accepted requests in admission order.
// Release takes the live pointer returned by Admit, not these copies: the
// snapshots carry no reservation state (passing one to Release is an error
// rather than a silent corruption of the live books).
func (m *Manager) Admitted() []Admission {
	out := make([]Admission, 0, len(m.admitted))
	for _, a := range m.admitted {
		cp := *a
		// The live reserved map must not leak: a copy aliasing it would let
		// Release(&copy) return bandwidth while the live admission still
		// holds it, double-releasing on the next Release(live).
		cp.reserved = nil
		out = append(out, cp)
	}
	return out
}

// NumAdmitted returns the number of accepted requests.
func (m *Manager) NumAdmitted() int { return len(m.admitted) }

// AggregateDemand returns the total bandwidth demand of all admissions.
func (m *Manager) AggregateDemand() int64 {
	var sum int64
	for _, a := range m.admitted {
		sum += a.Demand
	}
	return sum
}

// Admit federates req over the residual overlay using alg and, if the
// resulting flow graph sustains the demanded bandwidth on every stream,
// reserves that bandwidth along each stream's route. A request is rejected
// with an *AdmissionError — errors.Is(err, ErrRejected) holds, and the
// error's Reason says why — when the algorithm fails on the residual
// overlay or the achieved bottleneck falls short of the demand; rejection
// leaves the residual overlay untouched.
func (m *Manager) Admit(req *require.Requirement, src int, demand int64, alg Algorithm) (*Admission, error) {
	if demand <= 0 {
		return nil, fmt.Errorf("provision: non-positive demand %d", demand)
	}
	view := m.residual
	if m.capacity > 0 {
		if m.inUse[src] >= m.capacity {
			return nil, m.reject(&AdmissionError{Reason: ReasonCompute,
				Detail: fmt.Sprintf("source instance %d at compute capacity", src)})
		}
		view = m.residual.Clone()
		for nid, n := range m.inUse {
			if n >= m.capacity && nid != src {
				if err := view.RemoveInstance(nid); err != nil {
					return nil, err
				}
			}
		}
	}
	fg, metric, err := alg(view, req, src)
	if err != nil {
		return nil, m.reject(&AdmissionError{Reason: ReasonNoFlow, Detail: err.Error()})
	}
	if !metric.Reachable() || metric.Bandwidth < demand {
		return nil, m.reject(&AdmissionError{Reason: ReasonBandwidth,
			Detail: fmt.Sprintf("achievable bandwidth %d below demand %d", metric.Bandwidth, demand)})
	}
	if err := fg.Validate(req, view); err != nil {
		return nil, fmt.Errorf("provision: algorithm returned invalid flow: %w", err)
	}
	// A link crossed by k streams is charged k times; aggregate first so a
	// request whose own streams jointly oversubscribe a link is rejected
	// before anything is reserved (per-stream bottlenecks cannot see this
	// intra-request sharing).
	needs := make(map[[2]int]int64)
	for _, e := range fg.Edges() {
		for i := 0; i+1 < len(e.Path); i++ {
			needs[[2]int{e.Path[i], e.Path[i+1]}] += demand
		}
	}
	reserved := make(map[[2]int]Reservation, len(needs))
	for link, need := range needs {
		cur, ok := m.residual.LinkMetric(link[0], link[1])
		if !ok || cur.Bandwidth < need {
			return nil, m.reject(&AdmissionError{Reason: ReasonBandwidth,
				Detail: fmt.Sprintf("link %d->%d carries %d streams needing %d, has %d",
					link[0], link[1], need/demand, need, cur.Bandwidth)})
		}
		reserved[link] = Reservation{Amount: need, Latency: cur.Latency}
	}
	for link, need := range needs {
		if err := m.residual.ReduceLinkBandwidth(link[0], link[1], need); err != nil {
			return nil, fmt.Errorf("provision: reserve %d on %d->%d: %w",
				need, link[0], link[1], err)
		}
	}
	for _, nid := range fg.Assignment() {
		m.inUse[nid]++
	}
	a := &Admission{Req: req, Flow: fg, Metric: metric, Demand: demand, reserved: reserved}
	m.admitted = append(m.admitted, a)
	for _, need := range needs {
		m.reservedBW += need
	}
	m.metrics.Counter("provision_admitted_total").Inc()
	m.observeUtilization()
	return a, nil
}

// reject counts the rejection (when instrumented) and passes err through.
// Like every metrics call site in this package it relies on the registry's
// nil-safety: a nil *Registry resolves nil handles whose updates are no-ops,
// so uninstrumented managers take this path without guards.
func (m *Manager) reject(err error) error {
	m.metrics.Counter("provision_rejected_total").Inc()
	return err
}

// observeUtilization records the share of the pristine overlay's aggregate
// bandwidth currently reserved, in percent, into a 10-point histogram.
func (m *Manager) observeUtilization() {
	if m.totalBW <= 0 {
		return
	}
	m.metrics.Histogram("provision_utilization_pct", metrics.LinearBounds(10, 10, 10)).
		Observe(m.utilizationPct())
}

// utilizationPct returns the reserved share of the pristine overlay's
// aggregate bandwidth in percent (0 on a bandwidth-less overlay).
func (m *Manager) utilizationPct() int64 {
	if m.totalBW <= 0 {
		return 0
	}
	return m.reservedBW * 100 / m.totalBW
}

// Release returns an admission's reserved bandwidth to the residual overlay
// (the request departed). Pass the pointer Admit returned. Links that
// saturated away are re-created with their original latency. Releasing the
// same admission twice is an error.
func (m *Manager) Release(a *Admission) error {
	if a == nil || a.reserved == nil {
		return fmt.Errorf("provision: release of an admission without reservations")
	}
	if a.released {
		return fmt.Errorf("provision: admission already released")
	}
	a.released = true
	for _, nid := range a.Flow.Assignment() {
		if m.inUse[nid] > 0 {
			m.inUse[nid]--
		}
	}
	for link, r := range a.reserved {
		if _, ok := m.residual.LinkMetric(link[0], link[1]); ok {
			if err := m.residual.GrowLinkBandwidth(link[0], link[1], r.Amount); err != nil {
				return err
			}
			continue
		}
		// The link saturated away: re-create it with the returned
		// capacity.
		if err := m.residual.AddLink(link[0], link[1], r.Amount, r.Latency); err != nil {
			return fmt.Errorf("provision: restore link %d->%d: %w", link[0], link[1], err)
		}
	}
	for _, r := range a.reserved {
		m.reservedBW -= r.Amount
	}
	m.metrics.Counter("provision_released_total").Inc()
	m.observeUtilization()
	return nil
}

// restore is the exact inverse of Release: it re-applies a released
// admission's recorded reservations without re-running the federation
// algorithm. The preemption rollback uses it — when evicting victims did not
// make a high-priority request fit, the victims are restored byte-identically
// (links that re-saturate to zero disappear again, exactly as they were).
// It must only be called on an admission this manager released, while the
// residual still has the released capacity available.
func (m *Manager) restore(a *Admission) error {
	if a == nil || a.reserved == nil || !a.released {
		return fmt.Errorf("provision: restore of an admission that is not released")
	}
	for link, r := range a.reserved {
		cur, ok := m.residual.LinkMetric(link[0], link[1])
		if !ok || cur.Bandwidth < r.Amount {
			return fmt.Errorf("provision: restore %d on %d->%d: capacity no longer available",
				r.Amount, link[0], link[1])
		}
	}
	for link, r := range a.reserved {
		if err := m.residual.ReduceLinkBandwidth(link[0], link[1], r.Amount); err != nil {
			return fmt.Errorf("provision: restore %d on %d->%d: %w", r.Amount, link[0], link[1], err)
		}
		m.reservedBW += r.Amount
	}
	for _, nid := range a.Flow.Assignment() {
		m.inUse[nid]++
	}
	a.released = false
	return nil
}

// AdmitUntilRejected submits up to maxRequests identical requests and stops
// at the first rejection, returning how many were admitted. It is the
// admission-capacity probe used by the evaluation harness.
func (m *Manager) AdmitUntilRejected(req *require.Requirement, src int, demand int64, alg Algorithm, maxRequests int) (int, error) {
	for i := 0; i < maxRequests; i++ {
		if _, err := m.Admit(req, src, demand, alg); err != nil {
			if errors.Is(err, ErrRejected) {
				return i, nil
			}
			return i, err
		}
	}
	return maxRequests, nil
}
