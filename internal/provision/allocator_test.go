package provision

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"sflow/internal/abstract"
	"sflow/internal/flow"
	"sflow/internal/metrics"
	"sflow/internal/overlay"
	"sflow/internal/qos"
	"sflow/internal/reduce"
	"sflow/internal/require"
	"sflow/internal/scenario"
)

// heuristicAlg adapts the deterministic reduction heuristic to the Algorithm
// shape; the oracle tests depend on its determinism.
func heuristicAlg(ov *overlay.Overlay, req *require.Requirement, src int) (*flow.Graph, qos.Metric, error) {
	ag, err := abstract.Build(ov, req)
	if err != nil {
		return nil, qos.Unreachable, err
	}
	r, err := reduce.Solve(ag, src, nil)
	if err != nil {
		return nil, qos.Unreachable, err
	}
	return r.Flow, r.Metric, nil
}

// sortedLinks canonicalizes an overlay's link set for byte-level comparison.
func sortedLinks(ov *overlay.Overlay) []overlay.Link {
	ls := ov.Links()
	sort.Slice(ls, func(i, j int) bool {
		if ls[i].From != ls[j].From {
			return ls[i].From < ls[j].From
		}
		return ls[i].To < ls[j].To
	})
	return ls
}

// --- regression tests for the Manager bugfixes -----------------------------

// An uninstrumented NewManager must reject without panicking (the metrics
// registry is nil-safe by convention; reject relies on it), and every
// rejection must carry a typed machine-readable reason.
func TestRejectionTypedWithoutMetrics(t *testing.T) {
	o, req := chainOverlay(t)
	m := NewManager(o) // no registry: nil *metrics.Registry throughout

	// Bandwidth rejection: no link is 200 wide.
	_, err := m.Admit(req, 10, 200, optimalAlg)
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
	var aerr *AdmissionError
	if !errors.As(err, &aerr) || aerr.Reason != ReasonBandwidth {
		t.Fatalf("err = %#v, want *AdmissionError{ReasonBandwidth}", err)
	}

	// Compute rejection: saturate the source instance's compute capacity.
	m2 := NewManager(o)
	m2.SetInstanceCapacity(1)
	if _, err := m2.Admit(req, 10, 10, optimalAlg); err != nil {
		t.Fatal(err)
	}
	_, err = m2.Admit(req, 10, 10, optimalAlg)
	if !errors.As(err, &aerr) || aerr.Reason != ReasonCompute {
		t.Fatalf("err = %v, want *AdmissionError{ReasonCompute}", err)
	}

	// No-flow rejection: saturate both links away entirely.
	m3 := NewManager(o)
	if _, err := m3.Admit(req, 10, 100, optimalAlg); err != nil {
		t.Fatal(err)
	}
	if _, err := m3.Admit(req, 10, 60, optimalAlg); err != nil {
		t.Fatal(err)
	}
	_, err = m3.Admit(req, 10, 1, optimalAlg)
	if !errors.As(err, &aerr) || aerr.Reason != ReasonNoFlow {
		t.Fatalf("err = %v, want *AdmissionError{ReasonNoFlow}", err)
	}
}

// Admitted snapshots must not alias live reservation state: releasing a
// snapshot copy has to fail and must not corrupt the books.
func TestAdmittedSnapshotsCarryNoReservations(t *testing.T) {
	o, req := chainOverlay(t)
	m := NewManager(o)
	a, err := m.Admit(req, 10, 40, optimalAlg)
	if err != nil {
		t.Fatal(err)
	}
	snaps := m.Admitted()
	if len(snaps) != 1 {
		t.Fatalf("admitted = %d, want 1", len(snaps))
	}
	if err := m.Release(&snaps[0]); err == nil {
		t.Fatal("releasing an Admitted() snapshot succeeded; snapshots alias live reservations")
	}
	// The failed snapshot release must not have touched the residual.
	if mtr, _ := m.Residual().LinkMetric(10, 20); mtr.Bandwidth != 60 {
		t.Fatalf("snapshot release mutated residual: %+v", mtr)
	}
	// The live admission still releases exactly once.
	if err := m.Release(a); err != nil {
		t.Fatal(err)
	}
	if mtr, _ := m.Residual().LinkMetric(10, 20); mtr.Bandwidth != 100 {
		t.Fatalf("residual after live release = %+v", mtr)
	}
}

// restore must be the exact inverse of Release, byte for byte: the
// preemption rollback path depends on it.
func TestRestoreInvertsRelease(t *testing.T) {
	o, req := chainOverlay(t)
	m := NewManager(o)
	m.SetInstanceCapacity(4)
	a, err := m.Admit(req, 10, 100, optimalAlg) // saturates 10->20 away
	if err != nil {
		t.Fatal(err)
	}
	want := sortedLinks(m.Residual())
	wantBW := m.reservedBW
	wantLoad := m.InstanceLoad(10)
	if err := m.Release(a); err != nil {
		t.Fatal(err)
	}
	if err := m.restore(a); err != nil {
		t.Fatal(err)
	}
	if got := sortedLinks(m.Residual()); !reflect.DeepEqual(got, want) {
		t.Fatalf("restore drifted:\n got %+v\nwant %+v", got, want)
	}
	if m.reservedBW != wantBW || m.InstanceLoad(10) != wantLoad {
		t.Fatalf("books drifted: bw=%d load=%d", m.reservedBW, m.InstanceLoad(10))
	}
	// A restored admission is live again: normal release works.
	if err := m.Release(a); err != nil {
		t.Fatal(err)
	}
	// Restoring an un-released admission is rejected.
	b, err := m.Admit(req, 10, 10, optimalAlg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.restore(b); err == nil {
		t.Fatal("restore of a live admission accepted")
	}
}

// --- allocator unit tests --------------------------------------------------

func TestAllocatorAdmitReleaseLifecycle(t *testing.T) {
	o, req := chainOverlay(t)
	reg := metrics.New()
	a := NewAllocator(o, AllocatorOptions{Classes: 2, Metrics: reg})
	defer a.Close()

	tk, err := a.Admit(AdmitRequest{Req: req, Src: 10, Demand: 40, Class: 1, Tag: "t1", Alg: optimalAlg})
	if err != nil {
		t.Fatal(err)
	}
	if tk.ID != 1 || tk.Class != 1 || tk.Flow == nil {
		t.Fatalf("ticket = %+v", tk)
	}
	tenants := a.Tenants()
	if len(tenants) != 1 || tenants[0].Ticket != 1 || tenants[0].Tag != "t1" {
		t.Fatalf("tenants = %+v", tenants)
	}
	if u := a.Utilization(); u != 25 { // 40 of 160 aggregate
		t.Fatalf("utilization = %d, want 25", u)
	}
	if err := a.Release(tk.ID); err != nil {
		t.Fatal(err)
	}
	if err := a.Release(tk.ID); err == nil {
		t.Fatal("double release accepted")
	}
	cc := a.ClassCounters()
	if cc[1].Admitted != 1 || cc[1].Released != 1 || cc[1].Active != 0 {
		t.Fatalf("class 1 counters = %+v", cc[1])
	}
	log := a.Log()
	if len(log) != 2 || log[0].Kind != EventAdmit || log[1].Kind != EventRelease {
		t.Fatalf("log = %+v", log)
	}
	a.Close()
	if _, err := a.Admit(AdmitRequest{Req: req, Src: 10, Demand: 1, Alg: optimalAlg}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close admit err = %v, want ErrClosed", err)
	}
}

func TestAllocatorQuotaThrottling(t *testing.T) {
	o, req := chainOverlay(t)
	a := NewAllocator(o, AllocatorOptions{Classes: 2, Quotas: []int{1}})
	defer a.Close()
	if _, err := a.Admit(AdmitRequest{Req: req, Src: 10, Demand: 10, Alg: optimalAlg}); err != nil {
		t.Fatal(err)
	}
	_, err := a.Admit(AdmitRequest{Req: req, Src: 10, Demand: 10, Alg: optimalAlg})
	var aerr *AdmissionError
	if !errors.As(err, &aerr) || aerr.Reason != ReasonQuota {
		t.Fatalf("err = %v, want *AdmissionError{ReasonQuota}", err)
	}
	if aerr.Class != 0 {
		t.Fatalf("rejection class = %d, want 0", aerr.Class)
	}
	// Class 1 has no quota: still admitted.
	if _, err := a.Admit(AdmitRequest{Req: req, Src: 10, Demand: 10, Class: 1, Alg: optimalAlg}); err != nil {
		t.Fatal(err)
	}
	cc := a.ClassCounters()
	if cc[0].Rejected != 1 || cc[0].Active != 1 || cc[1].Active != 1 {
		t.Fatalf("counters = %+v", cc)
	}
}

func TestAllocatorRequestValidation(t *testing.T) {
	o, req := chainOverlay(t)
	a := NewAllocator(o, AllocatorOptions{Classes: 2})
	defer a.Close()
	for _, r := range []AdmitRequest{
		{Req: req, Src: 10, Demand: 10, Class: 2, Alg: optimalAlg},  // class out of range
		{Req: req, Src: 10, Demand: 10, Class: -1, Alg: optimalAlg}, // negative class
		{Req: req, Src: 10, Demand: 10, TTL: -time.Second, Alg: optimalAlg},
		{Req: req, Src: 10, Demand: 10}, // no algorithm
	} {
		_, err := a.Admit(r)
		if err == nil {
			t.Fatalf("request %+v accepted", r)
		}
		if errors.Is(err, ErrRejected) {
			t.Fatalf("request %+v rejected (%v), want a plain validation error", r, err)
		}
	}
	// Validation failures are not recorded: the log stays replayable.
	if log := a.Log(); len(log) != 0 {
		t.Fatalf("validation failures logged: %+v", log)
	}
}

// A high-priority request evicts strictly-lower-class tenants, lowest class
// first and youngest first, until it fits.
func TestAllocatorPreemption(t *testing.T) {
	o, req := chainOverlay(t)
	a := NewAllocator(o, AllocatorOptions{Classes: 3, Preempt: true})
	defer a.Close()
	v1, err := a.Admit(AdmitRequest{Req: req, Src: 10, Demand: 100, Class: 0, Alg: optimalAlg})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := a.Admit(AdmitRequest{Req: req, Src: 10, Demand: 60, Class: 0, Alg: optimalAlg})
	if err != nil {
		t.Fatal(err)
	}
	// Demand 80 only fits on the 100-wide link held by v1; the youngest
	// victim v2 is evicted first (not enough), then v1.
	hi, err := a.Admit(AdmitRequest{Req: req, Src: 10, Demand: 80, Class: 2, Alg: optimalAlg})
	if err != nil {
		t.Fatalf("preempting admission rejected: %v", err)
	}
	log := a.Log()
	last := log[len(log)-1]
	if want := []uint64{v2.ID, v1.ID}; !reflect.DeepEqual(last.Preempted, want) {
		t.Fatalf("preempted = %v, want %v", last.Preempted, want)
	}
	tenants := a.Tenants()
	if len(tenants) != 1 || tenants[0].Ticket != hi.ID {
		t.Fatalf("tenants = %+v", tenants)
	}
	cc := a.ClassCounters()
	if cc[0].Preempted != 2 || cc[0].Active != 0 || cc[2].Admitted != 1 {
		t.Fatalf("counters = %+v", cc)
	}
}

// When even full eviction cannot fit the request, every victim is restored
// byte-identically and the request is rejected.
func TestAllocatorPreemptionRollback(t *testing.T) {
	o, req := chainOverlay(t)
	a := NewAllocator(o, AllocatorOptions{Classes: 2, Preempt: true})
	defer a.Close()
	if _, err := a.Admit(AdmitRequest{Req: req, Src: 10, Demand: 70, Class: 0, Alg: optimalAlg}); err != nil {
		t.Fatal(err)
	}
	wantTenants := a.Tenants()
	wantLinks := sortedLinks(a.Residual())
	// Demand 200 does not fit even on the pristine overlay.
	_, err := a.Admit(AdmitRequest{Req: req, Src: 10, Demand: 200, Class: 1, Alg: optimalAlg})
	var aerr *AdmissionError
	if !errors.As(err, &aerr) {
		t.Fatalf("err = %v, want *AdmissionError", err)
	}
	if aerr.Class != 1 {
		t.Fatalf("rejection class = %d, want 1", aerr.Class)
	}
	if got := a.Tenants(); !reflect.DeepEqual(got, wantTenants) {
		t.Fatalf("tenants after rollback = %+v, want %+v", got, wantTenants)
	}
	if got := sortedLinks(a.Residual()); !reflect.DeepEqual(got, wantLinks) {
		t.Fatalf("residual after rollback drifted:\n got %+v\nwant %+v", got, wantLinks)
	}
	cc := a.ClassCounters()
	if cc[0].Preempted != 0 || cc[0].Active != 1 || cc[1].Rejected != 1 {
		t.Fatalf("counters = %+v", cc)
	}
	// Class 0 never preempts, even with preemption enabled.
	_, err = a.Admit(AdmitRequest{Req: req, Src: 10, Demand: 100, Class: 0, Alg: optimalAlg})
	if !errors.As(err, &aerr) {
		t.Fatalf("class-0 err = %v, want rejection", err)
	}
}

// Regression: after the eviction loop fails, the rejection must come from
// the recorded attempts — never from re-running the algorithm. An extra try
// that happened to succeed (possible with a non-deterministic algorithm)
// would return a ticket while the evicted victims' tickets still sit in the
// ledger over released reservations.
func TestAllocatorPreemptionNeverRetriesAfterFailure(t *testing.T) {
	o, req := chainOverlay(t)
	a := NewAllocator(o, AllocatorOptions{Classes: 2, Preempt: true})
	defer a.Close()
	victim, err := a.Admit(AdmitRequest{Req: req, Src: 10, Demand: 100, Class: 0, Alg: optimalAlg})
	if err != nil {
		t.Fatal(err)
	}

	// Fails the pre-preemption attempt and the post-eviction trial, would
	// succeed on any further call — the shape of a non-deterministic
	// algorithm that got lucky on a retry.
	calls := 0
	flaky := func(ov *overlay.Overlay, r *require.Requirement, src int) (*flow.Graph, qos.Metric, error) {
		calls++
		if calls <= 2 {
			return nil, qos.Unreachable, errors.New("transient")
		}
		return optimalAlg(ov, r, src)
	}
	_, err = a.Admit(AdmitRequest{Req: req, Src: 10, Demand: 100, Class: 1, Alg: flaky})
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("flaky admit err = %v, want rejection", err)
	}
	if calls != 2 {
		t.Fatalf("algorithm ran %d times, want exactly 2", calls)
	}
	// The victim rolled back intact: still listed, still releasable.
	if got := a.Tenants(); len(got) != 1 || got[0].Ticket != victim.ID {
		t.Fatalf("tenants after failed preemption = %+v", got)
	}
	if err := a.Release(victim.ID); err != nil {
		t.Fatalf("release of rolled-back victim: %v", err)
	}
}

func TestAllocatorTTLExpiry(t *testing.T) {
	o, req := chainOverlay(t)
	a := NewAllocator(o, AllocatorOptions{})
	defer a.Close()
	tk, err := a.Admit(AdmitRequest{Req: req, Src: 10, Demand: 40, TTL: 10 * time.Millisecond, Alg: optimalAlg})
	if err != nil {
		t.Fatal(err)
	}
	if tk.Expires.IsZero() {
		t.Fatal("TTL admission without a deadline")
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(a.Tenants()) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("lease never expired")
		}
		time.Sleep(2 * time.Millisecond)
	}
	cc := a.ClassCounters()
	if cc[0].Expired != 1 || cc[0].Released != 0 {
		t.Fatalf("counters = %+v", cc)
	}
	log := a.Log()
	if last := log[len(log)-1]; last.Kind != EventExpire || last.Ticket != tk.ID {
		t.Fatalf("last event = %+v", last)
	}
	// The expiry released the capacity.
	if mtr, _ := a.Residual().LinkMetric(10, 20); mtr.Bandwidth != 100 {
		t.Fatalf("residual after expiry = %+v", mtr)
	}
	// An explicit release after expiry is a clean error.
	if err := a.Release(tk.ID); err == nil {
		t.Fatal("release after expiry accepted")
	}
}

// --- the sequential-equivalence oracle -------------------------------------

// allocScenario builds a multi-instance scenario overlay for contention tests.
func allocScenario(t testing.TB, seed int64) *scenario.Scenario {
	t.Helper()
	sc, err := scenario.Generate(scenario.Config{
		Seed:                seed,
		NetworkSize:         24,
		Services:            5,
		InstancesPerService: 3,
		Kind:                scenario.KindGeneral,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// replayAgainst runs the oracle: replays live's log over the pristine overlay
// and asserts the final tenants, class counters, residual overlay and
// instance loads deep-equal the live allocator's.
func replayAgainst(t *testing.T, live *Allocator, ov *overlay.Overlay, opts AllocatorOptions) {
	t.Helper()
	log := live.Log()
	seq, err := Replay(ov, opts, log, func(Event) Algorithm { return heuristicAlg })
	if err != nil {
		t.Fatalf("replay diverged: %v", err)
	}
	if got, want := live.Tenants(), seq.Tenants(); !reflect.DeepEqual(got, want) {
		t.Fatalf("tenants diverge:\nlive %+v\n seq %+v", got, want)
	}
	if got, want := live.ClassCounters(), seq.ClassCounters(); !reflect.DeepEqual(got, want) {
		t.Fatalf("class counters diverge:\nlive %+v\n seq %+v", got, want)
	}
	if got, want := sortedLinks(live.Residual()), sortedLinks(seq.Residual()); !reflect.DeepEqual(got, want) {
		t.Fatalf("residual overlays diverge:\nlive %+v\n seq %+v", got, want)
	}
	for _, p := range ov.Instances() {
		if got, want := live.InstanceLoad(p.NID), seq.InstanceLoad(p.NID); got != want {
			t.Fatalf("instance %d load %d, want %d", p.NID, got, want)
		}
	}
}

// The acceptance-criteria oracle: >=500 mixed-class requests from >=8
// concurrent goroutines (with interleaved releases) collapse to the recorded
// serialization — replaying the log sequentially reproduces the admitted
// set, residual overlay and per-class counters exactly.
func TestConcurrentAdmissionMatchesSequentialReplay(t *testing.T) {
	const (
		goroutines   = 8
		perGoroutine = 80 // 640 operations total
	)
	sc := allocScenario(t, 7)
	opts := AllocatorOptions{
		Classes:          3,
		Quotas:           []int{24, 0, 0},
		Preempt:          true,
		InstanceCapacity: 64,
	}
	a := NewAllocator(sc.Overlay, opts)
	defer a.Close()

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + g)))
			var mine []uint64
			for i := 0; i < perGoroutine; i++ {
				// One release per ~4 admissions keeps capacity churning. A
				// ticket may already be gone: another worker's higher-class
				// admission can preempt it.
				if len(mine) > 0 && rng.Intn(4) == 0 {
					k := rng.Intn(len(mine))
					if err := a.Release(mine[k]); err != nil && !errors.Is(err, ErrNoTicket) {
						t.Errorf("worker %d: release %d: %v", g, mine[k], err)
						return
					}
					mine = append(mine[:k], mine[k+1:]...)
					continue
				}
				tk, err := a.Admit(AdmitRequest{
					Req:    sc.Req,
					Src:    sc.SourceNID,
					Demand: int64(20 + rng.Intn(120)),
					Class:  rng.Intn(3),
					Tag:    fmt.Sprintf("w%d.%d", g, i),
					Alg:    heuristicAlg,
				})
				if err == nil {
					mine = append(mine, tk.ID)
					continue
				}
				if !errors.Is(err, ErrRejected) {
					t.Errorf("worker %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	log := a.Log()
	if len(log) < 500 {
		t.Fatalf("log has %d events, want >= 500", len(log))
	}
	admits := 0
	for _, ev := range log {
		if ev.Kind == EventAdmit {
			admits++
		}
	}
	if admits == 0 {
		t.Fatal("no admissions at all: the stream never exercised the overlay")
	}
	replayAgainst(t, a, sc.Overlay, opts)
}

// Replay is a real oracle: a tampered log is rejected, not silently accepted.
func TestReplayDetectsDivergence(t *testing.T) {
	o, req := chainOverlay(t)
	a := NewAllocator(o, AllocatorOptions{})
	defer a.Close()
	if _, err := a.Admit(AdmitRequest{Req: req, Src: 10, Demand: 40, Alg: heuristicAlg}); err != nil {
		t.Fatal(err)
	}
	log := a.Log()
	log[0].Ticket = 99
	if _, err := Replay(o, AllocatorOptions{}, log, func(Event) Algorithm { return heuristicAlg }); err == nil {
		t.Fatal("tampered ticket ID accepted")
	}
	// A reject event that actually admits is caught too.
	log2 := a.Log()
	log2[0].Kind = EventReject
	log2[0].Reason = ReasonBandwidth
	if _, err := Replay(o, AllocatorOptions{}, log2, func(Event) Algorithm { return heuristicAlg }); err == nil {
		t.Fatal("flipped admit/reject accepted")
	}
}

// --- lossless admit/release property (satellite) ---------------------------

// Admitting then releasing any seeded sequence of requests leaves the
// residual overlay byte-identical to the pristine overlay: links, bandwidths,
// latencies, and InstanceLoad all restored.
func TestSeededAdmitReleaseIsLossless(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		sc := allocScenario(t, seed)
		pristine := sortedLinks(sc.Overlay)
		a := NewAllocator(sc.Overlay, AllocatorOptions{
			Classes: 3, Preempt: seed%2 == 0, InstanceCapacity: 32,
		})
		rng := rand.New(rand.NewSource(seed * 97))
		var live []uint64
		for i := 0; i < 60; i++ {
			tk, err := a.Admit(AdmitRequest{
				Req:    sc.Req,
				Src:    sc.SourceNID,
				Demand: int64(10 + rng.Intn(150)),
				Class:  rng.Intn(3),
				Alg:    heuristicAlg,
			})
			if err == nil {
				live = append(live, tk.ID)
			} else if !errors.Is(err, ErrRejected) {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
		// Preemption may have evicted some of "ours" already; release the
		// survivors in seeded shuffle order.
		active := make(map[uint64]bool)
		for _, ti := range a.Tenants() {
			active[ti.Ticket] = true
		}
		rng.Shuffle(len(live), func(i, j int) { live[i], live[j] = live[j], live[i] })
		for _, id := range live {
			if !active[id] {
				continue
			}
			if err := a.Release(id); err != nil {
				t.Fatalf("seed %d: release %d: %v", seed, id, err)
			}
		}
		if got := sortedLinks(a.Residual()); !reflect.DeepEqual(got, pristine) {
			t.Fatalf("seed %d: residual differs from pristine:\n got %+v\nwant %+v", seed, got, pristine)
		}
		for _, p := range sc.Overlay.Instances() {
			if l := a.InstanceLoad(p.NID); l != 0 {
				t.Fatalf("seed %d: instance %d load %d after full release", seed, p.NID, l)
			}
		}
		if len(a.Tenants()) != 0 {
			t.Fatalf("seed %d: tenants remain: %+v", seed, a.Tenants())
		}
		a.Close()
	}
}

// --- admission throughput benchmark (benchjson) ----------------------------

func BenchmarkAllocatorAdmitRelease(b *testing.B) {
	sc := allocScenario(b, 7)
	a := NewAllocator(sc.Overlay, AllocatorOptions{Classes: 3})
	defer a.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tk, err := a.Admit(AdmitRequest{
			Req: sc.Req, Src: sc.SourceNID, Demand: 50,
			Class: i % 3, Alg: heuristicAlg,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := a.Release(tk.ID); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAllocatorAdmitReleaseParallel(b *testing.B) {
	sc := allocScenario(b, 7)
	a := NewAllocator(sc.Overlay, AllocatorOptions{Classes: 3})
	defer a.Close()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			tk, err := a.Admit(AdmitRequest{
				Req: sc.Req, Src: sc.SourceNID, Demand: 50, Alg: heuristicAlg,
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := a.Release(tk.ID); err != nil {
				b.Fatal(err)
			}
		}
	})
}
