// The multi-tenant capacity allocator: a concurrent admission front over
// Manager. Many goroutines call Admit/Release; one writer loop serializes
// them against the shared residual overlay, so every admission decision sees
// a consistent view and the whole history collapses to one recorded
// sequential order (the Log) that Replay can re-execute as an equivalence
// oracle. Priority classes add per-class admission quotas, per-class
// fairness counters, and — when enabled — preemption: a high-priority
// request that would otherwise bounce may evict strictly-lower-priority
// tenants, with an exact rollback when even full eviction does not make it
// fit. TTLs turn admissions into leases: an expired ticket is released
// through the same writer loop, so departures serialize with admissions.
package provision

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"sflow/internal/flow"
	"sflow/internal/metrics"
	"sflow/internal/overlay"
	"sflow/internal/qos"
	"sflow/internal/require"
)

// ErrClosed is returned by Allocator methods after Close.
var ErrClosed = errors.New("provision: allocator closed")

// ErrNoTicket is returned by Release for a ticket that is not active —
// never admitted, already released, expired, or preempted by a
// higher-class admission.
var ErrNoTicket = errors.New("provision: no such active ticket")

// ErrVetoed is returned by Migrate when the caller's gate rejected the
// re-placement: the migration was rolled back exactly and the tenant still
// holds its original reservations.
var ErrVetoed = errors.New("provision: migration vetoed")

// Observer receives committed tenant transitions. Every callback runs on the
// allocator's writer loop, strictly in the recorded serialization order, so
// an observer that folds reservations into its own books (a link-load
// ledger, say) sees exactly the residual overlay's history. Callbacks must
// not call back into the Allocator (the loop would deadlock) and should be
// quick — they serialize with admissions.
//
// Speculative work never reaches an observer: preemption trials, migration
// trials and gate-vetoed migrations are invisible because their releases and
// re-admissions are rolled back before the operation returns.
type Observer interface {
	// TenantAdmitted fires after an admission commits. For an admission
	// that preempted victims, the victims' TenantDeparted callbacks fire
	// first — the order capacity actually moved.
	TenantAdmitted(t *Ticket)
	// TenantDeparted fires after a tenant's reservations were returned for
	// good. kind is EventRelease, EventExpire or EventPreempt.
	TenantDeparted(t *Ticket, kind EventKind)
	// TenantMigrated fires after a committed migration: old's reservations
	// were returned and fresh's (same ticket ID) are now held.
	TenantMigrated(old, fresh *Ticket)
}

// AllocatorOptions tunes a multi-tenant Allocator. The zero value is a
// single-class allocator with no quotas, no preemption and no instance
// capacity bound.
type AllocatorOptions struct {
	// Classes is the number of priority classes; requests carry a class in
	// [0, Classes), larger meaning more important. 0 defaults to 1.
	Classes int
	// Quotas caps the number of concurrently admitted tenants per class
	// (indexed by class; missing or zero entries mean unlimited). A request
	// whose class is at quota is rejected with ReasonQuota before any
	// federation work runs — per-class throttling.
	Quotas []int
	// Preempt allows a request that would otherwise be rejected for
	// capacity (ReasonBandwidth, ReasonNoFlow or ReasonCompute) to evict
	// admitted tenants of strictly lower classes, lowest class first and
	// youngest first within a class. Victims are evicted one at a time and
	// the request retried; if it still does not fit after every candidate
	// is gone, all victims are restored byte-identically and the request is
	// rejected. Quota rejections never preempt.
	Preempt bool
	// InstanceCapacity bounds concurrent admissions per service instance
	// (0 = unlimited); see Manager.SetInstanceCapacity.
	InstanceCapacity int
	// Metrics, when non-nil, receives per-class admission counters
	// (alloc_admitted_total{class=...} and friends), an active-tenant gauge
	// and a residual-utilization histogram.
	Metrics *metrics.Registry
	// Observer, when non-nil, receives committed tenant transitions on the
	// writer loop (see Observer). Replay ignores it: the oracle re-executes
	// the log without side effects.
	Observer Observer
}

// Ticket is one admitted tenant: the handle Release takes. Its exported
// fields are immutable after Admit returns.
type Ticket struct {
	ID     uint64
	Tag    string
	Class  int
	Src    int
	Demand int64
	// Flow and Metric are the admitted federation outcome.
	Flow   *flow.Graph
	Metric qos.Metric
	// Expires is the lease deadline (zero when admitted without a TTL).
	Expires time.Time

	adm *Admission // live manager-side admission; writer-owned
}

// Reservations returns a copy of the per-link bandwidth holds behind this
// ticket. Safe to call from Observer callbacks (the ticket handed to a
// callback is committed); the copy never changes afterwards.
func (t *Ticket) Reservations() map[[2]int]Reservation {
	return t.adm.Reservations()
}

// TenantInfo is a point-in-time public snapshot of one admitted tenant.
type TenantInfo struct {
	Ticket uint64 `json:"ticket"`
	Tag    string `json:"tag,omitempty"`
	Class  int    `json:"class"`
	Src    int    `json:"src"`
	Demand int64  `json:"demand"`
	// ExpiresMS is the lease deadline in Unix milliseconds (0 = no TTL).
	ExpiresMS int64 `json:"expires_ms,omitempty"`
}

// ClassCounters is the fairness ledger of one priority class.
type ClassCounters struct {
	Class int `json:"class"`
	// Admitted counts requests of this class that were admitted; Rejected
	// those that bounced (for any reason, quota included); Preempted the
	// admitted tenants of this class later evicted by higher classes;
	// Released explicit departures; Expired TTL departures; Migrated
	// committed re-placements (the tenant stays active, so Migrated moves
	// neither Active nor Admitted).
	Admitted  int64 `json:"admitted"`
	Rejected  int64 `json:"rejected"`
	Preempted int64 `json:"preempted"`
	Released  int64 `json:"released"`
	Expired   int64 `json:"expired"`
	Migrated  int64 `json:"migrated,omitempty"`
	// Active is the number of currently admitted tenants of this class.
	Active int `json:"active"`
}

// AdmitRequest is one admission attempt submitted to an Allocator.
type AdmitRequest struct {
	Req    *require.Requirement
	Src    int
	Demand int64
	// Class is the request's priority class in [0, AllocatorOptions.Classes).
	Class int
	// TTL, when positive, auto-releases the admission after it elapses
	// (recorded as an EventExpire in the log).
	TTL time.Duration
	// Tag is an opaque caller label recorded in the event log; Replay's
	// algFor callback typically keys on it to rebuild the algorithm.
	Tag string
	// Alg federates the request over the residual overlay. The
	// serialization oracle only holds for deterministic algorithms: an
	// algorithm with hidden state (a shared Rng) may diverge under Replay.
	Alg Algorithm
}

// EventKind classifies one entry of the allocator's recorded serialization.
type EventKind string

// The event kinds an allocator log contains.
const (
	EventAdmit   EventKind = "admit"
	EventReject  EventKind = "reject"
	EventRelease EventKind = "release"
	EventExpire  EventKind = "expire"
	// EventMigrate records a committed Migrate: the ticket's reservations
	// were re-placed by a fresh federation run. Replay re-executes it with
	// the algorithm algFor rebuilds from the event's Tag.
	EventMigrate EventKind = "migrate"
	// EventPreempt never appears in the log (a preemption is recorded inside
	// the admitting event's Preempted list); it exists as the departure kind
	// Observer.TenantDeparted reports for evicted tenants.
	EventPreempt EventKind = "preempt"
)

// Event is one entry of the allocator's admission log: the exact sequential
// order the single-writer loop processed operations in. Replay re-executes a
// log against a fresh allocator; because every mutation of the residual
// overlay happens on the writer loop, replaying the log reproduces the final
// state exactly (for deterministic algorithms).
type Event struct {
	Seq    uint64
	Kind   EventKind
	Ticket uint64 // admitted/released ticket ID (0 for rejects)
	Tag    string
	Class  int
	Src    int
	Demand int64
	// Req is the admitted requirement (admit/reject events), kept so Replay
	// can re-run the attempt.
	Req *require.Requirement
	// Reason is the rejection cause (reject events).
	Reason RejectReason
	// Preempted lists the tickets evicted to make this admission fit.
	Preempted []uint64
}

// classState is the writer-owned ledger of one priority class.
type classState struct {
	admitted, rejected, preempted, released, expired, migrated int64
	active                                                     int
}

// allocCmd is one closure queued to the writer loop.
type allocCmd struct {
	run  func()
	done chan struct{}
}

// Allocator is a concurrent, multi-tenant admission controller over one
// shared overlay. All methods are safe for concurrent use: they funnel
// through a single writer goroutine, so admissions, releases and TTL
// expiries execute in one total order — the order Log records.
type Allocator struct {
	opts AllocatorOptions
	mgr  *Manager

	async  bool // false for Replay: commands run on the caller's goroutine
	cmds   chan allocCmd
	stop   chan struct{}
	done   chan struct{}
	closed atomic.Bool

	// Writer-owned state (guarded by the loop, or by the single caller in
	// sync mode).
	seq     uint64
	nextID  uint64
	tickets map[uint64]*Ticket
	classes []classState
	log     []Event
	timers  map[uint64]*time.Timer

	// Pre-resolved metric handles (nil-safe without a registry).
	activeGauge *metrics.Gauge
	utilization *metrics.Histogram
}

// NewAllocator starts a multi-tenant allocator over a private residual copy
// of ov and spins up its writer loop. Call Close when done.
func NewAllocator(ov *overlay.Overlay, opts AllocatorOptions) *Allocator {
	a := newAllocator(ov, opts, true)
	go a.loop()
	return a
}

// newAllocator builds the allocator core; async selects whether commands go
// through the writer loop (NewAllocator) or run on the caller's goroutine
// (Replay, which is single-threaded by construction).
func newAllocator(ov *overlay.Overlay, opts AllocatorOptions, async bool) *Allocator {
	if opts.Classes <= 0 {
		opts.Classes = 1
	}
	// The manager stays uninstrumented on purpose: preemption trials admit
	// and release speculatively, which would pollute the provision_*
	// counters. The allocator keeps its own books and mirrors them into the
	// registry only for client-visible outcomes.
	a := &Allocator{
		opts:    opts,
		mgr:     NewManager(ov),
		async:   async,
		cmds:    make(chan allocCmd),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		tickets: make(map[uint64]*Ticket),
		classes: make([]classState, opts.Classes),
		timers:  make(map[uint64]*time.Timer),
	}
	a.mgr.SetInstanceCapacity(opts.InstanceCapacity)
	if reg := opts.Metrics; reg != nil {
		// A gauge is a point-in-time reading: when several allocators share
		// one registry (an experiment sweep), the final value depends on
		// scheduling, so it must stay out of the stable snapshot.
		a.activeGauge = reg.Gauge("alloc_active_tenants", metrics.Volatile())
		a.utilization = reg.Histogram("alloc_utilization_pct", metrics.LinearBounds(10, 10, 10))
	}
	return a
}

// loop is the single writer: every admission, release and expiry runs here.
func (a *Allocator) loop() {
	defer close(a.done)
	for {
		select {
		case <-a.stop:
			return
		case c := <-a.cmds:
			c.run()
			close(c.done)
		}
	}
}

// exec runs fn on the writer loop and waits for it. In sync mode (Replay)
// it runs fn directly.
func (a *Allocator) exec(fn func()) error {
	if !a.async {
		if a.closed.Load() {
			return ErrClosed
		}
		fn()
		return nil
	}
	done := make(chan struct{})
	select {
	case a.cmds <- allocCmd{run: fn, done: done}:
	case <-a.stop:
		return ErrClosed
	}
	select {
	case <-done:
		return nil
	case <-a.stop:
		// The loop may have completed fn just as Close raced in; prefer
		// the completed reply over the shutdown error.
		select {
		case <-done:
			return nil
		default:
			return ErrClosed
		}
	}
}

// Close stops the writer loop and every pending TTL timer. Admissions stay
// reserved (the residual overlay is frozen as-is); concurrent callers
// blocked on the loop get ErrClosed. Safe to call more than once.
func (a *Allocator) Close() {
	if a.closed.Swap(true) {
		return
	}
	if a.async {
		close(a.stop)
		<-a.done
	}
	for _, tm := range a.timers {
		tm.Stop()
	}
}

// Admit submits one admission attempt. On success the returned Ticket is the
// release handle; on rejection the error is an *AdmissionError carrying the
// machine-readable reason (errors.Is(err, ErrRejected) holds). Safe for many
// concurrent callers; each call occupies the writer loop for the duration of
// its federation run, so admissions serialize.
func (a *Allocator) Admit(r AdmitRequest) (*Ticket, error) {
	var (
		t   *Ticket
		err error
	)
	if e := a.exec(func() { t, _, err = a.admitCore(r) }); e != nil {
		return nil, e
	}
	return t, err
}

// Release returns ticket id's reserved capacity to the residual overlay.
func (a *Allocator) Release(id uint64) error {
	var err error
	if e := a.exec(func() { err = a.releaseCore(id, EventRelease) }); e != nil {
		return e
	}
	return err
}

// MigrateGate vets a proposed migration before it commits. It runs on the
// writer loop with the departing placement's reservations (old) and the
// proposed placement's (next), after the trial re-admission already holds
// next on the residual. Returning a non-nil error rolls the whole operation
// back exactly — the tenant keeps its original placement — and Migrate
// returns the error wrapped in ErrVetoed. A nil gate accepts every feasible
// re-placement.
type MigrateGate func(old, next map[[2]int]Reservation) error

// Migrate re-places one admitted tenant atomically: on the writer loop it
// releases the ticket's reservations, re-federates the original requirement
// with alg over the freed residual, consults gate, and either commits the new
// placement under the same ticket ID (recorded as an EventMigrate carrying
// tag, so Replay can rebuild alg) or restores the original reservations
// byte-identically. The ticket's class, demand and TTL lease carry over; the
// returned Ticket is the new handle (the old pointer's Flow/Metric describe
// the abandoned placement).
//
// Failure modes: ErrNoTicket if id is not active; an *AdmissionError if the
// re-federation does not fit (original placement restored); ErrVetoed if the
// gate declined (original placement restored). None of these are logged —
// the residual is unchanged, so the serialization has nothing to record.
func (a *Allocator) Migrate(id uint64, alg Algorithm, gate MigrateGate, tag string) (*Ticket, error) {
	var (
		t   *Ticket
		err error
	)
	if e := a.exec(func() { t, err = a.migrateCore(id, alg, gate, tag) }); e != nil {
		return nil, e
	}
	return t, err
}

// Reservations returns a copy of every active tenant's per-link bandwidth
// holds, keyed by ticket ID: the from-scratch recount an external link-load
// ledger must agree with (the reopt property tests pin exactly that).
func (a *Allocator) Reservations() map[uint64]map[[2]int]Reservation {
	var out map[uint64]map[[2]int]Reservation
	_ = a.exec(func() {
		out = make(map[uint64]map[[2]int]Reservation, len(a.tickets))
		for id, t := range a.tickets {
			out[id] = t.adm.Reservations()
		}
	})
	return out
}

// Tenants returns the currently admitted tenants sorted by ticket ID.
func (a *Allocator) Tenants() []TenantInfo {
	var out []TenantInfo
	_ = a.exec(func() { out = a.tenantsLocked() })
	return out
}

// ClassCounters returns the per-class fairness ledger, indexed by class.
func (a *Allocator) ClassCounters() []ClassCounters {
	var out []ClassCounters
	_ = a.exec(func() { out = a.countersLocked() })
	return out
}

// Log returns a copy of the recorded serialization: the exact order the
// writer loop processed admissions, rejections and departures in. Feed it to
// Replay for the sequential-equivalence oracle.
func (a *Allocator) Log() []Event {
	var out []Event
	_ = a.exec(func() {
		out = make([]Event, len(a.log))
		copy(out, a.log)
	})
	return out
}

// Residual returns a snapshot clone of the residual overlay.
func (a *Allocator) Residual() *overlay.Overlay {
	var out *overlay.Overlay
	_ = a.exec(func() { out = a.mgr.Residual().Clone() })
	return out
}

// Utilization returns the reserved share of the pristine overlay's aggregate
// bandwidth, in percent.
func (a *Allocator) Utilization() int64 {
	var out int64
	_ = a.exec(func() { out = a.mgr.utilizationPct() })
	return out
}

// InstanceLoad returns how many active admissions instance nid serves.
func (a *Allocator) InstanceLoad(nid int) int {
	var out int
	_ = a.exec(func() { out = a.mgr.InstanceLoad(nid) })
	return out
}

// --- writer-side core ------------------------------------------------------

// admitCore performs one admission attempt on the writer loop: quota check,
// federation over the residual, optional preemption, ledger + log updates.
func (a *Allocator) admitCore(r AdmitRequest) (*Ticket, []uint64, error) {
	if r.Class < 0 || r.Class >= a.opts.Classes {
		return nil, nil, fmt.Errorf("provision: class %d out of range [0, %d)", r.Class, a.opts.Classes)
	}
	if r.TTL < 0 {
		return nil, nil, fmt.Errorf("provision: negative TTL %v", r.TTL)
	}
	if r.Alg == nil {
		return nil, nil, fmt.Errorf("provision: admit without an algorithm")
	}
	if q := a.quota(r.Class); q > 0 && a.classes[r.Class].active >= q {
		return nil, nil, a.rejectCore(r, &AdmissionError{Reason: ReasonQuota,
			Detail: fmt.Sprintf("class %d at quota %d", r.Class, q)})
	}
	adm, err := a.mgr.Admit(r.Req, r.Src, r.Demand, r.Alg)
	var aerr *AdmissionError
	if err != nil && !errors.As(err, &aerr) {
		return nil, nil, err // malformed request or invalid algorithm output
	}
	var preempted []uint64
	if err != nil {
		if !a.opts.Preempt || r.Class == 0 {
			return nil, nil, a.rejectCore(r, aerr)
		}
		adm, preempted, aerr = a.preemptAndRetry(r, aerr)
		if aerr != nil {
			return nil, nil, a.rejectCore(r, aerr)
		}
	}
	a.nextID++
	t := &Ticket{
		ID: a.nextID, Tag: r.Tag, Class: r.Class, Src: r.Src,
		Demand: r.Demand, Flow: adm.Flow, Metric: adm.Metric, adm: adm,
	}
	if r.TTL > 0 && a.async {
		t.Expires = time.Now().Add(r.TTL)
		id := t.ID
		a.timers[id] = time.AfterFunc(r.TTL, func() { a.expire(id) })
	}
	a.tickets[t.ID] = t
	a.classes[r.Class].active++
	a.classes[r.Class].admitted++
	a.record(Event{Kind: EventAdmit, Ticket: t.ID, Tag: r.Tag, Class: r.Class,
		Src: r.Src, Demand: r.Demand, Req: r.Req, Preempted: preempted})
	a.counter("alloc_admitted_total", r.Class).Inc()
	if obs := a.observer(); obs != nil {
		obs.TenantAdmitted(t)
	}
	a.observe()
	return t, preempted, nil
}

// observer resolves the configured Observer; Replay runs without one so the
// oracle re-execution has no side effects outside its own allocator.
func (a *Allocator) observer() Observer {
	if !a.async {
		return nil
	}
	return a.opts.Observer
}

// preemptAndRetry evicts strictly-lower-class tenants one at a time —
// lowest class first, youngest first within a class — retrying the admission
// after each eviction. On success the victims are gone for good (their
// ledger shows preempted); on failure every victim is restored in reverse
// order, byte-identically, and the final AdmissionError is returned. orig is
// the rejection of the pre-preemption attempt: it is the answer when there is
// nothing to evict, and it must NOT be re-derived by re-running the
// algorithm — a non-deterministic algorithm could succeed on such a second
// try, stranding the evicted victims' tickets over released reservations.
func (a *Allocator) preemptAndRetry(r AdmitRequest, orig *AdmissionError) (*Admission, []uint64, *AdmissionError) {
	cands := make([]*Ticket, 0, len(a.tickets))
	for _, t := range a.tickets {
		if t.Class < r.Class {
			cands = append(cands, t)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Class != cands[j].Class {
			return cands[i].Class < cands[j].Class
		}
		return cands[i].ID > cands[j].ID
	})
	var evicted []*Ticket
	rollback := func() {
		for i := len(evicted) - 1; i >= 0; i-- {
			if err := a.mgr.restore(evicted[i].adm); err != nil {
				// Cannot happen: restores exactly undo the releases above,
				// and nothing else touched the residual in between.
				panic(fmt.Sprintf("provision: preemption rollback: %v", err))
			}
		}
	}
	last := orig
	for _, v := range cands {
		if err := a.mgr.Release(v.adm); err != nil {
			rollback()
			return nil, nil, &AdmissionError{Reason: ReasonBandwidth,
				Detail: fmt.Sprintf("preemption: releasing ticket %d: %v", v.ID, err)}
		}
		evicted = append(evicted, v)
		adm, err := a.mgr.Admit(r.Req, r.Src, r.Demand, r.Alg)
		if err == nil {
			ids := make([]uint64, 0, len(evicted))
			for _, e := range evicted {
				ids = append(ids, e.ID)
				a.dropTicket(e)
				a.classes[e.Class].preempted++
				a.classes[e.Class].active--
				a.counter("alloc_preempted_total", e.Class).Inc()
				if obs := a.observer(); obs != nil {
					obs.TenantDeparted(e, EventPreempt)
				}
			}
			return adm, ids, nil
		}
		var aerr *AdmissionError
		if !errors.As(err, &aerr) {
			rollback()
			return nil, nil, &AdmissionError{Reason: ReasonNoFlow, Detail: err.Error()}
		}
		last = aerr
	}
	// Even with every lower-class tenant gone the request does not fit (or
	// there was nothing to evict): undo the evictions and report the last
	// rejection.
	rollback()
	return nil, nil, last
}

// rejectCore stamps, records and counts one rejection.
func (a *Allocator) rejectCore(r AdmitRequest, aerr *AdmissionError) error {
	aerr.Class = r.Class
	a.classes[r.Class].rejected++
	a.record(Event{Kind: EventReject, Tag: r.Tag, Class: r.Class, Src: r.Src,
		Demand: r.Demand, Req: r.Req, Reason: aerr.Reason})
	if reg := a.opts.Metrics; reg != nil {
		reg.Counter("alloc_rejected_total",
			metrics.WithLabels(metrics.Label{Name: "class", Value: strconv.Itoa(r.Class)},
				metrics.Label{Name: "reason", Value: string(aerr.Reason)})).Inc()
	}
	return aerr
}

// releaseCore departs ticket id (kind distinguishes explicit releases from
// TTL expiries).
func (a *Allocator) releaseCore(id uint64, kind EventKind) error {
	t, ok := a.tickets[id]
	if !ok {
		return fmt.Errorf("%w: ticket %d", ErrNoTicket, id)
	}
	if err := a.mgr.Release(t.adm); err != nil {
		return err
	}
	a.dropTicket(t)
	a.classes[t.Class].active--
	if kind == EventExpire {
		a.classes[t.Class].expired++
		a.counter("alloc_expired_total", t.Class).Inc()
	} else {
		a.classes[t.Class].released++
		a.counter("alloc_released_total", t.Class).Inc()
	}
	a.record(Event{Kind: kind, Ticket: id, Tag: t.Tag, Class: t.Class,
		Src: t.Src, Demand: t.Demand})
	if obs := a.observer(); obs != nil {
		obs.TenantDeparted(t, kind)
	}
	a.observe()
	return nil
}

// migrateCore re-places one admitted tenant on the writer loop. The residual
// transitions atomically from "old placement held" to either "new placement
// held" (commit) or back to "old placement held" (rollback) — no intermediate
// state is ever observable, because nothing else runs on the loop meanwhile.
func (a *Allocator) migrateCore(id uint64, alg Algorithm, gate MigrateGate, tag string) (*Ticket, error) {
	if alg == nil {
		return nil, fmt.Errorf("provision: migrate without an algorithm")
	}
	t, ok := a.tickets[id]
	if !ok {
		return nil, fmt.Errorf("%w: ticket %d", ErrNoTicket, id)
	}
	old := t.adm
	if err := a.mgr.Release(old); err != nil {
		return nil, err
	}
	rollback := func() {
		if err := a.mgr.restore(old); err != nil {
			// Cannot happen: restore exactly undoes the release above and
			// nothing else touched the residual in between.
			panic(fmt.Sprintf("provision: migration rollback: %v", err))
		}
	}
	adm, err := a.mgr.Admit(old.Req, t.Src, t.Demand, alg)
	if err != nil {
		rollback()
		return nil, err
	}
	if gate != nil {
		if gerr := gate(old.Reservations(), adm.Reservations()); gerr != nil {
			if rerr := a.mgr.Release(adm); rerr != nil {
				panic(fmt.Sprintf("provision: migration veto unwind: %v", rerr))
			}
			rollback()
			return nil, fmt.Errorf("%w: %v", ErrVetoed, gerr)
		}
	}
	fresh := &Ticket{
		ID: t.ID, Tag: t.Tag, Class: t.Class, Src: t.Src, Demand: t.Demand,
		Flow: adm.Flow, Metric: adm.Metric, Expires: t.Expires, adm: adm,
	}
	// The TTL timer (if any) captured the ticket ID, not the *Ticket, so the
	// lease carries over to the fresh handle untouched.
	a.tickets[id] = fresh
	a.classes[t.Class].migrated++
	a.record(Event{Kind: EventMigrate, Ticket: id, Tag: tag, Class: t.Class,
		Src: t.Src, Demand: t.Demand, Req: old.Req})
	a.counter("alloc_migrated_total", t.Class).Inc()
	if obs := a.observer(); obs != nil {
		obs.TenantMigrated(t, fresh)
	}
	a.observe()
	return fresh, nil
}

// expire is the TTL timer callback: it funnels the departure through the
// writer loop like any other operation. A ticket already released (or an
// allocator already closed) makes this a no-op.
func (a *Allocator) expire(id uint64) {
	_ = a.exec(func() { _ = a.releaseCore(id, EventExpire) })
}

// dropTicket removes an active ticket and stops its TTL timer.
func (a *Allocator) dropTicket(t *Ticket) {
	delete(a.tickets, t.ID)
	if tm, ok := a.timers[t.ID]; ok {
		tm.Stop()
		delete(a.timers, t.ID)
	}
}

// record appends one event to the serialization log.
func (a *Allocator) record(ev Event) {
	a.seq++
	ev.Seq = a.seq
	a.log = append(a.log, ev)
}

// quota returns the admission quota of a class (0 = unlimited).
func (a *Allocator) quota(class int) int {
	if class < len(a.opts.Quotas) && a.opts.Quotas[class] > 0 {
		return a.opts.Quotas[class]
	}
	return 0
}

// counter resolves one per-class allocator counter (nil-safe).
func (a *Allocator) counter(name string, class int) *metrics.Counter {
	return a.opts.Metrics.Counter(name,
		metrics.WithLabels(metrics.Label{Name: "class", Value: strconv.Itoa(class)}))
}

// observe refreshes the active-tenant gauge and utilization histogram.
func (a *Allocator) observe() {
	a.activeGauge.Set(int64(len(a.tickets)))
	a.utilization.Observe(a.mgr.utilizationPct())
}

func (a *Allocator) tenantsLocked() []TenantInfo {
	out := make([]TenantInfo, 0, len(a.tickets))
	for _, t := range a.tickets {
		info := TenantInfo{Ticket: t.ID, Tag: t.Tag, Class: t.Class,
			Src: t.Src, Demand: t.Demand}
		if !t.Expires.IsZero() {
			info.ExpiresMS = t.Expires.UnixMilli()
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Ticket < out[j].Ticket })
	return out
}

func (a *Allocator) countersLocked() []ClassCounters {
	out := make([]ClassCounters, len(a.classes))
	for c, s := range a.classes {
		out[c] = ClassCounters{Class: c, Admitted: s.admitted, Rejected: s.rejected,
			Preempted: s.preempted, Released: s.released, Expired: s.expired,
			Migrated: s.migrated, Active: s.active}
	}
	return out
}

// --- sequential replay oracle ----------------------------------------------

// Replay re-executes a recorded admission log, in order, against a fresh
// sequential allocator over the pristine overlay: the equivalence oracle for
// concurrent admission. algFor rebuilds the federation algorithm of each
// admit/reject event (typically keyed on Event.Tag); it must return the same
// deterministic algorithm the live run used. Replay fails on the first
// divergence — an admission that rejects (or vice versa), a different ticket
// ID, a different preemption set, or a different rejection reason. On
// success the returned allocator's residual overlay, tenants and class
// counters equal the live allocator's final state.
func Replay(ov *overlay.Overlay, opts AllocatorOptions, log []Event, algFor func(Event) Algorithm) (*Allocator, error) {
	opts.Metrics = nil // the replay is an oracle, not a production run
	a := newAllocator(ov, opts, false)
	for i, ev := range log {
		switch ev.Kind {
		case EventAdmit:
			t, preempted, err := a.admitCore(a.admitRequest(ev, algFor))
			if err != nil {
				return nil, fmt.Errorf("provision: replay %d: admit of %q rejected: %w", i, ev.Tag, err)
			}
			if t.ID != ev.Ticket {
				return nil, fmt.Errorf("provision: replay %d: ticket %d, want %d", i, t.ID, ev.Ticket)
			}
			if !equalIDs(preempted, ev.Preempted) {
				return nil, fmt.Errorf("provision: replay %d: preempted %v, want %v", i, preempted, ev.Preempted)
			}
		case EventReject:
			_, _, err := a.admitCore(a.admitRequest(ev, algFor))
			if err == nil {
				return nil, fmt.Errorf("provision: replay %d: %q admitted, want rejection (%s)", i, ev.Tag, ev.Reason)
			}
			var aerr *AdmissionError
			if !errors.As(err, &aerr) {
				return nil, fmt.Errorf("provision: replay %d: %v, want rejection (%s)", i, err, ev.Reason)
			}
			if aerr.Reason != ev.Reason {
				return nil, fmt.Errorf("provision: replay %d: rejected for %s, want %s", i, aerr.Reason, ev.Reason)
			}
		case EventRelease, EventExpire:
			if err := a.releaseCore(ev.Ticket, ev.Kind); err != nil {
				return nil, fmt.Errorf("provision: replay %d: release ticket %d: %w", i, ev.Ticket, err)
			}
		case EventMigrate:
			// A logged migration committed, so the replay must commit too; the
			// gate is gone (its decision is baked into the log's existence).
			if _, err := a.migrateCore(ev.Ticket, algFor(ev), nil, ev.Tag); err != nil {
				return nil, fmt.Errorf("provision: replay %d: migrate ticket %d: %w", i, ev.Ticket, err)
			}
		default:
			return nil, fmt.Errorf("provision: replay %d: unknown event kind %q", i, ev.Kind)
		}
	}
	return a, nil
}

// admitRequest rebuilds the AdmitRequest behind a logged admission attempt.
// TTLs are deliberately dropped: expiries replay as their logged EventExpire
// entries, at the exact serialization point the live run released them.
func (a *Allocator) admitRequest(ev Event, algFor func(Event) Algorithm) AdmitRequest {
	return AdmitRequest{Req: ev.Req, Src: ev.Src, Demand: ev.Demand,
		Class: ev.Class, Tag: ev.Tag, Alg: algFor(ev)}
}

func equalIDs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
