package provision

import (
	"errors"
	"testing"

	"sflow/internal/abstract"
	"sflow/internal/exact"
	"sflow/internal/flow"
	"sflow/internal/overlay"
	"sflow/internal/qos"
	"sflow/internal/require"
)

// optimalAlg adapts the exact solver to the Algorithm shape.
func optimalAlg(ov *overlay.Overlay, req *require.Requirement, src int) (*flow.Graph, qos.Metric, error) {
	ag, err := abstract.Build(ov, req)
	if err != nil {
		return nil, qos.Unreachable, err
	}
	r, err := exact.Solve(ag, src, exact.Options{})
	if err != nil {
		return nil, qos.Unreachable, err
	}
	return r.Flow, r.Metric, nil
}

// chainOverlay: services 1 -> 2 with two parallel instance routes of
// capacity 100 and 60.
func chainOverlay(t *testing.T) (*overlay.Overlay, *require.Requirement) {
	t.Helper()
	o := overlay.New()
	for _, in := range [][2]int{{10, 1}, {20, 2}, {21, 2}} {
		if err := o.AddInstance(in[0], in[1], -1); err != nil {
			t.Fatal(err)
		}
	}
	if err := o.AddLink(10, 20, 100, 5); err != nil {
		t.Fatal(err)
	}
	if err := o.AddLink(10, 21, 60, 1); err != nil {
		t.Fatal(err)
	}
	req, err := require.NewPath(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	return o, req
}

func TestAdmitReservesAndReroutes(t *testing.T) {
	o, req := chainOverlay(t)
	m := NewManager(o)

	// First request (demand 50): optimal picks the 100-link to 20.
	a1, err := m.Admit(req, 10, 50, optimalAlg)
	if err != nil {
		t.Fatal(err)
	}
	if nid, _ := a1.Flow.Assigned(2); nid != 20 {
		t.Fatalf("first admission on %d, want 20", nid)
	}
	// Residual: 10->20 now 50.
	if mtr, ok := m.Residual().LinkMetric(10, 20); !ok || mtr.Bandwidth != 50 {
		t.Fatalf("residual 10->20 = %+v, %v", mtr, ok)
	}

	// Second request (demand 55): 10->20 only has 50 left, so the
	// algorithm must shift to instance 21 (60 wide).
	a2, err := m.Admit(req, 10, 55, optimalAlg)
	if err != nil {
		t.Fatal(err)
	}
	if nid, _ := a2.Flow.Assigned(2); nid != 21 {
		t.Fatalf("second admission on %d, want 21", nid)
	}
	// 10->21 residual 5.
	if mtr, ok := m.Residual().LinkMetric(10, 21); !ok || mtr.Bandwidth != 5 {
		t.Fatalf("residual 10->21 = %+v, %v", mtr, ok)
	}

	// Third request (demand 55): nothing left that wide.
	if _, err := m.Admit(req, 10, 55, optimalAlg); !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
	// Rejection must not change the residual overlay.
	if mtr, _ := m.Residual().LinkMetric(10, 20); mtr.Bandwidth != 50 {
		t.Fatal("rejection mutated residual")
	}
	if m.NumAdmitted() != 2 || m.AggregateDemand() != 105 {
		t.Fatalf("admitted=%d aggregate=%d", m.NumAdmitted(), m.AggregateDemand())
	}
}

func TestAdmitSaturationRemovesLink(t *testing.T) {
	o, req := chainOverlay(t)
	m := NewManager(o)
	// Demand exactly the full 60 on the 10->21 route: pin by saturating
	// 10->20 first.
	if _, err := m.Admit(req, 10, 100, optimalAlg); err != nil {
		t.Fatal(err)
	}
	if m.Residual().HasLink(10, 20) {
		t.Fatal("fully reserved link should be removed")
	}
	if _, err := m.Admit(req, 10, 60, optimalAlg); err != nil {
		t.Fatal(err)
	}
	if m.Residual().HasLink(10, 21) {
		t.Fatal("second link should be gone too")
	}
	// Everything saturated: reject.
	if _, err := m.Admit(req, 10, 1, optimalAlg); !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
}

func TestAdmitLeavesOriginalUntouched(t *testing.T) {
	o, req := chainOverlay(t)
	m := NewManager(o)
	if _, err := m.Admit(req, 10, 100, optimalAlg); err != nil {
		t.Fatal(err)
	}
	if mtr, ok := o.LinkMetric(10, 20); !ok || mtr.Bandwidth != 100 {
		t.Fatal("manager mutated the original overlay")
	}
}

func TestAdmitValidation(t *testing.T) {
	o, req := chainOverlay(t)
	m := NewManager(o)
	if _, err := m.Admit(req, 10, 0, optimalAlg); err == nil {
		t.Fatal("zero demand accepted")
	}
	if _, err := m.Admit(req, 10, -5, optimalAlg); err == nil {
		t.Fatal("negative demand accepted")
	}
}

func TestAdmitUntilRejected(t *testing.T) {
	o, req := chainOverlay(t)
	m := NewManager(o)
	// Demand 30: 100-link fits 3, 60-link fits 2 => 5 admissions.
	n, err := m.AdmitUntilRejected(req, 10, 30, optimalAlg, 100)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("admitted %d, want 5", n)
	}
	// Cap respected.
	m2 := NewManager(o)
	n, err = m2.AdmitUntilRejected(req, 10, 30, optimalAlg, 2)
	if err != nil || n != 2 {
		t.Fatalf("capped admissions = %d, %v", n, err)
	}
}

func TestReduceLinkBandwidthErrors(t *testing.T) {
	o, _ := chainOverlay(t)
	if err := o.ReduceLinkBandwidth(10, 99, 5); err == nil {
		t.Fatal("missing link accepted")
	}
	if err := o.ReduceLinkBandwidth(10, 20, -1); err == nil {
		t.Fatal("negative delta accepted")
	}
	// Reduction is visible through In() as well.
	if err := o.ReduceLinkBandwidth(10, 20, 40); err != nil {
		t.Fatal(err)
	}
	for _, a := range o.In(20) {
		if a.To == 10 && a.Bandwidth != 60 {
			t.Fatalf("In bandwidth = %d, want 60", a.Bandwidth)
		}
	}
}

func TestReleaseRestoresCapacity(t *testing.T) {
	o, req := chainOverlay(t)
	m := NewManager(o)
	a, err := m.Admit(req, 10, 100, optimalAlg) // saturates 10->20 away
	if err != nil {
		t.Fatal(err)
	}
	if m.Residual().HasLink(10, 20) {
		t.Fatal("link should be saturated away")
	}
	if err := m.Release(a); err != nil {
		t.Fatal(err)
	}
	// The link is back with its full capacity and original latency.
	mtr, ok := m.Residual().LinkMetric(10, 20)
	if !ok || mtr.Bandwidth != 100 || mtr.Latency != 5 {
		t.Fatalf("restored link = %+v, %v", mtr, ok)
	}
	// Double release is rejected.
	if err := m.Release(a); err == nil {
		t.Fatal("double release accepted")
	}
	// Partial reservation release: admit 40, release, capacity restored.
	b, err := m.Admit(req, 10, 40, optimalAlg)
	if err != nil {
		t.Fatal(err)
	}
	if mtr, _ := m.Residual().LinkMetric(10, 20); mtr.Bandwidth != 60 {
		t.Fatalf("after partial reserve = %+v", mtr)
	}
	if err := m.Release(b); err != nil {
		t.Fatal(err)
	}
	if mtr, _ := m.Residual().LinkMetric(10, 20); mtr.Bandwidth != 100 {
		t.Fatalf("after release = %+v", mtr)
	}
	if err := m.Release(&Admission{}); err == nil {
		t.Fatal("release of empty admission accepted")
	}
}

func TestAdmitReleaseCycleIsLossless(t *testing.T) {
	o, req := chainOverlay(t)
	m := NewManager(o)
	for cycle := 0; cycle < 20; cycle++ {
		a, err := m.Admit(req, 10, 70, optimalAlg)
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		if err := m.Release(a); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
	}
	// After any number of cycles the residual equals the original.
	for _, l := range o.Links() {
		got, ok := m.Residual().LinkMetric(l.From, l.To)
		if !ok || got.Bandwidth != l.Bandwidth || got.Latency != l.Latency {
			t.Fatalf("link %d->%d drifted: %+v", l.From, l.To, got)
		}
	}
}

func TestInstanceCapacity(t *testing.T) {
	o, req := chainOverlay(t)
	m := NewManager(o)
	m.SetInstanceCapacity(1)

	// Source capacity 1: only one admission can run at a time through the
	// single source instance.
	a, err := m.Admit(req, 10, 10, optimalAlg)
	if err != nil {
		t.Fatal(err)
	}
	if m.InstanceLoad(10) != 1 {
		t.Fatalf("source load = %d", m.InstanceLoad(10))
	}
	if _, err := m.Admit(req, 10, 10, optimalAlg); !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected at source capacity", err)
	}
	if err := m.Release(a); err != nil {
		t.Fatal(err)
	}
	if m.InstanceLoad(10) != 0 {
		t.Fatalf("source load after release = %d", m.InstanceLoad(10))
	}
	if _, err := m.Admit(req, 10, 10, optimalAlg); err != nil {
		t.Fatalf("admission after release: %v", err)
	}
}

func TestInstanceCapacityShiftsLoad(t *testing.T) {
	// Two consumers enter at different source instances; with capacity 1
	// the second federation must avoid the service-2 instance the first
	// one loaded, even though it is wider.
	o, req := chainOverlay(t)
	if err := o.AddInstance(11, 1, -1); err != nil {
		t.Fatal(err)
	}
	if err := o.AddLink(11, 20, 90, 5); err != nil {
		t.Fatal(err)
	}
	if err := o.AddLink(11, 21, 90, 5); err != nil {
		t.Fatal(err)
	}
	m := NewManager(o)
	m.SetInstanceCapacity(1)
	first, err := m.Admit(req, 10, 10, optimalAlg)
	if err != nil {
		t.Fatal(err)
	}
	firstNID, _ := first.Flow.Assigned(2)
	if firstNID != 20 {
		t.Fatalf("first admission on %d, want the wide instance 20", firstNID)
	}
	second, err := m.Admit(req, 11, 10, optimalAlg)
	if err != nil {
		t.Fatal(err)
	}
	secondNID, _ := second.Flow.Assigned(2)
	if secondNID != 21 {
		t.Fatalf("second admission on %d despite instance 20 at capacity", secondNID)
	}
}
