package provision

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// Regression test for the expiry-vs-release race on the active-tenant books:
// when an explicit Release races a TTL expiry of the same ticket, exactly one
// of them may depart the tenant. A double departure would decrement the
// class's active count twice (driving it negative and desyncing the
// active-tenant gauge from the real tenant set); a lost departure would leak
// the ticket. The writer loop serializes both paths and releaseCore bounces
// the loser with ErrNoTicket — pinned here under -race with the TTL timers
// firing mid-release on purpose.
func TestExpiryReleaseRaceKeepsLedgerExact(t *testing.T) {
	ov, req := chainOverlay(t)
	a := NewAllocator(ov, AllocatorOptions{})
	defer a.Close()

	const rounds = 40
	var wg sync.WaitGroup
	for i := 0; i < rounds; i++ {
		tkt, err := a.Admit(AdmitRequest{
			Req: req, Src: 10, Demand: 1, TTL: time.Millisecond,
			Tag: fmt.Sprintf("lease%d", i), Alg: optimalAlg,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			// Race the 1ms expiry; losing with ErrNoTicket is the only
			// acceptable failure.
			if err := a.Release(id); err != nil && !errors.Is(err, ErrNoTicket) {
				t.Errorf("release ticket %d: %v", id, err)
			}
		}(tkt.ID)
	}
	wg.Wait()

	// Quiesce: wait until every remaining lease expired.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && len(a.Tenants()) > 0 {
		time.Sleep(2 * time.Millisecond)
	}
	if n := len(a.Tenants()); n != 0 {
		t.Fatalf("%d tenants still active after every TTL lapsed", n)
	}

	// The class ledger must balance exactly: every admission departed once,
	// through exactly one of the two racing paths.
	cc := a.ClassCounters()[0]
	if cc.Admitted != rounds {
		t.Fatalf("admitted = %d, want %d", cc.Admitted, rounds)
	}
	if cc.Active != 0 {
		t.Fatalf("active = %d, want 0 (double departure decrements below zero)", cc.Active)
	}
	if got := cc.Released + cc.Expired; got != rounds {
		t.Fatalf("released(%d) + expired(%d) = %d, want %d", cc.Released, cc.Expired, got, rounds)
	}

	// And the recorded serialization agrees: exactly one departure event per
	// ticket, never two.
	departed := make(map[uint64]int)
	for _, ev := range a.Log() {
		if ev.Kind == EventRelease || ev.Kind == EventExpire {
			departed[ev.Ticket]++
		}
	}
	for id, n := range departed {
		if n != 1 {
			t.Fatalf("ticket %d departed %d times", id, n)
		}
	}
	if len(departed) != rounds {
		t.Fatalf("%d distinct departures logged, want %d", len(departed), rounds)
	}

	// The residual must be fully restored — no bandwidth leaked by the race.
	if u := a.Utilization(); u != 0 {
		t.Fatalf("utilization after full drain = %d%%, want 0", u)
	}
}

// A TTL lease must survive a migration: the timer captured the ticket ID,
// not the handle, so the fresh placement expires on the original deadline.
func TestMigrationCarriesLease(t *testing.T) {
	ov, req := chainOverlay(t)
	a := NewAllocator(ov, AllocatorOptions{})
	defer a.Close()

	tkt, err := a.Admit(AdmitRequest{
		Req: req, Src: 10, Demand: 5, TTL: 30 * time.Millisecond, Tag: "lease", Alg: optimalAlg,
	})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := a.Migrate(tkt.ID, optimalAlg, nil, "mig")
	if err != nil {
		t.Fatal(err)
	}
	if fresh.ID != tkt.ID {
		t.Fatalf("migration changed the ticket ID: %d -> %d", tkt.ID, fresh.ID)
	}
	if !fresh.Expires.Equal(tkt.Expires) {
		t.Fatalf("migration moved the lease deadline: %v -> %v", tkt.Expires, fresh.Expires)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && len(a.Tenants()) > 0 {
		time.Sleep(2 * time.Millisecond)
	}
	if n := len(a.Tenants()); n != 0 {
		t.Fatalf("migrated lease never expired (%d tenants active)", n)
	}
	cc := a.ClassCounters()[0]
	if cc.Expired != 1 || cc.Migrated != 1 {
		t.Fatalf("counters = %+v, want Expired=1 Migrated=1", cc)
	}
	if u := a.Utilization(); u != 0 {
		t.Fatalf("utilization after expiry = %d%%, want 0", u)
	}
}
