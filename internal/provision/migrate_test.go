package provision

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"sflow/internal/flow"
	"sflow/internal/overlay"
	"sflow/internal/qos"
	"sflow/internal/require"
)

// avoidLinkAlg federates like optimalAlg but with link u->v masked out, so a
// migration is forced onto the other route.
func avoidLinkAlg(u, v int) Algorithm {
	return func(ov *overlay.Overlay, req *require.Requirement, src int) (*flow.Graph, qos.Metric, error) {
		view := ov.Clone()
		if view.HasLink(u, v) {
			if err := view.RemoveLink(u, v); err != nil {
				return nil, qos.Unreachable, err
			}
		}
		return optimalAlg(view, req, src)
	}
}

// Migrate must move the tenant's reservations to the new route atomically:
// the old route's bandwidth comes back, the new route's is reserved, the
// lease and ticket id carry over, and the event log records the migration so
// Replay reproduces the exact final residual.
func TestMigrateMovesReservations(t *testing.T) {
	o, req := chainOverlay(t)
	a := NewAllocator(o, AllocatorOptions{})
	defer a.Close()

	tk, err := a.Admit(AdmitRequest{Req: req, Src: 10, Demand: 50, Tag: "m", Alg: optimalAlg})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tk.Reservations()[[2]int{10, 20}]; !ok {
		t.Fatalf("admission landed on %v, want the 100-link 10->20", tk.Reservations())
	}

	var gateOld, gateNext map[[2]int]Reservation
	gate := func(old, next map[[2]int]Reservation) error {
		gateOld, gateNext = old, next
		return nil
	}
	fresh, err := a.Migrate(tk.ID, avoidLinkAlg(10, 20), gate, "mig")
	if err != nil {
		t.Fatal(err)
	}
	if fresh.ID != tk.ID {
		t.Fatalf("migration minted a new ticket id %d, want %d", fresh.ID, tk.ID)
	}
	if _, ok := fresh.Reservations()[[2]int{10, 21}]; !ok {
		t.Fatalf("migrated reservations = %v, want the 60-link 10->21", fresh.Reservations())
	}
	if _, ok := gateOld[[2]int{10, 20}]; !ok {
		t.Fatalf("gate saw old reservations %v, want 10->20", gateOld)
	}
	if _, ok := gateNext[[2]int{10, 21}]; !ok {
		t.Fatalf("gate saw next reservations %v, want 10->21", gateNext)
	}
	all := a.Reservations()
	if !reflect.DeepEqual(all[tk.ID], fresh.Reservations()) {
		t.Fatalf("allocator reservations %v diverge from the ticket's %v", all[tk.ID], fresh.Reservations())
	}
	if cc := a.ClassCounters(); cc[0].Migrated != 1 {
		t.Fatalf("class counters = %+v, want Migrated 1", cc[0])
	}

	// Replaying the migration with the unmasked algorithm re-picks the
	// 100-link and silently diverges from the live run — algFor must return
	// the same masked algorithm the live migration used.
	diverged, err := Replay(o, AllocatorOptions{}, a.Log(), func(Event) Algorithm { return optimalAlg })
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(diverged.Reservations(), a.Reservations()) {
		t.Fatal("unmasked replay reproduced the masked migration, expected divergence")
	}
	replayed, err := Replay(o, AllocatorOptions{}, a.Log(), func(ev Event) Algorithm {
		if ev.Kind == EventMigrate {
			return avoidLinkAlg(10, 20)
		}
		return optimalAlg
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := replayed.Reservations(), a.Reservations(); !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed reservations %v, want %v", got, want)
	}
	if got, want := replayed.Utilization(), a.Utilization(); got != want {
		t.Fatalf("replayed utilization %d, want %d", got, want)
	}
}

// A vetoed migration must restore the original placement exactly and leave
// no trace in the event log; a failed re-federation must do the same.
func TestMigrateVetoAndFailureRestore(t *testing.T) {
	o, req := chainOverlay(t)
	a := NewAllocator(o, AllocatorOptions{})
	defer a.Close()

	tk, err := a.Admit(AdmitRequest{Req: req, Src: 10, Demand: 50, Tag: "m", Alg: optimalAlg})
	if err != nil {
		t.Fatal(err)
	}
	before := a.Reservations()
	logLen := len(a.Log())

	_, err = a.Migrate(tk.ID, avoidLinkAlg(10, 20), func(old, next map[[2]int]Reservation) error {
		return fmt.Errorf("not today")
	}, "veto")
	if !errors.Is(err, ErrVetoed) {
		t.Fatalf("vetoed migration returned %v, want ErrVetoed", err)
	}

	// Re-federation failure: demand 50 does not fit once both routes are
	// masked from the algorithm's view.
	failAlg := func(ov *overlay.Overlay, req *require.Requirement, src int) (*flow.Graph, qos.Metric, error) {
		return nil, qos.Unreachable, fmt.Errorf("no route")
	}
	if _, err := a.Migrate(tk.ID, failAlg, nil, "fail"); err == nil {
		t.Fatal("migration with a failing algorithm succeeded")
	}

	if got := a.Reservations(); !reflect.DeepEqual(got, before) {
		t.Fatalf("reservations after veto+failure = %v, want untouched %v", got, before)
	}
	if got := len(a.Log()); got != logLen {
		t.Fatalf("aborted migrations were logged: %d events, want %d", got, logLen)
	}
	if cc := a.ClassCounters(); cc[0].Migrated != 0 {
		t.Fatalf("class counters = %+v, want Migrated 0", cc[0])
	}
	if err := a.Release(tk.ID); err != nil {
		t.Fatalf("ticket unusable after aborted migrations: %v", err)
	}
}

func TestMigrateErrors(t *testing.T) {
	o, req := chainOverlay(t)
	a := NewAllocator(o, AllocatorOptions{})
	defer a.Close()

	if _, err := a.Migrate(7, optimalAlg, nil, "x"); !errors.Is(err, ErrNoTicket) {
		t.Fatalf("migrate of unknown ticket returned %v, want ErrNoTicket", err)
	}
	tk, err := a.Admit(AdmitRequest{Req: req, Src: 10, Demand: 10, Tag: "m", Alg: optimalAlg})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Migrate(tk.ID, nil, nil, "x"); err == nil {
		t.Fatal("migrate with a nil algorithm succeeded")
	}
}

// The typed rejection renders reason and detail for humans while staying
// errors.Is-compatible.
func TestAdmissionErrorText(t *testing.T) {
	err := &AdmissionError{Reason: ReasonBandwidth, Detail: "bottleneck 60 < demand 80"}
	if !errors.Is(err, ErrRejected) {
		t.Fatal("AdmissionError does not unwrap to ErrRejected")
	}
	msg := err.Error()
	if !strings.Contains(msg, string(ReasonBandwidth)) || !strings.Contains(msg, "bottleneck") {
		t.Fatalf("error text %q misses reason or detail", msg)
	}
}
