// Package baseline implements the paper's baseline algorithm (Table 1): the
// polynomial-time exact construction of the optimal service flow graph for a
// *single-path* service requirement.
//
// The steps follow the paper: (1) all-pairs shortest-widest paths over the
// overlay (done once when the abstract graph is built), (2) construct the
// service abstract graph, (3) compute the shortest-widest abstract path from
// the source instance to the best sink instance, (4) expand every abstract
// edge into the concrete shortest-widest overlay route.
//
// Solve additionally accepts pinned instances (a SID -> NID map). Pins are
// how the reduction heuristics reuse the baseline: a split-and-merge block is
// solved branch by branch with the splitting and merging instances pinned.
package baseline

import (
	"errors"
	"fmt"
	"sort"

	"sflow/internal/abstract"
	"sflow/internal/flow"
	"sflow/internal/qos"
)

// ErrNotPath is returned when the requirement is not a single service path.
var ErrNotPath = errors.New("baseline: requirement is not a single service path")

// ErrInfeasible is returned when no instance assignment connects the source
// to the sink.
var ErrInfeasible = errors.New("baseline: no feasible service flow graph")

// Result is the output of the baseline algorithm.
type Result struct {
	// Flow is the computed (partial) service flow graph covering exactly
	// the services of the path requirement.
	Flow *flow.Graph
	// Metric is the end-to-end shortest-widest quality of the selected
	// abstract path.
	Metric qos.Metric
}

// Solve runs the baseline algorithm on a path-shaped requirement within the
// given abstract graph. src is the designated instance of the source service
// (the node where federation starts); pins force specific instances for
// specific services (nil for none). The source service is implicitly pinned
// to src.
func Solve(ag *abstract.Graph, src int, pins map[int]int) (*Result, error) {
	chain := ag.Requirement().PathServices()
	if chain == nil {
		return nil, ErrNotPath
	}
	return SolveChain(ag, chain, src, pins)
}

// SolveChain runs the baseline algorithm along an explicit chain of services
// within ag. The chain need not be the whole requirement: the reduction
// heuristics call SolveChain on each single-path fragment of a general
// requirement, typically with both endpoints pinned. src is the instance of
// chain[0]; pins force instances for later chain services.
func SolveChain(ag *abstract.Graph, chain []int, src int, pins map[int]int) (*Result, error) {
	if len(chain) < 2 {
		return nil, fmt.Errorf("baseline: chain %v too short", chain)
	}
	if got := ag.Overlay().SIDOf(src); got != chain[0] {
		return nil, fmt.Errorf("baseline: source instance %d provides service %d, chain starts at %d",
			src, got, chain[0])
	}
	layers, err := buildLayers(ag, chain, src, pins)
	if err != nil {
		return nil, err
	}
	lg := newLayeredGraph(ag, layers)
	res := qos.ShortestWidest(lg, src)

	// Best sink instance in the shortest-widest order.
	best, bestMetric := -1, qos.Unreachable
	for _, nid := range layers[len(layers)-1] {
		if m := res.Metric(nid); m.Reachable() && (best == -1 || m.Better(bestMetric)) {
			best, bestMetric = nid, m
		}
	}
	if best == -1 {
		return nil, ErrInfeasible
	}
	abstractPath := res.PathTo(best)
	if len(abstractPath) != len(chain) {
		// Cannot happen: the layered graph only has layer-to-layer arcs.
		return nil, fmt.Errorf("baseline: abstract path %v does not span %d layers", abstractPath, len(chain))
	}

	// Step 4: expand abstract edges into concrete overlay routes.
	fg := flow.New()
	if err := fg.Assign(chain[0], src); err != nil {
		return nil, err
	}
	for i := 0; i+1 < len(abstractPath); i++ {
		from, to := abstractPath[i], abstractPath[i+1]
		e := flow.Edge{
			FromSID: chain[i], ToSID: chain[i+1],
			FromNID: from, ToNID: to,
			Path:   ag.EdgePath(from, to),
			Metric: ag.EdgeMetric(from, to),
		}
		if err := fg.AddEdge(e); err != nil {
			return nil, err
		}
	}
	return &Result{Flow: fg, Metric: bestMetric}, nil
}

// SolveBestSource runs Solve from every instance of the source service and
// returns the best result (used when the consumer does not designate a
// particular source instance).
func SolveBestSource(ag *abstract.Graph, pins map[int]int) (*Result, error) {
	req := ag.Requirement()
	chain := req.PathServices()
	if chain == nil {
		return nil, ErrNotPath
	}
	sources := ag.Slots(chain[0])
	if nid, ok := pins[chain[0]]; ok {
		sources = []int{nid}
	}
	var best *Result
	for _, src := range sources {
		r, err := Solve(ag, src, pins)
		if err != nil {
			if errors.Is(err, ErrInfeasible) {
				continue
			}
			return nil, err
		}
		if best == nil || r.Metric.Better(best.Metric) {
			best = r
		}
	}
	if best == nil {
		return nil, ErrInfeasible
	}
	return best, nil
}

// buildLayers returns, per chain position, the candidate instances (a single
// one where pinned).
func buildLayers(ag *abstract.Graph, chain []int, src int, pins map[int]int) ([][]int, error) {
	layers := make([][]int, len(chain))
	for i, sid := range chain {
		switch {
		case i == 0:
			layers[i] = []int{src}
		default:
			if nid, ok := pins[sid]; ok {
				if got := ag.Overlay().SIDOf(nid); got != sid {
					return nil, fmt.Errorf("baseline: pin %d for service %d provides service %d", nid, sid, got)
				}
				layers[i] = []int{nid}
			} else {
				layers[i] = ag.Slots(sid)
			}
		}
		if len(layers[i]) == 0 {
			return nil, fmt.Errorf("baseline: no candidate instance for service %d", sid)
		}
	}
	return layers, nil
}

// layeredGraph exposes the abstract graph of a path requirement as a
// qos.Graph whose arcs go from each layer to the next.
type layeredGraph struct {
	nodes []int
	out   map[int][]qos.Arc
}

func newLayeredGraph(ag *abstract.Graph, layers [][]int) *layeredGraph {
	lg := &layeredGraph{out: make(map[int][]qos.Arc)}
	seen := make(map[int]struct{})
	for i, layer := range layers {
		for _, nid := range layer {
			if _, dup := seen[nid]; !dup {
				seen[nid] = struct{}{}
				lg.nodes = append(lg.nodes, nid)
			}
			if i+1 >= len(layers) {
				continue
			}
			for _, next := range layers[i+1] {
				m := ag.EdgeMetric(nid, next)
				if !m.Reachable() || next == nid {
					continue
				}
				lg.out[nid] = append(lg.out[nid], qos.Arc{To: next, Bandwidth: m.Bandwidth, Latency: m.Latency})
			}
		}
	}
	sort.Ints(lg.nodes)
	return lg
}

func (lg *layeredGraph) Nodes() []int        { return lg.nodes }
func (lg *layeredGraph) Out(u int) []qos.Arc { return lg.out[u] }
