package baseline

import (
	"errors"
	"math/rand"
	"testing"

	"sflow/internal/abstract"
	"sflow/internal/overlay"
	"sflow/internal/qos"
	"sflow/internal/require"
	"sflow/internal/topology"
)

// trapOverlay builds a chain requirement 1->2->3 where the greedy first hop
// (widest link out of the source) leads into a narrow dead-end, so only a
// globally optimal algorithm picks the right service-2 instance.
func trapOverlay(t *testing.T) (*abstract.Graph, *require.Requirement) {
	t.Helper()
	o := overlay.New()
	for _, in := range [][2]int{{10, 1}, {20, 2}, {21, 2}, {30, 3}} {
		if err := o.AddInstance(in[0], in[1], -1); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range [][4]int64{
		{10, 20, 100, 1}, // tempting wide first hop...
		{20, 30, 10, 1},  // ...but narrow afterwards
		{10, 21, 50, 2},
		{21, 30, 50, 2},
	} {
		if err := o.AddLink(int(l[0]), int(l[1]), l[2], l[3]); err != nil {
			t.Fatal(err)
		}
	}
	req, err := require.NewPath(1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	ag, err := abstract.Build(o, req)
	if err != nil {
		t.Fatal(err)
	}
	return ag, req
}

func TestSolvePicksGlobalOptimum(t *testing.T) {
	ag, req := trapOverlay(t)
	res, err := Solve(ag, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metric != (qos.Metric{Bandwidth: 50, Latency: 4}) {
		t.Fatalf("metric = %+v, want {50 4}", res.Metric)
	}
	if nid, _ := res.Flow.Assigned(2); nid != 21 {
		t.Fatalf("service 2 assigned to %d, want 21", nid)
	}
	if err := res.Flow.Validate(req, ag.Overlay()); err != nil {
		t.Fatalf("result does not validate: %v", err)
	}
	if got := res.Flow.Quality(req); got != res.Metric {
		t.Fatalf("flow quality %+v != reported metric %+v", got, res.Metric)
	}
}

func TestSolveRespectsPins(t *testing.T) {
	ag, req := trapOverlay(t)
	res, err := Solve(ag, 10, map[int]int{2: 20})
	if err != nil {
		t.Fatal(err)
	}
	if nid, _ := res.Flow.Assigned(2); nid != 20 {
		t.Fatalf("pin ignored: service 2 on %d", nid)
	}
	if res.Metric != (qos.Metric{Bandwidth: 10, Latency: 2}) {
		t.Fatalf("pinned metric = %+v", res.Metric)
	}
	if err := res.Flow.Validate(req, ag.Overlay()); err != nil {
		t.Fatal(err)
	}
	// Pin of the wrong service type is rejected.
	if _, err := Solve(ag, 10, map[int]int{2: 30}); err == nil {
		t.Fatal("wrong-service pin accepted")
	}
}

func TestSolveErrors(t *testing.T) {
	ag, _ := trapOverlay(t)
	// Wrong source instance service.
	if _, err := Solve(ag, 20, nil); err == nil {
		t.Fatal("source of wrong service accepted")
	}
	// Non-path requirement.
	o := ag.Overlay()
	dag, err := require.FromEdges([][2]int{{1, 2}, {1, 3}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	ag2, err := abstract.Build(o, dag)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(ag2, 10, nil); !errors.Is(err, ErrNotPath) {
		t.Fatalf("err = %v, want ErrNotPath", err)
	}
}

func TestSolveInfeasible(t *testing.T) {
	o := overlay.New()
	for _, in := range [][2]int{{10, 1}, {20, 2}, {30, 3}} {
		if err := o.AddInstance(in[0], in[1], -1); err != nil {
			t.Fatal(err)
		}
	}
	// 1 -> 2 exists but 2 -> 3 does not.
	if err := o.AddLink(10, 20, 10, 1); err != nil {
		t.Fatal(err)
	}
	req, err := require.NewPath(1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	ag, err := abstract.Build(o, req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(ag, 10, nil); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	if _, err := SolveBestSource(ag, nil); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("SolveBestSource err = %v, want ErrInfeasible", err)
	}
}

func TestSolveBestSource(t *testing.T) {
	o := overlay.New()
	for _, in := range [][2]int{{10, 1}, {11, 1}, {20, 2}} {
		if err := o.AddInstance(in[0], in[1], -1); err != nil {
			t.Fatal(err)
		}
	}
	if err := o.AddLink(10, 20, 10, 1); err != nil {
		t.Fatal(err)
	}
	if err := o.AddLink(11, 20, 90, 1); err != nil {
		t.Fatal(err)
	}
	req, err := require.NewPath(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	ag, err := abstract.Build(o, req)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveBestSource(ag, nil)
	if err != nil {
		t.Fatal(err)
	}
	if nid, _ := res.Flow.Assigned(1); nid != 11 {
		t.Fatalf("best source = %d, want 11", nid)
	}
	// Pinning the source restricts the search.
	res, err = SolveBestSource(ag, map[int]int{1: 10})
	if err != nil {
		t.Fatal(err)
	}
	if nid, _ := res.Flow.Assigned(1); nid != 10 {
		t.Fatalf("pinned source = %d, want 10", nid)
	}
}

// bruteBest enumerates every instance assignment of a path requirement and
// returns the best assignment metric.
func bruteBest(ag *abstract.Graph, chain []int, src int) qos.Metric {
	best := qos.Unreachable
	assign := map[int]int{chain[0]: src}
	var walk func(i int)
	walk = func(i int) {
		if i == len(chain) {
			if m := ag.AssignmentMetric(assign); m.Reachable() && m.Better(best) {
				best = m
			}
			return
		}
		for _, nid := range ag.Slots(chain[i]) {
			assign[chain[i]] = nid
			walk(i + 1)
		}
		delete(assign, chain[i])
	}
	walk(1)
	return best
}

func TestSolveMatchesBruteForceOnRandomOverlays(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 25; trial++ {
		services := 3 + rng.Intn(3) // path of 3..5 services
		instPer := 1 + rng.Intn(3)
		under, err := topology.GenerateUniform(rng, topology.Config{Nodes: 12, ExtraLinks: 14})
		if err != nil {
			t.Fatal(err)
		}
		req, err := require.GeneratePath(services)
		if err != nil {
			t.Fatal(err)
		}
		compat := overlay.NewCompatibility()
		for _, e := range req.Edges() {
			compat.Allow(e[0], e[1])
		}
		var placements []overlay.Placement
		nid := 0
		for _, sid := range req.Services() {
			n := instPer
			if sid == req.Source() {
				n = 1
			}
			for k := 0; k < n; k++ {
				placements = append(placements, overlay.Placement{NID: nid, SID: sid, Host: rng.Intn(12)})
				nid++
			}
		}
		ov, err := overlay.Build(under, placements, compat)
		if err != nil {
			t.Fatal(err)
		}
		ag, err := abstract.Build(ov, req)
		if err != nil {
			t.Fatal(err)
		}
		src := ag.Slots(req.Source())[0]
		res, err := Solve(ag, src, nil)
		want := bruteBest(ag, req.PathServices(), src)
		if err != nil {
			if errors.Is(err, ErrInfeasible) && !want.Reachable() {
				continue
			}
			t.Fatalf("trial %d: %v (brute force says %+v)", trial, err, want)
		}
		if res.Metric != want {
			t.Fatalf("trial %d: baseline %+v, brute force %+v", trial, res.Metric, want)
		}
		if err := res.Flow.Validate(req, ov); err != nil {
			t.Fatalf("trial %d: invalid flow: %v", trial, err)
		}
	}
}

func TestSolveChainBothEndsPinned(t *testing.T) {
	ag, _ := trapOverlay(t)
	// Chain 1 -> 2 -> 3 with the sink pinned: only instance choices for
	// service 2 remain.
	res, err := SolveChain(ag, []int{1, 2, 3}, 10, map[int]int{3: 30})
	if err != nil {
		t.Fatal(err)
	}
	if nid, _ := res.Flow.Assigned(2); nid != 21 {
		t.Fatalf("mid service on %d, want 21", nid)
	}
	// Chain of two with both endpoints pinned: nothing to choose, but the
	// result must still carry the concrete stream.
	res, err = SolveChain(ag, []int{1, 2}, 10, map[int]int{2: 20})
	if err != nil {
		t.Fatal(err)
	}
	e, ok := res.Flow.Edge(1, 2)
	if !ok || e.ToNID != 20 {
		t.Fatalf("edge = %+v", e)
	}
	// Too-short chains are rejected.
	if _, err := SolveChain(ag, []int{1}, 10, nil); err == nil {
		t.Fatal("1-element chain accepted")
	}
}
