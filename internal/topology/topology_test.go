package topology

import (
	"math/rand"
	"testing"

	"sflow/internal/qos"
)

func TestAddLinkValidation(t *testing.T) {
	nw := New(3)
	tests := []struct {
		name       string
		a, b       int
		bw, lat    int64
		wantOK     bool
		prepDupSet bool
	}{
		{name: "valid", a: 0, b: 1, bw: 100, lat: 5, wantOK: true},
		{name: "self loop", a: 1, b: 1, bw: 100, lat: 5},
		{name: "out of range", a: 0, b: 3, bw: 100, lat: 5},
		{name: "negative node", a: -1, b: 1, bw: 100, lat: 5},
		{name: "zero bandwidth", a: 1, b: 2, bw: 0, lat: 5},
		{name: "negative latency", a: 1, b: 2, bw: 100, lat: -1},
		{name: "duplicate", a: 0, b: 1, bw: 50, lat: 5},
		{name: "duplicate reversed", a: 1, b: 0, bw: 50, lat: 5},
	}
	for _, tt := range tests {
		err := nw.AddLink(tt.a, tt.b, tt.bw, tt.lat)
		if (err == nil) != tt.wantOK {
			t.Errorf("%s: AddLink err = %v, wantOK = %v", tt.name, err, tt.wantOK)
		}
	}
}

func TestLinkIsBidirectional(t *testing.T) {
	nw := New(2)
	if err := nw.AddLink(0, 1, 100, 7); err != nil {
		t.Fatal(err)
	}
	want := []qos.Arc{{To: 1, Bandwidth: 100, Latency: 7}}
	if got := nw.Out(0); len(got) != 1 || got[0] != want[0] {
		t.Fatalf("Out(0) = %v", got)
	}
	if got := nw.Out(1); len(got) != 1 || got[0].To != 0 {
		t.Fatalf("Out(1) = %v", got)
	}
	if !nw.HasLink(0, 1) || !nw.HasLink(1, 0) {
		t.Fatal("HasLink should be symmetric")
	}
	if nw.Degree(0) != 1 || nw.Degree(1) != 1 {
		t.Fatal("degree wrong")
	}
}

func TestConnected(t *testing.T) {
	nw := New(4)
	if nw.Connected() {
		t.Fatal("empty 4-node network reported connected")
	}
	nw.AddLink(0, 1, 1, 1)
	nw.AddLink(2, 3, 1, 1)
	if nw.Connected() {
		t.Fatal("two components reported connected")
	}
	nw.AddLink(1, 2, 1, 1)
	if !nw.Connected() {
		t.Fatal("connected network reported disconnected")
	}
	if !New(1).Connected() || !New(0).Connected() {
		t.Fatal("trivial networks should be connected")
	}
}

func TestGenerateUniform(t *testing.T) {
	for _, n := range []int{2, 5, 10, 50} {
		rng := rand.New(rand.NewSource(int64(n)))
		nw, err := GenerateUniform(rng, Config{Nodes: n, ExtraLinks: n})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if nw.Size() != n {
			t.Fatalf("n=%d: size %d", n, nw.Size())
		}
		if !nw.Connected() {
			t.Fatalf("n=%d: not connected", n)
		}
		if len(nw.Links()) < n-1 {
			t.Fatalf("n=%d: fewer links than spanning tree", n)
		}
		for _, l := range nw.Links() {
			if l.Bandwidth < 1000 || l.Bandwidth > 10000 {
				t.Fatalf("bandwidth %d out of default range", l.Bandwidth)
			}
			if l.Latency < 100 || l.Latency > 5000 {
				t.Fatalf("latency %d out of default range", l.Latency)
			}
		}
	}
}

func TestGenerateUniformDeterministic(t *testing.T) {
	a, err := GenerateUniform(rand.New(rand.NewSource(99)), Config{Nodes: 20, ExtraLinks: -1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateUniform(rand.New(rand.NewSource(99)), Config{Nodes: 20, ExtraLinks: -1})
	if err != nil {
		t.Fatal(err)
	}
	la, lb := a.SortLinks(), b.SortLinks()
	if len(la) != len(lb) {
		t.Fatalf("different link counts: %d vs %d", len(la), len(lb))
	}
	for i := range la {
		if la[i] != lb[i] {
			t.Fatalf("link %d differs: %+v vs %+v", i, la[i], lb[i])
		}
	}
}

func TestGenerateUniformRejectsBadConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := GenerateUniform(rng, Config{Nodes: 1}); err == nil {
		t.Fatal("accepted 1-node config")
	}
	if _, err := GenerateUniform(rng, Config{Nodes: 5, MinBandwidth: 10, MaxBandwidth: 5}); err == nil {
		t.Fatal("accepted inverted bandwidth range")
	}
	if _, err := GenerateUniform(rng, Config{Nodes: 5, MinLatency: 10, MaxLatency: 5, MinBandwidth: 1, MaxBandwidth: 2}); err == nil {
		t.Fatal("accepted inverted latency range")
	}
}

func TestGenerateWaxman(t *testing.T) {
	for _, n := range []int{2, 10, 40} {
		rng := rand.New(rand.NewSource(int64(n) * 3))
		nw, err := GenerateWaxman(rng, WaxmanConfig{Config: Config{Nodes: n, ExtraLinks: -1}})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !nw.Connected() {
			t.Fatalf("n=%d: waxman network not connected", n)
		}
		for _, l := range nw.Links() {
			if l.Latency < 100 || l.Latency > 5000 {
				t.Fatalf("latency %d out of range", l.Latency)
			}
		}
	}
}

func TestGeneratedNetworkIsRoutable(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	nw, err := GenerateUniform(rng, Config{Nodes: 30, ExtraLinks: 30})
	if err != nil {
		t.Fatal(err)
	}
	res := qos.ShortestWidest(nw, 0)
	for n := 0; n < 30; n++ {
		if !res.Metric(n).Reachable() {
			t.Fatalf("node %d unreachable in connected network", n)
		}
	}
}

func TestSortLinksStable(t *testing.T) {
	nw := New(4)
	nw.AddLink(2, 3, 1, 1)
	nw.AddLink(0, 1, 1, 1)
	nw.AddLink(1, 3, 1, 1)
	s := nw.SortLinks()
	for i := 1; i < len(s); i++ {
		if s[i-1].A > s[i].A || (s[i-1].A == s[i].A && s[i-1].B > s[i].B) {
			t.Fatalf("not sorted: %+v", s)
		}
	}
	if len(nw.Links()) != 3 {
		t.Fatal("SortLinks must not mutate")
	}
}
