// Package topology models the underlying (physical) network beneath a
// service overlay and generates random instances of it. The paper evaluates
// on random networks of 10..50 nodes; this package provides seeded Waxman and
// uniform random generators that always produce connected networks.
package topology

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"sflow/internal/qos"
)

// Link is one bidirectional physical link.
type Link struct {
	A, B      int
	Bandwidth int64 // Kbit/s
	Latency   int64 // microseconds
}

// Network is an undirected, weighted network over nodes 0..N-1. It
// implements qos.Graph by exposing every link as a pair of directed arcs.
type Network struct {
	n     int
	links []Link
	adj   map[int][]qos.Arc
}

// New returns an empty network over n nodes.
func New(n int) *Network {
	return &Network{n: n, adj: make(map[int][]qos.Arc, n)}
}

// Size returns the number of nodes.
func (nw *Network) Size() int { return nw.n }

// Links returns all links in insertion order. The slice must not be modified.
func (nw *Network) Links() []Link { return nw.links }

// AddLink inserts a bidirectional link between a and b.
func (nw *Network) AddLink(a, b int, bandwidth, latency int64) error {
	switch {
	case a < 0 || a >= nw.n || b < 0 || b >= nw.n:
		return fmt.Errorf("topology: link %d-%d out of range [0,%d)", a, b, nw.n)
	case a == b:
		return fmt.Errorf("topology: self-loop on node %d", a)
	case bandwidth <= 0:
		return fmt.Errorf("topology: link %d-%d has non-positive bandwidth %d", a, b, bandwidth)
	case latency < 0:
		return fmt.Errorf("topology: link %d-%d has negative latency %d", a, b, latency)
	case nw.HasLink(a, b):
		return fmt.Errorf("topology: duplicate link %d-%d", a, b)
	}
	nw.links = append(nw.links, Link{A: a, B: b, Bandwidth: bandwidth, Latency: latency})
	nw.adj[a] = append(nw.adj[a], qos.Arc{To: b, Bandwidth: bandwidth, Latency: latency})
	nw.adj[b] = append(nw.adj[b], qos.Arc{To: a, Bandwidth: bandwidth, Latency: latency})
	return nil
}

// HasLink reports whether a link between a and b exists (either direction).
func (nw *Network) HasLink(a, b int) bool {
	for _, arc := range nw.adj[a] {
		if arc.To == b {
			return true
		}
	}
	return false
}

// Nodes implements qos.Graph.
func (nw *Network) Nodes() []int {
	out := make([]int, nw.n)
	for i := range out {
		out[i] = i
	}
	return out
}

// Out implements qos.Graph.
func (nw *Network) Out(u int) []qos.Arc { return nw.adj[u] }

// Degree returns the number of links incident to node u.
func (nw *Network) Degree(u int) int { return len(nw.adj[u]) }

// Connected reports whether the network is connected (a zero- or one-node
// network is connected).
func (nw *Network) Connected() bool {
	if nw.n <= 1 {
		return true
	}
	seen := make([]bool, nw.n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, arc := range nw.adj[u] {
			if !seen[arc.To] {
				seen[arc.To] = true
				count++
				stack = append(stack, arc.To)
			}
		}
	}
	return count == nw.n
}

// Config controls random network generation.
type Config struct {
	// Nodes is the network size. Must be >= 2.
	Nodes int
	// ExtraLinks is how many links to add beyond the spanning tree that
	// guarantees connectivity. Negative means the default of Nodes.
	ExtraLinks int
	// Bandwidth range in Kbit/s (inclusive). Zero values select the
	// defaults 1000..10000.
	MinBandwidth, MaxBandwidth int64
	// Latency range in microseconds (inclusive). Zero values select the
	// defaults 100..5000.
	MinLatency, MaxLatency int64
}

func (c Config) withDefaults() Config {
	if c.ExtraLinks < 0 {
		c.ExtraLinks = c.Nodes
	}
	if c.MinBandwidth == 0 && c.MaxBandwidth == 0 {
		c.MinBandwidth, c.MaxBandwidth = 1000, 10000
	}
	if c.MinLatency == 0 && c.MaxLatency == 0 {
		c.MinLatency, c.MaxLatency = 100, 5000
	}
	return c
}

func (c Config) validate() error {
	if c.Nodes < 2 {
		return fmt.Errorf("topology: need at least 2 nodes, got %d", c.Nodes)
	}
	if c.MinBandwidth <= 0 || c.MaxBandwidth < c.MinBandwidth {
		return fmt.Errorf("topology: bad bandwidth range [%d,%d]", c.MinBandwidth, c.MaxBandwidth)
	}
	if c.MinLatency < 0 || c.MaxLatency < c.MinLatency {
		return fmt.Errorf("topology: bad latency range [%d,%d]", c.MinLatency, c.MaxLatency)
	}
	return nil
}

// GenerateUniform builds a connected random network: a random spanning tree
// plus ExtraLinks uniformly random additional links, with link weights drawn
// uniformly from the configured ranges. Deterministic for a given rng state.
func GenerateUniform(rng *rand.Rand, cfg Config) (*Network, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	nw := New(cfg.Nodes)
	// Random spanning tree: attach each node (in random order) to a random
	// earlier node.
	perm := rng.Perm(cfg.Nodes)
	for i := 1; i < cfg.Nodes; i++ {
		a, b := perm[i], perm[rng.Intn(i)]
		if err := nw.AddLink(a, b, randIn(rng, cfg.MinBandwidth, cfg.MaxBandwidth), randIn(rng, cfg.MinLatency, cfg.MaxLatency)); err != nil {
			return nil, err
		}
	}
	added, attempts := 0, 0
	maxLinks := cfg.Nodes * (cfg.Nodes - 1) / 2
	for added < cfg.ExtraLinks && len(nw.links) < maxLinks && attempts < 50*cfg.ExtraLinks+100 {
		attempts++
		a, b := rng.Intn(cfg.Nodes), rng.Intn(cfg.Nodes)
		if a == b || nw.HasLink(a, b) {
			continue
		}
		if err := nw.AddLink(a, b, randIn(rng, cfg.MinBandwidth, cfg.MaxBandwidth), randIn(rng, cfg.MinLatency, cfg.MaxLatency)); err != nil {
			return nil, err
		}
		added++
	}
	return nw, nil
}

// WaxmanConfig extends Config with the Waxman model parameters.
type WaxmanConfig struct {
	Config
	// Alpha scales the overall link probability (default 0.6).
	Alpha float64
	// Beta controls how quickly probability decays with distance
	// (default 0.4; larger means longer links are more likely).
	Beta float64
}

// GenerateWaxman builds a connected random network using the Waxman model:
// nodes are placed uniformly in the unit square and each pair is linked with
// probability Alpha * exp(-d / (Beta * sqrt(2))). Link latency is
// proportional to Euclidean distance (scaled into the configured latency
// range); bandwidth is uniform in the configured range. A minimal set of
// nearest-neighbour links is added afterwards if needed for connectivity.
func GenerateWaxman(rng *rand.Rand, cfg WaxmanConfig) (*Network, error) {
	c := cfg.Config.withDefaults()
	if err := c.validate(); err != nil {
		return nil, err
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = 0.6
	}
	if cfg.Beta == 0 {
		cfg.Beta = 0.4
	}
	type pt struct{ x, y float64 }
	pts := make([]pt, c.Nodes)
	for i := range pts {
		pts[i] = pt{rng.Float64(), rng.Float64()}
	}
	maxD := math.Sqrt2
	dist := func(i, j int) float64 {
		dx, dy := pts[i].x-pts[j].x, pts[i].y-pts[j].y
		return math.Hypot(dx, dy)
	}
	latOf := func(d float64) int64 {
		span := float64(c.MaxLatency - c.MinLatency)
		return c.MinLatency + int64(d/maxD*span)
	}
	nw := New(c.Nodes)
	for i := 0; i < c.Nodes; i++ {
		for j := i + 1; j < c.Nodes; j++ {
			d := dist(i, j)
			if rng.Float64() < cfg.Alpha*math.Exp(-d/(cfg.Beta*maxD)) {
				if err := nw.AddLink(i, j, randIn(rng, c.MinBandwidth, c.MaxBandwidth), latOf(d)); err != nil {
					return nil, err
				}
			}
		}
	}
	// Connectivity repair: link each unreached component to its nearest
	// reached node.
	for !nw.Connected() {
		reached := make([]bool, c.Nodes)
		stack := []int{0}
		reached[0] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, arc := range nw.adj[u] {
				if !reached[arc.To] {
					reached[arc.To] = true
					stack = append(stack, arc.To)
				}
			}
		}
		bi, bj, bd := -1, -1, math.Inf(1)
		for i := 0; i < c.Nodes; i++ {
			if !reached[i] {
				continue
			}
			for j := 0; j < c.Nodes; j++ {
				if reached[j] {
					continue
				}
				if d := dist(i, j); d < bd {
					bi, bj, bd = i, j, d
				}
			}
		}
		if err := nw.AddLink(bi, bj, randIn(rng, c.MinBandwidth, c.MaxBandwidth), latOf(bd)); err != nil {
			return nil, err
		}
	}
	return nw, nil
}

// SortLinks returns the links sorted by (A, B); useful for deterministic
// output in serialisation and tests.
func (nw *Network) SortLinks() []Link {
	out := make([]Link, len(nw.links))
	copy(out, nw.links)
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

func randIn(rng *rand.Rand, lo, hi int64) int64 {
	if hi <= lo {
		return lo
	}
	return lo + rng.Int63n(hi-lo+1)
}
