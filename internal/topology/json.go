package topology

import (
	"encoding/json"
	"fmt"
)

// networkJSON is the wire form of a Network.
type networkJSON struct {
	Nodes int    `json:"nodes"`
	Links []Link `json:"links"`
}

// MarshalJSON encodes the network as its size and sorted link list.
func (nw *Network) MarshalJSON() ([]byte, error) {
	return json.Marshal(networkJSON{Nodes: nw.n, Links: nw.SortLinks()})
}

// UnmarshalJSON decodes a network, re-validating every link.
func (nw *Network) UnmarshalJSON(data []byte) error {
	var w networkJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("topology: decode: %w", err)
	}
	if w.Nodes < 0 {
		return fmt.Errorf("topology: negative node count %d", w.Nodes)
	}
	dec := New(w.Nodes)
	for _, l := range w.Links {
		if err := dec.AddLink(l.A, l.B, l.Bandwidth, l.Latency); err != nil {
			return err
		}
	}
	*nw = *dec
	return nil
}
