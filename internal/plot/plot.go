// Package plot renders experiment series as standalone SVG line charts with
// nothing but the standard library — axes, ticks, one polyline per
// algorithm, and a legend — so the reproduced figures can be eyeballed next
// to the paper's.
package plot

import (
	"fmt"
	"math"
	"strings"

	"sflow/internal/experiments"
)

// Canvas geometry (viewbox units).
const (
	width   = 640
	height  = 420
	marginL = 70
	marginR = 150
	marginT = 48
	marginB = 56
)

// palette holds the series colours, cycled in column order.
var palette = []string{"#1f6feb", "#d33f49", "#2e9e44", "#8957e5", "#b08800", "#0598a8"}

// SVG renders one series as a complete SVG document.
func SVG(s *experiments.Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 %d %d" font-family="sans-serif" font-size="12">`+"\n", width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="24" font-size="14" font-weight="bold">%s</text>`+"\n", marginL, escape(s.Title))

	xs, lo, hi := bounds(s)
	plotW := width - marginL - marginR
	plotH := height - marginT - marginB
	xPos := func(x int) float64 {
		if len(xs) == 1 {
			return marginL + float64(plotW)/2
		}
		frac := float64(x-xs[0]) / float64(xs[len(xs)-1]-xs[0])
		return marginL + frac*float64(plotW)
	}
	yPos := func(v float64) float64 {
		if hi == lo {
			return marginT + float64(plotH)/2
		}
		frac := (v - lo) / (hi - lo)
		return float64(marginT) + (1-frac)*float64(plotH)
	}

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, height-marginB, width-marginR, height-marginB)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT, marginL, height-marginB)

	// X ticks: one per point.
	for _, x := range xs {
		px := xPos(x)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="black"/>`+"\n",
			px, height-marginB, px, height-marginB+5)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle">%d</text>`+"\n",
			px, height-marginB+20, x)
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle">%s</text>`+"\n",
		marginL+plotW/2, height-12, escape(s.XLabel))

	// Y ticks: five levels.
	for i := 0; i <= 4; i++ {
		v := lo + (hi-lo)*float64(i)/4
		py := yPos(v)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="black"/>`+"\n",
			marginL-5, py, marginL, py)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#dddddd"/>`+"\n",
			marginL, py, width-marginR, py)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end" dy="4">%s</text>`+"\n",
			marginL-8, py, formatTick(v))
	}
	fmt.Fprintf(&b, `<text x="16" y="%d" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`+"\n",
		marginT+plotH/2, marginT+plotH/2, escape(s.YLabel))

	// One polyline + markers per column.
	for ci, col := range s.Columns {
		color := palette[ci%len(palette)]
		var pts []string
		for _, p := range s.Points {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", xPos(p.X), yPos(p.Values[col])))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
			strings.Join(pts, " "), color)
		for _, p := range s.Points {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3.5" fill="%s"/>`+"\n",
				xPos(p.X), yPos(p.Values[col]), color)
		}
		// Legend entry.
		ly := marginT + 18*ci
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			width-marginR+12, ly, width-marginR+36, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" dy="4">%s</text>`+"\n",
			width-marginR+42, ly, escape(col))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// bounds returns the sorted x positions and padded y range of a series.
func bounds(s *experiments.Series) (xs []int, lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, p := range s.Points {
		xs = append(xs, p.X)
		for _, col := range s.Columns {
			v := p.Values[col]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if math.IsInf(lo, 1) {
		lo, hi = 0, 1
	}
	if lo > 0 && lo < hi && lo/hi < 0.5 {
		lo = 0 // anchor at zero when the data spans most of the range
	}
	if lo == hi {
		hi = lo + 1
	}
	return xs, lo, hi
}

// formatTick renders an axis value compactly.
func formatTick(v float64) string {
	switch {
	case math.Abs(v) >= 10000:
		return fmt.Sprintf("%.0fk", v/1000)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// escape makes a string safe for SVG text content.
func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
