package plot

import (
	"encoding/xml"
	"strings"
	"testing"

	"sflow/internal/experiments"
)

func sampleSeries() *experiments.Series {
	return &experiments.Series{
		ID:      "fig10x",
		Title:   "Title with <angle> & ampersand",
		XLabel:  "NetworkSize",
		YLabel:  "value",
		Columns: []string{"sflow", "fixed"},
		Points: []experiments.Point{
			{X: 10, Values: map[string]float64{"sflow": 0.9, "fixed": 0.7}},
			{X: 20, Values: map[string]float64{"sflow": 0.95, "fixed": 0.6}},
			{X: 30, Values: map[string]float64{"sflow": 0.85, "fixed": 0.65}},
		},
	}
}

func TestSVGWellFormed(t *testing.T) {
	out := SVG(sampleSeries())
	if !strings.HasPrefix(out, "<svg") {
		t.Fatalf("not an svg: %q", out[:20])
	}
	// The output must be valid XML (escaping worked).
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		if _, err := dec.Token(); err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("invalid XML: %v", err)
		}
	}
	// One polyline per column, one legend entry each.
	if got := strings.Count(out, "<polyline"); got != 2 {
		t.Fatalf("polylines = %d, want 2", got)
	}
	for _, want := range []string{"sflow", "fixed", "NetworkSize", "&amp;", "&lt;angle&gt;"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q", want)
		}
	}
	// Markers: columns x points.
	if got := strings.Count(out, "<circle"); got != 6 {
		t.Fatalf("markers = %d, want 6", got)
	}
}

func TestSVGDegenerateSeries(t *testing.T) {
	s := &experiments.Series{
		ID: "flat", Title: "flat", XLabel: "x", YLabel: "y",
		Columns: []string{"only"},
		Points:  []experiments.Point{{X: 5, Values: map[string]float64{"only": 3}}},
	}
	out := SVG(s)
	if !strings.Contains(out, "<polyline") {
		t.Fatal("no polyline for single point")
	}
	empty := &experiments.Series{ID: "e", Title: "e", XLabel: "x", YLabel: "y"}
	if out := SVG(empty); !strings.HasPrefix(out, "<svg") {
		t.Fatal("empty series did not render")
	}
}

func TestFormatTick(t *testing.T) {
	tests := []struct {
		v    float64
		want string
	}{
		{25000, "25k"}, {150, "150"}, {0.5, "0.50"}, {-12000, "-12k"},
	}
	for _, tt := range tests {
		if got := formatTick(tt.v); got != tt.want {
			t.Errorf("formatTick(%v) = %q, want %q", tt.v, got, tt.want)
		}
	}
}
