// Lazy, demand-driven all-pairs shortest-widest routing.
//
// ComputeAllPairs runs one Dijkstra per source and materializes the full N²
// table, which walls the system off from large overlays: the federation
// algorithms on top only ever read the rows of instances that populate a
// requirement's service slots — typically a few dozen sources out of tens of
// thousands. LazyAllPairs serves the same read interface row by row, on
// demand: a row is computed by the dense CSR kernels the first time any
// reader asks for it, memoized, and — because shortestWidest(g, s) is a pure
// function of the out-arc lists it actually reads — stays valid until a
// mutation touches a node the row's run read. Invalidation therefore reuses
// exactly the reverse-dependency ("readers") argument behind Incremental:
// OutChanged(u) evicts precisely the materialized rows whose sources reach u,
// and rows nobody materialized cost nothing to invalidate.
//
// Concurrency: the read methods (Metric, Path, From, Sources, Prefetch,
// Materialize) are safe for any number of concurrent readers; a per-source
// single-flight latch guarantees that concurrent requests for the same
// uncomputed row run the kernel exactly once and share the one Result. The
// mutation methods (OutChanged, NodeAdded, NodeRemoved, Flush) follow
// Incremental's single-writer contract: they must be serialized with each
// other AND with reads of the live table — which is what session.Session's
// one-goroutine contract and the daemon's RCU epochs already provide
// (concurrent readers only ever touch immutable Snapshots).
package qos

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"sflow/internal/csr"
	"sflow/internal/metrics"
)

// Table is the read interface over an all-pairs shortest-widest computation —
// what the abstract-graph builder and the Solve registry actually consume.
// Both the eager *AllPairs and the demand-driven *LazyAllPairs implement it,
// and for every row read the two are byte-identical (selected paths and
// instrumentation included), which the scale-equivalence battery pins.
type Table interface {
	// Metric returns the shortest-widest quality from src to dst.
	Metric(src, dst int) Metric
	// Path returns the selected shortest-widest path from src to dst (nil
	// if unreachable). The returned slice is the caller's to keep.
	Path(src, dst int) []int
	// From returns the single-source result rooted at src (nil if src is
	// not a node of the graph).
	From(src int) *Result
	// Sources returns the sources the table covers, ascending.
	Sources() []int
}

var (
	_ Table = (*AllPairs)(nil)
	_ Table = (*LazyAllPairs)(nil)
)

// TablesEqual reports whether two tables answer identically: same sources,
// and per source the same reachable set, metrics and selected paths. It reads
// every row of both tables, materializing lazy ones — an equivalence-test
// helper, not a hot-path operation.
func TablesEqual(a, b Table) bool {
	as, bs := a.Sources(), b.Sources()
	if len(as) != len(bs) {
		return false
	}
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	for _, src := range as {
		ra, rb := a.From(src), b.From(src)
		if (ra == nil) != (rb == nil) {
			return false
		}
		if ra == nil {
			continue
		}
		if len(ra.Dist) != len(rb.Dist) {
			return false
		}
		for dst, m := range ra.Dist {
			om, ok := rb.Dist[dst]
			if !ok || m != om {
				return false
			}
			p, op := ra.paths[dst], rb.paths[dst]
			if len(p) != len(op) {
				return false
			}
			for i := range p {
				if p[i] != op[i] {
					return false
				}
			}
		}
	}
	return true
}

// lazyRow is the single-flight latch of one memoized row: the goroutine that
// created the row computes res (published under the table mutex) and closes
// done; everyone else waits on done.
type lazyRow struct {
	done chan struct{}
	res  *Result
}

// lruNode is one completed row's position in the recency list (most recent at
// head). Nodes live outside lazyRow because snapshots share row pointers with
// their parent but keep independent recency state.
type lruNode struct {
	src        int
	prev, next *lruNode
}

// LazyOptions configures a LazyAllPairs beyond the graph it reads.
type LazyOptions struct {
	// Metrics, when non-nil, receives qos_lazy_* counters alongside the
	// usual routing instrumentation.
	Metrics *metrics.Registry
	// MaxRows bounds how many completed rows stay memoized; <= 0 means
	// unbounded. When a row completes and the bound is exceeded, the least
	// recently read completed rows are evicted (readers-index entries
	// included) — an evicted row simply recomputes, byte-identically, on its
	// next read. Rows still in flight never count against the bound.
	MaxRows int
}

// LazyStats is a point-in-time summary of what a LazyAllPairs did, for tests
// and capacity planning.
type LazyStats struct {
	// Computed counts kernel executions (rows actually computed).
	Computed int64
	// Hits counts reads served from an already-memoized row.
	Hits int64
	// DedupWaits counts reads that found another goroutine's computation of
	// the same row in flight and waited for it instead of running the kernel
	// again.
	DedupWaits int64
	// Evicted counts rows invalidated by mutations.
	Evicted int64
	// LRUEvicted counts rows dropped by the MaxRows bound (distinct from
	// mutation-driven eviction above).
	LRUEvicted int64
}

// LazyAllPairs is the demand-driven Table: rows materialize on first read and
// are evicted exactly when a mutation could change them. See the package
// comment above for the concurrency contract.
type LazyAllPairs struct {
	mu sync.Mutex
	// g is the live graph rows are (re-)frozen from; nil for pinned
	// snapshots, which can never go stale.
	g      Graph
	frozen *csr.Graph
	// nodes is the frozen graph's node set, ascending. Replaced wholesale on
	// re-freeze (never mutated in place), so snapshots may share it.
	nodes []int
	// rows holds the memoized (or in-flight) per-source results.
	rows map[int]*lazyRow
	// readers maps node u -> sources whose materialized row read Out(u):
	// exactly the rows to evict when Out(u) changes.
	readers map[int]map[int]struct{}
	// dirty accumulates sources to evict at the next flush (explicit or
	// read-triggered); stale marks the frozen graph for re-freeze.
	dirty map[int]struct{}
	stale bool

	// maxRows bounds the completed rows kept memoized (<= 0 unbounded); lru
	// tracks their recency, most recent at lruHead. Every completed row is in
	// lru when the bound is active; in-flight rows never are.
	maxRows          int
	lru              map[int]*lruNode
	lruHead, lruTail *lruNode

	// pool shares dense-kernel scratch buffers between concurrent row
	// computations; shared with snapshots (Scratch use is exclusive while
	// checked out).
	pool *sync.Pool

	ins instr

	computed   atomic.Int64
	hits       atomic.Int64
	dedupWaits atomic.Int64
	evicted    atomic.Int64
	lruEvicted atomic.Int64

	rowsComputed, rowHits, dedups, evictions, lruEvictions *metrics.Counter
}

// NewLazyAllPairs returns a demand-driven table over g with an unbounded row
// cache. No routing runs until the first row is read. reg, when non-nil,
// receives qos_lazy_* counters alongside the usual routing instrumentation.
func NewLazyAllPairs(g Graph, reg *metrics.Registry) *LazyAllPairs {
	return NewLazyAllPairsOpts(g, LazyOptions{Metrics: reg})
}

// NewLazyAllPairsOpts is NewLazyAllPairs with the full option set.
func NewLazyAllPairsOpts(g Graph, opts LazyOptions) *LazyAllPairs {
	reg := opts.Metrics
	l := &LazyAllPairs{
		g:       g,
		rows:    make(map[int]*lazyRow),
		readers: make(map[int]map[int]struct{}),
		dirty:   make(map[int]struct{}),
		stale:   true,
		maxRows: opts.MaxRows,
		pool:    &sync.Pool{New: func() any { return NewScratch() }},
		ins:     instrFor(reg),
	}
	if l.maxRows > 0 {
		l.lru = make(map[int]*lruNode)
	}
	if reg != nil {
		l.rowsComputed = reg.Counter("qos_lazy_rows_computed_total")
		l.rowHits = reg.Counter("qos_lazy_row_hits_total")
		l.dedups = reg.Counter("qos_lazy_dedup_waits_total")
		l.evictions = reg.Counter("qos_lazy_evicted_rows_total")
		l.lruEvictions = reg.Counter("qos_lazy_lru_evicted_rows_total")
	}
	return l
}

// MaxRows returns the configured row-cache bound (<= 0 means unbounded).
func (l *LazyAllPairs) MaxRows() int { return l.maxRows }

// Stats returns what the table has done so far.
func (l *LazyAllPairs) Stats() LazyStats {
	return LazyStats{
		Computed:   l.computed.Load(),
		Hits:       l.hits.Load(),
		DedupWaits: l.dedupWaits.Load(),
		Evicted:    l.evicted.Load(),
		LRUEvicted: l.lruEvicted.Load(),
	}
}

// lruTouchLocked moves src to the head of the recency list, inserting it if
// absent. No-op when the cache is unbounded. Caller holds l.mu.
func (l *LazyAllPairs) lruTouchLocked(src int) {
	if l.maxRows <= 0 {
		return
	}
	n, ok := l.lru[src]
	if ok {
		if n == l.lruHead {
			return
		}
		l.lruUnlinkLocked(n)
	} else {
		n = &lruNode{src: src}
		l.lru[src] = n
	}
	n.prev = nil
	n.next = l.lruHead
	if l.lruHead != nil {
		l.lruHead.prev = n
	}
	l.lruHead = n
	if l.lruTail == nil {
		l.lruTail = n
	}
}

// lruUnlinkLocked removes n from the recency list (not from the lru map).
func (l *LazyAllPairs) lruUnlinkLocked(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		l.lruHead = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		l.lruTail = n.prev
	}
	n.prev, n.next = nil, nil
}

// lruDropLocked forgets src's recency state (row eviction by other means).
func (l *LazyAllPairs) lruDropLocked(src int) {
	if n, ok := l.lru[src]; ok {
		l.lruUnlinkLocked(n)
		delete(l.lru, src)
	}
}

// lruEnforceLocked evicts least-recently-read completed rows until the cache
// fits maxRows again. Only completed rows are in the list, so an eviction
// always has a readers registration to undo. Caller holds l.mu.
func (l *LazyAllPairs) lruEnforceLocked() {
	for l.maxRows > 0 && len(l.lru) > l.maxRows {
		victim := l.lruTail
		l.lruUnlinkLocked(victim)
		delete(l.lru, victim.src)
		if row, ok := l.rows[victim.src]; ok {
			delete(l.rows, victim.src)
			if row.res != nil {
				l.unregisterLocked(victim.src, row.res)
			}
		}
		l.lruEvicted.Add(1)
		l.lruEvictions.Inc()
	}
}

// applyPendingLocked evicts the dirty rows and re-freezes a stale graph. The
// caller holds l.mu. Re-freezing allocates a fresh CSR graph instead of
// reusing storage: snapshots may still be routing on the old arrays.
func (l *LazyAllPairs) applyPendingLocked() {
	for src := range l.dirty {
		if row, ok := l.rows[src]; ok {
			delete(l.rows, src)
			if row.res != nil {
				l.unregisterLocked(src, row.res)
			}
			l.lruDropLocked(src)
			l.evicted.Add(1)
			l.evictions.Inc()
		}
	}
	if len(l.dirty) > 0 {
		l.dirty = make(map[int]struct{})
	}
	if l.stale {
		if l.g != nil {
			l.frozen = FreezeGraph(l.g)
			nodes := l.g.Nodes()
			l.nodes = append([]int(nil), nodes...)
			sort.Ints(l.nodes)
		}
		l.stale = false
	}
}

// registerLocked adds src to the readers set of every node its row reached —
// the same bookkeeping Incremental keeps eagerly, built here row by row.
func (l *LazyAllPairs) registerLocked(src int, res *Result) {
	for u := range res.Dist {
		set, ok := l.readers[u]
		if !ok {
			set = make(map[int]struct{})
			l.readers[u] = set
		}
		set[src] = struct{}{}
	}
}

func (l *LazyAllPairs) unregisterLocked(src int, res *Result) {
	for u := range res.Dist {
		if set, ok := l.readers[u]; ok {
			delete(set, src)
			if len(set) == 0 {
				delete(l.readers, u)
			}
		}
	}
}

// From returns the memoized row of src, computing it on first read. Rows are
// byte-identical to the corresponding ComputeAllPairs row: same frozen-CSR
// kernels, same deterministic settle order. It returns nil for a source the
// graph does not know — exactly what the eager table answers.
func (l *LazyAllPairs) From(src int) *Result {
	l.mu.Lock()
	l.applyPendingLocked()
	if l.frozen == nil {
		l.mu.Unlock()
		return nil
	}
	idx, ok := l.frozen.Index(src)
	if !ok {
		l.mu.Unlock()
		return nil
	}
	if row, ok := l.rows[src]; ok {
		if row.res != nil {
			// Completed row: a hit, and the freshest entry of the LRU list.
			l.lruTouchLocked(src)
			l.mu.Unlock()
			l.hits.Add(1)
			l.rowHits.Inc()
			return row.res
		}
		// In flight: wait for the computing goroutine's result. res is
		// published under l.mu before done is closed, so the read below is
		// ordered by the channel close.
		l.mu.Unlock()
		l.dedupWaits.Add(1)
		l.dedups.Inc()
		<-row.done
		return row.res
	}
	row := &lazyRow{done: make(chan struct{})}
	l.rows[src] = row
	frozen := l.frozen
	l.mu.Unlock()

	sc := l.pool.Get().(*Scratch)
	res := shortestWidestDense(frozen, idx, sc, l.ins)
	l.pool.Put(sc)

	l.mu.Lock()
	row.res = res
	// The row may have been evicted while computing (only possible for a
	// mutation racing a read, which the single-writer contract forbids on
	// the live table; be defensive anyway): register only if still current.
	// Registration, recency and the MaxRows bound move in one critical
	// section, so no reader can observe a row outside the bound.
	if l.rows[src] == row {
		l.registerLocked(src, res)
		l.lruTouchLocked(src)
		l.lruEnforceLocked()
	}
	l.mu.Unlock()
	close(row.done)
	l.computed.Add(1)
	l.rowsComputed.Inc()
	return res
}

// Metric returns the shortest-widest quality from src to dst, computing the
// src row on first read.
func (l *LazyAllPairs) Metric(src, dst int) Metric {
	r := l.From(src)
	if r == nil {
		return Unreachable
	}
	return r.Metric(dst)
}

// Path returns the selected shortest-widest path from src to dst (nil if
// unreachable), computing the src row on first read. The returned slice is a
// copy: callers cannot alias the memoized row's arena.
func (l *LazyAllPairs) Path(src, dst int) []int {
	r := l.From(src)
	if r == nil {
		return nil
	}
	return r.PathTo(dst)
}

// Sources returns every source the table covers — all current graph nodes,
// ascending, whether or not their rows have materialized.
func (l *LazyAllPairs) Sources() []int {
	l.mu.Lock()
	l.applyPendingLocked()
	nodes := l.nodes
	l.mu.Unlock()
	out := make([]int, len(nodes))
	copy(out, nodes)
	return out
}

// ComputedRows returns the sources whose rows are currently materialized,
// ascending. Test and introspection hook; in-flight rows are included.
func (l *LazyAllPairs) ComputedRows() []int {
	l.mu.Lock()
	out := make([]int, 0, len(l.rows))
	for src := range l.rows {
		out = append(out, src)
	}
	l.mu.Unlock()
	sort.Ints(out)
	return out
}

// OutChanged records that the out-arcs of u changed: every materialized row
// whose source reaches u — and only those — is queued for eviction. Rows
// nobody computed need nothing.
func (l *LazyAllPairs) OutChanged(u int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.stale = true
	for src := range l.readers[u] {
		l.dirty[src] = struct{}{}
	}
	// u's own row reads Out(u) by definition.
	if _, ok := l.rows[u]; ok {
		l.dirty[u] = struct{}{}
	}
}

// NodeAdded records that n joined the graph. No row can have reached a node
// with no in-links yet, so nothing is evicted; the next read re-freezes.
func (l *LazyAllPairs) NodeAdded(_ int) {
	l.mu.Lock()
	l.stale = true
	l.mu.Unlock()
}

// NodeRemoved records that n left along with its incident arcs. As with
// Incremental, the caller must additionally report OutChanged for every
// former in-neighbor of n.
func (l *LazyAllPairs) NodeRemoved(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.stale = true
	for src := range l.readers[n] {
		l.dirty[src] = struct{}{}
	}
	if _, ok := l.rows[n]; ok {
		l.dirty[n] = struct{}{}
	}
	delete(l.readers, n)
}

// Dirty returns the materialized sources currently queued for eviction,
// ascending.
func (l *LazyAllPairs) Dirty() []int {
	l.mu.Lock()
	out := make([]int, 0, len(l.dirty))
	for src := range l.dirty {
		out = append(out, src)
	}
	l.mu.Unlock()
	sort.Ints(out)
	return out
}

// Flush applies pending invalidation — evicting dirty rows and re-freezing
// the graph — and returns how many rows were evicted. Unlike an eager
// Incremental flush it runs NO routing: evicted rows recompute only if and
// when someone reads them again.
func (l *LazyAllPairs) Flush() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	before := l.evicted.Load()
	l.applyPendingLocked()
	return int(l.evicted.Load() - before)
}

// Prefetch materializes the rows of srcs that are not yet computed, fanning
// the kernel runs out over the given worker count (<= 0 means GOMAXPROCS).
// Prefetching never changes any answer — rows are byte-identical whether
// computed here or on first demand — it only moves the cost onto more cores.
func (l *LazyAllPairs) Prefetch(srcs []int, workers int) {
	if len(srcs) == 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(srcs) {
		workers = len(srcs)
	}
	if workers <= 1 {
		for _, src := range srcs {
			l.From(src)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(srcs) {
					return
				}
				l.From(srcs[i])
			}
		}()
	}
	wg.Wait()
}

// Materialize computes every missing row and returns the table in eager
// form — byte-identical to ComputeAllPairs on the current graph. It defeats
// the point of laziness and exists for equivalence tests and for callers that
// genuinely need the full table once.
func (l *LazyAllPairs) Materialize(workers int) *AllPairs {
	srcs := l.Sources()
	l.Prefetch(srcs, workers)
	ap := &AllPairs{results: make(map[int]*Result, len(srcs))}
	for _, src := range srcs {
		ap.results[src] = l.From(src)
	}
	return ap
}

// Snapshot pins the current state as an immutable table: the snapshot shares
// the already-computed rows (Results are immutable once published) and the
// frozen CSR graph, but has no live graph reference — later mutations of the
// parent never evict or re-freeze it, and rows it computes on demand keep
// answering from the pinned graph. Safe for any number of concurrent readers;
// the single-flight dedup still applies within the snapshot. Pending
// invalidation is applied first, so the snapshot reflects every mutation
// reported before the call.
//
// The snapshot inherits the parent's MaxRows bound with its own recency
// state, seeded in the parent's order; from there the two caches age
// independently. Rows still in flight in the parent are not carried over
// (they recompute in the snapshot if read), keeping every shared row
// immutable at the handoff.
func (l *LazyAllPairs) Snapshot() *LazyAllPairs {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.applyPendingLocked()
	rows := make(map[int]*lazyRow, len(l.rows))
	for src, row := range l.rows {
		if row.res != nil {
			rows[src] = row
		}
	}
	s := &LazyAllPairs{
		g:       nil,
		frozen:  l.frozen,
		nodes:   l.nodes,
		rows:    rows,
		readers: make(map[int]map[int]struct{}),
		dirty:   make(map[int]struct{}),
		maxRows: l.maxRows,
		pool:    l.pool,
		ins:     l.ins,

		// Counters are shared with the parent (they are concurrency-safe),
		// so rows computed or evicted while serving a pinned epoch still
		// land in the session's qos_lazy_* totals.
		rowsComputed: l.rowsComputed,
		rowHits:      l.rowHits,
		dedups:       l.dedups,
		evictions:    l.evictions,
		lruEvictions: l.lruEvictions,
	}
	if s.maxRows > 0 {
		s.lru = make(map[int]*lruNode, len(rows))
		// Walk the parent's recency list oldest-first so the snapshot ends up
		// in the same order. Bounded parents register every completed row, so
		// the walk covers exactly the rows copied above.
		for n := l.lruTail; n != nil; n = n.prev {
			s.lruTouchLocked(n.src)
		}
		s.lruEnforceLocked()
	}
	return s
}
