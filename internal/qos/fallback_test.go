package qos

import (
	"reflect"
	"testing"
)

// shiftyGraph wraps a testGraph but degrades the bandwidth of one arc after
// the first Out call that sees it — simulating a Graph implementation that
// violates its read-only contract between the two Dijkstra phases. Phase 1
// then records a width phase 2 can no longer realise, which used to make
// ShortestWidest silently drop the node (falsely reporting it unreachable).
type shiftyGraph struct {
	*testGraph
	from, to int
	degraded int64
	seen     bool
}

func (g *shiftyGraph) Out(u int) []Arc {
	arcs := g.testGraph.Out(u)
	out := make([]Arc, len(arcs))
	copy(out, arcs)
	for i := range out {
		if u == g.from && out[i].To == g.to {
			if g.seen {
				out[i].Bandwidth = g.degraded
			}
			g.seen = true
		}
	}
	return out
}

func TestShortestWidestPhase2FallbackGuard(t *testing.T) {
	base := newTestGraph()
	base.addArc(1, 2, 10, 5)
	g := &shiftyGraph{testGraph: base, from: 1, to: 2, degraded: 1}

	res := ShortestWidest(g, 1)
	m := res.Metric(2)
	if !m.Reachable() {
		t.Fatal("phase-1-reachable node reported unreachable: the phase-2 guard dropped it")
	}
	// The fallback must report the phase-1 width with the latency
	// recomputed along the widest-tree path.
	if m != (Metric{Bandwidth: 10, Latency: 5}) {
		t.Fatalf("fallback metric = %+v, want {10 5}", m)
	}
	if want := []int{1, 2}; !reflect.DeepEqual(res.PathTo(2), want) {
		t.Fatalf("fallback path = %v, want %v", res.PathTo(2), want)
	}
}

// A multi-hop variant: the degraded arc sits mid-path, so the fallback has
// to rebuild a longer widest-tree path and sum latencies across hops.
func TestShortestWidestPhase2FallbackMultiHop(t *testing.T) {
	base := newTestGraph()
	base.addArc(1, 2, 50, 3)
	base.addArc(2, 3, 40, 4)
	g := &shiftyGraph{testGraph: base, from: 2, to: 3, degraded: 1}

	res := ShortestWidest(g, 1)
	if m := res.Metric(3); m != (Metric{Bandwidth: 40, Latency: 7}) {
		t.Fatalf("fallback metric = %+v, want {40 7}", m)
	}
	if want := []int{1, 2, 3}; !reflect.DeepEqual(res.PathTo(3), want) {
		t.Fatalf("fallback path = %v", res.PathTo(3))
	}
	// Node 2, upstream of the degraded arc, keeps its exact answer.
	if m := res.Metric(2); m != (Metric{Bandwidth: 50, Latency: 3}) {
		t.Fatalf("upstream metric = %+v", m)
	}
}

// vanishingGraph drops an arc entirely after the first sighting: even the
// fallback cannot realise the phase-1 path, and the node must stay absent
// rather than carry a fabricated metric.
type vanishingGraph struct {
	*testGraph
	from, to int
	seen     bool
}

func (g *vanishingGraph) Out(u int) []Arc {
	arcs := g.testGraph.Out(u)
	out := make([]Arc, 0, len(arcs))
	for _, a := range arcs {
		if u == g.from && a.To == g.to {
			if g.seen {
				continue
			}
			g.seen = true
		}
		out = append(out, a)
	}
	return out
}

func TestShortestWidestPhase2FallbackVanishedArc(t *testing.T) {
	base := newTestGraph()
	base.addArc(1, 2, 10, 5)
	g := &vanishingGraph{testGraph: base, from: 1, to: 2}

	res := ShortestWidest(g, 1)
	if res.Metric(2).Reachable() {
		t.Fatalf("vanished arc must leave the node unreachable, got %+v", res.Metric(2))
	}
	if res.PathTo(2) != nil {
		t.Fatalf("vanished arc must leave no path, got %v", res.PathTo(2))
	}
}
