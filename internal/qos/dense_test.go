package qos

import (
	"math/rand"
	"reflect"
	"testing"

	"sflow/internal/metrics"
)

// messyRandomGraph extends randomGraph with the inputs the dense engine must
// handle bit-identically to the oracle: gappy non-contiguous node ids,
// duplicate arcs between the same pair, dead arcs (zero or negative
// bandwidth) and isolated nodes.
func messyRandomGraph(rng *rand.Rand, n int, p float64) *testGraph {
	g := newTestGraph()
	ids := make([]int, n)
	id := 0
	for i := range ids {
		id += 1 + rng.Intn(9) // strictly increasing, gappy
		ids[i] = id
		g.addNode(id)
	}
	for _, u := range ids {
		for _, v := range ids {
			if u == v || rng.Float64() >= p {
				continue
			}
			g.addArc(u, v, int64(1+rng.Intn(100)), int64(rng.Intn(1000)))
			if rng.Float64() < 0.15 { // duplicate arc, different weights
				g.addArc(u, v, int64(1+rng.Intn(100)), int64(rng.Intn(1000)))
			}
			if rng.Float64() < 0.1 { // dead arc
				g.addArc(u, v, int64(-rng.Intn(3)), int64(rng.Intn(10)))
			}
		}
	}
	return g
}

// requireResultsEqual asserts two Results are byte-identical: source,
// distance table and every selected path.
func requireResultsEqual(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.Source != want.Source {
		t.Fatalf("%s: Source = %d, want %d", label, got.Source, want.Source)
	}
	if !reflect.DeepEqual(got.Dist, want.Dist) {
		t.Fatalf("%s: Dist diverged:\n got %v\nwant %v", label, got.Dist, want.Dist)
	}
	if !reflect.DeepEqual(got.paths, want.paths) {
		t.Fatalf("%s: paths diverged:\n got %v\nwant %v", label, got.paths, want.paths)
	}
}

// TestCSRShortestWidestMatchesOracle is the engine-equality property test:
// over seeded random graphs (including dead/duplicate arcs and gappy ids)
// the dense CSR kernel must reproduce the map-based oracle exactly — same
// metrics, same selected paths, with one Scratch reused across every run.
func TestCSRShortestWidestMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sc := NewScratch()
	for trial := 0; trial < 80; trial++ {
		n := 2 + rng.Intn(14)
		g := messyRandomGraph(rng, n, 0.15+rng.Float64()*0.4)
		cg := FreezeGraph(g)
		for _, src := range g.Nodes() {
			want := ShortestWidest(g, src)
			got := ShortestWidestCSR(cg, src, sc)
			requireResultsEqual(t, "shortest-widest", got, want)
		}
	}
}

func TestCSRShortestLatencyMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	sc := NewScratch()
	for trial := 0; trial < 80; trial++ {
		n := 2 + rng.Intn(14)
		g := messyRandomGraph(rng, n, 0.15+rng.Float64()*0.4)
		cg := FreezeGraph(g)
		for _, src := range g.Nodes() {
			want := ShortestLatency(g, src)
			got := ShortestLatencyCSR(cg, src, sc)
			requireResultsEqual(t, "shortest-latency", got, want)
		}
	}
}

func TestCSRAllPairsMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		g := messyRandomGraph(rng, 3+rng.Intn(20), 0.25)
		ref := ComputeAllPairsRef(g)
		for _, workers := range []int{1, 3} {
			ap := ComputeAllPairsWorkers(g, workers)
			if !ap.Equal(ref) || !ref.Equal(ap) {
				t.Fatalf("trial %d workers %d: CSR all-pairs diverged from map reference", trial, workers)
			}
			for _, src := range g.Nodes() {
				requireResultsEqual(t, "all-pairs", ap.From(src), ref.From(src))
			}
		}
	}
}

// TestCSRUnknownSourceMatchesOracle pins the dense wrappers' answers for a
// source the graph does not contain to the oracle's.
func TestCSRUnknownSourceMatchesOracle(t *testing.T) {
	g := newTestGraph()
	g.addArc(1, 2, 10, 1)
	cg := FreezeGraph(g)
	requireResultsEqual(t, "widest unknown src", ShortestWidestCSR(cg, 99, nil), ShortestWidest(g, 99))
	requireResultsEqual(t, "latency unknown src", ShortestLatencyCSR(cg, 99, nil), ShortestLatency(g, 99))
}

// TestCSRMetricsParity asserts the dense engine's counter invariants against
// the oracle: run and fallback counts are exactly equal, and the relaxation
// tally obeys the documented <=-oracle bound — the tiered early exit stops
// each phase-2 run once its width class has settled, so the dense engine
// attempts at most as many relaxations as the oracle's full runs (and must
// still attempt some: phase 1 alone tallies every arc of a reached node).
func TestCSRMetricsParity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		g := messyRandomGraph(rng, 4+rng.Intn(16), 0.3)

		dense := metrics.New()
		ComputeAllPairsWorkersMetrics(g, 2, dense)

		oracle := metrics.New()
		ins := instrFor(oracle)
		for _, src := range g.Nodes() {
			shortestWidest(g, src, ins)
		}

		for _, name := range []string{
			"qos_shortest_widest_runs_total",
			"qos_phase2_fallbacks_total",
		} {
			if got, want := dense.Counter(name).Value(), oracle.Counter(name).Value(); got != want {
				t.Fatalf("trial %d: %s = %d, oracle %d", trial, name, got, want)
			}
		}
		got := dense.Counter("qos_relaxations_total").Value()
		want := oracle.Counter("qos_relaxations_total").Value()
		if got > want {
			t.Fatalf("trial %d: qos_relaxations_total = %d exceeds oracle %d", trial, got, want)
		}
		if want > 0 && got == 0 {
			t.Fatalf("trial %d: qos_relaxations_total = 0, oracle %d (early exit cannot skip phase 1)", trial, want)
		}
	}
}

// TestScratchReuseAcrossSizes drives one Scratch across graphs that grow and
// shrink, ensuring stale state from a larger graph never leaks into a
// smaller one's run.
func TestScratchReuseAcrossSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	sc := NewScratch()
	for _, n := range []int{18, 4, 30, 2, 11} {
		g := messyRandomGraph(rng, n, 0.35)
		cg := FreezeGraph(g)
		for _, src := range g.Nodes() {
			requireResultsEqual(t, "scratch reuse",
				ShortestWidestCSR(cg, src, sc), ShortestWidest(g, src))
			requireResultsEqual(t, "scratch reuse latency",
				ShortestLatencyCSR(cg, src, sc), ShortestLatency(g, src))
		}
	}
}

// TestPathToReturnsCopy is the aliasing regression test for the PathTo fix:
// mutating a returned path must not corrupt the Result's internal state, on
// either engine, nor through the AllPairs accessor.
func TestPathToReturnsCopy(t *testing.T) {
	g := newTestGraph()
	g.addArc(1, 2, 100, 10)
	g.addArc(2, 4, 100, 10)
	g.addArc(1, 3, 50, 1)
	g.addArc(3, 4, 50, 1)

	check := func(label string, path func() []int, want []int) {
		t.Helper()
		p := path()
		if !reflect.DeepEqual(p, want) {
			t.Fatalf("%s: path = %v, want %v", label, p, want)
		}
		for i := range p {
			p[i] = -999
		}
		if got := path(); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: internal path corrupted through returned slice: %v", label, got)
		}
	}

	oracle := ShortestWidest(g, 1)
	check("oracle", func() []int { return oracle.PathTo(4) }, []int{1, 2, 4})
	dense := ShortestWidestCSR(FreezeGraph(g), 1, nil)
	check("dense", func() []int { return dense.PathTo(4) }, []int{1, 2, 4})
	ap := ComputeAllPairs(g)
	check("allpairs", func() []int { return ap.Path(1, 4) }, []int{1, 2, 4})

	if oracle.PathTo(99) != nil {
		t.Fatal("PathTo(unreachable) must stay nil")
	}
}
