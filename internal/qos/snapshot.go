package qos

// Snapshot returns an immutable copy of the all-pairs table that later
// incremental flushes cannot disturb.
//
// The copy is shallow and therefore cheap — O(sources), not O(sources ×
// nodes): per-source *Result values are immutable once computed (every flush
// builds fresh Results and swaps pointers into the table; nothing ever writes
// into a published Result), so sharing them between the live table and a
// snapshot is safe. Only the results map itself, which Flush and NodeRemoved
// do mutate in place, is copied.
//
// This is the publication primitive behind RCU-style serving: a writer
// maintaining the table through Incremental snapshots after each batch of
// mutations and hands the frozen copy to lock-free readers.
func (ap *AllPairs) Snapshot() *AllPairs {
	results := make(map[int]*Result, len(ap.results))
	for src, res := range ap.results {
		results[src] = res
	}
	return &AllPairs{results: results}
}
