package qos

import (
	"testing"
)

// applyLazyFuzzOp decodes one mutation from three fuzz bytes, applies it to
// the adjacency-map ground truth and reports it to every lazy table under
// test the way a session would (node removals announce every former
// in-neighbor first). Reads are part of the op space too: laziness means
// which rows happen to be materialized when a mutation lands is itself
// interesting state.
func applyLazyFuzzOp(g *testGraph, lts []*LazyAllPairs, op, x, y byte, next *int) {
	nodes := g.Nodes()
	if len(nodes) == 0 {
		return
	}
	pick := func(b byte) int { return nodes[int(b)%len(nodes)] }
	switch op % 7 {
	case 0: // add or replace an arc
		u, v := pick(x), pick(y)
		if u != v {
			g.setArc(u, v, int64(x%32)+1, int64(y%16)+1)
			for _, lt := range lts {
				lt.OutChanged(u)
			}
		}
	case 1: // drop an arc
		u := pick(x)
		g.dropArcTo(u, pick(y))
		for _, lt := range lts {
			lt.OutChanged(u)
		}
	case 2: // a fresh node joins with one arc each way
		n := *next
		*next++
		g.addNode(n)
		g.addArc(n, pick(x), int64(y%32)+1, int64(x%16)+1)
		u := pick(y)
		if u != n {
			g.addArc(u, n, int64(x%32)+1, int64(y%16)+1)
		}
		for _, lt := range lts {
			lt.NodeAdded(n)
			lt.OutChanged(n)
			if u != n {
				lt.OutChanged(u)
			}
		}
	case 3: // a node leaves (keep a couple so rows stay interesting)
		if len(nodes) > 2 {
			n := pick(x)
			ins := g.removeNode(n)
			for _, lt := range lts {
				for _, u := range ins {
					lt.OutChanged(u)
				}
				lt.NodeRemoved(n)
			}
		}
	case 4: // read one row
		for _, lt := range lts {
			lt.From(pick(x))
		}
	case 5: // explicit flush (evict-only; must run no routing)
		for _, lt := range lts {
			before := lt.Stats().Computed
			lt.Flush()
			if after := lt.Stats().Computed; after != before {
				panic("lazy flush ran routing kernels")
			}
		}
	case 6: // read a metric and a path
		for _, lt := range lts {
			lt.Metric(pick(x), pick(y))
			lt.Path(pick(y), pick(x))
		}
	}
}

// FuzzLazyInvalidation drives random mutation/read interleavings against a
// small graph: after every op, every row the lazy table answers must equal
// the from-scratch eager oracle on the current ground truth — if eviction
// ever under-approximates the readers of a changed node, a stale memoized
// row survives and the comparison catches it. An unbounded and a MaxRows=2
// bounded table run the same trace side by side, so LRU eviction interleaved
// with mutation-driven invalidation is fuzzed against the same oracle, and
// the bound itself is asserted after every op. Any byte string is a valid
// trace: three bytes per op, first byte selects the op.
func FuzzLazyInvalidation(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{4, 0, 0, 0, 1, 2, 4, 0, 0})          // read, mutate, re-read
	f.Add([]byte{4, 3, 0, 1, 3, 9, 6, 2, 3})          // read, drop arc, metric
	f.Add([]byte{2, 9, 1, 3, 0, 0, 2, 2, 7})          // join, leave, join
	f.Add([]byte{4, 1, 0, 5, 0, 0, 0, 1, 9, 4, 1, 0}) // read, flush, mutate, read
	f.Add([]byte{3, 1, 1, 3, 2, 2, 3, 3, 3, 3, 4, 4}) // drain the graph
	f.Add([]byte{4, 0, 0, 4, 1, 1, 4, 2, 2, 0, 1, 2}) // fill past the bound, mutate
	f.Fuzz(func(t *testing.T, trace []byte) {
		if len(trace) > 48 { // 16 ops x full-table oracle compare is plenty
			trace = trace[:48]
		}
		g := chainGraph()
		g.addArc(4, 1, 60, 7) // cycle, so readers sets overlap
		lt := NewLazyAllPairs(g, nil)
		bounded := NewLazyAllPairsOpts(g, LazyOptions{MaxRows: 2})
		next := 100
		for i := 0; i+2 < len(trace); i += 3 {
			applyLazyFuzzOp(g, []*LazyAllPairs{lt, bounded}, trace[i], trace[i+1], trace[i+2], &next)
			want := ComputeAllPairsWorkers(g, 1)
			if !TablesEqual(lt, want) || !TablesEqual(want, lt) {
				t.Fatalf("op %d (byte %d): lazy table diverged from eager oracle", i/3, trace[i]%7)
			}
			if rows := bounded.ComputedRows(); len(rows) > 2 {
				t.Fatalf("op %d: bounded table holds %v, over MaxRows 2", i/3, rows)
			}
			if !TablesEqual(bounded, want) || !TablesEqual(want, bounded) {
				t.Fatalf("op %d (byte %d): bounded lazy table diverged from eager oracle", i/3, trace[i]%7)
			}
		}
	})
}
