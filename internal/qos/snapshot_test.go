package qos

import "testing"

func TestSnapshotIsImmutableUnderFlushes(t *testing.T) {
	g := newTestGraph()
	for i := 0; i < 7; i++ {
		g.addArc(i, i+1, int64(100-i), int64(10*(i+1)))
	}

	inc := NewIncremental(g, 1, nil)
	snap := inc.AllPairs().Snapshot()
	want := ComputeAllPairs(g)
	if !snap.Equal(want) {
		t.Fatalf("snapshot does not equal a from-scratch table before mutation")
	}

	// Mutate: cut the chain in the middle and flush the live table.
	g.dropArcTo(3, 4)
	inc.OutChanged(3)
	inc.Flush()

	// The live table moved on...
	if inc.AllPairs().Metric(0, 7).Reachable() {
		t.Fatalf("live table still routes across the removed arc")
	}
	// ...but the snapshot still answers from the pre-mutation world.
	if !snap.Equal(want) {
		t.Fatalf("snapshot changed under a later flush")
	}
	if m := snap.Metric(0, 7); !m.Reachable() {
		t.Fatalf("snapshot lost reachability it had at capture time")
	}
}

func TestSnapshotSharesImmutableResults(t *testing.T) {
	g := newTestGraph()
	for i := 0; i < 4; i++ {
		g.addArc(i, i+1, 100, 10)
	}
	ap := ComputeAllPairs(g)
	snap := ap.Snapshot()
	for _, src := range ap.Sources() {
		if ap.From(src) != snap.From(src) {
			t.Fatalf("snapshot deep-copied source %d; expected shared immutable *Result", src)
		}
	}
	// The maps themselves must be distinct.
	delete(ap.results, 0)
	if snap.From(0) == nil {
		t.Fatalf("snapshot shares the results map with the live table")
	}
}
