package qos

import (
	"math/rand"
	"reflect"
	"testing"

	"sflow/internal/metrics"
)

// mutate helpers for testGraph (the adjacency-map Graph of qos_test.go).

func (g *testGraph) setArc(u, v int, bw, lat int64) {
	for i, a := range g.adj[u] {
		if a.To == v {
			g.adj[u][i] = Arc{To: v, Bandwidth: bw, Latency: lat}
			return
		}
	}
	g.addArc(u, v, bw, lat)
}

func (g *testGraph) dropArcTo(u, v int) {
	out := g.adj[u][:0]
	for _, a := range g.adj[u] {
		if a.To != v {
			out = append(out, a)
		}
	}
	g.adj[u] = out
}

func (g *testGraph) removeNode(n int) (inNeighbors []int) {
	delete(g.adj, n)
	for u := range g.adj {
		had := false
		for _, a := range g.adj[u] {
			if a.To == n {
				had = true
			}
		}
		if had {
			g.dropArcTo(u, n)
			inNeighbors = append(inNeighbors, u)
		}
	}
	return inNeighbors
}

func assertMatchesScratch(t *testing.T, inc *Incremental, g Graph) {
	t.Helper()
	got := inc.AllPairs()
	want := ComputeAllPairsWorkers(g, 1)
	if !got.Equal(want) || !want.Equal(got) {
		t.Fatalf("incremental table diverged from scratch:\n got sources %v\nwant sources %v",
			got.Sources(), want.Sources())
	}
}

// chainGraph builds 1 -> 2 -> 3 -> 4 plus an off-path node 5 -> 1.
func chainGraph() *testGraph {
	g := newTestGraph()
	g.addArc(1, 2, 100, 10)
	g.addArc(2, 3, 100, 10)
	g.addArc(3, 4, 100, 10)
	g.addArc(5, 1, 100, 10)
	return g
}

func TestIncrementalDirtySetIsExactlyTheReachers(t *testing.T) {
	g := chainGraph()
	inc := NewIncremental(g, 1, nil)
	// A change on Out(3) can affect only sources that reach 3: 1, 2, 3, 5.
	// Node 4 (no out-arcs to 3) must not be recomputed.
	g.setArc(3, 4, 50, 20)
	inc.OutChanged(3)
	if got, want := inc.Dirty(), []int{1, 2, 3, 5}; !reflect.DeepEqual(got, want) {
		t.Fatalf("dirty = %v, want %v", got, want)
	}
	if n := inc.Flush(); n != 4 {
		t.Fatalf("flush recomputed %d sources, want 4", n)
	}
	assertMatchesScratch(t, inc, g)
	// Sink-side change: Out(4) gains an arc; source 4 itself plus everything
	// that reaches 4 goes dirty, but nothing else.
	g.addArc(4, 5, 10, 1)
	inc.OutChanged(4)
	if got, want := inc.Dirty(), []int{1, 2, 3, 4, 5}; !reflect.DeepEqual(got, want) {
		t.Fatalf("dirty = %v, want %v", got, want)
	}
	inc.Flush()
	assertMatchesScratch(t, inc, g)
}

func TestIncrementalNodeLifecycle(t *testing.T) {
	g := chainGraph()
	inc := NewIncremental(g, 1, nil)

	// Join: the new node needs its own run; links arrive as OutChanged.
	g.addNode(9)
	inc.NodeAdded(9)
	g.addArc(9, 2, 80, 5)
	inc.OutChanged(9)
	g.addArc(4, 9, 80, 5)
	inc.OutChanged(4)
	inc.Flush()
	assertMatchesScratch(t, inc, g)

	// Leave: in-neighbors' out-lists shrink, sources that reached it redo.
	ins := g.removeNode(2)
	for _, u := range ins {
		inc.OutChanged(u)
	}
	inc.NodeRemoved(2)
	inc.Flush()
	assertMatchesScratch(t, inc, g)
	for _, src := range inc.AllPairs().Sources() {
		if src == 2 {
			t.Fatal("removed node still has a result")
		}
	}
}

func TestIncrementalDirtySourceRemovedBeforeFlush(t *testing.T) {
	g := chainGraph()
	inc := NewIncremental(g, 1, nil)
	// Dirty node 5 (it reaches everything), then remove it before flushing:
	// the flush must drop it, not recompute it.
	g.setArc(1, 2, 42, 7)
	inc.OutChanged(1)
	ins := g.removeNode(5)
	for _, u := range ins {
		inc.OutChanged(u)
	}
	inc.NodeRemoved(5)
	inc.Flush()
	assertMatchesScratch(t, inc, g)
}

func TestIncrementalAddedThenRemovedBeforeFlush(t *testing.T) {
	g := chainGraph()
	inc := NewIncremental(g, 1, nil)
	g.addNode(7)
	inc.NodeAdded(7)
	g.removeNode(7)
	inc.NodeRemoved(7)
	if n := inc.Flush(); n != 0 {
		t.Fatalf("flush recomputed %d sources for a node that came and went", n)
	}
	assertMatchesScratch(t, inc, g)
}

// TestIncrementalRandomTraceAllWorkerCounts drives random mutations against
// the reverse-dependency bookkeeping at several flush fan-outs; every flush
// must land byte-identical to the sequential scratch table.
func TestIncrementalRandomTraceAllWorkerCounts(t *testing.T) {
	for _, workers := range []int{1, 2, 0} {
		rng := rand.New(rand.NewSource(int64(37 + workers)))
		g := randomGraph(rng, 16, 0.25)
		inc := NewIncremental(g, workers, nil)
		next := 100
		steps := 300
		if testing.Short() {
			steps = 80
		}
		for i := 0; i < steps; i++ {
			nodes := g.Nodes()
			switch rng.Intn(4) {
			case 0: // re-weight or add an arc
				u := nodes[rng.Intn(len(nodes))]
				v := nodes[rng.Intn(len(nodes))]
				if u == v {
					continue
				}
				g.setArc(u, v, 1+rng.Int63n(100), rng.Int63n(50))
				inc.OutChanged(u)
			case 1: // drop an arc
				u := nodes[rng.Intn(len(nodes))]
				if len(g.adj[u]) == 0 {
					continue
				}
				v := g.adj[u][rng.Intn(len(g.adj[u]))].To
				g.dropArcTo(u, v)
				inc.OutChanged(u)
			case 2: // add a node with one arc each way
				n := next
				next++
				g.addNode(n)
				inc.NodeAdded(n)
				peer := nodes[rng.Intn(len(nodes))]
				g.setArc(n, peer, 1+rng.Int63n(100), rng.Int63n(50))
				inc.OutChanged(n)
				peer = nodes[rng.Intn(len(nodes))]
				if peer != n {
					g.setArc(peer, n, 1+rng.Int63n(100), rng.Int63n(50))
					inc.OutChanged(peer)
				}
			case 3: // remove a node
				if len(nodes) <= 4 {
					continue
				}
				n := nodes[rng.Intn(len(nodes))]
				for _, u := range g.removeNode(n) {
					inc.OutChanged(u)
				}
				inc.NodeRemoved(n)
			}
			if i%5 == 0 {
				assertMatchesScratch(t, inc, g)
			}
		}
		assertMatchesScratch(t, inc, g)
	}
}

func TestIncrementalCounters(t *testing.T) {
	reg := metrics.New()
	g := chainGraph()
	inc := NewIncremental(g, 1, reg)
	g.setArc(3, 4, 50, 20)
	inc.OutChanged(3)
	inc.Flush()
	if got := reg.Counter("qos_incremental_flushes_total").Value(); got != 1 {
		t.Fatalf("flushes counter = %d", got)
	}
	if got := reg.Counter("qos_incremental_recomputed_sources_total").Value(); got != 4 {
		t.Fatalf("recomputed counter = %d", got)
	}
	// 5 nodes, 4 recomputed: one source saved versus a full rebuild.
	if got := reg.Counter("qos_incremental_saved_sources_total").Value(); got != 1 {
		t.Fatalf("saved counter = %d", got)
	}
}

func TestAllPairsEqual(t *testing.T) {
	g := chainGraph()
	a := ComputeAllPairsWorkers(g, 1)
	b := ComputeAllPairsWorkers(g, 1)
	if !a.Equal(b) {
		t.Fatal("identical tables compare unequal")
	}
	// Different metric.
	h := chainGraph()
	h.setArc(1, 2, 99, 10)
	if a.Equal(ComputeAllPairsWorkers(h, 1)) {
		t.Fatal("tables with different metrics compare equal")
	}
	// Same metrics, different selected path: two equal-quality routes.
	p1 := newTestGraph()
	p1.addArc(1, 2, 10, 5)
	p1.addArc(2, 4, 10, 5)
	p1.addArc(1, 3, 10, 5)
	p1.addArc(3, 4, 10, 5)
	p2 := newTestGraph()
	p2.addArc(1, 3, 10, 5)
	p2.addArc(3, 4, 10, 5)
	ap1 := ComputeAllPairsWorkers(p1, 1)
	ap2 := ComputeAllPairsWorkers(p2, 1)
	if ap1.Equal(ap2) {
		t.Fatal("tables over different graphs compare equal")
	}
	// Different source sets.
	i := chainGraph()
	i.addNode(42)
	if a.Equal(ComputeAllPairsWorkers(i, 1)) {
		t.Fatal("tables with different source sets compare equal")
	}
}
