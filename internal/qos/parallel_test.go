package qos

import (
	"math/rand"
	"reflect"
	"testing"
)

// The parallel all-pairs computation must be indistinguishable from the
// sequential one at any worker count: same metrics, same concrete paths.
func TestComputeAllPairsWorkersMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(30)
		g := randomGraph(rng, n, 0.3)
		seq := ComputeAllPairsWorkers(g, 1)
		for _, workers := range []int{2, 4, 8} {
			par := ComputeAllPairsWorkers(g, workers)
			if !reflect.DeepEqual(seq.Sources(), par.Sources()) {
				t.Fatalf("trial %d workers %d: sources differ", trial, workers)
			}
			for _, src := range g.Nodes() {
				for _, dst := range g.Nodes() {
					if seq.Metric(src, dst) != par.Metric(src, dst) {
						t.Fatalf("trial %d workers %d: metric %d->%d differs: %+v vs %+v",
							trial, workers, src, dst, seq.Metric(src, dst), par.Metric(src, dst))
					}
					if !reflect.DeepEqual(seq.Path(src, dst), par.Path(src, dst)) {
						t.Fatalf("trial %d workers %d: path %d->%d differs: %v vs %v",
							trial, workers, src, dst, seq.Path(src, dst), par.Path(src, dst))
					}
				}
			}
		}
	}
}

// Property test pinning the parallel all-pairs against brute-force path
// enumeration on small seeded random graphs: every source must report the
// (bandwidth desc, latency asc) optimum for every destination, and the
// reported path must realise the reported metric.
func TestComputeAllPairsWorkersMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(7) // <= 8 nodes: exhaustive enumeration stays cheap
		g := randomGraph(rng, n, 0.4)
		ap := ComputeAllPairsWorkers(g, 4)
		for _, src := range g.Nodes() {
			for _, dst := range g.Nodes() {
				want := bruteForce(g, src, dst)
				got := ap.Metric(src, dst)
				if got != want {
					t.Fatalf("trial %d: metric %d->%d = %+v, brute force %+v",
						trial, src, dst, got, want)
				}
				if !want.Reachable() {
					continue
				}
				if m := pathMetric(g, ap.Path(src, dst)); m != got {
					t.Fatalf("trial %d: path %v realises %+v, reported %+v",
						trial, ap.Path(src, dst), m, got)
				}
			}
		}
	}
}

// The default ComputeAllPairs goes parallel above the size threshold; it too
// must match the sequential computation exactly.
func TestComputeAllPairsDefaultMatchesSequentialAboveThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, parallelAllPairsMin+8, 0.2)
	def := ComputeAllPairs(g)
	seq := ComputeAllPairsWorkers(g, 1)
	for _, src := range g.Nodes() {
		for _, dst := range g.Nodes() {
			if def.Metric(src, dst) != seq.Metric(src, dst) {
				t.Fatalf("metric %d->%d differs", src, dst)
			}
			if !reflect.DeepEqual(def.Path(src, dst), seq.Path(src, dst)) {
				t.Fatalf("path %d->%d differs", src, dst)
			}
		}
	}
}
