package qos

import (
	"reflect"
	"sync"
	"testing"

	"sflow/internal/metrics"
)

// lruGraph is a complete-ish 8-node graph so every row reaches every node and
// the readers index genuinely interlocks with the LRU.
func lruGraph() *testGraph {
	g := newTestGraph()
	for i := 1; i <= 8; i++ {
		g.addNode(i)
	}
	for i := 1; i <= 8; i++ {
		for j := 1; j <= 8; j++ {
			if i != j && (i+j)%3 != 0 {
				g.addArc(i, j, int64(10*i+j), int64(i+2*j))
			}
		}
	}
	return g
}

// TestLazyMaxRowsBound pins the cache bound: after any read sequence the
// resident row count never exceeds MaxRows, the evicted rows are the least
// recently read, and the LRUEvicted stat (and counter) tallies the drops.
func TestLazyMaxRowsBound(t *testing.T) {
	g := lruGraph()
	reg := metrics.New()
	lt := NewLazyAllPairsOpts(g, LazyOptions{Metrics: reg, MaxRows: 3})
	if lt.MaxRows() != 3 {
		t.Fatalf("MaxRows() = %d, want 3", lt.MaxRows())
	}
	for src := 1; src <= 6; src++ {
		lt.From(src)
	}
	if got, want := lt.ComputedRows(), []int{4, 5, 6}; !reflect.DeepEqual(got, want) {
		t.Fatalf("resident rows = %v, want the 3 most recent %v", got, want)
	}
	st := lt.Stats()
	if st.Computed != 6 || st.LRUEvicted != 3 || st.Evicted != 0 {
		t.Fatalf("stats = %+v, want Computed 6, LRUEvicted 3, Evicted 0", st)
	}
	if got := reg.Counter("qos_lazy_lru_evicted_rows_total").Value(); got != 3 {
		t.Fatalf("qos_lazy_lru_evicted_rows_total = %d, want 3", got)
	}
}

// TestLazyLRUTouchOnHit pins the recency rule: a hit refreshes a row, so the
// eviction victim is the least recently READ row, not the oldest computed.
func TestLazyLRUTouchOnHit(t *testing.T) {
	g := lruGraph()
	lt := NewLazyAllPairsOpts(g, LazyOptions{MaxRows: 3})
	lt.From(1)
	lt.From(2)
	lt.From(3)
	lt.From(1) // hit: 1 becomes most recent, 2 the LRU
	lt.From(4) // evicts 2
	if got, want := lt.ComputedRows(), []int{1, 3, 4}; !reflect.DeepEqual(got, want) {
		t.Fatalf("resident rows = %v, want %v (hit must refresh recency)", got, want)
	}
	if st := lt.Stats(); st.Hits != 1 || st.LRUEvicted != 1 {
		t.Fatalf("stats = %+v, want Hits 1, LRUEvicted 1", st)
	}
}

// TestLazyLRURecomputeByteIdentical pins that an LRU-evicted row recomputes
// byte-identically on its next read — eviction is purely a memory decision.
func TestLazyLRURecomputeByteIdentical(t *testing.T) {
	g := lruGraph()
	lt := NewLazyAllPairsOpts(g, LazyOptions{MaxRows: 2})
	first := lt.From(1)
	lt.From(2)
	lt.From(3) // evicts 1
	if rows := lt.ComputedRows(); len(rows) != 2 || rows[0] != 2 {
		t.Fatalf("resident rows = %v, want [2 3]", rows)
	}
	again := lt.From(1) // recompute
	requireResultsEqual(t, "recomputed row", again, first)
	requireResultsEqual(t, "vs oracle", again, ShortestWidest(g, 1))
	if st := lt.Stats(); st.Computed != 4 {
		t.Fatalf("Computed = %d, want 4 (the evicted row ran again)", st.Computed)
	}
	// The whole bounded table still answers byte-identically to the eager
	// oracle, whatever mix of resident and evicted rows a read hits.
	if want := ComputeAllPairsWorkers(g, 1); !TablesEqual(lt, want) || !TablesEqual(want, lt) {
		t.Fatal("bounded lazy table diverged from eager oracle")
	}
}

// TestLazyLRUSingleFlight pins the dedup interlock: concurrent readers of one
// uncomputed row run the kernel once even with the bound active, and the
// bound holds afterwards.
func TestLazyLRUSingleFlight(t *testing.T) {
	g := lruGraph()
	lt := NewLazyAllPairsOpts(g, LazyOptions{MaxRows: 2})
	var wg sync.WaitGroup
	results := make([]*Result, 16)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = lt.From(3)
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if r != results[0] {
			t.Fatalf("reader %d got a different *Result: single-flight broken", i)
		}
	}
	if st := lt.Stats(); st.Computed != 1 {
		t.Fatalf("Computed = %d, want 1", st.Computed)
	}
	for src := 1; src <= 5; src++ {
		lt.From(src)
	}
	if rows := lt.ComputedRows(); len(rows) > 2 {
		t.Fatalf("resident rows %v exceed MaxRows 2", rows)
	}
}

// TestLazyLRUInvalidationInterplay drives mutations against a bounded table:
// mutation-driven eviction and the LRU bound must compose without double
// counting or stale recency entries, and every answer must keep matching the
// eager oracle on the current graph.
func TestLazyLRUInvalidationInterplay(t *testing.T) {
	g := lruGraph()
	lt := NewLazyAllPairsOpts(g, LazyOptions{MaxRows: 3})
	for src := 1; src <= 4; src++ { // 1 LRU-evicted, 2..4 resident
		lt.From(src)
	}
	g.setArc(2, 3, 5, 50)
	lt.OutChanged(2) // dirties every resident row that reaches 2
	lt.Flush()
	if st := lt.Stats(); st.LRUEvicted != 1 || st.Evicted == 0 {
		t.Fatalf("stats = %+v, want LRUEvicted 1 and mutation evictions > 0", st)
	}
	for src := 1; src <= 8; src++ {
		requireResultsEqual(t, "post-churn row", lt.From(src), ShortestWidest(g, src))
		if rows := lt.ComputedRows(); len(rows) > 3 {
			t.Fatalf("resident rows %v exceed MaxRows 3 after churn", rows)
		}
	}
}

// TestLazyLRUSnapshotInheritance pins Snapshot semantics under the bound: the
// snapshot starts from the parent's resident rows and recency order, then the
// two caches age independently.
func TestLazyLRUSnapshotInheritance(t *testing.T) {
	g := lruGraph()
	lt := NewLazyAllPairsOpts(g, LazyOptions{MaxRows: 3})
	lt.From(1)
	lt.From(2)
	lt.From(3)
	lt.From(1) // parent recency: 1 (most recent), 3, 2
	snap := lt.Snapshot()
	if snap.MaxRows() != 3 {
		t.Fatalf("snapshot MaxRows = %d, want 3", snap.MaxRows())
	}
	if got, want := snap.ComputedRows(), []int{1, 2, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("snapshot resident rows = %v, want %v", got, want)
	}
	// A snapshot read of a shared row must not recompute.
	before := snap.Stats().Computed
	requireResultsEqual(t, "shared row", snap.From(2), lt.From(2))
	if snap.Stats().Computed != before {
		t.Fatal("snapshot recomputed a row it shares with its parent")
	}
	// New snapshot reads evict by the inherited recency order (2 was just
	// touched, so the victim is 3) without touching the parent.
	snap.From(4)
	if got, want := snap.ComputedRows(), []int{1, 2, 4}; !reflect.DeepEqual(got, want) {
		t.Fatalf("snapshot rows after drift = %v, want %v", got, want)
	}
	if got, want := lt.ComputedRows(), []int{1, 2, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("parent rows changed by snapshot reads: %v, want %v", got, want)
	}
}

// TestLazyUnboundedNeverLRUEvicts pins the default: MaxRows <= 0 keeps every
// computed row, exactly the pre-bound behavior.
func TestLazyUnboundedNeverLRUEvicts(t *testing.T) {
	g := lruGraph()
	lt := NewLazyAllPairs(g, nil)
	for src := 1; src <= 8; src++ {
		lt.From(src)
	}
	if rows := lt.ComputedRows(); len(rows) != 8 {
		t.Fatalf("resident rows = %v, want all 8", rows)
	}
	if st := lt.Stats(); st.LRUEvicted != 0 {
		t.Fatalf("LRUEvicted = %d, want 0 when unbounded", st.LRUEvicted)
	}
}
