package qos

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// testGraph is a simple adjacency-map implementation of Graph.
type testGraph struct {
	adj map[int][]Arc
}

func newTestGraph() *testGraph { return &testGraph{adj: make(map[int][]Arc)} }

func (g *testGraph) addNode(n int) {
	if _, ok := g.adj[n]; !ok {
		g.adj[n] = nil
	}
}

func (g *testGraph) addArc(u, v int, bw, lat int64) {
	g.addNode(u)
	g.addNode(v)
	g.adj[u] = append(g.adj[u], Arc{To: v, Bandwidth: bw, Latency: lat})
}

func (g *testGraph) Nodes() []int {
	out := make([]int, 0, len(g.adj))
	for n := range g.adj {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

func (g *testGraph) Out(u int) []Arc { return g.adj[u] }

func TestMetricOrder(t *testing.T) {
	tests := []struct {
		a, b Metric
		want bool // a.Better(b)
	}{
		{Metric{100, 50}, Metric{90, 1}, true},   // wider wins despite latency
		{Metric{90, 1}, Metric{100, 50}, false},  // narrower loses
		{Metric{100, 10}, Metric{100, 20}, true}, // equal width: shorter wins
		{Metric{100, 20}, Metric{100, 10}, false},
		{Metric{100, 10}, Metric{100, 10}, false}, // equal is not better
		{Empty, Metric{100, 0}, true},             // empty path is widest
		{Metric{1, 0}, Unreachable, true},
	}
	for i, tt := range tests {
		if got := tt.a.Better(tt.b); got != tt.want {
			t.Errorf("case %d: %v.Better(%v) = %v, want %v", i, tt.a, tt.b, got, tt.want)
		}
	}
}

func TestMetricExtendConcat(t *testing.T) {
	m := Empty.Extend(100, 5).Extend(40, 7)
	if m != (Metric{Bandwidth: 40, Latency: 12}) {
		t.Fatalf("Extend chain = %+v", m)
	}
	c := Metric{50, 3}.Concat(Metric{60, 4})
	if c != (Metric{Bandwidth: 50, Latency: 7}) {
		t.Fatalf("Concat = %+v", c)
	}
	if Unreachable.Concat(Metric{60, 4}).Reachable() {
		t.Fatal("Concat with unreachable must be unreachable")
	}
	if Unreachable.Reachable() || !Empty.Reachable() {
		t.Fatal("Reachable predicates wrong")
	}
}

// The canonical shortest-widest example: two routes, one wider but longer.
func TestShortestWidestPrefersWider(t *testing.T) {
	g := newTestGraph()
	g.addArc(1, 2, 100, 10)
	g.addArc(2, 4, 100, 10)
	g.addArc(1, 3, 50, 1)
	g.addArc(3, 4, 50, 1)
	res := ShortestWidest(g, 1)
	if got := res.Metric(4); got != (Metric{Bandwidth: 100, Latency: 20}) {
		t.Fatalf("Metric(4) = %+v, want {100 20}", got)
	}
	if want := []int{1, 2, 4}; !reflect.DeepEqual(res.PathTo(4), want) {
		t.Fatalf("PathTo(4) = %v, want %v", res.PathTo(4), want)
	}
}

func TestShortestWidestTieBreaksOnLatency(t *testing.T) {
	g := newTestGraph()
	g.addArc(1, 2, 100, 50)
	g.addArc(2, 4, 100, 50)
	g.addArc(1, 3, 100, 5)
	g.addArc(3, 4, 100, 5)
	res := ShortestWidest(g, 1)
	if got := res.Metric(4); got != (Metric{Bandwidth: 100, Latency: 10}) {
		t.Fatalf("Metric(4) = %+v, want {100 10}", got)
	}
	if want := []int{1, 3, 4}; !reflect.DeepEqual(res.PathTo(4), want) {
		t.Fatalf("PathTo(4) = %v, want %v", res.PathTo(4), want)
	}
}

func TestShortestWidestUnreachable(t *testing.T) {
	g := newTestGraph()
	g.addArc(1, 2, 10, 1)
	g.addNode(3)
	res := ShortestWidest(g, 1)
	if res.Metric(3).Reachable() {
		t.Fatal("node 3 should be unreachable")
	}
	if res.PathTo(3) != nil {
		t.Fatal("PathTo unreachable should be nil")
	}
	if got := res.PathTo(1); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("PathTo(self) = %v, want [1]", got)
	}
	if res.Metric(1) != Empty {
		t.Fatalf("Metric(self) = %+v, want Empty", res.Metric(1))
	}
}

func TestShortestWidestIgnoresDeadLinks(t *testing.T) {
	g := newTestGraph()
	g.addArc(1, 2, 0, 1)  // zero bandwidth: unusable
	g.addArc(1, 2, -5, 1) // negative: unusable
	res := ShortestWidest(g, 1)
	if res.Metric(2).Reachable() {
		t.Fatal("dead link must not be used")
	}
}

// bruteForce finds the best metric over all simple paths by exhaustive DFS.
func bruteForce(g *testGraph, src, dst int) Metric {
	best := Unreachable
	onPath := map[int]bool{src: true}
	var dfs func(u int, m Metric)
	dfs = func(u int, m Metric) {
		if u == dst {
			if m.Better(best) {
				best = m
			}
			return
		}
		for _, a := range g.adj[u] {
			if a.Bandwidth <= 0 || onPath[a.To] {
				continue
			}
			onPath[a.To] = true
			dfs(a.To, m.Extend(a.Bandwidth, a.Latency))
			onPath[a.To] = false
		}
	}
	if src == dst {
		return Empty
	}
	dfs(src, Empty)
	return best
}

func randomGraph(rng *rand.Rand, n int, p float64) *testGraph {
	g := newTestGraph()
	for i := 0; i < n; i++ {
		g.addNode(i)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < p {
				g.addArc(i, j, int64(1+rng.Intn(100)), int64(rng.Intn(1000)))
			}
		}
	}
	return g
}

func TestShortestWidestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(8)
		g := randomGraph(rng, n, 0.4)
		src := rng.Intn(n)
		res := ShortestWidest(g, src)
		for dst := 0; dst < n; dst++ {
			want := bruteForce(g, src, dst)
			got := res.Metric(dst)
			if want.Reachable() != got.Reachable() {
				t.Fatalf("trial %d: reachability %d->%d: got %+v want %+v", trial, src, dst, got, want)
			}
			if !want.Reachable() {
				continue
			}
			// Dijkstra must achieve the same width; at that width the
			// same (minimal) latency.
			if got != want {
				t.Fatalf("trial %d: metric %d->%d: got %+v want %+v", trial, src, dst, got, want)
			}
			// And the reported path must realise the reported metric.
			if m := pathMetric(g, res.PathTo(dst)); m != got {
				t.Fatalf("trial %d: path %v realises %+v, reported %+v",
					trial, res.PathTo(dst), m, got)
			}
		}
	}
}

// pathMetric recomputes the metric of a concrete path on g.
func pathMetric(g *testGraph, path []int) Metric {
	m := Empty
	for i := 0; i+1 < len(path); i++ {
		found := false
		best := Unreachable
		for _, a := range g.adj[path[i]] {
			if a.To == path[i+1] && a.Bandwidth > 0 {
				cand := Metric{a.Bandwidth, a.Latency}
				if !found || cand.Better(best) {
					best = cand
					found = true
				}
			}
		}
		if !found {
			return Unreachable
		}
		m = m.Concat(best)
	}
	return m
}

func TestAllPairsConsistentWithSingleSource(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 12, 0.3)
	ap := ComputeAllPairs(g)
	if got := len(ap.Sources()); got != 12 {
		t.Fatalf("Sources = %d, want 12", got)
	}
	for _, src := range g.Nodes() {
		single := ShortestWidest(g, src)
		for _, dst := range g.Nodes() {
			if ap.Metric(src, dst) != single.Metric(dst) {
				t.Fatalf("AllPairs(%d,%d) = %+v, single = %+v",
					src, dst, ap.Metric(src, dst), single.Metric(dst))
			}
			if !reflect.DeepEqual(ap.Path(src, dst), single.PathTo(dst)) {
				t.Fatalf("AllPairs path mismatch %d->%d", src, dst)
			}
		}
	}
	if ap.Metric(999, 0).Reachable() {
		t.Fatal("unknown source should be unreachable")
	}
	if ap.Path(999, 0) != nil {
		t.Fatal("unknown source path should be nil")
	}
	if ap.From(0) == nil || ap.From(999) != nil {
		t.Fatal("From lookup wrong")
	}
}

func TestShortestLatencyPrefersShortOverWide(t *testing.T) {
	g := newTestGraph()
	g.addArc(1, 2, 100, 10)
	g.addArc(2, 4, 100, 10)
	g.addArc(1, 4, 20, 1) // narrow but direct
	res := ShortestLatency(g, 1)
	if got := res.Metric(4); got != (Metric{Bandwidth: 20, Latency: 1}) {
		t.Fatalf("Metric(4) = %+v, want {20 1}", got)
	}
	if want := []int{1, 4}; !reflect.DeepEqual(res.PathTo(4), want) {
		t.Fatalf("PathTo(4) = %v", res.PathTo(4))
	}
	// Contrast with shortest-widest, which takes the wide detour.
	sw := ShortestWidest(g, 1)
	if got := sw.Metric(4); got != (Metric{Bandwidth: 100, Latency: 20}) {
		t.Fatalf("shortest-widest Metric(4) = %+v", got)
	}
}

func TestShortestLatencyMatchesBruteForce(t *testing.T) {
	// The latency of ShortestLatency must equal the minimum over all
	// paths; the bandwidth must be realised by the reported path.
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(7)
		g := randomGraph(rng, n, 0.4)
		src := rng.Intn(n)
		res := ShortestLatency(g, src)
		for dst := 0; dst < n; dst++ {
			got, reachable := res.Dist[dst]
			brute := bruteMinLatency(g, src, dst)
			if reachable != (brute >= 0) {
				t.Fatalf("trial %d: reachability mismatch %d->%d", trial, src, dst)
			}
			if !reachable {
				continue
			}
			if got.Latency != brute {
				t.Fatalf("trial %d: latency %d->%d = %d, brute %d", trial, src, dst, got.Latency, brute)
			}
			if m := pathMetric(g, res.PathTo(dst)); m.Bandwidth != got.Bandwidth || m.Latency != got.Latency {
				t.Fatalf("trial %d: path realises %+v, reported %+v", trial, m, got)
			}
		}
	}
}

// bruteMinLatency returns the minimum total latency over all simple paths,
// or -1 if unreachable.
func bruteMinLatency(g *testGraph, src, dst int) int64 {
	if src == dst {
		return 0
	}
	best := int64(-1)
	onPath := map[int]bool{src: true}
	var dfs func(u int, lat int64)
	dfs = func(u int, lat int64) {
		if u == dst {
			if best < 0 || lat < best {
				best = lat
			}
			return
		}
		for _, a := range g.adj[u] {
			if a.Bandwidth <= 0 || onPath[a.To] {
				continue
			}
			onPath[a.To] = true
			dfs(a.To, lat+a.Latency)
			onPath[a.To] = false
		}
	}
	dfs(src, 0)
	return best
}

func TestQuickMetricOrderIsStrictWeak(t *testing.T) {
	// Better must be irreflexive and asymmetric, and exactly one of
	// a.Better(b), b.Better(a), a==b must hold.
	f := func(ab, al, bb, bl uint16) bool {
		a := Metric{Bandwidth: int64(ab), Latency: int64(al)}
		b := Metric{Bandwidth: int64(bb), Latency: int64(bl)}
		if a.Better(a) || b.Better(b) {
			return false
		}
		n := 0
		if a.Better(b) {
			n++
		}
		if b.Better(a) {
			n++
		}
		if a == b {
			n++
		}
		return n == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickExtendNeverImproves(t *testing.T) {
	// Extending a path can never make it wider, and never shorter.
	f := func(mb, ml, bw uint16, lat uint8) bool {
		m := Metric{Bandwidth: int64(mb) + 1, Latency: int64(ml)}
		e := m.Extend(int64(bw)+1, int64(lat))
		return e.Bandwidth <= m.Bandwidth && e.Latency >= m.Latency
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
