package qos

import (
	"testing"
)

// FuzzBucketQueue pins bucket-vs-heap kernel Result byte equality over
// fuzz-built graphs: every four bytes declare one arc (source, target,
// bandwidth tier, latency) over a small fixed node set, and both the
// shortest-widest and the latency kernel must answer identically — settle
// order, distances, paths and the relaxation tally — with the queue
// discipline forced each way. Latencies decode non-negative and small, so
// every fuzz graph is inside the bucket regime (the auto heuristic would pick
// the bucket queue too; forcing just removes the heuristic from the test).
func FuzzBucketQueue(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 1, 1, 1, 2, 1, 1, 2, 0, 1, 1})               // triangle
	f.Add([]byte{0, 1, 3, 0, 1, 2, 3, 0, 2, 3, 3, 0})               // zero-latency chain
	f.Add([]byte{0, 1, 1, 5, 0, 1, 2, 5, 0, 1, 1, 9})               // parallel arcs
	f.Add([]byte{0, 1, 0, 1, 1, 0, 1, 1, 2, 3, 2, 2})               // dead arc + island pair
	f.Add([]byte{5, 0, 7, 40, 0, 5, 7, 40, 3, 4, 2, 0, 4, 3, 2, 0}) // two 2-cycles
	f.Fuzz(func(t *testing.T, trace []byte) {
		if len(trace) > 64 { // 16 arcs over 8 nodes is plenty of shape space
			trace = trace[:64]
		}
		const n = 8
		g := newTestGraph()
		for i := 0; i < n; i++ {
			g.addNode(i * 3) // gappy external ids
		}
		for i := 0; i+3 < len(trace); i += 4 {
			u := int(trace[i]%n) * 3
			v := int(trace[i+1]%n) * 3
			// Bandwidth tier 0 decodes as a dead arc; latency stays in
			// [0, 63] so the bucket window is small and zero-latency
			// same-bucket settling is exercised.
			bw := int64(trace[i+2] % 8)
			lat := int64(trace[i+3] % 64)
			if u != v {
				g.addArc(u, v, bw*10, lat)
			}
		}

		cg := FreezeGraph(g)
		heapSC, bucketSC := NewScratch(), NewScratch()
		heapSC.forceKernel = kernelHeap
		bucketSC.forceKernel = kernelBucket
		for _, src := range g.Nodes() {
			idx, _ := cg.Index(src)
			var relHeap, relBucket int64
			heapSC.ensure(cg.Len())
			bucketSC.ensure(cg.Len())
			heapSC.denseWidest(cg, idx, &relHeap)
			bucketSC.denseWidest(cg, idx, &relBucket)
			if relHeap != relBucket {
				t.Fatalf("src %d: widest relaxations diverged: heap %d, bucket %d", src, relHeap, relBucket)
			}

			hw := shortestWidestDense(cg, idx, heapSC, instr{})
			bw := shortestWidestDense(cg, idx, bucketSC, instr{})
			requireResultsEqual(t, "fuzz widest", bw, hw)
			requireResultsEqual(t, "fuzz widest vs oracle", bw, ShortestWidest(g, src))

			hl := ShortestLatencyCSR(cg, src, heapSC)
			bl := ShortestLatencyCSR(cg, src, bucketSC)
			requireResultsEqual(t, "fuzz latency", bl, hl)
			requireResultsEqual(t, "fuzz latency vs oracle", bl, ShortestLatency(g, src))
		}
	})
}
