// Package qos implements quality-of-service routing on weighted directed
// graphs, specifically the shortest-widest path algorithm of Wang and
// Crowcroft (JSAC 1996) that the paper adopts: among all paths, select the
// one with the greatest bottleneck bandwidth (the widest path), and among
// equally wide paths, the one with the smallest total latency (the shortest).
//
// The computation is two-phase, as in the original algorithm. A single
// lexicographic Dijkstra is not correct here: a prefix that is narrower but
// much shorter can still yield the shortest path among the widest ones when a
// later link lowers the bottleneck anyway. Phase one is a max-bottleneck
// Dijkstra that finds each node's achievable width; phase two is a
// latency-only Dijkstra restricted, per width class, to links at least that
// wide.
//
// Bandwidth is in Kbit/s and latency in microseconds, both int64, so the
// quality order is exact.
package qos

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"sflow/internal/metrics"
)

// InfBandwidth is the bandwidth of the empty path: wider than any link.
const InfBandwidth int64 = math.MaxInt64

// Arc is one weighted out-edge of a graph node.
type Arc struct {
	To        int
	Bandwidth int64 // Kbit/s, must be > 0 for a usable link
	Latency   int64 // microseconds, must be >= 0
}

// Graph is the read-only view of a weighted digraph that routing operates on.
// Nodes must return identifiers in a deterministic order; Out must return the
// out-arcs of a node in a deterministic order.
type Graph interface {
	Nodes() []int
	Out(u int) []Arc
}

// Metric is the quality of a path: bottleneck bandwidth and total latency.
// The zero value (Bandwidth 0) means "unreachable".
type Metric struct {
	Bandwidth int64
	Latency   int64
}

// Unreachable is the metric of a non-existent path.
var Unreachable = Metric{}

// Empty is the metric of the empty path (a node to itself).
var Empty = Metric{Bandwidth: InfBandwidth}

// Reachable reports whether m describes an actual path.
func (m Metric) Reachable() bool { return m.Bandwidth > 0 }

// Better reports whether m is strictly better than o in the shortest-widest
// order: wider wins; at equal width, lower latency wins.
func (m Metric) Better(o Metric) bool {
	if m.Bandwidth != o.Bandwidth {
		return m.Bandwidth > o.Bandwidth
	}
	return m.Latency < o.Latency
}

// Extend returns the metric of a path with quality m extended by one link of
// the given bandwidth and latency.
func (m Metric) Extend(bw, lat int64) Metric {
	return Metric{Bandwidth: min64(m.Bandwidth, bw), Latency: m.Latency + lat}
}

// Concat returns the metric of the concatenation of two paths.
func (m Metric) Concat(o Metric) Metric {
	if !m.Reachable() || !o.Reachable() {
		return Unreachable
	}
	return Metric{Bandwidth: min64(m.Bandwidth, o.Bandwidth), Latency: m.Latency + o.Latency}
}

// Result holds the output of a single-source shortest-widest computation.
type Result struct {
	Source int
	// Dist maps each reachable node to the quality of the shortest-widest
	// path from Source. Unreachable nodes are absent. The map is the
	// Result's own state, not a copy: callers must treat it as read-only
	// (writes would corrupt the result for every other reader, including
	// the incremental maintenance built on top). Prefer the Metric accessor.
	Dist map[int]Metric
	// paths maps each reachable node to the selected concrete path
	// (Source first, node last).
	paths map[int][]int
}

// Metric returns the path quality from the source to dst (Unreachable if
// there is no path).
func (r *Result) Metric(dst int) Metric { return r.Dist[dst] }

// PathTo returns the selected path from the source to dst, inclusive of both
// endpoints. It returns nil if dst is unreachable. The returned slice is a
// copy and is the caller's to keep or modify.
func (r *Result) PathTo(dst int) []int {
	p := r.paths[dst]
	if p == nil {
		return nil
	}
	out := make([]int, len(p))
	copy(out, p)
	return out
}

// instr caches the counter handles of one instrumented routing computation.
// The zero value (nil handles) is the uninstrumented fast path: hot loops
// accumulate into locals and the publishing Adds below are nil-check no-ops.
type instr struct {
	runs, relaxations, fallbacks *metrics.Counter
}

// instrFor resolves the qos counter handles once per computation; reg may be
// nil.
func instrFor(reg *metrics.Registry) instr {
	if reg == nil {
		return instr{}
	}
	return instr{
		runs:        reg.Counter("qos_shortest_widest_runs_total"),
		relaxations: reg.Counter("qos_relaxations_total"),
		fallbacks:   reg.Counter("qos_phase2_fallbacks_total"),
	}
}

// ShortestWidest computes shortest-widest paths from src to every node of g.
// Arcs with non-positive bandwidth are ignored.
func ShortestWidest(g Graph, src int) *Result {
	return shortestWidest(g, src, instr{})
}

// ShortestWidestMetrics is ShortestWidest with instrumentation: Dijkstra arc
// relaxations and phase-2 fallback activations are counted into reg (nil reg
// disables the accounting).
func ShortestWidestMetrics(g Graph, src int, reg *metrics.Registry) *Result {
	return shortestWidest(g, src, instrFor(reg))
}

func shortestWidest(g Graph, src int, ins instr) *Result {
	res := &Result{
		Source: src,
		Dist:   map[int]Metric{src: Empty},
		paths:  map[int][]int{src: {src}},
	}
	var relaxed, fallbacks int64

	// Phase 1: maximum bottleneck bandwidth to every node.
	width, wprev := widestDijkstra(g, src, &relaxed)

	// Group nodes by achievable width; one phase-2 run per distinct width.
	byWidth := make(map[int64][]int)
	for n, w := range width {
		if n == src {
			continue
		}
		byWidth[w] = append(byWidth[w], n)
	}
	widths := make([]int64, 0, len(byWidth))
	for w := range byWidth {
		widths = append(widths, w)
	}
	sort.Slice(widths, func(i, j int) bool { return widths[i] > widths[j] })

	// Phase 2: for each width class w, find minimum-latency paths using
	// only links of bandwidth >= w; nodes whose widest width is exactly w
	// take their final answer from this run.
	for _, w := range widths {
		lat, prev := latencyDijkstra(g, src, w, &relaxed)
		for _, n := range byWidth[w] {
			if l, ok := lat[n]; ok {
				res.Dist[n] = Metric{Bandwidth: w, Latency: l}
				res.paths[n] = rebuild(prev, src, n)
				continue
			}
			// Phase 2 missed a node phase 1 reached. For a Graph
			// honouring its read-only contract this cannot happen —
			// the widest path itself uses only links >= w — but an
			// implementation whose Out answers drift between phases
			// would otherwise see the node silently dropped, i.e.
			// falsely reported unreachable. Fall back to the phase-1
			// widest-tree path with a latency recomputed along it.
			fallbacks++
			path := rebuild(wprev, src, n)
			l, ok := pathLatency(g, path, w)
			if !ok {
				// The path itself is gone too; the node really is
				// unreachable on the graph as currently reported.
				continue
			}
			res.Dist[n] = Metric{Bandwidth: w, Latency: l}
			res.paths[n] = path
		}
	}
	ins.runs.Inc()
	ins.relaxations.Add(relaxed)
	ins.fallbacks.Add(fallbacks)
	return res
}

// pathLatency sums per-hop latencies along path, preferring at each hop the
// fastest arc at least minBW wide and falling back to the fastest usable arc
// of any width. It reports false if some hop has no usable arc at all.
func pathLatency(g Graph, path []int, minBW int64) (int64, bool) {
	var total int64
	for i := 0; i+1 < len(path); i++ {
		var (
			found, foundWide bool
			best, bestWide   int64
		)
		for _, a := range g.Out(path[i]) {
			if a.To != path[i+1] || a.Bandwidth <= 0 {
				continue
			}
			if !found || a.Latency < best {
				found, best = true, a.Latency
			}
			if a.Bandwidth >= minBW && (!foundWide || a.Latency < bestWide) {
				foundWide, bestWide = true, a.Latency
			}
		}
		switch {
		case foundWide:
			total += bestWide
		case found:
			total += best
		default:
			return 0, false
		}
	}
	return total, true
}

// widestDijkstra returns the maximum bottleneck bandwidth from src to every
// reachable node, plus the predecessor map of the widest tree. The source
// maps to InfBandwidth. Every arc relaxation attempt is tallied into relaxed.
func widestDijkstra(g Graph, src int, relaxed *int64) (map[int]int64, map[int]int) {
	width := map[int]int64{src: InfBandwidth}
	prev := make(map[int]int)
	done := make(map[int]bool)
	h := &nodeHeap{better: func(a, b heapEntry) bool {
		if a.key != b.key {
			return a.key > b.key // wider first
		}
		return a.node < b.node
	}}
	h.push(heapEntry{node: src, key: InfBandwidth})
	for h.len() > 0 {
		e := h.pop()
		if done[e.node] || width[e.node] != e.key {
			continue
		}
		done[e.node] = true
		for _, a := range g.Out(e.node) {
			if a.Bandwidth <= 0 || done[a.To] {
				continue
			}
			*relaxed++
			cand := min64(e.key, a.Bandwidth)
			if cur, ok := width[a.To]; !ok || cand > cur {
				width[a.To] = cand
				prev[a.To] = e.node
				h.push(heapEntry{node: a.To, key: cand})
			}
		}
	}
	return width, prev
}

// latencyDijkstra returns minimum total latency from src using only arcs with
// bandwidth >= minBW, plus the predecessor map for path reconstruction. Every
// arc relaxation attempt is tallied into relaxed.
func latencyDijkstra(g Graph, src int, minBW int64, relaxed *int64) (map[int]int64, map[int]int) {
	lat := map[int]int64{src: 0}
	prev := make(map[int]int)
	done := make(map[int]bool)
	h := &nodeHeap{better: func(a, b heapEntry) bool {
		if a.key != b.key {
			return a.key < b.key // shorter first
		}
		return a.node < b.node
	}}
	h.push(heapEntry{node: src, key: 0})
	for h.len() > 0 {
		e := h.pop()
		if done[e.node] || lat[e.node] != e.key {
			continue
		}
		done[e.node] = true
		for _, a := range g.Out(e.node) {
			if a.Bandwidth < minBW || a.Bandwidth <= 0 || done[a.To] {
				continue
			}
			*relaxed++
			cand := e.key + a.Latency
			if cur, ok := lat[a.To]; !ok || cand < cur {
				lat[a.To] = cand
				prev[a.To] = e.node
				h.push(heapEntry{node: a.To, key: cand})
			}
		}
	}
	return lat, prev
}

func rebuild(prev map[int]int, src, dst int) []int {
	var rev []int
	for n := dst; ; {
		rev = append(rev, n)
		if n == src {
			break
		}
		n = prev[n]
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// ShortestLatency computes minimum-latency paths from src, the metric an
// IP-style underlay actually routes by. The returned metrics carry the
// bottleneck bandwidth of the selected minimum-latency path — which is NOT
// in general the widest available, exactly the gap QoS routing exploits.
func ShortestLatency(g Graph, src int) *Result {
	var relaxed int64
	lat, prev := latencyDijkstra(g, src, 1, &relaxed)
	res := &Result{
		Source: src,
		Dist:   make(map[int]Metric, len(lat)),
		paths:  make(map[int][]int, len(lat)),
	}
	for n := range lat {
		path := rebuild(prev, src, n)
		width := InfBandwidth
		for i := 0; i+1 < len(path); i++ {
			if bw := arcBandwidth(g, path[i], path[i+1]); bw < width {
				width = bw
			}
		}
		res.Dist[n] = Metric{Bandwidth: width, Latency: lat[n]}
		res.paths[n] = path
	}
	return res
}

// arcBandwidth returns the bandwidth of the lowest-latency (then widest) arc
// from u to v.
func arcBandwidth(g Graph, u, v int) int64 {
	var (
		found   bool
		bestLat int64
		bestBW  int64
	)
	for _, a := range g.Out(u) {
		if a.To != v || a.Bandwidth <= 0 {
			continue
		}
		if !found || a.Latency < bestLat || (a.Latency == bestLat && a.Bandwidth > bestBW) {
			found, bestLat, bestBW = true, a.Latency, a.Bandwidth
		}
	}
	if !found {
		return 0
	}
	return bestBW
}

// AllPairs holds shortest-widest results from every node of a graph.
type AllPairs struct {
	results map[int]*Result
}

// parallelAllPairsMin is the node count below which the default
// ComputeAllPairs stays sequential: per-source runs on tiny graphs (the
// two-hop local views of the distributed protocol, mostly) finish faster
// than goroutine fan-out costs.
const parallelAllPairsMin = 24

// ComputeAllPairs runs ShortestWidest from every node of g. The paper's
// baseline algorithm starts with exactly this computation. The graph is
// frozen once into CSR form and every per-source run uses the dense kernels
// of dense.go with a per-worker reusable Scratch — byte-identical to the
// map-based reference (ComputeAllPairsRef) at any worker count. Large graphs
// are fanned out over runtime.GOMAXPROCS(0) workers; the result is identical
// to the sequential computation at any worker count, since every per-source
// run is independent and results are assembled in node order after all
// workers join. g must be safe for concurrent reads during the freeze (true
// for every implementation in this module: Nodes/Out only read prebuilt
// state); workers afterwards only touch the frozen snapshot.
func ComputeAllPairs(g Graph) *AllPairs {
	return computeAllPairs(g, 0, true, instr{})
}

// ComputeAllPairsWorkers is ComputeAllPairs with an explicit worker count:
// workers <= 0 means runtime.GOMAXPROCS(0), 1 forces the sequential
// computation, anything larger fans the per-source runs out over that many
// goroutines even on small graphs.
func ComputeAllPairsWorkers(g Graph, workers int) *AllPairs {
	return computeAllPairs(g, workers, false, instr{})
}

// ComputeAllPairsMetrics is ComputeAllPairs with instrumentation into reg
// (nil reg disables it). Counter totals are sums over deterministic
// per-source runs, so they are identical at any worker count.
func ComputeAllPairsMetrics(g Graph, reg *metrics.Registry) *AllPairs {
	return computeAllPairs(g, 0, true, instrFor(reg))
}

// ComputeAllPairsWorkersMetrics is ComputeAllPairsWorkers with
// instrumentation into reg (nil reg disables it).
func ComputeAllPairsWorkersMetrics(g Graph, workers int, reg *metrics.Registry) *AllPairs {
	return computeAllPairs(g, workers, false, instrFor(reg))
}

func computeAllPairs(g Graph, workers int, auto bool, ins instr) *AllPairs {
	nodes := g.Nodes()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if auto && len(nodes) < parallelAllPairsMin {
		workers = 1
	}
	if workers > len(nodes) {
		workers = len(nodes)
	}
	cg := FreezeGraph(g)
	ap := &AllPairs{results: make(map[int]*Result, len(nodes))}
	if workers <= 1 {
		sc := NewScratch()
		for _, n := range nodes {
			idx, _ := cg.Index(n)
			ap.results[n] = shortestWidestDense(cg, idx, sc, ins)
		}
		return ap
	}
	perSource := make([]*Result, len(nodes))
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			sc := NewScratch()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(nodes) {
					return
				}
				idx, _ := cg.Index(nodes[i])
				perSource[i] = shortestWidestDense(cg, idx, sc, ins)
			}
		}()
	}
	wg.Wait()
	for i, n := range nodes {
		ap.results[n] = perSource[i]
	}
	return ap
}

// ComputeAllPairsRef is the sequential map-based reference implementation of
// ComputeAllPairs, retained as the correctness oracle for the CSR hot path:
// the equivalence tests pin the dense engine byte-identical to it — same
// distance tables, same selected paths, same instrumentation counts.
func ComputeAllPairsRef(g Graph) *AllPairs {
	nodes := g.Nodes()
	ap := &AllPairs{results: make(map[int]*Result, len(nodes))}
	for _, n := range nodes {
		ap.results[n] = shortestWidest(g, n, instr{})
	}
	return ap
}

// Metric returns the shortest-widest quality from src to dst.
func (ap *AllPairs) Metric(src, dst int) Metric {
	r, ok := ap.results[src]
	if !ok {
		return Unreachable
	}
	return r.Metric(dst)
}

// Path returns the selected shortest-widest path from src to dst (nil if
// unreachable).
func (ap *AllPairs) Path(src, dst int) []int {
	r, ok := ap.results[src]
	if !ok {
		return nil
	}
	return r.PathTo(dst)
}

// From returns the single-source result rooted at src (nil if src was not a
// node of the graph the all-pairs run saw).
func (ap *AllPairs) From(src int) *Result { return ap.results[src] }

// Sources returns the sources for which results exist, ascending.
func (ap *AllPairs) Sources() []int {
	out := make([]int, 0, len(ap.results))
	for n := range ap.results {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// heapEntry is one entry of nodeHeap; key is either a width (maximised) or a
// latency (minimised) depending on the heap's comparator.
type heapEntry struct {
	node int
	key  int64
}

// nodeHeap is a binary heap with a pluggable strict order, breaking full ties
// by node id inside the comparator for determinism.
type nodeHeap struct {
	a      []heapEntry
	better func(a, b heapEntry) bool
}

func (h *nodeHeap) len() int { return len(h.a) }

func (h *nodeHeap) push(x heapEntry) {
	h.a = append(h.a, x)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.better(h.a[i], h.a[p]) {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *nodeHeap) pop() heapEntry {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(h.a) && h.better(h.a[l], h.a[best]) {
			best = l
		}
		if r < len(h.a) && h.better(h.a[r], h.a[best]) {
			best = r
		}
		if best == i {
			break
		}
		h.a[i], h.a[best] = h.a[best], h.a[i]
		i = best
	}
	return top
}
