package qos

import (
	"math/rand"
	"testing"
)

// checkAllSources asserts dense-vs-oracle byte equality for every source of g,
// reusing one Scratch across rows (the steady-state calling convention).
func checkAllSources(t *testing.T, label string, g *testGraph) {
	t.Helper()
	cg := FreezeGraph(g)
	sc := NewScratch()
	for _, src := range g.Nodes() {
		requireResultsEqual(t, label+" widest", ShortestWidestCSR(cg, src, sc), ShortestWidest(g, src))
		requireResultsEqual(t, label+" latency", ShortestLatencyCSR(cg, src, sc), ShortestLatency(g, src))
	}
}

// TestTierSingleClass is the single-tier palette edge case: every arc has the
// same bandwidth, so phase 2 is exactly one (early-exited) latency run.
func TestTierSingleClass(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := newTestGraph()
	for i := 0; i < 12; i++ {
		g.addNode(i)
	}
	for i := 0; i < 12; i++ {
		for j := 0; j < 12; j++ {
			if i != j && rng.Float64() < 0.3 {
				g.addArc(i, j, 500, int64(1+rng.Intn(50)))
			}
		}
	}
	checkAllSources(t, "single-tier", g)
}

// TestTierAllDistinctWidths is the worst-case palette: every arc bandwidth is
// unique, so each reached node can form its own width class (one phase-2 run
// per node).
func TestTierAllDistinctWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	g := newTestGraph()
	for i := 0; i < 14; i++ {
		g.addNode(i)
	}
	bw := int64(100)
	for i := 0; i < 14; i++ {
		for j := 0; j < 14; j++ {
			if i != j && rng.Float64() < 0.25 {
				bw++
				g.addArc(i, j, bw, int64(1+rng.Intn(80)))
			}
		}
	}
	checkAllSources(t, "all-distinct", g)
}

// TestTierInfBandwidthRows pins the InfBandwidth edge case: arcs as wide as
// the empty path share the source's phase-1 width, which the early-exit
// counter must not confuse with the source itself.
func TestTierInfBandwidthRows(t *testing.T) {
	g := newTestGraph()
	// A pure-InfBandwidth component plus a finite spur.
	g.addArc(1, 2, InfBandwidth, 5)
	g.addArc(2, 3, InfBandwidth, 7)
	g.addArc(3, 1, InfBandwidth, 2)
	g.addArc(2, 4, 10, 1)
	g.addArc(4, 5, InfBandwidth, 3)
	checkAllSources(t, "inf-bandwidth", g)

	// All-InfBandwidth graph: a single width class equal to the source width.
	h := newTestGraph()
	h.addArc(1, 2, InfBandwidth, 1)
	h.addArc(2, 3, InfBandwidth, 1)
	h.addArc(3, 4, InfBandwidth, 4)
	h.addArc(4, 1, InfBandwidth, 2)
	checkAllSources(t, "all-inf", h)
}

// TestKernelForcedEquality pins bucket-vs-heap Result byte equality (the
// relaxation counter included) with the kernel choice forced both ways, over
// graphs inside the bucket regime.
func TestKernelForcedEquality(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	heapSC, bucketSC := NewScratch(), NewScratch()
	heapSC.forceKernel = kernelHeap
	bucketSC.forceKernel = kernelBucket
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(14)
		g := newTestGraph()
		ids := make([]int, n)
		for i := range ids {
			ids[i] = i * (1 + rng.Intn(3)) // gappy but distinct
			g.addNode(ids[i])
		}
		for _, u := range ids {
			for _, v := range ids {
				if u != v && rng.Float64() < 0.3 {
					// Latencies include 0 so zero-latency same-bucket
					// settling is exercised.
					g.addArc(u, v, int64(1+rng.Intn(6)), int64(rng.Intn(40)))
				}
			}
		}
		cg := FreezeGraph(g)
		for _, src := range g.Nodes() {
			var relHeap, relBucket int64
			idx, _ := cg.Index(src)
			heapSC.ensure(cg.Len())
			bucketSC.ensure(cg.Len())
			heapSC.denseWidest(cg, idx, &relHeap)
			bucketSC.denseWidest(cg, idx, &relBucket)
			hw := shortestWidestDense(cg, idx, heapSC, instr{})
			bw := shortestWidestDense(cg, idx, bucketSC, instr{})
			requireResultsEqual(t, "forced kernels", bw, hw)

			hl := ShortestLatencyCSR(cg, src, heapSC)
			bl := ShortestLatencyCSR(cg, src, bucketSC)
			requireResultsEqual(t, "forced kernels latency", bl, hl)
		}
	}
}

// TestGroupWidthClassesAllocFree pins the 0-alloc steady state of the
// phase-1-plus-grouping prefix of a row: after warmup, denseWidest and
// groupWidthClasses must not allocate (the sort.Slice closure the grouping
// replaced allocated every call).
func TestGroupWidthClassesAllocFree(t *testing.T) {
	g := largeTierGraph(300, 3, 6)
	cg := FreezeGraph(g)
	sc := NewScratch()
	sc.ensure(cg.Len())
	src := int32(0)
	var relaxed int64
	allocs := testing.AllocsPerRun(50, func() {
		sc.denseWidest(cg, src, &relaxed)
		sc.groupWidthClasses(cg, src)
	})
	if allocs != 0 {
		t.Fatalf("denseWidest+groupWidthClasses allocates %.1f/run, want 0", allocs)
	}
}

// TestShortestLatencyParallelArcs pins the oracle's parallel-arc selection
// (lowest latency, then widest, then first declared) through the recorded-arc
// bottleneck assembly, with the arc declaration order flipped to prove the
// answer does not depend on it.
func TestShortestLatencyParallelArcs(t *testing.T) {
	build := func(flip bool) *testGraph {
		g := newTestGraph()
		arcs := [][3]int64{ // to=2: {bw, lat}
			{40, 5, 0}, {90, 5, 0}, {90, 5, 0}, {70, 3, 0}, {20, 3, 0},
		}
		if flip {
			for i, j := 0, len(arcs)-1; i < j; i, j = i+1, j-1 {
				arcs[i], arcs[j] = arcs[j], arcs[i]
			}
		}
		for _, a := range arcs {
			g.addArc(1, 2, a[0], a[1])
		}
		g.addArc(2, 3, 15, 4)
		g.addArc(2, 3, 60, 4)
		return g
	}
	for _, flip := range []bool{false, true} {
		g := build(flip)
		cg := FreezeGraph(g)
		sc := NewScratch()
		got := ShortestLatencyCSR(cg, 1, sc)
		want := ShortestLatency(g, 1)
		requireResultsEqual(t, "parallel arcs", got, want)
		// The selected bottleneck must be the widest among the
		// minimum-latency parallel arcs on every hop: min(70, 60) = 60.
		if m := got.Dist[3]; m.Bandwidth != 60 || m.Latency != 7 {
			t.Fatalf("flip=%v: Dist[3] = %+v, want {60 7}", flip, m)
		}
	}
}
