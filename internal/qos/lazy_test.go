package qos

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"sflow/internal/metrics"
)

// assertLazyMatchesEager materializes every row of the lazy table and
// deep-compares it against a from-scratch eager computation on the same
// graph — sources, reachable sets, metrics and selected paths.
func assertLazyMatchesEager(t *testing.T, lt *LazyAllPairs, g Graph) {
	t.Helper()
	want := ComputeAllPairsWorkers(g, 1)
	if !TablesEqual(lt, want) || !TablesEqual(want, lt) {
		t.Fatalf("lazy table diverged from eager:\n lazy sources %v\neager sources %v",
			lt.Sources(), want.Sources())
	}
}

// randomTestGraph builds a seeded random testGraph with a small bandwidth
// palette (so shortest-widest rows have several width classes).
func randomTestGraph(seed int64, n, degree int) *testGraph {
	rng := rand.New(rand.NewSource(seed))
	g := newTestGraph()
	for i := 0; i < n; i++ {
		g.addNode(i)
	}
	tiers := []int64{100, 400, 1600, 6400}
	for i := 0; i < n; i++ {
		g.addArc(i, (i+1)%n, tiers[rng.Intn(len(tiers))], 1+int64(rng.Intn(50)))
		for d := 0; d < degree; d++ {
			j := rng.Intn(n)
			if j != i {
				g.addArc(i, j, tiers[rng.Intn(len(tiers))], 1+int64(rng.Intn(50)))
			}
		}
	}
	return g
}

func TestLazyMatchesEagerEveryRow(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := randomTestGraph(seed, 40, 3)
		lt := NewLazyAllPairs(g, nil)
		assertLazyMatchesEager(t, lt, g)
		if got, want := lt.Stats().Computed, int64(len(g.Nodes())); got != want {
			t.Fatalf("seed %d: computed %d rows, want %d (one per source)", seed, got, want)
		}
	}
}

func TestLazyUnknownSourceMatchesEager(t *testing.T) {
	g := chainGraph()
	lt := NewLazyAllPairs(g, nil)
	eager := ComputeAllPairsWorkers(g, 1)
	if lt.From(42) != nil || eager.From(42) != nil {
		t.Fatal("unknown source produced a row")
	}
	if got, want := lt.Metric(42, 1), eager.Metric(42, 1); got != want {
		t.Fatalf("unknown-source metric %v != eager %v", got, want)
	}
	if lt.Path(42, 1) != nil {
		t.Fatal("unknown source produced a path")
	}
	if got := lt.Stats().Computed; got != 0 {
		t.Fatalf("unknown-source reads ran %d kernels, want 0", got)
	}
}

// TestLazyRowsComputeOnDemandOnly pins the demand-driven contract: reading k
// rows runs exactly k kernels, and re-reads are memoized hits.
func TestLazyRowsComputeOnDemandOnly(t *testing.T) {
	g := randomTestGraph(1, 30, 3)
	lt := NewLazyAllPairs(g, nil)
	reads := []int{3, 7, 11}
	for _, src := range reads {
		if lt.From(src) == nil {
			t.Fatalf("row %d missing", src)
		}
	}
	if got, want := lt.Stats().Computed, int64(len(reads)); got != want {
		t.Fatalf("computed %d rows, want %d", got, want)
	}
	if got, want := lt.ComputedRows(), reads; !reflect.DeepEqual(got, want) {
		t.Fatalf("computed rows %v, want %v", got, want)
	}
	for _, src := range reads {
		lt.From(src)
	}
	st := lt.Stats()
	if st.Computed != int64(len(reads)) || st.Hits != int64(len(reads)) {
		t.Fatalf("re-reads ran kernels: %+v", st)
	}
}

// TestLazySingleFlight is the concurrency half of the memoization contract:
// many goroutines racing to read the same uncomputed row must run the kernel
// exactly once, share the one Result, and none may alias the memoized paths.
func TestLazySingleFlight(t *testing.T) {
	const goroutines = 32
	g := randomTestGraph(2, 60, 3)
	lt := NewLazyAllPairs(g, nil)

	var start, done sync.WaitGroup
	results := make([]*Result, goroutines)
	paths := make([][]int, goroutines)
	start.Add(1)
	done.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func(i int) {
			defer done.Done()
			start.Wait()
			results[i] = lt.From(7)
			paths[i] = lt.Path(7, 23)
		}(i)
	}
	start.Done()
	done.Wait()

	st := lt.Stats()
	if st.Computed != 1 {
		t.Fatalf("%d goroutines ran the kernel %d times, want exactly 1", goroutines, st.Computed)
	}
	// From + Path is two reads per goroutine; everyone but the computing
	// read either waited on the in-flight row or hit the memo.
	if got, want := st.Hits+st.DedupWaits, int64(2*goroutines-1); got != want {
		t.Fatalf("hits %d + dedup waits %d = %d, want %d", st.Hits, st.DedupWaits, st.Hits+st.DedupWaits, want)
	}
	for i := 1; i < goroutines; i++ {
		if results[i] != results[0] {
			t.Fatalf("goroutine %d got a different Result", i)
		}
		if !reflect.DeepEqual(paths[i], paths[0]) {
			t.Fatalf("goroutine %d path %v != %v", i, paths[i], paths[0])
		}
	}
	// Returned paths are copies: corrupting one must not corrupt the memo
	// or any other caller's slice.
	if len(paths[0]) > 0 {
		paths[0][0] = -99
		if fresh := lt.Path(7, 23); len(fresh) > 0 && fresh[0] == -99 {
			t.Fatal("Path returned an aliased slice into the memoized row")
		}
		if paths[1][0] == -99 {
			t.Fatal("two callers share one path slice")
		}
	}
	assertLazyMatchesEager(t, lt, g)
}

// TestLazyInvalidationIsExactlyTheReaders mirrors the Incremental dirty-set
// test: a change on Out(u) queues precisely the materialized rows whose
// sources reach u — unmaterialized rows cost nothing.
func TestLazyInvalidationIsExactlyTheReaders(t *testing.T) {
	g := chainGraph() // 1 -> 2 -> 3 -> 4, 5 -> 1
	lt := NewLazyAllPairs(g, nil)
	for _, src := range []int{1, 2, 3, 4, 5} {
		lt.From(src)
	}
	// Sources reaching 3 are 1, 2, 3, 5; node 4 must keep its row.
	g.setArc(3, 4, 50, 20)
	lt.OutChanged(3)
	if got, want := lt.Dirty(), []int{1, 2, 3, 5}; !reflect.DeepEqual(got, want) {
		t.Fatalf("dirty = %v, want %v", got, want)
	}
	if n := lt.Flush(); n != 4 {
		t.Fatalf("flush evicted %d rows, want 4", n)
	}
	if got, want := lt.ComputedRows(), []int{4}; !reflect.DeepEqual(got, want) {
		t.Fatalf("surviving rows %v, want %v", got, want)
	}
	assertLazyMatchesEager(t, lt, g)

	// Same mutation with NO materialized rows: nothing to evict.
	lt2 := NewLazyAllPairs(g, nil)
	lt2.OutChanged(2)
	if got := lt2.Dirty(); len(got) != 0 {
		t.Fatalf("empty table queued evictions: %v", got)
	}
	if n := lt2.Flush(); n != 0 {
		t.Fatalf("empty table evicted %d rows", n)
	}
}

// TestLazyFlushRunsNoRouting pins the satellite fix: Flush applies eviction
// and re-freeze only; kernels run on the next read, and only for the rows
// that were actually touched.
func TestLazyFlushRunsNoRouting(t *testing.T) {
	g := chainGraph()
	lt := NewLazyAllPairs(g, nil)
	for _, src := range []int{1, 2, 3, 4, 5} {
		lt.From(src)
	}
	before := lt.Stats().Computed
	g.setArc(3, 4, 50, 20)
	lt.OutChanged(3)
	if n := lt.Flush(); n != 4 {
		t.Fatalf("flush evicted %d rows, want 4", n)
	}
	if got := lt.Stats().Computed; got != before {
		t.Fatalf("flush ran %d kernels, want 0", got-before)
	}
	// Reading one evicted row recomputes exactly that row.
	lt.From(2)
	if got := lt.Stats().Computed; got != before+1 {
		t.Fatalf("one read after flush ran %d kernels, want 1", got-before)
	}
	assertLazyMatchesEager(t, lt, g)
}

func TestLazyNodeLifecycle(t *testing.T) {
	g := chainGraph()
	lt := NewLazyAllPairs(g, nil)
	assertLazyMatchesEager(t, lt, g)

	// Join: next reads see the new node and its links.
	g.addNode(9)
	lt.NodeAdded(9)
	g.addArc(9, 2, 80, 5)
	lt.OutChanged(9)
	g.addArc(4, 9, 80, 5)
	lt.OutChanged(4)
	assertLazyMatchesEager(t, lt, g)

	// Leave: in-neighbors report OutChanged, then the node goes away.
	ins := g.removeNode(2)
	for _, u := range ins {
		lt.OutChanged(u)
	}
	lt.NodeRemoved(2)
	assertLazyMatchesEager(t, lt, g)
	for _, src := range lt.Sources() {
		if src == 2 {
			t.Fatal("removed node still listed as a source")
		}
	}
	if lt.From(2) != nil {
		t.Fatal("removed node still has a row")
	}
}

// TestLazySnapshotPinned: a snapshot keeps answering from the graph as of the
// snapshot, even for rows it materializes after the parent mutated, while the
// parent tracks the live graph.
func TestLazySnapshotPinned(t *testing.T) {
	g := randomTestGraph(3, 25, 3)
	lt := NewLazyAllPairs(g, nil)
	lt.From(0) // one row materialized pre-snapshot
	wantOld := ComputeAllPairsWorkers(g, 1)

	snap := lt.Snapshot()

	// Mutate the live graph heavily after the snapshot.
	g.setArc(0, 1, 9999, 1)
	lt.OutChanged(0)
	g.addArc(5, 0, 9999, 1)
	lt.OutChanged(5)
	ins := g.removeNode(7)
	for _, u := range ins {
		lt.OutChanged(u)
	}
	lt.NodeRemoved(7)

	// The snapshot answers from the pinned graph — including row 7, whose
	// node no longer exists live, and rows it computes only now.
	if !TablesEqual(snap, wantOld) {
		t.Fatal("snapshot diverged from the graph as of the snapshot")
	}
	// The live table answers from the mutated graph.
	assertLazyMatchesEager(t, lt, g)
}

func TestLazyCounters(t *testing.T) {
	reg := metrics.New()
	g := chainGraph()
	lt := NewLazyAllPairs(g, reg)
	lt.From(1)
	lt.From(1)
	g.setArc(1, 2, 5, 5)
	lt.OutChanged(1)
	lt.Flush()
	snap := reg.Snapshot()
	want := map[string]int64{
		"qos_lazy_rows_computed_total": 1,
		"qos_lazy_row_hits_total":      1,
		"qos_lazy_evicted_rows_total":  1,
	}
	for _, c := range snap.Counters {
		if w, ok := want[c.Key]; ok && c.Value != w {
			t.Fatalf("%s = %d, want %d", c.Key, c.Value, w)
		}
	}
}

// TestIncrementalLazyFlushDefersRouting is the regression test for the lazy
// Incremental mode: Flush must do eviction work proportional to the touched
// rows and run zero kernels; the next AllPairs/Table read pays only for what
// it reads.
func TestIncrementalLazyFlushDefersRouting(t *testing.T) {
	g := chainGraph()
	inc := NewIncrementalLazy(g, 1, nil)
	lt := inc.Lazy()
	if lt == nil {
		t.Fatal("lazy incremental has no lazy table")
	}
	// Boot runs no routing at all.
	if got := lt.Stats().Computed; got != 0 {
		t.Fatalf("construction ran %d kernels, want 0", got)
	}
	tbl := inc.Table()
	for _, src := range []int{1, 2, 3, 4, 5} {
		tbl.From(src)
	}
	base := lt.Stats().Computed

	g.setArc(3, 4, 50, 20)
	inc.OutChanged(3)
	if got, want := inc.Dirty(), []int{1, 2, 3, 5}; !reflect.DeepEqual(got, want) {
		t.Fatalf("dirty = %v, want %v", got, want)
	}
	if n := inc.Flush(); n != 4 {
		t.Fatalf("flush reported %d, want 4 evicted rows", n)
	}
	if got := lt.Stats().Computed; got != base {
		t.Fatalf("lazy flush ran %d kernels, want 0", got-base)
	}
	if got, want := lt.Stats().Evicted, int64(4); got != want {
		t.Fatalf("flush evicted %d rows, want %d", got, want)
	}
	// A single-row read after the flush recomputes exactly that row.
	tbl.From(4) // untouched: memo hit
	if got := lt.Stats().Computed; got != base {
		t.Fatalf("untouched row recomputed (%d kernels)", got-base)
	}
	tbl.From(2)
	if got := lt.Stats().Computed; got != base+1 {
		t.Fatalf("touched-row read ran %d kernels, want 1", got-base)
	}

	// AllPairs materializes and equals a scratch rebuild.
	got := inc.AllPairs()
	want := ComputeAllPairsWorkers(g, 1)
	if !got.Equal(want) || !want.Equal(got) {
		t.Fatal("lazy incremental AllPairs diverged from scratch")
	}
}

// TestIncrementalLazyLifecycleMatchesScratch drives the full mutation API of
// the lazy Incremental and checks the materialized table after every step.
func TestIncrementalLazyLifecycleMatchesScratch(t *testing.T) {
	g := chainGraph()
	inc := NewIncrementalLazy(g, 1, nil)

	check := func() {
		t.Helper()
		got := inc.AllPairs()
		want := ComputeAllPairsWorkers(g, 1)
		if !got.Equal(want) || !want.Equal(got) {
			t.Fatal("lazy incremental diverged from scratch")
		}
	}
	check()

	g.addNode(9)
	inc.NodeAdded(9)
	g.addArc(9, 2, 80, 5)
	inc.OutChanged(9)
	check()

	ins := g.removeNode(2)
	for _, u := range ins {
		inc.OutChanged(u)
	}
	inc.NodeRemoved(2)
	check()
}

func TestLazyPrefetch(t *testing.T) {
	g := randomTestGraph(11, 40, 3)
	for _, workers := range []int{0, 1, 4} {
		lt := NewLazyAllPairs(g, nil)
		lt.Prefetch(nil, workers) // no-op
		if got := lt.Stats().Computed; got != 0 {
			t.Fatalf("workers=%d: empty prefetch computed %d rows", workers, got)
		}
		srcs := []int{0, 3, 7, 12, 25}
		lt.Prefetch(srcs, workers)
		if got := lt.Stats().Computed; got != int64(len(srcs)) {
			t.Fatalf("workers=%d: prefetch computed %d rows, want %d", workers, got, len(srcs))
		}
		// Prefetching again is free, and the rows match a scratch table.
		lt.Prefetch(srcs, workers)
		if got := lt.Stats().Computed; got != int64(len(srcs)) {
			t.Fatalf("workers=%d: re-prefetch recomputed (%d rows)", workers, got)
		}
		eager := ComputeAllPairsWorkers(g, 1)
		for _, src := range srcs {
			for _, dst := range g.Nodes() {
				if lt.Metric(src, dst) != eager.Metric(src, dst) {
					t.Fatalf("workers=%d: row %d differs from eager at %d", workers, src, dst)
				}
			}
		}
	}
}
