// Dense-slice rewrites of the two Dijkstra kernels over a frozen CSR graph.
//
// The map-based kernels in qos.go stay as the reference oracle; these are the
// hot path. Equivalence is exact, not just metric-equal: both engines settle
// nodes in the same order (the heap order is the strict total order (key,
// external id), which any correct heap realises identically), relax arcs in
// the same out-row order, and update labels only on strict improvement, so
// distance tables, predecessor trees, selected paths and even the relaxation
// counters feeding the metrics registry come out bit-identical. The property
// tests in dense_test.go pin this over seeded random graphs.
//
// One oracle branch is deliberately absent here: the phase-2 fallback for
// nodes phase 1 reached but phase 2 missed. That branch only fires when a
// Graph's Out answers drift between the two phases, which a frozen CSR
// snapshot makes impossible (the widest path to a node of width w uses only
// links >= w, so the restricted phase-2 run always reaches it). A miss on a
// frozen graph is therefore a kernel bug and panics instead of degrading.
package qos

import (
	"sort"

	"sflow/internal/csr"
)

// FreezeGraph freezes any qos.Graph into CSR form for the dense kernels.
// g.Out(u) must be empty for nodes u not in g.Nodes() (true for every
// implementation in this module); arcs to undeclared nodes freeze as dead
// ends.
func FreezeGraph(g Graph) *csr.Graph { return FreezeGraphInto(nil, g) }

// FreezeGraphInto is FreezeGraph reusing a previously frozen graph's arrays
// (see csr.FreezeInto).
func FreezeGraphInto(cg *csr.Graph, g Graph) *csr.Graph {
	return csr.FreezeInto(cg, g.Nodes(), func(u int, emit func(to int, bw, lat int64)) {
		for _, a := range g.Out(u) {
			emit(a.To, a.Bandwidth, a.Latency)
		}
	})
}

// Scratch holds the per-worker reusable state of the dense kernels: distance
// and predecessor arrays, the indexed 4-ary heap, and assembly buffers. A
// Scratch grows to the largest graph it has seen and is then reused without
// allocating, so steady-state relaxations allocate nothing. It is owned by
// exactly one goroutine at a time and must not be shared concurrently;
// ComputeAllPairsWorkers and Incremental.Flush thread one per worker.
type Scratch struct {
	width []int64 // phase-1 bottleneck bandwidth per index; 0 = unreached
	lat   []int64 // phase-2 / latency-kernel distance per index; -1 = unreached
	prev1 []int32 // widest-tree predecessor
	prev2 []int32 // latency-tree predecessor
	done  []bool  // settled flags of the current kernel run
	key   []int64 // current heap key per index
	hpos  []int32 // heap position per index; -1 = not in heap
	heap  []int32 // the 4-ary min-heap, as dense indexes
	order []int32 // reached nodes grouped by width class
	chain []int32 // predecessor-chain buffer for path assembly
	spans []pathSpan
}

// pathSpan locates one destination's selected path inside a Result's arena.
type pathSpan struct {
	dst    int
	lo, hi int
}

// NewScratch returns an empty Scratch, ready for any graph size.
func NewScratch() *Scratch { return &Scratch{} }

// ensure sizes the per-node arrays for an n-node graph, reusing capacity.
func (sc *Scratch) ensure(n int) {
	if cap(sc.width) >= n {
		sc.width = sc.width[:n]
		sc.lat = sc.lat[:n]
		sc.prev1 = sc.prev1[:n]
		sc.prev2 = sc.prev2[:n]
		sc.done = sc.done[:n]
		sc.key = sc.key[:n]
		sc.hpos = sc.hpos[:n]
		return
	}
	sc.width = make([]int64, n)
	sc.lat = make([]int64, n)
	sc.prev1 = make([]int32, n)
	sc.prev2 = make([]int32, n)
	sc.done = make([]bool, n)
	sc.key = make([]int64, n)
	sc.hpos = make([]int32, n)
}

// less is the heap order: smaller key first, external id breaking ties. It
// is a strict total order (ids are unique), which is what makes the settle
// order — and through it the whole computation — deterministic and equal to
// the oracle's.
func (sc *Scratch) less(g *csr.Graph, a, b int32) bool {
	if sc.key[a] != sc.key[b] {
		return sc.key[a] < sc.key[b]
	}
	return g.IDs[a] < g.IDs[b]
}

// heapFix inserts v with the given key, or sifts it up after a key decrease.
// Keys only ever improve during a Dijkstra run, so sifting up suffices.
func (sc *Scratch) heapFix(g *csr.Graph, v int32, key int64) {
	sc.key[v] = key
	if sc.hpos[v] < 0 {
		sc.hpos[v] = int32(len(sc.heap))
		sc.heap = append(sc.heap, v)
	}
	sc.up(g, int(sc.hpos[v]))
}

func (sc *Scratch) up(g *csr.Graph, i int) {
	h := sc.heap
	for i > 0 {
		p := (i - 1) / 4
		if !sc.less(g, h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		sc.hpos[h[i]] = int32(i)
		sc.hpos[h[p]] = int32(p)
		i = p
	}
}

func (sc *Scratch) down(g *csr.Graph, i int) {
	h := sc.heap
	n := len(h)
	for {
		best := i
		c0 := 4*i + 1
		for c := c0; c < c0+4 && c < n; c++ {
			if sc.less(g, h[c], h[best]) {
				best = c
			}
		}
		if best == i {
			return
		}
		h[i], h[best] = h[best], h[i]
		sc.hpos[h[i]] = int32(i)
		sc.hpos[h[best]] = int32(best)
		i = best
	}
}

func (sc *Scratch) popHeap(g *csr.Graph) int32 {
	h := sc.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	sc.hpos[h[0]] = 0
	sc.hpos[top] = -1
	sc.heap = h[:last]
	if last > 0 {
		sc.down(g, 0)
	}
	return top
}

// denseWidest is the CSR rewrite of widestDijkstra: maximum bottleneck
// bandwidth from src into sc.width, the widest tree into sc.prev1. The heap
// key is the negated width so one min-heap serves both kernels. Relaxation
// attempts are tallied into relaxed exactly as the oracle tallies them.
func (sc *Scratch) denseWidest(g *csr.Graph, src int32, relaxed *int64) {
	n := int32(g.Len())
	for i := int32(0); i < n; i++ {
		sc.width[i] = 0
		sc.prev1[i] = -1
		sc.done[i] = false
		sc.hpos[i] = -1
	}
	sc.heap = sc.heap[:0]
	sc.width[src] = InfBandwidth
	sc.heapFix(g, src, -InfBandwidth)
	off, to, bws := g.Off, g.To, g.BW
	for len(sc.heap) > 0 {
		u := sc.popHeap(g)
		sc.done[u] = true
		wu := sc.width[u]
		for e := off[u]; e < off[u+1]; e++ {
			bw := bws[e]
			v := to[e]
			if bw <= 0 || sc.done[v] {
				continue
			}
			*relaxed++
			cand := wu
			if bw < cand {
				cand = bw
			}
			if cand > sc.width[v] {
				sc.width[v] = cand
				sc.prev1[v] = u
				sc.heapFix(g, v, -cand)
			}
		}
	}
}

// denseLatency is the CSR rewrite of latencyDijkstra: minimum total latency
// from src over arcs of bandwidth >= minBW into sc.lat, predecessors into
// sc.prev2.
func (sc *Scratch) denseLatency(g *csr.Graph, src int32, minBW int64, relaxed *int64) {
	n := int32(g.Len())
	for i := int32(0); i < n; i++ {
		sc.lat[i] = -1
		sc.prev2[i] = -1
		sc.done[i] = false
		sc.hpos[i] = -1
	}
	sc.heap = sc.heap[:0]
	sc.lat[src] = 0
	sc.heapFix(g, src, 0)
	off, to, bws, lats := g.Off, g.To, g.BW, g.Lat
	for len(sc.heap) > 0 {
		u := sc.popHeap(g)
		sc.done[u] = true
		lu := sc.lat[u]
		for e := off[u]; e < off[u+1]; e++ {
			bw := bws[e]
			v := to[e]
			if bw < minBW || bw <= 0 || sc.done[v] {
				continue
			}
			*relaxed++
			cand := lu + lats[e]
			if cur := sc.lat[v]; cur < 0 || cand < cur {
				sc.lat[v] = cand
				sc.prev2[v] = u
				sc.heapFix(g, v, cand)
			}
		}
	}
}

// emitPath appends the selected path to dst (walked back through prev, then
// reversed) to the arena and records its span. It returns the grown arena.
func (sc *Scratch) emitPath(g *csr.Graph, src, dst int32, prev []int32, arena []int) []int {
	chain := sc.chain[:0]
	for v := dst; ; v = prev[v] {
		chain = append(chain, v)
		if v == src {
			break
		}
	}
	sc.chain = chain
	lo := len(arena)
	for i := len(chain) - 1; i >= 0; i-- {
		arena = append(arena, g.IDs[chain[i]])
	}
	sc.spans = append(sc.spans, pathSpan{dst: g.IDs[dst], lo: lo, hi: len(arena)})
	return arena
}

// shortestWidestDense is the CSR engine behind ShortestWidest: identical
// output (see the package comment above), dense arrays and a reusable
// Scratch instead of per-call maps. Selected paths are carved from a single
// per-result arena, so a run performs a small constant number of allocations
// regardless of graph size.
func shortestWidestDense(g *csr.Graph, src int32, sc *Scratch, ins instr) *Result {
	var relaxed int64
	n := g.Len()
	sc.ensure(n)
	sc.denseWidest(g, src, &relaxed)

	// Group the reached nodes into width classes, widest first (the class
	// order does not affect the result — every node is assigned exactly once,
	// by its own class's run — but a deterministic order keeps the
	// computation reproducible under a debugger or profiler).
	order := sc.order[:0]
	for i := int32(0); i < int32(n); i++ {
		if i != src && sc.width[i] > 0 {
			order = append(order, i)
		}
	}
	sc.order = order
	sort.Slice(order, func(a, b int) bool {
		wa, wb := sc.width[order[a]], sc.width[order[b]]
		if wa != wb {
			return wa > wb
		}
		return g.IDs[order[a]] < g.IDs[order[b]]
	})

	srcID := g.IDs[src]
	res := &Result{
		Source: srcID,
		Dist:   make(map[int]Metric, len(order)+1),
		paths:  make(map[int][]int, len(order)+1),
	}
	res.Dist[srcID] = Empty
	arena := make([]int, 0, 2*len(order)+1)
	sc.spans = sc.spans[:0]
	arena = sc.emitPath(g, src, src, sc.prev1, arena)

	for i := 0; i < len(order); {
		w := sc.width[order[i]]
		j := i
		for j < len(order) && sc.width[order[j]] == w {
			j++
		}
		sc.denseLatency(g, src, w, &relaxed)
		for _, v := range order[i:j] {
			l := sc.lat[v]
			if l < 0 {
				// Unreachable on a frozen graph (see package comment).
				panic("qos: phase 2 missed a phase-1 node on a frozen graph")
			}
			res.Dist[g.IDs[v]] = Metric{Bandwidth: w, Latency: l}
			arena = sc.emitPath(g, src, v, sc.prev2, arena)
		}
		i = j
	}
	for _, s := range sc.spans {
		res.paths[s.dst] = arena[s.lo:s.hi:s.hi]
	}
	ins.runs.Inc()
	ins.relaxations.Add(relaxed)
	// The fallback counter stays at zero by construction on a frozen graph;
	// Add(0) keeps the published counter set identical to the oracle's.
	ins.fallbacks.Add(0)
	return res
}

// ShortestWidestCSR computes shortest-widest paths from src on a frozen
// graph, byte-identical to ShortestWidest on the graph it froze. sc may be
// nil (a temporary Scratch is used); passing a reused Scratch makes the
// steady-state run allocation-free outside the returned Result.
func ShortestWidestCSR(g *csr.Graph, src int, sc *Scratch) *Result {
	i, ok := g.Index(src)
	if !ok {
		// Same answer the oracle gives for a source the graph doesn't know:
		// only the empty path to itself.
		return &Result{
			Source: src,
			Dist:   map[int]Metric{src: Empty},
			paths:  map[int][]int{src: {src}},
		}
	}
	if sc == nil {
		sc = NewScratch()
	}
	return shortestWidestDense(g, i, sc, instr{})
}

// ShortestLatencyCSR computes minimum-latency paths from src on a frozen
// graph, byte-identical to ShortestLatency on the graph it froze. sc may be
// nil.
func ShortestLatencyCSR(g *csr.Graph, src int, sc *Scratch) *Result {
	i, ok := g.Index(src)
	if !ok {
		return &Result{
			Source: src,
			Dist:   map[int]Metric{src: {Bandwidth: InfBandwidth, Latency: 0}},
			paths:  map[int][]int{src: {src}},
		}
	}
	if sc == nil {
		sc = NewScratch()
	}
	n := g.Len()
	sc.ensure(n)
	var relaxed int64
	sc.denseLatency(g, i, 1, &relaxed)

	reached := 0
	for v := int32(0); v < int32(n); v++ {
		if sc.lat[v] >= 0 {
			reached++
		}
	}
	res := &Result{
		Source: g.IDs[i],
		Dist:   make(map[int]Metric, reached),
		paths:  make(map[int][]int, reached),
	}
	arena := make([]int, 0, 2*reached)
	sc.spans = sc.spans[:0]
	for v := int32(0); v < int32(n); v++ {
		if sc.lat[v] < 0 {
			continue
		}
		arena = sc.emitPath(g, i, v, sc.prev2, arena)
		// The chain emitPath just walked is the path in reverse; compute the
		// selected path's bottleneck the way the oracle does, hop by hop.
		width := InfBandwidth
		for k := len(sc.chain) - 1; k > 0; k-- {
			if bw := denseArcBandwidth(g, sc.chain[k], sc.chain[k-1]); bw < width {
				width = bw
			}
		}
		res.Dist[g.IDs[v]] = Metric{Bandwidth: width, Latency: sc.lat[v]}
	}
	for _, s := range sc.spans {
		res.paths[s.dst] = arena[s.lo:s.hi:s.hi]
	}
	return res
}

// denseArcBandwidth mirrors arcBandwidth on the frozen form: the bandwidth of
// the lowest-latency (then widest) usable arc from u to v.
func denseArcBandwidth(g *csr.Graph, u, v int32) int64 {
	var (
		found   bool
		bestLat int64
		bestBW  int64
	)
	for e := g.Off[u]; e < g.Off[u+1]; e++ {
		if g.To[e] != v || g.BW[e] <= 0 {
			continue
		}
		if !found || g.Lat[e] < bestLat || (g.Lat[e] == bestLat && g.BW[e] > bestBW) {
			found, bestLat, bestBW = true, g.Lat[e], g.BW[e]
		}
	}
	if !found {
		return 0
	}
	return bestBW
}
