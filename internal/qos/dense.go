// Dense-slice rewrites of the two Dijkstra kernels over a frozen CSR graph.
//
// The map-based kernels in qos.go stay as the reference oracle; these are the
// hot path. Equivalence is exact on everything a caller can observe: both
// engines settle nodes in the same order (the queue order is the strict total
// order (key, external id), which any correct priority queue realises
// identically), relax arcs in the same out-row order, and update labels only
// on strict improvement, so distance tables, predecessor trees and selected
// paths come out bit-identical. The property tests in dense_test.go pin this
// over seeded random graphs.
//
// Two deliberate departures from run-for-run oracle lockstep, both invisible
// in any Result byte:
//
//   - Tiered early exit. A shortest-widest row runs one restricted latency
//     Dijkstra per distinct width class, but class w's run only needs the
//     labels of class-w members — and a settled Dijkstra label is final (no
//     kernel ever relaxes into a settled node). Each phase-2 run therefore
//     stops the moment the last member of its class settles instead of
//     draining the queue. Class members' Dist entries and predecessor chains
//     (which pass only through earlier-settled nodes) are untouched; the only
//     observable difference is the relaxation counter, whose oracle
//     bit-equality pin is relaxed to a documented invariant: dense
//     relaxations <= oracle relaxations, with runs and fallbacks still
//     exactly equal.
//
//   - Monotone bucket queue. When the frozen graph's usable-arc latencies
//     span a small non-negative integer range (true for every scenario
//     generator in this module), the latency kernel swaps the 4-ary heap for
//     a Dial-style circular bucket queue: O(1) decrease-key, settle order
//     recovered exactly by draining each distance bucket through a small
//     external-id min-heap (ties in Dijkstra are broken by external id in
//     both engines). Settle order, every Result byte AND the relaxation
//     counter are bit-identical to the heap kernel — FuzzBucketQueue pins
//     this — so kernel selection is a pure performance choice; graphs
//     outside the bucket regime fall back to the heap automatically.
//
// One oracle branch is deliberately absent here: the phase-2 fallback for
// nodes phase 1 reached but phase 2 missed. That branch only fires when a
// Graph's Out answers drift between the two phases, which a frozen CSR
// snapshot makes impossible (the widest path to a node of width w uses only
// links >= w, so the restricted phase-2 run always reaches it). A miss on a
// frozen graph is therefore a kernel bug and panics instead of degrading.
package qos

import (
	"sflow/internal/csr"
)

// FreezeGraph freezes any qos.Graph into CSR form for the dense kernels.
// g.Out(u) must be empty for nodes u not in g.Nodes() (true for every
// implementation in this module); arcs to undeclared nodes freeze as dead
// ends.
func FreezeGraph(g Graph) *csr.Graph { return FreezeGraphInto(nil, g) }

// FreezeGraphInto is FreezeGraph reusing a previously frozen graph's arrays
// (see csr.FreezeInto).
func FreezeGraphInto(cg *csr.Graph, g Graph) *csr.Graph {
	return csr.FreezeInto(cg, g.Nodes(), func(u int, emit func(to int, bw, lat int64)) {
		for _, a := range g.Out(u) {
			emit(a.To, a.Bandwidth, a.Latency)
		}
	})
}

// maxBucketLat is the largest usable-arc latency for which the latency
// kernel uses the bucket queue: the queue keeps MaxLat+1 circular buckets,
// so the bound caps its footprint (and the cost of clearing it per run) at a
// few KiB while covering every latency palette the scenario generators
// produce by orders of magnitude.
const maxBucketLat = 4096

// maxWidthTiers is the largest distinct-bandwidth palette for which the
// widest kernel uses its bucket queue (one bucket per distinct width).
// Real overlays draw bandwidths from a handful of tiers; a graph with more
// distinct values than this falls back to the heap.
const maxWidthTiers = 256

// Kernel force switches for tests: the auto heuristic picks the bucket queue
// exactly when the frozen graph's usable latency range fits it.
const (
	kernelAuto = iota
	kernelHeap
	kernelBucket
)

// Scratch holds the per-worker reusable state of the dense kernels: distance
// and predecessor arrays, the indexed 4-ary heap, the bucket queue, and
// assembly buffers. A Scratch grows to the largest graph it has seen and is
// then reused without allocating, so steady-state relaxations allocate
// nothing. It is owned by exactly one goroutine at a time and must not be
// shared concurrently; ComputeAllPairsWorkers and Incremental.Flush thread
// one per worker.
type Scratch struct {
	width []int64 // phase-1 bottleneck bandwidth per index; 0 = unreached
	lat   []int64 // phase-2 / latency-kernel distance per index; -1 = unreached
	prev1 []int32 // widest-tree predecessor
	prev2 []int32 // latency-tree predecessor
	arc2  []int32 // permuted-array arc index that set prev2 (lowest-latency-then-widest)
	done  []bool  // settled flags of the current kernel run
	key   []int64 // current heap key per index
	hpos  []int32 // heap position per index; -1 = not in heap
	heap  []int32 // the 4-ary min-heap, as dense indexes

	buckets [][]int32 // circular distance buckets of the Dial queue
	cur     []int32   // external-id min-heap draining the current bucket

	// Derived per-frozen-graph data, rebuilt when (graph, Gen) changes: the
	// distinct-bandwidth palette (InfBandwidth first, then widest to
	// narrowest; empty when the graph has more than maxWidthTiers distinct
	// bandwidths, sending the widest kernel to its heap fallback), and the
	// graph's arc arrays re-materialized with each out-row sorted widest
	// first — a restricted latency run stops scanning a row at the first arc
	// below its width floor instead of filtering the whole row, and the scan
	// stays a sequential walk (no permutation gather). permTier is each
	// permuted arc's palette index, making the widest kernel's bucket
	// placement an array lookup. Arc indexes recorded in arc2 address these
	// permuted arrays, not the graph's.
	derived    *csr.Graph
	derivedGen uint64
	palette    []int64
	arcPerm    []int32 // build-time scratch for the row sort
	permTo     []int32
	permBW     []int64
	permLat    []int64
	permTier   []int32

	arenaHint int // previous row's arena length, pre-sizing the next one

	widths   []int64 // distinct phase-1 width classes, widest first
	classCnt []int32 // per-class member count, then placement cursor
	classOff []int32 // class k's members are order[classOff[k]:classOff[k+1]]
	order    []int32 // reached nodes grouped by width class

	chain []int32 // predecessor-chain buffer for path assembly
	spans []pathSpan

	forceKernel int // test hook: kernelAuto (default), kernelHeap, kernelBucket
}

// pathSpan locates one destination's selected path inside a Result's arena.
type pathSpan struct {
	dst    int
	lo, hi int
}

// NewScratch returns an empty Scratch, ready for any graph size.
func NewScratch() *Scratch { return &Scratch{} }

// ensure sizes the per-node arrays for an n-node graph, reusing capacity.
func (sc *Scratch) ensure(n int) {
	if cap(sc.width) >= n {
		sc.width = sc.width[:n]
		sc.lat = sc.lat[:n]
		sc.prev1 = sc.prev1[:n]
		sc.prev2 = sc.prev2[:n]
		sc.arc2 = sc.arc2[:n]
		sc.done = sc.done[:n]
		sc.key = sc.key[:n]
		sc.hpos = sc.hpos[:n]
		return
	}
	sc.width = make([]int64, n)
	sc.lat = make([]int64, n)
	sc.prev1 = make([]int32, n)
	sc.prev2 = make([]int32, n)
	sc.arc2 = make([]int32, n)
	sc.done = make([]bool, n)
	sc.key = make([]int64, n)
	sc.hpos = make([]int32, n)
}

// less is the heap order: smaller key first, external id breaking ties. It
// is a strict total order (ids are unique), which is what makes the settle
// order — and through it the whole computation — deterministic and equal to
// the oracle's.
func (sc *Scratch) less(g *csr.Graph, a, b int32) bool {
	if sc.key[a] != sc.key[b] {
		return sc.key[a] < sc.key[b]
	}
	return g.IDs[a] < g.IDs[b]
}

// heapFix inserts v with the given key, or sifts it up after a key decrease.
// Keys only ever improve during a Dijkstra run, so sifting up suffices.
func (sc *Scratch) heapFix(g *csr.Graph, v int32, key int64) {
	sc.key[v] = key
	if sc.hpos[v] < 0 {
		sc.hpos[v] = int32(len(sc.heap))
		sc.heap = append(sc.heap, v)
	}
	sc.up(g, int(sc.hpos[v]))
}

func (sc *Scratch) up(g *csr.Graph, i int) {
	h := sc.heap
	for i > 0 {
		p := (i - 1) / 4
		if !sc.less(g, h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		sc.hpos[h[i]] = int32(i)
		sc.hpos[h[p]] = int32(p)
		i = p
	}
}

func (sc *Scratch) down(g *csr.Graph, i int) {
	h := sc.heap
	n := len(h)
	for {
		best := i
		c0 := 4*i + 1
		for c := c0; c < c0+4 && c < n; c++ {
			if sc.less(g, h[c], h[best]) {
				best = c
			}
		}
		if best == i {
			return
		}
		h[i], h[best] = h[best], h[i]
		sc.hpos[h[i]] = int32(i)
		sc.hpos[h[best]] = int32(best)
		i = best
	}
}

func (sc *Scratch) popHeap(g *csr.Graph) int32 {
	h := sc.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	sc.hpos[h[0]] = 0
	sc.hpos[top] = -1
	sc.heap = h[:last]
	if last > 0 {
		sc.down(g, 0)
	}
	return top
}

// prepare rebuilds the per-graph derived data when the frozen graph under
// this Scratch changes (FreezeInto reuses Graph values in place, hence the
// generation check). One linear pass with a binary search per arc against
// the growing palette; steady-state calls on an unchanged graph are two
// comparisons.
func (sc *Scratch) prepare(g *csr.Graph) {
	if sc.derived == g && sc.derivedGen == g.Gen {
		return
	}
	sc.derived, sc.derivedGen = g, g.Gen
	m := len(g.BW)
	pal := sc.palette[:0]
	pal = append(pal, InfBandwidth)
	for _, bw := range g.BW {
		if bw <= 0 || len(pal) > maxWidthTiers {
			continue
		}
		lo, hi := 0, len(pal)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if pal[mid] > bw {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(pal) && pal[lo] == bw {
			continue
		}
		pal = append(pal, 0)
		copy(pal[lo+1:], pal[lo:])
		pal[lo] = bw
	}
	if len(pal) > maxWidthTiers {
		pal = pal[:0] // too many tiers: the widest kernel falls back to the heap
	}
	sc.palette = pal

	// Re-sort each out-row widest-first (original index breaks ties, keeping
	// the permutation deterministic) and materialize the permuted to/bw/lat
	// copies so kernel scans stay sequential. Rows are short, so an insertion
	// sort per row beats a general sort and allocates nothing steady-state.
	if cap(sc.arcPerm) < m {
		sc.arcPerm = make([]int32, m)
		sc.permTo = make([]int32, m)
		sc.permBW = make([]int64, m)
		sc.permLat = make([]int64, m)
		sc.permTier = make([]int32, m)
	} else {
		sc.arcPerm = sc.arcPerm[:m]
		sc.permTo = sc.permTo[:m]
		sc.permBW = sc.permBW[:m]
		sc.permLat = sc.permLat[:m]
		sc.permTier = sc.permTier[:m]
	}
	perm, bws := sc.arcPerm, g.BW
	for u := 0; u < g.Len(); u++ {
		lo, hi := g.Off[u], g.Off[u+1]
		for e := lo; e < hi; e++ {
			perm[e] = e
		}
		for i := lo + 1; i < hi; i++ {
			x := perm[i]
			j := i - 1
			for j >= lo && bws[perm[j]] < bws[x] {
				perm[j+1] = perm[j]
				j--
			}
			perm[j+1] = x
		}
	}
	for pe, e := range perm {
		bw := g.BW[e]
		sc.permTo[pe] = g.To[e]
		sc.permBW[pe] = bw
		sc.permLat[pe] = g.Lat[e]
		if bw <= 0 {
			sc.permTier[pe] = -1
			continue
		}
		lo, hi := 0, len(pal)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if pal[mid] > bw {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		sc.permTier[pe] = int32(lo)
	}
}

// denseWidest is the CSR rewrite of widestDijkstra: maximum bottleneck
// bandwidth from src into sc.width, the widest tree into sc.prev1.
// Relaxation attempts are tallied into relaxed exactly as the oracle tallies
// them. The queue discipline is a bucket per distinct width when the graph's
// bandwidth palette is small (the norm), the 4-ary heap otherwise.
func (sc *Scratch) denseWidest(g *csr.Graph, src int32, relaxed *int64) {
	sc.prepare(g)
	if sc.forceKernel != kernelHeap && len(sc.palette) > 0 {
		sc.denseWidestBucket(g, src, relaxed)
		return
	}
	sc.denseWidestHeap(g, src, relaxed)
}

// denseWidestBucket is the tiered widest kernel: bottleneck widths can only
// take values from the arc-bandwidth palette (plus InfBandwidth at the
// source), tentative widths only ever improve, and the settle width is
// monotone non-increasing — so one bucket per palette tier, visited widest
// to narrowest and drained through the external-id min-heap, reproduces the
// heap kernel's (width, external id) settle order exactly. An improvement to
// the width currently settling re-enters the current drain heap (cand ==
// wu); a narrower improvement lands in its own tier's bucket (cand == the
// arc's bandwidth, precomputed as arcTier).
func (sc *Scratch) denseWidestBucket(g *csr.Graph, src int32, relaxed *int64) {
	n := int32(g.Len())
	for i := int32(0); i < n; i++ {
		sc.width[i] = 0
		sc.prev1[i] = -1
		sc.done[i] = false
	}
	pal, tier := sc.palette, sc.permTier
	nt := len(pal)
	if cap(sc.buckets) < nt {
		sc.buckets = append(sc.buckets[:cap(sc.buckets)], make([][]int32, nt-cap(sc.buckets))...)
	}
	sc.buckets = sc.buckets[:nt]
	for i := range sc.buckets {
		sc.buckets[i] = sc.buckets[i][:0]
	}
	sc.width[src] = InfBandwidth
	sc.buckets[0] = append(sc.buckets[0], src)
	pending := 1

	off, to, bws := g.Off, sc.permTo, sc.permBW
	ids := g.IDs
	for k := 0; pending > 0; k++ {
		bkt := sc.buckets[k]
		if len(bkt) == 0 {
			continue
		}
		sc.buckets[k] = bkt[:0]
		cur := sc.cur[:0]
		for _, v := range bkt {
			if sc.done[v] || sc.width[v] != pal[k] {
				pending-- // stale: superseded by a wider improvement
				continue
			}
			cur = append(cur, v)
			for c := len(cur) - 1; c > 0; {
				p := (c - 1) / 2
				if ids[cur[p]] <= ids[cur[c]] {
					break
				}
				cur[p], cur[c] = cur[c], cur[p]
				c = p
			}
		}
		for len(cur) > 0 {
			u := cur[0]
			last := len(cur) - 1
			cur[0] = cur[last]
			cur = cur[:last]
			for c := 0; ; {
				best := c
				if l := 2*c + 1; l < last && ids[cur[l]] < ids[cur[best]] {
					best = l
				}
				if r := 2*c + 2; r < last && ids[cur[r]] < ids[cur[best]] {
					best = r
				}
				if best == c {
					break
				}
				cur[c], cur[best] = cur[best], cur[c]
				c = best
			}
			pending--
			sc.done[u] = true
			wu := sc.width[u]
			for e := off[u]; e < off[u+1]; e++ {
				bw := bws[e]
				if bw <= 0 {
					break // row is widest-first: only dead arcs remain
				}
				v := to[e]
				if sc.done[v] {
					continue
				}
				*relaxed++
				cand := wu
				if bw < cand {
					cand = bw
				}
				if cand > sc.width[v] {
					sc.width[v] = cand
					sc.prev1[v] = u
					if cand == wu {
						cur = append(cur, v)
						for c := len(cur) - 1; c > 0; {
							p := (c - 1) / 2
							if ids[cur[p]] <= ids[cur[c]] {
								break
							}
							cur[p], cur[c] = cur[c], cur[p]
							c = p
						}
					} else {
						sc.buckets[tier[e]] = append(sc.buckets[tier[e]], v)
					}
					pending++
				}
			}
		}
		sc.cur = cur[:0]
	}
}

// denseWidestHeap is the 4-ary-heap widest kernel, the fallback for graphs
// with more distinct bandwidths than the bucket palette covers. The heap key
// is the negated width so one min-heap serves both kernels.
func (sc *Scratch) denseWidestHeap(g *csr.Graph, src int32, relaxed *int64) {
	n := int32(g.Len())
	for i := int32(0); i < n; i++ {
		sc.width[i] = 0
		sc.prev1[i] = -1
		sc.done[i] = false
		sc.hpos[i] = -1
	}
	sc.heap = sc.heap[:0]
	sc.width[src] = InfBandwidth
	sc.heapFix(g, src, -InfBandwidth)
	off, to, bws := g.Off, g.To, g.BW
	for len(sc.heap) > 0 {
		u := sc.popHeap(g)
		sc.done[u] = true
		wu := sc.width[u]
		for e := off[u]; e < off[u+1]; e++ {
			bw := bws[e]
			v := to[e]
			if bw <= 0 || sc.done[v] {
				continue
			}
			*relaxed++
			cand := wu
			if bw < cand {
				cand = bw
			}
			if cand > sc.width[v] {
				sc.width[v] = cand
				sc.prev1[v] = u
				sc.heapFix(g, v, -cand)
			}
		}
	}
}

// useBucket reports whether the latency kernel should run on the bucket
// queue for this graph: every usable arc latency must be a small non-negative
// integer (negative latencies would index before bucket zero, and a huge
// range would make the circular window larger than it saves).
func (sc *Scratch) useBucket(g *csr.Graph) bool {
	switch sc.forceKernel {
	case kernelHeap:
		return false
	case kernelBucket:
		return true
	}
	return g.MinLat >= 0 && g.MaxLat <= maxBucketLat
}

// denseLatency is the CSR rewrite of latencyDijkstra: minimum total latency
// from src over arcs of bandwidth >= minBW into sc.lat, predecessors into
// sc.prev2 and the arcs that set them into sc.arc2. The run is complete (no
// early exit) and the queue discipline is chosen by useBucket.
func (sc *Scratch) denseLatency(g *csr.Graph, src int32, minBW int64, relaxed *int64) {
	sc.denseLatencyStop(g, src, minBW, relaxed, 0, -1)
}

// denseLatencyStop is denseLatency with the tiered early exit: when
// stopLeft >= 0 the run returns as soon as stopLeft nodes of phase-1 width
// stopWidth (src excluded — its phase-1 width is InfBandwidth, which a width
// class may legitimately share) have settled. Settled labels are final, so
// the early exit leaves every class member's distance, predecessor chain and
// selected arc exactly as a full run would; only the relaxation tally
// shrinks. stopLeft < 0 disables the exit.
func (sc *Scratch) denseLatencyStop(g *csr.Graph, src int32, minBW int64, relaxed *int64, stopWidth int64, stopLeft int) {
	sc.prepare(g)
	if minBW < 1 {
		minBW = 1 // usable means bw > 0; a wider floor folds both checks into one
	}
	if sc.useBucket(g) {
		sc.denseLatencyBucket(g, src, minBW, relaxed, stopWidth, stopLeft)
		return
	}
	sc.denseLatencyHeap(g, src, minBW, relaxed, stopWidth, stopLeft)
}

// denseLatencyHeap is the 4-ary-heap latency kernel, the fallback for graphs
// outside the bucket regime.
func (sc *Scratch) denseLatencyHeap(g *csr.Graph, src int32, minBW int64, relaxed *int64, stopWidth int64, stopLeft int) {
	n := int32(g.Len())
	for i := int32(0); i < n; i++ {
		sc.lat[i] = -1
		sc.prev2[i] = -1
		sc.arc2[i] = -1
		sc.done[i] = false
		sc.hpos[i] = -1
	}
	sc.heap = sc.heap[:0]
	sc.lat[src] = 0
	sc.heapFix(g, src, 0)
	off, to, bws, lats := g.Off, sc.permTo, sc.permBW, sc.permLat
	for len(sc.heap) > 0 {
		u := sc.popHeap(g)
		sc.done[u] = true
		if stopLeft >= 0 && u != src && sc.width[u] == stopWidth {
			if stopLeft--; stopLeft <= 0 {
				return
			}
		}
		lu := sc.lat[u]
		for e := off[u]; e < off[u+1]; e++ {
			bw := bws[e]
			if bw < minBW {
				break // row is widest-first: everything further is too narrow
			}
			v := to[e]
			if sc.done[v] {
				continue
			}
			*relaxed++
			cand := lu + lats[e]
			if cur := sc.lat[v]; cur < 0 || cand < cur {
				sc.lat[v] = cand
				sc.prev2[v] = u
				sc.arc2[v] = e
				sc.heapFix(g, v, cand)
			} else if cand == cur && sc.prev2[v] == u && bws[e] > bws[sc.arc2[v]] {
				// Parallel arc, same minimal latency from the same hop: keep
				// the widest, matching the oracle's arcBandwidth selection.
				sc.arc2[v] = e
			}
		}
	}
}

// smallDrain is the bucket-transfer size at or below which a bucket is
// drained as an insertion-sorted array instead of a binary heap. Bucket
// populations are tiny in practice (settles spread across the latency range),
// so the sorted array's branch-predictable inserts beat the heap's sift
// bookkeeping; large transfers (constant-latency waves) keep the heap's
// O(log k) bound. Both disciplines emit ascending external-id order, so the
// choice is invisible in any Result byte.
const smallDrain = 32

// denseLatencyBucket is the Dial bucket-queue latency kernel. Distances are
// monotone non-decreasing in Dijkstra, and every usable arc latency lies in
// [0, MaxLat], so at any moment all queued tentative distances fit in a
// circular window of MaxLat+1 buckets. Each bucket is drained in ascending
// external-id order (sorted array for small transfers, min-heap for large —
// see smallDrain), which reproduces the heap kernel's (distance, external id)
// settle order exactly: zero-latency relaxations discovered mid-drain re-enter
// the current drain, later-distance ones land in their bucket. Stale entries
// (superseded by a strictly better relaxation) are skipped on transfer,
// exactly like a lazy-deletion heap would.
//
// A zero-latency chain can grow a sorted drain past smallDrain with O(len)
// inserts; that degenerate shape (a large same-distance frontier reached
// through 0-latency arcs) appears in no scenario generator and still
// terminates correctly, just without the heap bound.
func (sc *Scratch) denseLatencyBucket(g *csr.Graph, src int32, minBW int64, relaxed *int64, stopWidth int64, stopLeft int) {
	n := int32(g.Len())
	for i := int32(0); i < n; i++ {
		sc.lat[i] = -1
		sc.prev2[i] = -1
		sc.arc2[i] = -1
		sc.done[i] = false
	}
	nb := int(g.MaxLat) + 1
	if cap(sc.buckets) < nb {
		sc.buckets = append(sc.buckets[:cap(sc.buckets)], make([][]int32, nb-cap(sc.buckets))...)
	}
	sc.buckets = sc.buckets[:nb]
	for i := range sc.buckets {
		sc.buckets[i] = sc.buckets[i][:0]
	}
	sc.lat[src] = 0
	sc.buckets[0] = append(sc.buckets[0], src)
	pending := 1

	off, to, bws, lats := g.Off, sc.permTo, sc.permBW, sc.permLat
	ids := g.IDs
	bi := 0
	for d := int64(0); pending > 0; d++ {
		bkt := sc.buckets[bi]
		if len(bkt) > 0 {
			sc.buckets[bi] = bkt[:0]
			cur := sc.cur[:0]
			for _, v := range bkt {
				if sc.done[v] || sc.lat[v] != d {
					pending-- // stale: a strictly better relaxation superseded it
					continue
				}
				cur = append(cur, v)
			}
			if len(cur) <= smallDrain {
				// Sorted-array drain: ascending external-id order, settle by
				// walking the array; same-distance discoveries insert into the
				// unsettled suffix.
				for i := 1; i < len(cur); i++ {
					x := cur[i]
					j := i - 1
					for j >= 0 && ids[cur[j]] > ids[x] {
						cur[j+1] = cur[j]
						j--
					}
					cur[j+1] = x
				}
				for i := 0; i < len(cur); i++ {
					u := cur[i]
					pending--
					sc.done[u] = true
					if stopLeft >= 0 && u != src && sc.width[u] == stopWidth {
						if stopLeft--; stopLeft <= 0 {
							sc.cur = cur[:0]
							return
						}
					}
					for e := off[u]; e < off[u+1]; e++ {
						bw := bws[e]
						if bw < minBW {
							break // row is widest-first: the rest is too narrow
						}
						v := to[e]
						if sc.done[v] {
							continue
						}
						*relaxed++
						cand := d + lats[e]
						if curLat := sc.lat[v]; curLat < 0 || cand < curLat {
							sc.lat[v] = cand
							sc.prev2[v] = u
							sc.arc2[v] = e
							if cand == d {
								// Zero-latency arc: v settles in this same
								// drain, in external-id order with the rest.
								cur = append(cur, v)
								j := len(cur) - 2
								for j > i && ids[cur[j]] > ids[v] {
									cur[j+1] = cur[j]
									j--
								}
								cur[j+1] = v
							} else {
								// cand - d = lats[e] < nb, so the target bucket
								// is one conditional step from bi — no division.
								b := bi + int(lats[e])
								if b >= nb {
									b -= nb
								}
								sc.buckets[b] = append(sc.buckets[b], v)
							}
							pending++
						} else if cand == curLat && sc.prev2[v] == u && bws[e] > bws[sc.arc2[v]] {
							sc.arc2[v] = e
						}
					}
				}
				sc.cur = cur[:0]
				goto advance
			}
			// Heap drain: establish the heap invariant over the transfer,
			// then pop ascending external ids.
			for i := 1; i < len(cur); i++ {
				for c := i; c > 0; {
					p := (c - 1) / 2
					if ids[cur[p]] <= ids[cur[c]] {
						break
					}
					cur[p], cur[c] = cur[c], cur[p]
					c = p
				}
			}
			for len(cur) > 0 {
				u := cur[0]
				last := len(cur) - 1
				cur[0] = cur[last]
				cur = cur[:last]
				for c := 0; ; {
					best := c
					if l := 2*c + 1; l < last && ids[cur[l]] < ids[cur[best]] {
						best = l
					}
					if r := 2*c + 2; r < last && ids[cur[r]] < ids[cur[best]] {
						best = r
					}
					if best == c {
						break
					}
					cur[c], cur[best] = cur[best], cur[c]
					c = best
				}
				pending--
				sc.done[u] = true
				if stopLeft >= 0 && u != src && sc.width[u] == stopWidth {
					if stopLeft--; stopLeft <= 0 {
						sc.cur = cur[:0]
						return
					}
				}
				for e := off[u]; e < off[u+1]; e++ {
					bw := bws[e]
					if bw < minBW {
						break // row is widest-first: the rest is too narrow
					}
					v := to[e]
					if sc.done[v] {
						continue
					}
					*relaxed++
					cand := d + lats[e]
					if curLat := sc.lat[v]; curLat < 0 || cand < curLat {
						sc.lat[v] = cand
						sc.prev2[v] = u
						sc.arc2[v] = e
						if cand == d {
							// Zero-latency arc: v settles in this same
							// bucket, in external-id order with the rest.
							cur = append(cur, v)
							for c := len(cur) - 1; c > 0; {
								p := (c - 1) / 2
								if ids[cur[p]] <= ids[cur[c]] {
									break
								}
								cur[p], cur[c] = cur[c], cur[p]
								c = p
							}
						} else {
							b := bi + int(lats[e])
							if b >= nb {
								b -= nb
							}
							sc.buckets[b] = append(sc.buckets[b], v)
						}
						pending++
					} else if cand == curLat && sc.prev2[v] == u && bws[e] > bws[sc.arc2[v]] {
						sc.arc2[v] = e
					}
				}
			}
			sc.cur = cur[:0]
		}
	advance:
		if bi++; bi == nb {
			bi = 0
		}
	}
}

// groupWidthClasses groups the phase-1-reached nodes (src excluded) by
// bottleneck width into sc.order, widest class first, dense-index order
// within a class. Widths come from a small palette in practice, so a
// counting pass over the per-class cursor arrays replaces the sort.Slice
// closure the hot path used to pay an allocation (and an O(n log n)) for.
// After the call, class k covers sc.order[sc.classOff[k]:sc.classOff[k+1]]
// with width sc.widths[k]. Steady-state calls allocate nothing, which
// TestGroupWidthClassesAllocFree pins.
func (sc *Scratch) groupWidthClasses(g *csr.Graph, src int32) {
	n := int32(g.Len())
	widths := sc.widths[:0]
	cnt := sc.classCnt[:0]
	total := 0
	for i := int32(0); i < n; i++ {
		w := sc.width[i]
		if i == src || w <= 0 {
			continue
		}
		total++
		// Binary search in the descending widths palette.
		lo, hi := 0, len(widths)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if widths[mid] > w {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(widths) && widths[lo] == w {
			cnt[lo]++
			continue
		}
		widths = append(widths, 0)
		copy(widths[lo+1:], widths[lo:])
		widths[lo] = w
		cnt = append(cnt, 0)
		copy(cnt[lo+1:], cnt[lo:])
		cnt[lo] = 1
	}
	sc.widths = widths
	sc.classCnt = cnt

	if cap(sc.classOff) < len(widths)+1 {
		sc.classOff = make([]int32, len(widths)+1, 2*(len(widths)+1))
	} else {
		sc.classOff = sc.classOff[:len(widths)+1]
	}
	sc.classOff[0] = 0
	for k, c := range cnt {
		sc.classOff[k+1] = sc.classOff[k] + c
	}
	// Reuse the count array as the per-class placement cursor.
	copy(cnt, sc.classOff[:len(cnt)])

	if cap(sc.order) < total {
		sc.order = make([]int32, total)
	} else {
		sc.order = sc.order[:total]
	}
	for i := int32(0); i < n; i++ {
		w := sc.width[i]
		if i == src || w <= 0 {
			continue
		}
		lo, hi := 0, len(widths)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if widths[mid] > w {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		sc.order[cnt[lo]] = i
		cnt[lo]++
	}
}

// emitPath appends the selected path to dst (walked back through prev, then
// reversed) to the arena and records its span. It returns the grown arena.
func (sc *Scratch) emitPath(g *csr.Graph, src, dst int32, prev []int32, arena []int) []int {
	chain := sc.chain[:0]
	for v := dst; ; v = prev[v] {
		chain = append(chain, v)
		if v == src {
			break
		}
	}
	sc.chain = chain
	lo := len(arena)
	for i := len(chain) - 1; i >= 0; i-- {
		arena = append(arena, g.IDs[chain[i]])
	}
	sc.spans = append(sc.spans, pathSpan{dst: g.IDs[dst], lo: lo, hi: len(arena)})
	return arena
}

// shortestWidestDense is the CSR engine behind ShortestWidest: identical
// Dist/paths output (see the package comment above for the relaxation-counter
// invariant), dense arrays and a reusable Scratch instead of per-call maps.
// Selected paths are carved from a single per-result arena, so a run performs
// a small constant number of allocations regardless of graph size.
func shortestWidestDense(g *csr.Graph, src int32, sc *Scratch, ins instr) *Result {
	var relaxed int64
	n := g.Len()
	sc.ensure(n)
	sc.denseWidest(g, src, &relaxed)
	sc.groupWidthClasses(g, src)

	srcID := g.IDs[src]
	res := &Result{
		Source: srcID,
		Dist:   make(map[int]Metric, len(sc.order)+1),
		paths:  make(map[int][]int, len(sc.order)+1),
	}
	res.Dist[srcID] = Empty
	cap0 := 2*len(sc.order) + 1
	if sc.arenaHint > cap0 {
		// Rows of one graph have similar path volume; sizing by the previous
		// row's arena avoids the append-regrow copies mid-assembly.
		cap0 = sc.arenaHint
	}
	arena := make([]int, 0, cap0)
	sc.spans = sc.spans[:0]
	arena = sc.emitPath(g, src, src, sc.prev1, arena)

	for k := 0; k < len(sc.widths); k++ {
		w := sc.widths[k]
		lo, hi := sc.classOff[k], sc.classOff[k+1]
		sc.denseLatencyStop(g, src, w, &relaxed, w, int(hi-lo))
		for _, v := range sc.order[lo:hi] {
			l := sc.lat[v]
			if l < 0 {
				// Unreachable on a frozen graph (see package comment).
				panic("qos: phase 2 missed a phase-1 node on a frozen graph")
			}
			res.Dist[g.IDs[v]] = Metric{Bandwidth: w, Latency: l}
			arena = sc.emitPath(g, src, v, sc.prev2, arena)
		}
	}
	sc.arenaHint = len(arena)
	for _, s := range sc.spans {
		res.paths[s.dst] = arena[s.lo:s.hi:s.hi]
	}
	ins.runs.Inc()
	ins.relaxations.Add(relaxed)
	// The fallback counter stays at zero by construction on a frozen graph;
	// Add(0) keeps the published counter set identical to the oracle's.
	ins.fallbacks.Add(0)
	return res
}

// ShortestWidestCSR computes shortest-widest paths from src on a frozen
// graph, byte-identical to ShortestWidest on the graph it froze. sc may be
// nil (a temporary Scratch is used); passing a reused Scratch makes the
// steady-state run allocation-free outside the returned Result.
func ShortestWidestCSR(g *csr.Graph, src int, sc *Scratch) *Result {
	i, ok := g.Index(src)
	if !ok {
		// Same answer the oracle gives for a source the graph doesn't know:
		// only the empty path to itself.
		return &Result{
			Source: src,
			Dist:   map[int]Metric{src: Empty},
			paths:  map[int][]int{src: {src}},
		}
	}
	if sc == nil {
		sc = NewScratch()
	}
	return shortestWidestDense(g, i, sc, instr{})
}

// ShortestLatencyCSR computes minimum-latency paths from src on a frozen
// graph, byte-identical to ShortestLatency on the graph it froze. sc may be
// nil.
func ShortestLatencyCSR(g *csr.Graph, src int, sc *Scratch) *Result {
	i, ok := g.Index(src)
	if !ok {
		return &Result{
			Source: src,
			Dist:   map[int]Metric{src: {Bandwidth: InfBandwidth, Latency: 0}},
			paths:  map[int][]int{src: {src}},
		}
	}
	if sc == nil {
		sc = NewScratch()
	}
	n := g.Len()
	sc.ensure(n)
	var relaxed int64
	sc.denseLatency(g, i, 1, &relaxed)

	reached := 0
	for v := int32(0); v < int32(n); v++ {
		if sc.lat[v] >= 0 {
			reached++
		}
	}
	res := &Result{
		Source: g.IDs[i],
		Dist:   make(map[int]Metric, reached),
		paths:  make(map[int][]int, reached),
	}
	cap0 := 2 * reached
	if sc.arenaHint > cap0 {
		cap0 = sc.arenaHint
	}
	arena := make([]int, 0, cap0)
	sc.spans = sc.spans[:0]
	for v := int32(0); v < int32(n); v++ {
		if sc.lat[v] < 0 {
			continue
		}
		arena = sc.emitPath(g, i, v, sc.prev2, arena)
		// The chain emitPath just walked is the path in reverse; its
		// bottleneck is the min over each hop's recorded tree arc — the
		// lowest-latency (then widest) usable arc into every chain node,
		// exactly what the oracle's per-hop arcBandwidth rescan selects, at
		// O(1) per hop instead of an out-row scan.
		width := InfBandwidth
		for k := len(sc.chain) - 1; k > 0; k-- {
			if bw := sc.permBW[sc.arc2[sc.chain[k-1]]]; bw < width {
				width = bw
			}
		}
		res.Dist[g.IDs[v]] = Metric{Bandwidth: width, Latency: sc.lat[v]}
	}
	sc.arenaHint = len(arena)
	for _, s := range sc.spans {
		res.paths[s.dst] = arena[s.lo:s.hi:s.hi]
	}
	return res
}
