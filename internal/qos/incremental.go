// Incremental maintenance of an all-pairs shortest-widest table under graph
// mutations.
//
// The key observation is that shortestWidest(g, s) is a deterministic pure
// function of the out-arc lists it actually reads, and it reads Out(u) only
// for nodes u reachable from s (phase 1 pops exactly the reachable set and
// phase 2 / the fallback walk subsets of it). A mutation that changes Out(u)
// therefore cannot change — not even in tie-breaking — the result of any
// source that could not reach u. Tracking, per node, the set of sources whose
// last run read it (the reverse-dependency "readers" index) turns a mutation
// into an exact dirty set: recomputing just those sources reproduces the
// from-scratch table bit for bit, selected paths included.
package qos

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"sflow/internal/csr"
	"sflow/internal/metrics"
)

// Incremental maintains the AllPairs shortest-widest table of a mutable
// graph. The caller owns the graph and reports every mutation through
// OutChanged / NodeAdded / NodeRemoved; Flush (or AllPairs) then recomputes
// only the affected sources. Incremental is not safe for concurrent use —
// the internal recompute fan-out is its only parallelism.
type Incremental struct {
	g       Graph
	workers int
	ins     instr

	ap *AllPairs
	// readers maps node u -> the sources whose current result was computed
	// by a run that read Out(u), i.e. the sources that can reach u. Exactly
	// these sources must be recomputed when Out(u) changes.
	readers map[int]map[int]struct{}
	// dirty holds the sources whose cached result may be stale.
	dirty map[int]struct{}

	// frozen is the CSR snapshot the dense recompute kernels run on,
	// re-frozen (array storage reused) at the first flush after any
	// mutation. scratches hold one reusable dense-kernel Scratch per flush
	// worker, so steady-state flush relaxations allocate nothing.
	frozen    *csr.Graph
	stale     bool
	scratches []*Scratch

	// lazy, when non-nil, replaces the eager table: mutation reports forward
	// into it, Flush evicts instead of recomputing, and reads go through
	// Table() / Lazy(). The eager fields above stay nil in lazy mode.
	lazy *LazyAllPairs

	flushes, recomputed, saved *metrics.Counter
}

// NewIncremental computes the initial all-pairs table of g and the
// reverse-dependency index behind incremental maintenance. workers bounds the
// per-source fan-out of the initial computation and of every Flush (<= 0
// means GOMAXPROCS, 1 forces sequential). reg, when non-nil, receives
// qos_incremental_* counters alongside the usual routing instrumentation.
func NewIncremental(g Graph, workers int, reg *metrics.Registry) *Incremental {
	ins := instrFor(reg)
	inc := &Incremental{
		g:       g,
		workers: workers,
		ins:     ins,
		ap:      computeAllPairs(g, workers, false, ins),
		readers: make(map[int]map[int]struct{}),
		dirty:   make(map[int]struct{}),
		stale:   true,
	}
	if reg != nil {
		inc.flushes = reg.Counter("qos_incremental_flushes_total")
		inc.recomputed = reg.Counter("qos_incremental_recomputed_sources_total")
		inc.saved = reg.Counter("qos_incremental_saved_sources_total")
	}
	for src, res := range inc.ap.results {
		inc.register(src, res)
	}
	return inc
}

// NewIncrementalLazy builds an Incremental in lazy mode: no routing runs up
// front, rows materialize on first read through Table() (or Lazy()), and
// Flush evicts stale rows instead of recomputing them — a source touched by
// churn that no consumer reads never costs a Dijkstra. workers bounds
// Prefetch/Materialize fan-out. The mutation-report contract (OutChanged /
// NodeAdded / NodeRemoved, single writer) is identical to eager mode.
func NewIncrementalLazy(g Graph, workers int, reg *metrics.Registry) *Incremental {
	return NewIncrementalLazyOpts(g, workers, LazyOptions{Metrics: reg})
}

// NewIncrementalLazyOpts is NewIncrementalLazy with the full lazy-table option
// set (notably LazyOptions.MaxRows, the bounded row cache).
func NewIncrementalLazyOpts(g Graph, workers int, opts LazyOptions) *Incremental {
	reg := opts.Metrics
	inc := &Incremental{
		g:       g,
		workers: workers,
		lazy:    NewLazyAllPairsOpts(g, opts),
	}
	if reg != nil {
		inc.flushes = reg.Counter("qos_incremental_flushes_total")
		inc.recomputed = reg.Counter("qos_incremental_recomputed_sources_total")
		inc.saved = reg.Counter("qos_incremental_saved_sources_total")
	}
	return inc
}

// Lazy returns the demand-driven table when the Incremental was built with
// NewIncrementalLazy, nil otherwise.
func (inc *Incremental) Lazy() *LazyAllPairs { return inc.lazy }

// Table returns the read interface of the maintained table without forcing
// materialization: the lazy table in lazy mode (pending invalidation is
// applied on the next read), the flushed eager table otherwise.
func (inc *Incremental) Table() Table {
	if inc.lazy != nil {
		return inc.lazy
	}
	return inc.AllPairs()
}

// register adds src to the readers set of every node its result reached.
func (inc *Incremental) register(src int, res *Result) {
	for u := range res.Dist {
		set, ok := inc.readers[u]
		if !ok {
			set = make(map[int]struct{})
			inc.readers[u] = set
		}
		set[src] = struct{}{}
	}
}

// unregister removes src from the readers set of every node its previous
// result reached.
func (inc *Incremental) unregister(src int, res *Result) {
	for u := range res.Dist {
		if set, ok := inc.readers[u]; ok {
			delete(set, src)
			if len(set) == 0 {
				delete(inc.readers, u)
			}
		}
	}
}

// OutChanged records that the out-arcs of u changed (a link out of u was
// added, removed, or re-weighted): every source that could reach u — and
// only those — must recompute.
func (inc *Incremental) OutChanged(u int) {
	if inc.lazy != nil {
		inc.lazy.OutChanged(u)
		return
	}
	inc.stale = true
	for src := range inc.readers[u] {
		inc.dirty[src] = struct{}{}
	}
	// u's own run reads Out(u) by definition; registration guarantees
	// u ∈ readers[u] while u has a result, but be defensive about a node
	// whose links appear before Flush ran after NodeAdded.
	if _, ok := inc.ap.results[u]; ok {
		inc.dirty[u] = struct{}{}
	}
}

// NodeAdded records that n joined the graph. The new source needs its own
// run; existing sources cannot reach a node that has no in-links yet, and
// the links that follow arrive as OutChanged events.
func (inc *Incremental) NodeAdded(n int) {
	if inc.lazy != nil {
		inc.lazy.NodeAdded(n)
		return
	}
	inc.stale = true
	inc.dirty[n] = struct{}{}
}

// NodeRemoved records that n left the graph along with its incident arcs.
// The caller must additionally report OutChanged for every former in-neighbor
// of n (their out-arc lists shrank). Sources that reached n are dirtied here
// as well, which over-approximates safely even if the caller's OutChanged
// calls already cover them.
func (inc *Incremental) NodeRemoved(n int) {
	if inc.lazy != nil {
		inc.lazy.NodeRemoved(n)
		return
	}
	inc.stale = true
	for src := range inc.readers[n] {
		inc.dirty[src] = struct{}{}
	}
	if res, ok := inc.ap.results[n]; ok {
		inc.unregister(n, res)
		delete(inc.ap.results, n)
	}
	delete(inc.dirty, n)
	// Any readers entry for n itself is now stale; recomputed sources will
	// simply no longer reach n, and unregister above dropped n's own runs.
	delete(inc.readers, n)
}

// Dirty returns the sources currently queued for recomputation (eager mode)
// or eviction (lazy mode), ascending.
func (inc *Incremental) Dirty() []int {
	if inc.lazy != nil {
		return inc.lazy.Dirty()
	}
	out := make([]int, 0, len(inc.dirty))
	for src := range inc.dirty {
		out = append(out, src)
	}
	sort.Ints(out)
	return out
}

// Flush recomputes every dirty source and returns how many were recomputed.
// The maintained table afterwards equals a from-scratch ComputeAllPairs on
// the current graph, byte for byte.
//
// In lazy mode Flush runs no routing at all: it evicts the dirty rows (the
// returned count) and defers recomputation to the next read of each source —
// flush work is pinned to the rows consumers actually touched, never the
// whole dirty set.
func (inc *Incremental) Flush() int {
	if inc.lazy != nil {
		evicted := inc.lazy.Flush()
		if evicted > 0 {
			inc.flushes.Inc()
		}
		return evicted
	}
	if len(inc.dirty) == 0 {
		return 0
	}
	nodes := inc.g.Nodes()
	current := make(map[int]struct{}, len(nodes))
	for _, n := range nodes {
		current[n] = struct{}{}
	}
	srcs := make([]int, 0, len(inc.dirty))
	for src := range inc.dirty {
		if _, ok := current[src]; ok {
			srcs = append(srcs, src)
		} else if res, ok := inc.ap.results[src]; ok {
			// A dirty source that left before the flush: drop it.
			inc.unregister(src, res)
			delete(inc.ap.results, src)
		}
	}
	sort.Ints(srcs)
	inc.dirty = make(map[int]struct{})

	fresh := make([]*Result, len(srcs))
	workers := inc.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(srcs) {
		workers = len(srcs)
	}
	if len(srcs) > 0 && (inc.frozen == nil || inc.stale) {
		inc.frozen = FreezeGraphInto(inc.frozen, inc.g)
		inc.stale = false
	}
	for len(inc.scratches) < workers {
		inc.scratches = append(inc.scratches, NewScratch())
	}
	if workers <= 1 {
		if len(inc.scratches) == 0 {
			inc.scratches = append(inc.scratches, NewScratch())
		}
		sc := inc.scratches[0]
		for i, src := range srcs {
			idx, _ := inc.frozen.Index(src)
			fresh[i] = shortestWidestDense(inc.frozen, idx, sc, inc.ins)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(sc *Scratch) {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(srcs) {
						return
					}
					idx, _ := inc.frozen.Index(srcs[i])
					fresh[i] = shortestWidestDense(inc.frozen, idx, sc, inc.ins)
				}
			}(inc.scratches[w])
		}
		wg.Wait()
	}
	for i, src := range srcs {
		if old, ok := inc.ap.results[src]; ok {
			inc.unregister(src, old)
		}
		inc.ap.results[src] = fresh[i]
		inc.register(src, fresh[i])
	}
	inc.flushes.Inc()
	inc.recomputed.Add(int64(len(srcs)))
	inc.saved.Add(int64(len(nodes) - len(srcs)))
	return len(srcs)
}

// AllPairs flushes pending recomputation and returns the maintained table.
// The returned value is updated in place by later flushes; callers that need
// a stable snapshot must not mutate the graph while holding on to results.
//
// In lazy mode this materializes every row — it defeats the point of
// laziness and exists for equivalence checks; demand-driven consumers should
// use Table() instead.
func (inc *Incremental) AllPairs() *AllPairs {
	if inc.lazy != nil {
		inc.lazy.Flush()
		return inc.lazy.Materialize(inc.workers)
	}
	inc.Flush()
	return inc.ap
}

// Equal reports whether two all-pairs tables are deeply equal: same sources,
// and per source the same reachable set, metrics and selected paths.
func (ap *AllPairs) Equal(o *AllPairs) bool {
	if len(ap.results) != len(o.results) {
		return false
	}
	for src, r := range ap.results {
		or, ok := o.results[src]
		if !ok || len(r.Dist) != len(or.Dist) {
			return false
		}
		for dst, m := range r.Dist {
			om, ok := or.Dist[dst]
			if !ok || m != om {
				return false
			}
			p, op := r.paths[dst], or.paths[dst]
			if len(p) != len(op) {
				return false
			}
			for i := range p {
				if p[i] != op[i] {
					return false
				}
			}
		}
	}
	return true
}
