package qos

import (
	"reflect"
	"testing"
)

func TestShortestWidestDeterministicTies(t *testing.T) {
	// Two fully symmetric routes: repeated runs must pick the same one.
	g := newTestGraph()
	g.addArc(1, 2, 50, 5)
	g.addArc(2, 4, 50, 5)
	g.addArc(1, 3, 50, 5)
	g.addArc(3, 4, 50, 5)
	first := ShortestWidest(g, 1).PathTo(4)
	for i := 0; i < 10; i++ {
		if got := ShortestWidest(g, 1).PathTo(4); !reflect.DeepEqual(got, first) {
			t.Fatalf("tie-breaking not deterministic: %v vs %v", got, first)
		}
	}
}

func TestShortestLatencySelfAndUnreachable(t *testing.T) {
	g := newTestGraph()
	g.addArc(1, 2, 10, 5)
	g.addNode(3)
	res := ShortestLatency(g, 1)
	if m := res.Metric(1); m != Empty {
		t.Fatalf("self metric = %+v", m)
	}
	if res.Metric(3).Reachable() {
		t.Fatal("unreachable node has a metric")
	}
	if res.PathTo(3) != nil {
		t.Fatal("unreachable node has a path")
	}
}

func TestShortestWidestParallelArcs(t *testing.T) {
	// Two parallel arcs between the same endpoints: the wider must win for
	// shortest-widest, the faster for shortest-latency.
	g := newTestGraph()
	g.addArc(1, 2, 100, 50)
	g.addArc(1, 2, 10, 1)
	sw := ShortestWidest(g, 1)
	if m := sw.Metric(2); m.Bandwidth != 100 {
		t.Fatalf("shortest-widest picked %+v", m)
	}
	sl := ShortestLatency(g, 1)
	if m := sl.Metric(2); m.Latency != 1 || m.Bandwidth != 10 {
		t.Fatalf("shortest-latency picked %+v", m)
	}
}

func TestAllPairsEmptyGraph(t *testing.T) {
	g := newTestGraph()
	ap := ComputeAllPairs(g)
	if len(ap.Sources()) != 0 {
		t.Fatal("empty graph has sources")
	}
	if ap.Metric(1, 2).Reachable() {
		t.Fatal("phantom metric")
	}
}

func TestMetricConcatAssociative(t *testing.T) {
	a := Metric{Bandwidth: 70, Latency: 3}
	b := Metric{Bandwidth: 40, Latency: 5}
	c := Metric{Bandwidth: 90, Latency: 2}
	left := a.Concat(b).Concat(c)
	right := a.Concat(b.Concat(c))
	if left != right {
		t.Fatalf("concat not associative: %+v vs %+v", left, right)
	}
	if left != (Metric{Bandwidth: 40, Latency: 10}) {
		t.Fatalf("concat = %+v", left)
	}
}
