package qos

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchGraph(n int) *testGraph {
	rng := rand.New(rand.NewSource(int64(n)))
	return randomGraph(rng, n, 0.2)
}

func BenchmarkShortestWidest(b *testing.B) {
	for _, n := range []int{20, 50, 100} {
		g := benchGraph(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ShortestWidest(g, i%n)
			}
		})
	}
}

func BenchmarkShortestLatency(b *testing.B) {
	g := benchGraph(100)
	for i := 0; i < b.N; i++ {
		ShortestLatency(g, i%100)
	}
}

func BenchmarkComputeAllPairs(b *testing.B) {
	g := benchGraph(50)
	for i := 0; i < b.N; i++ {
		ComputeAllPairs(g)
	}
}
