package qos

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
)

func benchGraph(n int) *testGraph {
	rng := rand.New(rand.NewSource(int64(n)))
	return randomGraph(rng, n, 0.2)
}

// BenchmarkWidestKernel prices one phase-1 max-bottleneck Dijkstra:
// engine=map is the reference oracle allocating per-call maps, engine=csr is
// the dense kernel on a frozen graph with a reused Scratch (steady-state
// allocs/op must be ~0). These two kernel benchmarks plus BenchmarkAllPairs
// are the set the CI regression gate watches (see `make bench-check`).
func BenchmarkWidestKernel(b *testing.B) {
	g := benchGraph(100)
	src := g.Nodes()[0]
	b.Run("engine=map", func(b *testing.B) {
		b.ReportAllocs()
		var relaxed int64
		for i := 0; i < b.N; i++ {
			widestDijkstra(g, src, &relaxed)
		}
	})
	b.Run("engine=csr", func(b *testing.B) {
		cg := FreezeGraph(g)
		idx, _ := cg.Index(src)
		sc := NewScratch()
		sc.ensure(cg.Len())
		b.ReportAllocs()
		b.ResetTimer()
		var relaxed int64
		for i := 0; i < b.N; i++ {
			sc.denseWidest(cg, idx, &relaxed)
		}
	})
}

// BenchmarkLatencyKernel prices one latency-only Dijkstra (minBW=1), the
// phase-2 / underlay-routing kernel, map oracle vs dense CSR.
func BenchmarkLatencyKernel(b *testing.B) {
	g := benchGraph(100)
	src := g.Nodes()[0]
	b.Run("engine=map", func(b *testing.B) {
		b.ReportAllocs()
		var relaxed int64
		for i := 0; i < b.N; i++ {
			latencyDijkstra(g, src, 1, &relaxed)
		}
	})
	b.Run("engine=csr", func(b *testing.B) {
		cg := FreezeGraph(g)
		idx, _ := cg.Index(src)
		sc := NewScratch()
		sc.ensure(cg.Len())
		b.ReportAllocs()
		b.ResetTimer()
		var relaxed int64
		for i := 0; i < b.N; i++ {
			sc.denseLatency(cg, idx, 1, &relaxed)
		}
	})
}

// BenchmarkShortestWidest prices one full two-phase single-source solve,
// Result assembly included: the map oracle vs the dense engine on a frozen
// graph with a reused Scratch.
func BenchmarkShortestWidest(b *testing.B) {
	for _, n := range []int{20, 50, 100} {
		g := benchGraph(n)
		b.Run(fmt.Sprintf("engine=map/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ShortestWidest(g, i%n)
			}
		})
		b.Run(fmt.Sprintf("engine=csr/n=%d", n), func(b *testing.B) {
			cg := FreezeGraph(g)
			sc := NewScratch()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ShortestWidestCSR(cg, i%n, sc)
			}
		})
	}
}

func BenchmarkShortestLatency(b *testing.B) {
	g := benchGraph(100)
	b.Run("engine=map", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ShortestLatency(g, i%100)
		}
	})
	b.Run("engine=csr", func(b *testing.B) {
		cg := FreezeGraph(g)
		sc := NewScratch()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ShortestLatencyCSR(cg, i%100, sc)
		}
	})
}

// BenchmarkAllPairs prices the full table build that feeds abstract.Build —
// the computation at the bottom of every solve. engine=map is the retained
// sequential oracle (ComputeAllPairsRef, also the machine-speed calibration
// reference of the CI regression gate); engine=csr is the default engine,
// freeze included, at one worker so both legs do the same sequential work.
func BenchmarkAllPairs(b *testing.B) {
	for _, n := range []int{50, 120} {
		g := benchGraph(n)
		b.Run(fmt.Sprintf("engine=map/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ComputeAllPairsRef(g)
			}
		})
		b.Run(fmt.Sprintf("engine=csr/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ComputeAllPairsWorkers(g, 1)
			}
		})
	}
}

// BenchmarkComputeAllPairsWorkers compares the sequential all-pairs
// shortest-widest computation against the parallel fan-out at the host's
// GOMAXPROCS (floored at 4 so a single-core runner still exercises — and
// prices — the pool machinery). On a multi-core host the parallel variant
// should win roughly linearly in cores; both run the CSR engine.
func BenchmarkComputeAllPairsWorkers(b *testing.B) {
	multi := runtime.GOMAXPROCS(0)
	if multi < 2 {
		multi = 4
	}
	for _, n := range []int{50, 120} {
		g := benchGraph(n)
		for _, workers := range []int{1, multi} {
			b.Run(fmt.Sprintf("n=%d/workers=%d", n, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					ComputeAllPairsWorkers(g, workers)
				}
			})
		}
	}
}

// largeTierGraph builds a GenerateLarge-shaped graph without importing the
// scenario package: a ring backbone plus `degree` random extra links per
// node, bandwidths drawn from an evenly spaced palette of `tiers` distinct
// values and latencies in [1, 100] — the same shape (and the same small
// integer latency range) the large-overlay generator produces.
func largeTierGraph(n, degree, tiers int) *testGraph {
	rng := rand.New(rand.NewSource(int64(31*n + tiers)))
	palette := make([]int64, tiers)
	for i := range palette {
		if tiers == 1 {
			palette[i] = 1000
			continue
		}
		palette[i] = int64(100 + i*(9900/(tiers-1)))
	}
	g := newTestGraph()
	for i := 0; i < n; i++ {
		g.addNode(i)
	}
	link := func(u, v int) {
		bw := palette[rng.Intn(tiers)]
		lat := int64(1 + rng.Intn(100))
		g.addArc(u, v, bw, lat)
		g.addArc(v, u, bw, lat)
	}
	for i := 0; i < n; i++ {
		link(i, (i+1)%n)
	}
	for i := 0; i < n; i++ {
		for d := 0; d < degree; d++ {
			if j := rng.Intn(n); j != i {
				link(i, j)
			}
		}
	}
	return g
}

// BenchmarkShortestWidestTiers prices one full shortest-widest row on a
// GenerateLarge-shaped graph as the bandwidth palette widens: each distinct
// width class costs one (early-exited) phase-2 latency run, so the tier count
// is the kernel's per-row multiplier. tiers=1 is the single-class floor,
// tiers=6 the GenerateLarge default the `make bench-kernel` gate watches,
// tiers=12 the stress end.
func BenchmarkShortestWidestTiers(b *testing.B) {
	for _, tiers := range []int{1, 3, 6, 12} {
		g := largeTierGraph(2000, 3, tiers)
		b.Run(fmt.Sprintf("tiers=%d/n=2000", tiers), func(b *testing.B) {
			cg := FreezeGraph(g)
			sc := NewScratch()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ShortestWidestCSR(cg, i%2000, sc)
			}
		})
	}
}

// BenchmarkIncrementalFlush prices the steady-state single-link-churn flush
// the sessions run on: one out-list re-weighted, exact dirty set recomputed
// on the re-frozen CSR with persistent per-worker scratches.
func BenchmarkIncrementalFlush(b *testing.B) {
	g := benchGraph(120)
	u := g.Nodes()[0]
	inc := NewIncremental(g, 1, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inc.OutChanged(u)
		if inc.Flush() == 0 {
			b.Fatal("nothing recomputed")
		}
	}
}
