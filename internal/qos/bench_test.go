package qos

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
)

func benchGraph(n int) *testGraph {
	rng := rand.New(rand.NewSource(int64(n)))
	return randomGraph(rng, n, 0.2)
}

func BenchmarkShortestWidest(b *testing.B) {
	for _, n := range []int{20, 50, 100} {
		g := benchGraph(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ShortestWidest(g, i%n)
			}
		})
	}
}

func BenchmarkShortestLatency(b *testing.B) {
	g := benchGraph(100)
	for i := 0; i < b.N; i++ {
		ShortestLatency(g, i%100)
	}
}

func BenchmarkComputeAllPairs(b *testing.B) {
	g := benchGraph(50)
	for i := 0; i < b.N; i++ {
		ComputeAllPairs(g)
	}
}

// BenchmarkComputeAllPairsWorkers compares the sequential all-pairs
// shortest-widest computation against the parallel fan-out at the host's
// GOMAXPROCS (floored at 4 so a single-core runner still exercises — and
// prices — the pool machinery). On a multi-core host the parallel variant
// should win roughly linearly in cores.
func BenchmarkComputeAllPairsWorkers(b *testing.B) {
	multi := runtime.GOMAXPROCS(0)
	if multi < 2 {
		multi = 4
	}
	for _, n := range []int{50, 120} {
		g := benchGraph(n)
		for _, workers := range []int{1, multi} {
			b.Run(fmt.Sprintf("n=%d/workers=%d", n, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					ComputeAllPairsWorkers(g, workers)
				}
			})
		}
	}
}
