// Package overlay models the service overlay network of the paper: service
// instances (each a node with a unique NID providing a service SID, possibly
// hosted on an underlying network node) connected by directed service links
// weighted with bandwidth and latency.
//
// An overlay can be constructed directly, or derived from an underlying
// network by embedding (Fig 4 of the paper): compatible instances are linked
// with the metric of the minimum-latency (IP-style) route between their
// hosts — see Build for why the route is latency-selected, not widest.
package overlay

import (
	"fmt"
	"sort"

	"sflow/internal/qos"
	"sflow/internal/topology"
)

// Instance is one service instance: a node of the overlay graph.
type Instance struct {
	NID  int // unique overlay node identifier
	SID  int // the service this instance provides
	Host int // hosting node in the underlying network; -1 if not embedded
}

// Link is a directed service link between two compatible instances.
type Link struct {
	From, To  int   // NIDs
	Bandwidth int64 // Kbit/s
	Latency   int64 // microseconds
}

// Overlay is a service overlay graph. It implements qos.Graph over NIDs.
type Overlay struct {
	instances map[int]Instance
	bySID     map[int][]int
	out       map[int][]qos.Arc
	in        map[int][]qos.Arc
	numLinks  int
}

// New returns an empty overlay.
func New() *Overlay {
	return &Overlay{
		instances: make(map[int]Instance),
		bySID:     make(map[int][]int),
		out:       make(map[int][]qos.Arc),
		in:        make(map[int][]qos.Arc),
	}
}

// AddInstance registers a service instance.
func (o *Overlay) AddInstance(nid, sid, host int) error {
	if _, ok := o.instances[nid]; ok {
		return fmt.Errorf("overlay: duplicate NID %d", nid)
	}
	o.instances[nid] = Instance{NID: nid, SID: sid, Host: host}
	o.bySID[sid] = insertSorted(o.bySID[sid], nid)
	return nil
}

// AddLink registers a directed service link from one instance to another.
func (o *Overlay) AddLink(from, to int, bandwidth, latency int64) error {
	if _, ok := o.instances[from]; !ok {
		return fmt.Errorf("overlay: link from unknown NID %d", from)
	}
	if _, ok := o.instances[to]; !ok {
		return fmt.Errorf("overlay: link to unknown NID %d", to)
	}
	switch {
	case from == to:
		return fmt.Errorf("overlay: self-link on NID %d", from)
	case bandwidth <= 0:
		return fmt.Errorf("overlay: link %d->%d has non-positive bandwidth %d", from, to, bandwidth)
	case latency < 0:
		return fmt.Errorf("overlay: link %d->%d has negative latency %d", from, to, latency)
	case o.HasLink(from, to):
		return fmt.Errorf("overlay: duplicate link %d->%d", from, to)
	}
	o.out[from] = append(o.out[from], qos.Arc{To: to, Bandwidth: bandwidth, Latency: latency})
	o.in[to] = append(o.in[to], qos.Arc{To: from, Bandwidth: bandwidth, Latency: latency})
	o.numLinks++
	return nil
}

// GrowLinkBandwidth adds delta to the bandwidth of the directed link
// from -> to (releasing a reservation).
func (o *Overlay) GrowLinkBandwidth(from, to int, delta int64) error {
	if delta < 0 {
		return fmt.Errorf("overlay: negative growth %d on link %d->%d", delta, from, to)
	}
	found := false
	for i, a := range o.out[from] {
		if a.To == to {
			o.out[from][i].Bandwidth += delta
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("overlay: no link %d->%d to grow", from, to)
	}
	for i, a := range o.in[to] {
		if a.To == from {
			o.in[to][i].Bandwidth += delta
		}
	}
	return nil
}

// RemoveInstance deletes a service instance and every service link incident
// to it (modelling a node failure or departure).
func (o *Overlay) RemoveInstance(nid int) error {
	inst, ok := o.instances[nid]
	if !ok {
		return fmt.Errorf("overlay: no instance %d to remove", nid)
	}
	for _, a := range o.out[nid] {
		o.in[a.To] = dropArc(o.in[a.To], nid)
		o.numLinks--
	}
	for _, a := range o.in[nid] {
		o.out[a.To] = dropArc(o.out[a.To], nid)
		o.numLinks--
	}
	delete(o.out, nid)
	delete(o.in, nid)
	delete(o.instances, nid)
	ids := o.bySID[inst.SID]
	for i, v := range ids {
		if v == nid {
			o.bySID[inst.SID] = append(ids[:i], ids[i+1:]...)
			break
		}
	}
	if len(o.bySID[inst.SID]) == 0 {
		delete(o.bySID, inst.SID)
	}
	return nil
}

// dropArc removes every arc pointing at `to` from a slice of arcs.
func dropArc(arcs []qos.Arc, to int) []qos.Arc {
	out := arcs[:0]
	for _, a := range arcs {
		if a.To != to {
			out = append(out, a)
		}
	}
	return out
}

// ReduceLinkBandwidth subtracts delta from the bandwidth of the directed
// link from -> to; when the residual drops to zero or below the link is
// removed. Used by provisioning to reserve capacity for admitted flows.
func (o *Overlay) ReduceLinkBandwidth(from, to int, delta int64) error {
	if delta < 0 {
		return fmt.Errorf("overlay: negative reservation %d on link %d->%d", delta, from, to)
	}
	idx := -1
	for i, a := range o.out[from] {
		if a.To == to {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("overlay: no link %d->%d to reserve on", from, to)
	}
	residual := o.out[from][idx].Bandwidth - delta
	if residual > 0 {
		o.out[from][idx].Bandwidth = residual
		for i, a := range o.in[to] {
			if a.To == from {
				o.in[to][i].Bandwidth = residual
			}
		}
		return nil
	}
	// Saturated: remove the link entirely.
	o.out[from] = append(o.out[from][:idx], o.out[from][idx+1:]...)
	for i, a := range o.in[to] {
		if a.To == from {
			o.in[to] = append(o.in[to][:i], o.in[to][i+1:]...)
			break
		}
	}
	o.numLinks--
	return nil
}

// RemoveLink deletes the directed service link from -> to (modelling a
// link failure, as opposed to ReduceLinkBandwidth's gradual saturation).
func (o *Overlay) RemoveLink(from, to int) error {
	idx := -1
	for i, a := range o.out[from] {
		if a.To == to {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("overlay: no link %d->%d to remove", from, to)
	}
	o.out[from] = append(o.out[from][:idx], o.out[from][idx+1:]...)
	for i, a := range o.in[to] {
		if a.To == from {
			o.in[to] = append(o.in[to][:i], o.in[to][i+1:]...)
			break
		}
	}
	o.numLinks--
	return nil
}

// HasLink reports whether a service link from -> to exists.
func (o *Overlay) HasLink(from, to int) bool {
	_, ok := o.LinkMetric(from, to)
	return ok
}

// LinkMetric returns the metric of the direct link from -> to, if present.
func (o *Overlay) LinkMetric(from, to int) (qos.Metric, bool) {
	for _, a := range o.out[from] {
		if a.To == to {
			return qos.Metric{Bandwidth: a.Bandwidth, Latency: a.Latency}, true
		}
	}
	return qos.Unreachable, false
}

// NumInstances returns the number of service instances.
func (o *Overlay) NumInstances() int { return len(o.instances) }

// NumLinks returns the number of service links.
func (o *Overlay) NumLinks() int { return o.numLinks }

// Instance returns the instance with the given NID.
func (o *Overlay) Instance(nid int) (Instance, bool) {
	inst, ok := o.instances[nid]
	return inst, ok
}

// SIDOf returns the service provided by the given instance (-1 if unknown).
func (o *Overlay) SIDOf(nid int) int {
	if inst, ok := o.instances[nid]; ok {
		return inst.SID
	}
	return -1
}

// Instances returns all instances sorted by NID.
func (o *Overlay) Instances() []Instance {
	out := make([]Instance, 0, len(o.instances))
	for _, nid := range o.Nodes() {
		out = append(out, o.instances[nid])
	}
	return out
}

// InstancesOf returns the NIDs of all instances providing sid, ascending.
func (o *Overlay) InstancesOf(sid int) []int {
	src := o.bySID[sid]
	out := make([]int, len(src))
	copy(out, src)
	return out
}

// SIDs returns all services that have at least one instance, ascending.
func (o *Overlay) SIDs() []int {
	out := make([]int, 0, len(o.bySID))
	for sid := range o.bySID {
		out = append(out, sid)
	}
	sort.Ints(out)
	return out
}

// Nodes implements qos.Graph: all NIDs ascending.
func (o *Overlay) Nodes() []int {
	out := make([]int, 0, len(o.instances))
	for nid := range o.instances {
		out = append(out, nid)
	}
	sort.Ints(out)
	return out
}

// Out implements qos.Graph: the out-links of an instance. The returned slice
// must not be modified.
func (o *Overlay) Out(u int) []qos.Arc { return o.out[u] }

// In returns the in-links of an instance as arcs whose To field holds the
// upstream NID. The returned slice must not be modified.
func (o *Overlay) In(u int) []qos.Arc { return o.in[u] }

// Links returns every service link sorted by (From, To).
func (o *Overlay) Links() []Link {
	out := make([]Link, 0, o.numLinks)
	for _, from := range o.Nodes() {
		arcs := append([]qos.Arc(nil), o.out[from]...)
		sort.Slice(arcs, func(i, j int) bool { return arcs[i].To < arcs[j].To })
		for _, a := range arcs {
			out = append(out, Link{From: from, To: a.To, Bandwidth: a.Bandwidth, Latency: a.Latency})
		}
	}
	return out
}

// LocalView returns the sub-overlay a node can see: all instances within
// `hops` forward hops of nid (following service links downstream), plus the
// links among them. sFlow assumes each node knows a two-hop vicinity.
func (o *Overlay) LocalView(nid, hops int) *Overlay {
	if _, ok := o.instances[nid]; !ok {
		return New()
	}
	dist := map[int]int{nid: 0}
	queue := []int{nid}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if dist[u] == hops {
			continue
		}
		for _, a := range o.out[u] {
			if _, seen := dist[a.To]; !seen {
				dist[a.To] = dist[u] + 1
				queue = append(queue, a.To)
			}
		}
	}
	view := New()
	for n := range dist {
		inst := o.instances[n]
		_ = view.AddInstance(inst.NID, inst.SID, inst.Host)
	}
	for n := range dist {
		for _, a := range o.out[n] {
			if _, ok := dist[a.To]; ok {
				_ = view.AddLink(n, a.To, a.Bandwidth, a.Latency)
			}
		}
	}
	return view
}

// Clone returns a deep copy of the overlay.
func (o *Overlay) Clone() *Overlay {
	c := New()
	for _, inst := range o.Instances() {
		_ = c.AddInstance(inst.NID, inst.SID, inst.Host)
	}
	for _, l := range o.Links() {
		_ = c.AddLink(l.From, l.To, l.Bandwidth, l.Latency)
	}
	return c
}

// Compatibility is the directed relation "output of service a feeds service
// b". Service links only exist between compatible instances.
type Compatibility struct {
	pairs map[[2]int]struct{}
}

// NewCompatibility returns an empty relation.
func NewCompatibility() *Compatibility {
	return &Compatibility{pairs: make(map[[2]int]struct{})}
}

// Allow marks service `from` as able to feed service `to`.
func (c *Compatibility) Allow(from, to int) { c.pairs[[2]int{from, to}] = struct{}{} }

// Compatible reports whether service `from` can feed service `to`.
func (c *Compatibility) Compatible(from, to int) bool {
	_, ok := c.pairs[[2]int{from, to}]
	return ok
}

// Pairs returns the relation as a sorted edge list.
func (c *Compatibility) Pairs() [][2]int {
	out := make([][2]int, 0, len(c.pairs))
	for p := range c.pairs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Placement assigns a service instance to an underlying network node.
type Placement struct {
	NID  int // overlay node identifier to create
	SID  int // service provided
	Host int // hosting node in the underlay
}

// Build derives a service overlay from an underlying network (Fig 4): every
// pair of instances whose services are compatible and whose hosts are
// connected in the underlay is linked. The link carries the metric of the
// route the underlay actually provides — its minimum-latency (IP-style)
// path — so the link's bandwidth is that path's bottleneck, not the widest
// achievable. Discovering wider multi-overlay-hop detours is precisely what
// the QoS-aware federation algorithms on top are for.
func Build(under *topology.Network, placements []Placement, compat *Compatibility) (*Overlay, error) {
	o := New()
	for _, p := range placements {
		if p.Host < 0 || p.Host >= under.Size() {
			return nil, fmt.Errorf("overlay: placement of NID %d on unknown host %d", p.NID, p.Host)
		}
		if err := o.AddInstance(p.NID, p.SID, p.Host); err != nil {
			return nil, err
		}
	}
	// Freeze the underlay once and run the dense latency kernel per distinct
	// host with a shared scratch — byte-identical to qos.ShortestLatency on
	// the underlay itself, without per-host map churn.
	routes := make(map[int]*qos.Result)
	frozen := qos.FreezeGraph(under)
	scratch := qos.NewScratch()
	for _, inst := range o.Instances() {
		if _, ok := routes[inst.Host]; !ok {
			routes[inst.Host] = qos.ShortestLatencyCSR(frozen, inst.Host, scratch)
		}
	}
	for _, a := range o.Instances() {
		for _, b := range o.Instances() {
			if a.NID == b.NID || !compat.Compatible(a.SID, b.SID) {
				continue
			}
			var m qos.Metric
			if a.Host == b.Host {
				// Co-located instances: an in-host link with no
				// network cost, as wide as the host's best link.
				m = bestLocal(under, a.Host)
			} else {
				m = routes[a.Host].Metric(b.Host)
			}
			if !m.Reachable() {
				continue
			}
			if err := o.AddLink(a.NID, b.NID, m.Bandwidth, m.Latency); err != nil {
				return nil, err
			}
		}
	}
	return o, nil
}

// bestLocal returns the metric of a zero-latency in-host hand-off, capped at
// the host's widest attached link so co-location is not infinitely wide.
func bestLocal(under *topology.Network, host int) qos.Metric {
	var best int64
	for _, a := range under.Out(host) {
		if a.Bandwidth > best {
			best = a.Bandwidth
		}
	}
	if best == 0 {
		best = qos.InfBandwidth
	}
	return qos.Metric{Bandwidth: best, Latency: 0}
}

func insertSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}
