package overlay

import (
	"encoding/json"
	"fmt"
)

// overlayJSON is the wire form of an Overlay.
type overlayJSON struct {
	Instances []Instance `json:"instances"`
	Links     []Link     `json:"links"`
}

// MarshalJSON encodes the overlay as sorted instance and link lists.
func (o *Overlay) MarshalJSON() ([]byte, error) {
	return json.Marshal(overlayJSON{Instances: o.Instances(), Links: o.Links()})
}

// UnmarshalJSON decodes an overlay, re-validating every instance and link.
func (o *Overlay) UnmarshalJSON(data []byte) error {
	var w overlayJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("overlay: decode: %w", err)
	}
	dec := New()
	for _, inst := range w.Instances {
		if err := dec.AddInstance(inst.NID, inst.SID, inst.Host); err != nil {
			return err
		}
	}
	for _, l := range w.Links {
		if err := dec.AddLink(l.From, l.To, l.Bandwidth, l.Latency); err != nil {
			return err
		}
	}
	*o = *dec
	return nil
}
