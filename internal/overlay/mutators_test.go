package overlay

import (
	"reflect"
	"testing"

	"sflow/internal/qos"
)

// diamond builds the little fixture the mutator edge-case tables run on:
//
//	1 -> 2 -> 4
//	1 -> 3 -> 4     plus a back-edge 4 -> 1
func diamond(t *testing.T) *Overlay {
	t.Helper()
	ov := New()
	for nid, sid := range map[int]int{1: 10, 2: 20, 3: 20, 4: 30} {
		if err := ov.AddInstance(nid, sid, -1); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range [][2]int{{1, 2}, {1, 3}, {2, 4}, {3, 4}, {4, 1}} {
		if err := ov.AddLink(l[0], l[1], 100, 10); err != nil {
			t.Fatal(err)
		}
	}
	return ov
}

// assertLinkInvariants checks the bookkeeping every mutator must preserve:
// NumLinks equals the number of out-arcs, and the in-arc index is the exact
// mirror of the out-arc index (same endpoints, same metrics).
func assertLinkInvariants(t *testing.T, ov *Overlay) {
	t.Helper()
	type link struct {
		from, to int
		bw, lat  int64
	}
	fromOut := map[link]bool{}
	outArcs := 0
	for _, u := range ov.Nodes() {
		for _, a := range ov.Out(u) {
			fromOut[link{u, a.To, a.Bandwidth, a.Latency}] = true
			outArcs++
		}
	}
	fromIn := map[link]bool{}
	inArcs := 0
	for _, u := range ov.Nodes() {
		for _, a := range ov.In(u) {
			// In() arcs carry the upstream NID in To.
			fromIn[link{a.To, u, a.Bandwidth, a.Latency}] = true
			inArcs++
		}
	}
	if got := ov.NumLinks(); got != outArcs {
		t.Fatalf("NumLinks = %d, out-arc count = %d", got, outArcs)
	}
	if inArcs != outArcs {
		t.Fatalf("in-arc count %d != out-arc count %d", inArcs, outArcs)
	}
	if !reflect.DeepEqual(fromOut, fromIn) {
		t.Fatalf("in/out indexes diverged:\n out: %v\n  in: %v", fromOut, fromIn)
	}
}

func TestMutatorEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(ov *Overlay) error
		wantErr string // pinned error text; empty means the mutation must succeed
		check   func(t *testing.T, ov *Overlay)
	}{
		{
			name:   "reduce to exactly zero removes the link",
			mutate: func(ov *Overlay) error { return ov.ReduceLinkBandwidth(1, 2, 100) },
			check: func(t *testing.T, ov *Overlay) {
				if ov.HasLink(1, 2) {
					t.Fatal("saturated link survived")
				}
				if got := ov.NumLinks(); got != 4 {
					t.Fatalf("NumLinks = %d, want 4", got)
				}
			},
		},
		{
			name:   "reduce below zero removes the link",
			mutate: func(ov *Overlay) error { return ov.ReduceLinkBandwidth(1, 2, 1000) },
			check: func(t *testing.T, ov *Overlay) {
				if ov.HasLink(1, 2) {
					t.Fatal("over-saturated link survived")
				}
			},
		},
		{
			name:   "reduce leaving residual keeps the link at the residual",
			mutate: func(ov *Overlay) error { return ov.ReduceLinkBandwidth(1, 2, 99) },
			check: func(t *testing.T, ov *Overlay) {
				m, ok := ov.LinkMetric(1, 2)
				if !ok || m.Bandwidth != 1 {
					t.Fatalf("residual = %+v, %v; want bandwidth 1", m, ok)
				}
			},
		},
		{
			name:    "reduce with negative delta",
			mutate:  func(ov *Overlay) error { return ov.ReduceLinkBandwidth(1, 2, -5) },
			wantErr: "overlay: negative reservation -5 on link 1->2",
		},
		{
			name:    "reduce on missing link",
			mutate:  func(ov *Overlay) error { return ov.ReduceLinkBandwidth(2, 1, 5) },
			wantErr: "overlay: no link 2->1 to reserve on",
		},
		{
			name:    "grow on missing link",
			mutate:  func(ov *Overlay) error { return ov.GrowLinkBandwidth(2, 1, 5) },
			wantErr: "overlay: no link 2->1 to grow",
		},
		{
			name:    "grow with negative delta",
			mutate:  func(ov *Overlay) error { return ov.GrowLinkBandwidth(1, 2, -1) },
			wantErr: "overlay: negative growth -1 on link 1->2",
		},
		{
			name:   "grow with zero delta is a no-op",
			mutate: func(ov *Overlay) error { return ov.GrowLinkBandwidth(1, 2, 0) },
			check: func(t *testing.T, ov *Overlay) {
				m, _ := ov.LinkMetric(1, 2)
				if m.Bandwidth != 100 {
					t.Fatalf("bandwidth = %d after zero growth", m.Bandwidth)
				}
			},
		},
		{
			name:   "grow updates both arc indexes",
			mutate: func(ov *Overlay) error { return ov.GrowLinkBandwidth(1, 2, 23) },
			check: func(t *testing.T, ov *Overlay) {
				for _, a := range ov.In(2) {
					if a.To == 1 && a.Bandwidth != 123 {
						t.Fatalf("in-arc bandwidth = %d, want 123", a.Bandwidth)
					}
				}
			},
		},
		{
			name:    "remove missing link",
			mutate:  func(ov *Overlay) error { return ov.RemoveLink(2, 1) },
			wantErr: "overlay: no link 2->1 to remove",
		},
		{
			name:    "remove link between unknown nodes",
			mutate:  func(ov *Overlay) error { return ov.RemoveLink(98, 99) },
			wantErr: "overlay: no link 98->99 to remove",
		},
		{
			name:   "remove link leaves the reverse direction",
			mutate: func(ov *Overlay) error { return ov.RemoveLink(1, 2) },
			check: func(t *testing.T, ov *Overlay) {
				if ov.HasLink(1, 2) {
					t.Fatal("removed link still present")
				}
				if !ov.HasLink(4, 1) {
					t.Fatal("unrelated link vanished")
				}
			},
		},
		{
			name:    "remove unknown instance",
			mutate:  func(ov *Overlay) error { return ov.RemoveInstance(99) },
			wantErr: "overlay: no instance 99 to remove",
		},
		{
			name:   "remove instance with both in- and out-links",
			mutate: func(ov *Overlay) error { return ov.RemoveInstance(4) },
			check: func(t *testing.T, ov *Overlay) {
				// 4 had in-arcs from 2 and 3 and an out-arc to 1: three links go.
				if got := ov.NumLinks(); got != 2 {
					t.Fatalf("NumLinks = %d, want 2", got)
				}
				if _, ok := ov.Instance(4); ok {
					t.Fatal("instance 4 still present")
				}
				if len(ov.Out(4)) != 0 || len(ov.In(4)) != 0 {
					t.Fatal("arc indexes still mention the removed node")
				}
			},
		},
		{
			name: "remove last instance of a service drops the service",
			mutate: func(ov *Overlay) error {
				return ov.RemoveInstance(1) // sole instance of SID 10
			},
			check: func(t *testing.T, ov *Overlay) {
				for _, sid := range ov.SIDs() {
					if sid == 10 {
						t.Fatal("empty service 10 still listed")
					}
				}
				if got := ov.InstancesOf(10); len(got) != 0 {
					t.Fatalf("InstancesOf(10) = %v after removal", got)
				}
			},
		},
		{
			name: "remove one of two instances keeps the sibling",
			mutate: func(ov *Overlay) error {
				return ov.RemoveInstance(2) // SID 20 also has instance 3
			},
			check: func(t *testing.T, ov *Overlay) {
				if got := ov.InstancesOf(20); !reflect.DeepEqual(got, []int{3}) {
					t.Fatalf("InstancesOf(20) = %v, want [3]", got)
				}
			},
		},
		{
			name:    "add duplicate instance",
			mutate:  func(ov *Overlay) error { return ov.AddInstance(1, 50, -1) },
			wantErr: "overlay: duplicate NID 1",
		},
		{
			name:    "add self-link",
			mutate:  func(ov *Overlay) error { return ov.AddLink(1, 1, 10, 1) },
			wantErr: "overlay: self-link on NID 1",
		},
		{
			name:    "add duplicate link",
			mutate:  func(ov *Overlay) error { return ov.AddLink(1, 2, 10, 1) },
			wantErr: "overlay: duplicate link 1->2",
		},
		{
			name:    "add link with zero bandwidth",
			mutate:  func(ov *Overlay) error { return ov.AddLink(2, 3, 0, 1) },
			wantErr: "overlay: link 2->3 has non-positive bandwidth 0",
		},
		{
			name:    "add link with negative latency",
			mutate:  func(ov *Overlay) error { return ov.AddLink(2, 3, 10, -1) },
			wantErr: "overlay: link 2->3 has negative latency -1",
		},
		{
			name:    "add link from unknown node",
			mutate:  func(ov *Overlay) error { return ov.AddLink(99, 2, 10, 1) },
			wantErr: "overlay: link from unknown NID 99",
		},
		{
			name:    "add link to unknown node",
			mutate:  func(ov *Overlay) error { return ov.AddLink(2, 99, 10, 1) },
			wantErr: "overlay: link to unknown NID 99",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ov := diamond(t)
			linksBefore, instBefore := ov.NumLinks(), ov.NumInstances()
			err := tc.mutate(ov)
			if tc.wantErr != "" {
				if err == nil || err.Error() != tc.wantErr {
					t.Fatalf("error = %v, want %q", err, tc.wantErr)
				}
				// A rejected mutation must leave the overlay untouched.
				if ov.NumLinks() != linksBefore || ov.NumInstances() != instBefore {
					t.Fatal("rejected mutation changed the overlay")
				}
			} else if err != nil {
				t.Fatal(err)
			}
			if tc.check != nil {
				tc.check(t, ov)
			}
			assertLinkInvariants(t, ov)
		})
	}
}

// TestReduceThenGrowRoundTrip pins the reserve/release cycle provisioning
// relies on: reducing and then growing by the same delta restores the exact
// metric in both arc indexes.
func TestReduceThenGrowRoundTrip(t *testing.T) {
	ov := diamond(t)
	if err := ov.ReduceLinkBandwidth(1, 2, 60); err != nil {
		t.Fatal(err)
	}
	if err := ov.GrowLinkBandwidth(1, 2, 60); err != nil {
		t.Fatal(err)
	}
	want := qos.Metric{Bandwidth: 100, Latency: 10}
	if m, ok := ov.LinkMetric(1, 2); !ok || m != want {
		t.Fatalf("round-tripped metric = %+v, %v; want %+v", m, ok, want)
	}
	assertLinkInvariants(t, ov)
}

// TestSaturatedLinkCanBeReadded asserts a link removed by saturation is truly
// gone: re-adding it succeeds rather than tripping the duplicate check.
func TestSaturatedLinkCanBeReadded(t *testing.T) {
	ov := diamond(t)
	if err := ov.ReduceLinkBandwidth(1, 2, 100); err != nil {
		t.Fatal(err)
	}
	if err := ov.AddLink(1, 2, 7, 3); err != nil {
		t.Fatalf("re-adding a saturated link: %v", err)
	}
	want := qos.Metric{Bandwidth: 7, Latency: 3}
	if m, ok := ov.LinkMetric(1, 2); !ok || m != want {
		t.Fatalf("re-added metric = %+v, %v; want %+v", m, ok, want)
	}
	assertLinkInvariants(t, ov)
}
