package overlay

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"sflow/internal/qos"
	"sflow/internal/topology"
)

// chainOverlay builds a small overlay: service 1 instance 10; service 2
// instances 20, 21; service 3 instance 30.
func chainOverlay(t *testing.T) *Overlay {
	t.Helper()
	o := New()
	for _, in := range []Instance{{10, 1, -1}, {20, 2, -1}, {21, 2, -1}, {30, 3, -1}} {
		if err := o.AddInstance(in.NID, in.SID, in.Host); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range []Link{
		{10, 20, 100, 5}, {10, 21, 80, 2},
		{20, 30, 60, 4}, {21, 30, 90, 3},
	} {
		if err := o.AddLink(l.From, l.To, l.Bandwidth, l.Latency); err != nil {
			t.Fatal(err)
		}
	}
	return o
}

func TestAddInstanceAndLinkValidation(t *testing.T) {
	o := New()
	if err := o.AddInstance(1, 5, 0); err != nil {
		t.Fatal(err)
	}
	if err := o.AddInstance(1, 6, 0); err == nil {
		t.Fatal("duplicate NID accepted")
	}
	if err := o.AddInstance(2, 5, 1); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name     string
		from, to int
		bw, lat  int64
	}{
		{"unknown from", 9, 2, 10, 1},
		{"unknown to", 1, 9, 10, 1},
		{"self link", 1, 1, 10, 1},
		{"zero bandwidth", 1, 2, 0, 1},
		{"negative latency", 1, 2, 10, -1},
	}
	for _, tt := range tests {
		if err := o.AddLink(tt.from, tt.to, tt.bw, tt.lat); err == nil {
			t.Errorf("%s accepted", tt.name)
		}
	}
	if err := o.AddLink(1, 2, 10, 1); err != nil {
		t.Fatal(err)
	}
	if err := o.AddLink(1, 2, 20, 2); err == nil {
		t.Fatal("duplicate link accepted")
	}
	// Opposite direction is a distinct link.
	if err := o.AddLink(2, 1, 20, 2); err != nil {
		t.Fatalf("reverse link rejected: %v", err)
	}
}

func TestAccessors(t *testing.T) {
	o := chainOverlay(t)
	if o.NumInstances() != 4 || o.NumLinks() != 4 {
		t.Fatalf("sizes: %d instances %d links", o.NumInstances(), o.NumLinks())
	}
	if want := []int{20, 21}; !reflect.DeepEqual(o.InstancesOf(2), want) {
		t.Fatalf("InstancesOf(2) = %v", o.InstancesOf(2))
	}
	if o.SIDOf(21) != 2 || o.SIDOf(99) != -1 {
		t.Fatal("SIDOf wrong")
	}
	if want := []int{1, 2, 3}; !reflect.DeepEqual(o.SIDs(), want) {
		t.Fatalf("SIDs = %v", o.SIDs())
	}
	if want := []int{10, 20, 21, 30}; !reflect.DeepEqual(o.Nodes(), want) {
		t.Fatalf("Nodes = %v", o.Nodes())
	}
	if m, ok := o.LinkMetric(10, 20); !ok || m != (qos.Metric{Bandwidth: 100, Latency: 5}) {
		t.Fatalf("LinkMetric(10,20) = %+v, %v", m, ok)
	}
	if _, ok := o.LinkMetric(20, 10); ok {
		t.Fatal("reverse link should not exist")
	}
	if inst, ok := o.Instance(20); !ok || inst.SID != 2 {
		t.Fatalf("Instance(20) = %+v, %v", inst, ok)
	}
	in := o.In(30)
	if len(in) != 2 {
		t.Fatalf("In(30) = %v", in)
	}
	// mutating the returned copy from InstancesOf must not affect the overlay
	ids := o.InstancesOf(2)
	ids[0] = 999
	if got := o.InstancesOf(2); got[0] != 20 {
		t.Fatal("InstancesOf leaked internal slice")
	}
}

func TestRoutingOverOverlay(t *testing.T) {
	o := chainOverlay(t)
	res := qos.ShortestWidest(o, 10)
	// Two routes to 30: via 20 (width 60, lat 9) or via 21 (width 80, lat 5).
	if got := res.Metric(30); got != (qos.Metric{Bandwidth: 80, Latency: 5}) {
		t.Fatalf("Metric(30) = %+v", got)
	}
	if want := []int{10, 21, 30}; !reflect.DeepEqual(res.PathTo(30), want) {
		t.Fatalf("PathTo(30) = %v", res.PathTo(30))
	}
}

func TestLocalView(t *testing.T) {
	o := chainOverlay(t)
	// Add a node beyond two hops: 30 -> 40.
	if err := o.AddInstance(40, 4, -1); err != nil {
		t.Fatal(err)
	}
	if err := o.AddLink(30, 40, 50, 1); err != nil {
		t.Fatal(err)
	}
	v1 := o.LocalView(10, 1)
	if want := []int{10, 20, 21}; !reflect.DeepEqual(v1.Nodes(), want) {
		t.Fatalf("1-hop view = %v", v1.Nodes())
	}
	v2 := o.LocalView(10, 2)
	if want := []int{10, 20, 21, 30}; !reflect.DeepEqual(v2.Nodes(), want) {
		t.Fatalf("2-hop view = %v", v2.Nodes())
	}
	// Links among in-view nodes are preserved with their metrics.
	if m, ok := v2.LinkMetric(21, 30); !ok || m != (qos.Metric{Bandwidth: 90, Latency: 3}) {
		t.Fatalf("view link metric = %+v, %v", m, ok)
	}
	if v2.HasLink(30, 40) {
		t.Fatal("view leaked out-of-view link")
	}
	if o.LocalView(999, 2).NumInstances() != 0 {
		t.Fatal("view of unknown node should be empty")
	}
}

func TestClone(t *testing.T) {
	o := chainOverlay(t)
	c := o.Clone()
	if c.NumInstances() != o.NumInstances() || c.NumLinks() != o.NumLinks() {
		t.Fatal("clone size differs")
	}
	if err := c.AddInstance(99, 9, -1); err != nil {
		t.Fatal(err)
	}
	if o.NumInstances() == c.NumInstances() {
		t.Fatal("clone aliases original")
	}
}

func TestCompatibility(t *testing.T) {
	c := NewCompatibility()
	c.Allow(1, 2)
	c.Allow(2, 3)
	if !c.Compatible(1, 2) || c.Compatible(2, 1) || c.Compatible(1, 3) {
		t.Fatal("compatibility relation wrong")
	}
	if want := [][2]int{{1, 2}, {2, 3}}; !reflect.DeepEqual(c.Pairs(), want) {
		t.Fatalf("Pairs = %v", c.Pairs())
	}
}

func TestBuildFromUnderlay(t *testing.T) {
	// Underlay: 0 -1- 1 -2- 2 in a line, plus 0-2 direct narrow link.
	under := topology.New(3)
	mustLink(t, under, 0, 1, 100, 10)
	mustLink(t, under, 1, 2, 100, 10)
	mustLink(t, under, 0, 2, 20, 1)
	compat := NewCompatibility()
	compat.Allow(1, 2)
	placements := []Placement{
		{NID: 10, SID: 1, Host: 0},
		{NID: 20, SID: 2, Host: 2},
		{NID: 21, SID: 2, Host: 1},
	}
	o, err := Build(under, placements, compat)
	if err != nil {
		t.Fatal(err)
	}
	// 10 -> 20: the underlay routes by latency, so the direct narrow
	// 0-2 link wins (width 20, lat 1) even though a wider route exists —
	// the federation algorithms above are what discover wide detours.
	if m, ok := o.LinkMetric(10, 20); !ok || m != (qos.Metric{Bandwidth: 20, Latency: 1}) {
		t.Fatalf("10->20 metric = %+v, %v", m, ok)
	}
	if m, ok := o.LinkMetric(10, 21); !ok || m != (qos.Metric{Bandwidth: 100, Latency: 10}) {
		t.Fatalf("10->21 metric = %+v, %v", m, ok)
	}
	// No link between incompatible services (2 cannot feed 1), and none
	// between instances of the same service.
	if o.HasLink(20, 10) || o.HasLink(20, 21) || o.HasLink(21, 20) {
		t.Fatal("incompatible link created")
	}
}

func TestBuildColocated(t *testing.T) {
	under := topology.New(2)
	mustLink(t, under, 0, 1, 55, 10)
	compat := NewCompatibility()
	compat.Allow(1, 2)
	o, err := Build(under, []Placement{
		{NID: 1, SID: 1, Host: 0},
		{NID: 2, SID: 2, Host: 0},
	}, compat)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := o.LinkMetric(1, 2)
	if !ok {
		t.Fatal("co-located link missing")
	}
	if m.Latency != 0 {
		t.Fatalf("co-located latency = %d, want 0", m.Latency)
	}
	if m.Bandwidth != 55 {
		t.Fatalf("co-located bandwidth = %d, want host cap 55", m.Bandwidth)
	}
}

func TestBuildRejectsBadPlacement(t *testing.T) {
	under := topology.New(2)
	mustLink(t, under, 0, 1, 10, 1)
	compat := NewCompatibility()
	if _, err := Build(under, []Placement{{NID: 1, SID: 1, Host: 5}}, compat); err == nil {
		t.Fatal("out-of-range host accepted")
	}
	if _, err := Build(under, []Placement{
		{NID: 1, SID: 1, Host: 0}, {NID: 1, SID: 2, Host: 1},
	}, compat); err == nil {
		t.Fatal("duplicate NID accepted")
	}
}

func TestBuildSkipsUnreachableHosts(t *testing.T) {
	under := topology.New(4)
	mustLink(t, under, 0, 1, 10, 1)
	mustLink(t, under, 2, 3, 10, 1) // separate component
	compat := NewCompatibility()
	compat.Allow(1, 2)
	o, err := Build(under, []Placement{
		{NID: 1, SID: 1, Host: 0},
		{NID: 2, SID: 2, Host: 3},
	}, compat)
	if err != nil {
		t.Fatal(err)
	}
	if o.NumLinks() != 0 {
		t.Fatal("link across disconnected underlay components")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	o := chainOverlay(t)
	data, err := json.Marshal(o)
	if err != nil {
		t.Fatal(err)
	}
	var back Overlay
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(o.Instances(), back.Instances()) {
		t.Fatal("instances differ after round trip")
	}
	if !reflect.DeepEqual(o.Links(), back.Links()) {
		t.Fatal("links differ after round trip")
	}
}

func TestJSONRejectsInvalid(t *testing.T) {
	var o Overlay
	bad := `{"instances":[{"NID":1,"SID":1,"Host":0}],"links":[{"From":1,"To":2,"Bandwidth":5,"Latency":1}]}`
	if err := json.Unmarshal([]byte(bad), &o); err == nil {
		t.Fatal("link to unknown instance accepted")
	}
}

func TestLocalViewRandomisedContainment(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	under, err := topology.GenerateUniform(rng, topology.Config{Nodes: 15, ExtraLinks: 15})
	if err != nil {
		t.Fatal(err)
	}
	compat := NewCompatibility()
	for a := 1; a <= 4; a++ {
		for b := a + 1; b <= 5; b++ {
			compat.Allow(a, b)
		}
	}
	var placements []Placement
	for i := 0; i < 10; i++ {
		placements = append(placements, Placement{NID: i, SID: 1 + i%5, Host: rng.Intn(15)})
	}
	o, err := Build(under, placements, compat)
	if err != nil {
		t.Fatal(err)
	}
	for _, nid := range o.Nodes() {
		small := o.LocalView(nid, 1)
		big := o.LocalView(nid, 2)
		for _, n := range small.Nodes() {
			if _, ok := big.Instance(n); !ok {
				t.Fatalf("1-hop view of %d not contained in 2-hop view", nid)
			}
		}
		for _, l := range big.Links() {
			if m, ok := o.LinkMetric(l.From, l.To); !ok ||
				m != (qos.Metric{Bandwidth: l.Bandwidth, Latency: l.Latency}) {
				t.Fatalf("view link %d->%d not in overlay or metric differs", l.From, l.To)
			}
		}
	}
}

func mustLink(t *testing.T, nw *topology.Network, a, b int, bw, lat int64) {
	t.Helper()
	if err := nw.AddLink(a, b, bw, lat); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveInstance(t *testing.T) {
	o := chainOverlay(t)
	if err := o.RemoveInstance(21); err != nil {
		t.Fatal(err)
	}
	if _, ok := o.Instance(21); ok {
		t.Fatal("instance still present")
	}
	if o.HasLink(10, 21) || o.HasLink(21, 30) {
		t.Fatal("incident links survived")
	}
	if o.NumLinks() != 2 {
		t.Fatalf("NumLinks = %d, want 2", o.NumLinks())
	}
	if got := o.InstancesOf(2); len(got) != 1 || got[0] != 20 {
		t.Fatalf("InstancesOf(2) = %v", got)
	}
	// In() of the downstream endpoint no longer mentions 21.
	for _, a := range o.In(30) {
		if a.To == 21 {
			t.Fatal("stale in-arc")
		}
	}
	if err := o.RemoveInstance(21); err == nil {
		t.Fatal("double removal accepted")
	}
	// Removing the last instance of a service clears the SID index.
	if err := o.RemoveInstance(20); err != nil {
		t.Fatal(err)
	}
	if got := o.InstancesOf(2); len(got) != 0 {
		t.Fatalf("InstancesOf(2) after clearing = %v", got)
	}
}

func TestGrowLinkBandwidth(t *testing.T) {
	o := chainOverlay(t)
	if err := o.GrowLinkBandwidth(10, 20, 25); err != nil {
		t.Fatal(err)
	}
	if m, _ := o.LinkMetric(10, 20); m.Bandwidth != 125 {
		t.Fatalf("bandwidth = %d, want 125", m.Bandwidth)
	}
	// Visible through In() too.
	for _, a := range o.In(20) {
		if a.To == 10 && a.Bandwidth != 125 {
			t.Fatalf("In bandwidth = %d", a.Bandwidth)
		}
	}
	if err := o.GrowLinkBandwidth(10, 20, -1); err == nil {
		t.Fatal("negative growth accepted")
	}
	if err := o.GrowLinkBandwidth(10, 99, 1); err == nil {
		t.Fatal("missing link accepted")
	}
}

func TestLocalViewZeroHops(t *testing.T) {
	o := chainOverlay(t)
	v := o.LocalView(10, 0)
	if v.NumInstances() != 1 || v.NumLinks() != 0 {
		t.Fatalf("0-hop view: %d instances %d links", v.NumInstances(), v.NumLinks())
	}
}

func TestDegreeAccessor(t *testing.T) {
	nw := topology.New(3)
	mustLink(t, nw, 0, 1, 5, 1)
	mustLink(t, nw, 0, 2, 5, 1)
	if nw.Degree(0) != 2 || nw.Degree(1) != 1 {
		t.Fatal("degrees wrong")
	}
}
