// Package exact computes the globally optimal service flow graph by
// exhaustive enumeration of instance assignments with branch-and-bound
// pruning on the bottleneck bandwidth. The paper uses exactly this
// global-optimal construction as the benchmark for the correctness
// coefficient (Sec 5); Theorem 1 shows no polynomial algorithm is expected,
// so this solver is intended for the evaluation's small networks.
package exact

import (
	"errors"
	"fmt"

	"sflow/internal/abstract"
	"sflow/internal/flow"
	"sflow/internal/qos"
)

// ErrInfeasible is returned when no assignment connects the requirement.
var ErrInfeasible = errors.New("exact: no feasible service flow graph")

// ErrBudget is returned when the search exceeds the configured budget.
var ErrBudget = errors.New("exact: search budget exhausted")

// Options tunes the search.
type Options struct {
	// Budget bounds the number of explored (partial) assignments;
	// 0 means unlimited.
	Budget int
}

// Result is the outcome of the exhaustive search.
type Result struct {
	// Flow is the globally optimal service flow graph.
	Flow *flow.Graph
	// Metric is its end-to-end quality.
	Metric qos.Metric
	// Explored counts the partial assignments visited (a proxy for the
	// paper's "computation time" of the global optimal algorithm).
	Explored int
}

// Solve finds the optimal flow graph with the source service pinned to the
// given instance. Pass src < 0 to let the solver also choose the source
// instance.
func Solve(ag *abstract.Graph, src int, opts Options) (*Result, error) {
	req := ag.Requirement()
	order := req.TopoOrder()
	if len(order) == 0 {
		return nil, fmt.Errorf("exact: requirement has no topological order")
	}
	if src >= 0 {
		if got := ag.Overlay().SIDOf(src); got != req.Source() {
			return nil, fmt.Errorf("exact: source instance %d provides service %d, requirement starts at %d",
				src, got, req.Source())
		}
	}

	var (
		bestAssign map[int]int
		bestMetric = qos.Unreachable
		explored   = 0
		assign     = make(map[int]int, len(order))
		overBudget = false
	)

	// candidates returns the instances to try for the service at position
	// i of the topological order.
	candidates := func(i int) []int {
		sid := order[i]
		if i == 0 && src >= 0 {
			return []int{src}
		}
		return ag.Slots(sid)
	}

	var walk func(i int, width int64)
	walk = func(i int, width int64) {
		if overBudget {
			return
		}
		explored++
		if opts.Budget > 0 && explored > opts.Budget {
			overBudget = true
			return
		}
		if i == len(order) {
			m := ag.AssignmentMetric(assign)
			if m.Reachable() && (bestAssign == nil || m.Better(bestMetric)) {
				bestMetric = m
				bestAssign = make(map[int]int, len(assign))
				for k, v := range assign {
					bestAssign[k] = v
				}
			}
			return
		}
		sid := order[i]
		for _, nid := range candidates(i) {
			// Incremental bottleneck over edges from already-assigned
			// upstream services; prune when it falls strictly below
			// the best width found so far.
			w := width
			feasible := true
			for _, up := range req.Upstream(sid) {
				upNID, ok := assign[up]
				if !ok {
					continue // upstream later in topo order cannot happen
				}
				m := ag.EdgeMetric(upNID, nid)
				if !m.Reachable() {
					feasible = false
					break
				}
				if m.Bandwidth < w {
					w = m.Bandwidth
				}
			}
			if !feasible {
				continue
			}
			if bestAssign != nil && w < bestMetric.Bandwidth {
				continue // cannot beat the incumbent width
			}
			assign[sid] = nid
			walk(i+1, w)
			delete(assign, sid)
		}
	}
	walk(0, qos.InfBandwidth)

	if overBudget {
		return nil, fmt.Errorf("%w (explored %d)", ErrBudget, explored)
	}
	if bestAssign == nil {
		return nil, ErrInfeasible
	}
	fg, err := ag.Realize(bestAssign)
	if err != nil {
		return nil, fmt.Errorf("exact: realize optimal assignment: %w", err)
	}
	return &Result{Flow: fg, Metric: bestMetric, Explored: explored}, nil
}
