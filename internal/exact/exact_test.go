package exact

import (
	"errors"
	"testing"

	"sflow/internal/abstract"
	"sflow/internal/overlay"
	"sflow/internal/qos"
	"sflow/internal/require"
	"sflow/internal/scenario"
)

// naiveBest enumerates every complete assignment with no pruning.
func naiveBest(ag *abstract.Graph, src int) (map[int]int, qos.Metric) {
	req := ag.Requirement()
	order := req.TopoOrder()
	assign := make(map[int]int)
	var bestAssign map[int]int
	best := qos.Unreachable
	var walk func(i int)
	walk = func(i int) {
		if i == len(order) {
			m := ag.AssignmentMetric(assign)
			if m.Reachable() && (bestAssign == nil || m.Better(best)) {
				best = m
				bestAssign = make(map[int]int, len(assign))
				for k, v := range assign {
					bestAssign[k] = v
				}
			}
			return
		}
		sid := order[i]
		cands := ag.Slots(sid)
		if i == 0 && src >= 0 {
			cands = []int{src}
		}
		for _, nid := range cands {
			assign[sid] = nid
			walk(i + 1)
		}
		delete(assign, sid)
	}
	walk(0)
	return bestAssign, best
}

func buildScenario(t *testing.T, seed int64, kind scenario.Kind) (*abstract.Graph, *scenario.Scenario) {
	t.Helper()
	s, err := scenario.Generate(scenario.Config{
		Seed: seed, NetworkSize: 12, Services: 5,
		InstancesPerService: 2, Kind: kind,
	})
	if err != nil {
		t.Fatal(err)
	}
	ag, err := abstract.Build(s.Overlay, s.Req)
	if err != nil {
		t.Fatal(err)
	}
	return ag, s
}

func TestSolveMatchesNaiveEnumeration(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		for _, kind := range []scenario.Kind{scenario.KindPath, scenario.KindGeneral} {
			ag, s := buildScenario(t, seed, kind)
			_, want := naiveBest(ag, s.SourceNID)
			res, err := Solve(ag, s.SourceNID, Options{})
			if err != nil {
				if errors.Is(err, ErrInfeasible) && !want.Reachable() {
					continue
				}
				t.Fatalf("seed %d %v: %v (naive found %+v)", seed, kind, err, want)
			}
			if res.Metric != want {
				t.Fatalf("seed %d %v: exact %+v, naive %+v", seed, kind, res.Metric, want)
			}
			if err := res.Flow.Validate(s.Req, s.Overlay); err != nil {
				t.Fatalf("seed %d %v: invalid optimal flow: %v", seed, kind, err)
			}
			if got := res.Flow.Quality(s.Req); got != res.Metric {
				t.Fatalf("seed %d %v: quality %+v != metric %+v", seed, kind, got, res.Metric)
			}
		}
	}
}

func TestSolveFreeSource(t *testing.T) {
	// With a free source the solver may only do better than with a pinned
	// one.
	ag, s := buildScenario(t, 3, scenario.KindGeneral)
	pinned, err := Solve(ag, s.SourceNID, Options{})
	if err != nil {
		t.Fatal(err)
	}
	free, err := Solve(ag, -1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pinned.Metric.Better(free.Metric) {
		t.Fatalf("free source %+v worse than pinned %+v", free.Metric, pinned.Metric)
	}
}

func TestSolveBudget(t *testing.T) {
	ag, s := buildScenario(t, 1, scenario.KindGeneral)
	if _, err := Solve(ag, s.SourceNID, Options{Budget: 2}); !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	// A generous budget succeeds.
	if _, err := Solve(ag, s.SourceNID, Options{Budget: 1_000_000}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveRejectsWrongSource(t *testing.T) {
	ag, s := buildScenario(t, 2, scenario.KindPath)
	other := -1
	for _, inst := range s.Overlay.Instances() {
		if inst.SID != s.Req.Source() {
			other = inst.NID
			break
		}
	}
	if _, err := Solve(ag, other, Options{}); err == nil {
		t.Fatal("wrong-service source accepted")
	}
}

func TestSolveInfeasible(t *testing.T) {
	o := overlay.New()
	for _, in := range [][2]int{{1, 1}, {2, 2}, {3, 3}} {
		if err := o.AddInstance(in[0], in[1], -1); err != nil {
			t.Fatal(err)
		}
	}
	if err := o.AddLink(1, 2, 5, 1); err != nil {
		t.Fatal(err)
	}
	req, err := require.NewPath(1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	ag, err := abstract.Build(o, req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(ag, 1, Options{}); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestPruningDoesNotChangeResultButExploresLess(t *testing.T) {
	ag, s := buildScenario(t, 7, scenario.KindGeneral)
	res, err := Solve(ag, s.SourceNID, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The naive search visits every complete assignment; the pruned search
	// must visit no more partial assignments than the full tree size.
	total := 1
	for _, sid := range s.Req.Services() {
		if sid == s.Req.Source() {
			continue
		}
		total *= len(ag.Slots(sid))
	}
	if res.Explored <= 0 {
		t.Fatal("explored count not reported")
	}
	// Sanity bound: the number of internal nodes of the assignment tree
	// is at most services * total + 1.
	if res.Explored > s.Req.NumServices()*total+total+1 {
		t.Fatalf("explored %d exceeds tree bound", res.Explored)
	}
}

func TestSolveDeterministicAndBudgetBoundary(t *testing.T) {
	ag, s := buildScenario(t, 9, scenario.KindGeneral)
	a, err := Solve(ag, s.SourceNID, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(ag, s.SourceNID, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Explored != b.Explored || a.Metric != b.Metric {
		t.Fatalf("exact solver not deterministic: %+v vs %+v", a, b)
	}
	// A budget of exactly Explored succeeds; Explored-1 does not.
	if _, err := Solve(ag, s.SourceNID, Options{Budget: a.Explored}); err != nil {
		t.Fatalf("budget == explored rejected: %v", err)
	}
	if _, err := Solve(ag, s.SourceNID, Options{Budget: a.Explored - 1}); !errors.Is(err, ErrBudget) {
		t.Fatalf("budget boundary wrong: %v", err)
	}
}
