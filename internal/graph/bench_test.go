package graph

import (
	"math/rand"
	"testing"
)

func BenchmarkTopoSort(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomDAG(rng, 200, 0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.TopoSort(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReachable(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g := randomDAG(rng, 200, 0.05)
	nodes := g.Nodes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Reachable(nodes[i%len(nodes)])
	}
}

func BenchmarkLongestPath(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := randomDAG(rng, 200, 0.05)
	src := g.Nodes()[0]
	w := func(u, v int) int64 { return int64(u + v) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.LongestPathFrom(src, w); err != nil {
			b.Fatal(err)
		}
	}
}
