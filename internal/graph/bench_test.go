package graph

import (
	"math/rand"
	"testing"
)

// All benchmarks report allocations: the digraph substrate is map-backed
// (nested hash maps per node), and these numbers keep its per-operation
// allocation cost visible alongside the flat CSR kernels of internal/qos —
// the comparison that motivated the hot-path engine.

func BenchmarkTopoSort(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomDAG(rng, 200, 0.05)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.TopoSort(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReachable(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g := randomDAG(rng, 200, 0.05)
	nodes := g.Nodes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Reachable(nodes[i%len(nodes)])
	}
}

// BenchmarkReachableAll sweeps reachability from every node — the all-pairs
// shape of the map-based substrate, for contrast with BenchmarkAllPairs in
// internal/qos.
func BenchmarkReachableAll(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	g := randomDAG(rng, 200, 0.05)
	nodes := g.Nodes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, n := range nodes {
			g.Reachable(n)
		}
	}
}

func BenchmarkLongestPath(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := randomDAG(rng, 200, 0.05)
	src := g.Nodes()[0]
	w := func(u, v int) int64 { return int64(u + v) }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.LongestPathFrom(src, w); err != nil {
			b.Fatal(err)
		}
	}
}
