// Package graph provides directed-graph primitives shared by every other
// subsystem: adjacency bookkeeping, topological ordering, cycle detection,
// reachability and induced subgraphs.
//
// Node identifiers are plain ints so that overlay node identifiers (NIDs) and
// requirement service identifiers (SIDs) can be used directly. All accessors
// return nodes in sorted order so that algorithms built on top of the package
// are deterministic.
package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Digraph is a simple directed graph (no parallel edges, no self-loops by
// construction unless explicitly added). The zero value is not usable; use New.
type Digraph struct {
	succ map[int]map[int]struct{}
	pred map[int]map[int]struct{}
}

// New returns an empty directed graph.
func New() *Digraph {
	return &Digraph{
		succ: make(map[int]map[int]struct{}),
		pred: make(map[int]map[int]struct{}),
	}
}

// AddNode inserts node n if not already present.
func (g *Digraph) AddNode(n int) {
	if _, ok := g.succ[n]; ok {
		return
	}
	g.succ[n] = make(map[int]struct{})
	g.pred[n] = make(map[int]struct{})
}

// HasNode reports whether n is a node of g.
func (g *Digraph) HasNode(n int) bool {
	_, ok := g.succ[n]
	return ok
}

// AddEdge inserts the edge u -> v, adding the endpoints as needed.
func (g *Digraph) AddEdge(u, v int) {
	g.AddNode(u)
	g.AddNode(v)
	g.succ[u][v] = struct{}{}
	g.pred[v][u] = struct{}{}
}

// HasEdge reports whether the edge u -> v exists.
func (g *Digraph) HasEdge(u, v int) bool {
	s, ok := g.succ[u]
	if !ok {
		return false
	}
	_, ok = s[v]
	return ok
}

// RemoveEdge deletes the edge u -> v if present. The endpoints remain.
func (g *Digraph) RemoveEdge(u, v int) {
	if s, ok := g.succ[u]; ok {
		delete(s, v)
	}
	if p, ok := g.pred[v]; ok {
		delete(p, u)
	}
}

// RemoveNode deletes node n and all incident edges.
func (g *Digraph) RemoveNode(n int) {
	for v := range g.succ[n] {
		delete(g.pred[v], n)
	}
	for u := range g.pred[n] {
		delete(g.succ[u], n)
	}
	delete(g.succ, n)
	delete(g.pred, n)
}

// NumNodes returns the number of nodes.
func (g *Digraph) NumNodes() int { return len(g.succ) }

// NumEdges returns the number of edges.
func (g *Digraph) NumEdges() int {
	n := 0
	for _, s := range g.succ {
		n += len(s)
	}
	return n
}

// Nodes returns all nodes in ascending order.
func (g *Digraph) Nodes() []int {
	out := make([]int, 0, len(g.succ))
	for n := range g.succ {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// Succ returns the successors of n in ascending order.
func (g *Digraph) Succ(n int) []int { return sortedKeys(g.succ[n]) }

// Pred returns the predecessors of n in ascending order.
func (g *Digraph) Pred(n int) []int { return sortedKeys(g.pred[n]) }

// OutDegree returns the out-degree of n.
func (g *Digraph) OutDegree(n int) int { return len(g.succ[n]) }

// InDegree returns the in-degree of n.
func (g *Digraph) InDegree(n int) int { return len(g.pred[n]) }

// Sources returns all nodes with in-degree zero, ascending.
func (g *Digraph) Sources() []int {
	var out []int
	for n, p := range g.pred {
		if len(p) == 0 {
			out = append(out, n)
		}
	}
	sort.Ints(out)
	return out
}

// Sinks returns all nodes with out-degree zero, ascending.
func (g *Digraph) Sinks() []int {
	var out []int
	for n, s := range g.succ {
		if len(s) == 0 {
			out = append(out, n)
		}
	}
	sort.Ints(out)
	return out
}

// Edges returns all edges as [2]int{u, v} pairs in lexicographic order.
func (g *Digraph) Edges() [][2]int {
	out := make([][2]int, 0, g.NumEdges())
	for _, u := range g.Nodes() {
		for _, v := range g.Succ(u) {
			out = append(out, [2]int{u, v})
		}
	}
	return out
}

// Clone returns a deep copy of g.
func (g *Digraph) Clone() *Digraph {
	c := New()
	for n := range g.succ {
		c.AddNode(n)
	}
	for u, s := range g.succ {
		for v := range s {
			c.AddEdge(u, v)
		}
	}
	return c
}

// Reverse returns a copy of g with every edge direction flipped.
func (g *Digraph) Reverse() *Digraph {
	r := New()
	for n := range g.succ {
		r.AddNode(n)
	}
	for u, s := range g.succ {
		for v := range s {
			r.AddEdge(v, u)
		}
	}
	return r
}

// InducedSubgraph returns the subgraph of g induced by the given node set.
func (g *Digraph) InducedSubgraph(nodes []int) *Digraph {
	keep := make(map[int]struct{}, len(nodes))
	for _, n := range nodes {
		if g.HasNode(n) {
			keep[n] = struct{}{}
		}
	}
	sub := New()
	for n := range keep {
		sub.AddNode(n)
	}
	for u := range keep {
		for v := range g.succ[u] {
			if _, ok := keep[v]; ok {
				sub.AddEdge(u, v)
			}
		}
	}
	return sub
}

// TopoSort returns a topological order of g, preferring smaller node
// identifiers first (deterministic Kahn's algorithm). It returns an error if
// the graph contains a cycle.
func (g *Digraph) TopoSort() ([]int, error) {
	indeg := make(map[int]int, len(g.succ))
	for n, p := range g.pred {
		indeg[n] = len(p)
	}
	var ready intHeap
	for n, d := range indeg {
		if d == 0 {
			ready.push(n)
		}
	}
	order := make([]int, 0, len(g.succ))
	for ready.len() > 0 {
		n := ready.pop()
		order = append(order, n)
		for _, v := range g.Succ(n) {
			indeg[v]--
			if indeg[v] == 0 {
				ready.push(v)
			}
		}
	}
	if len(order) != len(g.succ) {
		return nil, fmt.Errorf("graph: cycle detected (%d of %d nodes ordered)", len(order), len(g.succ))
	}
	return order, nil
}

// IsDAG reports whether g is acyclic.
func (g *Digraph) IsDAG() bool {
	_, err := g.TopoSort()
	return err == nil
}

// Reachable returns the set of nodes reachable from src (including src),
// ascending.
func (g *Digraph) Reachable(src int) []int {
	if !g.HasNode(src) {
		return nil
	}
	seen := map[int]struct{}{src: {}}
	stack := []int{src}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for v := range g.succ[u] {
			if _, ok := seen[v]; !ok {
				seen[v] = struct{}{}
				stack = append(stack, v)
			}
		}
	}
	return sortedKeys(seen)
}

// CanReach reports whether there is a directed path from src to dst.
func (g *Digraph) CanReach(src, dst int) bool {
	if !g.HasNode(src) || !g.HasNode(dst) {
		return false
	}
	if src == dst {
		return true
	}
	seen := map[int]struct{}{src: {}}
	stack := []int{src}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for v := range g.succ[u] {
			if v == dst {
				return true
			}
			if _, ok := seen[v]; !ok {
				seen[v] = struct{}{}
				stack = append(stack, v)
			}
		}
	}
	return false
}

// WithinHops returns all nodes reachable from src by following at most h
// edges forward (including src), ascending.
func (g *Digraph) WithinHops(src, h int) []int {
	if !g.HasNode(src) {
		return nil
	}
	dist := map[int]int{src: 0}
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if dist[u] == h {
			continue
		}
		for v := range g.succ[u] {
			if _, ok := dist[v]; !ok {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return sortedKeys2(dist)
}

// Equal reports whether g and o have identical node and edge sets.
func (g *Digraph) Equal(o *Digraph) bool {
	if g.NumNodes() != o.NumNodes() || g.NumEdges() != o.NumEdges() {
		return false
	}
	for n := range g.succ {
		if !o.HasNode(n) {
			return false
		}
		for v := range g.succ[n] {
			if !o.HasEdge(n, v) {
				return false
			}
		}
	}
	return true
}

// String renders the graph as "n: succ..." lines, for debugging.
func (g *Digraph) String() string {
	var b strings.Builder
	for _, n := range g.Nodes() {
		fmt.Fprintf(&b, "%d:", n)
		for _, v := range g.Succ(n) {
			fmt.Fprintf(&b, " %d", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func sortedKeys(m map[int]struct{}) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func sortedKeys2(m map[int]int) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// intHeap is a tiny min-heap of ints used by TopoSort for deterministic
// tie-breaking.
type intHeap struct{ a []int }

func (h *intHeap) len() int { return len(h.a) }

func (h *intHeap) push(x int) {
	h.a = append(h.a, x)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.a[p] <= h.a[i] {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *intHeap) pop() int {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.a) && h.a[l] < h.a[small] {
			small = l
		}
		if r < len(h.a) && h.a[r] < h.a[small] {
			small = r
		}
		if small == i {
			break
		}
		h.a[i], h.a[small] = h.a[small], h.a[i]
		i = small
	}
	return top
}
