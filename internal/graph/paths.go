package graph

import "fmt"

// LongestPathFrom computes, on a DAG, the maximum total weight of any directed
// path from src to each reachable node, where weight gives the (non-negative)
// weight of each edge. Unreachable nodes are absent from the result. It
// returns an error if g has a cycle.
func (g *Digraph) LongestPathFrom(src int, weight func(u, v int) int64) (map[int]int64, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	dist := map[int]int64{src: 0}
	for _, u := range order {
		du, ok := dist[u]
		if !ok {
			continue
		}
		for _, v := range g.Succ(u) {
			w := du + weight(u, v)
			if cur, ok := dist[v]; !ok || w > cur {
				dist[v] = w
			}
		}
	}
	return dist, nil
}

// AllPaths enumerates every simple directed path from src to dst, up to limit
// paths (limit <= 0 means no limit). Intended for small graphs (tests and the
// exhaustive solver); the number of paths can be exponential.
func (g *Digraph) AllPaths(src, dst, limit int) [][]int {
	if !g.HasNode(src) || !g.HasNode(dst) {
		return nil
	}
	var (
		out  [][]int
		path []int
		walk func(u int) bool
	)
	onPath := make(map[int]bool)
	walk = func(u int) bool {
		path = append(path, u)
		onPath[u] = true
		defer func() {
			path = path[:len(path)-1]
			onPath[u] = false
		}()
		if u == dst {
			cp := make([]int, len(path))
			copy(cp, path)
			out = append(out, cp)
			return limit > 0 && len(out) >= limit
		}
		for _, v := range g.Succ(u) {
			if onPath[v] {
				continue
			}
			if walk(v) {
				return true
			}
		}
		return false
	}
	walk(src)
	return out
}

// ChainFrom follows the unique successor chain starting at n: it returns the
// maximal sequence n, s1, s2, ... such that every node before the last has
// exactly one successor and every node after the first has exactly one
// predecessor. It is the building block of the path-reduction heuristic.
func (g *Digraph) ChainFrom(n int) []int {
	if !g.HasNode(n) {
		return nil
	}
	chain := []int{n}
	cur := n
	for g.OutDegree(cur) == 1 {
		next := g.Succ(cur)[0]
		if g.InDegree(next) != 1 {
			break
		}
		if next == n { // cycle guard
			break
		}
		chain = append(chain, next)
		cur = next
	}
	return chain
}

// ValidatePath reports whether nodes form a directed path in g.
func (g *Digraph) ValidatePath(nodes []int) error {
	if len(nodes) == 0 {
		return fmt.Errorf("graph: empty path")
	}
	for i := 0; i+1 < len(nodes); i++ {
		if !g.HasEdge(nodes[i], nodes[i+1]) {
			return fmt.Errorf("graph: missing edge %d -> %d", nodes[i], nodes[i+1])
		}
	}
	return nil
}
