package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func diamond() *Digraph {
	g := New()
	g.AddEdge(1, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 4)
	g.AddEdge(3, 4)
	return g
}

func TestAddAndQuery(t *testing.T) {
	g := diamond()
	if got := g.NumNodes(); got != 4 {
		t.Fatalf("NumNodes = %d, want 4", got)
	}
	if got := g.NumEdges(); got != 4 {
		t.Fatalf("NumEdges = %d, want 4", got)
	}
	if !g.HasEdge(1, 2) || g.HasEdge(2, 1) {
		t.Fatal("edge direction wrong")
	}
	if want := []int{2, 3}; !reflect.DeepEqual(g.Succ(1), want) {
		t.Fatalf("Succ(1) = %v, want %v", g.Succ(1), want)
	}
	if want := []int{2, 3}; !reflect.DeepEqual(g.Pred(4), want) {
		t.Fatalf("Pred(4) = %v, want %v", g.Pred(4), want)
	}
}

func TestAddNodeIdempotent(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	g.AddNode(1) // must not clear adjacency
	if !g.HasEdge(1, 2) {
		t.Fatal("AddNode on existing node destroyed edges")
	}
	g.AddEdge(1, 2) // duplicate edge
	if g.NumEdges() != 1 {
		t.Fatalf("duplicate AddEdge created parallel edge: %d edges", g.NumEdges())
	}
}

func TestRemoveEdgeAndNode(t *testing.T) {
	g := diamond()
	g.RemoveEdge(1, 2)
	if g.HasEdge(1, 2) {
		t.Fatal("edge not removed")
	}
	if g.NumNodes() != 4 {
		t.Fatal("RemoveEdge must not remove nodes")
	}
	g.RemoveNode(3)
	if g.HasNode(3) || g.HasEdge(1, 3) || g.HasEdge(3, 4) {
		t.Fatal("RemoveNode left incident state")
	}
	if want := []int{2}; !reflect.DeepEqual(g.Pred(4), want) {
		t.Fatalf("Pred(4) after removal = %v, want %v", g.Pred(4), want)
	}
}

func TestSourcesSinks(t *testing.T) {
	g := diamond()
	if want := []int{1}; !reflect.DeepEqual(g.Sources(), want) {
		t.Fatalf("Sources = %v, want %v", g.Sources(), want)
	}
	if want := []int{4}; !reflect.DeepEqual(g.Sinks(), want) {
		t.Fatalf("Sinks = %v, want %v", g.Sinks(), want)
	}
}

func TestTopoSortDeterministic(t *testing.T) {
	g := diamond()
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{1, 2, 3, 4}; !reflect.DeepEqual(order, want) {
		t.Fatalf("TopoSort = %v, want %v", order, want)
	}
}

func TestTopoSortCycle(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 1)
	if _, err := g.TopoSort(); err == nil {
		t.Fatal("expected cycle error")
	}
	if g.IsDAG() {
		t.Fatal("IsDAG on a cycle")
	}
}

func TestReachable(t *testing.T) {
	g := diamond()
	g.AddEdge(5, 6) // disconnected component
	if want := []int{1, 2, 3, 4}; !reflect.DeepEqual(g.Reachable(1), want) {
		t.Fatalf("Reachable(1) = %v, want %v", g.Reachable(1), want)
	}
	if !g.CanReach(1, 4) || g.CanReach(4, 1) || g.CanReach(1, 6) {
		t.Fatal("CanReach wrong")
	}
	if g.Reachable(99) != nil {
		t.Fatal("Reachable of missing node should be nil")
	}
}

func TestWithinHops(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	if want := []int{1, 2, 3}; !reflect.DeepEqual(g.WithinHops(1, 2), want) {
		t.Fatalf("WithinHops(1,2) = %v, want %v", g.WithinHops(1, 2), want)
	}
	if want := []int{1}; !reflect.DeepEqual(g.WithinHops(1, 0), want) {
		t.Fatalf("WithinHops(1,0) = %v, want %v", g.WithinHops(1, 0), want)
	}
}

func TestCloneReverseEqual(t *testing.T) {
	g := diamond()
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.AddEdge(4, 5)
	if g.Equal(c) || g.HasNode(5) {
		t.Fatal("clone aliases original")
	}
	r := g.Reverse()
	if !r.HasEdge(2, 1) || r.HasEdge(1, 2) {
		t.Fatal("reverse wrong")
	}
	if !r.Reverse().Equal(g) {
		t.Fatal("double reverse differs")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := diamond()
	sub := g.InducedSubgraph([]int{1, 2, 4, 99})
	if sub.NumNodes() != 3 {
		t.Fatalf("subgraph nodes = %d, want 3", sub.NumNodes())
	}
	if !sub.HasEdge(1, 2) || !sub.HasEdge(2, 4) || sub.HasEdge(1, 3) {
		t.Fatal("subgraph edges wrong")
	}
}

func TestLongestPathFrom(t *testing.T) {
	g := diamond()
	w := func(u, v int) int64 {
		return int64(u*10 + v) // 1->2=12, 1->3=13, 2->4=24, 3->4=34
	}
	dist, err := g.LongestPathFrom(1, w)
	if err != nil {
		t.Fatal(err)
	}
	if dist[4] != 13+34 {
		t.Fatalf("longest to 4 = %d, want %d", dist[4], 13+34)
	}
	if dist[1] != 0 {
		t.Fatalf("dist to src = %d, want 0", dist[1])
	}
}

func TestAllPaths(t *testing.T) {
	g := diamond()
	paths := g.AllPaths(1, 4, 0)
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2", len(paths))
	}
	for _, p := range paths {
		if err := g.ValidatePath(p); err != nil {
			t.Fatalf("invalid path %v: %v", p, err)
		}
	}
	if got := g.AllPaths(1, 4, 1); len(got) != 1 {
		t.Fatalf("limit ignored: %d paths", len(got))
	}
}

func TestChainFrom(t *testing.T) {
	g := New()
	// 1 -> 2 -> 3 -> 4, with 3 also feeding 5.
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(3, 5)
	if want := []int{1, 2, 3}; !reflect.DeepEqual(g.ChainFrom(1), want) {
		t.Fatalf("ChainFrom(1) = %v, want %v", g.ChainFrom(1), want)
	}
	if want := []int{4}; !reflect.DeepEqual(g.ChainFrom(4), want) {
		t.Fatalf("ChainFrom(4) = %v, want %v", g.ChainFrom(4), want)
	}
}

func TestValidatePath(t *testing.T) {
	g := diamond()
	if err := g.ValidatePath([]int{1, 2, 4}); err != nil {
		t.Fatalf("valid path rejected: %v", err)
	}
	if err := g.ValidatePath([]int{1, 4}); err == nil {
		t.Fatal("invalid path accepted")
	}
	if err := g.ValidatePath(nil); err == nil {
		t.Fatal("empty path accepted")
	}
}

// randomDAG builds a DAG by only adding forward edges over a random
// permutation of n nodes.
func randomDAG(rng *rand.Rand, n int, p float64) *Digraph {
	g := New()
	perm := rng.Perm(n)
	for _, v := range perm {
		g.AddNode(v)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(perm[i], perm[j])
			}
		}
	}
	return g
}

func TestTopoSortPropertyRandomDAGs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		g := randomDAG(rng, 2+rng.Intn(30), rng.Float64())
		order, err := g.TopoSort()
		if err != nil {
			t.Fatalf("trial %d: DAG reported cyclic: %v", trial, err)
		}
		pos := make(map[int]int, len(order))
		for i, n := range order {
			pos[n] = i
		}
		for _, e := range g.Edges() {
			if pos[e[0]] >= pos[e[1]] {
				t.Fatalf("trial %d: edge %v violates topo order", trial, e)
			}
		}
	}
}

func TestReachablePropertyMatchesAllPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		g := randomDAG(rng, 2+rng.Intn(12), 0.3)
		nodes := g.Nodes()
		src := nodes[rng.Intn(len(nodes))]
		reach := make(map[int]bool)
		for _, n := range g.Reachable(src) {
			reach[n] = true
		}
		for _, dst := range nodes {
			hasPath := len(g.AllPaths(src, dst, 1)) > 0
			if hasPath != reach[dst] {
				t.Fatalf("trial %d: reachability mismatch %d->%d: paths=%v reach=%v",
					trial, src, dst, hasPath, reach[dst])
			}
		}
	}
}

func TestQuickCloneEqual(t *testing.T) {
	f := func(edges []uint8) bool {
		g := New()
		for i := 0; i+1 < len(edges); i += 2 {
			u, v := int(edges[i]%16), int(edges[i+1]%16)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		return g.Equal(g.Clone()) && g.Clone().NumEdges() == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
