// Package control implements the three control algorithms the paper
// evaluates sFlow against (Sec 5):
//
//   - Random: each required service is placed on a random instance that its
//     already-placed upstream services can feed over a direct service link.
//   - Fixed: each required service is placed on the instance reachable over
//     the direct service link with the highest bandwidth — a one-hop greedy
//     with no lookahead and no latency awareness.
//   - ServicePath: the end-to-end single-path federation of Gu et al. It
//     federates one service chain optimally, but a DAG requirement is beyond
//     it: it only covers the main (longest) source-to-sink chain and ignores
//     every service off that chain, which is why the paper measures it with
//     the lowest correctness.
//
// Unlike sFlow and the baseline, Random and Fixed use only direct service
// links — they never route a stream through a bridging instance.
package control

import (
	"errors"
	"fmt"
	"math/rand"

	"sflow/internal/abstract"
	"sflow/internal/baseline"
	"sflow/internal/flow"
	"sflow/internal/overlay"
	"sflow/internal/qos"
	"sflow/internal/require"
)

// ErrInfeasible is returned when an algorithm cannot place every service.
var ErrInfeasible = errors.New("control: no feasible placement")

// Result is the outcome of a control algorithm.
type Result struct {
	// Flow carries the chosen assignments, and the realised streams when
	// Complete is true.
	Flow *flow.Graph
	// Metric is the end-to-end quality (qos.Unreachable when incomplete).
	Metric qos.Metric
	// Complete reports whether every required service and stream was
	// realised. ServicePath on a DAG requirement is never complete.
	Complete bool
}

// Random places every service on a uniformly random instance among those all
// already-placed upstream services can feed directly. The rng makes runs
// reproducible.
func Random(ag *abstract.Graph, src int, rng *rand.Rand) (*Result, error) {
	return place(ag, src, func(sid int, feasible []int, assign map[int]int) int {
		return feasible[rng.Intn(len(feasible))]
	})
}

// Fixed places every service on the instance whose incoming direct links
// from the already-placed upstream services have the highest bottleneck
// bandwidth. As the paper describes it, the fixed algorithm looks at
// bandwidth only — it is blind to latency (ties break on the lower NID).
func Fixed(ag *abstract.Graph, src int) (*Result, error) {
	ov := ag.Overlay()
	req := ag.Requirement()
	return place(ag, src, func(sid int, feasible []int, assign map[int]int) int {
		best := -1
		var bestBW int64 = -1
		for _, nid := range feasible {
			bw := qos.InfBandwidth
			for _, up := range req.Upstream(sid) {
				// Upstream assignment is always present: place
				// walks in topological order.
				lm, ok := ov.LinkMetric(assign[up], nid)
				if !ok {
					bw = 0
					break
				}
				if lm.Bandwidth < bw {
					bw = lm.Bandwidth
				}
			}
			if bw > bestBW {
				best, bestBW = nid, bw
			}
		}
		if best == -1 {
			return feasible[0]
		}
		return best
	})
}

// place walks the requirement in topological order; at each service it
// computes the feasible instances (all upstream direct links exist) and asks
// choose to pick one. It then realises the result over direct links.
func place(ag *abstract.Graph, src int, choose func(sid int, feasible []int, assign map[int]int) int) (*Result, error) {
	req := ag.Requirement()
	ov := ag.Overlay()
	if got := ov.SIDOf(src); got != req.Source() {
		return nil, fmt.Errorf("control: source instance %d provides service %d, requirement starts at %d",
			src, got, req.Source())
	}
	assign := map[int]int{req.Source(): src}
	for _, sid := range req.TopoOrder() {
		if sid == req.Source() {
			continue
		}
		var feasible []int
		for _, nid := range ag.Slots(sid) {
			ok := true
			for _, up := range req.Upstream(sid) {
				if _, direct := ov.LinkMetric(assign[up], nid); !direct {
					ok = false
					break
				}
			}
			if ok {
				feasible = append(feasible, nid)
			}
		}
		if len(feasible) == 0 {
			return nil, fmt.Errorf("%w: service %d has no directly reachable instance", ErrInfeasible, sid)
		}
		assign[sid] = choose(sid, feasible, assign)
	}
	fg, err := realizeDirect(ov, req, assign)
	if err != nil {
		return nil, fmt.Errorf("control: realise: %w", err)
	}
	return &Result{Flow: fg, Metric: fg.Quality(req), Complete: true}, nil
}

// realizeDirect materialises an assignment using only direct service links.
func realizeDirect(ov *overlay.Overlay, req *require.Requirement, assign map[int]int) (*flow.Graph, error) {
	fg := flow.New()
	for sid, nid := range assign {
		if err := fg.Assign(sid, nid); err != nil {
			return nil, err
		}
	}
	for _, e := range req.Edges() {
		from, to := assign[e[0]], assign[e[1]]
		m, ok := ov.LinkMetric(from, to)
		if !ok {
			return nil, fmt.Errorf("no direct link %d->%d for edge %d->%d", from, to, e[0], e[1])
		}
		if err := fg.AddEdge(flow.Edge{
			FromSID: e[0], ToSID: e[1],
			FromNID: from, ToNID: to,
			Path:   []int{from, to},
			Metric: m,
		}); err != nil {
			return nil, err
		}
	}
	return fg, nil
}

// ServicePath runs the end-to-end single-path federation. On a path-shaped
// requirement it is exact (it is the baseline algorithm). On any other
// requirement it federates only the main chain — the longest source-to-sink
// path of the requirement DAG — and reports an incomplete result.
func ServicePath(ag *abstract.Graph, src int) (*Result, error) {
	req := ag.Requirement()
	if req.Shape() == require.ShapePath {
		r, err := baseline.Solve(ag, src, nil)
		if err != nil {
			return nil, fmt.Errorf("control: service path: %w", err)
		}
		return &Result{Flow: r.Flow, Metric: r.Metric, Complete: true}, nil
	}
	chain := mainChain(req)
	if len(chain) < 2 {
		return nil, fmt.Errorf("%w: no source-to-sink chain", ErrInfeasible)
	}
	r, err := baseline.SolveChain(ag, chain, src, nil)
	if err != nil {
		return nil, fmt.Errorf("control: service path: %w", err)
	}
	// The off-chain services stay unplaced; the result cannot satisfy the
	// full requirement.
	return &Result{Flow: r.Flow, Metric: qos.Unreachable, Complete: false}, nil
}

// mainChain returns the longest (most hops) source-to-sink path of the
// requirement, deterministically.
func mainChain(req *require.Requirement) []int {
	dag := req.DAG()
	hops, err := dag.LongestPathFrom(req.Source(), func(u, v int) int64 { return 1 })
	if err != nil {
		return nil
	}
	// Pick the sink with the most hops (ties: smaller SID).
	bestSink, bestHops := -1, int64(-1)
	for _, s := range req.Sinks() {
		if h, ok := hops[s]; ok && h > bestHops {
			bestSink, bestHops = s, h
		}
	}
	if bestSink < 0 {
		return nil
	}
	// Walk backwards along predecessors that realise the hop count.
	chain := []int{bestSink}
	cur := bestSink
	for cur != req.Source() {
		next := -1
		for _, p := range dag.Pred(cur) {
			if h, ok := hops[p]; ok && h == hops[cur]-1 {
				next = p
				break // Pred is sorted: smallest SID wins ties
			}
		}
		if next < 0 {
			return nil
		}
		chain = append(chain, next)
		cur = next
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain
}
