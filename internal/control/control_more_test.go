package control

import (
	"math/rand"
	"testing"

	"sflow/internal/abstract"
	"sflow/internal/require"
	"sflow/internal/scenario"
)

// buildAbstract is a tiny helper for the extra tests.
func buildAbstract(t *testing.T, s *scenario.Scenario) (*abstract.Graph, error) {
	t.Helper()
	return abstract.Build(s.Overlay, s.Req)
}

// TestServicePathOnMultiSinkTree: with several sinks, the main chain runs to
// the deepest one; shallower sinks stay unserved.
func TestServicePathOnMultiSinkTree(t *testing.T) {
	// 1 -> 2 -> 3 (deep sink) and 1 -> 4 (shallow sink).
	req, err := require.FromEdges([][2]int{{1, 2}, {2, 3}, {1, 4}})
	if err != nil {
		t.Fatal(err)
	}
	got := mainChain(req)
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("mainChain = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mainChain = %v, want %v", got, want)
		}
	}
}

// TestRandomSpreadsChoices: over many runs the random algorithm must not
// always make the same placement (otherwise it is not random).
func TestRandomSpreadsChoices(t *testing.T) {
	s, err := scenario.Generate(scenario.Config{
		Seed: 77, NetworkSize: 15, Services: 5,
		InstancesPerService: 3, Kind: scenario.KindGeneral,
	})
	if err != nil {
		t.Fatal(err)
	}
	ag, sErr := buildAbstract(t, s)
	if sErr != nil {
		t.Fatal(sErr)
	}
	rng := rand.New(rand.NewSource(5))
	seen := make(map[string]bool)
	for i := 0; i < 20; i++ {
		res, err := Random(ag, s.SourceNID, rng)
		if err != nil {
			t.Fatal(err)
		}
		seen[res.Flow.String()] = true
	}
	if len(seen) < 2 {
		t.Fatalf("random produced only %d distinct placements in 20 runs", len(seen))
	}
}

// TestFixedDeterministic: the fixed algorithm is deterministic by
// construction.
func TestFixedDeterministic(t *testing.T) {
	s, err := scenario.Generate(scenario.Config{
		Seed: 78, NetworkSize: 15, Services: 5,
		InstancesPerService: 3, Kind: scenario.KindGeneral,
	})
	if err != nil {
		t.Fatal(err)
	}
	ag, sErr := buildAbstract(t, s)
	if sErr != nil {
		t.Fatal(sErr)
	}
	a, err := Fixed(ag, s.SourceNID)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fixed(ag, s.SourceNID)
	if err != nil {
		t.Fatal(err)
	}
	if a.Flow.String() != b.Flow.String() {
		t.Fatal("fixed is not deterministic")
	}
}
