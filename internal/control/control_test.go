package control

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"sflow/internal/abstract"
	"sflow/internal/exact"
	"sflow/internal/overlay"
	"sflow/internal/require"
	"sflow/internal/scenario"
)

func buildScenario(t *testing.T, seed int64, kind scenario.Kind) (*abstract.Graph, *scenario.Scenario) {
	t.Helper()
	s, err := scenario.Generate(scenario.Config{
		Seed: seed, NetworkSize: 15, Services: 6,
		InstancesPerService: 3, Kind: kind,
	})
	if err != nil {
		t.Fatal(err)
	}
	ag, err := abstract.Build(s.Overlay, s.Req)
	if err != nil {
		t.Fatal(err)
	}
	return ag, s
}

func TestRandomProducesValidFlows(t *testing.T) {
	ag, s := buildScenario(t, 1, scenario.KindGeneral)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 10; i++ {
		res, err := Random(ag, s.SourceNID, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Complete {
			t.Fatal("random result incomplete")
		}
		if err := res.Flow.Validate(s.Req, s.Overlay); err != nil {
			t.Fatalf("invalid flow: %v", err)
		}
		if res.Metric != res.Flow.Quality(s.Req) {
			t.Fatal("metric mismatch")
		}
	}
}

func TestRandomIsReproducible(t *testing.T) {
	ag, s := buildScenario(t, 2, scenario.KindGeneral)
	a, err := Random(ag, s.SourceNID, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random(ag, s.SourceNID, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Flow.Assignment(), b.Flow.Assignment()) {
		t.Fatal("same seed produced different placements")
	}
}

func TestFixedChoosesWidestDirectLink(t *testing.T) {
	o := overlay.New()
	for _, in := range [][2]int{{10, 1}, {20, 2}, {21, 2}, {30, 3}} {
		if err := o.AddInstance(in[0], in[1], -1); err != nil {
			t.Fatal(err)
		}
	}
	// 20 has the wider first hop but a terrible second hop — the one-hop
	// greedy must fall into the trap.
	for _, l := range [][4]int64{
		{10, 20, 100, 1}, {20, 30, 10, 1},
		{10, 21, 50, 1}, {21, 30, 50, 1},
	} {
		if err := o.AddLink(int(l[0]), int(l[1]), l[2], l[3]); err != nil {
			t.Fatal(err)
		}
	}
	req, err := require.NewPath(1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	ag, err := abstract.Build(o, req)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Fixed(ag, 10)
	if err != nil {
		t.Fatal(err)
	}
	if nid, _ := res.Flow.Assigned(2); nid != 20 {
		t.Fatalf("fixed picked %d, the greedy trap is 20", nid)
	}
	if res.Metric.Bandwidth != 10 {
		t.Fatalf("fixed metric = %+v, want width 10", res.Metric)
	}
	// The optimal avoids the trap; fixed must be strictly worse here.
	opt, err := exact.Solve(ag, 10, exact.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !opt.Metric.Better(res.Metric) {
		t.Fatalf("optimal %+v not better than fixed %+v", opt.Metric, res.Metric)
	}
}

func TestFixedAndRandomNeverBeatOptimal(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		ag, s := buildScenario(t, seed, scenario.KindGeneral)
		opt, err := exact.Solve(ag, s.SourceNID, exact.Options{})
		if err != nil {
			t.Fatal(err)
		}
		fx, err := Fixed(ag, s.SourceNID)
		if err != nil {
			t.Fatal(err)
		}
		if fx.Metric.Better(opt.Metric) {
			t.Fatalf("seed %d: fixed %+v beats optimal %+v", seed, fx.Metric, opt.Metric)
		}
		rd, err := Random(ag, s.SourceNID, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		if rd.Metric.Better(opt.Metric) {
			t.Fatalf("seed %d: random %+v beats optimal %+v", seed, rd.Metric, opt.Metric)
		}
		if err := fx.Flow.Validate(s.Req, s.Overlay); err != nil {
			t.Fatalf("seed %d: fixed flow invalid: %v", seed, err)
		}
	}
}

func TestServicePathExactOnPathRequirements(t *testing.T) {
	ag, s := buildScenario(t, 4, scenario.KindPath)
	res, err := ServicePath(ag, s.SourceNID)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("service path incomplete on a path requirement")
	}
	opt, err := exact.Solve(ag, s.SourceNID, exact.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metric != opt.Metric {
		t.Fatalf("service path %+v != optimal %+v on a path", res.Metric, opt.Metric)
	}
}

func TestServicePathIncompleteOnDAG(t *testing.T) {
	ag, s := buildScenario(t, 5, scenario.KindGeneral)
	res, err := ServicePath(ag, s.SourceNID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Fatal("service path claims completeness on a DAG")
	}
	if res.Metric.Reachable() {
		t.Fatal("incomplete result reports a reachable metric")
	}
	// Even if the main chain happens to visit every service, the parallel
	// streams of the DAG are not realised.
	if res.Flow.Complete(s.Req) {
		t.Fatal("flow graph claims to realise the full DAG requirement")
	}
	// The services it placed must form the main chain: source and the
	// final sink are both covered.
	if _, ok := res.Flow.Assigned(s.Req.Source()); !ok {
		t.Fatal("source unplaced")
	}
	placedSink := false
	for _, sink := range s.Req.Sinks() {
		if _, ok := res.Flow.Assigned(sink); ok {
			placedSink = true
		}
	}
	if !placedSink {
		t.Fatal("no sink placed")
	}
}

func TestWrongSourceRejected(t *testing.T) {
	ag, s := buildScenario(t, 6, scenario.KindGeneral)
	other := -1
	for _, inst := range s.Overlay.Instances() {
		if inst.SID != s.Req.Source() {
			other = inst.NID
			break
		}
	}
	if _, err := Fixed(ag, other); err == nil {
		t.Fatal("fixed accepted wrong source")
	}
	if _, err := Random(ag, other, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("random accepted wrong source")
	}
}

func TestInfeasiblePlacement(t *testing.T) {
	// Service 3 has an instance, but no direct link reaches it.
	o := overlay.New()
	for _, in := range [][2]int{{1, 1}, {2, 2}, {3, 3}} {
		if err := o.AddInstance(in[0], in[1], -1); err != nil {
			t.Fatal(err)
		}
	}
	if err := o.AddLink(1, 2, 5, 1); err != nil {
		t.Fatal(err)
	}
	req, err := require.NewPath(1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	ag, err := abstract.Build(o, req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Fixed(ag, 1); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestMainChainDeterministic(t *testing.T) {
	req, err := require.FromEdges([][2]int{{1, 2}, {1, 3}, {2, 4}, {3, 4}, {3, 5}, {4, 6}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	got := mainChain(req)
	// Longest chains have 4 hops: 1-2-4-6? (3 hops) vs 1-3-4-6 (3) vs
	// 1-3-5-6 (3). All 3 hops; smallest-SID tie-breaking selects 1-2-4-6.
	want := []int{1, 2, 4, 6}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("mainChain = %v, want %v", got, want)
	}
}
