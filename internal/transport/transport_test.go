package transport

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestDESDeliversWithLatency(t *testing.T) {
	type rec struct {
		from, to int
		at       int64
	}
	var got []rec
	var tr *DES
	lat := func(from, to int) int64 { return int64(10 * (to - from)) }
	tr = NewDES(lat, func(from, to int, msg any) {
		got = append(got, rec{from, to, tr.Now()})
		if to < 3 {
			tr.Send(to, to+1, msg)
		}
	})
	tr.Send(0, 1, "ping")
	n := tr.Run()
	if n != 3 {
		t.Fatalf("delivered %d, want 3", n)
	}
	want := []rec{{0, 1, 10}, {1, 2, 20}, {2, 3, 30}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if tr.Now() != 30 {
		t.Fatalf("Now = %d", tr.Now())
	}
}

func TestDESFIFOBetweenSameEndpoints(t *testing.T) {
	var got []int
	var tr *DES
	tr = NewDES(func(int, int) int64 { return 5 }, func(from, to int, msg any) {
		got = append(got, msg.(int))
	})
	for i := 0; i < 10; i++ {
		tr.Send(0, 1, i)
	}
	tr.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO violated: %v", got)
		}
	}
}

func TestDESNegativeLatencyClamped(t *testing.T) {
	ran := false
	tr := NewDES(func(int, int) int64 { return -7 }, func(from, to int, msg any) { ran = true })
	tr.Send(1, 2, nil)
	tr.Run()
	if !ran {
		t.Fatal("message with negative latency dropped")
	}
}

func TestGoroutineDeliversAll(t *testing.T) {
	nodes := []int{0, 1, 2, 3, 4}
	var count atomic.Int64
	var tr *Goroutine
	tr = NewGoroutine(nodes, func(from, to int, msg any) {
		count.Add(1)
		hop := msg.(int)
		if hop < 20 {
			tr.Send(to, (to+1)%5, hop+1)
		}
	})
	tr.Send(0, 1, 0)
	n := tr.Run()
	if n != 21 {
		t.Fatalf("delivered %d, want 21", n)
	}
	if got := count.Load(); got != 21 {
		t.Fatalf("handled %d, want 21", got)
	}
}

func TestGoroutineFanOutQuiescence(t *testing.T) {
	// A burst of fan-out messages: every delivery spawns two more until a
	// depth limit; Run must wait for all of them.
	nodes := make([]int, 8)
	for i := range nodes {
		nodes[i] = i
	}
	var count atomic.Int64
	var tr *Goroutine
	tr = NewGoroutine(nodes, func(from, to int, msg any) {
		count.Add(1)
		depth := msg.(int)
		if depth < 5 {
			tr.Send(to, (to+1)%8, depth+1)
			tr.Send(to, (to+3)%8, depth+1)
		}
	})
	tr.Send(0, 0, 0)
	n := tr.Run()
	want := 1
	level := 1
	for d := 1; d <= 5; d++ {
		level *= 2
		want += level
	}
	if n != want || count.Load() != int64(want) {
		t.Fatalf("delivered %d, want %d", n, want)
	}
}

func TestGoroutinePerNodeFIFO(t *testing.T) {
	var mu sync.Mutex
	got := make(map[int][]int)
	tr := NewGoroutine([]int{1, 2}, func(from, to int, msg any) {
		mu.Lock()
		got[to] = append(got[to], msg.(int))
		mu.Unlock()
	})
	for i := 0; i < 50; i++ {
		tr.Send(0, 1, i)
		tr.Send(0, 2, i)
	}
	tr.Run()
	for node, seq := range got {
		for i, v := range seq {
			if v != i {
				t.Fatalf("node %d FIFO violated: %v", node, seq)
			}
		}
	}
}

func TestGoroutineConcurrentSends(t *testing.T) {
	// Hammer Send from many goroutines before Run; all must be delivered.
	tr := NewGoroutine([]int{0}, func(from, to int, msg any) {})
	var wg sync.WaitGroup
	const senders, per = 8, 100
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.Send(99, 0, i)
			}
		}()
	}
	wg.Wait()
	if n := tr.Run(); n != senders*per {
		t.Fatalf("delivered %d, want %d", n, senders*per)
	}
}

func TestGoroutineSendToUnknownPanics(t *testing.T) {
	tr := NewGoroutine([]int{0}, func(from, to int, msg any) {})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.Send(0, 42, nil)
}

func TestGoroutineRunTwicePanics(t *testing.T) {
	tr := NewGoroutine([]int{0}, func(from, to int, msg any) {})
	tr.Send(0, 0, nil)
	tr.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.Run()
}

func TestGoroutineNowIsZero(t *testing.T) {
	tr := NewGoroutine([]int{0}, func(from, to int, msg any) {})
	if tr.Now() != 0 {
		t.Fatal("goroutine transport should have no clock")
	}
	tr.Send(0, 0, nil)
	tr.Run()
	if tr.Now() != 0 {
		t.Fatal("clock moved")
	}
}

func TestDESDeterministicAcrossRuns(t *testing.T) {
	build := func() []string {
		var log []string
		var tr *DES
		tr = NewDES(func(from, to int) int64 { return int64((to*7+from*3)%5) + 1 },
			func(from, to int, msg any) {
				log = append(log, msg.(string))
				if len(log) < 12 {
					tr.Send(to, (to+1)%4, msg.(string)+"x")
				}
			})
		tr.Send(0, 1, "a")
		tr.Send(0, 2, "b")
		tr.Run()
		return log
	}
	first := build()
	for i := 0; i < 3; i++ {
		if got := build(); len(got) != len(first) {
			t.Fatalf("run %d differs in length", i)
		} else {
			for j := range got {
				if got[j] != first[j] {
					t.Fatalf("run %d delivery %d: %q vs %q", i, j, got[j], first[j])
				}
			}
		}
	}
}
