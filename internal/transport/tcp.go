package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Codec serialises protocol messages for a byte-oriented transport. The
// protocol layer owns the message types, so it supplies the codec.
type Codec interface {
	Encode(msg any) ([]byte, error)
	Decode(data []byte) (any, error)
}

// maxFrame bounds a single message frame (16 MiB) as a corruption guard.
const maxFrame = 16 << 20

// TCP delivers messages over real loopback TCP connections: every node owns
// a listener on 127.0.0.1, messages are length-prefixed frames carrying the
// sender id and a codec-encoded payload. Delivery is FIFO per sender-
// receiver pair (one frame stream per connection); handlers for one node run
// serially, different nodes concurrently — the same contract as the
// goroutine transport, but with the messages actually crossing the network
// stack.
type TCP struct {
	handler   Handler
	codec     Codec
	listeners map[int]net.Listener
	addrs     map[int]string
	inboxes   map[int]*inbox

	inflight atomic.Int64
	count    atomic.Int64
	done     chan struct{}
	ran      sync.Once

	// mu guards only the conns map and the isClosed flag. It is never held
	// across a dial or a frame write: each cached connection carries its own
	// mutex, so senders on disjoint (from, to) pairs proceed independently
	// and one slow peer cannot stall the whole process.
	mu       sync.Mutex
	conns    map[[2]int]*sendConn // (from, to) -> cached sending connection
	isClosed bool

	// dial is swappable so tests can stall or fail individual dials; it is
	// net.Dial("tcp", addr) in production.
	dial func(addr string) (net.Conn, error)

	acceptors sync.WaitGroup
	closed    chan struct{}
}

// sendConn is one cached sending connection. Its mutex serialises dialling
// and frame writes on this (from, to) pair only, preserving the per-pair FIFO
// contract without a process-global lock.
type sendConn struct {
	mu     sync.Mutex
	conn   net.Conn // nil until the first Send dials
	closed bool     // set by Close; later Sends fail deterministically
}

var _ Transport = (*TCP)(nil)

// NewTCP opens one loopback listener per node. Call Close (or Run, which
// closes on completion) to release the sockets.
func NewTCP(nodes []int, handler Handler, codec Codec) (*TCP, error) {
	t := &TCP{
		handler:   handler,
		codec:     codec,
		listeners: make(map[int]net.Listener, len(nodes)),
		addrs:     make(map[int]string, len(nodes)),
		inboxes:   make(map[int]*inbox, len(nodes)),
		done:      make(chan struct{}, 1),
		conns:     make(map[[2]int]*sendConn),
		closed:    make(chan struct{}),
		dial:      func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) },
	}
	for _, n := range nodes {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("transport: listen for node %d: %w", n, err)
		}
		t.listeners[n] = ln
		t.addrs[n] = ln.Addr().String()
		t.inboxes[n] = newInbox()
		t.acceptors.Add(1)
		go t.acceptLoop(n, ln)
	}
	return t, nil
}

// Addr returns the loopback address a node listens on (for tests and
// diagnostics).
func (t *TCP) Addr(node int) string { return t.addrs[node] }

// Send implements Transport: it encodes the message and writes one frame on
// the cached connection from `from` to `to`, dialling on first use. The map
// lock is released before dialling or writing, so concurrent sends on
// disjoint pairs make progress even while one peer is slow; frames on the
// same pair stay FIFO behind the pair's own lock. Sending on a transport that
// has been Closed panics deterministically with a clear message instead of
// racing a write against a closing socket or re-dialling a closed listener.
func (t *TCP) Send(from, to int, msg any) {
	addr, ok := t.addrs[to]
	if !ok {
		panic(fmt.Sprintf("transport: send to unknown node %d", to))
	}
	payload, err := t.codec.Encode(msg)
	if err != nil {
		panic(fmt.Sprintf("transport: encode: %v", err))
	}
	// Count before the frame can possibly be delivered.
	t.inflight.Add(1)

	t.mu.Lock()
	if t.isClosed {
		t.mu.Unlock()
		panic(fmt.Sprintf("transport: Send %d->%d after Close", from, to))
	}
	key := [2]int{from, to}
	sc, ok := t.conns[key]
	if !ok {
		sc = &sendConn{}
		t.conns[key] = sc
	}
	t.mu.Unlock()

	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.closed {
		// Close won the race after we picked the entry up: fail the same
		// way a post-Close send does, not with a socket error.
		panic(fmt.Sprintf("transport: Send %d->%d after Close", from, to))
	}
	if sc.conn == nil {
		conn, err := t.dial(addr)
		if err != nil {
			panic(fmt.Sprintf("transport: dial node %d: %v", to, err))
		}
		sc.conn = conn
	}
	if err := writeFrame(sc.conn, from, payload); err != nil {
		panic(fmt.Sprintf("transport: write to node %d: %v", to, err))
	}
}

// After implements Transport: a wall-clock timer holding an in-flight token,
// so Run cannot declare quiescence while the timer is armed.
func (t *TCP) After(delay int64, fn func()) (cancel func() bool) {
	t.inflight.Add(1)
	var settled atomic.Bool
	timer := time.AfterFunc(time.Duration(delay)*time.Microsecond, func() {
		if settled.Swap(true) {
			return
		}
		fn()
		t.release()
	})
	return func() bool {
		if !settled.CompareAndSwap(false, true) {
			return false
		}
		timer.Stop()
		t.release()
		return true
	}
}

// release returns one in-flight token and wakes Run when the count reaches
// zero.
func (t *TCP) release() {
	if t.inflight.Add(-1) == 0 {
		select {
		case t.done <- struct{}{}:
		default:
		}
	}
}

// Run implements Transport: node workers drain their inboxes until
// quiescence, then all sockets are closed.
func (t *TCP) Run() int {
	ranBefore := true
	t.ran.Do(func() { ranBefore = false })
	if ranBefore {
		panic("transport: Run called twice")
	}
	var workers sync.WaitGroup
	for nid, b := range t.inboxes {
		workers.Add(1)
		go func(nid int, b *inbox) {
			defer workers.Done()
			for {
				e, ok := b.get()
				if !ok {
					return
				}
				t.count.Add(1)
				t.handler(e.from, nid, e.msg)
				t.release()
			}
		}(nid, b)
	}
	for t.inflight.Load() != 0 {
		<-t.done
	}
	for _, b := range t.inboxes {
		b.close()
	}
	workers.Wait()
	t.Close()
	return int(t.count.Load())
}

// Now implements Transport; real TCP has no virtual clock.
func (t *TCP) Now() int64 { return 0 }

// Close shuts every listener and cached connection and drops the stale
// entries from the connection cache. Safe to call more than once. A Send
// racing with Close either completes its write before the connection closes
// (the pair lock serialises them) or fails deterministically with a
// "Send after Close" panic — never with a raw socket error or a re-dial of a
// closed listener.
func (t *TCP) Close() {
	select {
	case <-t.closed:
		return
	default:
		close(t.closed)
	}
	for _, ln := range t.listeners {
		_ = ln.Close()
	}
	// Flag first, then detach the cache, both under mu: any Send entering
	// afterwards observes isClosed before it can reach a stale entry.
	t.mu.Lock()
	t.isClosed = true
	conns := t.conns
	t.conns = nil
	t.mu.Unlock()
	for _, sc := range conns {
		// Taking the pair lock lets an in-progress write on this pair
		// finish before its socket closes under it.
		sc.mu.Lock()
		if sc.conn != nil {
			_ = sc.conn.Close()
		}
		sc.closed = true
		sc.mu.Unlock()
	}
	t.acceptors.Wait()
}

// acceptLoop accepts inbound connections for one node and spawns a reader
// per connection.
func (t *TCP) acceptLoop(nid int, ln net.Listener) {
	defer t.acceptors.Done()
	var readers sync.WaitGroup
	defer readers.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		readers.Add(1)
		go func() {
			defer readers.Done()
			defer conn.Close()
			for {
				from, payload, err := readFrame(conn)
				if err != nil {
					return // EOF or shutdown
				}
				msg, err := t.codec.Decode(payload)
				if err != nil {
					// A corrupt frame is a protocol bug; surface loudly.
					panic(fmt.Sprintf("transport: decode at node %d: %v", nid, err))
				}
				t.inboxes[nid].put(envelope{from: from, msg: msg})
			}
		}()
	}
}

// writeFrame writes [len u32][from i64][payload].
func writeFrame(w io.Writer, from int, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("frame too large: %d bytes", len(payload))
	}
	header := make([]byte, 12)
	binary.BigEndian.PutUint32(header[:4], uint32(len(payload)))
	binary.BigEndian.PutUint64(header[4:], uint64(int64(from)))
	if _, err := w.Write(header); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame written by writeFrame.
func readFrame(r io.Reader) (from int, payload []byte, err error) {
	header := make([]byte, 12)
	if _, err := io.ReadFull(r, header); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(header[:4])
	if n > maxFrame {
		return 0, nil, errors.New("oversized frame")
	}
	from = int(int64(binary.BigEndian.Uint64(header[4:])))
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			// A stream ending exactly after a header that promised a
			// payload is a truncated frame, not a clean shutdown.
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	return from, payload, nil
}
