// Package transport delivers protocol messages between overlay nodes for the
// distributed sFlow algorithm. Two implementations share one interface:
//
//   - The DES transport runs on the deterministic discrete-event simulator,
//     delivering each message after the latency of the overlay link it
//     crosses. It gives reproducible runs and a virtual completion time.
//   - The goroutine transport runs every node concurrently on its own
//     goroutine with FIFO inboxes. It has no virtual clock, but exercises
//     the protocol under real concurrency and arbitrary interleavings.
//
// A transport is single-shot: construct, Send the initial messages, Run to
// quiescence, read counters.
package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sflow/internal/des"
)

// Handler processes one message delivered to node `to`. Handlers may call
// Send re-entrantly. A given node's messages are delivered one at a time in
// FIFO order.
type Handler func(from, to int, msg any)

// LatencyFunc returns the delivery latency in microseconds from one node to
// another (used by the DES transport; zero is valid).
type LatencyFunc func(from, to int) int64

// Transport delivers messages until quiescence.
type Transport interface {
	// Send enqueues a message for delivery. Safe to call before Run and
	// from within handlers. The goroutine transport's Send is safe for
	// concurrent use.
	Send(from, to int, msg any)
	// After schedules fn once after the given delay in microseconds —
	// virtual time on the DES transport, wall-clock time on the goroutine
	// and TCP transports. A pending timer counts as outstanding work, so
	// Run does not declare quiescence while one is armed. The returned
	// cancel function stops the timer and reports whether it did so before
	// fn started; cancelling twice is safe. Timers give the protocol layer
	// its retransmission and deadline clocks without binding it to one
	// notion of time.
	After(delay int64, fn func()) (cancel func() bool)
	// Run delivers messages until no work remains and returns the number
	// of messages delivered. Run must be called exactly once.
	Run() int
	// Now returns the current virtual time in microseconds (always zero
	// for the goroutine transport).
	Now() int64
}

// DES is the discrete-event-simulated transport.
type DES struct {
	sim       *des.Simulator
	latency   LatencyFunc
	handler   Handler
	delivered int
}

var _ Transport = (*DES)(nil)

// NewDES returns a transport delivering messages on a fresh simulator.
func NewDES(latency LatencyFunc, handler Handler) *DES {
	return &DES{sim: des.New(), latency: latency, handler: handler}
}

// Send implements Transport.
func (t *DES) Send(from, to int, msg any) {
	lat := t.latency(from, to)
	if lat < 0 {
		lat = 0
	}
	// Schedule can only fail on negative delay, which is excluded.
	_ = t.sim.Schedule(lat, func() {
		t.delivered++
		t.handler(from, to, msg)
	})
}

// After implements Transport: the timer is a simulator event. A cancelled
// event stays in the queue but fires as a no-op.
func (t *DES) After(delay int64, fn func()) (cancel func() bool) {
	if delay < 0 {
		delay = 0
	}
	var cancelled, fired bool
	_ = t.sim.Schedule(delay, func() {
		if cancelled {
			return
		}
		fired = true
		fn()
	})
	return func() bool {
		if fired || cancelled {
			return false
		}
		cancelled = true
		return true
	}
}

// Run implements Transport.
func (t *DES) Run() int {
	t.sim.Run()
	return t.delivered
}

// Now implements Transport.
func (t *DES) Now() int64 { return t.sim.Now() }

// Goroutine is the concurrent transport: one goroutine and one FIFO inbox
// per node.
type Goroutine struct {
	handler  Handler
	inboxes  map[int]*inbox
	inflight atomic.Int64
	done     chan struct{}
	ran      atomic.Bool
	count    atomic.Int64
}

var _ Transport = (*Goroutine)(nil)

type envelope struct {
	from int
	msg  any
}

type inbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []envelope
	closed bool
}

func newInbox() *inbox {
	b := &inbox{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *inbox) put(e envelope) {
	b.mu.Lock()
	b.queue = append(b.queue, e)
	b.mu.Unlock()
	b.cond.Signal()
}

func (b *inbox) get() (envelope, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.queue) == 0 && !b.closed {
		b.cond.Wait()
	}
	if len(b.queue) == 0 {
		return envelope{}, false
	}
	e := b.queue[0]
	b.queue = b.queue[1:]
	return e, true
}

func (b *inbox) close() {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	b.cond.Broadcast()
}

// NewGoroutine returns a concurrent transport for the given node set.
func NewGoroutine(nodes []int, handler Handler) *Goroutine {
	t := &Goroutine{
		handler: handler,
		inboxes: make(map[int]*inbox, len(nodes)),
		done:    make(chan struct{}, 1),
	}
	for _, n := range nodes {
		t.inboxes[n] = newInbox()
	}
	return t
}

// Send implements Transport. Sending to an unknown node panics: it is a
// programming error in the protocol layer.
func (t *Goroutine) Send(from, to int, msg any) {
	b, ok := t.inboxes[to]
	if !ok {
		panic(fmt.Sprintf("transport: send to unknown node %d", to))
	}
	// Count before enqueue so quiescence cannot be declared while a
	// message is in flight.
	t.inflight.Add(1)
	b.put(envelope{from: from, msg: msg})
}

// After implements Transport: a wall-clock timer holding an in-flight token,
// so Run cannot declare quiescence while the timer is armed.
func (t *Goroutine) After(delay int64, fn func()) (cancel func() bool) {
	t.inflight.Add(1)
	var settled atomic.Bool
	timer := time.AfterFunc(time.Duration(delay)*time.Microsecond, func() {
		if settled.Swap(true) {
			return
		}
		fn()
		t.release()
	})
	return func() bool {
		if !settled.CompareAndSwap(false, true) {
			return false
		}
		timer.Stop()
		t.release()
		return true
	}
}

// release returns one in-flight token and wakes Run when the count reaches
// zero.
func (t *Goroutine) release() {
	if t.inflight.Add(-1) == 0 {
		select {
		case t.done <- struct{}{}:
		default:
		}
	}
}

// Run implements Transport: it starts the node goroutines, waits for
// quiescence (no queued or in-process messages), stops them, and returns the
// delivered count.
func (t *Goroutine) Run() int {
	if t.ran.Swap(true) {
		panic("transport: Run called twice")
	}
	var wg sync.WaitGroup
	for nid, b := range t.inboxes {
		wg.Add(1)
		go func(nid int, b *inbox) {
			defer wg.Done()
			for {
				e, ok := b.get()
				if !ok {
					return
				}
				t.count.Add(1)
				t.handler(e.from, nid, e.msg)
				// Decrement after the handler so sends from within
				// it are already counted.
				t.release()
			}
		}(nid, b)
	}

	// Wait until the in-flight count settles at zero. Messages and timers
	// only enter the system before Run (the protocol's injection) or from
	// within handlers and timer callbacks — each of which holds its own
	// token until it returns — so the count only reaches zero at true
	// quiescence; spurious wakeups re-check and keep waiting.
	for t.inflight.Load() != 0 {
		<-t.done
	}
	for _, b := range t.inboxes {
		b.close()
	}
	wg.Wait()
	return int(t.count.Load())
}

// Now implements Transport; the goroutine transport has no virtual clock.
func (t *Goroutine) Now() int64 { return 0 }
