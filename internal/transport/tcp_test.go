package transport

import (
	"bytes"
	"encoding/json"
	"sync"
	"sync/atomic"
	"testing"
)

// jsonCodec is a trivial test codec for int payloads.
type jsonCodec struct{}

func (jsonCodec) Encode(msg any) ([]byte, error) { return json.Marshal(msg) }

func (jsonCodec) Decode(data []byte) (any, error) {
	var v int
	if err := json.Unmarshal(data, &v); err != nil {
		return nil, err
	}
	return v, nil
}

func TestTCPRelayChain(t *testing.T) {
	nodes := []int{0, 1, 2, 3}
	var tr *TCP
	var mu sync.Mutex
	var got []int
	var err error
	tr, err = NewTCP(nodes, func(from, to int, msg any) {
		mu.Lock()
		got = append(got, to)
		mu.Unlock()
		hop := msg.(int)
		if to < 3 {
			tr.Send(to, to+1, hop+1)
		}
	}, jsonCodec{})
	if err != nil {
		t.Fatal(err)
	}
	tr.Send(0, 1, 0)
	if n := tr.Run(); n != 3 {
		t.Fatalf("delivered %d, want 3", n)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("deliveries = %v", got)
	}
}

func TestTCPFanOutQuiescence(t *testing.T) {
	nodes := make([]int, 6)
	for i := range nodes {
		nodes[i] = i
	}
	var count atomic.Int64
	var tr *TCP
	var err error
	tr, err = NewTCP(nodes, func(from, to int, msg any) {
		count.Add(1)
		depth := msg.(int)
		if depth < 4 {
			tr.Send(to, (to+1)%6, depth+1)
			tr.Send(to, (to+2)%6, depth+1)
		}
	}, jsonCodec{})
	if err != nil {
		t.Fatal(err)
	}
	tr.Send(0, 0, 0)
	want := 1 + 2 + 4 + 8 + 16
	if n := tr.Run(); n != want {
		t.Fatalf("delivered %d, want %d", n, want)
	}
}

func TestTCPPerPairFIFO(t *testing.T) {
	var mu sync.Mutex
	got := make([]int, 0, 100)
	tr, err := NewTCP([]int{1}, func(from, to int, msg any) {
		mu.Lock()
		got = append(got, msg.(int))
		mu.Unlock()
	}, jsonCodec{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		tr.Send(0, 1, i)
	}
	tr.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("per-pair FIFO violated at %d: %v", i, got[:i+1])
		}
	}
}

func TestTCPSendToUnknownPanics(t *testing.T) {
	tr, err := NewTCP([]int{0}, func(int, int, any) {}, jsonCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.Send(0, 42, 1)
}

func TestTCPAddrAndClose(t *testing.T) {
	tr, err := NewTCP([]int{7}, func(int, int, any) {}, jsonCodec{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Addr(7) == "" {
		t.Fatal("no address")
	}
	if tr.Now() != 0 {
		t.Fatal("TCP transport should have no clock")
	}
	tr.Close()
	tr.Close() // idempotent
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello frames")
	if err := writeFrame(&buf, -1, payload); err != nil {
		t.Fatal(err)
	}
	from, got, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if from != -1 || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: from=%d payload=%q", from, got)
	}
	// Truncated stream errors out.
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 5})
	if _, _, err := readFrame(&buf); err == nil {
		t.Fatal("truncated frame accepted")
	}
	// Oversized declared length is rejected.
	buf.Reset()
	var header [12]byte
	header[0] = 0xFF
	header[1] = 0xFF
	header[2] = 0xFF
	header[3] = 0xFF
	buf.Write(header[:])
	if _, _, err := readFrame(&buf); err == nil {
		t.Fatal("oversized frame accepted")
	}
	if err := writeFrame(&buf, 0, make([]byte, maxFrame+1)); err == nil {
		t.Fatal("oversized write accepted")
	}
}

func TestTCPManySenders(t *testing.T) {
	const senders, per = 6, 50
	var count atomic.Int64
	nodes := []int{0}
	tr, err := NewTCP(nodes, func(int, int, any) { count.Add(1) }, jsonCodec{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.Send(100+s, 0, i)
			}
		}(s)
	}
	wg.Wait()
	if n := tr.Run(); n != senders*per {
		t.Fatalf("delivered %d, want %d", n, senders*per)
	}
	if got := count.Load(); got != senders*per {
		t.Fatalf("handled %d", got)
	}
}

func TestTCPRunTwicePanics(t *testing.T) {
	tr, err := NewTCP([]int{0}, func(int, int, any) {}, jsonCodec{})
	if err != nil {
		t.Fatal(err)
	}
	tr.Send(0, 0, 1)
	tr.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.Run()
}
