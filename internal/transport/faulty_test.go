package transport

import (
	"fmt"
	"sync"
	"testing"
)

// faultyOverDES wires a Faulty decorator over a zero-latency DES and returns
// the decorator plus the delivery log (filled during Run).
func faultyOverDES(t *testing.T, cfg Faults) (*Faulty, *[]string) {
	t.Helper()
	var log []string
	base := NewDES(func(int, int) int64 { return 0 }, func(from, to int, msg any) {
		log = append(log, fmt.Sprintf("%d->%d:%v", from, to, msg))
	})
	f, err := NewFaulty(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f, &log
}

func TestFaultyValidatesRates(t *testing.T) {
	for _, cfg := range []Faults{{Drop: -0.1}, {Drop: 1.5}, {Duplicate: 2}, {Reorder: -1}, {CrashRate: 7}} {
		if _, err := NewFaulty(nil, cfg); err == nil {
			t.Errorf("NewFaulty(%+v) accepted an out-of-range rate", cfg)
		}
	}
}

func TestFaultyCleanPassThrough(t *testing.T) {
	f, log := faultyOverDES(t, Faults{Seed: 1})
	for i := 0; i < 50; i++ {
		f.Send(0, 1, i)
	}
	f.Run()
	if len(*log) != 50 {
		t.Fatalf("delivered %d of 50 with zero fault rates", len(*log))
	}
	c := f.Counts()
	if c.Sent != 50 || c.Delivered != 50 || c.Dropped+c.Duplicated+c.Reordered+c.CrashDropped != 0 {
		t.Fatalf("counts = %+v", c)
	}
}

func TestFaultyDropsAtConfiguredRate(t *testing.T) {
	f, log := faultyOverDES(t, Faults{Seed: 7, Drop: 0.3})
	const n = 2000
	for i := 0; i < n; i++ {
		f.Send(0, 1, i)
	}
	f.Run()
	c := f.Counts()
	if c.Dropped == 0 || c.Delivered != int64(len(*log)) || c.Dropped+c.Delivered != n {
		t.Fatalf("counts = %+v, delivered log %d", c, len(*log))
	}
	rate := float64(c.Dropped) / n
	if rate < 0.25 || rate > 0.35 {
		t.Fatalf("empirical drop rate %.3f, configured 0.3", rate)
	}
}

func TestFaultyDuplicatesBackToBack(t *testing.T) {
	f, log := faultyOverDES(t, Faults{Seed: 3, Duplicate: 0.5})
	const n = 200
	for i := 0; i < n; i++ {
		f.Send(0, 1, i)
	}
	f.Run()
	c := f.Counts()
	if c.Duplicated == 0 {
		t.Fatal("no duplicates at rate 0.5")
	}
	if int64(len(*log)) != n+c.Duplicated {
		t.Fatalf("delivered %d, want %d originals + %d duplicates", len(*log), n, c.Duplicated)
	}
	// Duplicates arrive immediately after their original.
	dups := 0
	for i := 1; i < len(*log); i++ {
		if (*log)[i] == (*log)[i-1] {
			dups++
		}
	}
	if int64(dups) != c.Duplicated {
		t.Fatalf("found %d back-to-back pairs, counter says %d", dups, c.Duplicated)
	}
}

func TestFaultyReordersHeldMessage(t *testing.T) {
	// Find a seed/coordinate where exactly one early message is reordered,
	// then check it is delivered after its successor.
	f, log := faultyOverDES(t, Faults{Seed: 5, Reorder: 0.3})
	const n = 100
	for i := 0; i < n; i++ {
		f.Send(0, 1, i)
	}
	f.Run()
	c := f.Counts()
	if c.Reordered == 0 {
		t.Fatal("no reorders at rate 0.3 over 100 messages")
	}
	if c.Delivered+c.Stranded != n {
		t.Fatalf("counts = %+v, want delivered+stranded = %d", c, n)
	}
	// With every message surviving, delivery must be a permutation with at
	// least one inversion.
	seen := make(map[string]bool, len(*log))
	inversions := 0
	prev := -1
	for _, entry := range *log {
		if seen[entry] {
			t.Fatalf("duplicate delivery %s without Duplicate configured", entry)
		}
		seen[entry] = true
		var from, to, v int
		fmt.Sscanf(entry, "%d->%d:%d", &from, &to, &v)
		if v < prev {
			inversions++
		}
		prev = v
	}
	if inversions == 0 {
		t.Fatalf("reordered %d messages but delivery is in order", c.Reordered)
	}
}

func TestFaultyDeterministicAcrossRuns(t *testing.T) {
	run := func() []string {
		f, log := faultyOverDES(t, Faults{Seed: 11, Drop: 0.2, Duplicate: 0.1, Reorder: 0.1, CrashRate: 0.2})
		for i := 0; i < 300; i++ {
			f.Send(i%7, (i+1)%7, i)
		}
		f.Run()
		return *log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs delivered %d vs %d messages", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d differs: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestFaultySeedChangesPattern(t *testing.T) {
	counts := func(seed int64) FaultCounts {
		f, _ := faultyOverDES(t, Faults{Seed: seed, Drop: 0.2})
		for i := 0; i < 500; i++ {
			f.Send(0, 1, i)
		}
		f.Run()
		return f.Counts()
	}
	if counts(1) == counts(2) {
		t.Fatal("different seeds produced identical fault counts over 500 messages")
	}
}

func TestFaultyExplicitCrashWindow(t *testing.T) {
	// Node 2 goes down after 2 touches and stays down for 2 touches.
	f, log := faultyOverDES(t, Faults{Seed: 1, Crashes: []Crash{{Node: 2, After: 2, Down: 2}}})
	for i := 0; i < 6; i++ {
		f.Send(1, 2, i) // touches 2 once per send
	}
	f.Run()
	// Touch counter of node 2 at send i is i: sends 0,1 pass (touch 0,1),
	// sends 2,3 are crash-dropped (touch 2,3), sends 4,5 pass again.
	want := []string{"1->2:0", "1->2:1", "1->2:4", "1->2:5"}
	if len(*log) != len(want) {
		t.Fatalf("delivered %v, want %v", *log, want)
	}
	for i := range want {
		if (*log)[i] != want[i] {
			t.Fatalf("delivered %v, want %v", *log, want)
		}
	}
	if c := f.Counts(); c.CrashDropped != 2 {
		t.Fatalf("CrashDropped = %d, want 2", c.CrashDropped)
	}
}

func TestFaultyCrashForever(t *testing.T) {
	f, log := faultyOverDES(t, Faults{Seed: 1, Crashes: []Crash{{Node: 2, After: 0, Down: -1}}})
	for i := 0; i < 10; i++ {
		f.Send(1, 2, i)
		f.Send(2, 3, i) // a crashed node does not emit either
	}
	f.Run()
	if len(*log) != 0 {
		t.Fatalf("messages through a permanently crashed node: %v", *log)
	}
	if c := f.Counts(); c.CrashDropped != 20 {
		t.Fatalf("CrashDropped = %d, want 20", c.CrashDropped)
	}
}

func TestFaultyCrashExemptNeverCrashes(t *testing.T) {
	f, log := faultyOverDES(t, Faults{Seed: 9, CrashRate: 1, CrashExempt: []int{0, 1}})
	for i := 0; i < 50; i++ {
		f.Send(0, 1, i)
	}
	f.Run()
	if len(*log) != 50 {
		t.Fatalf("delivered %d of 50 between crash-exempt nodes at CrashRate 1", len(*log))
	}
}

func TestFaultyRateCrashEventuallyDropsTraffic(t *testing.T) {
	f, _ := faultyOverDES(t, Faults{Seed: 4, CrashRate: 1})
	for i := 0; i < 100; i++ {
		f.Send(0, 1, i)
	}
	f.Run()
	if c := f.Counts(); c.CrashDropped == 0 {
		t.Fatalf("CrashRate 1 never crashed an endpoint: %+v", c)
	}
}

func TestFaultyAfterDelegates(t *testing.T) {
	fired := false
	base := NewDES(func(int, int) int64 { return 0 }, func(int, int, any) {})
	f, err := NewFaulty(base, Faults{Seed: 1, Drop: 1})
	if err != nil {
		t.Fatal(err)
	}
	f.After(10, func() { fired = true })
	f.Run()
	if !fired {
		t.Fatal("timer armed through the decorator did not fire (timers must never be faulted)")
	}
}

func TestFaultyConcurrentSendsRace(t *testing.T) {
	// Under -race: concurrent senders over the goroutine transport.
	nodes := []int{0, 1, 2, 3}
	base := NewGoroutine(nodes, func(int, int, any) {})
	f, err := NewFaulty(base, Faults{Seed: 2, Drop: 0.2, Duplicate: 0.2, Reorder: 0.2, CrashRate: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				f.Send(g, (g+1)%4, i)
			}
		}(g)
	}
	wg.Wait()
	f.Run()
	c := f.Counts()
	if c.Sent != 400 {
		t.Fatalf("Sent = %d, want 400", c.Sent)
	}
	if c.Delivered+c.Dropped+c.CrashDropped+c.Stranded-c.Duplicated != 400 {
		t.Fatalf("counters do not balance: %+v", c)
	}
}
