package transport

import (
	"sync/atomic"
	"testing"
)

func TestDESAfterFiresAtVirtualTime(t *testing.T) {
	var firedAt int64 = -1
	var tr *DES
	tr = NewDES(func(int, int) int64 { return 0 }, func(int, int, any) {})
	tr.After(250, func() { firedAt = tr.Now() })
	tr.Run()
	if firedAt != 250 {
		t.Fatalf("timer fired at %d, want 250", firedAt)
	}
}

func TestDESAfterCancel(t *testing.T) {
	fired := false
	tr := NewDES(func(int, int) int64 { return 0 }, func(int, int, any) {})
	cancel := tr.After(10, func() { fired = true })
	if !cancel() {
		t.Fatal("first cancel reported false")
	}
	if cancel() {
		t.Fatal("second cancel reported true")
	}
	tr.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestDESAfterNegativeDelayClamped(t *testing.T) {
	fired := false
	tr := NewDES(func(int, int) int64 { return 0 }, func(int, int, any) {})
	tr.After(-5, func() { fired = true })
	tr.Run()
	if !fired {
		t.Fatal("timer with negative delay never fired")
	}
}

func TestGoroutineAfterHoldsQuiescence(t *testing.T) {
	// Run must not return before an armed timer fires, even with no
	// message traffic at all.
	var fired atomic.Bool
	tr := NewGoroutine([]int{0, 1}, func(int, int, any) {})
	tr.After(20_000, func() { fired.Store(true) }) // 20ms
	tr.Run()
	if !fired.Load() {
		t.Fatal("Run returned before the armed timer fired")
	}
}

func TestGoroutineAfterCancelReleasesQuiescence(t *testing.T) {
	tr := NewGoroutine([]int{0, 1}, func(int, int, any) {})
	cancel := tr.After(3_600_000_000, func() { t.Error("cancelled timer fired") }) // 1h
	if !cancel() {
		t.Fatal("cancel reported false for an armed timer")
	}
	if cancel() {
		t.Fatal("second cancel reported true")
	}
	// Would hang until the timer if the token were not released.
	tr.Send(0, 1, "ping")
	tr.Run()
}

func TestGoroutineAfterTimerSends(t *testing.T) {
	var got atomic.Int64
	var tr *Goroutine
	tr = NewGoroutine([]int{0, 1}, func(from, to int, msg any) { got.Add(1) })
	tr.After(1000, func() { tr.Send(0, 1, "from timer") })
	tr.Run()
	if got.Load() != 1 {
		t.Fatalf("delivered %d messages, want the timer's 1", got.Load())
	}
}

func TestTCPAfterHoldsQuiescence(t *testing.T) {
	var fired atomic.Bool
	tr, err := NewTCP([]int{0, 1}, func(int, int, any) {}, jsonCodec{})
	if err != nil {
		t.Fatal(err)
	}
	tr.After(20_000, func() { fired.Store(true) })
	tr.Run()
	if !fired.Load() {
		t.Fatal("Run returned before the armed timer fired")
	}
}

func TestTCPAfterCancelReleasesQuiescence(t *testing.T) {
	tr, err := NewTCP([]int{0, 1}, func(int, int, any) {}, jsonCodec{})
	if err != nil {
		t.Fatal(err)
	}
	cancel := tr.After(3_600_000_000, func() { t.Error("cancelled timer fired") })
	if !cancel() {
		t.Fatal("cancel reported false for an armed timer")
	}
	tr.Send(0, 1, 42)
	tr.Run()
}
