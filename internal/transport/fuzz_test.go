package transport

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReadFrame feeds arbitrary byte streams to the length-prefixed frame
// reader: it must never panic or over-allocate, and whatever it accepts must
// round-trip through writeFrame unchanged.
func FuzzReadFrame(f *testing.F) {
	var seed bytes.Buffer
	_ = writeFrame(&seed, 3, []byte(`{"kind":"sfederate"}`))
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4, 5, 6, 7, 8}) // oversized length
	f.Add(bytes.Repeat([]byte{0x41}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		from, payload, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		var rt bytes.Buffer
		if err := writeFrame(&rt, from, payload); err != nil {
			t.Fatalf("re-encode of accepted frame failed: %v", err)
		}
		from2, payload2, err := readFrame(&rt)
		if err != nil {
			t.Fatalf("re-decode of accepted frame failed: %v", err)
		}
		if from2 != from || !bytes.Equal(payload2, payload) {
			t.Fatalf("frame did not round-trip: (%d, %x) vs (%d, %x)", from, payload, from2, payload2)
		}
	})
}

// FuzzFrameRoundTrip drives the writer side: every (from, payload) pair under
// the frame bound must survive a write/read cycle, and truncated streams must
// error instead of fabricating data.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(int64(0), []byte{})
	f.Add(int64(-1), []byte("report"))
	f.Add(int64(1<<40), bytes.Repeat([]byte{7}, 100))
	f.Fuzz(func(t *testing.T, from int64, payload []byte) {
		var buf bytes.Buffer
		if err := writeFrame(&buf, int(from), payload); err != nil {
			if len(payload) > maxFrame {
				return // correctly refused
			}
			t.Fatalf("writeFrame(%d, %d bytes): %v", from, len(payload), err)
		}
		full := buf.Bytes()
		gotFrom, gotPayload, err := readFrame(bytes.NewReader(full))
		if err != nil {
			t.Fatalf("readFrame after writeFrame: %v", err)
		}
		if gotFrom != int(from) || !bytes.Equal(gotPayload, payload) {
			t.Fatalf("round-trip mismatch: wrote (%d, %x), read (%d, %x)", from, payload, gotFrom, gotPayload)
		}
		if len(full) > 1 {
			if _, _, err := readFrame(bytes.NewReader(full[:len(full)-1])); err == nil {
				t.Fatal("truncated frame decoded without error")
			} else if err == io.EOF && len(full)-1 >= 12 {
				// Truncation inside the payload must be ErrUnexpectedEOF,
				// not a clean EOF that looks like end-of-stream.
				t.Fatal("payload truncation reported clean EOF")
			}
		}
	})
}
