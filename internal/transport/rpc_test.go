package transport

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRPCRoundTrip(t *testing.T) {
	srv, err := NewRPCServer("127.0.0.1:0", jsonCodec{}, func(req any) (any, error) {
		return req.(int) * 2, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := DialRPC(srv.Addr(), jsonCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 50; i++ {
		resp, err := c.Call(i)
		if err != nil {
			t.Fatal(err)
		}
		if resp.(int) != 2*i {
			t.Fatalf("call %d returned %v, want %d", i, resp, 2*i)
		}
	}
}

func TestRPCManyConnectionsConcurrently(t *testing.T) {
	srv, err := NewRPCServer("127.0.0.1:0", jsonCodec{}, func(req any) (any, error) {
		return req.(int) + 1, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const clients, calls = 16, 30
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			c, err := DialRPC(srv.Addr(), jsonCodec{})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < calls; j++ {
				v := base*1000 + j
				resp, err := c.Call(v)
				if err != nil {
					errs <- err
					return
				}
				if resp.(int) != v+1 {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestRPCServerCloseUnblocksClients(t *testing.T) {
	srv, err := NewRPCServer("127.0.0.1:0", jsonCodec{}, func(req any) (any, error) {
		return req, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := DialRPC(srv.Addr(), jsonCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(7); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	srv.Close() // idempotent
	if _, err := c.Call(8); err == nil {
		t.Fatal("Call succeeded against a closed server")
	} else if !strings.Contains(err.Error(), "rpc") {
		t.Fatalf("unexpected error shape: %v", err)
	}
}

// A call that times out must not poison the connection: when the server
// finally answers the abandoned request, the next Call has to recognize the
// stale correlation id, skip the frame and wait for its own response.
func TestRPCCallTimeoutThenLateResponse(t *testing.T) {
	release := make(chan struct{})
	srv, err := NewRPCServer("127.0.0.1:0", jsonCodec{}, func(req any) (any, error) {
		if req.(int) == 99 {
			<-release // hold the first response past the client's timeout
		}
		return req.(int) * 2, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := DialRPC(srv.Addr(), jsonCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	c.SetTimeout(30 * time.Millisecond)
	if _, err := c.Call(99); !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("slow call returned %v, want ErrCallTimeout", err)
	}

	// Let the stale response for call 1 hit the wire before (and after —
	// either order must work) call 2 goes out.
	close(release)
	c.SetTimeout(5 * time.Second)
	resp, err := c.Call(7)
	if err != nil {
		t.Fatal(err)
	}
	if resp.(int) != 14 {
		t.Fatalf("second call answered with %v, want 14 (stale frame not skipped?)", resp)
	}

	// Timeout zero restores the wait-forever default.
	c.SetTimeout(0)
	if resp, err := c.Call(8); err != nil || resp.(int) != 16 {
		t.Fatalf("call after resetting timeout: %v %v", resp, err)
	}
}
