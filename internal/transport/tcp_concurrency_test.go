package transport

import (
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestConcurrentSendsDisjointPairsProgress is the regression test for the
// global-send-lock bug: Send used to hold one process-wide mutex across
// net.Dial and the frame write, so a single slow peer serialised every sender
// pair in the process. With per-connection locking, a send on a disjoint pair
// must complete while another pair's dial is still blocked.
func TestConcurrentSendsDisjointPairsProgress(t *testing.T) {
	var delivered atomic.Int64
	tr, err := NewTCP([]int{0, 1, 2}, func(int, int, any) { delivered.Add(1) }, jsonCodec{})
	if err != nil {
		t.Fatal(err)
	}

	// Stall the dial for node 2 until the test releases it; every other
	// dial proceeds normally. The gate is deterministic: the fast send
	// below runs strictly while the slow dial is parked.
	slowDialing := make(chan struct{})
	releaseDial := make(chan struct{})
	realDial := tr.dial
	slowAddr := tr.Addr(2)
	tr.dial = func(addr string) (net.Conn, error) {
		if addr == slowAddr {
			close(slowDialing)
			<-releaseDial
		}
		return realDial(addr)
	}

	go tr.Send(0, 2, 42) // parks inside the stalled dial
	<-slowDialing

	// A disjoint pair must not queue behind the stalled dial. Before the
	// fix this Send blocked on the global mutex until releaseDial, so the
	// 2s deadline is pure failure headroom, not a tuning knob.
	fastDone := make(chan struct{})
	go func() {
		tr.Send(1, 0, 7)
		close(fastDone)
	}()
	select {
	case <-fastDone:
	case <-time.After(2 * time.Second):
		t.Fatal("Send(1->0) did not progress while Send(0->2) was stalled dialling: sender pairs are serialised behind one lock")
	}

	close(releaseDial)
	if got := tr.Run(); got != 2 {
		t.Fatalf("delivered %d messages, want 2", got)
	}
	if got := delivered.Load(); got != 2 {
		t.Fatalf("handler saw %d messages, want 2", got)
	}
}

// TestSendSamePairStaysFIFO pins that per-pair ordering survived the switch
// to per-connection locking: many frames from one sender to one receiver
// arrive in send order.
func TestSendSamePairStaysFIFO(t *testing.T) {
	const n = 200
	var got []int
	done := make(chan struct{})
	tr, err := NewTCP([]int{0, 1}, func(from, to int, msg any) {
		got = append(got, msg.(int))
		if len(got) == n {
			close(done)
		}
	}, jsonCodec{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		tr.Send(0, 1, i)
	}
	tr.Run()
	<-done
	for i, v := range got {
		if v != i {
			t.Fatalf("frame %d delivered out of order: got %d", i, v)
		}
	}
}

// TestSendAfterCloseFailsDeterministically is the regression test for the
// close-race bug: Close used to close cached connections but leave them in
// the cache, so a later Send either panicked on a write to a closed socket or
// re-dialled a closed listener (a confusing connection-refused panic at best,
// a frame into a dead peer at worst). Now every post-Close send panics with
// the same explicit message.
func TestSendAfterCloseFailsDeterministically(t *testing.T) {
	tr, err := NewTCP([]int{0, 1}, func(int, int, any) {}, jsonCodec{})
	if err != nil {
		t.Fatal(err)
	}
	// Populate the connection cache, then close everything.
	tr.Send(0, 1, 1)
	tr.Close()

	for name, send := range map[string]func(){
		"cached pair":   func() { tr.Send(0, 1, 2) }, // had a cached conn before Close
		"uncached pair": func() { tr.Send(1, 0, 3) }, // would have dialled fresh
	} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("%s: Send after Close did not fail", name)
				}
				msg, ok := r.(string)
				if !ok || !strings.Contains(msg, "after Close") {
					t.Fatalf("%s: Send after Close failed with %v, want the explicit after-Close panic", name, r)
				}
			}()
			send()
		}()
	}
}

// TestCloseDropsCachedConnections pins the cache cleanup: after Close the
// stale entries are gone, so nothing can reuse a closed socket.
func TestCloseDropsCachedConnections(t *testing.T) {
	tr, err := NewTCP([]int{0, 1}, func(int, int, any) {}, jsonCodec{})
	if err != nil {
		t.Fatal(err)
	}
	tr.Send(0, 1, 1)
	tr.mu.Lock()
	cached := len(tr.conns)
	tr.mu.Unlock()
	if cached != 1 {
		t.Fatalf("expected 1 cached connection before Close, have %d", cached)
	}
	tr.Close()
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.conns != nil {
		t.Fatalf("Close left %d stale entries in the connection cache", len(tr.conns))
	}
	if !tr.isClosed {
		t.Fatal("Close did not set the closed flag Send checks")
	}
}

// gatedConn wraps an established sending connection so a test can park a
// frame write mid-flight while holding the pair lock.
type gatedConn struct {
	net.Conn
	writing chan struct{} // closed once, when the first gated write starts
	release chan struct{}
	once    atomic.Bool
}

func (g *gatedConn) Write(p []byte) (int, error) {
	if g.once.CompareAndSwap(false, true) {
		close(g.writing)
		<-g.release
	}
	return g.Conn.Write(p)
}

// TestCloseWaitsForInFlightWrite pins the race resolution order: a write that
// already holds its pair lock completes on a live socket before Close shuts
// it — a racing Send either wholly precedes the close or fails with the
// deterministic after-Close panic, never with a raw socket error.
func TestCloseWaitsForInFlightWrite(t *testing.T) {
	tr, err := NewTCP([]int{0, 1}, func(int, int, any) {}, jsonCodec{})
	if err != nil {
		t.Fatal(err)
	}
	// Establish the cached connection, then gate its writes.
	tr.Send(0, 1, 1)
	tr.mu.Lock()
	sc := tr.conns[[2]int{0, 1}]
	tr.mu.Unlock()
	gate := &gatedConn{Conn: sc.conn, writing: make(chan struct{}), release: make(chan struct{})}
	sc.mu.Lock()
	sc.conn = gate
	sc.mu.Unlock()

	sendDone := make(chan struct{})
	go func() {
		defer close(sendDone)
		tr.Send(0, 1, 2) // parks inside Write, pair lock held
	}()
	<-gate.writing

	closeDone := make(chan struct{})
	go func() {
		defer close(closeDone)
		tr.Close()
	}()
	// Close must block on the pair lock until the in-flight write finishes.
	select {
	case <-closeDone:
		t.Fatal("Close completed while a Send held the pair lock mid-write")
	case <-time.After(50 * time.Millisecond):
	}
	close(gate.release)
	// The parked Send must now complete cleanly (no panic: its socket was
	// still open), and Close right after it.
	select {
	case <-sendDone:
	case <-time.After(2 * time.Second):
		t.Fatal("in-flight Send did not complete after release")
	}
	select {
	case <-closeDone:
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not complete after the in-flight write drained")
	}
}
