package transport

import (
	"fmt"
	"sync"

	"sflow/internal/metrics"
)

// Faults configures the fault-injecting transport decorator. All rates are
// probabilities in [0, 1]. Every decision is derived by hashing the seed with
// the message's (from, to, per-pair sequence) coordinates — not by consuming
// a shared random stream — so on a deterministic base transport (the DES) a
// fixed seed reproduces the exact same fault pattern, and on the concurrent
// transports the decision for a given message does not depend on goroutine
// interleaving.
type Faults struct {
	// Seed drives every fault decision.
	Seed int64
	// Drop is the probability that a message is silently discarded.
	Drop float64
	// Duplicate is the probability that a delivered message is delivered
	// twice back-to-back (exercising receiver idempotency).
	Duplicate float64
	// Reorder is the probability that a message is held back and released
	// only after the next message passes through the decorator, so it
	// arrives out of order. A message still held when the transport runs
	// out of traffic is never released — indistinguishable from a drop —
	// which a retransmitting protocol layer recovers from.
	Reorder float64
	// CrashRate is the probability that a node is crash-scheduled: after
	// CrashAfter messages touching the node (sent or received) it goes
	// down, and every message to or from it is discarded for the CrashDown
	// following touches.
	CrashRate float64
	// CrashAfter is the number of touches before a rate-scheduled node
	// goes down; 0 derives a per-node value in [1, 8] from the seed.
	CrashAfter int
	// CrashDown is how many touches a crashed node stays down for:
	// positive counts restart the node afterwards, negative means down
	// forever, 0 derives a per-node value in [4, 16) from the seed.
	CrashDown int
	// Crashes is an explicit crash schedule applied in addition to the
	// rate-scheduled ones (tests and repair scenarios pin exact victims).
	Crashes []Crash
	// CrashExempt lists nodes that are never crash-scheduled (drops on
	// their links still apply); protocol virtual nodes and the federation
	// source belong here.
	CrashExempt []int
	// Metrics, when non-nil, receives the fault counters
	// (faults_*_total).
	Metrics *metrics.Registry
}

// Crash takes one node down after a fixed number of touches.
type Crash struct {
	// Node is the victim.
	Node int
	// After is how many messages touching the node pass before it goes
	// down (0: down from the start).
	After int
	// Down is how many further touches the node stays down for; <= 0
	// means it never restarts.
	Down int
}

// validate rejects nonsense rates.
func (f Faults) validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{{"Drop", f.Drop}, {"Duplicate", f.Duplicate}, {"Reorder", f.Reorder}, {"CrashRate", f.CrashRate}} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("transport: fault rate %s = %v out of [0, 1]", r.name, r.v)
		}
	}
	return nil
}

// FaultCounts is a snapshot of what the decorator did.
type FaultCounts struct {
	// Sent counts messages handed to Send.
	Sent int64
	// Delivered counts messages actually forwarded to the base transport
	// (duplicates and released reorders included).
	Delivered int64
	// Dropped counts messages discarded by the loss rate.
	Dropped int64
	// Duplicated counts extra copies injected.
	Duplicated int64
	// Reordered counts messages held back and later released out of
	// order.
	Reordered int64
	// Stranded counts held-back messages never released (effectively
	// dropped at quiescence).
	Stranded int64
	// CrashDropped counts messages discarded because an endpoint was
	// down.
	CrashDropped int64
}

// crashWindow is a resolved down interval over a node's touch counter.
type crashWindow struct {
	after int
	down  int // <= 0: forever
}

type heldMsg struct {
	from, to int
	msg      any
}

// Faulty injects seeded, deterministic faults in front of any Transport.
// Faults act at the send boundary: a crashed node neither receives nor emits
// messages, but a message already in flight when its endpoint goes down is
// still delivered.
type Faulty struct {
	base Transport
	cfg  Faults

	mu       sync.Mutex
	pairSeq  map[[2]int]uint64
	activity map[int]int
	windows  map[int]*crashWindow // nil entry: node never crashes
	held     []heldMsg
	counts   FaultCounts

	insDropped      *metrics.Counter
	insDuplicated   *metrics.Counter
	insReordered    *metrics.Counter
	insCrashDropped *metrics.Counter
}

var _ Transport = (*Faulty)(nil)

// NewFaulty wraps a base transport with the fault injector.
func NewFaulty(base Transport, cfg Faults) (*Faulty, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	f := &Faulty{
		base:     base,
		cfg:      cfg,
		pairSeq:  make(map[[2]int]uint64),
		activity: make(map[int]int),
		windows:  make(map[int]*crashWindow),

		insDropped:      cfg.Metrics.Counter("faults_dropped_total"),
		insDuplicated:   cfg.Metrics.Counter("faults_duplicated_total"),
		insReordered:    cfg.Metrics.Counter("faults_reordered_total"),
		insCrashDropped: cfg.Metrics.Counter("faults_crash_dropped_total"),
	}
	for _, c := range cfg.Crashes {
		w := &crashWindow{after: c.After, down: c.Down}
		if w.after < 0 {
			w.after = 0
		}
		f.windows[c.Node] = w
	}
	for _, n := range cfg.CrashExempt {
		if _, explicit := f.windows[n]; !explicit {
			f.windows[n] = nil
		}
	}
	return f, nil
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed 64-bit hash.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fault-decision salts, one stream per fault type.
const (
	saltDrop = iota + 1
	saltDup
	saltReorder
	saltCrash
	saltCrashAfter
	saltCrashDown
)

// roll returns a uniform [0, 1) value fully determined by the inputs.
func (f *Faulty) roll(salt uint64, fields ...uint64) float64 {
	h := mix64(uint64(f.cfg.Seed)) ^ mix64(salt)
	for _, v := range fields {
		h = mix64(h ^ mix64(v))
	}
	return float64(h>>11) / float64(uint64(1)<<53)
}

// windowOf resolves (lazily, deterministically) whether a node is
// crash-scheduled and over which touch interval. Caller holds f.mu.
func (f *Faulty) windowOf(n int) *crashWindow {
	w, ok := f.windows[n]
	if ok {
		return w
	}
	un := uint64(int64(n))
	if f.cfg.CrashRate > 0 && f.roll(saltCrash, un) < f.cfg.CrashRate {
		after := f.cfg.CrashAfter
		if after == 0 {
			after = 1 + int(mix64(uint64(f.cfg.Seed)^mix64(saltCrashAfter)^mix64(un))%8)
		}
		down := f.cfg.CrashDown
		if down == 0 {
			down = 4 + int(mix64(uint64(f.cfg.Seed)^mix64(saltCrashDown)^mix64(un))%12)
		}
		w = &crashWindow{after: after, down: down}
	}
	f.windows[n] = w
	return w
}

// touch advances a node's activity counter and reports whether the node is
// down at this touch. Caller holds f.mu.
func (f *Faulty) touch(n int) bool {
	a := f.activity[n]
	f.activity[n] = a + 1
	w := f.windowOf(n)
	if w == nil || a < w.after {
		return false
	}
	return w.down <= 0 || a < w.after+w.down
}

// Send implements Transport: it decides the message's fate from the seed and
// its coordinates, forwards surviving copies to the base transport, and
// releases any previously held message afterwards so the held one arrives
// out of order.
func (f *Faulty) Send(from, to int, msg any) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.counts.Sent++

	downFrom := f.touch(from)
	downTo := f.touch(to)
	key := [2]int{from, to}
	seq := f.pairSeq[key]
	f.pairSeq[key] = seq + 1

	ufrom, uto := uint64(int64(from)), uint64(int64(to))
	switch {
	case downFrom || downTo:
		f.counts.CrashDropped++
		f.insCrashDropped.Inc()
	case f.cfg.Drop > 0 && f.roll(saltDrop, ufrom, uto, seq) < f.cfg.Drop:
		f.counts.Dropped++
		f.insDropped.Inc()
	case f.cfg.Reorder > 0 && f.roll(saltReorder, ufrom, uto, seq) < f.cfg.Reorder:
		f.counts.Reordered++
		f.insReordered.Inc()
		f.held = append(f.held, heldMsg{from: from, to: to, msg: msg})
		return // released after the next message, below
	default:
		f.counts.Delivered++
		f.base.Send(from, to, msg)
		if f.cfg.Duplicate > 0 && f.roll(saltDup, ufrom, uto, seq) < f.cfg.Duplicate {
			f.counts.Duplicated++
			f.counts.Delivered++
			f.insDuplicated.Inc()
			f.base.Send(from, to, msg)
		}
	}
	f.flushHeld()
}

// flushHeld releases every held message after the current one. Caller holds
// f.mu.
func (f *Faulty) flushHeld() {
	for _, h := range f.held {
		f.counts.Delivered++
		f.base.Send(h.from, h.to, h.msg)
	}
	f.held = f.held[:0]
}

// After implements Transport by delegation; timers are never faulted.
func (f *Faulty) After(delay int64, fn func()) (cancel func() bool) {
	return f.base.After(delay, fn)
}

// Run implements Transport. Messages still held from pre-Run sends are
// released first; one held during the run with no traffic after it stays
// stranded (the retransmission layer's problem, by design).
func (f *Faulty) Run() int {
	f.mu.Lock()
	f.flushHeld()
	f.mu.Unlock()
	n := f.base.Run()
	f.mu.Lock()
	f.counts.Stranded = int64(len(f.held))
	f.mu.Unlock()
	return n
}

// Now implements Transport by delegation.
func (f *Faulty) Now() int64 { return f.base.Now() }

// Counts returns a snapshot of the injected-fault counters.
func (f *Faulty) Counts() FaultCounts {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counts
}
