package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Request/response framing for long-lived serving on top of the package's
// length-prefixed frame format. Where the Transport implementations deliver
// fire-and-forget protocol messages until quiescence, an RPCServer answers an
// open-ended stream of client calls: each request frame carries a caller-
// chosen correlation id (in the slot the message transports use for the
// sender id) and is answered by exactly one response frame echoing that id.
//
// Requests on one connection are handled serially in arrival order, so a
// connection needs no response-side locking and a closed-loop client (one
// outstanding call) never observes reordering; concurrency comes from many
// connections, each served by its own goroutine. The payload is opaque bytes
// produced by a Codec — the serving layer owns the message types, exactly as
// the protocol layer owns them for the Transport implementations.

// RPCHandler answers one decoded request. It runs on the connection's
// goroutine; returning an error closes that connection (protocol-level
// failures should be encoded into the response message instead).
type RPCHandler func(req any) (resp any, err error)

// RPCServer answers codec-framed request/response calls over loopback (or
// any) TCP.
type RPCServer struct {
	ln      net.Listener
	codec   Codec
	handler RPCHandler

	closed atomic.Bool
	conns  sync.WaitGroup

	// track live connections so Close can unblock their readers.
	mu   sync.Mutex
	live map[net.Conn]struct{}
}

// NewRPCServer listens on addr ("127.0.0.1:0" picks a free port; read it back
// with Addr) and serves each connection serially with handler until Close.
func NewRPCServer(addr string, codec Codec, handler RPCHandler) (*RPCServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: rpc listen %s: %w", addr, err)
	}
	s := &RPCServer{ln: ln, codec: codec, handler: handler, live: make(map[net.Conn]struct{})}
	s.conns.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the address the server accepts connections on.
func (s *RPCServer) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, closes every live connection and waits for the
// per-connection goroutines to drain. Safe to call more than once.
func (s *RPCServer) Close() {
	if s.closed.Swap(true) {
		return
	}
	_ = s.ln.Close()
	s.mu.Lock()
	for c := range s.live {
		_ = c.Close()
	}
	s.mu.Unlock()
	s.conns.Wait()
}

func (s *RPCServer) acceptLoop() {
	defer s.conns.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		s.live[conn] = struct{}{}
		s.mu.Unlock()
		s.conns.Add(1)
		go s.serveConn(conn)
	}
}

func (s *RPCServer) serveConn(conn net.Conn) {
	defer s.conns.Done()
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.live, conn)
		s.mu.Unlock()
	}()
	for {
		id, payload, err := readFrame(conn)
		if err != nil {
			return // EOF, client went away, or server closing
		}
		req, err := s.codec.Decode(payload)
		if err != nil {
			return // corrupt client; drop the connection
		}
		resp, err := s.handler(req)
		if err != nil {
			return
		}
		data, err := s.codec.Encode(resp)
		if err != nil {
			return
		}
		if err := writeFrame(conn, id, data); err != nil {
			return
		}
	}
}

// ErrCallTimeout is returned by RPCClient.Call when a per-call timeout set
// with SetTimeout elapses before the response arrives. The connection stays
// usable: the late response is discarded by correlation id when it finally
// lands, so a subsequent Call is answered by its own response, not a stale
// one.
var ErrCallTimeout = errors.New("transport: rpc call timed out")

// clientFrame is one frame (or terminal read error) delivered by the client's
// reader goroutine.
type clientFrame struct {
	id      int
	payload []byte
	err     error
}

// RPCClient is one client connection to an RPCServer. A client is safe for
// use by one goroutine at a time (a closed loop); open one client per
// concurrent caller — connections are the server's unit of parallelism.
//
// Responses are drained by a dedicated reader goroutine and matched to calls
// by correlation id, so a Call that gave up on its response (ErrCallTimeout)
// does not poison the connection: the abandoned response is skipped as stale
// when the next Call drains the channel.
type RPCClient struct {
	conn    net.Conn
	codec   Codec
	mu      sync.Mutex // serializes Call; guards next and timeout
	next    int
	timeout time.Duration

	frames chan clientFrame
	closed chan struct{}
	once   sync.Once
}

// DialRPC connects to an RPCServer.
func DialRPC(addr string, codec Codec) (*RPCClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: rpc dial %s: %w", addr, err)
	}
	c := &RPCClient{
		conn:   conn,
		codec:  codec,
		frames: make(chan clientFrame),
		closed: make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// readLoop delivers every incoming frame to the (single) caller blocked in
// Call. A read error is delivered once and ends the loop; Close ends it even
// when no Call is waiting to receive.
func (c *RPCClient) readLoop() {
	for {
		id, payload, err := readFrame(c.conn)
		select {
		case c.frames <- clientFrame{id: id, payload: payload, err: err}:
		case <-c.closed:
			return
		}
		if err != nil {
			return
		}
	}
}

// SetTimeout bounds how long each subsequent Call waits for its response;
// zero (the default) waits forever. On expiry Call returns ErrCallTimeout
// and the connection remains usable for further calls.
func (c *RPCClient) SetTimeout(d time.Duration) {
	c.mu.Lock()
	c.timeout = d
	c.mu.Unlock()
}

// Call sends one request and blocks for its response. The correlation id the
// response echoes is verified, so a framing bug surfaces as an error here
// rather than as a silently mismatched response; responses to calls that
// already timed out carry older ids and are skipped.
func (c *RPCClient) Call(req any) (any, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	payload, err := c.codec.Encode(req)
	if err != nil {
		return nil, fmt.Errorf("transport: rpc encode: %w", err)
	}
	c.next++
	id := c.next
	if err := writeFrame(c.conn, id, payload); err != nil {
		return nil, fmt.Errorf("transport: rpc send: %w", err)
	}
	var timeoutC <-chan time.Time
	if c.timeout > 0 {
		timer := time.NewTimer(c.timeout)
		defer timer.Stop()
		timeoutC = timer.C
	}
	for {
		select {
		case f := <-c.frames:
			if f.err != nil {
				return nil, fmt.Errorf("transport: rpc receive: %w", f.err)
			}
			if f.id < id {
				continue // stale response to a call that timed out
			}
			if f.id > id {
				return nil, fmt.Errorf("transport: rpc response id %d does not match request id %d", f.id, id)
			}
			resp, err := c.codec.Decode(f.payload)
			if err != nil {
				return nil, fmt.Errorf("transport: rpc decode: %w", err)
			}
			return resp, nil
		case <-timeoutC:
			return nil, fmt.Errorf("transport: rpc call %d: %w", id, ErrCallTimeout)
		case <-c.closed:
			return nil, fmt.Errorf("transport: rpc call %d: client closed", id)
		}
	}
}

// Close releases the connection and stops the reader goroutine. Safe to call
// more than once.
func (c *RPCClient) Close() {
	c.once.Do(func() {
		close(c.closed)
		_ = c.conn.Close()
	})
}
