package transport

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
)

// Request/response framing for long-lived serving on top of the package's
// length-prefixed frame format. Where the Transport implementations deliver
// fire-and-forget protocol messages until quiescence, an RPCServer answers an
// open-ended stream of client calls: each request frame carries a caller-
// chosen correlation id (in the slot the message transports use for the
// sender id) and is answered by exactly one response frame echoing that id.
//
// Requests on one connection are handled serially in arrival order, so a
// connection needs no response-side locking and a closed-loop client (one
// outstanding call) never observes reordering; concurrency comes from many
// connections, each served by its own goroutine. The payload is opaque bytes
// produced by a Codec — the serving layer owns the message types, exactly as
// the protocol layer owns them for the Transport implementations.

// RPCHandler answers one decoded request. It runs on the connection's
// goroutine; returning an error closes that connection (protocol-level
// failures should be encoded into the response message instead).
type RPCHandler func(req any) (resp any, err error)

// RPCServer answers codec-framed request/response calls over loopback (or
// any) TCP.
type RPCServer struct {
	ln      net.Listener
	codec   Codec
	handler RPCHandler

	closed atomic.Bool
	conns  sync.WaitGroup

	// track live connections so Close can unblock their readers.
	mu   sync.Mutex
	live map[net.Conn]struct{}
}

// NewRPCServer listens on addr ("127.0.0.1:0" picks a free port; read it back
// with Addr) and serves each connection serially with handler until Close.
func NewRPCServer(addr string, codec Codec, handler RPCHandler) (*RPCServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: rpc listen %s: %w", addr, err)
	}
	s := &RPCServer{ln: ln, codec: codec, handler: handler, live: make(map[net.Conn]struct{})}
	s.conns.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the address the server accepts connections on.
func (s *RPCServer) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, closes every live connection and waits for the
// per-connection goroutines to drain. Safe to call more than once.
func (s *RPCServer) Close() {
	if s.closed.Swap(true) {
		return
	}
	_ = s.ln.Close()
	s.mu.Lock()
	for c := range s.live {
		_ = c.Close()
	}
	s.mu.Unlock()
	s.conns.Wait()
}

func (s *RPCServer) acceptLoop() {
	defer s.conns.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		s.live[conn] = struct{}{}
		s.mu.Unlock()
		s.conns.Add(1)
		go s.serveConn(conn)
	}
}

func (s *RPCServer) serveConn(conn net.Conn) {
	defer s.conns.Done()
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.live, conn)
		s.mu.Unlock()
	}()
	for {
		id, payload, err := readFrame(conn)
		if err != nil {
			return // EOF, client went away, or server closing
		}
		req, err := s.codec.Decode(payload)
		if err != nil {
			return // corrupt client; drop the connection
		}
		resp, err := s.handler(req)
		if err != nil {
			return
		}
		data, err := s.codec.Encode(resp)
		if err != nil {
			return
		}
		if err := writeFrame(conn, id, data); err != nil {
			return
		}
	}
}

// RPCClient is one client connection to an RPCServer. A client is safe for
// use by one goroutine at a time (a closed loop); open one client per
// concurrent caller — connections are the server's unit of parallelism.
type RPCClient struct {
	conn  net.Conn
	codec Codec
	next  int
}

// DialRPC connects to an RPCServer.
func DialRPC(addr string, codec Codec) (*RPCClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: rpc dial %s: %w", addr, err)
	}
	return &RPCClient{conn: conn, codec: codec}, nil
}

// Call sends one request and blocks for its response. The correlation id the
// response echoes is verified, so a framing bug surfaces as an error here
// rather than as a silently mismatched response.
func (c *RPCClient) Call(req any) (any, error) {
	payload, err := c.codec.Encode(req)
	if err != nil {
		return nil, fmt.Errorf("transport: rpc encode: %w", err)
	}
	c.next++
	id := c.next
	if err := writeFrame(c.conn, id, payload); err != nil {
		return nil, fmt.Errorf("transport: rpc send: %w", err)
	}
	gotID, data, err := readFrame(c.conn)
	if err != nil {
		return nil, fmt.Errorf("transport: rpc receive: %w", err)
	}
	if gotID != id {
		return nil, fmt.Errorf("transport: rpc response id %d does not match request id %d", gotID, id)
	}
	resp, err := c.codec.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("transport: rpc decode: %w", err)
	}
	return resp, nil
}

// Close releases the connection. Safe to call more than once.
func (c *RPCClient) Close() { _ = c.conn.Close() }
