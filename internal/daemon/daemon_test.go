package daemon

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"testing"

	"sflow/internal/abstract"
	"sflow/internal/metrics"
	"sflow/internal/qos"
	"sflow/internal/reduce"
	"sflow/internal/scenario"
)

// testScenario builds a small seeded workload.
func testScenario(t testing.TB, seed int64) *scenario.Scenario {
	t.Helper()
	s, err := scenario.Generate(scenario.Config{
		Seed: seed, NetworkSize: 20, Services: 5,
		InstancesPerService: 3, Kind: scenario.KindGeneral,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// startServer builds a server over the scenario and serves it on loopback.
func startServer(t testing.TB, sc *scenario.Scenario, opts Options) *Server {
	t.Helper()
	srv := New(sc.Overlay, opts)
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		srv.Close()
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

func TestSolveOverTCPMatchesDirectComputation(t *testing.T) {
	sc := testScenario(t, 1)
	srv := startServer(t, sc, Options{Workers: 1})

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	resp, err := c.Solve("heuristic", sc.Req, sc.SourceNID)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Err != "" {
		t.Fatalf("solve failed: %s", resp.Err)
	}
	if resp.Epoch == 0 {
		t.Fatal("solve response carries no epoch")
	}

	// The served answer must equal the same algorithm run directly over the
	// same state.
	ap := qos.ComputeAllPairsWorkers(sc.Overlay, 1)
	ag, err := abstract.FromAllPairs(sc.Overlay, sc.Req, ap)
	if err != nil {
		t.Fatal(err)
	}
	want, err := reduce.Solve(ag, sc.SourceNID, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantFlow, err := json.Marshal(want.Flow)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp.Flow, wantFlow) {
		t.Fatalf("served flow %s\nwant %s", resp.Flow, wantFlow)
	}
	if resp.Metric == nil || *resp.Metric != want.Metric {
		t.Fatalf("served metric %+v, want %+v", resp.Metric, want.Metric)
	}
}

func TestMutatePublishesNewEpochAndReadsOwnWrites(t *testing.T) {
	sc := testScenario(t, 2)
	srv := startServer(t, sc, Options{Workers: 1})

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	before, err := c.Info()
	if err != nil {
		t.Fatal(err)
	}

	// Grow bandwidth on some existing link (kind-independent, always legal).
	links := sc.Overlay.Links()
	if len(links) == 0 {
		t.Fatal("scenario has no links")
	}
	l := links[0]
	resp, err := c.Mutate(Mutation{Kind: MutGrowBandwidth, From: l.From, To: l.To, Delta: 1})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Err != "" {
		t.Fatalf("mutate failed: %s", resp.Err)
	}
	if resp.Epoch <= before.Epoch {
		t.Fatalf("mutation did not advance the epoch: %d then %d", before.Epoch, resp.Epoch)
	}

	// A solve on the same connection must observe at least that epoch.
	after, err := c.Solve("heuristic", sc.Req, sc.SourceNID)
	if err != nil {
		t.Fatal(err)
	}
	if after.Epoch < resp.Epoch {
		t.Fatalf("read after write saw epoch %d, mutation published %d", after.Epoch, resp.Epoch)
	}

	// Unknown mutation kinds fail without publishing.
	bad, err := c.Mutate(Mutation{Kind: "teleport"})
	if err != nil {
		t.Fatal(err)
	}
	if bad.Err == "" {
		t.Fatal("unknown mutation kind accepted")
	}
	if bad.Epoch != after.Epoch {
		t.Fatalf("failed mutation published an epoch: %d -> %d", after.Epoch, bad.Epoch)
	}
}

func TestRepairRemovesUnresponsiveInstances(t *testing.T) {
	sc := testScenario(t, 3)
	srv := startServer(t, sc, Options{Workers: 1})

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Pick a non-source instance with a spare sibling.
	victim := -1
	for _, sid := range sc.Req.Services() {
		if sid == sc.Req.Source() {
			continue
		}
		if insts := sc.Overlay.InstancesOf(sid); len(insts) > 1 {
			victim = insts[0]
			break
		}
	}
	if victim < 0 {
		t.Skip("no spare instance to fail")
	}
	before, err := c.Info()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Repair(sc.Req, sc.SourceNID, []int{victim})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Epoch <= before.Epoch {
		t.Fatal("repair did not publish a new epoch")
	}
	after, err := c.Info()
	if err != nil {
		t.Fatal(err)
	}
	if after.Instances != before.Instances-1 {
		t.Fatalf("repair left %d instances, want %d", after.Instances, before.Instances-1)
	}
}

func TestEpochRetirementWaitsForReaders(t *testing.T) {
	sc := testScenario(t, 4)
	srv := New(sc.Overlay, Options{Workers: 1})
	defer srv.Close()

	// Pin the current epoch as a slow reader would.
	pinned := srv.pin()
	firstID := pinned.id

	// Publish two new epochs directly (the writer is idle; publish is
	// writer-side code and the test is the only writer here).
	srv.publish(srv.sess.Snapshot())
	srv.publish(srv.sess.Snapshot())

	if got := srv.Epoch(); got != firstID+2 {
		t.Fatalf("epoch = %d, want %d", got, firstID+2)
	}
	// The pinned epoch must survive both sweeps; the intermediate epoch
	// (published and superseded with no readers) must be gone.
	if got := srv.LiveEpochs(); got != 2 {
		t.Fatalf("live epochs = %d, want 2 (current + pinned)", got)
	}
	// The pinned epoch still answers from its frozen state.
	if want := qos.ComputeAllPairsWorkers(pinned.ov, 1); !qos.TablesEqual(pinned.ap, want) {
		t.Fatal("pinned epoch no longer matches its own overlay")
	}

	// Unpin; the next publication sweeps it away.
	unpin(pinned)
	srv.publish(srv.sess.Snapshot())
	if got := srv.LiveEpochs(); got != 1 {
		t.Fatalf("live epochs after drain = %d, want 1", got)
	}
}

func TestRetiredCounterMatchesSweeps(t *testing.T) {
	sc := testScenario(t, 5)
	reg := metrics.New()
	srv := New(sc.Overlay, Options{Workers: 1, Metrics: reg})
	defer srv.Close()

	for i := 0; i < 4; i++ {
		srv.publish(srv.sess.Snapshot())
	}
	if got, want := srv.retiredTotal.Value(), int64(4); got != want {
		t.Fatalf("retired counter = %d, want %d", got, want)
	}
	if got, want := srv.published.Value(), int64(5); got != want {
		t.Fatalf("published counter = %d, want %d (initial + 4)", got, want)
	}
}

// TestSolveReadPathAcquiresNoMutexes pins the acceptance criterion that the
// RPC read path performs zero mutex acquisitions: with mutex profiling at
// its most sensitive setting and many goroutines hammering Solve
// concurrently, the contention profile must not contain a single sample
// passing through the solve path. (The profile records contended
// acquisitions; a path with no mutexes at all can never appear in it, while
// the old-style "one big lock" server saturates it instantly under this
// load.)
func TestSolveReadPathAcquiresNoMutexes(t *testing.T) {
	sc := testScenario(t, 6)
	srv := New(sc.Overlay, Options{Workers: 1, Metrics: metrics.New()})
	defer srv.Close()

	// Warm up once so lazy initialisation (JSON type caches and friends)
	// does not count against the steady-state path.
	if _, err := srv.Handle(&Request{Op: OpSolve, Algorithm: "heuristic", Requirement: sc.Req, Source: sc.SourceNID}); err != nil {
		t.Fatal(err)
	}

	old := runtime.SetMutexProfileFraction(1)
	defer runtime.SetMutexProfileFraction(old)

	const goroutines, iters = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				out, err := srv.Handle(&Request{Op: OpSolve, Algorithm: "heuristic", Requirement: sc.Req, Source: sc.SourceNID})
				if err != nil || out.(*Response).Err != "" {
					panic(fmt.Sprintf("solve failed: %v %v", err, out))
				}
			}
		}()
	}
	wg.Wait()

	var buf bytes.Buffer
	if err := pprof.Lookup("mutex").WriteTo(&buf, 1); err != nil {
		t.Fatal(err)
	}
	profile := buf.String()
	for _, frame := range []string{
		"daemon.(*Server).solve",
		"daemon.(*Server).pin",
		"abstract.FromAllPairs",
		"reduce.Solve",
	} {
		if strings.Contains(profile, frame) {
			t.Fatalf("mutex contention recorded on the read path (%s):\n%s", frame, profile)
		}
	}
}

// TestConcurrentClientsUnderChurn is the package-level race smoke: many TCP
// clients solving while another client streams mutations. Run with -race in
// `make check`; correctness of the answers is pinned by the root-level
// equivalence battery.
func TestConcurrentClientsUnderChurn(t *testing.T) {
	sc := testScenario(t, 7)
	srv := startServer(t, sc, Options{Workers: 1})

	links := sc.Overlay.Links()
	if len(links) < 2 {
		t.Skip("not enough links to churn")
	}

	const clients, calls = 4, 25
	var wg sync.WaitGroup
	errs := make(chan error, clients+1)

	wg.Add(1)
	go func() { // writer client
		defer wg.Done()
		c, err := Dial(srv.Addr())
		if err != nil {
			errs <- err
			return
		}
		defer c.Close()
		for i := 0; i < calls; i++ {
			l := links[i%len(links)]
			delta := int64(1)
			kind := MutGrowBandwidth
			if i%2 == 1 {
				kind = MutReduceBandwidth
			}
			if _, err := c.Mutate(Mutation{Kind: kind, From: l.From, To: l.To, Delta: delta}); err != nil {
				errs <- err
				return
			}
		}
	}()
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func() { // reader clients
			defer wg.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			lastEpoch := uint64(0)
			for i := 0; i < calls; i++ {
				resp, err := c.Solve("heuristic", sc.Req, sc.SourceNID)
				if err != nil {
					errs <- err
					return
				}
				if resp.Epoch < lastEpoch {
					errs <- fmt.Errorf("epoch went backwards: %d then %d", lastEpoch, resp.Epoch)
					return
				}
				lastEpoch = resp.Epoch
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
