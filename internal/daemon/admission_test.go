package daemon

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"sflow/internal/flow"
	"sflow/internal/overlay"
	"sflow/internal/provision"
)

// sortedOverlayLinks canonicalizes an overlay's links for deep comparison.
func sortedOverlayLinks(ov *overlay.Overlay) []overlay.Link {
	ls := ov.Links()
	sort.Slice(ls, func(i, j int) bool {
		if ls[i].From != ls[j].From {
			return ls[i].From < ls[j].From
		}
		return ls[i].To < ls[j].To
	})
	return ls
}

func TestAdmitReleaseTenantsRPC(t *testing.T) {
	sc := testScenario(t, 5)
	srv := startServer(t, sc, Options{Workers: 1,
		Admission: provision.AllocatorOptions{Classes: 2}})

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	resp, err := c.Admit("heuristic", sc.Req, sc.SourceNID, 50, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Err != "" {
		t.Fatalf("admit: %s", resp.Err)
	}
	if resp.Ticket == 0 || resp.Metric == nil || len(resp.Flow) == 0 {
		t.Fatalf("admit response = %+v", resp)
	}
	// The served flow graph round-trips and is the allocator's flow.
	var fg flow.Graph
	if err := json.Unmarshal(resp.Flow, &fg); err != nil {
		t.Fatalf("decoding served flow: %v", err)
	}

	tr, err := c.Tenants()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Tenants) != 1 || tr.Tenants[0].Ticket != resp.Ticket || tr.Tenants[0].Class != 1 {
		t.Fatalf("tenants = %+v", tr.Tenants)
	}
	if tr.Classes[1].Admitted != 1 || tr.Classes[1].Active != 1 {
		t.Fatalf("classes = %+v", tr.Classes)
	}

	rr, err := c.Release(resp.Ticket)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Err != "" {
		t.Fatalf("release: %s", rr.Err)
	}
	// Double release reports the missing ticket in-band.
	rr2, err := c.Release(resp.Ticket)
	if err != nil {
		t.Fatal(err)
	}
	if rr2.Err == "" {
		t.Fatal("double release over RPC succeeded")
	}

	// Rejections travel with their machine-readable reason.
	bad, err := c.Admit("heuristic", sc.Req, sc.SourceNID, 1<<40, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bad.Err == "" || bad.Reason == "" {
		t.Fatalf("oversized admit = %+v, want in-band rejection with reason", bad)
	}
	// Unknown algorithms are in-band errors too.
	ua, err := c.Admit("nope", sc.Req, sc.SourceNID, 10, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ua.Err == "" {
		t.Fatal("unknown algorithm accepted")
	}
}

// The serving-layer acceptance criterion: concurrent clients admitting and
// releasing over RPC are pinned to the allocator's recorded serialization —
// a sequential replay of the log reproduces the admitted set, per-class
// counters and residual overlay exactly.
func TestConcurrentAdmitRPCMatchesSequentialReplay(t *testing.T) {
	const (
		clients   = 8
		perClient = 90 // 720 operations total
	)
	sc := testScenario(t, 9)
	admOpts := provision.AllocatorOptions{
		Classes: 3,
		Quotas:  []int{30, 0, 0},
		Preempt: true,
	}
	srv := startServer(t, sc, Options{Workers: 1, Admission: admOpts})

	algs := []string{"heuristic", "fixed", "random"}
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			var mine []uint64
			for i := 0; i < perClient; i++ {
				if len(mine) > 0 && rng.Intn(4) == 0 {
					k := rng.Intn(len(mine))
					if _, err := c.Release(mine[k]); err != nil {
						t.Errorf("client %d: release: %v", g, err)
						return
					}
					// An in-band error is fine: the ticket may have been
					// preempted by another client's class-2 admission.
					mine = append(mine[:k], mine[k+1:]...)
					continue
				}
				resp, err := c.Admit(algs[rng.Intn(len(algs))], sc.Req, sc.SourceNID,
					int64(20+rng.Intn(120)), rng.Intn(3), 0)
				if err != nil {
					t.Errorf("client %d: admit transport: %v", g, err)
					return
				}
				if resp.Err == "" {
					mine = append(mine, resp.Ticket)
				}
			}
		}(g)
	}
	wg.Wait()

	alloc := srv.Allocator()
	log := alloc.Log()
	if len(log) < 500 {
		t.Fatalf("log has %d events, want >= 500", len(log))
	}

	seq, err := provision.Replay(sc.Overlay, admOpts, log,
		func(ev provision.Event) provision.Algorithm {
			alg, err := admissionAlgorithm(ev.Tag)
			if err != nil {
				t.Fatalf("log event with unknown algorithm tag %q", ev.Tag)
			}
			return alg
		})
	if err != nil {
		t.Fatalf("replay diverged: %v", err)
	}
	if got, want := alloc.Tenants(), seq.Tenants(); !reflect.DeepEqual(got, want) {
		t.Fatalf("tenants diverge:\nlive %+v\n seq %+v", got, want)
	}
	if got, want := alloc.ClassCounters(), seq.ClassCounters(); !reflect.DeepEqual(got, want) {
		t.Fatalf("class counters diverge:\nlive %+v\n seq %+v", got, want)
	}
	if got, want := sortedOverlayLinks(alloc.Residual()), sortedOverlayLinks(seq.Residual()); !reflect.DeepEqual(got, want) {
		t.Fatalf("residual overlays diverge")
	}

	// The tenants RPC reports the same final state.
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	tr, err := c.Tenants()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr.Tenants, alloc.Tenants()) {
		t.Fatalf("tenants RPC diverges from allocator:\nrpc  %+v\nlive %+v", tr.Tenants, alloc.Tenants())
	}
	if !reflect.DeepEqual(tr.Classes, alloc.ClassCounters()) {
		t.Fatalf("classes RPC diverges from allocator")
	}
}

// Admissions account against the boot overlay independent of epoch
// mutations: an epoch change must not disturb admitted reservations.
func TestAdmissionIndependentOfEpochMutations(t *testing.T) {
	sc := testScenario(t, 3)
	srv := startServer(t, sc, Options{Workers: 1})
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	resp, err := c.Admit("heuristic", sc.Req, sc.SourceNID, 40, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Err != "" {
		t.Fatalf("admit: %s", resp.Err)
	}
	before := sortedOverlayLinks(srv.Allocator().Residual())

	// Mutate the served overlay: a fresh epoch publishes.
	links := sc.Overlay.Links()
	mr, err := c.Mutate(Mutation{Kind: MutRemoveLink, From: links[0].From, To: links[0].To})
	if err != nil {
		t.Fatal(err)
	}
	if mr.Err != "" {
		t.Fatalf("mutate: %s", mr.Err)
	}
	if got := sortedOverlayLinks(srv.Allocator().Residual()); !reflect.DeepEqual(got, before) {
		t.Fatal("epoch mutation leaked into the admission residual")
	}
	// And the tenant is still admitted.
	tr, err := c.Tenants()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Tenants) != 1 {
		t.Fatalf("tenants after mutation = %+v", tr.Tenants)
	}
}
