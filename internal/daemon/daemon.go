// Package daemon implements sflowd's serving core: a long-lived server that
// owns one overlay and answers Solve/Repair/mutation RPCs from many
// concurrent clients.
//
// Reads never lock. The server keeps the overlay and its all-pairs
// shortest-widest table in immutable epochs: a solve handler loads the
// current epoch through one atomic pointer read, pins it with an atomic
// reader count, and routes entirely against that frozen state — no mutex
// appears anywhere on the path (metrics handles are atomics, the abstract
// build is allocation-plus-arithmetic). Writes are serialized through a
// single writer goroutine that batches queued mutations into one
// session.Session pass, takes a session.Snapshot, and publishes it as the
// next epoch with one atomic store. Old epochs are retired — dropped from
// the tracked list and counted — once their reader count drains to zero;
// in-flight readers keep answering from the epoch they pinned. See DESIGN.md,
// "Serving architecture".
package daemon

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"sflow/internal/abstract"
	"sflow/internal/baseline"
	"sflow/internal/control"
	"sflow/internal/core"
	"sflow/internal/exact"
	"sflow/internal/flow"
	"sflow/internal/metrics"
	"sflow/internal/overlay"
	"sflow/internal/provision"
	"sflow/internal/qos"
	"sflow/internal/reduce"
	"sflow/internal/reopt"
	"sflow/internal/require"
	"sflow/internal/session"
	"sflow/internal/transport"
)

// epoch is one immutable publication: a frozen overlay plus the matching
// all-pairs table. readers counts the solve/info handlers currently routing
// against it; the writer retires an epoch only after readers drains to zero.
type epoch struct {
	id uint64
	ov *overlay.Overlay
	// ap is the epoch's shortest-widest table: an eager *qos.AllPairs, or in
	// lazy mode a pinned *qos.LazyAllPairs whose still-missing rows compute
	// on first read (single-flight across the epoch's concurrent readers)
	// from the epoch's own frozen graph — immutable either way.
	ap      qos.Table
	readers atomic.Int64
}

// Options tunes a Server. The zero value is ready to use.
type Options struct {
	// Workers bounds the session's recompute fan-out (see session.Options).
	Workers int
	// Lazy runs the session and every published epoch demand-driven (see
	// session.Options.Lazy): no all-pairs computation at boot, rows
	// materialize the first time a solve reads them, churn evicts instead of
	// recomputing. Served answers are byte-identical to eager mode.
	Lazy bool
	// MaxRows bounds the lazy session's resident row cache (see
	// session.Options.MaxRows): under a drifting read-set load the server
	// holds at most MaxRows materialized rows per table, evicting the least
	// recently read. <= 0 means unbounded; ignored unless Lazy is set.
	MaxRows int
	// Metrics, when non-nil, receives server counters and latency
	// histograms in addition to the session's own instrumentation.
	Metrics *metrics.Registry
	// PublishHook, when non-nil, runs on the writer goroutine with every
	// snapshot immediately before it becomes visible to readers. Tests use
	// it to record the exact state each epoch was published with.
	PublishHook func(*session.Snapshot)
	// Admission tunes the server's multi-tenant capacity allocator
	// (priority classes, quotas, preemption, instance capacity). The
	// allocator accounts against a private residual copy of the boot
	// overlay: admissions reserve capacity from the boot-time substrate,
	// independent of later epoch mutations, so admission decisions stay
	// replayable from the recorded log alone. Admission.Metrics defaults to
	// Options.Metrics.
	Admission provision.AllocatorOptions
	// Reopt configures the congestion-driven reoptimizer. The link-load
	// ledger behind the `links` RPC is always on; the background migration
	// loop runs only when Reopt.Enabled is set.
	Reopt ReoptOptions
}

// ReoptOptions tunes the server's congestion-driven reoptimizer.
type ReoptOptions struct {
	// Enabled starts the background reoptimizer loop: every Interval the
	// planner feeds the link ledger to the hysteresis detector and migrates
	// tenants off sustained-hot links (no-regression gated; see
	// internal/reopt).
	Enabled bool
	// HotThreshold, ClearThreshold and Sustain configure the detector (see
	// reopt.DetectorConfig for defaults).
	HotThreshold   float64
	ClearThreshold float64
	Sustain        int
	// Interval is the planner's step period. <=0 defaults to 1s.
	Interval time.Duration
	// MaxMovesPerLink caps migrations per hot link per step (default 8).
	MaxMovesPerLink int
}

// writerCmd is one queued write-side request and its reply slot.
type writerCmd struct {
	req   *Request
	reply chan *Response
}

// Server owns one overlay behind an epoch-published session.
type Server struct {
	sess *session.Session // owned by the writer goroutine after New
	cur  atomic.Pointer[epoch]
	hook func(*session.Snapshot)

	// alloc is the multi-tenant capacity allocator; it serializes its own
	// operations, so admit/release/tenants handlers run on RPC goroutines
	// without involving the epoch writer.
	alloc *provision.Allocator

	// ledger folds the allocator's committed transitions into per-link
	// loads (always on — it backs the `links` RPC); planner is the
	// congestion-driven migrator, nil unless Options.Reopt.Enabled.
	ledger    *reopt.Ledger
	planner   *reopt.Planner
	reoptDone chan struct{}

	mutCh chan writerCmd
	stop  chan struct{}
	done  chan struct{}

	rpc    *transport.RPCServer
	closed atomic.Bool

	// retired epochs not yet drained of readers; writer-goroutine-owned.
	retired []*epoch

	// Pre-resolved metric handles: updates on the read path are pure
	// atomics (resolving a name takes the registry lock, so it happens
	// once, here). All are nil-safe no-ops without a registry.
	solves       *metrics.Counter
	mutations    *metrics.Counter
	repairs      *metrics.Counter
	admits       *metrics.Counter
	releases     *metrics.Counter
	published    *metrics.Counter
	retiredTotal *metrics.Counter
	solveUS      *metrics.Histogram
	admitUS      *metrics.Histogram
	publishUS    *metrics.Histogram
}

// New builds a server over a private clone of ov, publishes the initial
// epoch and starts the writer goroutine. Call Serve to accept clients and
// Close to shut down.
func New(ov *overlay.Overlay, opts Options) *Server {
	if opts.Admission.Metrics == nil {
		opts.Admission.Metrics = opts.Metrics
	}
	// The link ledger observes every committed allocator transition; it must
	// be installed before the first admission, so it is wired here rather
	// than left to callers. A caller-provided observer still sees
	// everything, after the ledger.
	ledger := reopt.NewLedger(ov, opts.Metrics)
	if prev := opts.Admission.Observer; prev != nil {
		opts.Admission.Observer = fanoutObserver{ledger, prev}
	} else {
		opts.Admission.Observer = ledger
	}
	s := &Server{
		sess: session.New(ov, session.Options{
			Workers: opts.Workers, Metrics: opts.Metrics,
			Lazy: opts.Lazy, MaxRows: opts.MaxRows,
		}),
		hook:      opts.PublishHook,
		alloc:     provision.NewAllocator(ov, opts.Admission),
		ledger:    ledger,
		reoptDone: make(chan struct{}),
		mutCh:     make(chan writerCmd, 256),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	s.planner = reopt.NewPlanner(s.alloc, ledger, ov, reopt.PlannerConfig{
		Detector: reopt.DetectorConfig{
			HotThreshold:   opts.Reopt.HotThreshold,
			ClearThreshold: opts.Reopt.ClearThreshold,
			Sustain:        opts.Reopt.Sustain,
		},
		MaxMovesPerLink: opts.Reopt.MaxMovesPerLink,
		Workers:         opts.Workers,
		Lazy:            opts.Lazy,
		MaxRows:         opts.MaxRows,
		Metrics:         opts.Metrics,
	})
	if reg := opts.Metrics; reg != nil {
		s.solves = reg.Counter("daemon_solves_total")
		s.mutations = reg.Counter("daemon_mutations_total")
		s.repairs = reg.Counter("daemon_repairs_total")
		s.admits = reg.Counter("daemon_admits_total")
		s.releases = reg.Counter("daemon_releases_total")
		s.published = reg.Counter("daemon_epochs_published_total")
		s.retiredTotal = reg.Counter("daemon_epochs_retired_total")
		s.solveUS = reg.Histogram("daemon_solve_us",
			metrics.ExponentialBounds(10, 10, 6), metrics.Volatile())
		s.admitUS = reg.Histogram("daemon_admit_us",
			metrics.ExponentialBounds(10, 10, 6), metrics.Volatile())
		s.publishUS = reg.Histogram("daemon_publish_us",
			metrics.ExponentialBounds(10, 10, 6), metrics.Volatile())
	}
	s.publish(s.sess.Snapshot())
	go s.writerLoop()
	if opts.Reopt.Enabled {
		interval := opts.Reopt.Interval
		if interval <= 0 {
			interval = time.Second
		}
		go s.reoptLoop(interval)
	} else {
		close(s.reoptDone)
	}
	return s
}

// fanoutObserver forwards allocator transitions to several observers in
// order.
type fanoutObserver []provision.Observer

func (f fanoutObserver) TenantAdmitted(t *provision.Ticket) {
	for _, o := range f {
		o.TenantAdmitted(t)
	}
}

func (f fanoutObserver) TenantDeparted(t *provision.Ticket, kind provision.EventKind) {
	for _, o := range f {
		o.TenantDeparted(t, kind)
	}
}

func (f fanoutObserver) TenantMigrated(old, fresh *provision.Ticket) {
	for _, o := range f {
		o.TenantMigrated(old, fresh)
	}
}

// reoptLoop is the background reoptimizer: one planner step per tick. The
// planner serializes its migrations through the allocator's writer loop, so
// the only concurrency here is with admit/release RPC handlers — exactly the
// traffic the planner is built to run against.
func (s *Server) reoptLoop(interval time.Duration) {
	defer close(s.reoptDone)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
			s.planner.Step()
		}
	}
}

// ReoptimizeOnce runs one synchronous planner step and returns its report.
// It is the test/CLI entry point; the background loop (Options.Reopt.Enabled)
// calls the same Step. Do not call concurrently with a running background
// loop.
func (s *Server) ReoptimizeOnce() reopt.StepReport { return s.planner.Step() }

// Serve starts answering RPCs on addr ("127.0.0.1:0" picks a free port; read
// it back with Addr).
func (s *Server) Serve(addr string) error {
	rpc, err := transport.NewRPCServer(addr, serverCodec{}, s.Handle)
	if err != nil {
		return err
	}
	s.rpc = rpc
	return nil
}

// Addr returns the served address. Panics if Serve was not called.
func (s *Server) Addr() string { return s.rpc.Addr() }

// Close drains client connections, then stops the writer goroutine. Safe to
// call more than once. The order matters: the RPC server is closed first so
// every in-flight handler (possibly parked on the writer queue) completes
// while the writer is still alive.
func (s *Server) Close() {
	if s.closed.Swap(true) {
		return
	}
	if s.rpc != nil {
		s.rpc.Close()
	}
	close(s.stop)
	<-s.done
	// The reoptimizer stops before the allocator: a planner step mid-flight
	// still needs the allocator's writer loop for its migrations.
	<-s.reoptDone
	// The allocator closes after the RPC server: no admit/release handler
	// can still be running.
	s.alloc.Close()
	// Final retirement sweep: with no handlers left every tracked epoch has
	// drained.
	s.sweepRetired()
}

// Allocator exposes the server's capacity allocator; tests use it to run the
// sequential-replay oracle against the recorded admission log.
func (s *Server) Allocator() *provision.Allocator { return s.alloc }

// Epoch returns the currently published epoch id.
func (s *Server) Epoch() uint64 { return s.cur.Load().id }

// LiveEpochs returns how many published-then-superseded epochs are still
// tracked because readers had them pinned at the last sweep, plus one for
// the current epoch.
func (s *Server) LiveEpochs() int {
	// Writer-owned slice: only meaningful when the writer is quiescent
	// (tests); the current epoch is always live.
	return len(s.retired) + 1
}

// Handle answers one decoded request. It is the transport.RPCHandler the
// server registers; tests may call it directly. Read operations (solve,
// info) run entirely on the caller's goroutine against the pinned epoch;
// write operations queue to the writer goroutine and block for their reply.
func (s *Server) Handle(req any) (any, error) {
	r, ok := req.(*Request)
	if !ok {
		return nil, fmt.Errorf("daemon: handling %T, want *Request", req)
	}
	switch r.Op {
	case OpSolve:
		return s.solve(r), nil
	case OpInfo:
		return s.info(), nil
	case OpAdmit:
		return s.admit(r), nil
	case OpRelease:
		return s.release(r), nil
	case OpTenants:
		return s.tenants(), nil
	case OpLinks:
		return s.links(), nil
	case OpMutate, OpRepair, OpStats:
		return s.submit(r), nil
	default:
		return &Response{Err: fmt.Sprintf("daemon: unknown op %q", r.Op)}, nil
	}
}

// --- read path -------------------------------------------------------------

// pin loads the current epoch and registers as a reader. The matching
// unpin MUST run on the same epoch. Both are single atomic operations.
func (s *Server) pin() *epoch {
	e := s.cur.Load()
	e.readers.Add(1)
	return e
}

func unpin(e *epoch) { e.readers.Add(-1) }

// solution is one centralised algorithm outcome over an abstract graph.
type solution struct {
	flow   *flow.Graph
	metric qos.Metric
}

// abstractSolver mirrors the facade's per-algorithm dispatch, rebuilt here
// over the internal packages (the daemon cannot import the root package).
// Byte-identical outcomes to sflow.Solve are asserted by the root-level
// equivalence battery.
type abstractSolver func(ag *abstract.Graph, src int) (*solution, error)

var solvers = map[string]abstractSolver{
	"baseline": func(ag *abstract.Graph, src int) (*solution, error) {
		r, err := baseline.Solve(ag, src, nil)
		if err != nil {
			return nil, err
		}
		return &solution{flow: r.Flow, metric: r.Metric}, nil
	},
	"heuristic": func(ag *abstract.Graph, src int) (*solution, error) {
		r, err := reduce.Solve(ag, src, nil)
		if err != nil {
			return nil, err
		}
		return &solution{flow: r.Flow, metric: r.Metric}, nil
	},
	"optimal": func(ag *abstract.Graph, src int) (*solution, error) {
		r, err := exact.Solve(ag, src, exact.Options{})
		if err != nil {
			return nil, err
		}
		return &solution{flow: r.Flow, metric: r.Metric}, nil
	},
	"fixed": func(ag *abstract.Graph, src int) (*solution, error) {
		r, err := control.Fixed(ag, src)
		if err != nil {
			return nil, err
		}
		return &solution{flow: r.Flow, metric: r.Metric}, nil
	},
	"random": func(ag *abstract.Graph, src int) (*solution, error) {
		// The facade defaults a nil Rng to a fixed seed per call; match it
		// so served and stateless solves agree byte for byte.
		r, err := control.Random(ag, src, rand.New(rand.NewSource(1)))
		if err != nil {
			return nil, err
		}
		return &solution{flow: r.Flow, metric: r.Metric}, nil
	},
	"servicepath": func(ag *abstract.Graph, src int) (*solution, error) {
		r, err := control.ServicePath(ag, src)
		if err != nil {
			return nil, err
		}
		if !r.Complete {
			return nil, &core.PartialFederationError{Flow: r.Flow}
		}
		return &solution{flow: r.Flow, metric: r.Metric}, nil
	},
}

// solve answers OpSolve against the pinned epoch. Everything on this path is
// lock-free: one atomic epoch load, atomic reader pin, a pure-computation
// abstract build and algorithm run, atomic metric updates.
func (s *Server) solve(r *Request) *Response {
	start := time.Now()
	e := s.pin()
	defer unpin(e)
	resp := &Response{Epoch: e.id}

	fn, ok := solvers[r.Algorithm]
	if !ok {
		resp.Err = fmt.Sprintf("daemon: unknown algorithm %q", r.Algorithm)
		return resp
	}
	if r.Requirement == nil {
		resp.Err = "daemon: solve without a requirement"
		return resp
	}
	sol, err := func() (*solution, error) {
		ag, err := abstract.FromAllPairs(e.ov, r.Requirement, e.ap)
		if err != nil {
			return nil, err
		}
		return fn(ag, r.Source)
	}()
	if err != nil {
		resp.Err = err.Error()
		var partial *core.PartialFederationError
		if errors.As(err, &partial) && partial.Flow != nil {
			resp.Partial = true
			if data, merr := json.Marshal(partial.Flow); merr == nil {
				resp.Flow = data
			}
		}
	} else {
		data, merr := json.Marshal(sol.flow)
		if merr != nil {
			resp.Err = fmt.Sprintf("daemon: encoding flow: %v", merr)
		} else {
			resp.Flow = data
			m := sol.metric
			resp.Metric = &m
		}
	}
	s.solves.Inc()
	s.solveUS.Observe(time.Since(start).Microseconds())
	return resp
}

// info answers OpInfo against the pinned epoch.
func (s *Server) info() *Response {
	e := s.pin()
	defer unpin(e)
	resp := &Response{Epoch: e.id, Instances: e.ov.NumInstances()}
	if data, err := json.Marshal(e.ov); err == nil {
		resp.Overlay = data
	} else {
		resp.Err = fmt.Sprintf("daemon: encoding overlay: %v", err)
	}
	return resp
}

// --- admission path --------------------------------------------------------

// admissionAlgorithm adapts one named solver to the allocator's Algorithm
// shape, federating over the allocator's residual overlay. The daemon serves
// the deterministic registry algorithms only ("random" included: its rng is
// re-seeded per call), so every recorded admission log replays exactly.
func admissionAlgorithm(name string) (provision.Algorithm, error) {
	fn, ok := solvers[name]
	if !ok {
		return nil, fmt.Errorf("daemon: unknown algorithm %q", name)
	}
	return func(ov *overlay.Overlay, req *require.Requirement, src int) (*flow.Graph, qos.Metric, error) {
		ag, err := abstract.Build(ov, req)
		if err != nil {
			return nil, qos.Unreachable, err
		}
		sol, err := fn(ag, src)
		if err != nil {
			return nil, qos.Unreachable, err
		}
		return sol.flow, sol.metric, nil
	}, nil
}

// admit answers OpAdmit on the RPC goroutine: the allocator's writer loop is
// the serialization point, no epoch is pinned (admissions account against the
// allocator's residual, not the served epoch).
func (s *Server) admit(r *Request) *Response {
	start := time.Now()
	resp := &Response{Epoch: s.cur.Load().id}
	if r.Requirement == nil {
		resp.Err = "daemon: admit without a requirement"
		return resp
	}
	name := r.Algorithm
	if name == "" {
		name = "heuristic"
	}
	alg, err := admissionAlgorithm(name)
	if err != nil {
		resp.Err = err.Error()
		return resp
	}
	tk, err := s.alloc.Admit(provision.AdmitRequest{
		Req:    r.Requirement,
		Src:    r.Source,
		Demand: r.Demand,
		Class:  r.Class,
		TTL:    time.Duration(r.TTLMS) * time.Millisecond,
		Tag:    name,
		Alg:    alg,
	})
	if err != nil {
		resp.Err = err.Error()
		var aerr *provision.AdmissionError
		if errors.As(err, &aerr) {
			resp.Reason = string(aerr.Reason)
		}
		return resp
	}
	resp.Ticket = tk.ID
	m := tk.Metric
	resp.Metric = &m
	if data, merr := json.Marshal(tk.Flow); merr == nil {
		resp.Flow = data
	} else {
		resp.Err = fmt.Sprintf("daemon: encoding flow: %v", merr)
	}
	s.admits.Inc()
	s.admitUS.Observe(time.Since(start).Microseconds())
	return resp
}

// release answers OpRelease on the RPC goroutine.
func (s *Server) release(r *Request) *Response {
	resp := &Response{Epoch: s.cur.Load().id}
	if err := s.alloc.Release(r.Ticket); err != nil {
		resp.Err = err.Error()
		return resp
	}
	resp.Ticket = r.Ticket
	s.releases.Inc()
	return resp
}

// tenants answers OpTenants: the admitted set, per-class fairness counters
// and residual utilization, all snapshotted through the allocator's writer
// loop.
func (s *Server) tenants() *Response {
	return &Response{
		Epoch:       s.cur.Load().id,
		Tenants:     s.alloc.Tenants(),
		Classes:     s.alloc.ClassCounters(),
		Utilization: s.alloc.Utilization(),
	}
}

// links answers OpLinks from the ledger on the RPC goroutine. Hot reflects
// the planner's detector state (sustained congestion with hysteresis), not
// the instantaneous threshold, so a spike the detector has not confirmed yet
// reads as Hot=false.
func (s *Server) links() *Response {
	lls := s.ledger.Links()
	out := make([]LinkStatus, len(lls))
	det := s.planner.Detector()
	for i, ll := range lls {
		out[i] = LinkStatus{
			From: ll.From, To: ll.To,
			Capacity:    ll.Capacity,
			Load:        ll.Load,
			Utilization: ll.Utilization(),
			Tenants:     ll.Tenants,
			Hot:         det.Hot(reopt.Link{ll.From, ll.To}),
		}
	}
	return &Response{Epoch: s.cur.Load().id, Links: out}
}

// --- write path ------------------------------------------------------------

// submit queues a write-side request to the writer goroutine and blocks for
// the reply. The reply arrives only after the request's effects are
// published, so a client that mutates and then solves on the same connection
// reads its own write.
func (s *Server) submit(r *Request) *Response {
	reply := make(chan *Response, 1)
	select {
	case s.mutCh <- writerCmd{req: r, reply: reply}:
	case <-s.stop:
		return &Response{Err: "daemon: shutting down"}
	}
	select {
	case resp := <-reply:
		return resp
	case <-s.stop:
		return &Response{Err: "daemon: shutting down"}
	}
}

// writerLoop is the single writer: it drains queued commands into a batch,
// applies them to the session in arrival order, publishes one fresh epoch
// for the whole batch, and only then replies.
func (s *Server) writerLoop() {
	defer close(s.done)
	for {
		var first writerCmd
		select {
		case <-s.stop:
			return
		case first = <-s.mutCh:
		}
		batch := []writerCmd{first}
	drain:
		for {
			select {
			case c := <-s.mutCh:
				batch = append(batch, c)
			default:
				break drain
			}
		}

		responses := make([]*Response, len(batch))
		mutated := false
		for i, c := range batch {
			resp, changed := s.applyWriter(c.req)
			responses[i] = resp
			mutated = mutated || changed
		}
		epochID := s.cur.Load().id
		if mutated {
			start := time.Now()
			sn := s.sess.Snapshot()
			s.publish(sn)
			s.publishUS.Observe(time.Since(start).Microseconds())
			epochID = sn.Epoch
		}
		for i, c := range batch {
			responses[i].Epoch = epochID
			c.reply <- responses[i]
		}
	}
}

// applyWriter executes one write-side request on the writer goroutine,
// reporting whether it changed the overlay (and so requires a publication).
func (s *Server) applyWriter(r *Request) (*Response, bool) {
	switch r.Op {
	case OpMutate:
		resp := &Response{}
		changed := false
		for i, m := range r.Mutations {
			if err := s.applyMutation(m); err != nil {
				resp.Err = fmt.Sprintf("daemon: mutation %d (%s): %v", i, m.Kind, err)
				break
			}
			changed = true
			s.mutations.Inc()
		}
		return resp, changed

	case OpRepair:
		resp := &Response{}
		if r.Requirement == nil {
			resp.Err = "daemon: repair without a requirement"
			return resp, false
		}
		perr := &core.PartialFederationError{Unresponsive: append([]int(nil), r.Unresponsive...)}
		res, err := s.sess.RepairPartial(r.Requirement, r.Source, perr, core.Options{})
		s.repairs.Inc()
		if err != nil {
			resp.Err = err.Error()
			// Removals may have landed before the failure; publish anyway.
			return resp, true
		}
		if data, merr := json.Marshal(res.Flow); merr == nil {
			resp.Flow = data
		}
		m := res.Metric
		resp.Metric = &m
		resp.Affected = res.Affected
		resp.Moved = res.Moved
		return resp, true

	case OpStats:
		st := s.sess.Stats()
		return &Response{Stats: &st}, false
	}
	return &Response{Err: fmt.Sprintf("daemon: unknown writer op %q", r.Op)}, false
}

// applyMutation maps one wire Mutation onto the session's event methods.
func (s *Server) applyMutation(m Mutation) error {
	switch m.Kind {
	case MutAddInstance:
		return s.sess.AddInstance(m.NID, m.SID, m.Host)
	case MutRemoveInstance:
		return s.sess.RemoveInstance(m.NID)
	case MutAddLink:
		return s.sess.AddLink(m.From, m.To, m.Bandwidth, m.Latency)
	case MutRemoveLink:
		return s.sess.RemoveLink(m.From, m.To)
	case MutGrowBandwidth:
		return s.sess.GrowLinkBandwidth(m.From, m.To, m.Delta)
	case MutReduceBandwidth:
		return s.sess.ReduceLinkBandwidth(m.From, m.To, m.Delta)
	default:
		return fmt.Errorf("unknown mutation kind %q", m.Kind)
	}
}

// publish makes sn the current epoch. Runs on the writer goroutine (and once
// from New before the writer starts). The hook fires before the atomic store
// so no reader can observe an epoch the hook has not recorded.
func (s *Server) publish(sn *session.Snapshot) {
	if s.hook != nil {
		s.hook(sn)
	}
	e := &epoch{id: sn.Epoch, ov: sn.Overlay, ap: sn.AllPairs}
	if prev := s.cur.Swap(e); prev != nil {
		s.retired = append(s.retired, prev)
	}
	s.published.Inc()
	s.sweepRetired()
}

// sweepRetired drops superseded epochs whose reader count has drained. An
// epoch some reader still pins stays tracked and fully usable — readers
// finish on the epoch they loaded, they are never migrated.
func (s *Server) sweepRetired() {
	live := s.retired[:0]
	for _, old := range s.retired {
		if old.readers.Load() == 0 {
			s.retiredTotal.Inc()
			continue
		}
		live = append(live, old)
	}
	// Clear the tail so drained epochs are collectable immediately.
	for i := len(live); i < len(s.retired); i++ {
		s.retired[i] = nil
	}
	s.retired = live
}

// --- client ----------------------------------------------------------------

// Client is one connection to a daemon. Like the underlying RPC client it is
// a closed loop: one goroutine, one outstanding call; open one Client per
// concurrent caller.
type Client struct {
	rpc *transport.RPCClient
}

// Dial connects to a daemon at addr.
func Dial(addr string) (*Client, error) {
	rpc, err := transport.DialRPC(addr, clientCodec{})
	if err != nil {
		return nil, err
	}
	return &Client{rpc: rpc}, nil
}

// Close releases the connection.
func (c *Client) Close() { c.rpc.Close() }

// Do sends one raw request. The error covers transport failures only;
// protocol failures arrive in Response.Err.
func (c *Client) Do(req *Request) (*Response, error) {
	out, err := c.rpc.Call(req)
	if err != nil {
		return nil, err
	}
	resp, ok := out.(*Response)
	if !ok {
		return nil, fmt.Errorf("daemon: response is %T", out)
	}
	return resp, nil
}

// Solve runs the named algorithm for req from the source instance src.
func (c *Client) Solve(algorithm string, req *require.Requirement, src int) (*Response, error) {
	return c.Do(&Request{Op: OpSolve, Algorithm: algorithm, Requirement: req, Source: src})
}

// Mutate applies mutations in order; on the first failure the rest of the
// batch is skipped and Response.Err reports the failing index.
func (c *Client) Mutate(mutations ...Mutation) (*Response, error) {
	return c.Do(&Request{Op: OpMutate, Mutations: mutations})
}

// Repair removes the unresponsive instances and re-federates req around
// them.
func (c *Client) Repair(req *require.Requirement, src int, unresponsive []int) (*Response, error) {
	return c.Do(&Request{Op: OpRepair, Requirement: req, Source: src, Unresponsive: unresponsive})
}

// Info fetches the current epoch and overlay.
func (c *Client) Info() (*Response, error) { return c.Do(&Request{Op: OpInfo}) }

// Admit requests admission of req at demand (Kbit/s) from src, federated by
// the named algorithm ("" defaults to "heuristic") in the given priority
// class. ttlMS > 0 leases the admission for that many milliseconds. On
// rejection Response.Err is set and Response.Reason carries the
// machine-readable cause.
func (c *Client) Admit(algorithm string, req *require.Requirement, src int, demand int64, class int, ttlMS int64) (*Response, error) {
	return c.Do(&Request{Op: OpAdmit, Algorithm: algorithm, Requirement: req,
		Source: src, Demand: demand, Class: class, TTLMS: ttlMS})
}

// Release departs the admitted tenant holding ticket.
func (c *Client) Release(ticket uint64) (*Response, error) {
	return c.Do(&Request{Op: OpRelease, Ticket: ticket})
}

// Tenants fetches the admitted tenants, per-class counters and residual
// utilization.
func (c *Client) Tenants() (*Response, error) { return c.Do(&Request{Op: OpTenants}) }

// Links fetches per-link traffic accounting: capacity, admitted load,
// utilization and the reoptimizer's hot flag for every boot-overlay link.
func (c *Client) Links() (*Response, error) { return c.Do(&Request{Op: OpLinks}) }

// Stats fetches session statistics.
func (c *Client) Stats() (*Response, error) { return c.Do(&Request{Op: OpStats}) }
