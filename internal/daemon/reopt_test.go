package daemon

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"sflow/internal/overlay"
	"sflow/internal/provision"
	"sflow/internal/require"
)

// hotOverlay is the concentrate topology: a fat two-hop path every heuristic
// admission lands on, plus alts thin parallel paths for the reoptimizer to
// migrate onto (mirrors internal/reopt's scenario).
func hotOverlay(t testing.TB, alts int) (*overlay.Overlay, *require.Requirement) {
	t.Helper()
	ov := overlay.New()
	sink := alts + 2
	check := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	check(ov.AddInstance(0, 0, -1))
	check(ov.AddInstance(1, 1, -1))
	for i := 0; i < alts; i++ {
		check(ov.AddInstance(2+i, 1, -1))
	}
	check(ov.AddInstance(sink, 2, -1))
	check(ov.AddLink(0, 1, 1000, 10))
	check(ov.AddLink(1, sink, 1000, 10))
	for i := 0; i < alts; i++ {
		check(ov.AddLink(0, 2+i, 130, 20))
		check(ov.AddLink(2+i, sink, 130, 20))
	}
	req, err := require.NewPath(0, 1, 2)
	check(err)
	return ov, req
}

// The links RPC must account admitted load per link: admissions raise Load on
// exactly the links their flows reserve, releases drain it back to zero.
func TestLinksRPCTracksAdmittedLoad(t *testing.T) {
	ov, req := hotOverlay(t, 2)
	srv := New(ov, Options{Workers: 1})
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	lr, err := c.Links()
	if err != nil {
		t.Fatal(err)
	}
	if len(lr.Links) != 6 { // 2 fat + 2×2 alt links
		t.Fatalf("links = %d, want 6", len(lr.Links))
	}
	for _, ls := range lr.Links {
		if ls.Load != 0 || ls.Hot {
			t.Fatalf("pristine link %d->%d = %+v, want idle", ls.From, ls.To, ls)
		}
	}

	ar, err := c.Admit("heuristic", req, 0, 50, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ar.Err != "" {
		t.Fatalf("admit: %s", ar.Err)
	}
	lr, err = c.Links()
	if err != nil {
		t.Fatal(err)
	}
	byLink := map[[2]int]LinkStatus{}
	for _, ls := range lr.Links {
		byLink[[2]int{ls.From, ls.To}] = ls
	}
	// The widest-first heuristic lands on the fat path 0->1->sink.
	if got := byLink[[2]int{0, 1}]; got.Load != 50 || got.Tenants != 1 || got.Utilization != 0.05 {
		t.Fatalf("fat link after admit = %+v", got)
	}
	if got := byLink[[2]int{0, 2}]; got.Load != 0 {
		t.Fatalf("alt link carries load: %+v", got)
	}

	if rr, err := c.Release(ar.Ticket); err != nil || rr.Err != "" {
		t.Fatalf("release: %v %v", err, rr)
	}
	lr, err = c.Links()
	if err != nil {
		t.Fatal(err)
	}
	for _, ls := range lr.Links {
		if ls.Load != 0 {
			t.Fatalf("link %d->%d still loaded after release: %+v", ls.From, ls.To, ls)
		}
	}
}

// End-to-end through the daemon: concentrated admissions drive the fat path
// hot, the background reoptimizer loop detects it and migrates tenants onto
// the alts, and the links RPC shows the hot link relieved — without any new
// hotspot appearing.
func TestReoptLoopRelievesHotLink(t *testing.T) {
	const alts = 4
	ov, req := hotOverlay(t, alts)
	srv := New(ov, Options{Workers: 1, Reopt: ReoptOptions{
		Enabled:      true,
		HotThreshold: 0.85,
		Sustain:      2,
		Interval:     5 * time.Millisecond,
	}})
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < alts; i++ {
		if r, err := c.Admit("heuristic", req, 0, int64(16+i%8), 0, 0); err != nil || r.Err != "" {
			t.Fatalf("small %d: %v %v", i, err, r)
		}
	}
	for i := 0; i < 7; i++ {
		if r, err := c.Admit("heuristic", req, 0, 120, 0, 0); err != nil || r.Err != "" {
			t.Fatalf("big %d: %v %v", i, err, r)
		}
	}
	utilOf := func() (float64, []LinkStatus) {
		lr, err := c.Links()
		if err != nil {
			t.Fatal(err)
		}
		for _, ls := range lr.Links {
			if ls.From == 0 && ls.To == 1 {
				return ls.Utilization, lr.Links
			}
		}
		t.Fatal("fat link missing from links RPC")
		return 0, nil
	}
	pre, _ := utilOf()
	if pre < 0.85 {
		t.Fatalf("scenario did not concentrate: fat link at %.2f", pre)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		u, links := utilOf()
		if u < 0.85 {
			for _, ls := range links {
				if ls.Utilization > pre+1e-9 {
					t.Fatalf("link %d->%d above original max: %+v", ls.From, ls.To, ls)
				}
				if ls.Capacity == 130 && ls.Utilization >= 0.85 {
					t.Fatalf("new hotspot on alt %d->%d: %+v", ls.From, ls.To, ls)
				}
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fat link still at %.3f after deadline", u)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The allocator's class ledger recorded the migrations.
	tr, err := c.Tenants()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Classes[0].Migrated == 0 {
		t.Fatal("no migrations recorded despite hot link relieved")
	}
	if got := len(tr.Tenants); got != alts+7 {
		t.Fatalf("tenant count changed across migrations: %d, want %d", got, alts+7)
	}
}

// transitionLog records allocator transitions so the fanout path (ledger +
// caller-provided observer) is pinned: the daemon must not displace an
// observer the embedder installed.
type transitionLog struct {
	mu     sync.Mutex
	events []string
}

func (l *transitionLog) TenantAdmitted(t *provision.Ticket) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, fmt.Sprintf("admit:%d", t.ID))
}

func (l *transitionLog) TenantDeparted(t *provision.Ticket, kind provision.EventKind) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, fmt.Sprintf("depart:%d:%s", t.ID, kind))
}

func (l *transitionLog) TenantMigrated(old, fresh *provision.Ticket) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, fmt.Sprintf("migrate:%d", fresh.ID))
}

func (l *transitionLog) snapshot() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.events...)
}

// ReoptimizeOnce is the synchronous entry point: with the background loop
// off, explicit steps must relieve the hot link, and a caller-provided
// observer must see every transition alongside the daemon's own ledger.
func TestReoptimizeOnceAndObserverFanout(t *testing.T) {
	const alts = 2
	obs := &transitionLog{}
	ov, req := hotOverlay(t, alts)
	srv := New(ov, Options{
		Workers:   1,
		Admission: provision.AllocatorOptions{Observer: obs},
		Reopt:     ReoptOptions{HotThreshold: 0.85, Sustain: 2},
	})
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var tickets []uint64
	for i := 0; i < alts; i++ {
		r, err := c.Admit("heuristic", req, 0, int64(16+i%8), 0, 0)
		if err != nil || r.Err != "" {
			t.Fatalf("small %d: %v %v", i, err, r)
		}
		tickets = append(tickets, r.Ticket)
	}
	for i := 0; i < 7; i++ {
		if r, err := c.Admit("heuristic", req, 0, 120, 0, 0); err != nil || r.Err != "" {
			t.Fatalf("big %d: %v %v", i, err, r)
		}
	}

	migrations := 0
	for step := 0; step < 6; step++ {
		rep := srv.ReoptimizeOnce()
		if rep.PostMax > rep.PreMax+1e-9 {
			t.Fatalf("step %d regressed: %+v", step, rep)
		}
		migrations += rep.Migrations
		if step >= 1 && rep.Migrations == 0 {
			break
		}
	}
	if migrations == 0 {
		t.Fatal("no synchronous migrations committed")
	}
	if rr, err := c.Release(tickets[0]); err != nil || rr.Err != "" {
		t.Fatalf("release: %v %v", err, rr)
	}

	var admits, migrates, departs int
	for _, e := range obs.snapshot() {
		switch {
		case strings.HasPrefix(e, "admit:"):
			admits++
		case strings.HasPrefix(e, "migrate:"):
			migrates++
		case strings.HasPrefix(e, "depart:"):
			departs++
		}
	}
	if admits != alts+7 || migrates != migrations || departs != 1 {
		t.Fatalf("observer saw admits=%d migrates=%d departs=%d, want %d/%d/1",
			admits, migrates, departs, alts+7, migrations)
	}

	// The stats op answers through the writer goroutine even while the
	// reoptimizer machinery is wired up.
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Err != "" {
		t.Fatalf("stats: %s", st.Err)
	}
}

// Protocol failures must come back in Response.Err on a live connection —
// never as a dropped connection — for every read- and write-side op.
func TestRPCErrorResponses(t *testing.T) {
	ov, req := hotOverlay(t, 2)
	srv := New(ov, Options{Workers: 1})
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for name, req := range map[string]*Request{
		"unknown op":             {Op: "frobnicate"},
		"unknown algorithm":      {Op: OpSolve, Algorithm: "nope", Requirement: req},
		"solve w/o requirement":  {Op: OpSolve, Algorithm: "heuristic"},
		"repair w/o requirement": {Op: OpRepair},
		"unknown mutation":       {Op: OpMutate, Mutations: []Mutation{{Kind: "warp"}}},
		"bad mutation":           {Op: OpMutate, Mutations: []Mutation{{Kind: MutRemoveLink, From: 7, To: 8}}},
	} {
		resp, err := c.Do(req)
		if err != nil {
			t.Fatalf("%s: transport error %v", name, err)
		}
		if resp.Err == "" {
			t.Fatalf("%s: no protocol error reported", name)
		}
	}

	// The connection survived all of the above.
	if resp, err := c.Solve("heuristic", req, 0); err != nil || resp.Err != "" {
		t.Fatalf("solve after protocol errors: %v %v", err, resp)
	}
}
