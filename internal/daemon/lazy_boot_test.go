package daemon

import (
	"testing"

	"sflow/internal/scenario"

	"sflow/internal/metrics"
)

// A lazy daemon must boot without routing anything: the session table, the
// published epoch AND the re-optimization planner's mirror session are all
// demand-driven. Regression for the planner eagerly building a full
// all-pairs session at New — on a 50k-node overlay that turned `sflowd
// -large -lazy` boot into minutes of O(N²) work before the listener ever
// opened.
func TestLazyBootRunsNoRouting(t *testing.T) {
	s, err := scenario.GenerateLarge(scenario.LargeConfig{Seed: 1, Nodes: 3000})
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.New()
	srv := New(s.Overlay, Options{Workers: 1, Lazy: true, Metrics: reg})
	defer srv.Close()
	for _, c := range reg.Snapshot().Counters {
		switch c.Key {
		case "qos_shortest_widest_runs_total", "qos_lazy_rows_computed_total",
			"qos_incremental_recomputed_sources_total":
			if c.Value != 0 {
				t.Fatalf("%s = %d after lazy boot, want 0", c.Key, c.Value)
			}
		}
	}
}
