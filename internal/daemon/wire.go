package daemon

import (
	"encoding/json"
	"fmt"

	"sflow/internal/provision"
	"sflow/internal/qos"
	"sflow/internal/require"
	"sflow/internal/session"
)

// The daemon's wire protocol: JSON request/response messages carried over
// transport's length-prefixed RPC framing. One Request maps to exactly one
// Response; protocol-level failures travel in Response.Err so a bad solve
// never tears down the connection.

// Operation names a Request can carry.
const (
	// OpSolve runs a centralised federation algorithm against the current
	// epoch's frozen overlay and all-pairs table. Read-only.
	OpSolve = "solve"
	// OpMutate applies a batch of overlay mutations through the writer
	// goroutine and publishes a fresh epoch.
	OpMutate = "mutate"
	// OpRepair re-federates around unresponsive instances, removing them
	// from the daemon's overlay (a mutation).
	OpRepair = "repair"
	// OpInfo reports the current epoch and its overlay. Read-only.
	OpInfo = "info"
	// OpStats reports session statistics via the writer goroutine.
	OpStats = "stats"
	// OpAdmit admits one tenant against the server's capacity allocator,
	// reserving the demanded bandwidth on its residual overlay. The
	// allocator serializes concurrent admissions internally, so this runs
	// on the RPC goroutine without touching the epoch writer.
	OpAdmit = "admit"
	// OpRelease departs an admitted tenant by ticket, returning its
	// reserved capacity.
	OpRelease = "release"
	// OpTenants reports the admitted tenants, per-class counters and
	// residual utilization. Read-only.
	OpTenants = "tenants"
	// OpLinks reports per-link traffic accounting from the admission
	// ledger: capacity, admitted load, utilization and the reoptimizer's
	// hot flag for every boot-overlay link. Read-only.
	OpLinks = "links"
)

// Mutation kinds, mirroring the session's event methods.
const (
	MutAddInstance     = "add-instance"
	MutRemoveInstance  = "remove-instance"
	MutAddLink         = "add-link"
	MutRemoveLink      = "remove-link"
	MutGrowBandwidth   = "grow-bandwidth"
	MutReduceBandwidth = "reduce-bandwidth"
)

// Mutation is one overlay change. Kind selects which fields matter.
type Mutation struct {
	Kind string `json:"kind"`
	// Instance fields (add-instance, remove-instance).
	NID  int `json:"nid,omitempty"`
	SID  int `json:"sid,omitempty"`
	Host int `json:"host,omitempty"`
	// Link fields (add-link, remove-link, grow/reduce-bandwidth).
	From      int   `json:"from,omitempty"`
	To        int   `json:"to,omitempty"`
	Bandwidth int64 `json:"bandwidth,omitempty"`
	Latency   int64 `json:"latency,omitempty"`
	Delta     int64 `json:"delta,omitempty"`
}

// Request is one client call.
type Request struct {
	Op string `json:"op"`

	// Solve / repair fields.
	Algorithm   string               `json:"algorithm,omitempty"`
	Requirement *require.Requirement `json:"requirement,omitempty"`
	Source      int                  `json:"source,omitempty"`

	// Mutate fields.
	Mutations []Mutation `json:"mutations,omitempty"`

	// Repair fields.
	Unresponsive []int `json:"unresponsive,omitempty"`

	// Admit fields (Algorithm, Requirement and Source are shared with
	// solve). TTLMS, when positive, auto-releases the admission after that
	// many milliseconds.
	Demand int64 `json:"demand,omitempty"`
	Class  int   `json:"class,omitempty"`
	TTLMS  int64 `json:"ttl_ms,omitempty"`

	// Release fields.
	Ticket uint64 `json:"ticket,omitempty"`
}

// Response answers one Request. Epoch always names the epoch the answer was
// computed against (for reads) or the epoch the request's effects are visible
// in (for writes), so clients can reason about publication ordering.
type Response struct {
	Epoch uint64 `json:"epoch"`
	// Err carries a protocol-level failure; empty on success.
	Err string `json:"err,omitempty"`

	// Solve / repair results. Flow is the flow graph's canonical JSON —
	// kept raw so equivalence against a stateless solve is byte-exact.
	Flow    json.RawMessage `json:"flow,omitempty"`
	Metric  *qos.Metric     `json:"metric,omitempty"`
	Partial bool            `json:"partial,omitempty"`

	// Repair results.
	Affected []int `json:"affected,omitempty"`
	Moved    []int `json:"moved,omitempty"`

	// Info results.
	Overlay   json.RawMessage `json:"overlay,omitempty"`
	Instances int             `json:"instances,omitempty"`

	// Stats results.
	Stats *session.Stats `json:"stats,omitempty"`

	// Admit results: the granted ticket (its flow graph and metric travel
	// in the shared Flow/Metric fields). On rejection Err is set and Reason
	// carries the machine-readable cause ("quota", "compute", "no-flow",
	// "bandwidth").
	Ticket uint64 `json:"ticket,omitempty"`
	Reason string `json:"reason,omitempty"`

	// Tenants results.
	Tenants     []provision.TenantInfo    `json:"tenants,omitempty"`
	Classes     []provision.ClassCounters `json:"classes,omitempty"`
	Utilization int64                     `json:"utilization,omitempty"`

	// Links results (OpLinks), sorted by (From, To).
	Links []LinkStatus `json:"links,omitempty"`
}

// LinkStatus is one boot-overlay link's traffic account as served by OpLinks.
type LinkStatus struct {
	From int `json:"from"`
	To   int `json:"to"`
	// Capacity is the boot bandwidth; Load the bandwidth admitted tenants
	// hold on the link right now.
	Capacity int64 `json:"capacity"`
	Load     int64 `json:"load,omitempty"`
	// Utilization is Load/Capacity; Tenants how many admissions cross the
	// link; Hot whether the reoptimizer's detector currently flags it.
	Utilization float64 `json:"utilization,omitempty"`
	Tenants     int     `json:"tenants,omitempty"`
	Hot         bool    `json:"hot,omitempty"`
}

// serverCodec frames the daemon side of the protocol: requests in, responses
// out.
type serverCodec struct{}

func (serverCodec) Encode(msg any) ([]byte, error) {
	resp, ok := msg.(*Response)
	if !ok {
		return nil, fmt.Errorf("daemon: server encoding %T, want *Response", msg)
	}
	return json.Marshal(resp)
}

func (serverCodec) Decode(data []byte) (any, error) {
	req := new(Request)
	if err := json.Unmarshal(data, req); err != nil {
		return nil, fmt.Errorf("daemon: decoding request: %w", err)
	}
	return req, nil
}

// clientCodec frames the client side: requests out, responses in.
type clientCodec struct{}

func (clientCodec) Encode(msg any) ([]byte, error) {
	req, ok := msg.(*Request)
	if !ok {
		return nil, fmt.Errorf("daemon: client encoding %T, want *Request", msg)
	}
	return json.Marshal(req)
}

func (clientCodec) Decode(data []byte) (any, error) {
	resp := new(Response)
	if err := json.Unmarshal(data, resp); err != nil {
		return nil, fmt.Errorf("daemon: decoding response: %w", err)
	}
	return resp, nil
}
