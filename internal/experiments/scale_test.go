package experiments

import (
	"reflect"
	"testing"
)

func scaleCfg() Config {
	return Config{Sizes: []int{40, 80}, Trials: 2, Seed: 5, Services: 4, Instances: 2}
}

func TestScaleShape(t *testing.T) {
	s, err := Scale(scaleCfg())
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"solved", "rows_frac", "match", "contracted_solved"}; !reflect.DeepEqual(s.Columns, want) {
		t.Fatalf("columns = %v", s.Columns)
	}
	if len(s.Points) != 2 {
		t.Fatalf("%d points, want 2", len(s.Points))
	}
	for _, p := range s.Points {
		if p.Values["solved"] != 1 {
			t.Fatalf("size %d: lazy solve failed in some trial", p.X)
		}
		if p.Values["match"] != 1 {
			t.Fatalf("size %d: lazy solution diverged from the eager oracle", p.X)
		}
		if p.Values["contracted_solved"] != 1 {
			t.Fatalf("size %d: contracted path failed in some trial", p.X)
		}
		if f := p.Values["rows_frac"]; f <= 0 || f > 1 {
			t.Fatalf("size %d: rows_frac = %v", p.X, f)
		}
	}
	// Demand-driven row count is fixed by the requirement, so the fraction
	// must fall as the overlay grows.
	if s.Points[1].Values["rows_frac"] >= s.Points[0].Values["rows_frac"] {
		t.Fatalf("rows_frac did not shrink with size: %v vs %v",
			s.Points[0].Values["rows_frac"], s.Points[1].Values["rows_frac"])
	}
}

func TestScaleDeterministicAcrossWorkers(t *testing.T) {
	cfg := scaleCfg()
	a, err := Scale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	b, err := Scale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.CSV() != b.CSV() {
		t.Fatal("scale series differs across worker counts")
	}
}

func TestScaleSpotCheckAboveOracleCutoff(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping the >2000-node spot-check cell")
	}
	// One trial just past the cutoff exercises the memoization spot check
	// instead of the full eager oracle.
	s, err := Scale(Config{Sizes: []int{scaleOracleCutoff + 100}, Trials: 1, Seed: 9, Services: 4, Instances: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := s.Points[0]
	if p.Values["solved"] != 1 || p.Values["match"] != 1 {
		t.Fatalf("spot-check cell: solved=%v match=%v", p.Values["solved"], p.Values["match"])
	}
	if f := p.Values["rows_frac"]; f > 0.05 {
		t.Fatalf("rows_frac = %v at %d nodes; lazy table routed far more than the slot rows", f, p.X)
	}
}
