package experiments

import (
	"fmt"

	"sflow/internal/core"
)

// RepairChurn measures agility under failure (experiment A7 of DESIGN.md):
// after a federation completes, the instance serving one mid-requirement
// service fails. Repair re-federates with every unaffected placement pinned;
// the alternative re-federates from scratch on the surviving overlay. The
// series reports how many services moved under each strategy and the
// bandwidth of the repaired graph relative to the from-scratch one.
func RepairChurn(cfg Config) (*Series, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	cols := []string{"moved_repair", "moved_scratch", "bandwidth_ratio"}
	points, err := run(cfg, cols, func(size, trial int) (map[string]float64, error) {
		s, _, err := generalScenario(cfg, size, trial, mixedKind(trial))
		if err != nil {
			return nil, err
		}
		before, err := core.Federate(s.Overlay, s.Req, s.SourceNID, core.Options{Metrics: cfg.Metrics})
		if err != nil {
			return nil, fmt.Errorf("sflow: %w", err)
		}
		victimSID := s.Req.TopoOrder()[1]
		victim, _ := before.Flow.Assigned(victimSID)

		rep, err := core.Repair(s.Overlay, s.Req, before.Flow, []int{victim}, core.Options{Metrics: cfg.Metrics})
		if err != nil {
			return nil, fmt.Errorf("repair: %w", err)
		}

		surviving := s.Overlay.Clone()
		if err := surviving.RemoveInstance(victim); err != nil {
			return nil, err
		}
		scratch, err := core.Federate(surviving, s.Req, s.SourceNID, core.Options{Metrics: cfg.Metrics})
		if err != nil {
			return nil, fmt.Errorf("scratch: %w", err)
		}
		movedScratch := 0
		for _, sid := range s.Req.Services() {
			b, _ := before.Flow.Assigned(sid)
			a, _ := scratch.Flow.Assigned(sid)
			if a != b {
				movedScratch++
			}
		}
		return map[string]float64{
			"moved_repair":    float64(len(rep.Moved)),
			"moved_scratch":   float64(movedScratch),
			"bandwidth_ratio": float64(rep.Metric.Bandwidth) / float64(scratch.Metric.Bandwidth),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Series{
		ID:      "repair",
		Title:   "Failure repair: services moved and bandwidth vs re-federating from scratch",
		XLabel:  "NetworkSize",
		YLabel:  "count / ratio",
		Columns: cols,
		Points:  points,
	}, nil
}
