package experiments

import (
	"errors"
	"fmt"

	"sflow/internal/core"
	"sflow/internal/transport"
)

// faultRates is the loss-rate sweep (percent) of the FaultSweep x-axis.
var faultRates = []int{0, 5, 10, 15, 20, 25, 30}

// FaultSweep measures the protocol's resilience under a faulty transport
// (experiment for the fault-injection layer): the x-axis is the message loss
// rate in percent — duplication runs at a quarter and reordering at half of
// it — and every cell federates seeded scenarios over the deterministic DES
// transport wrapped in the fault injector.
//
// Columns:
//
//   - success: fraction of federations completing under loss alone
//   - success_churn: fraction completing when, additionally, nodes crash
//   - healed: fraction of churn runs that end with a full flow graph after
//     RepairPartial re-federates around the unresponsive instances
//   - msg_overhead: messages delivered under loss relative to the fault-free
//     run of the same scenario (retransmissions, duplicates, acks)
//   - retries: retransmissions per federation under loss
//   - dedups: duplicate deliveries suppressed per federation under loss
//
// The scenario of a (rate, trial) cell depends only on the trial — the same
// workloads are replayed at every rate — and every fault decision is derived
// from the cell's seed, so the series is byte-identical at any worker count.
func FaultSweep(cfg Config) (*Series, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	cols := []string{"success", "success_churn", "healed", "msg_overhead", "retries", "dedups"}
	points, err := runOver(cfg, faultRates, cols, func(rate, trial int) (map[string]float64, error) {
		// The scenario is pinned per trial (not per rate): each rate
		// stresses the same federation, so the columns isolate the
		// fault-injection effect.
		size := cfg.Sizes[trial%len(cfg.Sizes)]
		s, _, err := generalScenario(cfg, size, trial, mixedKind(trial))
		if err != nil {
			return nil, err
		}
		clean, err := core.Federate(s.Overlay, s.Req, s.SourceNID, core.Options{Metrics: cfg.Metrics})
		if err != nil {
			return nil, fmt.Errorf("clean: %w", err)
		}

		p := float64(rate) / 100
		seed := trialSeed(cfg.Seed, size, trial) + 13
		vals := map[string]float64{}

		// Loss, duplication and reordering — no crashes.
		lossy, err := core.Federate(s.Overlay, s.Req, s.SourceNID, core.Options{
			Metrics: cfg.Metrics,
			Faults:  &transport.Faults{Seed: seed, Drop: p, Duplicate: p / 4, Reorder: p / 2},
		})
		var st core.Stats
		switch {
		case err == nil:
			vals["success"] = 1
			st = lossy.Stats
		default:
			var perr *core.PartialFederationError
			if !errors.As(err, &perr) {
				return nil, fmt.Errorf("lossy: %w", err)
			}
			st = perr.Stats
		}
		vals["msg_overhead"] = float64(st.Messages) / float64(clean.Stats.Messages)
		vals["retries"] = float64(st.Retries)
		vals["dedups"] = float64(st.Dedups)

		// Loss plus crash churn; the source instance is exempt (its
		// failure needs a consumer re-issue, not a repair).
		churnOpts := core.Options{
			Metrics: cfg.Metrics,
			Faults: &transport.Faults{
				Seed: seed + 1, Drop: p, Duplicate: p / 4, Reorder: p / 2,
				CrashRate: p / 2, CrashExempt: []int{s.SourceNID},
			},
		}
		churn, err := core.Federate(s.Overlay, s.Req, s.SourceNID, churnOpts)
		switch {
		case err == nil:
			vals["success_churn"] = 1
			vals["healed"] = 1
			_ = churn
		default:
			var perr *core.PartialFederationError
			if !errors.As(err, &perr) {
				return nil, fmt.Errorf("churn: %w", err)
			}
			// Self-heal: re-federate around the unresponsive instances
			// over a recovered (fault-free) control plane.
			if _, err := core.RepairPartial(s.Overlay, s.Req, s.SourceNID, perr, core.Options{Metrics: cfg.Metrics}); err == nil {
				vals["healed"] = 1
			}
		}
		return vals, nil
	})
	if err != nil {
		return nil, err
	}
	return &Series{
		ID:      "faults",
		Title:   "Federation under transport faults (success, self-healing and message overhead vs loss rate)",
		XLabel:  "LossRatePct",
		YLabel:  "fraction / ratio / count",
		Columns: cols,
		Points:  points,
	}, nil
}
