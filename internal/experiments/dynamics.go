package experiments

import (
	"fmt"
	"reflect"
	"time"

	"sflow/internal/abstract"
	"sflow/internal/metrics"
	"sflow/internal/reduce"
	"sflow/internal/scenario"
	"sflow/internal/session"
)

// dynamicsRounds is the number of interleaved mutation/solve rounds each
// dynamics cell runs: one seeded mutation, then one solve on the incremental
// session and one on a from-scratch rebuild of the same overlay state.
const dynamicsRounds = 30

// Dynamics measures the paper's agility claim quantitatively: a long-lived
// federation session absorbing churn re-solves from incrementally maintained
// caches, against the stateless path that rebuilds the all-pairs table and
// abstract graph per solve. Every round applies one seeded mutation (the
// session.Churn event model: bandwidth changes, link add/remove, instance
// join/leave) and solves with the reduction heuristic on both paths.
//
// The series reports only deterministic columns, so the CSV is byte-identical
// at any Config.Workers:
//
//   - recomputed_frac: per-source routing runs the incremental flush performed,
//     as a fraction of the full rebuild's (one per instance). The smaller, the
//     bigger the win; single-link changes typically dirty a small fraction.
//   - saved_frac: 1 - recomputed_frac, the work the session skipped.
//   - match: fraction of rounds where the session's solution (metric and flow
//     graph, or error) equals the rebuild's exactly — the oracle inlined into
//     the experiment; anything below 1.0 is a cache-invalidation bug.
//   - solved: fraction of rounds where the solve succeeded (churn may
//     legitimately disconnect a requirement; both paths then fail together).
//
// Wall-clock comparisons are scheduling-dependent, so they go to volatile
// histograms on Config.Metrics (exp_dynamics_incremental_us and
// exp_dynamics_rebuild_us, per-solve microseconds) and to the committed
// benchmark results/bench-dynamics.txt rather than into the series.
func Dynamics(cfg Config) (*Series, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	cols := []string{"recomputed_frac", "saved_frac", "match", "solved"}
	incUS := cfg.Metrics.Histogram("exp_dynamics_incremental_us",
		metrics.ExponentialBounds(10, 10, 7), metrics.Volatile())
	rebUS := cfg.Metrics.Histogram("exp_dynamics_rebuild_us",
		metrics.ExponentialBounds(10, 10, 7), metrics.Volatile())
	points, err := run(cfg, cols, func(size, trial int) (map[string]float64, error) {
		s, err := scenario.Generate(scenario.Config{
			Seed:                trialSeed(cfg.Seed, size, trial),
			NetworkSize:         size,
			Services:            cfg.Services,
			InstancesPerService: cfg.instancesFor(size),
			Kind:                mixedKind(trial),
		})
		if err != nil {
			return nil, err
		}
		// The session stays sequential: the sweep pool already fans cells out
		// across cores, and per-cell parallelism would not change the series
		// anyway (flush results are identical at any worker count).
		sess := session.New(s.Overlay, session.Options{Workers: 1, Metrics: cfg.Metrics})
		sess.Flush()
		churn := session.NewChurn(sess, trialSeed(cfg.Seed, size, trial)+13,
			[]int{s.SourceNID}, s.Req.Services())

		var recomputed, total, matches, solves int
		for round := 0; round < dynamicsRounds; round++ {
			if _, err := churn.Step(); err != nil {
				return nil, err
			}

			// Incremental path: flush the dirty sources, solve from the
			// maintained caches.
			before := sess.Stats().RecomputedSources
			start := time.Now()
			ag, incErr := sess.Abstract(s.Req)
			var incSol *reduce.Result
			if incErr == nil {
				incSol, incErr = reduce.Solve(ag, s.SourceNID, nil)
			}
			incUS.Observe(time.Since(start).Microseconds())
			recomputed += int(sess.Stats().RecomputedSources - before)
			total += sess.Overlay().NumInstances()

			// Rebuild path: from-scratch all-pairs and abstract graph over
			// the identical overlay state.
			start = time.Now()
			rg, rebErr := abstract.BuildWorkers(sess.Overlay(), s.Req, 1)
			var rebSol *reduce.Result
			if rebErr == nil {
				rebSol, rebErr = reduce.Solve(rg, s.SourceNID, nil)
			}
			rebUS.Observe(time.Since(start).Microseconds())

			switch {
			case incErr != nil || rebErr != nil:
				if (incErr == nil) == (rebErr == nil) {
					matches++ // both paths failed on the same overlay state
				}
			case incSol.Metric == rebSol.Metric && reflect.DeepEqual(incSol.Flow, rebSol.Flow):
				matches++
				solves++
			default:
				solves++
			}
		}
		frac := float64(recomputed) / float64(total)
		return map[string]float64{
			"recomputed_frac": frac,
			"saved_frac":      1 - frac,
			"match":           float64(matches) / dynamicsRounds,
			"solved":          float64(solves) / dynamicsRounds,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Series{
		ID:      "dynamics",
		Title:   fmt.Sprintf("Incremental session vs per-solve rebuild under churn (%d mutation/solve rounds)", dynamicsRounds),
		XLabel:  "NetworkSize",
		YLabel:  "fraction",
		Columns: cols,
		Points:  points,
	}, nil
}
