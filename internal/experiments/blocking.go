package experiments

import (
	"errors"
	"fmt"
	"math/rand"

	"sflow/internal/des"
	"sflow/internal/metrics"
	"sflow/internal/provision"
	"sflow/internal/scenario"
)

// blockingArrivals is the number of requests offered per simulation run.
const blockingArrivals = 150

// blockingHolding is the mean holding time of an admitted request in virtual
// microseconds.
const blockingHolding = 1_000_000

// Blocking measures the blocking probability of each federation algorithm
// under Poisson churn (experiment A8 of DESIGN.md): requests arrive with
// exponential inter-arrival times, hold their reserved bandwidth for an
// exponential duration, and depart. The x axis is the offered load — the
// expected number of concurrently held requests (arrival rate times mean
// holding time) — on a fixed 30-node network; the value is the fraction of
// requests rejected.
func Blocking(cfg Config) (*Series, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	loads := []int{2, 5, 10, 20, 40}
	cols := []string{"sflow", "fixed", "random"}

	// One scenario per trial, shared across every load level, so the load
	// sweep is a controlled comparison.
	scenarios := make([]*scenario.Scenario, cfg.Trials)
	for trial := range scenarios {
		s, err := scenario.Generate(scenario.Config{
			Seed:                trialSeed(cfg.Seed, 997, trial),
			NetworkSize:         30,
			Services:            cfg.Services,
			InstancesPerService: cfg.instancesFor(30),
			Kind:                mixedKind(trial),
		})
		if err != nil {
			return nil, err
		}
		scenarios[trial] = s
	}

	// Fan the (load, trial) cells out exactly like run() does for
	// (size, trial): every cell reseeds its own rngs and admits over its
	// own residual copy of the shared scenario overlay, so execution
	// order cannot change any cell's result. Reassembling in (load,
	// trial) order keeps the series byte-identical at any worker count.
	cells := make([]map[string]float64, len(loads)*cfg.Trials)
	err = forEachCell(len(cells), cfg.workers(), func(i int) error {
		load, trial := loads[i/cfg.Trials], i%cfg.Trials
		s := scenarios[trial]
		algs := map[string]provision.Algorithm{
			"sflow": federateAlg(cfg.Metrics),
			"fixed": fixedAlg(cfg.Metrics),
			"random": randomAlg(rand.New(rand.NewSource(
				trialSeed(cfg.Seed, load, trial)+17)), cfg.Metrics),
		}
		vals := make(map[string]float64, len(cols))
		for name, alg := range algs {
			p, err := blockingRun(s, alg, load,
				rand.New(rand.NewSource(trialSeed(cfg.Seed, load, trial)+31)), cfg.Metrics)
			if err != nil {
				return fmt.Errorf("experiments: blocking %s load %d trial %d: %w",
					name, load, trial, err)
			}
			vals[name] = p
		}
		cells[i] = vals
		return nil
	})
	if err != nil {
		return nil, err
	}
	points := make([]Point, 0, len(loads))
	for li, load := range loads {
		sums := make(map[string]float64, len(cols))
		for trial := 0; trial < cfg.Trials; trial++ {
			for _, c := range cols {
				sums[c] += cells[li*cfg.Trials+trial][c]
			}
		}
		pt := Point{X: load, Values: make(map[string]float64, len(cols))}
		for _, c := range cols {
			pt.Values[c] = sums[c] / float64(cfg.Trials)
		}
		points = append(points, pt)
	}
	return &Series{
		ID:      "blocking",
		Title:   "Blocking probability under Poisson churn (30-node network, demand 150 Kbit/s)",
		XLabel:  "OfferedLoad",
		YLabel:  "blocking probability",
		Columns: cols,
		Points:  points,
	}, nil
}

// blockingRun simulates one Poisson arrival/departure process over a shared
// overlay and returns the fraction of blocked requests.
func blockingRun(s *scenario.Scenario, alg provision.Algorithm, load int, rng *rand.Rand, reg *metrics.Registry) (float64, error) {
	sim := des.New()
	mgr := provision.NewManagerMetrics(s.Overlay, reg)
	interarrival := float64(blockingHolding) / float64(load)

	var (
		offered, blocked int
		failure          error
	)
	var arrive func()
	arrive = func() {
		if failure != nil {
			return
		}
		offered++
		adm, err := mgr.Admit(s.Req, s.SourceNID, admissionDemand, alg)
		switch {
		case err == nil:
			hold := int64(rng.ExpFloat64() * blockingHolding)
			if err := sim.Schedule(hold, func() {
				if err := mgr.Release(adm); err != nil && failure == nil {
					failure = err
				}
			}); err != nil {
				failure = err
				return
			}
		case errors.Is(err, provision.ErrRejected):
			blocked++
		default:
			failure = err
			return
		}
		if offered < blockingArrivals {
			gap := int64(rng.ExpFloat64() * interarrival)
			if err := sim.Schedule(gap, arrive); err != nil {
				failure = err
			}
		}
	}
	if err := sim.Schedule(0, arrive); err != nil {
		return 0, err
	}
	sim.Run()
	if failure != nil {
		return 0, failure
	}
	return float64(blocked) / float64(offered), nil
}
