package experiments

import (
	"fmt"

	"sflow/internal/core"
)

// Overhead measures the distributed protocol's cost as the network grows
// (experiment A6 of DESIGN.md): sfederate messages delivered, local
// computations, re-computations caused by lost merge claims, and the virtual
// completion time of the federation on the DES transport.
func Overhead(cfg Config) (*Series, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	cols := []string{"messages", "computations", "recomputations", "recomputations@1hop", "virtualtime_us"}
	points, err := run(cfg, cols, func(size, trial int) (map[string]float64, error) {
		s, _, err := generalScenario(cfg, size, trial, mixedKind(trial))
		if err != nil {
			return nil, err
		}
		res, err := core.Federate(s.Overlay, s.Req, s.SourceNID, core.Options{Metrics: cfg.Metrics})
		if err != nil {
			return nil, fmt.Errorf("sflow: %w", err)
		}
		// With the default two-hop view the splitting node usually sees
		// the merge and pins it; a one-hop view forces the claim races
		// whose re-computations the paper attributes the Fig 10(b) gap to.
		oneHop, err := core.Federate(s.Overlay, s.Req, s.SourceNID, core.Options{Hops: 1, Metrics: cfg.Metrics})
		if err != nil {
			return nil, fmt.Errorf("sflow hops=1: %w", err)
		}
		return map[string]float64{
			"messages":            float64(res.Stats.Messages),
			"computations":        float64(res.Stats.LocalComputations),
			"recomputations":      float64(res.Stats.Recomputations),
			"recomputations@1hop": float64(oneHop.Stats.Recomputations),
			"virtualtime_us":      float64(res.Stats.VirtualTime),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Series{
		ID:      "overhead",
		Title:   "sFlow protocol overhead vs network size",
		XLabel:  "NetworkSize",
		YLabel:  "count / microseconds",
		Columns: cols,
		Points:  points,
	}, nil
}
