package experiments

import (
	"fmt"

	"sflow/internal/abstract"
	"sflow/internal/flow"
	"sflow/internal/overlay"
	"sflow/internal/provision"
	"sflow/internal/qos"
	"sflow/internal/reduce"
	"sflow/internal/reopt"
	"sflow/internal/require"
)

// reoptPaths is the ReoptSweep x-axis: how many thin parallel paths flank the
// fat path traffic concentrates on.
var reoptPaths = []int{2, 3, 4, 5, 6}

// reoptTopology builds the concentrate scenario: one fat two-hop path through
// hub 1 (bandwidth 1000) that the widest-first heuristic pins every admission
// to, plus `paths` thin parallel two-hop paths (bandwidth 130) the
// reoptimizer can migrate tenants onto.
func reoptTopology(paths int) (*overlay.Overlay, *require.Requirement, error) {
	ov := overlay.New()
	sink := paths + 2
	if err := ov.AddInstance(0, 0, -1); err != nil {
		return nil, nil, err
	}
	if err := ov.AddInstance(1, 1, -1); err != nil {
		return nil, nil, err
	}
	for i := 0; i < paths; i++ {
		if err := ov.AddInstance(2+i, 1, -1); err != nil {
			return nil, nil, err
		}
	}
	if err := ov.AddInstance(sink, 2, -1); err != nil {
		return nil, nil, err
	}
	if err := ov.AddLink(0, 1, 1000, 10); err != nil {
		return nil, nil, err
	}
	if err := ov.AddLink(1, sink, 1000, 10); err != nil {
		return nil, nil, err
	}
	for i := 0; i < paths; i++ {
		if err := ov.AddLink(0, 2+i, 130, 20); err != nil {
			return nil, nil, err
		}
		if err := ov.AddLink(2+i, sink, 130, 20); err != nil {
			return nil, nil, err
		}
	}
	req, err := require.NewPath(0, 1, 2)
	if err != nil {
		return nil, nil, err
	}
	return ov, req, nil
}

// reoptHeuristic is the widest-then-shortest admission algorithm the sweep
// federates with — it concentrates on the fat path until it thins out.
func reoptHeuristic(ov *overlay.Overlay, req *require.Requirement, src int) (*flow.Graph, qos.Metric, error) {
	ag, err := abstract.Build(ov, req)
	if err != nil {
		return nil, qos.Unreachable, err
	}
	r, err := reduce.Solve(ag, src, nil)
	if err != nil {
		return nil, qos.Unreachable, err
	}
	return r.Flow, r.Metric, nil
}

// Reopt is the congestion-driven re-optimization experiment (`-fig reopt`):
// the concentrate→detect→migrate→no-new-hotspot scenario. Per cell, small
// tenants then seven large ones all federate onto the fat path (the widest
// path — admission is greedy), driving it beyond the 85% hot threshold. The
// planner then detects the sustained hotspot and live-migrates the cheapest
// tenants onto the parallel paths under the no-regression gate.
//
// Columns:
//
//   - premax: maximum link utilization after admission, before any migration
//   - postmax: maximum link utilization once the planner quiesces (the gate
//     guarantees postmax <= premax)
//   - migrations: committed live migrations off the hot link
//   - newhot: links at/above the hot threshold afterwards that were below it
//     before — the scenario-4 trap; always 0
//
// Every cell is deterministic (seeded demands, deterministic solver and
// planner), so the series is byte-identical at any -workers count.
func Reopt(cfg Config) (*Series, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	const hotThreshold = 0.85
	cols := []string{"premax", "postmax", "migrations", "newhot"}
	points, err := runOver(cfg, reoptPaths, cols, func(paths, trial int) (map[string]float64, error) {
		ov, req, err := reoptTopology(paths)
		if err != nil {
			return nil, err
		}
		ledger := reopt.NewLedger(ov, cfg.Metrics)
		alloc := provision.NewAllocator(ov, provision.AllocatorOptions{Observer: ledger})
		defer alloc.Close()

		for i := 0; i < paths; i++ {
			if _, err := alloc.Admit(provision.AdmitRequest{
				Req: req, Src: 0, Demand: int64(16 + (i+trial)%8),
				Tag: fmt.Sprintf("small%d", i), Alg: reoptHeuristic,
			}); err != nil {
				return nil, fmt.Errorf("small %d: %w", i, err)
			}
		}
		for i := 0; i < 7; i++ {
			if _, err := alloc.Admit(provision.AdmitRequest{
				Req: req, Src: 0, Demand: 120,
				Tag: fmt.Sprintf("big%d", i), Alg: reoptHeuristic,
			}); err != nil {
				return nil, fmt.Errorf("big %d: %w", i, err)
			}
		}

		preLinks := ledger.Links()
		preMax := 0.0
		preHot := map[reopt.Link]bool{}
		for _, ll := range preLinks {
			u := ll.Utilization()
			if u > preMax {
				preMax = u
			}
			if u >= hotThreshold {
				preHot[reopt.Link{ll.From, ll.To}] = true
			}
		}
		if preMax < hotThreshold {
			return nil, fmt.Errorf("scenario did not concentrate: premax %.3f", preMax)
		}

		p := reopt.NewPlanner(alloc, ledger, ov, reopt.PlannerConfig{
			Detector: reopt.DetectorConfig{HotThreshold: hotThreshold, Sustain: 2},
			Workers:  1,
			Metrics:  cfg.Metrics,
		})
		migrations := 0
		for step := 0; step < 10; step++ {
			rep := p.Step()
			if rep.PostMax > rep.PreMax+1e-9 {
				return nil, fmt.Errorf("step %d regressed: pre %.4f post %.4f", step, rep.PreMax, rep.PostMax)
			}
			migrations += rep.Migrations
			if step >= 1 && rep.Migrations == 0 {
				break
			}
		}

		postMax, newHot := 0.0, 0
		for _, ll := range ledger.Links() {
			u := ll.Utilization()
			if u > postMax {
				postMax = u
			}
			if u >= hotThreshold && !preHot[reopt.Link{ll.From, ll.To}] {
				newHot++
			}
		}
		return map[string]float64{
			"premax":     preMax,
			"postmax":    postMax,
			"migrations": float64(migrations),
			"newhot":     float64(newHot),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Series{
		ID:      "reopt",
		Title:   "Congestion-driven re-optimization (hotspot relief via gated live migration vs parallel paths)",
		XLabel:  "ParallelPaths",
		YLabel:  "utilization / count",
		Columns: cols,
		Points:  points,
	}, nil
}
