package experiments

import (
	"errors"
	"sync/atomic"
	"testing"
)

// detCfg is a small but non-trivial sweep: two sizes, three trials (so the
// mixed requirement kinds all appear) and every algorithm exercised.
func detCfg(workers int) Config {
	return Config{Sizes: []int{10, 20}, Trials: 3, Seed: 11, Services: 5, Instances: 2, Workers: workers}
}

// The headline guarantee of the parallel harness: the same seed produces
// byte-identical CSV output at any worker count. Fig 10(a) covers the
// (size, trial) sweep with all four algorithms; the reduction ablation
// covers an ablation entry point sharing run().
func TestSweepCSVDeterministicAcrossWorkerCounts(t *testing.T) {
	for _, entry := range []struct {
		name string
		fn   func(Config) (*Series, error)
	}{
		{"fig10a", Fig10a},
		{"ablation-reduction", AblationReduction},
		{"faults", FaultSweep},
		{"dynamics", Dynamics},
		{"reopt", Reopt},
	} {
		seq, err := entry.fn(detCfg(1))
		if err != nil {
			t.Fatalf("%s workers=1: %v", entry.name, err)
		}
		for _, workers := range []int{2, 8} {
			par, err := entry.fn(detCfg(workers))
			if err != nil {
				t.Fatalf("%s workers=%d: %v", entry.name, workers, err)
			}
			if seq.CSV() != par.CSV() {
				t.Errorf("%s: CSV differs between workers=1 and workers=%d:\n--- sequential\n%s--- parallel\n%s",
					entry.name, workers, seq.CSV(), par.CSV())
			}
			if seq.Table() != par.Table() {
				t.Errorf("%s: Table differs between workers=1 and workers=%d", entry.name, workers)
			}
		}
	}
}

// Blocking has its own (load, trial) sweep; it must honour the same
// guarantee.
func TestBlockingDeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("blocking sweep is slow")
	}
	cfg := detCfg(1)
	cfg.Trials = 2
	seq, err := Blocking(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	par, err := Blocking(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if seq.CSV() != par.CSV() {
		t.Errorf("blocking CSV differs between workers=1 and workers=8:\n%s\nvs\n%s", seq.CSV(), par.CSV())
	}
}

func TestForEachCellCoversAllCells(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		const n = 37
		var hits [n]atomic.Int32
		if err := forEachCell(n, workers, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: cell %d executed %d times", workers, i, got)
			}
		}
	}
}

func TestForEachCellPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		err := forEachCell(10, workers, func(i int) error {
			if i == 7 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want %v", workers, err, boom)
		}
	}
}
