package experiments

import (
	"fmt"
	"math/rand"

	"sflow/internal/abstract"
	"sflow/internal/control"
	"sflow/internal/core"
	"sflow/internal/flow"
	"sflow/internal/metrics"
	"sflow/internal/overlay"
	"sflow/internal/provision"
	"sflow/internal/qos"
	"sflow/internal/require"
)

// admissionDemand is the bandwidth each admitted request reserves.
const admissionDemand int64 = 150

// admissionCap bounds the number of requests probed per trial.
const admissionCap = 200

// Admission measures resource efficiency under contention (experiment A3 of
// DESIGN.md, extending the paper): identical requests are admitted one after
// another over a shared overlay, each reserving its demanded bandwidth along
// its streams, until the federation algorithm can no longer find a flow
// graph sustaining the demand. More admitted requests = the algorithm
// spends the network's capacity more frugally.
func Admission(cfg Config) (*Series, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	cols := []string{"sflow", "fixed", "random"}
	points, err := run(cfg, cols, func(size, trial int) (map[string]float64, error) {
		s, _, err := generalScenario(cfg, size, trial, mixedKind(trial))
		if err != nil {
			return nil, err
		}
		vals := make(map[string]float64, len(cols))
		algs := map[string]provision.Algorithm{
			"sflow": federateAlg(cfg.Metrics),
			"fixed": fixedAlg(cfg.Metrics),
			"random": randomAlg(rand.New(rand.NewSource(
				trialSeed(cfg.Seed, size, trial)+13)), cfg.Metrics),
		}
		for name, alg := range algs {
			m := provision.NewManagerMetrics(s.Overlay, cfg.Metrics)
			n, err := m.AdmitUntilRejected(s.Req, s.SourceNID, admissionDemand, alg, admissionCap)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", name, err)
			}
			vals[name] = float64(n)
		}
		return vals, nil
	})
	if err != nil {
		return nil, err
	}
	return &Series{
		ID:      "admission",
		Title:   "Requests admitted before saturation (demand 150 Kbit/s each)",
		XLabel:  "NetworkSize",
		YLabel:  "admitted requests",
		Columns: cols,
		Points:  points,
	}, nil
}

// federateAlg adapts the distributed sFlow protocol to the provisioning
// Algorithm shape, instrumented into reg (nil disables).
func federateAlg(reg *metrics.Registry) provision.Algorithm {
	return func(ov *overlay.Overlay, req *require.Requirement, src int) (*flow.Graph, qos.Metric, error) {
		res, err := core.Federate(ov, req, src, core.Options{Metrics: reg})
		if err != nil {
			return nil, qos.Unreachable, err
		}
		return res.Flow, res.Metric, nil
	}
}

// fixedAlg adapts the fixed control algorithm.
func fixedAlg(reg *metrics.Registry) provision.Algorithm {
	return func(ov *overlay.Overlay, req *require.Requirement, src int) (*flow.Graph, qos.Metric, error) {
		ag, err := abstract.BuildMetrics(ov, req, reg)
		if err != nil {
			return nil, qos.Unreachable, err
		}
		r, err := control.Fixed(ag, src)
		if err != nil {
			return nil, qos.Unreachable, err
		}
		return r.Flow, r.Metric, nil
	}
}

// randomAlg adapts the random control algorithm with a dedicated rng.
func randomAlg(rng *rand.Rand, reg *metrics.Registry) provision.Algorithm {
	return func(ov *overlay.Overlay, req *require.Requirement, src int) (*flow.Graph, qos.Metric, error) {
		ag, err := abstract.BuildMetrics(ov, req, reg)
		if err != nil {
			return nil, qos.Unreachable, err
		}
		r, err := control.Random(ag, src, rng)
		if err != nil {
			return nil, qos.Unreachable, err
		}
		return r.Flow, r.Metric, nil
	}
}
