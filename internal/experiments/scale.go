package experiments

import (
	"reflect"
	"time"

	"sflow/internal/abstract"
	"sflow/internal/cluster"
	"sflow/internal/metrics"
	"sflow/internal/qos"
	"sflow/internal/reduce"
	"sflow/internal/scenario"
)

// scaleOracleCutoff is the largest overlay the scale experiment verifies
// against a full eager rebuild: above it the N-source eager computation is
// exactly the cost the lazy path exists to avoid, so the oracle would
// dominate the sweep. Larger sizes fall back to a one-row spot check (see
// Scale) and the lazy-vs-eager battery in the test suite pins equivalence on
// oracle-sized topologies.
const scaleOracleCutoff = 2000

// scaleSizes is the default large-overlay sweep: the regime where the full
// N² table stops being affordable. Deliberately past the evaluation sweep's
// 10..50 but bounded so `-fig scale` finishes interactively; pass -sizes for
// the 50k/100k end.
var scaleSizes = []int{500, 2000, 10000}

// Scale (experiment A15) measures demand-driven federation on large
// generated overlays: per overlay size, a path requirement is solved with
// the reduction heuristic over a lazy table, and — for comparison on the
// hierarchy fast path — with the contracted cluster algorithm. The series
// reports only deterministic columns, byte-identical at any Config.Workers:
//
//   - solved: fraction of trials where the lazy solve produced a flow.
//   - rows_frac: shortest-widest rows the lazy table actually computed, as a
//     fraction of the overlay's nodes — the work an eager build would have
//     done that the lazy path skipped is 1 - rows_frac (≈ 0.999 at 10k).
//   - match: at sizes <= 2000, fraction of trials where the lazy solution
//     (flow graph and metric) equals a from-scratch eager solve exactly;
//     above the cutoff, where the eager oracle is unaffordable, fraction
//     where the source slot's lazy row equals a freshly frozen-and-computed
//     row byte for byte (a memoization spot check, not a full oracle).
//   - contracted_solved: fraction of trials where the contracted hierarchical
//     path (BFS clusters + cluster-digraph routing) produced a flow.
//
// Wall-clock goes to volatile histograms on Config.Metrics
// (exp_scale_lazy_us and exp_scale_contracted_us, per-solve microseconds).
func Scale(cfg Config) (*Series, error) {
	if len(cfg.Sizes) == 0 {
		cfg.Sizes = scaleSizes
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	cols := []string{"solved", "rows_frac", "match", "contracted_solved"}
	lazyUS := cfg.Metrics.Histogram("exp_scale_lazy_us",
		metrics.ExponentialBounds(100, 10, 7), metrics.Volatile())
	contractedUS := cfg.Metrics.Histogram("exp_scale_contracted_us",
		metrics.ExponentialBounds(100, 10, 7), metrics.Volatile())
	points, err := run(cfg, cols, func(size, trial int) (map[string]float64, error) {
		s, err := scenario.GenerateLarge(scenario.LargeConfig{
			Seed:     trialSeed(cfg.Seed, size, trial),
			Nodes:    size,
			Services: cfg.Services,
		})
		if err != nil {
			return nil, err
		}
		vals := map[string]float64{}

		// Lazy demand-driven solve. Per-cell parallelism stays at 1: the
		// sweep pool already fans cells out, and the answers are identical
		// at any worker count anyway.
		lt := qos.NewLazyAllPairs(s.Overlay, cfg.Metrics)
		start := time.Now()
		ag, err := abstract.FromAllPairs(s.Overlay, s.Req, lt)
		var lazySol *reduce.Result
		if err == nil {
			lazySol, err = reduce.Solve(ag, s.SourceNID, nil)
		}
		lazyUS.Observe(time.Since(start).Microseconds())
		if err == nil {
			vals["solved"] = 1
		}
		vals["rows_frac"] = float64(lt.Stats().Computed) / float64(s.Overlay.NumInstances())

		if size <= scaleOracleCutoff {
			eg, oerr := abstract.BuildWorkers(s.Overlay, s.Req, 1)
			var eagerSol *reduce.Result
			if oerr == nil {
				eagerSol, oerr = reduce.Solve(eg, s.SourceNID, nil)
			}
			if (err == nil) == (oerr == nil) &&
				(err != nil || (lazySol.Metric == eagerSol.Metric && reflect.DeepEqual(lazySol.Flow, eagerSol.Flow))) {
				vals["match"] = 1
			}
		} else {
			// Spot check: the memoized source row must equal a fresh
			// dense computation on a fresh freeze of the same overlay.
			fresh := qos.ShortestWidestCSR(qos.FreezeGraph(s.Overlay), s.SourceNID, qos.NewScratch())
			if memo := lt.From(s.SourceNID); memo != nil && resultsEqual(memo, fresh) {
				vals["match"] = 1
			}
		}

		k := 8
		if n := s.Overlay.NumInstances(); k > n {
			k = n
		}
		start = time.Now()
		_, cerr := cluster.FederateContracted(s.Overlay, s.Req, s.SourceNID, k, 1)
		contractedUS.Observe(time.Since(start).Microseconds())
		if cerr == nil {
			vals["contracted_solved"] = 1
		}
		return vals, nil
	})
	if err != nil {
		return nil, err
	}
	return &Series{
		ID:      "scale",
		Title:   "Demand-driven federation on large overlays (lazy rows vs overlay size)",
		XLabel:  "OverlayNodes",
		YLabel:  "fraction",
		Columns: cols,
		Points:  points,
	}, nil
}

// resultsEqual deep-compares two single-source results: same reachable set,
// metrics and selected paths.
func resultsEqual(a, b *qos.Result) bool {
	if len(a.Dist) != len(b.Dist) {
		return false
	}
	for dst, m := range a.Dist {
		om, ok := b.Dist[dst]
		if !ok || m != om {
			return false
		}
		p, op := a.PathTo(dst), b.PathTo(dst)
		if !reflect.DeepEqual(p, op) {
			return false
		}
	}
	return true
}
