package experiments

import (
	"fmt"

	"sflow/internal/cluster"
	"sflow/internal/core"
	"sflow/internal/exact"
)

// Hierarchy compares full sFlow against the cluster-based divide-and-conquer
// federation of the related work (experiment A9 of DESIGN.md): correctness
// coefficient vs network size for sFlow and the hierarchical algorithm at
// two cluster granularities, all measured against the global optimum.
func Hierarchy(cfg Config) (*Series, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	cols := []string{"sflow", "hier(k=3)", "hier(k=6)"}
	points, err := run(cfg, cols, func(size, trial int) (map[string]float64, error) {
		s, ag, err := generalScenario(cfg, size, trial, mixedKind(trial))
		if err != nil {
			return nil, err
		}
		opt, err := exact.Solve(ag, s.SourceNID, exact.Options{})
		if err != nil {
			return nil, err
		}
		vals := make(map[string]float64, len(cols))
		sf, err := core.Federate(s.Overlay, s.Req, s.SourceNID, core.Options{Metrics: cfg.Metrics})
		if err != nil {
			return nil, fmt.Errorf("sflow: %w", err)
		}
		vals["sflow"] = sf.Flow.CorrectnessCoefficient(opt.Flow)
		for _, k := range []int{3, 6} {
			col := fmt.Sprintf("hier(k=%d)", k)
			kk := k
			if n := s.Overlay.NumInstances(); kk > n {
				kk = n
			}
			h, err := cluster.Federate(s.Overlay, s.Req, s.SourceNID, kk)
			if err != nil {
				// The hierarchy can genuinely fail to connect a
				// requirement its clusters split badly; score zero.
				vals[col] = 0
				continue
			}
			vals[col] = h.Flow.CorrectnessCoefficient(opt.Flow)
		}
		return vals, nil
	})
	if err != nil {
		return nil, err
	}
	return &Series{
		ID:      "hierarchy",
		Title:   "sFlow vs cluster-based divide-and-conquer (correctness coefficient)",
		XLabel:  "NetworkSize",
		YLabel:  "correctness coefficient",
		Columns: cols,
		Points:  points,
	}, nil
}
