package experiments

import (
	"encoding/json"
	"strings"
	"testing"
)

// smallCfg keeps the sweeps fast in unit tests.
func smallCfg() Config {
	return Config{Sizes: []int{10, 20}, Trials: 3, Seed: 1, Services: 5, Instances: 2}
}

func TestFig10aShape(t *testing.T) {
	s, err := Fig10a(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 2 {
		t.Fatalf("points = %d", len(s.Points))
	}
	for _, p := range s.Points {
		for _, alg := range []string{"sflow", "fixed", "random", "servicepath"} {
			v, ok := p.Values[alg]
			if !ok {
				t.Fatalf("missing %s at size %d", alg, p.X)
			}
			if v < 0 || v > 1 {
				t.Fatalf("%s correctness %v out of [0,1]", alg, v)
			}
		}
		// The headline claim: sFlow dominates the controls.
		if p.Values["sflow"] < p.Values["random"] {
			t.Fatalf("size %d: sflow %.3f below random %.3f",
				p.X, p.Values["sflow"], p.Values["random"])
		}
		if p.Values["sflow"] < p.Values["servicepath"] {
			t.Fatalf("size %d: sflow below servicepath", p.X)
		}
	}
}

func TestFig10bShape(t *testing.T) {
	s, err := Fig10b(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range s.Points {
		if p.Values["sflow"] <= 0 || p.Values["optimal"] <= 0 {
			t.Fatalf("non-positive computation time at size %d: %+v", p.X, p.Values)
		}
	}
}

func TestFig10cShape(t *testing.T) {
	s, err := Fig10c(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range s.Points {
		for _, alg := range []string{"sflow", "fixed", "random"} {
			if p.Values[alg] <= 0 {
				t.Fatalf("size %d: %s latency %v", p.X, alg, p.Values[alg])
			}
		}
	}
}

func TestFig10dShape(t *testing.T) {
	s, err := Fig10d(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range s.Points {
		if p.Values["optimal"] < p.Values["sflow"] {
			t.Fatalf("size %d: optimal below sflow", p.X)
		}
		if p.Values["sflow"] < p.Values["random"] {
			t.Fatalf("size %d: sflow bandwidth %v below random %v",
				p.X, p.Values["sflow"], p.Values["random"])
		}
	}
}

func TestAblations(t *testing.T) {
	look, err := AblationLookahead(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range look.Points {
		for _, c := range look.Columns {
			if v := p.Values[c]; v < 0 || v > 1 {
				t.Fatalf("%s = %v out of range", c, v)
			}
		}
	}
	red, err := AblationReduction(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range red.Points {
		if p.Values["full"] > 1.0001 || p.Values["greedy"] > 1.0001 {
			t.Fatalf("normalised bandwidth above 1: %+v", p.Values)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Fig10a(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig10a(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if a.Table() != b.Table() {
		t.Fatal("same config produced different results")
	}
}

func TestRenderers(t *testing.T) {
	s, err := Fig10a(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	tbl := s.Table()
	if !strings.Contains(tbl, "fig10a") || !strings.Contains(tbl, "sflow") {
		t.Fatalf("table missing headers:\n%s", tbl)
	}
	csv := s.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 1+len(s.Points) {
		t.Fatalf("csv has %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "networksize,") {
		t.Fatalf("csv header = %q", lines[0])
	}
}

func TestAdmissionShape(t *testing.T) {
	s, err := Admission(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range s.Points {
		for _, alg := range []string{"sflow", "fixed", "random"} {
			if p.Values[alg] < 0 || p.Values[alg] > admissionCap {
				t.Fatalf("size %d: %s admitted %v out of range", p.X, alg, p.Values[alg])
			}
		}
		// The QoS-aware algorithms must not be beaten by random blundering.
		if p.Values["sflow"] < p.Values["random"] {
			t.Fatalf("size %d: sflow admits %v < random %v",
				p.X, p.Values["sflow"], p.Values["random"])
		}
	}
}

func TestOverheadShape(t *testing.T) {
	s, err := Overhead(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range s.Points {
		if p.Values["messages"] <= 0 || p.Values["virtualtime_us"] <= 0 {
			t.Fatalf("size %d: degenerate overhead %+v", p.X, p.Values)
		}
		// Computations include re-computations.
		if p.Values["computations"] < p.Values["recomputations"] {
			t.Fatalf("size %d: computations < recomputations", p.X)
		}
	}
}

func TestRepairChurnShape(t *testing.T) {
	s, err := RepairChurn(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range s.Points {
		// Minimal-churn repair must not move more services than a full
		// re-federation changes... it may tie, never exceed grossly; the
		// hard invariant is that repair moves at least the victim.
		if p.Values["moved_repair"] < 1 {
			t.Fatalf("size %d: repair moved %v services, victim must move", p.X, p.Values["moved_repair"])
		}
		if p.Values["bandwidth_ratio"] <= 0 {
			t.Fatalf("size %d: bandwidth ratio %v", p.X, p.Values["bandwidth_ratio"])
		}
	}
}

func TestBlockingShape(t *testing.T) {
	s, err := Blocking(Config{Trials: 2, Seed: 3, Services: 5, Instances: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) == 0 {
		t.Fatal("no points")
	}
	for _, p := range s.Points {
		for _, alg := range s.Columns {
			v := p.Values[alg]
			if v < 0 || v > 1 {
				t.Fatalf("load %d: %s blocking %v out of [0,1]", p.X, alg, v)
			}
		}
	}
	// At the highest load random must block at least as much as sflow.
	last := s.Points[len(s.Points)-1]
	if last.Values["random"] < last.Values["sflow"] {
		t.Fatalf("random blocks less than sflow at peak load: %+v", last.Values)
	}
}

func TestMarkdownRendering(t *testing.T) {
	s, err := Fig10a(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	md := s.Markdown()
	if !strings.Contains(md, "### fig10a") || !strings.Contains(md, "| NetworkSize | sflow |") {
		t.Fatalf("markdown wrong:\n%s", md)
	}
	lines := strings.Split(strings.TrimSpace(md), "\n")
	// Header + separator + 2 data rows + title + blank.
	if len(lines) < 5 {
		t.Fatalf("markdown too short:\n%s", md)
	}
}

func TestHierarchyShape(t *testing.T) {
	s, err := Hierarchy(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range s.Points {
		for _, c := range s.Columns {
			if v := p.Values[c]; v < 0 || v > 1 {
				t.Fatalf("size %d: %s = %v out of [0,1]", p.X, c, v)
			}
		}
	}
}

func TestAllAndReport(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep")
	}
	cfg := Config{Sizes: []int{10}, Trials: 1, Seed: 9, Services: 4, Instances: 2}
	series, err := All(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ids := make(map[string]bool, len(series))
	for _, s := range series {
		ids[s.ID] = true
	}
	for _, want := range []string{
		"fig10a", "fig10b", "fig10c", "fig10d",
		"ablation-lookahead", "ablation-reduction",
		"admission", "overhead", "repair", "blocking", "hierarchy",
	} {
		if !ids[want] {
			t.Fatalf("All missing %q (got %v)", want, ids)
		}
	}
	report, err := Report(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report, "# sFlow reproduction") || !strings.Contains(report, "### hierarchy") {
		t.Fatalf("report incomplete")
	}
}

func TestInstancesFor(t *testing.T) {
	c, err := Config{}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if got := c.instancesFor(10); got != 2 {
		t.Fatalf("instancesFor(10) = %d", got)
	}
	if got := c.instancesFor(50); got != 5 {
		t.Fatalf("instancesFor(50) = %d", got)
	}
	fixed := Config{Instances: 7}
	if got := fixed.instancesFor(50); got != 7 {
		t.Fatalf("explicit instances ignored: %d", got)
	}
}

func TestConfigDefaults(t *testing.T) {
	c, err := Config{}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Sizes) != 5 || c.Trials != 10 || c.Services != 6 {
		t.Fatalf("defaults = %+v", c)
	}
	custom, err := Config{Sizes: []int{7}, Trials: 3, Services: 4}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if len(custom.Sizes) != 1 || custom.Trials != 3 || custom.Services != 4 {
		t.Fatalf("custom config clobbered: %+v", custom)
	}
}

func TestConfigRejectsNonsense(t *testing.T) {
	bad := []Config{
		{Trials: -5},
		{Sizes: []int{1}},
		{Sizes: []int{10, 0, 30}},
		{Services: 1},
		{Instances: -1},
		{Workers: -2},
	}
	for i, cfg := range bad {
		if _, err := cfg.withDefaults(); err == nil {
			t.Errorf("case %d: config %+v accepted, want error", i, cfg)
		}
	}
	// Every entry point must surface the validation error instead of
	// silently producing an all-zero series.
	if _, err := Fig10a(Config{Trials: -5}); err == nil {
		t.Error("Fig10a accepted negative trials")
	}
	if _, err := Blocking(Config{Services: 1}); err == nil {
		t.Error("Blocking accepted a single-service requirement")
	}
	if _, err := Report(Config{Sizes: []int{1}}); err == nil {
		t.Error("Report accepted an undersized network")
	}
}

func TestMixedKindCycles(t *testing.T) {
	seen := make(map[string]bool)
	for trial := 0; trial < 6; trial++ {
		seen[mixedKind(trial).String()] = true
	}
	for _, want := range []string{"general", "disjoint", "split-merge"} {
		if !seen[want] {
			t.Fatalf("mixedKind never produced %s", want)
		}
	}
}

func TestPointsCarryStd(t *testing.T) {
	s, err := Fig10d(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	sawSpread := false
	for _, p := range s.Points {
		for _, c := range s.Columns {
			std, ok := p.Std[c]
			if !ok || std < 0 {
				t.Fatalf("size %d %s: std = %v, %v", p.X, c, std, ok)
			}
			if std > 0 {
				sawSpread = true
			}
		}
	}
	if !sawSpread {
		t.Fatal("all standard deviations zero across trials")
	}
	md := s.Markdown()
	if !strings.Contains(md, "±") {
		t.Fatalf("markdown lacks deviations:\n%s", md)
	}
}

func TestSeriesJSONRoundTrip(t *testing.T) {
	s, err := Fig10a(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Series
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.ID != s.ID || len(back.Points) != len(s.Points) {
		t.Fatal("round trip changed series")
	}
	if back.Table() != s.Table() {
		t.Fatal("rendered tables differ after round trip")
	}
	var bad Series
	if err := json.Unmarshal([]byte("{"), &bad); err == nil {
		t.Fatal("garbage accepted")
	}
}
