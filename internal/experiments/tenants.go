package experiments

import (
	"errors"
	"fmt"
	"math/rand"

	"sflow/internal/overlay"
	"sflow/internal/provision"
	"sflow/internal/require"
)

// tenantArrivals is the number of admission requests offered per trial.
const tenantArrivals = 120

// tenantClasses is the number of priority classes in the tenant mix.
const tenantClasses = 3

// tenantQuota throttles the lowest class: with ~tenantArrivals/3 class-0
// arrivals per trial, a quota of 25 forces visible quota rejections.
const tenantQuota = 25

// Tenants measures multi-tenant priority admission through the capacity
// allocator (experiment A13 of DESIGN.md): a seeded stream of mixed-class,
// mixed-demand tenants arrives and departs over a shared overlay, admitted by
// an Allocator with three priority classes, a quota on the lowest class and
// preemption enabled. For each federation algorithm the figure reports the
// overall admission ratio (admitted / offered) and the Jain fairness index of
// the per-class admission ratios — both in [0, 1], so one panel shows whether
// an algorithm buys capacity by starving the low classes.
func Tenants(cfg Config) (*Series, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	algNames := []string{"sflow", "fixed", "random"}
	cols := make([]string, 0, 2*len(algNames))
	for _, n := range algNames {
		cols = append(cols, n, n+"-jain")
	}
	points, err := run(cfg, cols, func(size, trial int) (map[string]float64, error) {
		s, _, err := generalScenario(cfg, size, trial, mixedKind(trial))
		if err != nil {
			return nil, err
		}
		algs := map[string]provision.Algorithm{
			"sflow": federateAlg(cfg.Metrics),
			"fixed": fixedAlg(cfg.Metrics),
			"random": randomAlg(rand.New(rand.NewSource(
				trialSeed(cfg.Seed, size, trial)+13)), cfg.Metrics),
		}
		vals := make(map[string]float64, len(cols))
		for _, name := range algNames {
			ratio, jain, err := tenantRun(s.Overlay, s.Req, s.SourceNID, algs[name],
				rand.New(rand.NewSource(trialSeed(cfg.Seed, size, trial)+41)), cfg)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", name, err)
			}
			vals[name] = ratio
			vals[name+"-jain"] = jain
		}
		return vals, nil
	})
	if err != nil {
		return nil, err
	}
	return &Series{
		ID:      "tenants",
		Title:   "Multi-tenant priority admission: admission ratio and per-class Jain fairness",
		XLabel:  "NetworkSize",
		YLabel:  "ratio / fairness",
		Columns: cols,
		Points:  points,
	}, nil
}

// tenantRun drives one seeded arrival/departure stream through an Allocator
// and returns the overall admission ratio and the Jain fairness index of the
// per-class admission ratios. The stream is sequential, so the recorded
// serialization — and hence the figure — is deterministic.
func tenantRun(ov *overlay.Overlay, req *require.Requirement, src int,
	alg provision.Algorithm, rng *rand.Rand, cfg Config) (float64, float64, error) {
	alloc := provision.NewAllocator(ov, provision.AllocatorOptions{
		Classes: tenantClasses,
		Quotas:  []int{tenantQuota, 0, 0},
		Preempt: true,
		Metrics: cfg.Metrics,
	})
	defer alloc.Close()

	offered := make([]float64, tenantClasses)
	admitted := make([]float64, tenantClasses)
	var active []uint64
	for i := 0; i < tenantArrivals; i++ {
		// A quarter of the steps are departures: the allocator sees churn,
		// not just a fill-until-full ramp. Preempted tickets may already be
		// gone — a benign race the allocator reports as ErrNoTicket.
		if len(active) > 0 && rng.Intn(4) == 0 {
			k := rng.Intn(len(active))
			if err := alloc.Release(active[k]); err != nil &&
				!errors.Is(err, provision.ErrNoTicket) {
				return 0, 0, err
			}
			active = append(active[:k], active[k+1:]...)
		}
		class := rng.Intn(tenantClasses)
		demand := 50 + rng.Int63n(150)
		offered[class]++
		tk, err := alloc.Admit(provision.AdmitRequest{
			Req: req, Src: src, Demand: demand, Class: class, Alg: alg,
		})
		switch {
		case err == nil:
			admitted[class]++
			active = append(active, tk.ID)
		case errors.Is(err, provision.ErrRejected):
			// Counted as offered but not admitted.
		default:
			return 0, 0, err
		}
	}

	var offSum, admSum float64
	ratios := make([]float64, tenantClasses)
	for c := 0; c < tenantClasses; c++ {
		offSum += offered[c]
		admSum += admitted[c]
		if offered[c] > 0 {
			ratios[c] = admitted[c] / offered[c]
		}
	}
	if offSum == 0 {
		return 0, 0, errors.New("experiments: tenant stream offered no requests")
	}
	return admSum / offSum, jain(ratios), nil
}

// jain is Jain's fairness index (Σx)² / (n·Σx²): 1 when every class fares
// equally, 1/n when one class takes everything.
func jain(xs []float64) float64 {
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sq)
}
