// Package experiments reproduces the paper's evaluation (Sec 5). Every
// panel of Figure 10 has one entry point that sweeps the network sizes the
// paper uses (10..50), runs the four federation algorithms plus the global
// optimal on seeded random scenarios, and returns the mean series the paper
// plots. Two ablation experiments (local-view radius and the reduction
// heuristics) extend the paper's evaluation.
package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"sflow/internal/abstract"
	"sflow/internal/baseline"
	"sflow/internal/control"
	"sflow/internal/core"
	"sflow/internal/exact"
	"sflow/internal/flow"
	"sflow/internal/metrics"
	"sflow/internal/scenario"
	"sflow/internal/stats"
)

// Config controls an experiment sweep.
type Config struct {
	// Sizes are the underlay network sizes (default 10, 20, 30, 40, 50 —
	// the paper's sweep). Every size must be >= 2.
	Sizes []int
	// Trials is the number of seeded scenarios per size (default 10,
	// must not be negative).
	Trials int
	// Seed makes the whole sweep reproducible: the same seed produces
	// byte-identical series (Table/CSV output) at any worker count.
	Seed int64
	// Services is the number of required services per scenario
	// (default 6; a requirement needs at least 2 — a source and a sink).
	Services int
	// Instances is the number of instances per non-source service.
	// Zero scales it with network size (max(2, size/10)), matching the
	// paper's model where the overlay grows with the network.
	Instances int
	// Workers bounds the number of (size, trial) cells evaluated
	// concurrently. Zero (the default) uses runtime.GOMAXPROCS(0); 1
	// reproduces the historical sequential sweep exactly. Every cell
	// derives its own seed, so the assembled series are identical at any
	// worker count — only wall-clock timing columns (Fig 10b) carry
	// scheduling noise.
	Workers int
	// Metrics, when non-nil, collects counters and histograms from the
	// sweep and everything it calls into (federation protocol, routing,
	// abstract-graph builds, provisioning). Non-volatile metrics are sums
	// of deterministic per-cell work, so Snapshot().StableText() is
	// byte-identical at any worker count for a fixed Seed; wall-clock and
	// scheduling metrics are marked volatile and appear only in Text().
	Metrics *metrics.Registry
}

// withDefaults fills unset fields with the paper's defaults and rejects
// nonsense values (negative trial counts, undersized networks, requirements
// with fewer than two services) that would otherwise silently produce
// all-zero series.
func (c Config) withDefaults() (Config, error) {
	if len(c.Sizes) == 0 {
		c.Sizes = []int{10, 20, 30, 40, 50}
	}
	for _, s := range c.Sizes {
		if s < 2 {
			return c, fmt.Errorf("experiments: network size %d out of range (must be >= 2)", s)
		}
	}
	if c.Trials == 0 {
		c.Trials = 10
	}
	if c.Trials < 0 {
		return c, fmt.Errorf("experiments: trials %d out of range (must be >= 1)", c.Trials)
	}
	if c.Services == 0 {
		c.Services = 6
	}
	if c.Services < 2 {
		return c, fmt.Errorf("experiments: services %d out of range (a requirement needs a source and a sink, so >= 2)", c.Services)
	}
	if c.Instances < 0 {
		return c, fmt.Errorf("experiments: instances %d out of range (must be >= 0; 0 scales with network size)", c.Instances)
	}
	if c.Workers < 0 {
		return c, fmt.Errorf("experiments: workers %d out of range (must be >= 0; 0 means GOMAXPROCS)", c.Workers)
	}
	return c, nil
}

// workers resolves the effective worker count of the sweep pool.
func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// instancesFor returns the per-service instance count for a network size.
func (c Config) instancesFor(size int) int {
	if c.Instances > 0 {
		return c.Instances
	}
	if n := size / 10; n > 2 {
		return n
	}
	return 2
}

// Point is one x position of a series with one value per algorithm.
type Point struct {
	X      int
	Values map[string]float64
	// Std holds the sample standard deviation behind each mean value.
	Std map[string]float64
}

// Series is the data behind one figure panel.
type Series struct {
	ID      string
	Title   string
	XLabel  string
	YLabel  string
	Columns []string
	Points  []Point
}

// Table renders the series as an aligned text table.
func (s *Series) Table() string {
	width := 16
	for _, c := range s.Columns {
		if len(c)+2 > width {
			width = len(c) + 2
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", s.ID, s.Title)
	fmt.Fprintf(&b, "%-12s", s.XLabel)
	for _, c := range s.Columns {
		fmt.Fprintf(&b, "%*s", width, c)
	}
	b.WriteByte('\n')
	for _, p := range s.Points {
		fmt.Fprintf(&b, "%-12d", p.X)
		for _, c := range s.Columns {
			fmt.Fprintf(&b, "%*.4f", width, p.Values[c])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the series as comma-separated values with a header row.
func (s *Series) CSV() string {
	var b strings.Builder
	b.WriteString(strings.ToLower(s.XLabel))
	for _, c := range s.Columns {
		b.WriteString(",")
		b.WriteString(c)
	}
	b.WriteByte('\n')
	for _, p := range s.Points {
		fmt.Fprintf(&b, "%d", p.X)
		for _, c := range s.Columns {
			fmt.Fprintf(&b, ",%.6f", p.Values[c])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// trialSeed derives a deterministic per-trial seed.
func trialSeed(base int64, size, trial int) int64 {
	return base*1_000_003 + int64(size)*1_009 + int64(trial)
}

// run executes fn for every (size, trial) pair and assembles mean values per
// column: the standard sweep over cfg.Sizes.
func run(cfg Config, columns []string, fn func(size, trial int) (map[string]float64, error)) ([]Point, error) {
	return runOver(cfg, cfg.Sizes, columns, fn)
}

// runOver executes fn for every (x, trial) pair over an arbitrary x-axis and
// assembles mean values per column. Cells fan out over cfg.workers()
// goroutines — every cell owns an independent seed via trialSeed, so results
// do not depend on execution order — and are reassembled in (x, trial) order,
// making the returned series (and hence Table/CSV output) byte-identical at
// any worker count.
func runOver(cfg Config, xs []int, columns []string, fn func(x, trial int) (map[string]float64, error)) ([]Point, error) {
	cells := make([]map[string]float64, len(xs)*cfg.Trials)
	// Per-cell instrumentation: the cell count is a deterministic sum; the
	// wall-time histogram and the pool-occupancy peak depend on scheduling,
	// so both are volatile.
	cellsDone := cfg.Metrics.Counter("exp_cells_total")
	cellWall := cfg.Metrics.Histogram("exp_cell_wall_us",
		metrics.ExponentialBounds(100, 10, 6), metrics.Volatile())
	var active, peak atomic.Int64
	err := forEachCell(len(cells), cfg.workers(), func(i int) error {
		x, trial := xs[i/cfg.Trials], i%cfg.Trials
		if now := active.Add(1); now > peak.Load() {
			peak.Store(now) // best-effort peak; the gauge is volatile anyway
		}
		start := time.Now()
		vals, err := fn(x, trial)
		cellWall.Observe(time.Since(start).Microseconds())
		active.Add(-1)
		cellsDone.Inc()
		if err != nil {
			return fmt.Errorf("experiments: x=%d trial %d: %w", x, trial, err)
		}
		cells[i] = vals
		return nil
	})
	cfg.Metrics.Gauge("exp_pool_peak_active_workers", metrics.Volatile()).Set(peak.Load())
	if err != nil {
		return nil, err
	}
	points := make([]Point, 0, len(xs))
	for si, x := range xs {
		samples := make(map[string][]float64, len(columns))
		for trial := 0; trial < cfg.Trials; trial++ {
			vals := cells[si*cfg.Trials+trial]
			for _, c := range columns {
				samples[c] = append(samples[c], vals[c])
			}
		}
		p := Point{
			X:      x,
			Values: make(map[string]float64, len(columns)),
			Std:    make(map[string]float64, len(columns)),
		}
		for _, c := range columns {
			sum := stats.Summarize(samples[c])
			p.Values[c] = sum.Mean
			p.Std[c] = sum.Std
		}
		points = append(points, p)
	}
	return points, nil
}

// mixedKind rotates through the non-path requirement shapes: the paper's
// consumer "creates service requirements of any type", so the correctness,
// latency and bandwidth panels average over general DAGs, disjoint paths and
// split-and-merge diamonds.
func mixedKind(trial int) scenario.Kind {
	switch trial % 3 {
	case 0:
		return scenario.KindGeneral
	case 1:
		return scenario.KindDisjoint
	default:
		return scenario.KindSplitMerge
	}
}

// generalScenario builds the DAG-requirement scenario of one trial.
func generalScenario(cfg Config, size, trial int, kind scenario.Kind) (*scenario.Scenario, *abstract.Graph, error) {
	s, err := scenario.Generate(scenario.Config{
		Seed:                trialSeed(cfg.Seed, size, trial),
		NetworkSize:         size,
		Services:            cfg.Services,
		InstancesPerService: cfg.instancesFor(size),
		Kind:                kind,
	})
	if err != nil {
		return nil, nil, err
	}
	// The sweep pool already fans (size, trial) cells out across the
	// host's cores; keep the per-cell all-pairs computation sequential so
	// a single-worker sweep reproduces the historical behaviour exactly
	// and a parallel sweep does not oversubscribe.
	ag, err := abstract.BuildWorkersMetrics(s.Overlay, s.Req, 1, cfg.Metrics)
	if err != nil {
		return nil, nil, err
	}
	return s, ag, nil
}

// Fig10a reproduces Fig 10(a): the correctness coefficient (fraction of
// instance choices matching the global optimal flow graph) versus network
// size, for sFlow and the three control algorithms.
func Fig10a(cfg Config) (*Series, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	cols := []string{"sflow", "fixed", "random", "servicepath"}
	points, err := run(cfg, cols, func(size, trial int) (map[string]float64, error) {
		s, ag, err := generalScenario(cfg, size, trial, mixedKind(trial))
		if err != nil {
			return nil, err
		}
		opt, err := exact.Solve(ag, s.SourceNID, exact.Options{})
		if err != nil {
			return nil, err
		}
		cc := func(fg *flow.Graph) float64 { return fg.CorrectnessCoefficient(opt.Flow) }
		vals := make(map[string]float64, len(cols))

		sf, err := core.Federate(s.Overlay, s.Req, s.SourceNID, core.Options{Metrics: cfg.Metrics})
		if err != nil {
			return nil, fmt.Errorf("sflow: %w", err)
		}
		vals["sflow"] = cc(sf.Flow)

		fx, err := control.Fixed(ag, s.SourceNID)
		if err != nil {
			return nil, fmt.Errorf("fixed: %w", err)
		}
		vals["fixed"] = cc(fx.Flow)

		rd, err := control.Random(ag, s.SourceNID, rand.New(rand.NewSource(trialSeed(cfg.Seed, size, trial)+7)))
		if err != nil {
			return nil, fmt.Errorf("random: %w", err)
		}
		vals["random"] = cc(rd.Flow)

		sp, err := control.ServicePath(ag, s.SourceNID)
		if err != nil {
			return nil, fmt.Errorf("servicepath: %w", err)
		}
		vals["servicepath"] = cc(sp.Flow)
		return vals, nil
	})
	if err != nil {
		return nil, err
	}
	return &Series{
		ID:      "fig10a",
		Title:   "Correctness of the sFlow algorithm (correctness coefficient vs network size)",
		XLabel:  "NetworkSize",
		YLabel:  "correctness coefficient",
		Columns: cols,
		Points:  points,
	}, nil
}

// Fig10b reproduces Fig 10(b): computation time versus network size, sFlow
// against the global optimal algorithm. As in the paper, only simple
// (single-path) requirements are used so the two are comparable; sFlow's
// time is the total local computation time across all nodes, the optimal's
// is its single centralised solve. Values are microseconds.
func Fig10b(cfg Config) (*Series, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	cols := []string{"sflow", "optimal"}
	points, err := run(cfg, cols, func(size, trial int) (map[string]float64, error) {
		s, _, err := generalScenario(cfg, size, trial, scenario.KindPath)
		if err != nil {
			return nil, err
		}
		// Wall-clock microbenchmarks need a warm-up run and a few
		// repetitions to rise above allocator noise.
		const reps = 5
		var sfTotal time.Duration
		for i := 0; i <= reps; i++ {
			sf, err := core.Federate(s.Overlay, s.Req, s.SourceNID, core.Options{Metrics: cfg.Metrics})
			if err != nil {
				return nil, fmt.Errorf("sflow: %w", err)
			}
			if i > 0 { // skip the warm-up measurement
				sfTotal += sf.Stats.ComputeTime
			}
		}
		// On a path requirement the baseline algorithm IS the global
		// optimal (and polynomial — the reason the paper restricts this
		// comparison to simple requirements). Its time includes step 1,
		// the all-pairs shortest-widest computation behind the abstract
		// graph, exactly as sFlow's per-node time includes its local
		// view computations.
		var optTotal time.Duration
		for i := 0; i <= reps; i++ {
			start := time.Now()
			// Sequential all-pairs: the timed comparison against
			// sFlow's single-threaded per-node computations stays
			// apples-to-apples regardless of the sweep's fan-out.
			ag, err := abstract.BuildWorkers(s.Overlay, s.Req, 1)
			if err != nil {
				return nil, err
			}
			if _, err := baseline.Solve(ag, s.SourceNID, nil); err != nil {
				return nil, fmt.Errorf("optimal: %w", err)
			}
			if i > 0 {
				optTotal += time.Since(start)
			}
		}
		return map[string]float64{
			"sflow":   float64(sfTotal.Microseconds()) / reps,
			"optimal": float64(optTotal.Microseconds()) / reps,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Series{
		ID:      "fig10b",
		Title:   "Scalability over network size (computation time, microseconds)",
		XLabel:  "NetworkSize",
		YLabel:  "time (us)",
		Columns: cols,
		Points:  points,
	}, nil
}

// Fig10c reproduces Fig 10(c): the end-to-end latency of the federated
// service flow graph versus network size for sFlow, fixed and random.
// Values are microseconds.
func Fig10c(cfg Config) (*Series, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	cols := []string{"sflow", "fixed", "random"}
	points, err := run(cfg, cols, func(size, trial int) (map[string]float64, error) {
		s, ag, err := generalScenario(cfg, size, trial, mixedKind(trial))
		if err != nil {
			return nil, err
		}
		vals := make(map[string]float64, len(cols))
		sf, err := core.Federate(s.Overlay, s.Req, s.SourceNID, core.Options{Metrics: cfg.Metrics})
		if err != nil {
			return nil, fmt.Errorf("sflow: %w", err)
		}
		vals["sflow"] = float64(sf.Metric.Latency)
		fx, err := control.Fixed(ag, s.SourceNID)
		if err != nil {
			return nil, fmt.Errorf("fixed: %w", err)
		}
		vals["fixed"] = float64(fx.Metric.Latency)
		rd, err := control.Random(ag, s.SourceNID, rand.New(rand.NewSource(trialSeed(cfg.Seed, size, trial)+7)))
		if err != nil {
			return nil, fmt.Errorf("random: %w", err)
		}
		vals["random"] = float64(rd.Metric.Latency)
		return vals, nil
	})
	if err != nil {
		return nil, err
	}
	return &Series{
		ID:      "fig10c",
		Title:   "sFlow latency performance (end-to-end latency, microseconds)",
		XLabel:  "NetworkSize",
		YLabel:  "latency (us)",
		Columns: cols,
		Points:  points,
	}, nil
}

// Fig10d reproduces Fig 10(d): the end-to-end bottleneck bandwidth of the
// federated service flow graph versus network size for the global optimal,
// sFlow, fixed and random. Values are Kbit/s.
func Fig10d(cfg Config) (*Series, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	cols := []string{"optimal", "sflow", "fixed", "random"}
	points, err := run(cfg, cols, func(size, trial int) (map[string]float64, error) {
		s, ag, err := generalScenario(cfg, size, trial, mixedKind(trial))
		if err != nil {
			return nil, err
		}
		vals := make(map[string]float64, len(cols))
		opt, err := exact.Solve(ag, s.SourceNID, exact.Options{})
		if err != nil {
			return nil, fmt.Errorf("optimal: %w", err)
		}
		vals["optimal"] = float64(opt.Metric.Bandwidth)
		sf, err := core.Federate(s.Overlay, s.Req, s.SourceNID, core.Options{Metrics: cfg.Metrics})
		if err != nil {
			return nil, fmt.Errorf("sflow: %w", err)
		}
		vals["sflow"] = float64(sf.Metric.Bandwidth)
		fx, err := control.Fixed(ag, s.SourceNID)
		if err != nil {
			return nil, fmt.Errorf("fixed: %w", err)
		}
		vals["fixed"] = float64(fx.Metric.Bandwidth)
		rd, err := control.Random(ag, s.SourceNID, rand.New(rand.NewSource(trialSeed(cfg.Seed, size, trial)+7)))
		if err != nil {
			return nil, fmt.Errorf("random: %w", err)
		}
		vals["random"] = float64(rd.Metric.Bandwidth)
		return vals, nil
	})
	if err != nil {
		return nil, err
	}
	return &Series{
		ID:      "fig10d",
		Title:   "sFlow bandwidth performance (end-to-end bandwidth, Kbit/s)",
		XLabel:  "NetworkSize",
		YLabel:  "bandwidth (Kbit/s)",
		Columns: cols,
		Points:  points,
	}, nil
}

// AblationLookahead measures the correctness coefficient of sFlow as the
// local-view radius varies (1, 2 and 3 hops) — quantifying the paper's
// two-hop local knowledge assumption.
func AblationLookahead(cfg Config) (*Series, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	cols := []string{"hops=1", "hops=2", "hops=3"}
	points, err := run(cfg, cols, func(size, trial int) (map[string]float64, error) {
		s, ag, err := generalScenario(cfg, size, trial, scenario.KindGeneral)
		if err != nil {
			return nil, err
		}
		opt, err := exact.Solve(ag, s.SourceNID, exact.Options{})
		if err != nil {
			return nil, err
		}
		vals := make(map[string]float64, len(cols))
		for hops := 1; hops <= 3; hops++ {
			sf, err := core.Federate(s.Overlay, s.Req, s.SourceNID, core.Options{Hops: hops, Metrics: cfg.Metrics})
			if err != nil {
				return nil, fmt.Errorf("hops=%d: %w", hops, err)
			}
			vals[fmt.Sprintf("hops=%d", hops)] = sf.Flow.CorrectnessCoefficient(opt.Flow)
		}
		return vals, nil
	})
	if err != nil {
		return nil, err
	}
	return &Series{
		ID:      "ablation-lookahead",
		Title:   "sFlow correctness vs local-view radius",
		XLabel:  "NetworkSize",
		YLabel:  "correctness coefficient",
		Columns: cols,
		Points:  points,
	}, nil
}

// AblationReduction measures the bandwidth of the flow graphs produced by
// full sFlow against the greedy ablation (reductions disabled), both
// normalised by the global optimal bandwidth.
func AblationReduction(cfg Config) (*Series, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	cols := []string{"full", "greedy"}
	points, err := run(cfg, cols, func(size, trial int) (map[string]float64, error) {
		s, ag, err := generalScenario(cfg, size, trial, scenario.KindGeneral)
		if err != nil {
			return nil, err
		}
		opt, err := exact.Solve(ag, s.SourceNID, exact.Options{})
		if err != nil {
			return nil, err
		}
		vals := make(map[string]float64, len(cols))
		full, err := core.Federate(s.Overlay, s.Req, s.SourceNID, core.Options{Metrics: cfg.Metrics})
		if err != nil {
			return nil, fmt.Errorf("full: %w", err)
		}
		vals["full"] = float64(full.Metric.Bandwidth) / float64(opt.Metric.Bandwidth)
		greedy, err := core.Federate(s.Overlay, s.Req, s.SourceNID, core.Options{DisableReductions: true, Metrics: cfg.Metrics})
		if err != nil {
			return nil, fmt.Errorf("greedy: %w", err)
		}
		vals["greedy"] = float64(greedy.Metric.Bandwidth) / float64(opt.Metric.Bandwidth)
		return vals, nil
	})
	if err != nil {
		return nil, err
	}
	return &Series{
		ID:      "ablation-reduction",
		Title:   "Flow-graph bandwidth relative to optimal: full sFlow vs greedy ablation",
		XLabel:  "NetworkSize",
		YLabel:  "bandwidth / optimal",
		Columns: cols,
		Points:  points,
	}, nil
}

// All runs every figure and ablation with one config.
func All(cfg Config) ([]*Series, error) {
	type entry struct {
		name string
		fn   func(Config) (*Series, error)
	}
	var out []*Series
	for _, e := range []entry{
		{"fig10a", Fig10a}, {"fig10b", Fig10b}, {"fig10c", Fig10c}, {"fig10d", Fig10d},
		{"ablation-lookahead", AblationLookahead}, {"ablation-reduction", AblationReduction},
		{"admission", Admission},
		{"tenants", Tenants},
		{"overhead", Overhead},
		{"repair", RepairChurn},
		{"blocking", Blocking},
		{"hierarchy", Hierarchy},
		{"faults", FaultSweep},
		{"dynamics", Dynamics},
		{"reopt", Reopt},
	} {
		s, err := e.fn(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", e.name, err)
		}
		out = append(out, s)
	}
	return out, nil
}
