package experiments

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Markdown renders a series as a GitHub-flavoured markdown table.
func (s *Series) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", s.ID, s.Title)
	b.WriteString("| " + s.XLabel)
	for _, c := range s.Columns {
		b.WriteString(" | " + c)
	}
	b.WriteString(" |\n|")
	for i := 0; i <= len(s.Columns); i++ {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for _, p := range s.Points {
		fmt.Fprintf(&b, "| %d", p.X)
		for _, c := range s.Columns {
			if std, ok := p.Std[c]; ok && std > 0 {
				fmt.Fprintf(&b, " | %.4f ± %.4f", p.Values[c], std)
			} else {
				fmt.Fprintf(&b, " | %.4f", p.Values[c])
			}
		}
		b.WriteString(" |\n")
	}
	return b.String()
}

// Report runs every experiment with one config and assembles a single
// markdown document — the regenerable data behind EXPERIMENTS.md.
func Report(cfg Config) (string, error) {
	full, err := cfg.withDefaults()
	if err != nil {
		return "", err
	}
	series, err := All(cfg)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("# sFlow reproduction — measured results\n\n")
	fmt.Fprintf(&b, "Configuration: sizes %v, %d trials per size, seed %d, %d services.\n\n",
		full.Sizes, full.Trials, full.Seed, full.Services)
	for _, s := range series {
		b.WriteString(s.Markdown())
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// seriesJSON is the wire form of a Series.
type seriesJSON struct {
	ID      string   `json:"id"`
	Title   string   `json:"title"`
	XLabel  string   `json:"xLabel"`
	YLabel  string   `json:"yLabel"`
	Columns []string `json:"columns"`
	Points  []Point  `json:"points"`
}

// MarshalJSON encodes the series for downstream plotting tools.
func (s *Series) MarshalJSON() ([]byte, error) {
	return json.Marshal(seriesJSON{
		ID: s.ID, Title: s.Title, XLabel: s.XLabel, YLabel: s.YLabel,
		Columns: s.Columns, Points: s.Points,
	})
}

// UnmarshalJSON decodes a series.
func (s *Series) UnmarshalJSON(data []byte) error {
	var w seriesJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("experiments: decode series: %w", err)
	}
	*s = Series{
		ID: w.ID, Title: w.Title, XLabel: w.XLabel, YLabel: w.YLabel,
		Columns: w.Columns, Points: w.Points,
	}
	return nil
}
