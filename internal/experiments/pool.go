package experiments

import (
	"sync"
	"sync/atomic"
)

// forEachCell executes fn(0), fn(1), ..., fn(n-1) on up to workers
// goroutines. Cells must be independent of each other — in a sweep, each
// (size, trial) cell owns its seed via trialSeed, so any execution order
// yields the same per-cell results; callers assemble them back in index
// order to keep output deterministic at every worker count.
//
// With workers <= 1 the cells run sequentially in index order, reproducing
// the historical behaviour exactly. On failure the error of the
// lowest-index failed cell is returned; remaining cells are abandoned as
// soon as any cell fails, so which cells ran to completion (but never their
// results) can vary across worker counts.
func forEachCell(n, workers int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
