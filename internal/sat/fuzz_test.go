package sat

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseDIMACS asserts that whatever the parser accepts survives a
// write/parse round trip unchanged, and that the solver never panics on it.
func FuzzParseDIMACS(f *testing.F) {
	f.Add("p cnf 2 1\n1 -2 0\n")
	f.Add("c comment\np cnf 3 2\n1 2 3 0\n-1 -2 0\n")
	f.Add("p cnf 1 1\n0\n")
	f.Add("p cnf 0 0\n")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, input string) {
		formula, err := ParseDIMACS(strings.NewReader(input))
		if err != nil {
			return // rejected input is fine
		}
		var buf bytes.Buffer
		if err := formula.WriteDIMACS(&buf); err != nil {
			t.Fatalf("accepted formula fails to write: %v", err)
		}
		back, err := ParseDIMACS(&buf)
		if err != nil {
			t.Fatalf("own output rejected: %v\n%s", err, buf.String())
		}
		if back.NumVars() != formula.NumVars() || back.NumClauses() != formula.NumClauses() {
			t.Fatalf("round trip changed shape: %d/%d -> %d/%d",
				formula.NumVars(), formula.NumClauses(), back.NumVars(), back.NumClauses())
		}
		// Solving must terminate without panicking; if SAT, the witness
		// must satisfy. Skip huge formulas to bound the fuzz budget.
		if formula.NumVars() <= 12 && formula.NumClauses() <= 24 {
			if a, ok := formula.Solve(); ok && !formula.Satisfies(a) {
				t.Fatalf("unsatisfying witness %v", a)
			}
		}
	})
}
