package sat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseDIMACS reads a CNF formula in simplified DIMACS format: optional
// comment lines starting with 'c', one problem line "p cnf <vars> <clauses>",
// then whitespace-separated literals with each clause terminated by 0.
func ParseDIMACS(r io.Reader) (*Formula, error) {
	sc := bufio.NewScanner(r)
	var (
		f       *Formula
		clause  []Literal
		clauses int
		want    = -1
	)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			if f != nil {
				return nil, fmt.Errorf("sat: duplicate problem line")
			}
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("sat: malformed problem line %q", line)
			}
			nv, err1 := strconv.Atoi(fields[2])
			nc, err2 := strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil || nv < 0 || nc < 0 {
				return nil, fmt.Errorf("sat: malformed problem line %q", line)
			}
			f = New(nv)
			want = nc
			continue
		}
		if f == nil {
			return nil, fmt.Errorf("sat: clause before problem line: %q", line)
		}
		for _, tok := range strings.Fields(line) {
			v, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("sat: bad literal %q", tok)
			}
			if v == 0 {
				if err := f.AddClause(clause...); err != nil {
					return nil, err
				}
				clauses++
				clause = clause[:0]
				continue
			}
			clause = append(clause, Literal(v))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sat: read: %w", err)
	}
	if f == nil {
		return nil, fmt.Errorf("sat: missing problem line")
	}
	if len(clause) > 0 {
		return nil, fmt.Errorf("sat: unterminated clause %v", clause)
	}
	if clauses != want {
		return nil, fmt.Errorf("sat: problem line promises %d clauses, found %d", want, clauses)
	}
	return f, nil
}

// WriteDIMACS writes the formula in DIMACS CNF format.
func (f *Formula) WriteDIMACS(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "p cnf %d %d\n", f.numVars, len(f.clauses)); err != nil {
		return err
	}
	for _, cl := range f.clauses {
		var b strings.Builder
		for _, l := range cl {
			fmt.Fprintf(&b, "%d ", int(l))
		}
		b.WriteString("0\n")
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}
