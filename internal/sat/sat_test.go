package sat

import (
	"math/rand"
	"testing"
)

func mustAdd(t *testing.T, f *Formula, lits ...Literal) {
	t.Helper()
	if err := f.AddClause(lits...); err != nil {
		t.Fatal(err)
	}
}

func TestLiteralBasics(t *testing.T) {
	l := Literal(-3)
	if l.Var() != 3 || l.Positive() || l.Negate() != 3 {
		t.Fatal("literal accessors wrong")
	}
	if l.String() != "!x3" || l.Negate().String() != "x3" {
		t.Fatalf("String = %q / %q", l.String(), l.Negate().String())
	}
}

func TestAddClauseValidation(t *testing.T) {
	f := New(2)
	if err := f.AddClause(1, 0); err == nil {
		t.Fatal("zero literal accepted")
	}
	if err := f.AddClause(3); err == nil {
		t.Fatal("out-of-range literal accepted")
	}
	if err := f.AddClause(1, -2); err != nil {
		t.Fatal(err)
	}
	if f.NumClauses() != 1 || f.NumVars() != 2 {
		t.Fatal("counts wrong")
	}
}

func TestSolveSimpleSAT(t *testing.T) {
	f := New(2)
	mustAdd(t, f, 1, 2)
	mustAdd(t, f, -1, 2)
	a, ok := f.Solve()
	if !ok {
		t.Fatal("satisfiable formula reported UNSAT")
	}
	if !f.Satisfies(a) {
		t.Fatalf("returned assignment %v does not satisfy %v", a, f)
	}
	if len(a) != 2 {
		t.Fatalf("assignment incomplete: %v", a)
	}
}

func TestSolveUNSAT(t *testing.T) {
	f := New(1)
	mustAdd(t, f, 1)
	mustAdd(t, f, -1)
	if _, ok := f.Solve(); ok {
		t.Fatal("contradiction reported SAT")
	}
}

func TestSolveEmptyClause(t *testing.T) {
	f := New(1)
	mustAdd(t, f) // empty clause
	if _, ok := f.Solve(); ok {
		t.Fatal("empty clause reported SAT")
	}
}

func TestSolveEmptyFormula(t *testing.T) {
	f := New(3)
	a, ok := f.Solve()
	if !ok || len(a) != 3 {
		t.Fatalf("empty formula: %v %v", a, ok)
	}
}

func TestSolvePigeonhole(t *testing.T) {
	// PHP(3,2): 3 pigeons, 2 holes — classic small UNSAT instance.
	// Variables p_{i,h} = pigeon i in hole h: v = 2*(i-1)+h for i in 1..3,
	// h in 1..2.
	v := func(i, h int) Literal { return Literal(2*(i-1) + h) }
	f := New(6)
	for i := 1; i <= 3; i++ {
		mustAdd(t, f, v(i, 1), v(i, 2)) // each pigeon somewhere
	}
	for h := 1; h <= 2; h++ {
		for i := 1; i <= 3; i++ {
			for j := i + 1; j <= 3; j++ {
				mustAdd(t, f, -v(i, h), -v(j, h)) // no two share a hole
			}
		}
	}
	if _, ok := f.Solve(); ok {
		t.Fatal("pigeonhole reported SAT")
	}
}

func TestPaperExample(t *testing.T) {
	// The formula from Fig 7 of the paper:
	// U = {x, y, z, w}, C = {{x,y,z,w}, {!x,y,!z}, {x,!y,w}, {!y,z}}.
	// x=1 y=2 z=3 w=4.
	f := New(4)
	mustAdd(t, f, 1, 2, 3, 4)
	mustAdd(t, f, -1, 2, -3)
	mustAdd(t, f, 1, -2, 4)
	mustAdd(t, f, -2, 3)
	a, ok := f.Solve()
	if !ok {
		t.Fatal("paper example reported UNSAT")
	}
	if !f.Satisfies(a) {
		t.Fatalf("assignment %v does not satisfy", a)
	}
}

// bruteSat decides satisfiability by trying all 2^n assignments.
func bruteSat(f *Formula) bool {
	n := f.NumVars()
	for mask := 0; mask < 1<<n; mask++ {
		a := make(Assignment, n)
		for v := 1; v <= n; v++ {
			a[v] = mask&(1<<(v-1)) != 0
		}
		if f.Satisfies(a) {
			return true
		}
	}
	return false
}

func TestSolveMatchesBruteForceOnRandom3SAT(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(7)
		m := 1 + rng.Intn(4*n)
		f := New(n)
		for c := 0; c < m; c++ {
			k := 1 + rng.Intn(3)
			lits := make([]Literal, 0, k)
			for j := 0; j < k; j++ {
				l := Literal(1 + rng.Intn(n))
				if rng.Intn(2) == 0 {
					l = -l
				}
				lits = append(lits, l)
			}
			if err := f.AddClause(lits...); err != nil {
				t.Fatal(err)
			}
		}
		want := bruteSat(f)
		a, got := f.Solve()
		if got != want {
			t.Fatalf("trial %d: DPLL=%v brute=%v for %v", trial, got, want, f)
		}
		if got && !f.Satisfies(a) {
			t.Fatalf("trial %d: unsatisfying witness %v for %v", trial, a, f)
		}
	}
}

func TestString(t *testing.T) {
	f := New(3)
	mustAdd(t, f, 1, -2)
	mustAdd(t, f, 3)
	if got, want := f.String(), "(x1 | !x2) & (x3)"; got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}
