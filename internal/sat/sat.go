// Package sat provides CNF formulas and a small DPLL satisfiability solver
// (unit propagation plus pure-literal elimination). It is the substrate for
// machine-checking Theorem 1 of the paper: the reduction from SAT to the
// Maximum Service Flow Graph Problem.
package sat

import (
	"fmt"
	"sort"
	"strings"
)

// Literal is a propositional literal: +v for variable v, -v for its
// negation. Variables are numbered from 1.
type Literal int

// Var returns the literal's variable (always positive).
func (l Literal) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Positive reports whether the literal is un-negated.
func (l Literal) Positive() bool { return l > 0 }

// Negate returns the complementary literal.
func (l Literal) Negate() Literal { return -l }

// String renders the literal as "x3" or "!x3".
func (l Literal) String() string {
	if l < 0 {
		return fmt.Sprintf("!x%d", -l)
	}
	return fmt.Sprintf("x%d", int(l))
}

// Clause is a disjunction of literals.
type Clause []Literal

// Formula is a CNF formula.
type Formula struct {
	numVars int
	clauses []Clause
}

// New returns an empty formula over variables 1..numVars.
func New(numVars int) *Formula { return &Formula{numVars: numVars} }

// NumVars returns the number of variables.
func (f *Formula) NumVars() int { return f.numVars }

// NumClauses returns the number of clauses.
func (f *Formula) NumClauses() int { return len(f.clauses) }

// Clauses returns the clauses. The result must not be modified.
func (f *Formula) Clauses() []Clause { return f.clauses }

// AddClause appends a clause. Literals must reference variables in range;
// an empty clause is allowed (it makes the formula unsatisfiable).
func (f *Formula) AddClause(lits ...Literal) error {
	for _, l := range lits {
		if l == 0 {
			return fmt.Errorf("sat: zero literal")
		}
		if v := l.Var(); v > f.numVars {
			return fmt.Errorf("sat: literal %v out of range (formula has %d variables)", l, f.numVars)
		}
	}
	cl := make(Clause, len(lits))
	copy(cl, lits)
	f.clauses = append(f.clauses, cl)
	return nil
}

// Assignment maps variables to truth values. Missing variables are
// unassigned.
type Assignment map[int]bool

// Satisfies reports whether the (possibly partial) assignment satisfies
// every clause of the formula.
func (f *Formula) Satisfies(a Assignment) bool {
	for _, cl := range f.clauses {
		ok := false
		for _, l := range cl {
			if v, set := a[l.Var()]; set && v == l.Positive() {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Solve runs DPLL and returns a satisfying assignment (complete over all
// variables) if one exists.
func (f *Formula) Solve() (Assignment, bool) {
	a := make(Assignment, f.numVars)
	if !dpll(f.clauses, a) {
		return nil, false
	}
	// Complete the assignment: unconstrained variables default to false.
	for v := 1; v <= f.numVars; v++ {
		if _, ok := a[v]; !ok {
			a[v] = false
		}
	}
	return a, true
}

// dpll decides satisfiability of the clause set under the partial assignment
// a, extending a in place on success.
func dpll(clauses []Clause, a Assignment) bool {
	simplified, conflict := simplify(clauses, a)
	if conflict {
		return false
	}
	if len(simplified) == 0 {
		return true
	}

	// Unit propagation.
	for _, cl := range simplified {
		if len(cl) == 1 {
			l := cl[0]
			a[l.Var()] = l.Positive()
			if dpll(simplified, a) {
				return true
			}
			delete(a, l.Var())
			return false
		}
	}

	// Pure-literal elimination.
	if l, ok := pureLiteral(simplified); ok {
		a[l.Var()] = l.Positive()
		if dpll(simplified, a) {
			return true
		}
		delete(a, l.Var())
		return false
	}

	// Branch on the first literal of the first clause.
	l := simplified[0][0]
	for _, val := range []bool{l.Positive(), !l.Positive()} {
		a[l.Var()] = val
		if dpll(simplified, a) {
			return true
		}
		delete(a, l.Var())
	}
	return false
}

// simplify removes satisfied clauses and false literals under a. It reports
// a conflict when some clause becomes empty.
func simplify(clauses []Clause, a Assignment) ([]Clause, bool) {
	var out []Clause
	for _, cl := range clauses {
		var reduced Clause
		satisfied := false
		for _, l := range cl {
			v, set := a[l.Var()]
			if !set {
				reduced = append(reduced, l)
				continue
			}
			if v == l.Positive() {
				satisfied = true
				break
			}
		}
		if satisfied {
			continue
		}
		if len(reduced) == 0 {
			return nil, true
		}
		out = append(out, reduced)
	}
	return out, false
}

// pureLiteral finds a literal whose complement never occurs.
func pureLiteral(clauses []Clause) (Literal, bool) {
	seen := make(map[Literal]bool)
	for _, cl := range clauses {
		for _, l := range cl {
			seen[l] = true
		}
	}
	lits := make([]Literal, 0, len(seen))
	for l := range seen {
		lits = append(lits, l)
	}
	sort.Slice(lits, func(i, j int) bool { return lits[i] < lits[j] })
	for _, l := range lits {
		if !seen[l.Negate()] {
			return l, true
		}
	}
	return 0, false
}

// String renders the formula as "(x1 | !x2) & (x2 | x3)".
func (f *Formula) String() string {
	parts := make([]string, 0, len(f.clauses))
	for _, cl := range f.clauses {
		lits := make([]string, 0, len(cl))
		for _, l := range cl {
			lits = append(lits, l.String())
		}
		parts = append(parts, "("+strings.Join(lits, " | ")+")")
	}
	return strings.Join(parts, " & ")
}
