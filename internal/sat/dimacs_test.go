package sat

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func TestParseDIMACS(t *testing.T) {
	in := `c a comment
c another

p cnf 3 2
1 -2 0
2 3 0
`
	f, err := ParseDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if f.NumVars() != 3 || f.NumClauses() != 2 {
		t.Fatalf("parsed %d vars %d clauses", f.NumVars(), f.NumClauses())
	}
	if want := (Clause{1, -2}); !reflect.DeepEqual(f.Clauses()[0], want) {
		t.Fatalf("clause 0 = %v", f.Clauses()[0])
	}
}

func TestParseDIMACSMultilineClause(t *testing.T) {
	in := "p cnf 2 1\n1\n-2\n0\n"
	f, err := ParseDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if f.NumClauses() != 1 || len(f.Clauses()[0]) != 2 {
		t.Fatalf("parsed %v", f.Clauses())
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	cases := map[string]string{
		"missing problem line":  "1 2 0\n",
		"no p line at all":      "c only comments\n",
		"malformed p line":      "p sat 3 2\n",
		"short p line":          "p cnf 3\n",
		"negative counts":       "p cnf -1 2\n",
		"duplicate p line":      "p cnf 2 1\np cnf 2 1\n1 0\n",
		"bad literal":           "p cnf 2 1\nx 0\n",
		"out of range literal":  "p cnf 2 1\n5 0\n",
		"unterminated clause":   "p cnf 2 1\n1 2\n",
		"clause count mismatch": "p cnf 2 2\n1 0\n",
	}
	for name, in := range cases {
		if _, err := ParseDIMACS(strings.NewReader(in)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(8)
		f := New(n)
		for c := 0; c < rng.Intn(10); c++ {
			k := 1 + rng.Intn(4)
			lits := make([]Literal, 0, k)
			for j := 0; j < k; j++ {
				l := Literal(1 + rng.Intn(n))
				if rng.Intn(2) == 0 {
					l = -l
				}
				lits = append(lits, l)
			}
			if err := f.AddClause(lits...); err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if err := f.WriteDIMACS(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ParseDIMACS(&buf)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, buf.String())
		}
		if back.NumVars() != f.NumVars() || !reflect.DeepEqual(back.Clauses(), f.Clauses()) {
			t.Fatalf("trial %d: round trip changed formula", trial)
		}
	}
}
