// Package workload generates heterogeneous federation request streams —
// Poisson arrivals with varying bandwidth demands and holding times — and
// replays them over a provisioned overlay on the discrete-event simulator.
// It generalises the identical-request probes of the evaluation harness to
// realistic mixed traffic.
package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"sflow/internal/des"
	"sflow/internal/overlay"
	"sflow/internal/provision"
	"sflow/internal/require"
)

// Request is one federation demand arriving at the overlay.
type Request struct {
	// Req is the service requirement; Src the entry instance.
	Req *require.Requirement
	Src int
	// Demand is the bandwidth to reserve (Kbit/s).
	Demand int64
	// Holding is how long an admitted request keeps its reservation
	// (virtual microseconds).
	Holding int64
	// Arrival is the request's arrival time (virtual microseconds from
	// the start of the simulation).
	Arrival int64
}

// Config controls stream generation.
type Config struct {
	// Seed makes the stream reproducible.
	Seed int64
	// Count is the number of requests (>= 1).
	Count int
	// MeanInterarrival is the mean gap between arrivals in virtual
	// microseconds (exponential).
	MeanInterarrival int64
	// MeanHolding is the mean reservation lifetime (exponential).
	MeanHolding int64
	// DemandMin/DemandMax bound the per-request bandwidth demand
	// (uniform, inclusive).
	DemandMin, DemandMax int64
}

func (c Config) validate() error {
	switch {
	case c.Count < 1:
		return fmt.Errorf("workload: count %d < 1", c.Count)
	case c.MeanInterarrival <= 0 || c.MeanHolding <= 0:
		return fmt.Errorf("workload: non-positive time parameters")
	case c.DemandMin <= 0 || c.DemandMax < c.DemandMin:
		return fmt.Errorf("workload: bad demand range [%d,%d]", c.DemandMin, c.DemandMax)
	}
	return nil
}

// Generate draws a request stream against one requirement and source (the
// consumer re-issuing the same federated service with varying load).
func Generate(req *require.Requirement, src int, cfg Config) ([]Request, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]Request, 0, cfg.Count)
	var clock int64
	for i := 0; i < cfg.Count; i++ {
		clock += int64(rng.ExpFloat64() * float64(cfg.MeanInterarrival))
		out = append(out, Request{
			Req:     req,
			Src:     src,
			Demand:  cfg.DemandMin + rng.Int63n(cfg.DemandMax-cfg.DemandMin+1),
			Holding: 1 + int64(rng.ExpFloat64()*float64(cfg.MeanHolding)),
			Arrival: clock,
		})
	}
	return out, nil
}

// Result summarises one replay.
type Result struct {
	Offered, Admitted, Blocked int
	// AdmittedDemand sums the bandwidth of every admitted request.
	AdmittedDemand int64
	// PeakConcurrent is the maximum number of simultaneously held
	// admissions.
	PeakConcurrent int
	// EndTime is the virtual time when the last event fired.
	EndTime int64
}

// BlockingProbability returns Blocked/Offered.
func (r *Result) BlockingProbability() float64 {
	if r.Offered == 0 {
		return 0
	}
	return float64(r.Blocked) / float64(r.Offered)
}

// Simulate replays a request stream over a fresh provisioner for the given
// overlay, admitting with alg and releasing after each holding time.
func Simulate(ov *overlay.Overlay, reqs []Request, alg provision.Algorithm) (*Result, error) {
	if len(reqs) == 0 {
		return nil, fmt.Errorf("workload: empty request stream")
	}
	// Arrivals must be replayed in time order.
	ordered := make([]Request, len(reqs))
	copy(ordered, reqs)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Arrival < ordered[j].Arrival })

	sim := des.New()
	mgr := provision.NewManager(ov)
	res := &Result{}
	var failure error
	concurrent := 0

	for _, r := range ordered {
		r := r
		err := sim.ScheduleAt(r.Arrival, func() {
			if failure != nil {
				return
			}
			res.Offered++
			adm, err := mgr.Admit(r.Req, r.Src, r.Demand, alg)
			if errors.Is(err, provision.ErrRejected) {
				res.Blocked++
				return
			}
			if err != nil {
				failure = err
				return
			}
			res.Admitted++
			res.AdmittedDemand += r.Demand
			concurrent++
			if concurrent > res.PeakConcurrent {
				res.PeakConcurrent = concurrent
			}
			if err := sim.Schedule(r.Holding, func() {
				concurrent--
				if err := mgr.Release(adm); err != nil && failure == nil {
					failure = err
				}
			}); err != nil && failure == nil {
				failure = err
			}
		})
		if err != nil {
			return nil, err
		}
	}
	sim.Run()
	if failure != nil {
		return nil, failure
	}
	res.EndTime = sim.Now()
	return res, nil
}
