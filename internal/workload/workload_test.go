package workload

import (
	"reflect"
	"testing"

	"sflow/internal/abstract"
	"sflow/internal/control"
	"sflow/internal/flow"
	"sflow/internal/overlay"
	"sflow/internal/qos"
	"sflow/internal/require"
	"sflow/internal/scenario"
)

func fixedAlg(ov *overlay.Overlay, req *require.Requirement, src int) (*flow.Graph, qos.Metric, error) {
	ag, err := abstract.Build(ov, req)
	if err != nil {
		return nil, qos.Unreachable, err
	}
	r, err := control.Fixed(ag, src)
	if err != nil {
		return nil, qos.Unreachable, err
	}
	return r.Flow, r.Metric, nil
}

func testStream(t *testing.T, count int, meanHold int64) (*scenario.Scenario, []Request) {
	t.Helper()
	s, err := scenario.Generate(scenario.Config{
		Seed: 3, NetworkSize: 15, Services: 5, InstancesPerService: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := Generate(s.Req, s.SourceNID, Config{
		Seed: 1, Count: count,
		MeanInterarrival: 10_000, MeanHolding: meanHold,
		DemandMin: 50, DemandMax: 250,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, reqs
}

func TestGenerateStream(t *testing.T) {
	_, reqs := testStream(t, 50, 40_000)
	if len(reqs) != 50 {
		t.Fatalf("generated %d requests", len(reqs))
	}
	var last int64 = -1
	sawVariety := false
	for i, r := range reqs {
		if r.Arrival < last {
			t.Fatalf("arrivals not monotone at %d", i)
		}
		last = r.Arrival
		if r.Demand < 50 || r.Demand > 250 {
			t.Fatalf("demand %d out of range", r.Demand)
		}
		if r.Holding < 1 {
			t.Fatalf("holding %d", r.Holding)
		}
		if i > 0 && r.Demand != reqs[0].Demand {
			sawVariety = true
		}
	}
	if !sawVariety {
		t.Fatal("all demands identical — not a mixed workload")
	}
	// Deterministic.
	s, err := scenario.Generate(scenario.Config{
		Seed: 3, NetworkSize: 15, Services: 5, InstancesPerService: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	again, err := Generate(s.Req, s.SourceNID, Config{
		Seed: 1, Count: 50,
		MeanInterarrival: 10_000, MeanHolding: 40_000,
		DemandMin: 50, DemandMax: 250,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		if reqs[i].Arrival != again[i].Arrival || reqs[i].Demand != again[i].Demand {
			t.Fatalf("generation not deterministic at %d", i)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	s, reqs := testStream(t, 1, 1000)
	_ = reqs
	cases := []Config{
		{Seed: 1, Count: 0, MeanInterarrival: 1, MeanHolding: 1, DemandMin: 1, DemandMax: 2},
		{Seed: 1, Count: 5, MeanInterarrival: 0, MeanHolding: 1, DemandMin: 1, DemandMax: 2},
		{Seed: 1, Count: 5, MeanInterarrival: 1, MeanHolding: 0, DemandMin: 1, DemandMax: 2},
		{Seed: 1, Count: 5, MeanInterarrival: 1, MeanHolding: 1, DemandMin: 0, DemandMax: 2},
		{Seed: 1, Count: 5, MeanInterarrival: 1, MeanHolding: 1, DemandMin: 3, DemandMax: 2},
	}
	for i, cfg := range cases {
		if _, err := Generate(s.Req, s.SourceNID, cfg); err == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
}

func TestSimulateConservation(t *testing.T) {
	s, reqs := testStream(t, 80, 60_000)
	res, err := Simulate(s.Overlay, reqs, fixedAlg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Offered != 80 {
		t.Fatalf("offered %d", res.Offered)
	}
	if res.Admitted+res.Blocked != res.Offered {
		t.Fatalf("conservation violated: %d + %d != %d", res.Admitted, res.Blocked, res.Offered)
	}
	if res.Admitted == 0 {
		t.Fatal("nothing admitted")
	}
	if res.PeakConcurrent < 1 {
		t.Fatal("peak concurrency not tracked")
	}
	if p := res.BlockingProbability(); p < 0 || p > 1 {
		t.Fatalf("blocking probability %v", p)
	}
	if res.EndTime <= 0 {
		t.Fatal("end time not tracked")
	}
}

func TestSimulateLightLoadAdmitsEverything(t *testing.T) {
	// Short holding times and tiny demands: nothing should block.
	s, err := scenario.Generate(scenario.Config{
		Seed: 4, NetworkSize: 15, Services: 5, InstancesPerService: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := Generate(s.Req, s.SourceNID, Config{
		Seed: 2, Count: 30,
		MeanInterarrival: 100_000, MeanHolding: 10,
		DemandMin: 1, DemandMax: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(s.Overlay, reqs, fixedAlg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocked != 0 {
		t.Fatalf("light load blocked %d requests", res.Blocked)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	s, reqs := testStream(t, 40, 50_000)
	a, err := Simulate(s.Overlay, reqs, fixedAlg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(s.Overlay, reqs, fixedAlg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("simulation not deterministic: %+v vs %+v", a, b)
	}
	// The original overlay is untouched across simulations.
	if _, err := Simulate(s.Overlay, reqs, fixedAlg); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateEmptyStream(t *testing.T) {
	s, _ := testStream(t, 1, 1000)
	if _, err := Simulate(s.Overlay, nil, fixedAlg); err == nil {
		t.Fatal("empty stream accepted")
	}
}
