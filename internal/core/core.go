// Package core implements sFlow, the paper's contribution: a fully
// distributed algorithm that federates service instances into a service flow
// graph satisfying a DAG-shaped service requirement (Sec 4).
//
// The consumer injects an sfederate message at the source service instance.
// Every instance that receives sfederate:
//
//  1. waits until one message has arrived per upstream service stream (merge
//     synchronisation),
//  2. computes a locally optimal partial service flow graph over its local
//     overlay view (two hops by default) using the baseline algorithm plus
//     the reduction heuristics of Sec 3.4,
//  3. commits the streams to its immediate downstream services, and forwards
//     sfederate — carrying the partial flow graph, the remaining requirement
//     and the pinned instance choices — to the chosen instances.
//
// Splitting nodes decide the instances of downstream *merging* services and
// pin them, so parallel branches converge on the same instance (the paper's
// split-and-merge reduction applied implicitly by the splitter). Merges that
// no common splitter could see are arbitrated through a first-claim
// rendezvous; a branch that loses the race re-computes its local choice with
// the winning instance pinned — the re-computation overhead the paper
// observes in Fig 10(b).
//
// Sink instances report the completed flow graph back to the consumer.
package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"sflow/internal/abstract"
	"sflow/internal/flow"
	"sflow/internal/linkstate"
	"sflow/internal/metrics"
	"sflow/internal/overlay"
	"sflow/internal/qos"
	"sflow/internal/reduce"
	"sflow/internal/require"
	"sflow/internal/trace"
	"sflow/internal/transport"
)

// userNID is the virtual node representing the service consumer: it injects
// the initial sfederate message and collects sink reports.
const userNID = -1

// ErrStuck is returned when federation cannot complete (for example, an
// immediate downstream service has no instance inside a node's local view).
var ErrStuck = errors.New("core: federation stuck")

// Options tunes the distributed algorithm.
type Options struct {
	// Hops is the local-view radius; the paper assumes every node knows
	// the overlay within two hops (default 2).
	Hops int
	// Concurrent runs the protocol on the goroutine transport instead of
	// the deterministic DES transport.
	Concurrent bool
	// Loopback runs the protocol over real loopback TCP sockets with
	// JSON-framed messages (implies concurrent execution; no virtual
	// clock). Exercises the full serialisation path.
	Loopback bool
	// LinkState builds every node's local view from a scoped link-state
	// exchange (internal/linkstate) instead of reading it off the global
	// overlay — the mechanism the paper's local-knowledge assumption
	// stands on, made explicit.
	LinkState bool
	// DisableReductions is the ablation switch: nodes pick each immediate
	// downstream instance by the widest direct link only, with no
	// lookahead and no fragment solving.
	DisableReductions bool
	// Trace, when non-nil, records the protocol event timeline.
	Trace *trace.Recorder
	// Metrics, when non-nil, receives aggregate protocol instrumentation
	// (messages, wire bytes, recomputations, repairs, ...) across runs.
	// Counter totals are deterministic on the DES transport; wall-clock
	// accumulations are registered volatile.
	Metrics *metrics.Registry
	// Pins forces specific services onto specific instances (SID -> NID).
	// Used by Repair to keep unaffected placements stable; normal
	// federations leave it nil.
	Pins map[int]int
	// Faults, when non-nil, wraps the run's transport in the seeded
	// fault-injecting decorator (message loss, duplication, reordering,
	// node crashes) and implies Reliable. The consumer's virtual node is
	// always crash-exempt.
	Faults *transport.Faults
	// Reliable enables the reliability sublayer — per-message sequence
	// numbers, receiver-side dedup, ack/retransmit with exponential
	// backoff, and a per-federation deadline that degrades an
	// uncompletable run into a *PartialFederationError. Off by default: a
	// clean run is exactly the historical protocol.
	Reliable bool
	// RetryBudget caps the retransmissions per message before its
	// destination is declared unresponsive (default 5).
	RetryBudget int
	// RetryBackoffUS is the first retransmission delay in microseconds
	// (virtual time on the DES transport, wall clock elsewhere); each
	// further attempt doubles it. The default 25000 sits above the round
	// trip of the longest generated overlay links, so a clean DES run
	// never retransmits spuriously, and keeps the default budget's full
	// backoff chain inside the default deadline.
	RetryBackoffUS int64
	// DeadlineUS is the per-federation timeout in microseconds: a
	// reliable run that has not completed by then gives up and returns a
	// *PartialFederationError (default 1_000_000).
	DeadlineUS int64
}

func (o Options) withDefaults() Options {
	if o.Hops == 0 {
		o.Hops = 2
	}
	if o.Faults != nil {
		o.Reliable = true
	}
	if o.RetryBudget == 0 {
		o.RetryBudget = 5
	}
	if o.RetryBackoffUS == 0 {
		o.RetryBackoffUS = 25_000
	}
	if o.DeadlineUS == 0 {
		o.DeadlineUS = 1_000_000
	}
	return o
}

// Stats describes one federation run.
type Stats struct {
	// Messages is the total number of protocol messages delivered
	// (sfederate + sink reports).
	Messages int
	// Recomputations counts local computations repeated because a merge
	// claim was lost to a parallel branch.
	Recomputations int
	// LocalComputations counts local computations, including repeats.
	LocalComputations int
	// NodesInvolved is the number of distinct service instances that
	// processed an sfederate message.
	NodesInvolved int
	// Retries counts protocol messages retransmitted by the reliability
	// sublayer (zero when it is disabled).
	Retries int
	// Dedups counts duplicate deliveries suppressed by the receiver-side
	// sequence-number dedup (zero when the sublayer is disabled).
	Dedups int
	// VirtualTime is the DES virtual time (microseconds) from injection
	// until the last sink report (zero on the goroutine transport).
	VirtualTime int64
	// ComputeTime is the accumulated wall-clock time spent in local
	// computations across all nodes.
	ComputeTime time.Duration
}

// Result is the outcome of a federation.
type Result struct {
	// Flow is the completed service flow graph.
	Flow *flow.Graph
	// Metric is its end-to-end quality.
	Metric qos.Metric
	// Stats describes the protocol run.
	Stats Stats
}

// sfederate is the protocol message of Sec 4. The requirement itself is
// globally known (it is part of the consumer's request); the message carries
// the accumulated partial flow graph and the pinned instance choices.
type sfederate struct {
	partial *flow.Graph
	pins    map[int]int
}

// report is the sink-to-consumer completion message.
type report struct {
	sinkSID int
	partial *flow.Graph
}

// coreInstr caches the metric handles of one federation run. The zero value
// (nil handles) is the uninstrumented fast path: every update below is a
// nil-check no-op.
type coreInstr struct {
	federations    *metrics.Counter
	sfederateSent  *metrics.Counter
	reportsSent    *metrics.Counter
	delivered      *metrics.Counter
	localComputes  *metrics.Counter
	recomputations *metrics.Counter
	attempts       *metrics.Histogram
	computeUS      *metrics.Counter
	retries        *metrics.Counter
	dedups         *metrics.Counter
	unresponsive   *metrics.Counter
	timeouts       *metrics.Counter
	partials       *metrics.Counter
}

// instrFor resolves the protocol counters once per run; reg may be nil. The
// delivered counter is labelled with the transport so runs over DES,
// goroutines and loopback TCP stay distinguishable in one registry.
func instrFor(reg *metrics.Registry, transportName string) coreInstr {
	if reg == nil {
		return coreInstr{}
	}
	return coreInstr{
		federations:    reg.Counter("core_federations_total"),
		sfederateSent:  reg.Counter("core_sfederate_sent_total"),
		reportsSent:    reg.Counter("core_reports_total"),
		delivered:      reg.Counter("core_messages_delivered_total", metrics.WithLabels(metrics.Label{Name: "transport", Value: transportName})),
		localComputes:  reg.Counter("core_local_computations_total"),
		recomputations: reg.Counter("core_recomputations_total"),
		attempts:       reg.Histogram("core_convergence_attempts", []int64{1, 2, 3, 5, 8}),
		computeUS:      reg.Counter("core_compute_us_total", metrics.Volatile()),
		retries:        reg.Counter("core_retries_total"),
		dedups:         reg.Counter("core_dedups_total"),
		unresponsive:   reg.Counter("core_unresponsive_peers_total"),
		timeouts:       reg.Counter("core_federation_timeouts_total"),
		partials:       reg.Counter("core_partial_federations_total"),
	}
}

// Federate runs the distributed sFlow algorithm for req over ov, starting at
// the source service instance src.
func Federate(ov *overlay.Overlay, req *require.Requirement, src int, opts Options) (*Result, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	if got := ov.SIDOf(src); got != req.Source() {
		return nil, fmt.Errorf("core: source instance %d provides service %d, requirement starts at %d",
			src, got, req.Source())
	}
	for sid, nid := range opts.Pins {
		if got := ov.SIDOf(nid); got != sid {
			return nil, fmt.Errorf("core: pin %d for service %d provides service %d", nid, sid, got)
		}
	}
	e := &engine{
		ov:     ov,
		req:    req,
		opts:   opts.withDefaults(),
		claims: make(map[int]int),
		nodes:  make(map[int]*nodeState),
		sinks:  make(map[int]*flow.Graph),
	}
	// Pinned merge services are pre-claimed so no branch can race them.
	for sid, nid := range opts.Pins {
		if req.InDegree(sid) > 1 {
			e.claims[sid] = nid
		}
	}
	if e.opts.LinkState {
		dbs, err := linkstate.Exchange(ov, e.opts.Hops)
		if err != nil {
			return nil, err
		}
		e.views = make(map[int]*overlay.Overlay, len(dbs))
		for nid, db := range dbs {
			view, err := db.View()
			if err != nil {
				return nil, fmt.Errorf("core: link-state view of node %d: %w", nid, err)
			}
			e.views[nid] = view
		}
	}
	switch {
	case e.opts.Loopback:
		e.ins = instrFor(e.opts.Metrics, "tcp")
		ids := append([]int{userNID}, ov.Nodes()...)
		tr, err := transport.NewTCP(ids, e.handle, wireCodec{
			tx: e.opts.Metrics.Counter("core_wire_tx_bytes_total"),
			rx: e.opts.Metrics.Counter("core_wire_rx_bytes_total"),
		})
		if err != nil {
			return nil, err
		}
		e.tr = tr
	case e.opts.Concurrent:
		e.ins = instrFor(e.opts.Metrics, "goroutine")
		ids := append([]int{userNID}, ov.Nodes()...)
		e.tr = transport.NewGoroutine(ids, e.handle)
	default:
		e.ins = instrFor(e.opts.Metrics, "des")
		e.tr = transport.NewDES(e.linkLatency, e.handle)
	}
	if e.opts.Faults != nil {
		cfg := *e.opts.Faults
		// The consumer's virtual node must survive: it injects the
		// request and collects the sink reports.
		cfg.CrashExempt = append(append([]int{}, cfg.CrashExempt...), userNID)
		if cfg.Metrics == nil {
			cfg.Metrics = e.opts.Metrics
		}
		faulty, err := transport.NewFaulty(e.tr, cfg)
		if err != nil {
			if closer, ok := e.tr.(interface{ Close() }); ok {
				closer.Close()
			}
			return nil, err
		}
		e.tr = faulty
	}
	e.ins.federations.Inc()

	if e.opts.Reliable {
		e.rel = relState{
			enabled:      true,
			budget:       e.opts.RetryBudget,
			backoffUS:    e.opts.RetryBackoffUS,
			nextSeq:      make(map[int]uint64),
			seen:         make(map[pkey]bool),
			pending:      make(map[pkey]*pendingMsg),
			unresponsive: make(map[int]bool),
		}
		cancel := e.tr.After(e.opts.DeadlineUS, func() {
			e.mu.Lock()
			expired := !e.rel.done && len(e.sinks) != len(e.req.Sinks())
			var newlyDead []pkey
			if expired {
				// Anything still awaiting an ack at the deadline is as good
				// as unresponsive — the retry chain never completed for it.
				for k := range e.rel.pending {
					if !e.rel.unresponsive[k.dst] {
						e.rel.unresponsive[k.dst] = true
						newlyDead = append(newlyDead, k)
					}
				}
			}
			e.mu.Unlock()
			if expired {
				e.ins.timeouts.Inc()
				e.ins.unresponsive.Add(int64(len(newlyDead)))
				for _, k := range newlyDead {
					e.trace(trace.KindGiveUp, k.src, k.dst, -1, "federation deadline expired")
				}
			}
			e.shutdownReliable()
		})
		e.mu.Lock()
		e.rel.cancelDeadline = cancel
		e.mu.Unlock()
	}

	e.trace(trace.KindSend, userNID, src, req.Source(), "sfederate")
	e.ins.sfederateSent.Inc()
	e.sendProto(userNID, src, sfederate{partial: flow.New(), pins: clonePins(e.opts.Pins)})
	delivered := e.tr.Run()
	e.ins.delivered.Add(int64(delivered))

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err != nil {
		return nil, e.err
	}
	if len(e.sinks) != len(req.Sinks()) {
		if e.rel.enabled {
			return nil, e.partialError(delivered)
		}
		return nil, fmt.Errorf("%w: %d of %d sinks reported", ErrStuck, len(e.sinks), len(req.Sinks()))
	}
	final := flow.New()
	for _, sid := range req.Sinks() {
		if err := final.Merge(e.sinks[sid]); err != nil {
			return nil, fmt.Errorf("core: merge sink reports: %w", err)
		}
	}
	if err := final.Validate(req, ov); err != nil {
		return nil, fmt.Errorf("core: final flow graph invalid: %w", err)
	}
	e.stats.Messages = delivered
	e.stats.NodesInvolved = len(e.nodes)
	e.stats.VirtualTime = e.doneAt
	return &Result{Flow: final, Metric: final.Quality(req), Stats: e.stats}, nil
}

// engine is the shared state of one federation run.
type engine struct {
	ov   *overlay.Overlay
	req  *require.Requirement
	opts Options
	ins  coreInstr
	tr   transport.Transport

	views map[int]*overlay.Overlay // link-state views (nil: oracle views)

	mu     sync.Mutex
	claims map[int]int        // merge service SID -> first-claimed NID
	nodes  map[int]*nodeState // per participating instance
	sinks  map[int]*flow.Graph
	doneAt int64
	err    error
	stats  Stats
	rel    relState // reliability sublayer (see reliable.go)
}

// nodeState is the per-instance protocol state.
type nodeState struct {
	nid, sid  int
	expected  int
	arrived   int
	partial   *flow.Graph
	pins      map[int]int
	processed bool
}

// linkLatency is the DES latency function: the overlay link latency between
// the endpoints; consumer injection and sink reports are local (zero).
func (e *engine) linkLatency(from, to int) int64 {
	if from == userNID || to == userNID {
		return 0
	}
	if m, ok := e.ov.LinkMetric(from, to); ok {
		return m.Latency
	}
	// A multi-hop overlay route: use its shortest-widest latency. This
	// only happens for streams expanded through bridging instances.
	return 0
}

// trace records one protocol event when tracing is enabled.
func (e *engine) trace(kind trace.Kind, node, peer, service int, detail string) {
	if e.opts.Trace == nil {
		return
	}
	e.opts.Trace.Add(trace.Event{
		Time: e.tr.Now(), Kind: kind,
		Node: node, Peer: peer, Service: service, Detail: detail,
	})
}

// handle dispatches a delivered message. It is the transport handler; under
// the goroutine transport it runs concurrently for different nodes.
func (e *engine) handle(from, to int, msg any) {
	switch m := msg.(type) {
	case sfederate:
		e.trace(trace.KindDeliver, to, from, -1, "sfederate")
		e.onSfederate(to, m)
	case report:
		e.trace(trace.KindDeliver, to, from, m.sinkSID, "report")
		e.onReport(m)
	case reliable:
		e.onReliable(from, to, m)
	case ack:
		e.onAck(from, to, m)
	default:
		e.fail(fmt.Errorf("core: unknown message %T", msg))
	}
}

func (e *engine) onSfederate(to int, m sfederate) {
	e.mu.Lock()
	if e.err != nil {
		e.mu.Unlock()
		return
	}
	ns, ok := e.nodes[to]
	if !ok {
		sid := e.ov.SIDOf(to)
		expected := e.req.InDegree(sid)
		if expected == 0 {
			expected = 1 // the source's single consumer injection
		}
		ns = &nodeState{nid: to, sid: sid, expected: expected, partial: flow.New(), pins: map[int]int{}}
		e.nodes[to] = ns
	}
	ns.arrived++
	if err := ns.partial.Merge(m.partial); err != nil {
		e.err = fmt.Errorf("core: node %d merging branches: %w", to, err)
		e.mu.Unlock()
		e.shutdownReliable()
		return
	}
	for sid, nid := range m.pins {
		ns.pins[sid] = nid
	}
	if ns.arrived < ns.expected || ns.processed {
		overrun := ns.arrived > ns.expected
		if overrun {
			e.err = fmt.Errorf("core: node %d received %d arrivals, expected %d", to, ns.arrived, ns.expected)
		}
		e.mu.Unlock()
		if overrun {
			e.shutdownReliable()
		}
		return
	}
	ns.processed = true
	e.mu.Unlock()

	e.process(ns)
}

func (e *engine) onReport(m report) {
	e.mu.Lock()
	if e.err != nil {
		e.mu.Unlock()
		return
	}
	if _, dup := e.sinks[m.sinkSID]; dup {
		// The reliability sublayer dedups before dispatch, so a duplicate
		// here is a protocol bug on any transport.
		e.err = fmt.Errorf("core: duplicate report for sink service %d", m.sinkSID)
		e.mu.Unlock()
		e.shutdownReliable()
		return
	}
	e.sinks[m.sinkSID] = m.partial
	if t := e.tr.Now(); t > e.doneAt {
		e.doneAt = t
	}
	complete := len(e.sinks) == len(e.req.Sinks())
	e.mu.Unlock()
	if complete {
		// Every sink has reported: stop retransmission timers and the
		// deadline so the transport can reach quiescence.
		e.shutdownReliable()
	}
}

// process runs the local computation of one node and forwards the results.
func (e *engine) process(ns *nodeState) {
	downstream := e.req.Downstream(ns.sid)
	if len(downstream) == 0 {
		// Sink: report the accumulated flow graph to the consumer.
		e.trace(trace.KindReport, ns.nid, userNID, ns.sid, "")
		e.ins.reportsSent.Inc()
		e.sendProto(ns.nid, userNID, report{sinkSID: ns.sid, partial: ns.partial.Clone()})
		return
	}

	start := time.Now()
	choice, err := e.localCompute(ns)
	elapsed := time.Since(start)
	e.ins.computeUS.Add(elapsed.Microseconds())

	e.mu.Lock()
	e.stats.ComputeTime += elapsed
	if err != nil && e.err == nil {
		e.err = err
	}
	failed := e.err != nil
	e.mu.Unlock()
	if failed {
		e.shutdownReliable()
		return
	}

	for _, d := range downstream {
		edge := choice.edges[d]
		if err := ns.partial.AddEdge(edge); err != nil {
			e.fail(fmt.Errorf("core: node %d commit edge to service %d: %w", ns.nid, d, err))
			return
		}
	}
	for _, d := range downstream {
		to := choice.edges[d].ToNID
		e.trace(trace.KindSend, ns.nid, to, d, "sfederate")
		e.ins.sfederateSent.Inc()
		e.sendProto(ns.nid, to, sfederate{partial: ns.partial.Clone(), pins: clonePins(choice.pins)})
	}
}

// localChoice is the outcome of one node's local computation.
type localChoice struct {
	// edges maps each immediate downstream service to the committed flow
	// edge reaching its chosen instance.
	edges map[int]flow.Edge
	// pins are the instance choices to propagate (received pins plus the
	// merge-service claims this node made or adopted).
	pins map[int]int
}

// localCompute implements steps 2 of the protocol: solve the visible portion
// of the remaining requirement on the local view, arbitrate merge claims,
// and re-compute when a claim was lost.
// viewOf returns the node's local view: from the link-state exchange when
// enabled, otherwise straight off the global overlay (the oracle the two are
// proven equivalent against).
func (e *engine) viewOf(nid int) *overlay.Overlay {
	if e.views != nil {
		return e.views[nid]
	}
	return e.ov.LocalView(nid, e.opts.Hops)
}

func (e *engine) localCompute(ns *nodeState) (*localChoice, error) {
	view := e.viewOf(ns.nid)
	downstream := e.req.Downstream(ns.sid)
	for _, d := range downstream {
		if len(view.InstancesOf(d)) == 0 {
			return nil, fmt.Errorf("%w: node %d sees no instance of immediate downstream service %d",
				ErrStuck, ns.nid, d)
		}
	}

	pins := clonePins(ns.pins)
	excluded := make(map[int]bool) // services truncated from the local horizon
	for attempt := 0; ; attempt++ {
		if attempt > e.req.NumServices()+1 {
			return nil, fmt.Errorf("%w: node %d cannot converge on merge claims", ErrStuck, ns.nid)
		}
		local, err := e.localRequirement(ns, view, pins, excluded)
		if err != nil {
			return nil, err
		}
		assign, edges, err := e.solveLocal(ns, view, local, pins)
		if err != nil {
			return nil, err
		}
		conflicts, invisible := e.arbitrate(local, view, assign, pins)
		if len(conflicts) == 0 && len(invisible) == 0 {
			for sid, nid := range assign {
				if e.req.InDegree(sid) > 1 {
					pins[sid] = nid
				}
			}
			e.mu.Lock()
			e.stats.LocalComputations++
			e.mu.Unlock()
			e.ins.localComputes.Inc()
			e.ins.attempts.Observe(int64(attempt) + 1)
			e.trace(trace.KindCompute, ns.nid, -1, ns.sid,
				fmt.Sprintf("%d downstream streams", len(edges)))
			return &localChoice{edges: edges, pins: pins}, nil
		}
		// Lost one or more claims: pin the winners (or truncate the
		// horizon where the winner is out of sight) and re-compute.
		for sid, nid := range conflicts {
			pins[sid] = nid
		}
		for _, sid := range invisible {
			if containsInt(downstream, sid) {
				return nil, fmt.Errorf("%w: node %d must use instance %d of service %d but cannot see it",
					ErrStuck, ns.nid, e.claimOf(sid), sid)
			}
			excluded[sid] = true
		}
		e.mu.Lock()
		e.stats.Recomputations++
		e.stats.LocalComputations++
		e.mu.Unlock()
		e.ins.recomputations.Inc()
		e.ins.localComputes.Inc()
		e.trace(trace.KindRecompute, ns.nid, -1, ns.sid,
			fmt.Sprintf("%d lost claims", len(conflicts)+len(invisible)))
	}
}

// arbitrate registers this node's choices for merge services in the claim
// registry. It returns the claims that were lost to another branch but whose
// winning instance is visible (conflicts: SID -> winning NID), and the lost
// claims whose winner is outside the local view (invisible SIDs).
func (e *engine) arbitrate(local *require.Requirement, view *overlay.Overlay, assign map[int]int, pins map[int]int) (map[int]int, []int) {
	conflicts := make(map[int]int)
	var invisible []int
	var newClaims [][2]int
	e.mu.Lock()
	for _, sid := range local.Services() {
		if e.req.InDegree(sid) <= 1 {
			continue
		}
		nid, ok := assign[sid]
		if !ok {
			continue
		}
		winner, claimed := e.claims[sid]
		if !claimed {
			e.claims[sid] = nid
			newClaims = append(newClaims, [2]int{sid, nid})
			continue
		}
		if winner == nid {
			continue
		}
		if _, vis := view.Instance(winner); vis {
			conflicts[sid] = winner
		} else {
			invisible = append(invisible, sid)
		}
	}
	e.mu.Unlock()
	for _, c := range newClaims {
		e.trace(trace.KindClaim, c[1], -1, c[0], "merge instance pinned")
	}
	sort.Ints(invisible)
	return conflicts, invisible
}

func (e *engine) claimOf(sid int) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.claims[sid]
}

// localRequirement builds the portion of the remaining requirement this node
// can reason about: services within Hops levels downstream of its own
// service that have at least one instance in the local view, minus the
// explicitly excluded ones, restricted to what stays reachable from the
// node's service.
func (e *engine) localRequirement(ns *nodeState, view *overlay.Overlay, pins map[int]int, excluded map[int]bool) (*require.Requirement, error) {
	sub := e.req.SubFrom(ns.sid)
	dag := sub.DAG()

	// Depth of each service below ns.sid in the remaining requirement.
	depth := map[int]int{ns.sid: 0}
	order := sub.TopoOrder()
	for _, sid := range order {
		d, ok := depth[sid]
		if !ok {
			continue
		}
		for _, next := range sub.Downstream(sid) {
			if cur, ok := depth[next]; !ok || d+1 < cur {
				depth[next] = d + 1
			}
		}
	}
	for _, sid := range order {
		if sid == ns.sid {
			continue
		}
		drop := excluded[sid] || depth[sid] > e.opts.Hops || len(view.InstancesOf(sid)) == 0
		if !drop {
			// A pinned service whose pinned instance is out of view
			// cannot be reasoned about locally either.
			if nid, ok := pins[sid]; ok {
				if _, vis := view.Instance(nid); !vis {
					drop = true
				}
			}
		}
		if drop {
			dag.RemoveNode(sid)
		}
	}
	keep := dag.Reachable(ns.sid)
	dag = dag.InducedSubgraph(keep)

	local := require.New()
	for _, sid := range dag.Nodes() {
		local.AddService(sid)
	}
	for _, ed := range dag.Edges() {
		local.AddDependency(ed[0], ed[1])
	}
	if err := local.Validate(); err != nil {
		return nil, fmt.Errorf("core: node %d local requirement: %w", ns.nid, err)
	}
	for _, d := range e.req.Downstream(ns.sid) {
		if !local.Has(d) {
			return nil, fmt.Errorf("%w: node %d lost immediate downstream service %d from its horizon",
				ErrStuck, ns.nid, d)
		}
	}
	return local, nil
}

// solveLocal computes the node's tentative assignment for the local
// requirement and the committed edges for its immediate downstream services.
func (e *engine) solveLocal(ns *nodeState, view *overlay.Overlay, local *require.Requirement, pins map[int]int) (map[int]int, map[int]flow.Edge, error) {
	downstream := e.req.Downstream(ns.sid)
	if e.opts.DisableReductions {
		return e.solveGreedy(ns, view, pins, downstream)
	}
	ag, err := abstract.BuildMetrics(view, local, e.opts.Metrics)
	if err != nil {
		return nil, nil, fmt.Errorf("core: node %d: %w", ns.nid, err)
	}
	localPins := make(map[int]int)
	for sid, nid := range pins {
		if local.Has(sid) && sid != ns.sid {
			localPins[sid] = nid
		}
	}
	res, err := reduce.Solve(ag, ns.nid, localPins)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: node %d local solve: %v", ErrStuck, ns.nid, err)
	}
	edges := make(map[int]flow.Edge, len(downstream))
	for _, d := range downstream {
		eg, ok := res.Flow.Edge(ns.sid, d)
		if !ok {
			return nil, nil, fmt.Errorf("%w: node %d local solve produced no stream to service %d",
				ErrStuck, ns.nid, d)
		}
		edges[d] = eg
	}
	return res.Flow.Assignment(), edges, nil
}

// solveGreedy is the ablation: pick, per immediate downstream service, the
// instance behind the widest direct link (shortest-widest order), honouring
// pins.
func (e *engine) solveGreedy(ns *nodeState, view *overlay.Overlay, pins map[int]int, downstream []int) (map[int]int, map[int]flow.Edge, error) {
	assign := map[int]int{ns.sid: ns.nid}
	edges := make(map[int]flow.Edge, len(downstream))
	for _, d := range downstream {
		cands := view.InstancesOf(d)
		if nid, ok := pins[d]; ok {
			cands = []int{nid}
		}
		best, bestM := -1, qos.Unreachable
		for _, nid := range cands {
			m, ok := view.LinkMetric(ns.nid, nid)
			if !ok {
				continue
			}
			if best == -1 || m.Better(bestM) {
				best, bestM = nid, m
			}
		}
		if best == -1 {
			// No direct link (a pinned instance may only be
			// reachable through a relay): fall back to the view's
			// shortest-widest route.
			res := qos.ShortestWidestMetrics(view, ns.nid, e.opts.Metrics)
			for _, nid := range cands {
				if m := res.Metric(nid); m.Reachable() && (best == -1 || m.Better(bestM)) {
					best, bestM = nid, m
				}
			}
			if best == -1 {
				return nil, nil, fmt.Errorf("%w: node %d cannot reach any instance of service %d",
					ErrStuck, ns.nid, d)
			}
			edges[d] = flow.Edge{
				FromSID: ns.sid, ToSID: d, FromNID: ns.nid, ToNID: best,
				Path: res.PathTo(best), Metric: bestM,
			}
		} else {
			edges[d] = flow.Edge{
				FromSID: ns.sid, ToSID: d, FromNID: ns.nid, ToNID: best,
				Path: []int{ns.nid, best}, Metric: bestM,
			}
		}
		assign[d] = best
	}
	return assign, edges, nil
}

func (e *engine) fail(err error) {
	e.mu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.mu.Unlock()
	e.shutdownReliable()
}

func clonePins(p map[int]int) map[int]int {
	out := make(map[int]int, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
