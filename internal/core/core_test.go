package core

import (
	"errors"
	"reflect"
	"testing"

	"sflow/internal/abstract"
	"sflow/internal/exact"
	"sflow/internal/flow"
	"sflow/internal/overlay"
	"sflow/internal/qos"
	"sflow/internal/require"
	"sflow/internal/scenario"
	"sflow/internal/trace"
)

// diamondOverlay: requirement 1 -> {2,3} -> 4 with two candidate merge
// instances; 41 is the balanced, globally optimal one. All services are
// within two hops of the source, so sFlow should pin the merge optimally.
func diamondOverlay(t *testing.T) (*overlay.Overlay, *require.Requirement) {
	t.Helper()
	o := overlay.New()
	for _, in := range [][2]int{{10, 1}, {20, 2}, {30, 3}, {40, 4}, {41, 4}} {
		if err := o.AddInstance(in[0], in[1], -1); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range [][4]int64{
		{10, 20, 100, 10}, {10, 30, 100, 10},
		{20, 40, 100, 10}, {30, 40, 10, 10},
		{20, 41, 80, 10}, {30, 41, 80, 10},
	} {
		if err := o.AddLink(int(l[0]), int(l[1]), l[2], l[3]); err != nil {
			t.Fatal(err)
		}
	}
	req, err := require.FromEdges([][2]int{{1, 2}, {1, 3}, {2, 4}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	return o, req
}

func TestFederateDiamondPinsOptimalMerge(t *testing.T) {
	o, req := diamondOverlay(t)
	res, err := Federate(o, req, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Flow.Validate(req, o); err != nil {
		t.Fatalf("invalid flow: %v", err)
	}
	if nid, _ := res.Flow.Assigned(4); nid != 41 {
		t.Fatalf("merge on instance %d, want 41", nid)
	}
	if res.Metric.Bandwidth != 80 {
		t.Fatalf("metric = %+v, want width 80", res.Metric)
	}
	// The splitter saw the whole diamond: no re-computation needed.
	if res.Stats.Recomputations != 0 {
		t.Fatalf("recomputations = %d, want 0", res.Stats.Recomputations)
	}
	// Messages: user->1, 1->2, 1->3, 2->4, 3->4, 4->user = 6.
	if res.Stats.Messages != 6 {
		t.Fatalf("messages = %d, want 6", res.Stats.Messages)
	}
	if res.Stats.VirtualTime <= 0 {
		t.Fatal("virtual time not measured")
	}
	if res.Stats.NodesInvolved != 4 {
		t.Fatalf("nodes involved = %d, want 4", res.Stats.NodesInvolved)
	}
}

func TestFederateOneHopRacesAndRecomputes(t *testing.T) {
	o, req := diamondOverlay(t)
	// With a one-hop view, the source cannot see the merge service; nodes
	// 20 and 30 choose independently. 20 prefers 40 (width 100); 30
	// prefers 41 (width 80). One of them loses the claim race and must
	// re-compute.
	res, err := Federate(o, req, 10, Options{Hops: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Flow.Validate(req, o); err != nil {
		t.Fatalf("invalid flow: %v", err)
	}
	if res.Stats.Recomputations == 0 {
		t.Fatal("expected at least one re-computation with a 1-hop view")
	}
	// Whatever instance won, both branches use the same one.
	if _, ok := res.Flow.Assigned(4); !ok {
		t.Fatal("merge unassigned")
	}
}

func TestFederatePathMatchesAcrossTransports(t *testing.T) {
	s, err := scenario.Generate(scenario.Config{
		Seed: 21, NetworkSize: 15, Services: 5,
		InstancesPerService: 3, Kind: scenario.KindPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	des, err := Federate(s.Overlay, s.Req, s.SourceNID, Options{})
	if err != nil {
		t.Fatal(err)
	}
	conc, err := Federate(s.Overlay, s.Req, s.SourceNID, Options{Concurrent: true})
	if err != nil {
		t.Fatal(err)
	}
	// A path has no merge races: both transports must agree exactly.
	if !reflect.DeepEqual(des.Flow.Assignment(), conc.Flow.Assignment()) {
		t.Fatalf("transports disagree: %v vs %v", des.Flow.Assignment(), conc.Flow.Assignment())
	}
	if des.Metric != conc.Metric {
		t.Fatalf("metrics disagree: %+v vs %+v", des.Metric, conc.Metric)
	}
	if conc.Stats.VirtualTime != 0 {
		t.Fatal("goroutine transport should have no virtual time")
	}
}

func TestFederateConcurrentGeneralDAGs(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		s, err := scenario.Generate(scenario.Config{
			Seed: seed, NetworkSize: 20, Services: 6,
			InstancesPerService: 3, Kind: scenario.KindGeneral,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Federate(s.Overlay, s.Req, s.SourceNID, Options{Concurrent: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := res.Flow.Validate(s.Req, s.Overlay); err != nil {
			t.Fatalf("seed %d: invalid flow: %v", seed, err)
		}
	}
}

func TestFederateDeterministicOnDES(t *testing.T) {
	s, err := scenario.Generate(scenario.Config{
		Seed: 33, NetworkSize: 25, Services: 7,
		InstancesPerService: 3, Kind: scenario.KindGeneral,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Federate(s.Overlay, s.Req, s.SourceNID, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Federate(s.Overlay, s.Req, s.SourceNID, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Flow.Assignment(), b.Flow.Assignment()) {
		t.Fatal("DES runs differ")
	}
	if a.Stats.Messages != b.Stats.Messages || a.Stats.Recomputations != b.Stats.Recomputations {
		t.Fatalf("stats differ: %+v vs %+v", a.Stats, b.Stats)
	}
}

func TestFederateNeverBeatsOptimal(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		s, err := scenario.Generate(scenario.Config{
			Seed: seed, NetworkSize: 20, Services: 6,
			InstancesPerService: 2, Kind: scenario.KindGeneral,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Federate(s.Overlay, s.Req, s.SourceNID, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ag, err := abstract.Build(s.Overlay, s.Req)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := exact.Solve(ag, s.SourceNID, exact.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Metric.Better(opt.Metric) {
			t.Fatalf("seed %d: sFlow %+v beats optimal %+v", seed, res.Metric, opt.Metric)
		}
		if cc := res.Flow.CorrectnessCoefficient(opt.Flow); cc <= 0 {
			t.Fatalf("seed %d: zero correctness", seed)
		}
	}
}

func TestFederateAblationNotBetterThanFull(t *testing.T) {
	worseSomewhere := false
	for seed := int64(0); seed < 8; seed++ {
		s, err := scenario.Generate(scenario.Config{
			Seed: seed, NetworkSize: 20, Services: 6,
			InstancesPerService: 3, Kind: scenario.KindGeneral,
		})
		if err != nil {
			t.Fatal(err)
		}
		full, err := Federate(s.Overlay, s.Req, s.SourceNID, Options{})
		if err != nil {
			t.Fatalf("seed %d full: %v", seed, err)
		}
		greedy, err := Federate(s.Overlay, s.Req, s.SourceNID, Options{DisableReductions: true})
		if err != nil {
			t.Fatalf("seed %d greedy: %v", seed, err)
		}
		if err := greedy.Flow.Validate(s.Req, s.Overlay); err != nil {
			t.Fatalf("seed %d: greedy flow invalid: %v", seed, err)
		}
		if greedy.Metric.Better(full.Metric) {
			// The greedy ablation can occasionally luck into a better
			// graph (both are heuristics), but across seeds the full
			// algorithm must win somewhere; tracked below.
			continue
		}
		if full.Metric.Better(greedy.Metric) {
			worseSomewhere = true
		}
	}
	if !worseSomewhere {
		t.Fatal("reductions never helped on any seed — ablation is not measuring anything")
	}
}

func TestFederateTraceTimeline(t *testing.T) {
	o, req := diamondOverlay(t)
	rec := trace.New()
	res, err := Federate(o, req, 10, Options{Trace: rec})
	if err != nil {
		t.Fatal(err)
	}
	// Every delivered message is traced; sends exclude the consumer
	// injection and the sink report send (reports are traced separately).
	if got := rec.Count(trace.KindDeliver); got != res.Stats.Messages {
		t.Fatalf("deliver events = %d, messages = %d", got, res.Stats.Messages)
	}
	if got := rec.Count(trace.KindCompute); got != res.Stats.LocalComputations {
		t.Fatalf("compute events = %d, local computations = %d", got, res.Stats.LocalComputations)
	}
	if got := rec.Count(trace.KindReport); got != 1 {
		t.Fatalf("report events = %d, want 1", got)
	}
	// Service 4 merges two streams: its instance must have been claimed.
	if rec.Count(trace.KindClaim) == 0 {
		t.Fatal("no claim events for the merge service")
	}
	// On the DES transport, timestamps never decrease for deliver events.
	var last int64 = -1
	for _, e := range rec.Events() {
		if e.Kind != trace.KindDeliver {
			continue
		}
		if e.Time < last {
			t.Fatalf("delivery timestamps not monotone: %v", rec)
		}
		last = e.Time
	}
	// Re-computation events appear with a 1-hop view (racy merge).
	rec2 := trace.New()
	if _, err := Federate(o, req, 10, Options{Hops: 1, Trace: rec2}); err != nil {
		t.Fatal(err)
	}
	if rec2.Count(trace.KindRecompute) == 0 {
		t.Fatal("no recompute events in the 1-hop race")
	}
}

func TestFederateInputValidation(t *testing.T) {
	o, req := diamondOverlay(t)
	if _, err := Federate(o, req, 20, Options{}); err == nil {
		t.Fatal("wrong-service source accepted")
	}
	bad := require.New()
	bad.AddDependency(1, 2)
	bad.AddDependency(2, 1)
	if _, err := Federate(o, bad, 10, Options{}); err == nil {
		t.Fatal("cyclic requirement accepted")
	}
}

func TestFederateStuckOnMissingInstance(t *testing.T) {
	// Service 3 exists in the requirement but has no overlay instance.
	o := overlay.New()
	for _, in := range [][2]int{{10, 1}, {20, 2}} {
		if err := o.AddInstance(in[0], in[1], -1); err != nil {
			t.Fatal(err)
		}
	}
	if err := o.AddLink(10, 20, 10, 1); err != nil {
		t.Fatal(err)
	}
	req, err := require.NewPath(1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Federate(o, req, 10, Options{}); !errors.Is(err, ErrStuck) {
		t.Fatalf("err = %v, want ErrStuck", err)
	}
}

func TestFederateStuckOnInvisibleDownstream(t *testing.T) {
	// Instance of service 3 exists but is not linked from service 2's
	// instance, so node 20's local view never contains it.
	o := overlay.New()
	for _, in := range [][2]int{{10, 1}, {20, 2}, {30, 3}} {
		if err := o.AddInstance(in[0], in[1], -1); err != nil {
			t.Fatal(err)
		}
	}
	if err := o.AddLink(10, 20, 10, 1); err != nil {
		t.Fatal(err)
	}
	req, err := require.NewPath(1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Federate(o, req, 10, Options{}); !errors.Is(err, ErrStuck) {
		t.Fatalf("err = %v, want ErrStuck", err)
	}
}

func TestFederateWiderLookaheadNeverHurtsOnTrap(t *testing.T) {
	// Three-layer trap: the 1-hop greedy falls for the wide first link.
	o := overlay.New()
	for _, in := range [][2]int{{10, 1}, {20, 2}, {21, 2}, {30, 3}} {
		if err := o.AddInstance(in[0], in[1], -1); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range [][4]int64{
		{10, 20, 100, 1}, {20, 30, 10, 1},
		{10, 21, 50, 1}, {21, 30, 50, 1},
	} {
		if err := o.AddLink(int(l[0]), int(l[1]), l[2], l[3]); err != nil {
			t.Fatal(err)
		}
	}
	req, err := require.NewPath(1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	two, err := Federate(o, req, 10, Options{Hops: 2})
	if err != nil {
		t.Fatal(err)
	}
	if two.Metric.Bandwidth != 50 {
		t.Fatalf("2-hop sFlow fell into the trap: %+v", two.Metric)
	}
	one, err := Federate(o, req, 10, Options{Hops: 1, DisableReductions: true})
	if err != nil {
		t.Fatal(err)
	}
	if one.Metric.Bandwidth != 10 {
		t.Fatalf("1-hop greedy should fall into the trap: %+v", one.Metric)
	}
}

func TestFederateMulticastTree(t *testing.T) {
	// Multi-sink requirements: every leaf of the tree must report before
	// the flow graph completes.
	for seed := int64(0); seed < 6; seed++ {
		s, err := scenario.Generate(scenario.Config{
			Seed: seed, NetworkSize: 20, Services: 7,
			InstancesPerService: 2, Kind: scenario.KindTree,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(s.Req.Sinks()) < 2 && s.Req.Shape() != require.ShapePath {
			continue // rare path-shaped tree: nothing multi-sink to check
		}
		res, err := Federate(s.Overlay, s.Req, s.SourceNID, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := res.Flow.Validate(s.Req, s.Overlay); err != nil {
			t.Fatalf("seed %d: invalid flow: %v", seed, err)
		}
		if !res.Metric.Reachable() {
			t.Fatalf("seed %d: unreachable metric", seed)
		}
	}
}

func TestFederateOverLoopbackTCP(t *testing.T) {
	// The full protocol over real sockets with JSON-framed messages must
	// agree with the DES run on a race-free (path) requirement, and stay
	// valid on general DAGs.
	s, err := scenario.Generate(scenario.Config{
		Seed: 41, NetworkSize: 12, Services: 5,
		InstancesPerService: 2, Kind: scenario.KindPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	des, err := Federate(s.Overlay, s.Req, s.SourceNID, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tcp, err := Federate(s.Overlay, s.Req, s.SourceNID, Options{Loopback: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(des.Flow.Assignment(), tcp.Flow.Assignment()) {
		t.Fatalf("TCP run disagrees: %v vs %v", des.Flow.Assignment(), tcp.Flow.Assignment())
	}
	if des.Stats.Messages != tcp.Stats.Messages {
		t.Fatalf("message counts differ: %d vs %d", des.Stats.Messages, tcp.Stats.Messages)
	}

	dag, err := scenario.Generate(scenario.Config{
		Seed: 42, NetworkSize: 15, Services: 6,
		InstancesPerService: 2, Kind: scenario.KindGeneral,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Federate(dag.Overlay, dag.Req, dag.SourceNID, Options{Loopback: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Flow.Validate(dag.Req, dag.Overlay); err != nil {
		t.Fatalf("TCP DAG flow invalid: %v", err)
	}
}

func TestWireCodecRoundTrip(t *testing.T) {
	fg := flow.New()
	if err := fg.AddEdge(flow.Edge{
		FromSID: 1, ToSID: 2, FromNID: 10, ToNID: 20,
		Path: []int{10, 15, 20}, Metric: qos.Metric{Bandwidth: 7, Latency: 3},
	}); err != nil {
		t.Fatal(err)
	}
	c := wireCodec{}
	data, err := c.Encode(sfederate{partial: fg, pins: map[int]int{4: 40}})
	if err != nil {
		t.Fatal(err)
	}
	back, err := c.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	sf, ok := back.(sfederate)
	if !ok {
		t.Fatalf("decoded %T", back)
	}
	if sf.pins[4] != 40 {
		t.Fatalf("pins = %v", sf.pins)
	}
	if !reflect.DeepEqual(sf.partial.Edges(), fg.Edges()) {
		t.Fatal("partial graph changed over the wire")
	}

	data, err = c.Encode(report{sinkSID: 6, partial: fg})
	if err != nil {
		t.Fatal(err)
	}
	back, err = c.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if rp, ok := back.(report); !ok || rp.sinkSID != 6 {
		t.Fatalf("decoded %#v", back)
	}

	if _, err := c.Encode("bogus"); err == nil {
		t.Fatal("bogus message encoded")
	}
	if _, err := c.Decode([]byte(`{"kind":"nope"}`)); err == nil {
		t.Fatal("bogus kind decoded")
	}
	if _, err := c.Decode([]byte(`garbage`)); err == nil {
		t.Fatal("garbage decoded")
	}
	// Empty pins / nil partial get usable defaults.
	back, err = c.Decode([]byte(`{"kind":"sfederate"}`))
	if err != nil {
		t.Fatal(err)
	}
	sf = back.(sfederate)
	if sf.partial == nil || sf.pins == nil {
		t.Fatal("nil fields after decode")
	}
}

func TestFederateWithLinkStateViews(t *testing.T) {
	// Views built by the scoped link-state exchange must yield exactly the
	// oracle-view federation.
	for seed := int64(0); seed < 5; seed++ {
		s, err := scenario.Generate(scenario.Config{
			Seed: seed, NetworkSize: 18, Services: 6,
			InstancesPerService: 3, Kind: scenario.KindGeneral,
		})
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := Federate(s.Overlay, s.Req, s.SourceNID, Options{})
		if err != nil {
			t.Fatal(err)
		}
		ls, err := Federate(s.Overlay, s.Req, s.SourceNID, Options{LinkState: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !reflect.DeepEqual(oracle.Flow.Assignment(), ls.Flow.Assignment()) {
			t.Fatalf("seed %d: link-state run differs: %v vs %v",
				seed, oracle.Flow.Assignment(), ls.Flow.Assignment())
		}
		if oracle.Stats.Messages != ls.Stats.Messages {
			t.Fatalf("seed %d: message counts differ", seed)
		}
	}
}
