package core

import (
	"testing"

	"sflow/internal/flow"
)

// FuzzWireDecode feeds arbitrary bytes to the protocol frame decoder: it must
// never panic, and anything it accepts must re-encode and decode to the same
// wire form (the codec is the trust boundary of the loopback TCP transport).
func FuzzWireDecode(f *testing.F) {
	codec := wireCodec{}
	fg := flow.New()
	if seed, err := codec.Encode(sfederate{partial: fg, pins: map[int]int{2: 7}}); err == nil {
		f.Add(seed)
	}
	if seed, err := codec.Encode(report{sinkSID: 3, partial: fg}); err == nil {
		f.Add(seed)
	}
	if seed, err := codec.Encode(ack{seq: 9}); err == nil {
		f.Add(seed)
	}
	if seed, err := codec.Encode(reliable{seq: 4, payload: report{sinkSID: 1, partial: fg}}); err == nil {
		f.Add(seed)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"kind":"sfederate","partial":null}`))
	f.Add([]byte(`{"kind":"ack","rel":true,"seq":1}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := codec.Decode(data)
		if err != nil {
			return
		}
		re, err := codec.Encode(msg)
		if err != nil {
			t.Fatalf("re-encode of accepted message %T failed: %v", msg, err)
		}
		msg2, err := codec.Decode(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		re2, err := codec.Encode(msg2)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if string(re) != string(re2) {
			t.Fatalf("wire form not stable:\n%s\nvs\n%s", re, re2)
		}
	})
}

// FuzzWireRoundTrip drives the encoder side over the reliability wrapper:
// sequence numbers and the Rel flag must survive a codec cycle for every
// message kind.
func FuzzWireRoundTrip(f *testing.F) {
	f.Add(uint64(1), 5, true)
	f.Add(uint64(0), -1, false)
	f.Add(uint64(1<<63), 0, true)
	f.Fuzz(func(t *testing.T, seq uint64, sinkSID int, wrap bool) {
		codec := wireCodec{}
		var msg any = report{sinkSID: sinkSID, partial: flow.New()}
		if wrap {
			msg = reliable{seq: seq, payload: msg}
		}
		data, err := codec.Encode(msg)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		got, err := codec.Decode(data)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if wrap {
			rel, ok := got.(reliable)
			if !ok || rel.seq != seq {
				t.Fatalf("reliable wrapper lost: %#v", got)
			}
			if rp, ok := rel.payload.(report); !ok || rp.sinkSID != sinkSID {
				t.Fatalf("wrapped payload lost: %#v", rel.payload)
			}
		} else if rp, ok := got.(report); !ok || rp.sinkSID != sinkSID {
			t.Fatalf("report lost: %#v", got)
		}

		a, err := codec.Encode(ack{seq: seq})
		if err != nil {
			t.Fatalf("encode ack: %v", err)
		}
		if got, err := codec.Decode(a); err != nil {
			t.Fatalf("decode ack: %v", err)
		} else if ak, ok := got.(ack); !ok || ak.seq != seq {
			t.Fatalf("ack lost: %#v", got)
		}
	})
}
