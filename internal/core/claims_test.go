package core

import (
	"errors"
	"testing"

	"sflow/internal/overlay"
	"sflow/internal/require"
)

// mustInstances populates an overlay from (NID, SID) pairs.
func mustInstances(t *testing.T, o *overlay.Overlay, pairs [][2]int) {
	t.Helper()
	for _, in := range pairs {
		if err := o.AddInstance(in[0], in[1], -1); err != nil {
			t.Fatal(err)
		}
	}
}

// mustLinks populates links from (from, to, bw, lat) rows.
func mustLinks(t *testing.T, o *overlay.Overlay, rows [][4]int64) {
	t.Helper()
	for _, l := range rows {
		if err := o.AddLink(int(l[0]), int(l[1]), l[2], l[3]); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFederateStuckWhenClaimWinnerInvisible: two branches merge at service 4,
// but each branch can only reach a different instance of it. Whoever loses
// the claim race must use the winner's instance — which it cannot even see —
// so the federation is structurally stuck. The engine must diagnose this
// rather than deadlock.
func TestFederateStuckWhenClaimWinnerInvisible(t *testing.T) {
	o := overlay.New()
	mustInstances(t, o, [][2]int{{10, 1}, {20, 2}, {30, 3}, {40, 4}, {41, 4}})
	mustLinks(t, o, [][4]int64{
		{10, 20, 100, 10}, {10, 30, 100, 10},
		{20, 40, 100, 10}, // branch via 2 reaches only instance 40
		{30, 41, 100, 10}, // branch via 3 reaches only instance 41
	})
	req, err := require.FromEdges([][2]int{{1, 2}, {1, 3}, {2, 4}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	// With 1-hop views the source cannot arbitrate the merge upfront.
	if _, err := Federate(o, req, 10, Options{Hops: 1}); !errors.Is(err, ErrStuck) {
		t.Fatalf("err = %v, want ErrStuck", err)
	}
	// With 2-hop views the source sees both branches dead-end on
	// different instances — the requirement simply has no flow graph, so
	// the source's own local solve reports it.
	if _, err := Federate(o, req, 10, Options{}); !errors.Is(err, ErrStuck) {
		t.Fatalf("2-hop err = %v, want ErrStuck", err)
	}
}

// TestFederateExcludesInvisibleDeepClaim: two 3-level branches merge at
// service 6. Branch A (2 -> 3 -> 6) claims the merge instance 60 first;
// branch B's splitter-side node (service 4) cannot see 60 at all — it is
// three hops away on B's side — so after losing the claim it must truncate
// the merge from its local horizon and proceed; the node performing service
// 5 then reaches 60 through a bridging relay.
func TestFederateExcludesInvisibleDeepClaim(t *testing.T) {
	o := overlay.New()
	mustInstances(t, o, [][2]int{
		{10, 1},
		{20, 2}, {30, 3}, // branch A
		{40, 4}, {50, 5}, // branch B
		{60, 6}, {61, 6}, // merge instances: 60 on A's side, 61 a decoy on B's
		{99, 9}, // bridging relay on branch B's last hop
	})
	mustLinks(t, o, [][4]int64{
		{10, 20, 100, 10}, {10, 40, 100, 10},
		{20, 30, 100, 10}, {30, 60, 100, 10}, // A reaches only 60
		{40, 50, 100, 10},
		{50, 61, 200, 10},                    // the decoy: wide and tempting for B
		{50, 99, 100, 10}, {99, 60, 100, 10}, // ...but 60 is reachable via the relay
	})
	req, err := require.FromEdges([][2]int{
		{1, 2}, {2, 3}, {3, 6},
		{1, 4}, {4, 5}, {5, 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Federate(o, req, 10, Options{Hops: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Flow.Validate(req, o); err != nil {
		t.Fatalf("invalid flow: %v", err)
	}
	// Branch A (node 20, processed first) claims 60. Node 40's two-hop
	// view contains the decoy 61 but not 60, so after losing the claim it
	// must truncate the merge from its horizon; node 50 then loses its own
	// claim attempt for 61 and recomputes onto 60 through the relay.
	if nid, _ := res.Flow.Assigned(6); nid != 60 {
		t.Fatalf("merge on %d, want A's claim 60", nid)
	}
	e, ok := res.Flow.Edge(5, 6)
	if !ok || len(e.Path) != 3 || e.Path[1] != 99 {
		t.Fatalf("branch B final stream = %+v", e)
	}
	if res.Stats.Recomputations == 0 {
		t.Fatal("expected re-computations from the lost deep claim")
	}
}

// TestFederateThreeWayMerge exercises a merge of three parallel branches
// with claims under 1-hop views: exactly one instance must win and all three
// branches must converge on it.
func TestFederateThreeWayMerge(t *testing.T) {
	o := overlay.New()
	mustInstances(t, o, [][2]int{
		{10, 1}, {20, 2}, {30, 3}, {40, 4}, {50, 5}, {51, 5},
	})
	rows := [][4]int64{
		{10, 20, 100, 10}, {10, 30, 100, 10}, {10, 40, 100, 10},
	}
	// Every branch end reaches both merge candidates, with different
	// preferences.
	for i, branch := range []int64{20, 30, 40} {
		rows = append(rows,
			[4]int64{branch, 50, 50 + int64(i)*30, 10},
			[4]int64{branch, 51, 110 - int64(i)*30, 10},
		)
	}
	mustLinks(t, o, rows)
	req, err := require.FromEdges([][2]int{
		{1, 2}, {1, 3}, {1, 4}, {2, 5}, {3, 5}, {4, 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Federate(o, req, 10, Options{Hops: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Flow.Validate(req, o); err != nil {
		t.Fatalf("invalid flow: %v", err)
	}
	nid, ok := res.Flow.Assigned(5)
	if !ok || (nid != 50 && nid != 51) {
		t.Fatalf("merge on %d", nid)
	}
	// All three streams end at the same instance.
	for _, from := range []int{2, 3, 4} {
		e, ok := res.Flow.Edge(from, 5)
		if !ok || e.ToNID != nid {
			t.Fatalf("branch %d stream = %+v, want merge at %d", from, e, nid)
		}
	}
	// With conflicting preferences at 1 hop, somebody recomputed.
	if res.Stats.Recomputations == 0 {
		t.Fatal("expected recomputations in the three-way race")
	}
}
