package core

import (
	"encoding/json"
	"fmt"

	"sflow/internal/flow"
	"sflow/internal/metrics"
)

// wireMessage is the serialised form of the protocol messages for
// byte-oriented transports (the loopback TCP transport). The partial flow
// graph reuses flow.Graph's JSON representation.
type wireMessage struct {
	Kind    string      `json:"kind"` // "sfederate" or "report"
	Pins    map[int]int `json:"pins,omitempty"`
	SinkSID int         `json:"sinkSID,omitempty"`
	Partial *flow.Graph `json:"partial"`
}

// wireCodec encodes/decodes the protocol messages as JSON frames, counting
// the bytes that cross the wire into the tx/rx counters (nil counters — the
// uninstrumented run — are free no-ops).
type wireCodec struct {
	tx, rx *metrics.Counter
}

// Encode implements transport.Codec.
func (c wireCodec) Encode(msg any) ([]byte, error) {
	var (
		data []byte
		err  error
	)
	switch m := msg.(type) {
	case sfederate:
		data, err = json.Marshal(wireMessage{Kind: "sfederate", Pins: m.pins, Partial: m.partial})
	case report:
		data, err = json.Marshal(wireMessage{Kind: "report", SinkSID: m.sinkSID, Partial: m.partial})
	default:
		return nil, fmt.Errorf("core: cannot encode message %T", msg)
	}
	if err == nil {
		c.tx.Add(int64(len(data)))
	}
	return data, err
}

// Decode implements transport.Codec.
func (c wireCodec) Decode(data []byte) (any, error) {
	c.rx.Add(int64(len(data)))
	var w wireMessage
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("core: decode frame: %w", err)
	}
	if w.Partial == nil {
		w.Partial = flow.New()
	}
	switch w.Kind {
	case "sfederate":
		pins := w.Pins
		if pins == nil {
			pins = map[int]int{}
		}
		return sfederate{partial: w.Partial, pins: pins}, nil
	case "report":
		return report{sinkSID: w.SinkSID, partial: w.Partial}, nil
	default:
		return nil, fmt.Errorf("core: unknown wire kind %q", w.Kind)
	}
}
