package core

import (
	"encoding/json"
	"fmt"

	"sflow/internal/flow"
	"sflow/internal/metrics"
)

// wireMessage is the serialised form of the protocol messages for
// byte-oriented transports (the loopback TCP transport). The partial flow
// graph reuses flow.Graph's JSON representation. A data message wrapped by
// the reliability sublayer is flattened: Rel marks the wrapper and Seq
// carries its sequence number.
type wireMessage struct {
	Kind    string      `json:"kind"` // "sfederate", "report" or "ack"
	Rel     bool        `json:"rel,omitempty"`
	Seq     uint64      `json:"seq,omitempty"`
	Pins    map[int]int `json:"pins,omitempty"`
	SinkSID int         `json:"sinkSID,omitempty"`
	Partial *flow.Graph `json:"partial"`
}

// toWire flattens one protocol message into its wire form.
func toWire(msg any) (wireMessage, error) {
	switch m := msg.(type) {
	case sfederate:
		return wireMessage{Kind: "sfederate", Pins: m.pins, Partial: m.partial}, nil
	case report:
		return wireMessage{Kind: "report", SinkSID: m.sinkSID, Partial: m.partial}, nil
	case ack:
		return wireMessage{Kind: "ack", Seq: m.seq}, nil
	case reliable:
		w, err := toWire(m.payload)
		if err != nil {
			return w, err
		}
		if w.Rel || w.Kind == "ack" {
			return w, fmt.Errorf("core: cannot wrap %q in a reliable frame", w.Kind)
		}
		w.Rel = true
		w.Seq = m.seq
		return w, nil
	default:
		return wireMessage{}, fmt.Errorf("core: cannot encode message %T", msg)
	}
}

// wireCodec encodes/decodes the protocol messages as JSON frames, counting
// the bytes that cross the wire into the tx/rx counters (nil counters — the
// uninstrumented run — are free no-ops).
type wireCodec struct {
	tx, rx *metrics.Counter
}

// Encode implements transport.Codec.
func (c wireCodec) Encode(msg any) ([]byte, error) {
	w, err := toWire(msg)
	if err != nil {
		return nil, err
	}
	data, err := json.Marshal(w)
	if err == nil {
		c.tx.Add(int64(len(data)))
	}
	return data, err
}

// Decode implements transport.Codec.
func (c wireCodec) Decode(data []byte) (any, error) {
	c.rx.Add(int64(len(data)))
	var w wireMessage
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("core: decode frame: %w", err)
	}
	if w.Partial == nil {
		w.Partial = flow.New()
	}
	var msg any
	switch w.Kind {
	case "sfederate":
		pins := w.Pins
		if pins == nil {
			pins = map[int]int{}
		}
		msg = sfederate{partial: w.Partial, pins: pins}
	case "report":
		msg = report{sinkSID: w.SinkSID, partial: w.Partial}
	case "ack":
		return ack{seq: w.Seq}, nil
	default:
		return nil, fmt.Errorf("core: unknown wire kind %q", w.Kind)
	}
	if w.Rel {
		return reliable{seq: w.Seq, payload: msg}, nil
	}
	return msg, nil
}
