package core

import (
	"encoding/json"
	"fmt"

	"sflow/internal/flow"
)

// wireMessage is the serialised form of the protocol messages for
// byte-oriented transports (the loopback TCP transport). The partial flow
// graph reuses flow.Graph's JSON representation.
type wireMessage struct {
	Kind    string      `json:"kind"` // "sfederate" or "report"
	Pins    map[int]int `json:"pins,omitempty"`
	SinkSID int         `json:"sinkSID,omitempty"`
	Partial *flow.Graph `json:"partial"`
}

// wireCodec encodes/decodes the protocol messages as JSON frames.
type wireCodec struct{}

// Encode implements transport.Codec.
func (wireCodec) Encode(msg any) ([]byte, error) {
	switch m := msg.(type) {
	case sfederate:
		return json.Marshal(wireMessage{Kind: "sfederate", Pins: m.pins, Partial: m.partial})
	case report:
		return json.Marshal(wireMessage{Kind: "report", SinkSID: m.sinkSID, Partial: m.partial})
	default:
		return nil, fmt.Errorf("core: cannot encode message %T", msg)
	}
}

// Decode implements transport.Codec.
func (wireCodec) Decode(data []byte) (any, error) {
	var w wireMessage
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("core: decode frame: %w", err)
	}
	if w.Partial == nil {
		w.Partial = flow.New()
	}
	switch w.Kind {
	case "sfederate":
		pins := w.Pins
		if pins == nil {
			pins = map[int]int{}
		}
		return sfederate{partial: w.Partial, pins: pins}, nil
	case "report":
		return report{sinkSID: w.SinkSID, partial: w.Partial}, nil
	default:
		return nil, fmt.Errorf("core: unknown wire kind %q", w.Kind)
	}
}
