package core

import (
	"testing"

	"sflow/internal/overlay"
	"sflow/internal/require"
	"sflow/internal/scenario"
)

// TestStatsAccounting pins down the bookkeeping of a deterministic run.
func TestStatsAccounting(t *testing.T) {
	o, req := diamondOverlay(t)
	res, err := Federate(o, req, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	// Nodes 10, 20, 30 compute; the sink 40/41 only reports.
	if s.LocalComputations != 3 {
		t.Fatalf("local computations = %d, want 3", s.LocalComputations)
	}
	if s.Recomputations != 0 {
		t.Fatalf("recomputations = %d", s.Recomputations)
	}
	if s.ComputeTime <= 0 {
		t.Fatal("compute time not measured")
	}
	// Virtual completion time: user->1 (0) + two hops of 10us each + the
	// zero-latency report = 20us.
	if s.VirtualTime != 20 {
		t.Fatalf("virtual time = %d, want 20", s.VirtualTime)
	}
}

// TestMultiSinkStats checks sink accounting on a two-sink tree.
func TestMultiSinkStats(t *testing.T) {
	o := overlay.New()
	for _, in := range [][2]int{{10, 1}, {20, 2}, {30, 3}} {
		if err := o.AddInstance(in[0], in[1], -1); err != nil {
			t.Fatal(err)
		}
	}
	if err := o.AddLink(10, 20, 50, 7); err != nil {
		t.Fatal(err)
	}
	if err := o.AddLink(10, 30, 60, 9); err != nil {
		t.Fatal(err)
	}
	req, err := require.FromEdges([][2]int{{1, 2}, {1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Federate(o, req, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Messages: inject + 2 sfederate + 2 reports = 5.
	if res.Stats.Messages != 5 {
		t.Fatalf("messages = %d, want 5", res.Stats.Messages)
	}
	if res.Stats.NodesInvolved != 3 {
		t.Fatalf("nodes = %d, want 3", res.Stats.NodesInvolved)
	}
	// Quality: bottleneck min(50,60)=50; critical path max(7,9)=9.
	if res.Metric.Bandwidth != 50 || res.Metric.Latency != 9 {
		t.Fatalf("metric = %+v", res.Metric)
	}
	// Virtual time ends at the later sink report.
	if res.Stats.VirtualTime != 9 {
		t.Fatalf("virtual time = %d, want 9", res.Stats.VirtualTime)
	}
}

// TestLinkLatencyFallback: streams expanded through bridging instances send
// sfederate over a route with no direct link; the DES must still deliver.
func TestLinkLatencyFallback(t *testing.T) {
	o := overlay.New()
	for _, in := range [][2]int{{10, 1}, {99, 9}, {20, 2}} {
		if err := o.AddInstance(in[0], in[1], -1); err != nil {
			t.Fatal(err)
		}
	}
	// 1 reaches 2 only through the relay 99.
	if err := o.AddLink(10, 99, 40, 3); err != nil {
		t.Fatal(err)
	}
	if err := o.AddLink(99, 20, 40, 4); err != nil {
		t.Fatal(err)
	}
	req, err := require.NewPath(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Federate(o, req, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	e, ok := res.Flow.Edge(1, 2)
	if !ok || len(e.Path) != 3 {
		t.Fatalf("edge = %+v", e)
	}
	if res.Metric.Bandwidth != 40 || res.Metric.Latency != 7 {
		t.Fatalf("metric = %+v", res.Metric)
	}
}

// TestFederateLinkStateWithSmallerRadius combines LinkState views with a
// non-default hop radius.
func TestFederateLinkStateWithSmallerRadius(t *testing.T) {
	s, err := scenario.Generate(scenario.Config{
		Seed: 13, NetworkSize: 15, Services: 5,
		InstancesPerService: 2, Kind: scenario.KindGeneral,
	})
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := Federate(s.Overlay, s.Req, s.SourceNID, Options{Hops: 1})
	if err != nil {
		t.Fatal(err)
	}
	ls, err := Federate(s.Overlay, s.Req, s.SourceNID, Options{Hops: 1, LinkState: true})
	if err != nil {
		t.Fatal(err)
	}
	if oracle.Metric != ls.Metric {
		t.Fatalf("1-hop link-state run differs: %+v vs %+v", oracle.Metric, ls.Metric)
	}
}
