package core

import (
	"strings"
	"testing"

	"sflow/internal/flow"
	"sflow/internal/overlay"
	"sflow/internal/require"
	"sflow/internal/transport"
)

// newTestEngine builds a minimal engine for white-box handler tests.
func newTestEngine(t *testing.T) *engine {
	t.Helper()
	o, req := diamondOverlay(t)
	e := &engine{
		ov:     o,
		req:    req,
		opts:   Options{}.withDefaults(),
		claims: make(map[int]int),
		nodes:  make(map[int]*nodeState),
		sinks:  make(map[int]*flow.Graph),
	}
	e.tr = transport.NewDES(e.linkLatency, e.handle)
	return e
}

func TestHandleUnknownMessage(t *testing.T) {
	e := newTestEngine(t)
	e.handle(0, 1, 42)
	if e.err == nil || !strings.Contains(e.err.Error(), "unknown message") {
		t.Fatalf("err = %v", e.err)
	}
	// fail keeps the first error.
	e.fail(errStub("later"))
	if !strings.Contains(e.err.Error(), "unknown message") {
		t.Fatal("fail overwrote the first error")
	}
}

type errStub string

func (e errStub) Error() string { return string(e) }

func TestOnReportDuplicateSink(t *testing.T) {
	e := newTestEngine(t)
	e.onReport(report{sinkSID: 4, partial: flow.New()})
	if e.err != nil {
		t.Fatal(e.err)
	}
	e.onReport(report{sinkSID: 4, partial: flow.New()})
	if e.err == nil || !strings.Contains(e.err.Error(), "duplicate report") {
		t.Fatalf("err = %v", e.err)
	}
}

func TestOnSfederateTooManyArrivals(t *testing.T) {
	e := newTestEngine(t)
	msg := sfederate{partial: flow.New(), pins: map[int]int{}}
	// Node 20 (service 2) expects exactly one arrival.
	e.onSfederate(20, msg)
	if e.err != nil {
		t.Fatal(e.err)
	}
	e.onSfederate(20, msg)
	if e.err == nil || !strings.Contains(e.err.Error(), "expected") {
		t.Fatalf("err = %v", e.err)
	}
}

func TestOnSfederateMergeConflict(t *testing.T) {
	e := newTestEngine(t)
	// Two branch partials that disagree on service 2's instance: the merge
	// at the receiving node must surface the conflict.
	a := flow.New()
	if err := a.Assign(2, 20); err != nil {
		t.Fatal(err)
	}
	b := flow.New()
	if err := b.Assign(2, 21); err != nil {
		t.Fatal(err)
	}
	// Node 40 (service 4) expects two arrivals, so the second merge runs.
	e.onSfederate(40, sfederate{partial: a, pins: map[int]int{}})
	if e.err != nil {
		t.Fatal(e.err)
	}
	e.onSfederate(40, sfederate{partial: b, pins: map[int]int{}})
	if e.err == nil || !strings.Contains(e.err.Error(), "merging branches") {
		t.Fatalf("err = %v", e.err)
	}
}

// TestGreedyFallbackToViewRoute: in the reductions-disabled ablation, a
// pinned instance without a direct link must be reached through the view's
// shortest-widest route.
func TestGreedyFallbackToViewRoute(t *testing.T) {
	o := overlay.New()
	for _, in := range [][2]int{{10, 1}, {99, 9}, {20, 2}, {21, 2}} {
		if err := o.AddInstance(in[0], in[1], -1); err != nil {
			t.Fatal(err)
		}
	}
	// 20 is only reachable via the relay; 21 has a direct (narrow) link.
	for _, l := range [][4]int64{
		{10, 99, 100, 1}, {99, 20, 100, 1}, {10, 21, 10, 1},
	} {
		if err := o.AddLink(int(l[0]), int(l[1]), l[2], l[3]); err != nil {
			t.Fatal(err)
		}
	}
	req, err := require.NewPath(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Federate(o, req, 10, Options{DisableReductions: true, Pins: map[int]int{2: 20}})
	if err != nil {
		t.Fatal(err)
	}
	e, ok := res.Flow.Edge(1, 2)
	if !ok || len(e.Path) != 3 || e.Path[1] != 99 {
		t.Fatalf("greedy pinned route = %+v", e)
	}
	// And with no route at all to the pin, the federation is stuck.
	o2 := o.Clone()
	if err := o2.RemoveInstance(99); err != nil {
		t.Fatal(err)
	}
	if _, err := Federate(o2, req, 10, Options{DisableReductions: true, Pins: map[int]int{2: 20}}); err == nil {
		t.Fatal("unreachable pin accepted")
	}
}
