package core

import (
	"errors"
	"strings"
	"testing"

	"sflow/internal/metrics"
	"sflow/internal/scenario"
	"sflow/internal/trace"
	"sflow/internal/transport"
)

// testScenario builds a reproducible mid-size workload for fault tests.
func testScenario(t *testing.T, seed int64) *scenario.Scenario {
	t.Helper()
	s, err := scenario.Generate(scenario.Config{
		Seed: seed, NetworkSize: 20, Services: 5, InstancesPerService: 2,
		Kind: scenario.KindSplitMerge,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestReliableCleanRunMatchesBaseProtocol(t *testing.T) {
	// With the sublayer on but no faults injected, the federation result
	// must equal the plain run exactly — the acks ride alongside without
	// disturbing placement, and nothing retransmits.
	s := testScenario(t, 31)
	plain, err := Federate(s.Overlay, s.Req, s.SourceNID, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := Federate(s.Overlay, s.Req, s.SourceNID, Options{Reliable: true})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Flow.String() != rel.Flow.String() {
		t.Fatalf("reliable clean run changed the flow graph:\n%s\nvs\n%s", plain.Flow, rel.Flow)
	}
	if rel.Stats.Retries != 0 || rel.Stats.Dedups != 0 {
		t.Fatalf("clean reliable run retried/deduped: %+v", rel.Stats)
	}
	// Every data message is acknowledged: delivered = 2 * plain.
	if rel.Stats.Messages != 2*plain.Stats.Messages {
		t.Fatalf("reliable delivered %d messages, plain %d (want exactly 2x)",
			rel.Stats.Messages, plain.Stats.Messages)
	}
}

func TestReliableSurvivesMessageLoss(t *testing.T) {
	// Moderate loss on the DES transport: retransmission must converge to
	// the same flow graph the clean run produces.
	s := testScenario(t, 32)
	clean, err := Federate(s.Overlay, s.Req, s.SourceNID, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sawRetry bool
	for seed := int64(0); seed < 5; seed++ {
		res, err := Federate(s.Overlay, s.Req, s.SourceNID, Options{
			Faults: &transport.Faults{Seed: seed, Drop: 0.15},
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if clean.Flow.String() != res.Flow.String() {
			t.Fatalf("seed %d: lossy run placed differently:\n%s\nvs\n%s", seed, clean.Flow, res.Flow)
		}
		if res.Stats.Retries > 0 {
			sawRetry = true
		}
	}
	if !sawRetry {
		t.Fatal("15% loss over 5 seeds never triggered a retransmission")
	}
}

func TestReliableDedupsDuplicates(t *testing.T) {
	s := testScenario(t, 33)
	res, err := Federate(s.Overlay, s.Req, s.SourceNID, Options{
		Faults: &transport.Faults{Seed: 2, Duplicate: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Dedups == 0 {
		t.Fatal("50% duplication produced no dedups — receiver idempotency untested")
	}
}

func TestReliableSurvivesReordering(t *testing.T) {
	s := testScenario(t, 34)
	clean, err := Federate(s.Overlay, s.Req, s.SourceNID, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Federate(s.Overlay, s.Req, s.SourceNID, Options{
		Faults: &transport.Faults{Seed: 3, Reorder: 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Flow.String() != res.Flow.String() {
		t.Fatalf("reordered run placed differently:\n%s\nvs\n%s", clean.Flow, res.Flow)
	}
}

func TestReliableDeterministicOnDES(t *testing.T) {
	// Fixed fault seed, DES transport: stats and flow graph must be
	// byte-identical across runs.
	s := testScenario(t, 35)
	run := func() (string, Stats) {
		res, err := Federate(s.Overlay, s.Req, s.SourceNID, Options{
			Faults: &transport.Faults{Seed: 6, Drop: 0.2, Duplicate: 0.1, Reorder: 0.1},
		})
		if err != nil {
			t.Fatal(err)
		}
		st := res.Stats
		st.ComputeTime = 0 // wall-clock, excluded from the determinism claim
		return res.Flow.String(), st
	}
	flowA, statsA := run()
	flowB, statsB := run()
	if flowA != flowB {
		t.Fatalf("flow differs across identical runs:\n%s\nvs\n%s", flowA, flowB)
	}
	if statsA != statsB {
		t.Fatalf("stats differ across identical runs: %+v vs %+v", statsA, statsB)
	}
}

func TestReliablePartialFederationOnCrash(t *testing.T) {
	// Crash one sink-serving instance permanently from the start: the
	// federation must degrade into a typed partial error instead of
	// hanging, and both sentinels must match.
	o, req := diamondOverlay(t)
	reg := metrics.New()
	rec := trace.New()
	_, err := Federate(o, req, 10, Options{
		Metrics: reg,
		Trace:   rec,
		Faults: &transport.Faults{
			Seed:    1,
			Crashes: []transport.Crash{{Node: 41, After: 0, Down: -1}, {Node: 40, After: 0, Down: -1}},
		},
	})
	if err == nil {
		t.Fatal("federation across a dead merge service succeeded")
	}
	if !errors.Is(err, ErrPartialFederation) {
		t.Fatalf("err = %v, want ErrPartialFederation in chain", err)
	}
	if !errors.Is(err, ErrStuck) {
		t.Fatalf("err = %v, want ErrStuck in cause chain", err)
	}
	var perr *PartialFederationError
	if !errors.As(err, &perr) {
		t.Fatalf("err = %T, want *PartialFederationError", err)
	}
	if len(perr.Unresponsive) == 0 {
		t.Fatalf("no unresponsive instances in %+v", perr)
	}
	for _, nid := range perr.Unresponsive {
		if nid != 40 && nid != 41 {
			t.Fatalf("unresponsive %v, want a subset of the crashed {40, 41}", perr.Unresponsive)
		}
	}
	if perr.Stats.Retries == 0 {
		t.Fatal("no retransmissions before giving up")
	}
	if rec.Count(trace.KindGiveUp) == 0 {
		t.Fatal("no give-up event traced")
	}
	snap := reg.Snapshot().StableText()
	for _, name := range []string{"core_retries_total", "core_unresponsive_peers_total", "core_partial_federations_total"} {
		if !strings.Contains(snap, name) {
			t.Errorf("metric %s missing from snapshot", name)
		}
	}
}

func TestCrashMidFederationRepairMatchesOfflineRefederation(t *testing.T) {
	// The headline self-healing property: crash an instance mid-federation,
	// let the run degrade into a partial error, repair around the victim —
	// and the result must equal an offline re-federation over the overlay
	// with the victim removed.
	o, req := diamondOverlay(t)
	// Clean run places the merge service on 41 (the optimal). Crash 41
	// after it has been touched once, so it dies mid-protocol.
	_, err := Federate(o, req, 10, Options{
		Faults: &transport.Faults{
			Seed:    1,
			Crashes: []transport.Crash{{Node: 41, After: 1, Down: -1}},
		},
	})
	var perr *PartialFederationError
	if !errors.As(err, &perr) {
		t.Fatalf("err = %v, want *PartialFederationError", err)
	}
	found := false
	for _, nid := range perr.Unresponsive {
		if nid == 41 {
			found = true
		}
	}
	if !found {
		t.Fatalf("crashed instance 41 not in unresponsive set %v", perr.Unresponsive)
	}

	rep, err := RepairPartial(o, req, 10, perr, Options{})
	if err != nil {
		t.Fatalf("repair: %v", err)
	}
	if err := rep.Flow.Validate(req, o); err != nil {
		t.Fatalf("repaired flow invalid: %v", err)
	}

	// Offline control: remove the victim and federate from scratch.
	surviving := o.Clone()
	if err := surviving.RemoveInstance(41); err != nil {
		t.Fatal(err)
	}
	offline, err := Federate(surviving, req, 10, Options{})
	if err != nil {
		t.Fatalf("offline re-federation: %v", err)
	}
	if rep.Flow.String() != offline.Flow.String() {
		t.Fatalf("repair and offline re-federation disagree:\n%s\nvs\n%s", rep.Flow, offline.Flow)
	}
	if nid, _ := rep.Flow.Assigned(4); nid != 40 {
		t.Fatalf("merge repaired onto %d, want the surviving 40", nid)
	}
}

func TestRepairPartialValidation(t *testing.T) {
	o, req := diamondOverlay(t)
	if _, err := RepairPartial(o, req, 10, nil, Options{}); err == nil {
		t.Fatal("nil partial error accepted")
	}
	perr := &PartialFederationError{Unresponsive: []int{10}}
	if _, err := RepairPartial(o, req, 10, perr, Options{}); err == nil {
		t.Fatal("unresponsive source accepted")
	}
	// Unresponsive entries outside the overlay (the consumer's virtual
	// node) are ignored, not an error.
	perr = &PartialFederationError{Unresponsive: []int{-1, 41}}
	rep, err := RepairPartial(o, req, 10, perr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if nid, _ := rep.Flow.Assigned(4); nid != 40 {
		t.Fatalf("merge on %d, want 40 with 41 removed", nid)
	}
}

func TestReliableFaultsOnGoroutineTransport(t *testing.T) {
	// The concurrent transport with loss: wall-clock timers drive the
	// retransmissions. Keep the backoff tight so the test stays fast.
	s := testScenario(t, 36)
	res, err := Federate(s.Overlay, s.Req, s.SourceNID, Options{
		Concurrent:     true,
		Faults:         &transport.Faults{Seed: 4, Drop: 0.1, Duplicate: 0.1},
		RetryBackoffUS: 5_000,
		DeadlineUS:     5_000_000,
	})
	if err != nil {
		// A run that degrades under an unlucky interleaving must still
		// produce the typed error, not hang or crash.
		var perr *PartialFederationError
		if !errors.As(err, &perr) {
			t.Fatalf("err = %v, want success or *PartialFederationError", err)
		}
		return
	}
	if err := res.Flow.Validate(s.Req, s.Overlay); err != nil {
		t.Fatalf("flow invalid: %v", err)
	}
}

func TestReliableFaultsOverLoopbackTCP(t *testing.T) {
	// Full serialisation path: the reliable/ack wire frames cross real
	// sockets with loss and duplication injected above them.
	s := testScenario(t, 37)
	res, err := Federate(s.Overlay, s.Req, s.SourceNID, Options{
		Loopback:       true,
		Faults:         &transport.Faults{Seed: 5, Drop: 0.1, Duplicate: 0.2},
		RetryBackoffUS: 5_000,
		DeadlineUS:     5_000_000,
	})
	if err != nil {
		var perr *PartialFederationError
		if !errors.As(err, &perr) {
			t.Fatalf("err = %v, want success or *PartialFederationError", err)
		}
		return
	}
	if res.Stats.Messages == 0 {
		t.Fatal("no messages delivered")
	}
}

func TestReliableGiveUpBeforeDeadline(t *testing.T) {
	// A permanently dead destination must be detected by retry-budget
	// exhaustion well before the (huge) deadline: virtual time at give-up
	// stays far under it.
	o, req := diamondOverlay(t)
	reg := metrics.New()
	_, err := Federate(o, req, 10, Options{
		Metrics:    reg,
		DeadlineUS: 3_600_000_000, // one virtual hour
		Faults: &transport.Faults{
			Seed:    1,
			Crashes: []transport.Crash{{Node: 40, After: 0, Down: -1}, {Node: 41, After: 0, Down: -1}},
		},
	})
	var perr *PartialFederationError
	if !errors.As(err, &perr) {
		t.Fatalf("err = %v, want *PartialFederationError", err)
	}
	if got := reg.Snapshot().StableText(); !strings.Contains(got, "core_unresponsive_peers_total") {
		t.Error("unresponsive counter missing")
	}
}
