package core

import (
	"testing"

	"sflow/internal/scenario"
)

func TestRepairAfterInstanceFailure(t *testing.T) {
	repairedSomewhere := false
	for seed := int64(0); seed < 8; seed++ {
		s, err := scenario.Generate(scenario.Config{
			Seed: seed, NetworkSize: 20, Services: 6,
			InstancesPerService: 3, Kind: scenario.KindGeneral,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Federate(s.Overlay, s.Req, s.SourceNID, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Fail the instance serving the second service in topo order.
		victimSID := s.Req.TopoOrder()[1]
		victim, _ := res.Flow.Assigned(victimSID)

		rep, err := Repair(s.Overlay, s.Req, res.Flow, []int{victim}, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		repairedSomewhere = true
		// The repaired graph is valid on the surviving overlay — and in
		// particular never uses the failed instance, not even as relay.
		for _, e := range rep.Flow.Edges() {
			for _, hop := range e.Path {
				if hop == victim {
					t.Fatalf("seed %d: repaired flow routes through failed instance %d", seed, victim)
				}
			}
		}
		if err := rep.Flow.Validate(s.Req, s.Overlay); err != nil {
			t.Fatalf("seed %d: repaired flow invalid on original overlay: %v", seed, err)
		}
		if nid, _ := rep.Flow.Assigned(victimSID); nid == victim {
			t.Fatalf("seed %d: victim service still on failed instance", seed)
		}
		// Unaffected services kept their placement.
		for _, sid := range s.Req.Services() {
			if containsInt(rep.Affected, sid) {
				continue
			}
			before, _ := res.Flow.Assigned(sid)
			after, _ := rep.Flow.Assigned(sid)
			if before != after {
				t.Fatalf("seed %d: unaffected service %d moved %d -> %d", seed, sid, before, after)
			}
		}
		// Moved ⊆ Affected.
		for _, sid := range rep.Moved {
			if !containsInt(rep.Affected, sid) {
				t.Fatalf("seed %d: service %d moved but not affected", seed, sid)
			}
		}
		if !containsInt(rep.Affected, victimSID) {
			t.Fatalf("seed %d: victim service not in affected set %v", seed, rep.Affected)
		}
	}
	if !repairedSomewhere {
		t.Fatal("no repair exercised")
	}
}

func TestRepairValidation(t *testing.T) {
	o, req := diamondOverlay(t)
	res, err := Federate(o, req, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Repair(o, req, res.Flow, nil, Options{}); err == nil {
		t.Fatal("empty failure set accepted")
	}
	if _, err := Repair(o, req, res.Flow, []int{999}, Options{}); err == nil {
		t.Fatal("unknown instance accepted")
	}
	// Source failure cannot be repaired.
	if _, err := Repair(o, req, res.Flow, []int{10}, Options{}); err == nil {
		t.Fatal("source failure accepted")
	}
}

func TestRepairMergeInstanceFailure(t *testing.T) {
	// Fail the chosen merge instance 41 of the diamond: repair must fall
	// back to instance 40 and re-pin both branches onto it.
	o, req := diamondOverlay(t)
	res, err := Federate(o, req, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if nid, _ := res.Flow.Assigned(4); nid != 41 {
		t.Fatalf("setup: merge on %d", nid)
	}
	rep, err := Repair(o, req, res.Flow, []int{41}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if nid, _ := rep.Flow.Assigned(4); nid != 40 {
		t.Fatalf("repair placed merge on %d, want 40", nid)
	}
	if rep.Metric.Bandwidth != 10 {
		t.Fatalf("repaired metric %+v (the surviving merge is narrow)", rep.Metric)
	}
	// Services 2 and 3 were unaffected and must not move.
	for _, sid := range []int{2, 3} {
		before, _ := res.Flow.Assigned(sid)
		after, _ := rep.Flow.Assigned(sid)
		if before != after {
			t.Fatalf("service %d moved", sid)
		}
	}
}

func TestRepairPinValidationInFederate(t *testing.T) {
	o, req := diamondOverlay(t)
	// A pin naming a wrong-service instance is rejected by Federate.
	if _, err := Federate(o, req, 10, Options{Pins: map[int]int{2: 30}}); err == nil {
		t.Fatal("wrong-service pin accepted")
	}
	// A correct pin steers the merge even against quality.
	res, err := Federate(o, req, 10, Options{Pins: map[int]int{4: 40}})
	if err != nil {
		t.Fatal(err)
	}
	if nid, _ := res.Flow.Assigned(4); nid != 40 {
		t.Fatalf("pin ignored: merge on %d", nid)
	}
}
